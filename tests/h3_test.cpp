// Tests for the HTTP/3 model and the DoH3 transport end to end: framing,
// control-stream SETTINGS, request/response exchange over real QUIC, and
// the DoH3-vs-DoH handshake advantage the paper's future work predicts.
#include <gtest/gtest.h>

#include "dox/transport.h"
#include "h3/connection.h"
#include "net/network.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"

namespace doxlab::h3 {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

// --------------------------------------------------------------- end to end

class Doh3Fixture : public ::testing::Test {
 protected:
  Doh3Fixture()
      : network_(sim_, Rng(17)),
        client_host_(network_.add_host("client",
                                       IpAddress::from_octets(10, 1, 0, 1),
                                       {50.11, 8.68}, Continent::kEurope)),
        udp_(client_host_),
        tcp_(client_host_) {
    network_.set_loss_rate(0.0);
  }

  void start_resolver(bool supports_0rtt = false) {
    resolver::ResolverProfile profile;
    profile.name = "resolver";
    profile.address = IpAddress::from_octets(10, 2, 0, 1);
    profile.location = {52.37, 4.90};
    profile.secret = 0xD043;
    profile.supports_doh3 = true;
    profile.supports_0rtt = supports_0rtt;
    profile.drop_probability = 0.0;
    resolver_ = std::make_unique<resolver::DoxResolver>(network_, profile,
                                                        Rng(1));
    network_.set_path_override(client_host_.address(), profile.address,
                               from_ms(10));
  }

  dox::TransportDeps deps() {
    dox::TransportDeps d;
    d.sim = &sim_;
    d.udp = &udp_;
    d.tcp = &tcp_;
    d.tickets = &tickets_;
    d.doq_cache = &doq_cache_;
    return d;
  }

  dox::TransportOptions options(dox::DnsProtocol protocol) {
    dox::TransportOptions opts;
    opts.resolver = Endpoint{resolver_->profile().address,
                             dox::default_port(protocol)};
    return opts;
  }

  dox::QueryResult query(dox::DnsTransport& transport,
                         const std::string& name) {
    std::optional<dox::QueryResult> result;
    transport.resolve(dns::Question{dns::DnsName::parse(name),
                                    dns::RRType::kA, dns::RRClass::kIN},
                      [&](dox::QueryResult r) { result = std::move(r); });
    sim_.run_until(sim_.now() + 30 * kSecond);
    EXPECT_TRUE(result.has_value());
    return result.value_or(dox::QueryResult{});
  }

  dox::QueryResult warmed_query(dox::DnsProtocol protocol) {
    {
      auto warm = dox::make_transport(protocol, deps(), options(protocol));
      auto r = query(*warm, "google.com");
      EXPECT_TRUE(r.ok()) << r.error();
      sim_.run_until(sim_.now() + 300 * kMillisecond);
      warm->reset_sessions();
      sim_.run_until(sim_.now() + kSecond);
    }
    auto measured = dox::make_transport(protocol, deps(), options(protocol));
    auto r = query(*measured, "google.com");
    sim_.run_until(sim_.now() + 300 * kMillisecond);
    measured->reset_sessions();
    sim_.run_until(sim_.now() + kSecond);
    return r;
  }

  sim::Simulator sim_;
  net::Network network_;
  net::Host& client_host_;
  net::UdpStack udp_;
  tcp::TcpStack tcp_;
  tls::TicketStore tickets_;
  dox::DoqSessionCache doq_cache_;
  std::unique_ptr<resolver::DoxResolver> resolver_;
};

TEST_F(Doh3Fixture, ResolvesOverHttp3) {
  start_resolver();
  auto transport = dox::make_transport(dox::DnsProtocol::kDoH3, deps(),
                                       options(dox::DnsProtocol::kDoH3));
  auto result = query(*transport, "example.com");
  ASSERT_TRUE(result.ok()) << result.error();
  ASSERT_EQ(result.response.answers.size(), 1u);
  EXPECT_EQ(dns::rdata_as_a(result.response.answers[0]),
            resolver::authoritative_ipv4(dns::DnsName::parse("example.com")));
  EXPECT_EQ(result.alpn, "h3");
}

TEST_F(Doh3Fixture, WarmedHandshakeIsOneRoundTripLikeDoQ) {
  start_resolver();
  auto r = warmed_query(dox::DnsProtocol::kDoH3);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.session_resumed);
  // 1 RTT = 20 ms: HTTP/3 inherits QUIC's combined handshake — the paper's
  // future-work expectation that DoH3 closes the DoH(H2) gap.
  EXPECT_NEAR(to_ms(r.handshake_time()), 20.0, 8.0);
}

TEST_F(Doh3Fixture, ResolverWithoutDoh3RefusesAlpn) {
  start_resolver();
  // Point at a second resolver that does NOT enable DoH3: its DoQ listener
  // on 853 only offers the DoQ ALPN, and nothing listens on UDP 443.
  resolver::ResolverProfile other;
  other.name = "plain";
  other.address = IpAddress::from_octets(10, 2, 0, 2);
  other.location = {52.0, 5.0};
  other.secret = 0x999;
  other.supports_doh3 = false;
  other.drop_probability = 0.0;
  resolver::DoxResolver plain(network_, other, Rng(2));
  network_.set_path_override(client_host_.address(), other.address,
                             from_ms(10));
  dox::TransportOptions opts;
  opts.resolver = Endpoint{other.address, 443};
  opts.query_timeout = 5 * kSecond;
  auto transport = dox::make_transport(dox::DnsProtocol::kDoH3, deps(), opts);
  auto result = query(*transport, "example.com");
  EXPECT_FALSE(result.ok());
}

TEST_F(Doh3Fixture, MultipleQueriesShareOneConnection) {
  start_resolver();
  auto transport = dox::make_transport(dox::DnsProtocol::kDoH3, deps(),
                                       options(dox::DnsProtocol::kDoH3));
  auto a = query(*transport, "a.example");
  auto b = query(*transport, "b.example");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.new_session);
  EXPECT_FALSE(b.new_session);
}

TEST_F(Doh3Fixture, ZeroRttRequestWhenSupported) {
  start_resolver(/*supports_0rtt=*/true);
  auto r = warmed_query(dox::DnsProtocol::kDoH3);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.used_0rtt);
  // Query completes within ~1 RTT total.
  EXPECT_NEAR(to_ms(r.total_time()), 20.0, 10.0);
}

TEST_F(Doh3Fixture, CarriesMoreBytesThanDoQButFewerRoundTripsThanDoH) {
  start_resolver();
  dox::WireStats doq, doh3;
  {
    auto t = dox::make_transport(dox::DnsProtocol::kDoQ, deps(),
                                 options(dox::DnsProtocol::kDoQ));
    ASSERT_TRUE(query(*t, "google.com").ok());
    sim_.run_until(sim_.now() + 300 * kMillisecond);
    t->reset_sessions();
    sim_.run_until(sim_.now() + kSecond);
    doq = t->wire_stats();
  }
  {
    auto t = dox::make_transport(dox::DnsProtocol::kDoH3, deps(),
                                 options(dox::DnsProtocol::kDoH3));
    ASSERT_TRUE(query(*t, "google.com").ok());
    sim_.run_until(sim_.now() + 300 * kMillisecond);
    t->reset_sessions();
    sim_.run_until(sim_.now() + kSecond);
    doh3 = t->wire_stats();
  }
  // The HTTP layer (control streams, HEADERS) costs extra bytes over DoQ.
  EXPECT_GT(doh3.query_c2r(), doq.query_c2r());
}

// ------------------------------------------------------------ frame layer

TEST(H3Frames, RequestResponseThroughLoopbackQuic) {
  // Drive two H3Connections over a real QUIC client/server pair.
  sim::Simulator sim;
  net::Network network(sim, Rng(9));
  network.set_loss_rate(0.0);
  auto& a = network.add_host("a", IpAddress::from_octets(10, 3, 0, 1),
                             {50, 8}, Continent::kEurope);
  auto& b = network.add_host("b", IpAddress::from_octets(10, 3, 0, 2),
                             {50, 9}, Continent::kEurope);
  net::UdpStack udp_a(a);
  net::UdpStack udp_b(b);

  quic::QuicConfig server_config;
  server_config.is_server = true;
  server_config.alpn = {"h3"};
  server_config.ticket_secret = 1;
  quic::QuicServer server(sim, udp_b, 443, server_config);

  std::unique_ptr<H3Connection> server_h3;
  std::vector<h2::Header> server_headers;
  std::vector<std::uint8_t> server_body;
  server.on_accept([&](const std::shared_ptr<quic::QuicConnection>& conn,
                       const Endpoint&) {
    H3Connection::Callbacks callbacks;
    callbacks.on_headers = [&](std::uint64_t, const std::vector<h2::Header>& h,
                               bool) { server_headers = h; };
    callbacks.on_data = [&, conn_ptr = conn.get()](
                            std::uint64_t stream,
                            std::span<const std::uint8_t> d, bool end) {
      server_body.assign(d.begin(), d.end());
      if (end) {
        server_h3->send_response(stream, {{":status", "200"}}, {0xAA, 0xBB});
      }
    };
    server_h3 = std::make_unique<H3Connection>(conn, false,
                                               std::move(callbacks));
    conn->set_on_stream_data([&](std::uint64_t id,
                                 std::span<const std::uint8_t> d, bool fin) {
      server_h3->on_stream_data(id, d, fin);
    });
    server_h3->start();
  });

  auto socket = udp_a.bind_ephemeral();
  quic::QuicConnection::Callbacks conn_callbacks;
  conn_callbacks.send_datagram = [&](util::Buffer bytes) {
    socket->send_to(Endpoint{b.address(), 443}, std::move(bytes));
  };
  auto conn = quic::QuicConnection::make_client(
      sim, quic::QuicConfig{.alpn = {"h3"}, .sni = "b"},
      std::move(conn_callbacks));
  socket->on_datagram([&](const Endpoint&, util::Buffer d) {
    conn->on_datagram(d);
  });

  std::vector<h2::Header> client_headers;
  std::vector<std::uint8_t> client_body;
  bool client_end = false;
  H3Connection::Callbacks client_callbacks;
  client_callbacks.on_headers = [&](std::uint64_t,
                                    const std::vector<h2::Header>& h, bool) {
    client_headers = h;
  };
  client_callbacks.on_data = [&](std::uint64_t,
                                 std::span<const std::uint8_t> d, bool end) {
    client_body.assign(d.begin(), d.end());
    client_end = end;
  };
  H3Connection client(conn, true, std::move(client_callbacks));
  conn->set_on_stream_data([&](std::uint64_t id,
                               std::span<const std::uint8_t> d, bool fin) {
    client.on_stream_data(id, d, fin);
  });

  client.start();
  std::uint64_t stream = client.send_request(
      {{":method", "POST"}, {":path", "/dns-query"}}, {1, 2, 3});
  conn->connect();
  sim.run_until(5 * kSecond);

  EXPECT_EQ(stream % 4, 0u);  // client bidi stream
  ASSERT_EQ(server_headers.size(), 2u);
  EXPECT_EQ(server_body, (std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_FALSE(client_headers.empty());
  EXPECT_EQ(client_headers[0].value, "200");
  EXPECT_EQ(client_body, (std::vector<std::uint8_t>{0xAA, 0xBB}));
  EXPECT_TRUE(client_end);
  EXPECT_TRUE(client.settings_received());
  EXPECT_TRUE(server_h3->settings_received());
}

}  // namespace
}  // namespace doxlab::h3
