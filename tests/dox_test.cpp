// End-to-end tests of the five DNS transports against a full DoxResolver:
// correctness, handshake round-trip counts, session resumption, 0-RTT,
// connection reuse semantics (incl. the dnsproxy DoT bug), and the
// byte-count shapes behind the paper's Table 1.
#include <gtest/gtest.h>

#include "dox/transport.h"
#include "h2/connection.h"
#include "net/network.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"

namespace doxlab::dox {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

class DoxFixture : public ::testing::Test {
 protected:
  DoxFixture()
      : network_(sim_, Rng(5)),
        client_host_(network_.add_host("vantage",
                                       IpAddress::from_octets(10, 1, 0, 1),
                                       {50.11, 8.68}, Continent::kEurope)),
        udp_(client_host_),
        tcp_(client_host_) {
    network_.set_loss_rate(0.0);
  }

  resolver::ResolverProfile default_profile() {
    resolver::ResolverProfile profile;
    profile.name = "resolver-1";
    profile.address = IpAddress::from_octets(10, 2, 0, 1);
    profile.location = {52.37, 4.90};
    profile.continent = Continent::kEurope;
    profile.secret = 0xFEEDF00D;
    profile.certificate_chain_size = 3000;
    profile.drop_probability = 0.0;
    return profile;
  }

  void start_resolver(resolver::ResolverProfile profile) {
    resolver_ = std::make_unique<resolver::DoxResolver>(network_, profile,
                                                        Rng(99));
    network_.set_path_override(client_host_.address(), profile.address,
                               from_ms(10));
  }

  TransportDeps deps() {
    TransportDeps d;
    d.sim = &sim_;
    d.udp = &udp_;
    d.tcp = &tcp_;
    d.tickets = &tickets_;
    d.doq_cache = &doq_cache_;
    return d;
  }

  TransportOptions options_for(DnsProtocol protocol) {
    TransportOptions opts;
    opts.resolver = Endpoint{resolver_->profile().address,
                             default_port(protocol)};
    return opts;
  }

  /// Issues one query and runs the simulation until it completes.
  QueryResult query(DnsTransport& transport, const std::string& name) {
    std::optional<QueryResult> result;
    transport.resolve(
        dns::Question{dns::DnsName::parse(name), dns::RRType::kA,
                      dns::RRClass::kIN},
        [&](QueryResult r) { result = std::move(r); });
    sim_.run_until(sim_.now() + 30 * kSecond);
    EXPECT_TRUE(result.has_value()) << "query did not complete";
    return result.value_or(QueryResult{});
  }

  /// The paper's measurement procedure: a cache-warming query on a fresh
  /// transport, then the measured query on another fresh transport sharing
  /// ticket/token stores.
  QueryResult warmed_query(DnsProtocol protocol,
                           const std::string& name = "google.com",
                           TransportOptions opts_override = {},
                           WireStats* stats_out = nullptr) {
    TransportOptions opts = options_for(protocol);
    opts.attempt_0rtt = opts_override.attempt_0rtt;
    opts.use_session_resumption = opts_override.use_session_resumption;
    opts.use_address_token = opts_override.use_address_token;
    opts.dot_buggy_reuse = opts_override.dot_buggy_reuse;
    {
      auto warm = make_transport(protocol, deps(), opts);
      QueryResult r = query(*warm, name);
      EXPECT_TRUE(r.ok());
      sim_.run_until(sim_.now() + 300 * kMillisecond);  // drain NST/token
      warm->reset_sessions();
      sim_.run_until(sim_.now() + kSecond);
    }
    auto measured = make_transport(protocol, deps(), opts);
    QueryResult r = query(*measured, name);
    sim_.run_until(sim_.now() + 300 * kMillisecond);
    measured->reset_sessions();
    sim_.run_until(sim_.now() + kSecond);
    if (stats_out) *stats_out = measured->wire_stats();
    return r;
  }

  sim::Simulator sim_;
  net::Network network_;
  net::Host& client_host_;
  net::UdpStack udp_;
  tcp::TcpStack tcp_;
  tls::TicketStore tickets_;
  DoqSessionCache doq_cache_;
  std::unique_ptr<resolver::DoxResolver> resolver_;
};

// ------------------------------------------------------------ basic success

class AllProtocols : public DoxFixture,
                     public ::testing::WithParamInterface<DnsProtocol> {};

TEST_P(AllProtocols, ResolvesARecord) {
  start_resolver(default_profile());
  auto transport = make_transport(GetParam(), deps(), options_for(GetParam()));
  QueryResult result = query(*transport, "google.com");
  ASSERT_TRUE(result.ok()) << result.error();
  ASSERT_EQ(result.response.answers.size(), 1u);
  auto ip = dns::rdata_as_a(result.response.answers[0]);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip, resolver::authoritative_ipv4(dns::DnsName::parse(
                     "google.com")));
}

TEST_P(AllProtocols, SecondQueryHitsResolverCache) {
  start_resolver(default_profile());
  auto transport = make_transport(GetParam(), deps(), options_for(GetParam()));
  QueryResult first = query(*transport, "example.org");
  QueryResult second = query(*transport, "example.org");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Cache hit answers much faster than the simulated recursion (~80 ms).
  EXPECT_GT(first.resolve_time(), from_ms(40));
  EXPECT_LT(second.resolve_time(), from_ms(40));
}

TEST_P(AllProtocols, UnsupportedNameTypeYieldsEmptyAnswer) {
  start_resolver(default_profile());
  auto transport = make_transport(GetParam(), deps(), options_for(GetParam()));
  std::optional<QueryResult> result;
  transport->resolve(
      dns::Question{dns::DnsName::parse("example.org"), dns::RRType::kTXT,
                    dns::RRClass::kIN},
      [&](QueryResult r) { result = std::move(r); });
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok());
  EXPECT_TRUE(result->response.answers.empty());
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocols,
                         ::testing::ValuesIn(kAllProtocols),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param));
                         });

// --------------------------------------------------------- handshake timing

TEST_F(DoxFixture, HandshakeRoundTripsMatchPaperExpectations) {
  start_resolver(default_profile());
  // Warmed queries (session resumption, cached token/version): DoQ and
  // DoTCP take 1 RTT (20 ms), DoT/DoH take 2 RTT (40 ms), DoUDP none.
  QueryResult udp = warmed_query(DnsProtocol::kDoUdp);
  QueryResult tcp = warmed_query(DnsProtocol::kDoTcp);
  QueryResult dot = warmed_query(DnsProtocol::kDoT);
  QueryResult doh = warmed_query(DnsProtocol::kDoH);
  QueryResult doq = warmed_query(DnsProtocol::kDoQ);

  EXPECT_EQ(udp.handshake_time(), 0);
  EXPECT_NEAR(to_ms(tcp.handshake_time()), 20.0, 8.0);
  EXPECT_NEAR(to_ms(doq.handshake_time()), 20.0, 8.0);
  EXPECT_NEAR(to_ms(dot.handshake_time()), 40.0, 10.0);
  EXPECT_NEAR(to_ms(doh.handshake_time()), 40.0, 10.0);

  EXPECT_TRUE(dot.session_resumed);
  EXPECT_TRUE(doh.session_resumed);
  EXPECT_TRUE(doq.session_resumed);
  EXPECT_FALSE(doq.used_0rtt);  // resolver does not support it
}

TEST_F(DoxFixture, ResolveTimesSimilarAcrossProtocolsOnWarmCache) {
  start_resolver(default_profile());
  for (DnsProtocol protocol : kAllProtocols) {
    QueryResult r = warmed_query(protocol);
    ASSERT_TRUE(r.ok()) << protocol_name(protocol);
    // Cached resolve: ~1 RTT + processing.
    EXPECT_NEAR(to_ms(r.resolve_time()), 20.0, 10.0)
        << protocol_name(protocol);
  }
}

TEST_F(DoxFixture, DoqZeroRttWhenResolverSupportsIt) {
  auto profile = default_profile();
  profile.supports_0rtt = true;
  start_resolver(profile);
  QueryResult r = warmed_query(DnsProtocol::kDoQ);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.used_0rtt);
  // Query + response complete in ~1 RTT total: 0-RTT makes DoQ match DoUDP.
  EXPECT_NEAR(to_ms(r.total_time()), 20.0, 10.0);
}

TEST_F(DoxFixture, DotZeroRttWhenResolverSupportsIt) {
  auto profile = default_profile();
  profile.supports_0rtt = true;
  start_resolver(profile);
  QueryResult r = warmed_query(DnsProtocol::kDoT);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.used_0rtt);
  // TCP handshake (1 RTT) + 0-RTT query/response (1 RTT) = ~2 RTT total,
  // one less than resumed DoT's 3.
  EXPECT_NEAR(to_ms(r.total_time()), 40.0, 12.0);
}

TEST_F(DoxFixture, ResumptionDisabledForcesFullHandshake) {
  start_resolver(default_profile());
  TransportOptions override;
  override.use_session_resumption = false;
  override.attempt_0rtt = false;
  QueryResult r = warmed_query(DnsProtocol::kDoT, "google.com", override);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.session_resumed);
}

TEST_F(DoxFixture, Tls12ResolverNegotiatesDownAndAddsRoundTrip) {
  auto profile = default_profile();
  profile.max_tls = tls::TlsVersion::kTls12;
  start_resolver(profile);
  QueryResult r = warmed_query(DnsProtocol::kDoT);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.tls_version.has_value());
  EXPECT_EQ(*r.tls_version, tls::TlsVersion::kTls12);
  EXPECT_FALSE(r.session_resumed);
  // TCP (1 RTT) + TLS 1.2 (2 RTT) = ~60 ms.
  EXPECT_NEAR(to_ms(r.handshake_time()), 60.0, 12.0);
}

// ------------------------------------------------------------ DoQ specifics

TEST_F(DoxFixture, DoqLearnsVersionAlpnAndToken) {
  auto profile = default_profile();
  profile.quic_version = quic::QuicVersion::kDraft34;
  profile.doq_alpn = "doq-i03";
  start_resolver(profile);

  auto transport = make_transport(DnsProtocol::kDoQ, deps(),
                                  options_for(DnsProtocol::kDoQ));
  QueryResult first = query(*transport, "google.com");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.quic_version, quic::QuicVersion::kDraft34);
  EXPECT_EQ(first.alpn, "doq-i03");
  // First contact guesses v1 and pays Version Negotiation.
  const auto* info = doq_cache_.find(
      server_key(options_for(DnsProtocol::kDoQ).resolver, DnsProtocol::kDoQ));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->version, quic::QuicVersion::kDraft34);
  EXPECT_EQ(info->alpn, "doq-i03");
  EXPECT_TRUE(info->token.has_value());

  // Measured query: no VN round trip this time.
  transport->reset_sessions();
  sim_.run_until(sim_.now() + kSecond);
  auto measured = make_transport(DnsProtocol::kDoQ, deps(),
                                 options_for(DnsProtocol::kDoQ));
  QueryResult second = query(*measured, "google.com");
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR(to_ms(second.handshake_time()), 20.0, 8.0);
}

TEST_F(DoxFixture, DoqDraftAlpnWithoutPrefixStillWorks) {
  auto profile = default_profile();
  profile.doq_alpn = "doq-i02";  // bare-message framing
  start_resolver(profile);
  QueryResult r = warmed_query(DnsProtocol::kDoQ);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.alpn, "doq-i02");
}

TEST_F(DoxFixture, DoqMultipleQueriesShareOneConnection) {
  start_resolver(default_profile());
  auto transport = make_transport(DnsProtocol::kDoQ, deps(),
                                  options_for(DnsProtocol::kDoQ));
  QueryResult a = query(*transport, "a.example");
  QueryResult b = query(*transport, "b.example");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.new_session);
  EXPECT_FALSE(b.new_session);
  EXPECT_EQ(b.handshake_time(), 0);
}

// ----------------------------------------------------------- DoT connection
// ----------------------------------------------------------- reuse semantics

TEST_F(DoxFixture, DotCorrectReusePipelinesConcurrentQueries) {
  start_resolver(default_profile());
  TransportOptions opts = options_for(DnsProtocol::kDoT);
  opts.dot_buggy_reuse = false;
  auto transport = make_transport(DnsProtocol::kDoT, deps(), opts);

  std::vector<QueryResult> results;
  transport->resolve(dns::Question{dns::DnsName::parse("a.example"),
                                   dns::RRType::kA, dns::RRClass::kIN},
                     [&](QueryResult r) { results.push_back(std::move(r)); });
  transport->resolve(dns::Question{dns::DnsName::parse("b.example"),
                                   dns::RRType::kA, dns::RRClass::kIN},
                     [&](QueryResult r) { results.push_back(std::move(r)); });
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  // One connection total: exactly one query paid the handshake.
  EXPECT_EQ((results[0].new_session ? 1 : 0) +
                (results[1].new_session ? 1 : 0),
            1);
}

TEST_F(DoxFixture, DotBuggyReuseOpensSecondConnectionWhileInFlight) {
  start_resolver(default_profile());
  TransportOptions opts = options_for(DnsProtocol::kDoT);
  opts.dot_buggy_reuse = true;
  auto transport = make_transport(DnsProtocol::kDoT, deps(), opts);

  std::vector<QueryResult> results;
  transport->resolve(dns::Question{dns::DnsName::parse("a.example"),
                                   dns::RRType::kA, dns::RRClass::kIN},
                     [&](QueryResult r) { results.push_back(std::move(r)); });
  transport->resolve(dns::Question{dns::DnsName::parse("b.example"),
                                   dns::RRType::kA, dns::RRClass::kIN},
                     [&](QueryResult r) { results.push_back(std::move(r)); });
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_EQ(results.size(), 2u);
  // Both queries paid a fresh handshake — the dnsproxy bug.
  EXPECT_TRUE(results[0].new_session);
  EXPECT_TRUE(results[1].new_session);
  EXPECT_GT(results[1].handshake_time(), 0);
}

// ------------------------------------------------------------------- DoUDP

TEST_F(DoxFixture, DoUdpRetransmitsAfterFiveSeconds) {
  auto profile = default_profile();
  start_resolver(profile);
  // Make the forward path lossy enough that the first datagram dies.
  network_.set_loss_override(client_host_.address(),
                             resolver_->profile().address, 1.0);
  auto transport = make_transport(DnsProtocol::kDoUdp, deps(),
                                  options_for(DnsProtocol::kDoUdp));
  std::optional<QueryResult> result;
  transport->resolve(dns::Question{dns::DnsName::parse("google.com"),
                                   dns::RRType::kA, dns::RRClass::kIN},
                     [&](QueryResult r) { result = std::move(r); });
  sim_.run_until(sim_.now() + 4 * kSecond);
  // Restore the path before the 5 s retry fires.
  network_.set_loss_override(client_host_.address(),
                             resolver_->profile().address, 0.0);
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok());
  EXPECT_GE(result->udp_retransmissions, 1);
  // The 5-second application-layer timeout dominates the resolve time —
  // the paper's DoUDP outlier mechanism.
  EXPECT_GT(result->resolve_time(), 5 * kSecond);
}

TEST_F(DoxFixture, DoUdpFailsAfterAllRetries) {
  start_resolver(default_profile());
  network_.set_loss_override(client_host_.address(),
                             resolver_->profile().address, 1.0);
  TransportOptions opts = options_for(DnsProtocol::kDoUdp);
  opts.query_timeout = 20 * kSecond;
  auto transport = make_transport(DnsProtocol::kDoUdp, deps(), opts);
  std::optional<QueryResult> result;
  transport->resolve(dns::Question{dns::DnsName::parse("google.com"),
                                   dns::RRType::kA, dns::RRClass::kIN},
                     [&](QueryResult r) { result = std::move(r); });
  sim_.run_until(sim_.now() + 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
}

// ----------------------------------------------- RFC extensions / options

TEST_F(DoxFixture, WwwNamesReturnCnameChain) {
  start_resolver(default_profile());
  auto transport = make_transport(DnsProtocol::kDoUdp, deps(),
                                  options_for(DnsProtocol::kDoUdp));
  QueryResult r = query(*transport, "www.example.net");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.response.answers.size(), 2u);
  EXPECT_EQ(r.response.answers[0].type, dns::RRType::kCNAME);
  EXPECT_EQ(dns::rdata_as_name(r.response.answers[0])->to_string(),
            "example.net");
  EXPECT_EQ(r.response.answers[1].type, dns::RRType::kA);
  EXPECT_EQ(dns::rdata_as_a(r.response.answers[1]),
            resolver::authoritative_ipv4(dns::DnsName::parse("example.net")));
}

TEST_F(DoxFixture, InvalidTldYieldsNxdomain) {
  start_resolver(default_profile());
  auto transport = make_transport(DnsProtocol::kDoQ, deps(),
                                  options_for(DnsProtocol::kDoQ));
  QueryResult r = query(*transport, "nothing.invalid");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.response.rcode, dns::RCode::kNXDomain);
  EXPECT_TRUE(r.response.answers.empty());
  // Negative entries are cached too: the second query is fast.
  QueryResult again = query(*transport, "nothing.invalid");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.response.rcode, dns::RCode::kNXDomain);
  EXPECT_LT(again.resolve_time(), from_ms(40));
}

TEST_F(DoxFixture, TruncatedUdpResponseFallsBackToTcp) {
  start_resolver(default_profile());
  // txt2000.example yields a ~2 KB TXT answer: over the 1232-byte UDP limit.
  auto transport = make_transport(DnsProtocol::kDoUdp, deps(),
                                  options_for(DnsProtocol::kDoUdp));
  std::optional<QueryResult> result;
  transport->resolve(dns::Question{dns::DnsName::parse("txt2000.example"),
                                   dns::RRType::kTXT, dns::RRClass::kIN},
                     [&](QueryResult r) { result = std::move(r); });
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok()) << result->error();
  EXPECT_TRUE(result->tc_fallback);
  ASSERT_EQ(result->response.answers.size(), 1u);
  EXPECT_GT(result->response.answers[0].rdata.size(), 1999u);
  // The fallback costs the TCP handshake + exchange on top of the UDP RTT.
  EXPECT_GT(result->resolve_time(), from_ms(50));
}

TEST_F(DoxFixture, TruncationFallbackDisabledReturnsTcResponse) {
  start_resolver(default_profile());
  TransportOptions opts = options_for(DnsProtocol::kDoUdp);
  opts.tcp_fallback_on_truncation = false;
  auto transport = make_transport(DnsProtocol::kDoUdp, deps(), opts);
  std::optional<QueryResult> result;
  transport->resolve(dns::Question{dns::DnsName::parse("txt2000.example"),
                                   dns::RRType::kTXT, dns::RRClass::kIN},
                     [&](QueryResult r) { result = std::move(r); });
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok());
  EXPECT_TRUE(result->response.tc);
  EXPECT_TRUE(result->response.answers.empty());
  EXPECT_FALSE(result->tc_fallback);
}

TEST_F(DoxFixture, SmallTxtStaysOnUdp) {
  start_resolver(default_profile());
  auto transport = make_transport(DnsProtocol::kDoUdp, deps(),
                                  options_for(DnsProtocol::kDoUdp));
  std::optional<QueryResult> result;
  transport->resolve(dns::Question{dns::DnsName::parse("txt100.example"),
                                   dns::RRType::kTXT, dns::RRClass::kIN},
                     [&](QueryResult r) { result = std::move(r); });
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok());
  EXPECT_FALSE(result->tc_fallback);
  ASSERT_EQ(result->response.answers.size(), 1u);
}

TEST_F(DoxFixture, KeepaliveAdvertisementEnablesDoTcpReuse) {
  auto profile = default_profile();
  profile.supports_keepalive = true;
  start_resolver(profile);
  auto transport = make_transport(DnsProtocol::kDoTcp, deps(),
                                  options_for(DnsProtocol::kDoTcp));
  QueryResult first = query(*transport, "a.example");
  QueryResult second = query(*transport, "b.example");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // RFC 7828 honoured: the second query reuses the connection.
  EXPECT_TRUE(first.new_session);
  EXPECT_FALSE(second.new_session);
  EXPECT_EQ(second.handshake_time(), 0);
}

TEST_F(DoxFixture, NoKeepaliveMeansFreshConnectionPerQuery) {
  start_resolver(default_profile());
  auto transport = make_transport(DnsProtocol::kDoTcp, deps(),
                                  options_for(DnsProtocol::kDoTcp));
  QueryResult first = query(*transport, "a.example");
  QueryResult second = query(*transport, "b.example");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first.new_session);
  EXPECT_TRUE(second.new_session);  // the paper's observed behaviour
}

TEST_F(DoxFixture, PaddedQueriesGrowToBlockSizes) {
  start_resolver(default_profile());
  WireStats plain, padded;
  warmed_query(DnsProtocol::kDoT, "google.com", {}, &plain);
  TransportOptions override;
  override.pad_encrypted = true;
  {
    TransportOptions opts = options_for(DnsProtocol::kDoT);
    opts.pad_encrypted = true;
    auto warm = make_transport(DnsProtocol::kDoT, deps(), opts);
    QueryResult r = query(*warm, "google.com");
    ASSERT_TRUE(r.ok());
    sim_.run_until(sim_.now() + 300 * kMillisecond);
    warm->reset_sessions();
    sim_.run_until(sim_.now() + kSecond);
    auto measured = make_transport(DnsProtocol::kDoT, deps(), opts);
    QueryResult m = query(*measured, "google.com");
    ASSERT_TRUE(m.ok());
    sim_.run_until(sim_.now() + 300 * kMillisecond);
    measured->reset_sessions();
    sim_.run_until(sim_.now() + kSecond);
    padded = measured->wire_stats();
  }
  // RFC 8467 padding inflates both directions (128-byte query blocks,
  // 468-byte response blocks).
  EXPECT_GT(padded.query_c2r(), plain.query_c2r() + 50);
  EXPECT_GT(padded.response_r2c(), plain.response_r2c() + 100);
}

// ----------------------------------------------------- Table 1 byte shapes

TEST_F(DoxFixture, WireBytesReproduceTableOneShape) {
  start_resolver(default_profile());
  WireStats udp, tcp, dot, doh, doq;
  warmed_query(DnsProtocol::kDoUdp, "google.com", {}, &udp);
  warmed_query(DnsProtocol::kDoTcp, "google.com", {}, &tcp);
  warmed_query(DnsProtocol::kDoT, "google.com", {}, &dot);
  warmed_query(DnsProtocol::kDoH, "google.com", {}, &doh);
  warmed_query(DnsProtocol::kDoQ, "google.com", {}, &doq);

  // Paper Table 1 anchors (medians, bytes): DoUDP query 59 / response 63.
  EXPECT_EQ(udp.query_c2r(), 59u);
  EXPECT_EQ(udp.response_r2c(), 63u);

  // DoTCP handshake: SYN+ACK = 72 C->R, SYN-ACK = 40 R->C.
  EXPECT_EQ(tcp.handshake_c2r, 72u);
  EXPECT_EQ(tcp.handshake_r2c, 40u);

  // Ordering relations that define the paper's size story:
  //  * DoQ handshake is by far the largest (>= 2x DoH) due to padding.
  EXPECT_GE(doq.handshake_c2r + doq.handshake_r2c,
            2 * (doh.handshake_c2r + doh.handshake_r2c));
  //  * Encrypted handshakes dwarf DoTCP's.
  EXPECT_GT(dot.handshake_c2r + dot.handshake_r2c, 400u);
  //  * DoH queries/responses are the largest due to H2 overhead.
  EXPECT_GT(doh.query_c2r(), dot.query_c2r());
  EXPECT_GT(doh.response_r2c(), dot.response_r2c());
  //  * Totals order as in Table 1: UDP < TCP < DoT < DoH < DoQ.
  EXPECT_LT(udp.total(), tcp.total());
  EXPECT_LT(tcp.total(), dot.total());
  EXPECT_LT(dot.total(), doh.total());
  EXPECT_LT(doh.total(), doq.total());
}

TEST_F(DoxFixture, ResumedTlsHandshakeOmitsCertificateBytes) {
  start_resolver(default_profile());
  WireStats cold, warm;
  {
    TransportOptions opts = options_for(DnsProtocol::kDoT);
    auto transport = make_transport(DnsProtocol::kDoT, deps(), opts);
    QueryResult r = query(*transport, "google.com");
    ASSERT_TRUE(r.ok());
    transport->reset_sessions();
    sim_.run_until(sim_.now() + kSecond);
    cold = transport->wire_stats();
  }
  warmed_query(DnsProtocol::kDoT, "google.com", {}, &warm);
  // Cold handshake carries the ~3000-byte chain; resumed does not.
  EXPECT_GT(cold.handshake_r2c, 3000u);
  EXPECT_LT(warm.handshake_r2c, 600u);
}

}  // namespace
}  // namespace doxlab::dox
