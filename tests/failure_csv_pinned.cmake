# Pin for the per-protocol x error-class failure report: runs a small
# single-query study (whose seed makes a handful of queries hit the 0.2%
# packet-loss budget hard enough to exhaust their retries) and asserts the
# failure-rate CSV is bit-identical to the committed baseline. This guards
# two things at once: the deterministic classification of terminal errors
# (those losses must keep surfacing as `timeout`, never as some other
# class) and the report's column/row ordering.
#
# Invoked by ctest as:
#   cmake -DDOXPERF_BIN=... -DWORK_DIR=... -DEXPECTED_SHA256=... -P this_file
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${DOXPERF_BIN}" --resolvers=12 --reps=6 --seed=42
                        --failure-csv=failure_report.csv
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "doxperf --failure-csv failed (exit ${rc})")
endif()
file(SHA256 "${WORK_DIR}/failure_report.csv" actual)
if(NOT actual STREQUAL "${EXPECTED_SHA256}")
  message(FATAL_ERROR "failure_report.csv drifted: sha256 ${actual} != "
                      "pinned ${EXPECTED_SHA256} — error classification or "
                      "report layout changed observable behaviour")
endif()
# The pinned run is chosen to contain real failures; an all-zero report
# would pass the hash check only if the baseline itself were degenerate,
# so double-check the report still records at least one classified error.
file(STRINGS "${WORK_DIR}/failure_report.csv" lines)
set(total_failures 0)
foreach(line IN LISTS lines)
  if(line MATCHES "^[^,]+,[0-9]+,([0-9]+),")
    math(EXPR total_failures "${total_failures} + ${CMAKE_MATCH_1}")
  endif()
endforeach()
if(total_failures EQUAL 0)
  message(FATAL_ERROR "pinned failure report contains no failures — the "
                      "scenario no longer exercises error classification")
endif()
