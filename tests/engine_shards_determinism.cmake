# Sharded-engine determinism: the per-shard CSV (arrival counts, engine
# counters, event totals, event-stream digests) must be bit-identical run
# over run, at one shard and at eight. Any dependence of a shard's event
# stream on thread scheduling — an L2 read slipping past an epoch barrier, a
# shared buffer mutated cross-shard — shows up here as a digest flip.
#
# Invoked by ctest as:
#   cmake -DDOXPERF_BIN=... -DWORK_DIR=... -P this_file
file(MAKE_DIRECTORY "${WORK_DIR}")
foreach(shards 1 8)
  foreach(run a b)
    execute_process(COMMAND "${DOXPERF_BIN}" engine --shards=${shards}
                            --clients=5000 --qps=3000 --seconds=2
                            --shard-csv=shards${shards}_${run}.csv
                    WORKING_DIRECTORY "${WORK_DIR}"
                    RESULT_VARIABLE rc
                    OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "doxperf engine --shards=${shards} failed (exit ${rc})")
    endif()
  endforeach()
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${WORK_DIR}/shards${shards}_a.csv"
                          "${WORK_DIR}/shards${shards}_b.csv"
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "shard CSV differs between runs at --shards=${shards}")
  endif()
endforeach()
