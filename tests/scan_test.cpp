// Tests for the discovery pipeline: population construction matches the
// paper's distributions; the ZMap-style scan rediscovers exactly the
// planted resolvers (Fig. 1 funnel).
#include <gtest/gtest.h>

#include "net/network.h"
#include "scan/population.h"
#include "scan/scanner.h"
#include "sim/simulator.h"

namespace doxlab::scan {
namespace {

TEST(Population, ContinentQuotaSumsTo313) {
  int total = 0;
  for (const auto& [continent, quota] : verified_continent_quota()) {
    total += quota;
  }
  EXPECT_EQ(total, 313);
}

TEST(Population, FullScaleCountsMatchPaper) {
  sim::Simulator sim;
  net::Network network(sim, Rng(3));
  PopulationConfig config;  // full scale: 313 verified / 1216 DoQ
  Rng rng(42);
  Population population = build_population(network, config, rng);

  EXPECT_EQ(population.verified.size(), 313u);
  EXPECT_EQ(population.resolvers.size(), 1216u);

  // Continent distribution of the verified set (Fig. 1).
  EXPECT_EQ(population.verified_on(net::Continent::kEurope), 130);
  EXPECT_EQ(population.verified_on(net::Continent::kAsia), 128);
  EXPECT_EQ(population.verified_on(net::Continent::kNorthAmerica), 49);
  EXPECT_EQ(population.verified_on(net::Continent::kAfrica), 2);
  EXPECT_EQ(population.verified_on(net::Continent::kOceania), 2);
  EXPECT_EQ(population.verified_on(net::Continent::kSouthAmerica), 2);

  // Every verified resolver supports all five protocols.
  for (std::size_t index : population.verified) {
    const auto& p = population.resolvers[index]->profile();
    EXPECT_TRUE(p.supports_doudp && p.supports_dotcp && p.supports_dot &&
                p.supports_doh && p.supports_doq);
  }
  // No non-verified resolver supports all five.
  std::set<std::size_t> verified_set(population.verified.begin(),
                                     population.verified.end());
  for (std::size_t i = 0; i < population.resolvers.size(); ++i) {
    if (verified_set.contains(i)) continue;
    const auto& p = population.resolvers[i]->profile();
    EXPECT_FALSE(p.supports_doudp && p.supports_dotcp && p.supports_dot &&
                 p.supports_doh);
  }
}

TEST(Population, ProtocolSupportMarginalsApproximatePaper) {
  sim::Simulator sim;
  net::Network network(sim, Rng(3));
  PopulationConfig config;
  Rng rng(42);
  Population population = build_population(network, config, rng);
  int doudp = 0, dotcp = 0, dot = 0, doh = 0;
  for (const auto& resolver : population.resolvers) {
    const auto& p = resolver->profile();
    doudp += p.supports_doudp;
    dotcp += p.supports_dotcp;
    dot += p.supports_dot;
    doh += p.supports_doh;
  }
  // Paper: 548 / 706 / 1149 / 732 of 1216 (tolerance: random draws).
  EXPECT_NEAR(doudp, 548, 60);
  EXPECT_NEAR(dotcp, 706, 60);
  EXPECT_NEAR(dot, 1149, 60);
  EXPECT_NEAR(doh, 732, 60);
}

TEST(Population, FeatureMixApproximatesPaper) {
  sim::Simulator sim;
  net::Network network(sim, Rng(3));
  PopulationConfig config;
  config.verified_only = true;
  Rng rng(42);
  Population population = build_population(network, config, rng);
  int v1 = 0, tls13 = 0, i02 = 0, zero_rtt = 0, tfo = 0, keepalive = 0;
  const int n = static_cast<int>(population.resolvers.size());
  for (const auto& resolver : population.resolvers) {
    const auto& p = resolver->profile();
    v1 += p.quic_version == quic::QuicVersion::kV1;
    tls13 += p.max_tls == tls::TlsVersion::kTls13;
    i02 += p.doq_alpn == "doq-i02";
    zero_rtt += p.supports_0rtt;
    tfo += p.supports_tfo;
    keepalive += p.supports_keepalive;
    EXPECT_GE(p.certificate_chain_size, 1500u);
    EXPECT_LE(p.certificate_chain_size, 3800u);
  }
  EXPECT_NEAR(100.0 * v1 / n, 89.1, 5.0);
  EXPECT_NEAR(100.0 * tls13 / n, 99.0, 2.0);
  EXPECT_NEAR(100.0 * i02 / n, 87.4, 6.0);
  EXPECT_EQ(zero_rtt, 0);
  EXPECT_EQ(tfo, 0);
  EXPECT_EQ(keepalive, 0);
}

TEST(Population, AsQuotasMatchPaperHeadliners) {
  sim::Simulator sim;
  net::Network network(sim, Rng(3));
  PopulationConfig config;
  config.verified_only = true;
  Rng rng(42);
  Population population = build_population(network, config, rng);
  std::map<std::string, int> by_as;
  for (std::size_t index : population.verified) {
    ++by_as[population.resolvers[index]->profile().as_name];
  }
  EXPECT_EQ(by_as["ORACLE"], 47);
  EXPECT_EQ(by_as["DIGITALOCEAN"], 20);
  EXPECT_EQ(by_as["MNGTNET"], 18);
  EXPECT_EQ(by_as["OVHCLOUD"], 16);
}

TEST(Scanner, RediscoversPlantedPopulation) {
  sim::Simulator sim;
  net::Network network(sim, Rng(5));
  network.set_loss_rate(0.0);

  PopulationConfig config;
  config.verified_dox = 12;  // scaled-down world for test runtime
  config.total_doq = 40;
  Rng rng(42);
  Population population = build_population(network, config, rng);

  auto& scan_host = network.add_host(
      "scanner", net::IpAddress::from_octets(10, 9, 9, 9), {48.26, 11.67},
      net::Continent::kEurope);

  // Candidate space: all planted resolvers plus dark addresses.
  std::vector<net::IpAddress> candidates;
  for (const auto& resolver : population.resolvers) {
    candidates.push_back(resolver->profile().address);
  }
  const std::size_t live = candidates.size();
  for (int i = 0; i < 20; ++i) {
    candidates.push_back(net::IpAddress::from_octets(10, 200, 0,
                                                     std::uint8_t(i + 1)));
  }

  Ipv4Scanner scanner(network, scan_host, ScanConfig{});
  ScanReport report = scanner.run(candidates);

  EXPECT_EQ(report.addresses_probed, candidates.size());
  // Every live resolver answers the version probe; dark space stays silent.
  EXPECT_EQ(report.quic_hosts.size(), live);
  EXPECT_EQ(report.doq_resolvers.size(), live);
  // Exactly the verified subset supports all five protocols.
  EXPECT_EQ(report.verified_dox.size(), population.verified.size());
  // Per-protocol counts at least cover the verified subset.
  EXPECT_GE(report.doudp, static_cast<int>(population.verified.size()));
  EXPECT_GE(report.dot, report.doh);
}

}  // namespace
}  // namespace doxlab::scan
