// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace doxlab::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(10, [&] { order.push_back(2); });
  sim.schedule(10, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(100, [] {});
  sim.run();
  bool fired = false;
  sim.schedule(-50, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  Timer t = sim.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(t.armed());
  t.cancel();
  EXPECT_FALSE(t.armed());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int count = 0;
  Timer t = sim.schedule(10, [&] { ++count; });
  sim.run();
  EXPECT_FALSE(t.armed());
  t.cancel();
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, ReentrantSchedulingFromCallback) {
  Simulator sim;
  std::vector<SimTime> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 3) sim.schedule(5, tick);
  };
  sim.schedule(0, tick);
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{0, 5, 10}));
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(1234);
  EXPECT_EQ(sim.now(), 1234);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  Timer t = sim.schedule(99, [] {});
  t.cancel();
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, AbsoluteScheduling) {
  Simulator sim;
  SimTime seen = -1;
  sim.at(777, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 777);
}

TEST(Simulator, CancelInsideCallback) {
  // An ACK handler disarming a retransmission timer: the cancel happens
  // while another event is mid-flight.
  Simulator sim;
  bool retransmitted = false;
  Timer retransmit = sim.schedule(20, [&] { retransmitted = true; });
  sim.schedule(10, [&] { retransmit.cancel(); });
  sim.run();
  EXPECT_FALSE(retransmitted);
  EXPECT_EQ(sim.events_executed(), 1u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelOwnTimerInsideCallbackIsNoop) {
  Simulator sim;
  Timer self;
  int fired = 0;
  self = sim.schedule(10, [&] {
    ++fired;
    self.cancel();  // already popped; must not corrupt the slab
    EXPECT_FALSE(self.armed());
  });
  sim.schedule(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ReentrantScheduleAtCurrentInstantPreservesOrder) {
  // An event that schedules more work "now" runs it after events that were
  // already queued for the same instant (seq order), not before.
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] {
    order.push_back(1);
    sim.schedule(0, [&] { order.push_back(3); });
  });
  sim.schedule(10, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, RunUntilAllCancelledAdvancesClock) {
  // A queue holding only cancelled entries is logically empty: run_until
  // must drain it and still advance the clock to the deadline.
  Simulator sim;
  std::vector<Timer> timers;
  for (int i = 0; i < 8; ++i) {
    timers.push_back(sim.schedule(10 + i, [] {}));
  }
  for (Timer& t : timers) t.cancel();
  EXPECT_EQ(sim.pending(), 0u);
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.queued_entries(), 0u);
}

TEST(Simulator, TimerOutlivesSimulator) {
  // Handles share ownership of the slab (like the seed's shared state
  // block), so poking one after the Simulator dies is safe. A never-fired
  // event still reports armed — matching the original semantics where the
  // shared `fired` flag stays false.
  Timer t;
  {
    Simulator sim;
    t = sim.schedule(10, [] {});
  }
  EXPECT_TRUE(t.armed());
  t.cancel();
  EXPECT_FALSE(t.armed());
  t.cancel();  // double-cancel after death is also a no-op

  Timer fired_timer;
  {
    Simulator sim;
    fired_timer = sim.schedule(1, [] {});
    sim.run();
  }
  EXPECT_FALSE(fired_timer.armed());
  fired_timer.cancel();
}

TEST(Simulator, CompactionReclaimsCancelledEntries) {
  // When more than half the queue is dead, a sweep drops the cancelled
  // entries instead of leaving pop() to skip them one at a time.
  Simulator sim;
  std::vector<Timer> timers;
  constexpr int kEvents = 128;
  for (int i = 0; i < kEvents; ++i) {
    timers.push_back(sim.schedule(i, [] {}));
  }
  EXPECT_EQ(sim.queued_entries(), static_cast<std::size_t>(kEvents));
  // Cancel 3/4 of them; compaction triggers once dead*2 > queued.
  for (int i = 0; i < kEvents; ++i) {
    if (i % 4 != 0) timers[i].cancel();
  }
  EXPECT_GE(sim.compactions(), 1u);
  // The sweep dropped dead entries; later cancels may re-accumulate below
  // the trigger threshold, so the queue is smaller but not minimal.
  EXPECT_LT(sim.queued_entries(), static_cast<std::size_t>(kEvents));
  EXPECT_EQ(sim.pending(), static_cast<std::size_t>(kEvents / 4));
  // The survivors still fire.
  sim.run();
  EXPECT_EQ(sim.events_executed(), static_cast<std::uint64_t>(kEvents / 4));
}

TEST(Simulator, SmallQueueSkipsCompaction) {
  // Below the size floor, cancelled entries are reclaimed lazily on pop.
  Simulator sim;
  std::vector<Timer> timers;
  for (int i = 0; i < 16; ++i) timers.push_back(sim.schedule(i, [] {}));
  for (Timer& t : timers) t.cancel();
  EXPECT_EQ(sim.compactions(), 0u);
  EXPECT_EQ(sim.queued_entries(), 16u);  // still queued, lazily dead
  sim.run();
  EXPECT_EQ(sim.queued_entries(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, SlotReuseDoesNotConfuseStaleTimers) {
  // After an event fires, its slot is recycled; a stale handle onto the old
  // generation must not cancel the new occupant.
  Simulator sim;
  Timer old = sim.schedule(1, [] {});
  sim.run();
  bool fired = false;
  Timer fresh = sim.schedule(1, [&] { fired = true; });  // reuses the slot
  old.cancel();  // stale generation: must be a no-op
  EXPECT_TRUE(fresh.armed());
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, SmallCallbacksNeverHitEventFnHeap) {
  // The slab plus 96-byte inline EventFn storage means typical protocol
  // callbacks (a few pointers of capture) never fall back to the heap.
  const std::uint64_t before = EventFn::heap_allocations();
  Simulator sim;
  long counter = 0;
  void* a = &counter;
  void* b = &sim;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(i, [&counter, a, b] {
      counter += (a != b);
    });
  }
  sim.run();
  EXPECT_EQ(counter, 1000);
  EXPECT_EQ(EventFn::heap_allocations(), before);

  // An oversized capture (> inline buffer) must still work via the heap
  // fallback, and be counted.
  struct Big {
    char bytes[200] = {};
  } big;
  bool ran = false;
  sim.schedule(1, [big, &ran] { ran = big.bytes[0] == 0; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(EventFn::heap_allocations(), before + 1);
}

}  // namespace
}  // namespace doxlab::sim
