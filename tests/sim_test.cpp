// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace doxlab::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(10, [&] { order.push_back(2); });
  sim.schedule(10, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(100, [] {});
  sim.run();
  bool fired = false;
  sim.schedule(-50, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  Timer t = sim.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(t.armed());
  t.cancel();
  EXPECT_FALSE(t.armed());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int count = 0;
  Timer t = sim.schedule(10, [&] { ++count; });
  sim.run();
  EXPECT_FALSE(t.armed());
  t.cancel();
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, ReentrantSchedulingFromCallback) {
  Simulator sim;
  std::vector<SimTime> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 3) sim.schedule(5, tick);
  };
  sim.schedule(0, tick);
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{0, 5, 10}));
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(1234);
  EXPECT_EQ(sim.now(), 1234);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  Timer t = sim.schedule(99, [] {});
  t.cancel();
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, AbsoluteScheduling) {
  Simulator sim;
  SimTime seen = -1;
  sim.at(777, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 777);
}

}  // namespace
}  // namespace doxlab::sim
