// Unit tests for the network fabric: addressing, geography, latency model,
// packet delivery, loss, overrides, and UDP sockets.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/address.h"
#include "net/geo.h"
#include "net/latency.h"
#include "net/link.h"
#include "net/network.h"
#include "net/udp.h"
#include "sim/simulator.h"

namespace doxlab::net {
namespace {

TEST(IpAddress, ParseValid) {
  auto a = IpAddress::parse("192.168.1.42");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "192.168.1.42");
  EXPECT_EQ(a->value(), 0xC0A8012Au);
}

TEST(IpAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("256.1.1.1").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("1..2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.1234").has_value());
}

TEST(IpAddress, OctetConstruction) {
  EXPECT_EQ(IpAddress::from_octets(8, 8, 8, 8).to_string(), "8.8.8.8");
  EXPECT_EQ(kLoopback.to_string(), "127.0.0.1");
}

TEST(Endpoint, Formatting) {
  Endpoint e{IpAddress::from_octets(1, 2, 3, 4), 853};
  EXPECT_EQ(e.to_string(), "1.2.3.4:853");
}

TEST(Geo, HaversineKnownDistances) {
  // Frankfurt <-> Singapore is roughly 10,260 km.
  GeoPoint fra{50.11, 8.68};
  GeoPoint sin{1.35, 103.82};
  EXPECT_NEAR(haversine_km(fra, sin), 10260, 300);
  // Zero distance.
  EXPECT_NEAR(haversine_km(fra, fra), 0.0, 1e-9);
}

TEST(Geo, ContinentCodesRoundTrip) {
  for (Continent c : all_continents()) {
    EXPECT_EQ(continent_from_code(continent_code(c)), c);
  }
  EXPECT_THROW(continent_from_code("XX"), std::invalid_argument);
}

TEST(Geo, SixVantagePointsOnePerContinent) {
  const auto& vps = vantage_point_cities();
  ASSERT_EQ(vps.size(), 6u);
  std::set<Continent> seen;
  for (const auto& vp : vps) seen.insert(vp.continent);
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Latency, GrowsWithDistance) {
  LatencyModel model;
  GeoPoint fra{50.11, 8.68};
  GeoPoint ams{52.37, 4.90};
  GeoPoint sin{1.35, 103.82};
  const SimTime near = model.base_one_way(fra, ams, 1000, 1000);
  const SimTime far = model.base_one_way(fra, sin, 1000, 1000);
  EXPECT_LT(near, far);
  // Frankfurt->Singapore one-way should be in the tens of milliseconds.
  EXPECT_GT(far, from_ms(50));
  EXPECT_LT(far, from_ms(150));
}

TEST(Latency, RespectsMinimumPropagation) {
  LatencyModel model;
  GeoPoint p{10, 10};
  EXPECT_GE(model.base_one_way(p, p, 0, 0),
            model.config().min_propagation);
}

TEST(Latency, JitterIsPositiveAndBounded) {
  LatencyModel model;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    SimTime j = model.jitter(rng);
    EXPECT_GE(j, 0);
    EXPECT_LE(j, from_ms(250));
  }
}

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture()
      : network_(sim_, Rng(123)),
        a_(network_.add_host("a", IpAddress::from_octets(10, 0, 0, 1),
                             {50.11, 8.68}, Continent::kEurope)),
        b_(network_.add_host("b", IpAddress::from_octets(10, 0, 0, 2),
                             {52.37, 4.90}, Continent::kEurope)) {
    network_.set_loss_rate(0.0);
  }

  sim::Simulator sim_;
  Network network_;
  Host& a_;
  Host& b_;
};

TEST_F(NetworkFixture, DuplicateAddressThrows) {
  EXPECT_THROW(network_.add_host("dup", a_.address(), {0, 0},
                                 Continent::kEurope),
               std::invalid_argument);
}

TEST_F(NetworkFixture, UdpDelivery) {
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();

  std::vector<std::uint8_t> received;
  Endpoint from{};
  server->on_datagram([&](const Endpoint& src, util::Buffer d) {
    from = src;
    received.assign(d.data(), d.data() + d.size());
  });

  client->send_to(Endpoint{b_.address(), 53}, {1, 2, 3});
  sim_.run();
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(from.address, a_.address());
  EXPECT_EQ(from.port, client->port());
  // Accounting includes the 8-byte UDP header.
  EXPECT_EQ(client->bytes_sent(), 11u);
  EXPECT_EQ(server->bytes_received(), 11u);
}

TEST_F(NetworkFixture, DeliveryDelayMatchesPathOverride) {
  network_.set_path_override(a_.address(), b_.address(), from_ms(10));
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();
  SimTime arrival = -1;
  server->on_datagram(
      [&](const Endpoint&, util::Buffer) { arrival = sim_.now(); });
  client->send_to(Endpoint{b_.address(), 53}, {0});
  sim_.run();
  // Path override pins the base delay; jitter is still added.
  EXPECT_GE(arrival, from_ms(10));
  EXPECT_LT(arrival, from_ms(260));
}

// Batched delivery: a window wide enough to swallow the base delay plus
// worst-case jitter (250 ms) makes bucket membership deterministic — every
// datagram sent before the boundary lands in the same flush.
TEST_F(NetworkFixture, BatchWindowCoalescesDatagramsInSendOrder) {
  network_.set_batch_window(kSecond);
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();

  std::size_t batches = 0;
  std::vector<std::uint8_t> order;
  SimTime delivered_at = -1;
  server->on_batch([&](std::span<Datagram> batch) {
    ++batches;
    delivered_at = sim_.now();
    for (const Datagram& d : batch) order.push_back(d.payload.view()[0]);
  });

  client->send_to(Endpoint{b_.address(), 53}, {1});
  client->send_to(Endpoint{b_.address(), 53}, {2});
  client->send_to(Endpoint{b_.address(), 53}, {3});
  sim_.run();

  // One event for the burst, payloads in send order (staging order is send
  // order, independent of per-packet jitter), at the bucket boundary.
  EXPECT_EQ(batches, 1u);
  EXPECT_EQ(order, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(delivered_at, kSecond);
  // Byte accounting still counts every datagram (8-byte UDP header each).
  EXPECT_EQ(server->bytes_received(), 3u * 9u);
}

TEST_F(NetworkFixture, BatchFallsBackToPerDatagramHandler) {
  network_.set_batch_window(kSecond);
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();

  // No on_batch handler: the batch unrolls into the per-datagram callback.
  std::vector<std::uint8_t> seen;
  server->on_datagram([&](const Endpoint&, util::Buffer payload) {
    seen.push_back(payload.view()[0]);
  });
  client->send_to(Endpoint{b_.address(), 53}, {7});
  client->send_to(Endpoint{b_.address(), 53}, {8});
  sim_.run();
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{7, 8}));
}

TEST_F(NetworkFixture, BatchSplitsRunsPerDestinationPort) {
  network_.set_batch_window(kSecond);
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto dns = stack_b.bind(53);
  auto other = stack_b.bind(54);
  auto client = stack_a.bind_ephemeral();

  std::vector<std::size_t> dns_runs;
  std::size_t other_count = 0;
  dns->on_batch(
      [&](std::span<Datagram> batch) { dns_runs.push_back(batch.size()); });
  other->on_batch(
      [&](std::span<Datagram> batch) { other_count += batch.size(); });

  // Interleaved ports: consecutive same-port runs stay batched, a port
  // switch cuts the run — order across the whole burst is preserved.
  client->send_to(Endpoint{b_.address(), 53}, {1});
  client->send_to(Endpoint{b_.address(), 53}, {2});
  client->send_to(Endpoint{b_.address(), 54}, {3});
  client->send_to(Endpoint{b_.address(), 53}, {4});
  sim_.run();
  EXPECT_EQ(dns_runs, (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(other_count, 1u);
}

TEST_F(NetworkFixture, BatchDroppedWhenHostGoesDownBeforeFlush) {
  network_.set_batch_window(kSecond);
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();
  std::size_t received = 0;
  server->on_batch(
      [&](std::span<Datagram> batch) { received += batch.size(); });

  client->send_to(Endpoint{b_.address(), 53}, {1});
  b_.set_up(false);  // goes down between send and the bucket boundary
  sim_.run();
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(network_.counters().packets_unroutable, 1u);
}

TEST_F(NetworkFixture, SendBatchShipsEveryDatagramAndClears) {
  // The latency model routes SOURCES too: a spoofed address must resolve
  // to a fronting host (same contract the engine swarm's client prefix
  // route provides).
  network_.add_prefix_route(IpAddress::from_octets(10, 99, 0, 0), 24,
                            a_.address());
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();

  std::vector<std::pair<std::uint32_t, std::uint8_t>> seen;
  server->on_datagram([&](const Endpoint& from, util::Buffer payload) {
    seen.emplace_back(from.address.value(), payload.view()[0]);
  });

  std::vector<OutboundDatagram> out;
  {
    OutboundDatagram d;
    d.to = Endpoint{b_.address(), 53};
    const std::uint8_t byte1[] = {1};
    d.payload = util::Buffer::copy_of(byte1);
    out.push_back(std::move(d));
  }
  {
    // Spoofed source: the response path the engine swarm relies on.
    OutboundDatagram d;
    d.to = Endpoint{b_.address(), 53};
    d.source = IpAddress::from_octets(10, 99, 0, 7);
    const std::uint8_t byte2[] = {2};
    d.payload = util::Buffer::copy_of(byte2);
    out.push_back(std::move(d));
  }
  client->send_batch(out);
  EXPECT_TRUE(out.empty());  // consumed
  sim_.run();
  // Per-packet jitter may reorder unbatched delivery: compare as a set.
  std::sort(seen.begin(), seen.end(),
            [](const auto& x, const auto& y) { return x.second < y.second; });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, a_.address().value());
  EXPECT_EQ(seen[0].second, 1);
  EXPECT_EQ(seen[1].first, IpAddress::from_octets(10, 99, 0, 7).value());
  EXPECT_EQ(seen[1].second, 2);
}

TEST_F(NetworkFixture, FullLossDropsEverything) {
  network_.set_loss_override(a_.address(), b_.address(), 1.0);
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();
  bool got = false;
  server->on_datagram(
      [&](const Endpoint&, util::Buffer) { got = true; });
  for (int i = 0; i < 50; ++i) {
    client->send_to(Endpoint{b_.address(), 53}, {0});
  }
  sim_.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(network_.counters().packets_lost, 50u);
}

TEST_F(NetworkFixture, DownHostDropsAtDelivery) {
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();
  bool got = false;
  server->on_datagram(
      [&](const Endpoint&, util::Buffer) { got = true; });
  b_.set_up(false);
  client->send_to(Endpoint{b_.address(), 53}, {0});
  sim_.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(network_.counters().packets_unroutable, 1u);
}

TEST_F(NetworkFixture, UnboundPortIsSilentlyDropped) {
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto client = stack_a.bind_ephemeral();
  client->send_to(Endpoint{b_.address(), 999}, {0});
  sim_.run();  // must not crash
  EXPECT_EQ(network_.counters().packets_delivered, 1u);
}

TEST_F(NetworkFixture, TapSeesEveryPacket) {
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();
  int tapped = 0;
  network_.set_tap([&](const Packet& p) {
    ++tapped;
    EXPECT_EQ(p.protocol, kProtoUdp);
  });
  client->send_to(Endpoint{b_.address(), 53}, {9, 9});
  sim_.run();
  EXPECT_EQ(tapped, 1);
}

TEST_F(NetworkFixture, LoopbackIsFastAndLossless) {
  network_.set_loss_rate(1.0);  // loopback must ignore loss
  UdpStack stack_a(a_);
  auto server = stack_a.bind(53);
  auto client = stack_a.bind_ephemeral();
  SimTime arrival = -1;
  server->on_datagram(
      [&](const Endpoint&, util::Buffer) { arrival = sim_.now(); });
  client->send_to(Endpoint{a_.address(), 53}, {0});
  sim_.run();
  EXPECT_GE(arrival, 0);
  EXPECT_LE(arrival, from_ms(1));
}

TEST_F(NetworkFixture, EphemeralPortsAreDistinct) {
  UdpStack stack_a(a_);
  auto s1 = stack_a.bind_ephemeral();
  auto s2 = stack_a.bind_ephemeral();
  EXPECT_NE(s1->port(), s2->port());
}

TEST_F(NetworkFixture, RebindAfterCloseWorks) {
  UdpStack stack_a(a_);
  {
    auto s = stack_a.bind(5353);
    EXPECT_THROW(stack_a.bind(5353), std::invalid_argument);
  }
  auto s2 = stack_a.bind(5353);  // destructor unbinds
  EXPECT_EQ(s2->port(), 5353);
}

// ------------------------------------------------------------- link models

/// Fixture helpers for pushing N datagrams a->b and counting arrivals.
class LinkFixture : public NetworkFixture {
 protected:
  /// Sends `count` one-byte datagrams at `spacing` intervals; returns how
  /// many arrive and records the last arrival time.
  std::size_t pump(std::size_t count, SimTime spacing,
                   std::size_t payload_bytes = 1) {
    UdpStack stack_a(a_);
    UdpStack stack_b(b_);
    auto server = stack_b.bind(53);
    auto client = stack_a.bind_ephemeral();
    std::size_t received = 0;
    server->on_datagram([&](const Endpoint&, util::Buffer) {
      ++received;
      last_arrival_ = sim_.now();
    });
    const std::vector<std::uint8_t> payload(payload_bytes, 0x55);
    for (std::size_t i = 0; i < count; ++i) {
      sim_.schedule(static_cast<SimTime>(i) * spacing,
                    [client = client.get(), &payload, this] {
                      client->send_to(Endpoint{b_.address(), 53}, payload);
                    });
    }
    sim_.run();
    return received;
  }

  SimTime last_arrival_ = -1;
};

TEST_F(LinkFixture, InfiniteRateLinkIsTransparent) {
  network_.set_host_ingress_link(b_.address(),
                                 network_.add_link(LinkConfig{}));
  EXPECT_EQ(pump(10, from_ms(1)), 10u);
  EXPECT_EQ(network_.counters().packets_link_dropped, 0u);
  EXPECT_EQ(network_.link_totals().packets, 10u);
}

TEST_F(LinkFixture, FiniteRateLinkAddsSerializationDelay) {
  // 1200-byte payload at 100 kbit/s: ~97 ms of serialization per packet
  // (1208 wire bytes * 8 / 1e5) on top of the fabric's base delay.
  LinkConfig slow;
  slow.rate_bps = 1e5;
  network_.set_host_ingress_link(b_.address(), network_.add_link(slow));
  ASSERT_EQ(pump(1, from_ms(1), 1200), 1u);
  EXPECT_GE(last_arrival_, from_ms(96));
}

TEST_F(LinkFixture, FullQueueTailDropsAndCounts) {
  // A burst of back-to-back packets into a slow, shallow queue: the first
  // fills the transmitter, a few queue, the rest tail-drop.
  LinkConfig slow;
  slow.rate_bps = 1e5;      // 12.5 kB/s
  slow.queue_bytes = 2000;  // fits only one ~1208-byte packet behind it
  network_.set_host_ingress_link(b_.address(), network_.add_link(slow));
  const std::size_t received = pump(10, 0, 1200);
  EXPECT_LT(received, 10u);
  const LinkStats totals = network_.link_totals();
  EXPECT_EQ(totals.tail_drops, 10u - received);
  EXPECT_EQ(network_.counters().packets_link_dropped, 10u - received);
  EXPECT_GT(totals.queued_bytes_max, 0u);
  EXPECT_LE(totals.queued_bytes_max, slow.queue_bytes);
}

TEST_F(LinkFixture, DeepQueueIsBufferbloatNotLoss) {
  LinkConfig bloated;
  bloated.rate_bps = 1e5;
  bloated.queue_bytes = 64 * 1024;  // swallows the whole burst
  network_.set_host_ingress_link(b_.address(), network_.add_link(bloated));
  EXPECT_EQ(pump(10, 0, 1200), 10u);
  // The 10th packet waited behind ~9 x 97 ms of backlog.
  EXPECT_GE(last_arrival_, from_ms(850));
  EXPECT_EQ(network_.link_totals().tail_drops, 0u);
}

TEST_F(LinkFixture, DelayStepsApplyByScheduledTime) {
  LinkConfig handover;
  handover.delay_steps = {{0, 0}, {kSecond, from_ms(500)}};
  network_.set_host_ingress_link(b_.address(), network_.add_link(handover));
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto client = stack_a.bind_ephemeral();
  std::vector<SimTime> arrivals;
  server->on_datagram(
      [&](const Endpoint&, util::Buffer) { arrivals.push_back(sim_.now()); });
  client->send_to(Endpoint{b_.address(), 53}, {1});
  sim_.at(kSecond + from_ms(1), [&] {
    client->send_to(Endpoint{b_.address(), 53}, {2});
  });
  sim_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Before the step: base delay + jitter only (well under 500 ms). After:
  // the extra 500 ms one-way applies.
  EXPECT_LT(arrivals[0], from_ms(400));
  EXPECT_GE(arrivals[1], kSecond + from_ms(500));
}

TEST_F(LinkFixture, UnsortedDelayStepsThrow) {
  LinkConfig bad;
  bad.delay_steps = {{kSecond, from_ms(10)}, {0, 0}};
  EXPECT_THROW(network_.add_link(bad), std::invalid_argument);
}

TEST_F(LinkFixture, GilbertElliottMatchesStationaryLossAndBurstLength) {
  // Drive one link directly: the empirical loss rate must approach the
  // chain's stationary distribution and the mean burst length 1/p_bad_good.
  GilbertElliott chain;  // defaults: 2% enter, 25% leave, 50% loss in bad
  LinkConfig config;
  config.burst_loss = chain;
  Link link(config, /*seed=*/0xFEEDu);
  const int packets = 200000;
  int lost = 0;
  int bursts = 0;
  int burst_len = 0;
  std::vector<int> burst_lengths;
  for (int i = 0; i < packets; ++i) {
    if (!link.admit(100, static_cast<SimTime>(i) * 100)) {
      ++lost;
      ++burst_len;
    } else if (burst_len > 0) {
      ++bursts;
      burst_lengths.push_back(burst_len);
      burst_len = 0;
    }
  }
  const double empirical = static_cast<double>(lost) / packets;
  EXPECT_NEAR(empirical, chain.stationary_loss(), 0.005);
  double mean_burst = 0;
  for (int len : burst_lengths) mean_burst += len;
  mean_burst /= bursts;
  // Consecutive losses: geometric-ish runs while the chain sits in bad
  // state at 50% loss. Mean run length for the default chain is ~1.6-1.7;
  // allow generous tolerance, the point is "bursty, not iid".
  EXPECT_GT(mean_burst, 1.3);
  EXPECT_LT(mean_burst, 2.5);
  EXPECT_EQ(link.stats().burst_losses, static_cast<std::uint64_t>(lost));
}

TEST_F(LinkFixture, LinkLossIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    GilbertElliott chain;
    LinkConfig config;
    config.burst_loss = chain;
    Link link(config, seed);
    std::vector<bool> outcomes;
    for (int i = 0; i < 1000; ++i) {
      outcomes.push_back(link.admit(100, i * 100).has_value());
    }
    return outcomes;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST_F(LinkFixture, DefaultLinkMaterializesPerDirectionAndIsDeterministic) {
  // A default link lazily materializes one instance per directed pair:
  // saturating a->b must not consume b->a's queue, and identical runs must
  // produce identical outcomes.
  GilbertElliott chain;
  LinkConfig config;
  config.rate_bps = 1e5;
  config.queue_bytes = 4000;
  config.burst_loss = chain;

  auto run = [&] {
    sim::Simulator sim;
    Network network(sim, Rng(123));
    network.set_loss_rate(0.0);
    Host& a = network.add_host("a", IpAddress::from_octets(10, 0, 0, 1),
                               {50.11, 8.68}, Continent::kEurope);
    Host& b = network.add_host("b", IpAddress::from_octets(10, 0, 0, 2),
                               {52.37, 4.90}, Continent::kEurope);
    network.set_default_link(config);
    UdpStack stack_a(a);
    UdpStack stack_b(b);
    auto server = stack_b.bind(53);
    auto reverse = stack_a.bind(54);
    auto client = stack_a.bind_ephemeral();
    auto back = stack_b.bind_ephemeral();
    std::size_t forward = 0;
    std::size_t backward = 0;
    server->on_datagram([&](const Endpoint&, util::Buffer) { ++forward; });
    reverse->on_datagram([&](const Endpoint&, util::Buffer) { ++backward; });
    const std::vector<std::uint8_t> big(1200, 0x66);
    // Saturate a->b with a back-to-back burst while b->a sends one sparse
    // packet per 100 ms — the reverse direction's own queue stays empty.
    for (int i = 0; i < 40; ++i) {
      client->send_to(Endpoint{b.address(), 53}, big);
    }
    for (int i = 0; i < 5; ++i) {
      sim.schedule(i * from_ms(100), [&back, &a] {
        back->send_to(Endpoint{a.address(), 54}, {9});
      });
    }
    sim.run();
    return std::make_pair(forward, backward);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);             // fully deterministic end to end
  EXPECT_LT(first.first, 40u);          // forward burst overflows its queue
  EXPECT_GE(first.second, 4u);          // reverse path unaffected by it
}

TEST_F(LinkFixture, LossOverrideAppliesSymmetricallyBothDirections) {
  // set_loss_override is keyed on the unordered pair: full loss must kill
  // BOTH a->b and b->a traffic regardless of argument order.
  network_.set_loss_override(b_.address(), a_.address(), 1.0);
  UdpStack stack_a(a_);
  UdpStack stack_b(b_);
  auto server = stack_b.bind(53);
  auto reverse = stack_a.bind(54);
  auto client = stack_a.bind_ephemeral();
  auto back = stack_b.bind_ephemeral();
  std::size_t forward = 0;
  std::size_t backward = 0;
  server->on_datagram([&](const Endpoint&, util::Buffer) { ++forward; });
  reverse->on_datagram([&](const Endpoint&, util::Buffer) { ++backward; });
  for (int i = 0; i < 20; ++i) {
    client->send_to(Endpoint{b_.address(), 53}, {1});
    back->send_to(Endpoint{a_.address(), 54}, {2});
  }
  sim_.run();
  EXPECT_EQ(forward, 0u);
  EXPECT_EQ(backward, 0u);
}

TEST_F(LinkFixture, LossOverrideComposesWithLinkModels) {
  // A lossless override does not disable link-level drops: the iid draw
  // happens first, then the link's queue/chain — the layers compose.
  network_.set_loss_override(a_.address(), b_.address(), 0.0);
  LinkConfig slow;
  slow.rate_bps = 1e5;
  slow.queue_bytes = 2000;
  network_.set_host_ingress_link(b_.address(), network_.add_link(slow));
  const std::size_t received = pump(10, 0, 1200);
  EXPECT_LT(received, 10u);  // link still tail-drops the burst
  EXPECT_EQ(network_.link_totals().tail_drops, 10u - received);

  // And a full-loss override still kills traffic before it reaches the
  // link: no packets are even offered to it afterwards.
  network_.set_loss_override(a_.address(), b_.address(), 1.0);
  const std::uint64_t offered_before = network_.link_totals().packets;
  EXPECT_EQ(pump(5, from_ms(1)), 0u);
  EXPECT_EQ(network_.link_totals().packets, offered_before);
}

}  // namespace
}  // namespace doxlab::net
