// Tests for the sharded forwarder engine (engine/shard.h, engine/sharded.h):
// the offered load must be invariant under the shard count, repeated runs
// must be bit-identical (event-stream digests), the merged result must equal
// the sum of its shards, and the shared L2 must actually carry answers
// across shards.
#include <gtest/gtest.h>

#include "engine/sharded.h"
#include "policy/policy.h"

namespace doxlab::engine {
namespace {

/// Small-but-busy workload: hot names and a 1 s TTL clamp so shards keep
/// refreshing past warm-up, which is what drives traffic through the L2.
ShardedConfig small_config() {
  ShardedConfig config;
  config.seed = 7;
  config.clients = 5000;
  config.qps = 3000;
  config.duration = 2 * kSecond;
  config.names = 40;
  config.epoch = 50 * kMillisecond;
  config.engine.max_ttl = 1;
  return config;
}

TEST(ShardedEngine, LoadInvariantAcrossShardCounts) {
  ShardedConfig config = small_config();
  config.shards = 1;
  const ShardedResult one = run_sharded(config);
  config.shards = 4;
  const ShardedResult four = run_sharded(config);

  // Resharding only repartitions the one global schedule.
  EXPECT_EQ(one.total_arrivals, four.total_arrivals);
  EXPECT_EQ(one.load.sent, four.load.sent);
  EXPECT_EQ(one.load.answered, four.load.answered);
  EXPECT_EQ(one.engine.queries, four.engine.queries);
  EXPECT_GT(four.engine.queries, 0u);
  EXPECT_EQ(four.shards.size(), 4u);
}

TEST(ShardedEngine, RunToRunBitIdentical) {
  ShardedConfig config = small_config();
  config.shards = 4;
  const ShardedResult first = run_sharded(config);
  const ShardedResult second = run_sharded(config);

  EXPECT_EQ(first.merged_digest, second.merged_digest);
  ASSERT_EQ(first.shards.size(), second.shards.size());
  for (std::size_t i = 0; i < first.shards.size(); ++i) {
    EXPECT_EQ(first.shards[i].stream_digest, second.shards[i].stream_digest);
    EXPECT_EQ(first.shards[i].events, second.shards[i].events);
    EXPECT_EQ(first.shards[i].arrivals, second.shards[i].arrivals);
  }
  EXPECT_EQ(first.engine.cache_hits, second.engine.cache_hits);
  EXPECT_EQ(first.engine.l2_hits, second.engine.l2_hits);
  EXPECT_EQ(first.load.latency_ms, second.load.latency_ms);
}

TEST(ShardedEngine, MergedResultEqualsSumOfShards) {
  ShardedConfig config = small_config();
  config.shards = 4;
  const ShardedResult result = run_sharded(config);

  std::uint64_t queries = 0, hits = 0, sent = 0, answered = 0;
  std::uint64_t arrivals = 0, shed = 0;
  for (const ShardOutcome& shard : result.shards) {
    queries += shard.engine.queries;
    hits += shard.engine.cache_hits;
    sent += shard.load.sent;
    answered += shard.load.answered;
    arrivals += shard.arrivals;
    shed += shard.load.shed;
    // Per shard, every scheduled arrival was either sent or shed.
    EXPECT_EQ(shard.load.sent + shard.load.shed, shard.arrivals);
  }
  EXPECT_EQ(result.engine.queries, queries);
  EXPECT_EQ(result.engine.cache_hits, hits);
  EXPECT_EQ(result.load.sent, sent);
  EXPECT_EQ(result.load.answered, answered);
  EXPECT_EQ(result.total_arrivals, arrivals);
  EXPECT_EQ(result.load.shed, shed);
  // The merged report reconciles with the offered load.
  EXPECT_EQ(result.load.sent + result.load.shed, result.total_arrivals);
  EXPECT_EQ(result.load.latency_ms.size(), result.load.answered);
}

TEST(ShardedEngine, WideClientSpanStillRoutesReplies) {
  // The client prefix route is derived from client_span; a span wider than
  // the old hardcoded /16 must not blackhole replies to the high sources.
  ShardedConfig config = small_config();
  config.shards = 2;
  config.client_span = 1u << 20;
  const ShardedResult result = run_sharded(config);

  EXPECT_GT(result.load.sent, 0u);
  EXPECT_EQ(result.load.timeouts, 0u);  // a blackholed reply times out
  EXPECT_EQ(result.load.answered + result.load.servfails, result.load.sent);
}

TEST(ShardedEngine, SharedL2CarriesAnswersAcrossShards) {
  ShardedConfig config = small_config();
  config.shards = 4;
  const ShardedResult result = run_sharded(config);

  // Shards miss their L1 and find answers other shards resolved.
  EXPECT_GT(result.engine.l2_lookups, 0u);
  EXPECT_GT(result.engine.l2_hits, 0u);
  EXPECT_EQ(result.l2.deferred_inserts, result.l2.applied_inserts);
  EXPECT_EQ(result.l2.lock_misses, 0u);  // epoch-frozen table never contends

  // Disabling the L2 (capacity 0) keeps the engines off that path entirely.
  config.l2_capacity = 0;
  const ShardedResult off = run_sharded(config);
  EXPECT_EQ(off.engine.l2_lookups, 0u);
  EXPECT_EQ(off.engine.l2_hits, 0u);
  EXPECT_EQ(off.load.answered, result.load.answered);
}

TEST(ShardedEngine, ShardOfIsStableAndInRange) {
  ShardedConfig config = small_config();
  config.shards = 8;
  for (std::uint32_t client = 0; client < 200; ++client) {
    const net::IpAddress source = client_source(config, client);
    const std::uint32_t shard = shard_of(config, source);
    EXPECT_LT(shard, config.shards);
    EXPECT_EQ(shard, shard_of(config, source));  // pure function
  }
}

TEST(EngineStats, AddSumsCounters) {
  EngineStats a;
  a.queries = 10;
  a.cache_hits = 4;
  a.l2_hits = 2;
  a.l2_lookups = 3;
  a.coalesced = 1;
  EngineStats b;
  b.queries = 5;
  b.cache_hits = 1;
  b.l2_hits = 1;
  b.l2_lookups = 2;
  b.servfails_sent = 2;

  a.add(b);
  EXPECT_EQ(a.queries, 15u);
  EXPECT_EQ(a.cache_hits, 5u);
  EXPECT_EQ(a.l2_hits, 3u);
  EXPECT_EQ(a.l2_lookups, 5u);
  EXPECT_EQ(a.coalesced, 1u);
  EXPECT_EQ(a.servfails_sent, 2u);
}

TEST(ScaleRateLimits, SlicesCoarseBudgetsExactlyAcrossShards) {
  policy::ChainConfig chain;
  policy::RuleConfig limit;
  limit.name = "shed";
  limit.matcher = policy::MatcherKind::kRateLimit;
  limit.rate_qps = 100;
  limit.burst = 10;
  limit.subnet_prefix_len = 24;  // coarser than the /32 shard hash
  limit.action = policy::ActionKind::kDrop;
  policy::RuleConfig other;
  other.name = "pass";
  other.matcher = policy::MatcherKind::kAny;
  chain.rules = {limit, other};

  // The per-shard slices must sum exactly to the configured budget — the
  // aggregate a /24's clients see when spread across every shard.
  std::uint32_t total_rate = 0, total_burst = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const policy::ChainConfig split = policy::scale_rate_limits(chain, 4, i);
    EXPECT_EQ(split.rules[0].rate_qps, 25u);
    EXPECT_EQ(split.rules[1].rate_qps, 0u);  // non-limit rules untouched
    total_rate += split.rules[0].rate_qps;
    total_burst += split.rules[0].burst;
  }
  EXPECT_EQ(total_rate, 100u);
  EXPECT_EQ(total_burst, 10u);

  // More shards than qps: remainder distribution, no min-1 floor blowing
  // the aggregate up to one qps *per shard* — zero-share shards keep a
  // refill-free bucket (burst tokens only).
  std::uint32_t sparse_rate = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const policy::ChainConfig slice =
        policy::scale_rate_limits(chain, 1000, i);
    sparse_rate += slice.rules[0].rate_qps;
    EXPECT_GE(slice.rules[0].burst, 1u);  // limiter stays constructible
  }
  EXPECT_EQ(sparse_rate, 100u);

  // Single shard: unchanged.
  const policy::ChainConfig same = policy::scale_rate_limits(chain, 1, 0);
  EXPECT_EQ(same.rules[0].rate_qps, 100u);
  EXPECT_EQ(same.rules[0].burst, 10u);
}

TEST(ScaleRateLimits, AddressKeyedBudgetsAreNotDivided) {
  // Shards are source-hashed on the full /32 address, so a /32-keyed
  // bucket's traffic lands wholly on one shard: slicing its budget would
  // enforce rate/N — N times stricter than configured. The full budget
  // must survive on every shard.
  policy::ChainConfig chain;
  policy::RuleConfig limit;
  limit.matcher = policy::MatcherKind::kRateLimit;
  limit.rate_qps = 100;
  limit.burst = 10;
  limit.subnet_prefix_len = 32;
  limit.action = policy::ActionKind::kDrop;
  chain.rules = {limit};

  for (std::uint32_t i = 0; i < 8; ++i) {
    const policy::ChainConfig split = policy::scale_rate_limits(chain, 8, i);
    EXPECT_EQ(split.rules[0].rate_qps, 100u);
    EXPECT_EQ(split.rules[0].burst, 10u);
  }
}

}  // namespace
}  // namespace doxlab::engine
