// Unit tests for the TCP model: handshake timing, reliable delivery under
// loss and reordering, RFC 6298 retransmission, TFO, close semantics, and
// the byte accounting Table 1 depends on.
#include <gtest/gtest.h>

#include <numeric>

#include "net/network.h"
#include "sim/simulator.h"
#include "tcp/tcp.h"

namespace doxlab::tcp {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

class TcpFixture : public ::testing::Test {
 protected:
  TcpFixture()
      : network_(sim_, Rng(7)),
        client_host_(network_.add_host("client",
                                       IpAddress::from_octets(10, 0, 0, 1),
                                       {50.11, 8.68}, Continent::kEurope)),
        server_host_(network_.add_host("server",
                                       IpAddress::from_octets(10, 0, 0, 2),
                                       {52.37, 4.90}, Continent::kEurope)),
        client_(client_host_),
        server_(server_host_) {
    network_.set_loss_rate(0.0);
    // Pin a 10 ms one-way delay for deterministic timing assertions (jitter
    // still applies per packet, bounded by the model).
    network_.set_path_override(client_host_.address(), server_host_.address(),
                               from_ms(10));
  }

  /// Sets up an echo server on port 853 that sends back whatever it gets.
  void start_echo_server() {
    auto& listener = server_.listen(853);
    listener.on_accept([this](const std::shared_ptr<TcpConnection>& conn) {
      server_conn_ = conn;
      // Raw capture: the stack (and server_conn_) own the connection; a
      // shared capture in its own handler would leak it as a cycle.
      conn->on_data([c = conn.get()](std::span<const std::uint8_t> data) {
        c->send({data.begin(), data.end()});
      });
    });
  }

  sim::Simulator sim_;
  net::Network network_;
  net::Host& client_host_;
  net::Host& server_host_;
  TcpStack client_;
  TcpStack server_;
  std::shared_ptr<TcpConnection> server_conn_;
};

TEST_F(TcpFixture, HandshakeCompletesInOneRtt) {
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  bool connected = false;
  conn->on_connected([&] { connected = true; });
  sim_.run();
  ASSERT_TRUE(connected);
  ASSERT_TRUE(conn->connected_at().has_value());
  // 1 RTT = 20 ms base; generous jitter allowance.
  EXPECT_GE(*conn->connected_at(), from_ms(20));
  EXPECT_LT(*conn->connected_at(), from_ms(40));
}

TEST_F(TcpFixture, ConnectToClosedPortTimesOut) {
  auto conn = client_.connect(Endpoint{server_host_.address(), 999},
                              TcpOptions{.max_retransmits = 2});
  bool closed_with_error = false;
  conn->on_closed(
      [&](const util::Error& error) { closed_with_error = !error.ok(); });
  sim_.run();
  EXPECT_TRUE(closed_with_error);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
}

TEST_F(TcpFixture, EchoRoundTrip) {
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  std::vector<std::uint8_t> received;
  conn->on_data([&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  conn->send({1, 2, 3, 4, 5});
  sim_.run();
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST_F(TcpFixture, DataQueuedBeforeConnectFlushesAfterHandshake) {
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  conn->send({42});  // queued while SYN in flight
  std::vector<std::uint8_t> received;
  conn->on_data([&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  sim_.run();
  EXPECT_EQ(received, (std::vector<std::uint8_t>{42}));
  EXPECT_FALSE(conn->used_tfo());
}

TEST_F(TcpFixture, LargeTransferSegmentsAndReassembles) {
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  std::vector<std::uint8_t> payload(20000);
  std::iota(payload.begin(), payload.end(), 0);
  std::vector<std::uint8_t> received;
  conn->on_data([&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  conn->send(payload);
  sim_.run();
  // Echo returns the identical byte stream in order despite per-packet
  // jitter-induced reordering.
  EXPECT_EQ(received, payload);
}

TEST_F(TcpFixture, RetransmitsThroughModerateLoss) {
  network_.set_loss_override(client_host_.address(), server_host_.address(),
                             0.25);
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  std::vector<std::uint8_t> payload(30000, 0xAA);
  std::vector<std::uint8_t> received;
  conn->on_data([&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  conn->send(payload);
  sim_.run();
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_GT(network_.counters().packets_lost, 0u);
  EXPECT_GT(conn->retransmit_count() + server_conn_->retransmit_count(), 0u);
}

TEST_F(TcpFixture, FirstRetransmitUsesOneSecondInitialRto) {
  // Drop everything so the SYN never gets through; watch the retransmission
  // times. RFC 6298: 1 s initial RTO, doubling per attempt.
  network_.set_loss_override(client_host_.address(), server_host_.address(),
                             1.0);
  std::vector<SimTime> syn_times;
  network_.set_tap([&](const net::Packet& p) {
    if (p.protocol == net::kProtoTcp) syn_times.push_back(sim_.now());
  });
  auto conn = client_.connect(Endpoint{server_host_.address(), 853},
                              TcpOptions{.max_retransmits = 3});
  sim_.run();
  ASSERT_GE(syn_times.size(), 3u);
  EXPECT_EQ(syn_times[0], 0);
  EXPECT_EQ(syn_times[1], 1 * kSecond);          // first RTO
  EXPECT_EQ(syn_times[2], 3 * kSecond);          // backoff x2
  EXPECT_EQ(conn->state(), TcpState::kClosed);
}

TEST_F(TcpFixture, HandshakeByteAccountingMatchesModel) {
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  std::uint64_t sent_at_connect = 0;
  std::uint64_t received_at_connect = 0;
  conn->on_connected([&] {
    sent_at_connect = conn->bytes_sent();
    received_at_connect = conn->bytes_received();
  });
  sim_.run();
  // C->S: SYN (40) + final ACK (32) = 72 — the Table 1 DoTCP handshake
  // client-to-resolver figure. S->C: SYN-ACK (40).
  EXPECT_EQ(sent_at_connect, 72u);
  EXPECT_EQ(received_at_connect, 40u);
}

TEST_F(TcpFixture, GracefulCloseBothSides) {
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  bool client_closed = false, client_error = true;
  conn->on_closed([&](const util::Error& error) {
    client_closed = true;
    client_error = !error.ok();
  });
  conn->on_connected([&] { conn->close(); });
  // Server closes in response to FIN.
  auto& listener = server_.listen(854);
  (void)listener;
  sim_.run();
  // The echo server never closes on its own; close its side when FIN seen.
  // (Our close() above moved client to FIN_WAIT; server_conn_ is in
  // CLOSE_WAIT until we close it.)
  ASSERT_TRUE(server_conn_ != nullptr);
  if (server_conn_->state() == TcpState::kCloseWait) {
    server_conn_->close();
  }
  sim_.run();
  EXPECT_TRUE(client_closed);
  EXPECT_FALSE(client_error);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
  EXPECT_EQ(server_conn_->state(), TcpState::kClosed);
}

TEST_F(TcpFixture, AbortSendsRstAndClosesPeer) {
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  bool server_error = false;
  conn->on_connected([&] {
    server_conn_->on_closed(
        [&](const util::Error& error) { server_error = !error.ok(); });
    conn->abort();
  });
  sim_.run();
  EXPECT_EQ(conn->state(), TcpState::kClosed);
  EXPECT_TRUE(server_error);
}

TEST_F(TcpFixture, TfoCarriesDataOnSyn) {
  auto& listener = server_.listen(8443);
  listener.set_tfo_enabled(true);
  std::vector<std::uint8_t> server_got;
  SimTime data_at = -1;
  listener.on_accept([&](const std::shared_ptr<TcpConnection>& conn) {
    server_conn_ = conn;
    conn->on_data([&](std::span<const std::uint8_t> d) {
      server_got.assign(d.begin(), d.end());
      data_at = sim_.now();
    });
  });
  client_.learn_tfo_cookie(server_host_.address());
  auto conn = client_.connect(Endpoint{server_host_.address(), 8443},
                              TcpOptions{.enable_tfo = true});
  conn->send({9, 8, 7});
  sim_.run();
  EXPECT_TRUE(conn->used_tfo());
  EXPECT_EQ(server_got, (std::vector<std::uint8_t>{9, 8, 7}));
  // Early data arrives with the SYN: ~0.5 RTT, not 1.5 RTT.
  EXPECT_GE(data_at, from_ms(10));
  EXPECT_LT(data_at, from_ms(20));
}

TEST_F(TcpFixture, TfoWithoutCookieFallsBackToPlainHandshake) {
  auto& listener = server_.listen(8443);
  listener.set_tfo_enabled(true);
  start_echo_server();
  // No learn_tfo_cookie() call: client must not attempt TFO.
  auto conn = client_.connect(Endpoint{server_host_.address(), 8443},
                              TcpOptions{.enable_tfo = true});
  conn->send({1});
  sim_.run();
  EXPECT_FALSE(conn->used_tfo());
}

TEST_F(TcpFixture, TfoFallbackWhenListenerRejectsEarlyData) {
  // Server listener does not enable TFO: per RFC 7413 the SYN payload is
  // ignored, the SYN-ACK acknowledges only the SYN, and the client must
  // retransmit the data as a normal post-handshake segment.
  auto& listener = server_.listen(8444);
  std::vector<std::uint8_t> server_got;
  SimTime data_at = -1;
  listener.on_accept([&](const std::shared_ptr<TcpConnection>& conn) {
    server_conn_ = conn;
    conn->on_data([&](std::span<const std::uint8_t> d) {
      server_got.insert(server_got.end(), d.begin(), d.end());
      data_at = sim_.now();
    });
  });
  client_.learn_tfo_cookie(server_host_.address());
  auto conn = client_.connect(Endpoint{server_host_.address(), 8444},
                              TcpOptions{.enable_tfo = true});
  conn->send({5, 5});
  sim_.run();
  EXPECT_EQ(server_got, (std::vector<std::uint8_t>{5, 5}));
  EXPECT_FALSE(conn->used_tfo());
  // Data arrives only after the full handshake (~1.5 RTT = 30 ms).
  EXPECT_GE(data_at, from_ms(30));
}

TEST_F(TcpFixture, SrttConvergesNearPathRtt) {
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  std::vector<std::uint8_t> received;
  conn->on_data([&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  conn->send(std::vector<std::uint8_t>(8000, 1));
  sim_.run();
  ASSERT_TRUE(conn->srtt().has_value());
  EXPECT_GE(*conn->srtt(), from_ms(20));
  EXPECT_LT(*conn->srtt(), from_ms(45));
}

// --------------------------------------------- congestion control rewiring

TEST_F(TcpFixture, DefaultsToLegacyCongestionForPinnedBaseline) {
  // The byte-identical pinned artifacts (fig2/fig4/Table 1) depend on the
  // seed model's Tahoe-style behaviour staying the default.
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  EXPECT_EQ(conn->congestion().config().algorithm,
            cc::CcAlgorithm::kLegacySlowStart);
  EXPECT_FALSE(conn->congestion().fast_recovery_enabled());
}

TEST_F(TcpFixture, NewRenoFastRetransmitsUnderLoss) {
  network_.set_loss_override(client_host_.address(), server_host_.address(),
                             0.15);
  start_echo_server();
  auto conn =
      client_.connect(Endpoint{server_host_.address(), 853},
                      TcpOptions{.congestion_algorithm =
                                     cc::CcAlgorithm::kNewReno});
  std::vector<std::uint8_t> payload(60000, 0xAB);
  std::vector<std::uint8_t> received;
  conn->on_data([&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  conn->send(payload);
  sim_.run();
  EXPECT_EQ(received.size(), payload.size());
  // Gaps in a multi-segment flight produce dup acks; at least one loss must
  // repair via fast retransmit rather than a full RTO.
  EXPECT_GT(conn->fast_retransmit_count(), 0u);
  EXPECT_GT(conn->congestion().loss_episodes(), 0u);
  // NewReno halves; it never parks at the legacy 1-segment collapse.
  EXPECT_GE(conn->cwnd_bytes(), 2 * 1460u);
}

TEST_F(TcpFixture, KarnExcludesRetransmittedSegmentsFromSrtt) {
  start_echo_server();
  auto conn =
      client_.connect(Endpoint{server_host_.address(), 853},
                      TcpOptions{.congestion_algorithm =
                                     cc::CcAlgorithm::kNewReno});
  std::vector<std::uint8_t> received;
  conn->on_data([&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  // Let the handshake finish cleanly, then black-hole the path long enough
  // to force two RTO-backoff retransmissions of the first data segment
  // (sent ~100 ms, retried ~1.1 s and ~3.1 s, healed at 2.5 s).
  sim_.at(from_ms(100), [&] { conn->send({7, 7, 7, 7}); });
  sim_.at(from_ms(90), [&] {
    network_.set_loss_override(client_host_.address(),
                               server_host_.address(), 1.0);
  });
  sim_.at(from_ms(2500), [&] {
    network_.set_loss_override(client_host_.address(),
                               server_host_.address(), 0.0);
  });
  sim_.run();
  EXPECT_EQ(received.size(), 4u);
  EXPECT_GE(conn->retransmit_count(), 2u);
  // The ack that finally lands answers a RETRANSMITTED copy; sampling it
  // against the original ~100 ms send time would blow SRTT past 3 s. Karn
  // says skip it: SRTT stays at the handshake-measured ~20 ms path value.
  ASSERT_TRUE(conn->srtt().has_value());
  EXPECT_LT(*conn->srtt(), from_ms(100));
  // And the backoff clears once the ack advances snd_una (RFC 6298 5.7).
  EXPECT_EQ(conn->rto_backoff(), 0);
}

TEST_F(TcpFixture, LegacyModeNeverFastRetransmits) {
  // Same lossy transfer as the NewReno test, default (legacy) controller:
  // every repair must be a plain RTO, exactly like the seed model.
  network_.set_loss_override(client_host_.address(), server_host_.address(),
                             0.15);
  start_echo_server();
  auto conn = client_.connect(Endpoint{server_host_.address(), 853});
  std::vector<std::uint8_t> received;
  conn->on_data([&](std::span<const std::uint8_t> d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  conn->send(std::vector<std::uint8_t>(30000, 0xCD));
  sim_.run();
  EXPECT_EQ(received.size(), 30000u);
  EXPECT_EQ(conn->fast_retransmit_count(), 0u);
  EXPECT_EQ(server_conn_->fast_retransmit_count(), 0u);
}

}  // namespace
}  // namespace doxlab::tcp
