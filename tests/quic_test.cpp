// Unit + integration tests for the QUIC model: wire codec, handshake
// round-trip counts, padding/amplification behaviour, resumption, 0-RTT,
// Retry, Version Negotiation, streams, loss recovery, teardown.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/udp.h"
#include "quic/connection.h"
#include "quic/server.h"
#include "quic/wire.h"
#include "sim/simulator.h"

namespace doxlab::quic {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

// ---------------------------------------------------------------- wire codec

TEST(QuicWire, InitialPacketRoundTrip) {
  QuicPacket p;
  p.type = PacketType::kInitial;
  p.version = QuicVersion::kV1;
  p.dcid = 0x1111;
  p.scid = 0x2222;
  p.packet_number = 7;
  p.token = {1, 2, 3};
  p.frames.push_back(Frame::crypto(0, {9, 9, 9, 9}));
  p.frames.push_back(Frame::ack({{0, 5}}));

  auto bytes = encode_packet(p);
  auto decoded = decode_datagram(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  const QuicPacket& q = (*decoded)[0];
  EXPECT_EQ(q.type, PacketType::kInitial);
  EXPECT_EQ(q.version, QuicVersion::kV1);
  EXPECT_EQ(q.dcid, 0x1111u);
  EXPECT_EQ(q.scid, 0x2222u);
  EXPECT_EQ(q.packet_number, 7u);
  EXPECT_EQ(q.token, (std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_EQ(q.frames.size(), 2u);
  EXPECT_EQ(q.frames[0].type, FrameType::kCrypto);
  EXPECT_EQ(q.frames[0].data.size(), 4u);
  EXPECT_EQ(q.frames[1].type, FrameType::kAck);
  ASSERT_EQ(q.frames[1].ack_ranges.size(), 1u);
  EXPECT_EQ(q.frames[1].ack_ranges[0], (AckRange{0, 5}));
  EXPECT_TRUE(q.frames[1].acks(3));
  EXPECT_FALSE(q.frames[1].acks(6));
}

TEST(QuicWire, StreamFrameRoundTripWithFin) {
  QuicPacket p;
  p.type = PacketType::kOneRtt;
  p.dcid = 0xAB;
  p.packet_number = 3;
  p.frames.push_back(Frame::stream(4, 100, {1, 2}, true));
  auto decoded = decode_datagram(encode_packet(p));
  ASSERT_TRUE(decoded.has_value());
  const Frame& f = (*decoded)[0].frames[0];
  EXPECT_EQ(f.type, FrameType::kStream);
  EXPECT_EQ(f.stream_id, 4u);
  EXPECT_EQ(f.offset, 100u);
  EXPECT_TRUE(f.fin);
}

TEST(QuicWire, ConnectionCloseRoundTrip) {
  QuicPacket p;
  p.type = PacketType::kOneRtt;
  p.packet_number = 1;
  p.frames.push_back(Frame::connection_close(0x0A, "bye"));
  auto decoded = decode_datagram(encode_packet(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ((*decoded)[0].frames[0].error_code, 0x0Au);
  EXPECT_EQ((*decoded)[0].frames[0].reason, "bye");
}

TEST(QuicWire, ClientPadsEveryInitialDatagram) {
  QuicPacket ack_only;
  ack_only.type = PacketType::kInitial;
  ack_only.frames.push_back(Frame::ack({{0, 0}}));
  auto client_dgram =
      encode_datagram(std::span(&ack_only, 1), /*sender_is_client=*/true);
  EXPECT_GE(client_dgram.size(), kMinInitialDatagram);
  // Servers only pad ack-eliciting INITIALs; a bare ACK stays small.
  auto server_dgram =
      encode_datagram(std::span(&ack_only, 1), /*sender_is_client=*/false);
  EXPECT_LT(server_dgram.size(), 100u);
}

TEST(QuicWire, ServerPadsAckElicitingInitial) {
  QuicPacket initial;
  initial.type = PacketType::kInitial;
  initial.frames.push_back(Frame::crypto(0, {1}));
  auto dgram =
      encode_datagram(std::span(&initial, 1), /*sender_is_client=*/false);
  EXPECT_GE(dgram.size(), kMinInitialDatagram);
}

TEST(QuicWire, CoalescedPacketsDecodeInOrder) {
  QuicPacket a;
  a.type = PacketType::kInitial;
  a.frames.push_back(Frame::crypto(0, {1}));
  QuicPacket b;
  b.type = PacketType::kHandshake;
  b.frames.push_back(Frame::crypto(0, {2}));
  QuicPacket c;
  c.type = PacketType::kOneRtt;
  c.frames.push_back(Frame::ping());
  std::vector<QuicPacket> packets = {a, b, c};
  auto dgram = encode_datagram(packets, true);
  auto decoded = decode_datagram(dgram);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].type, PacketType::kInitial);
  EXPECT_EQ((*decoded)[1].type, PacketType::kHandshake);
  EXPECT_EQ((*decoded)[2].type, PacketType::kOneRtt);
}

TEST(QuicWire, VersionNegotiationRoundTrip) {
  QuicPacket vn;
  vn.type = PacketType::kVersionNegotiation;
  vn.dcid = 1;
  vn.scid = 2;
  vn.supported_versions = {QuicVersion::kV1, QuicVersion::kDraft34};
  auto decoded = decode_datagram(encode_packet(vn));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ((*decoded)[0].type, PacketType::kVersionNegotiation);
  EXPECT_EQ((*decoded)[0].supported_versions.size(), 2u);
}

TEST(QuicWire, TruncatedDatagramRejected) {
  QuicPacket p;
  p.type = PacketType::kInitial;
  p.frames.push_back(Frame::crypto(0, {1, 2, 3}));
  auto bytes = encode_packet(p);
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(decode_datagram(bytes).has_value());
}

TEST(QuicWire, AddressTokenRoundTripAndValidation) {
  AddressToken t;
  t.server_secret = 0xFEED;
  t.client_ip = 0x0A000001;
  t.issued_at = 100;
  t.lifetime = kDay;
  auto decoded = AddressToken::decode(t.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->valid_for(0xFEED, 0x0A000001, 200));
  EXPECT_FALSE(decoded->valid_for(0xBEEF, 0x0A000001, 200));   // wrong secret
  EXPECT_FALSE(decoded->valid_for(0xFEED, 0x0A000002, 200));   // wrong ip
  EXPECT_FALSE(decoded->valid_for(0xFEED, 0x0A000001, 2 * kDay));  // stale
}

// ------------------------------------------------------------- connections

class QuicFixture : public ::testing::Test {
 protected:
  QuicFixture()
      : network_(sim_, Rng(11)),
        client_host_(network_.add_host("client",
                                       IpAddress::from_octets(10, 0, 0, 1),
                                       {50.11, 8.68}, Continent::kEurope)),
        server_host_(network_.add_host("server",
                                       IpAddress::from_octets(10, 0, 0, 2),
                                       {52.37, 4.90}, Continent::kEurope)),
        client_udp_(client_host_),
        server_udp_(server_host_) {
    network_.set_loss_rate(0.0);
    network_.set_path_override(client_host_.address(), server_host_.address(),
                               from_ms(10));
  }

  QuicConfig server_config() {
    QuicConfig c;
    c.alpn = {"doq"};
    c.ticket_secret = 0xD0C;
    c.certificate_chain_size = 3000;
    return c;
  }

  /// Starts a DoQ-style echo server: answers every stream with its own
  /// payload reversed, fin set.
  void start_server(QuicConfig config) {
    server_ = std::make_unique<QuicServer>(sim_, server_udp_, 853, config);
    server_->on_accept([this](const std::shared_ptr<QuicConnection>& conn,
                              const Endpoint&) {
      accepted_.push_back(conn);
      // Raw capture: the server (and accepted_) own the connection; a
      // shared capture in its own handler would leak it as a cycle.
      conn->set_on_stream_data([c = conn.get()](
                                   std::uint64_t id,
                                   std::span<const std::uint8_t> data,
                                   bool fin) {
        if (!fin) return;
        std::vector<std::uint8_t> reply(data.rbegin(), data.rend());
        c->send_stream(id, std::move(reply), true);
      });
    });
  }

  /// Creates a client connection with standard bookkeeping.
  std::shared_ptr<QuicConnection> make_client(QuicConfig config) {
    client_socket_ = client_udp_.bind_ephemeral();
    QuicConnection::Callbacks callbacks;
    callbacks.send_datagram = [this](util::Buffer bytes) {
      client_socket_->send_to(Endpoint{server_host_.address(), 853},
                              std::move(bytes));
    };
    callbacks.on_handshake_complete = [this](const QuicHandshakeInfo& info) {
      client_info_ = info;
      handshake_done_at_ = sim_.now();
    };
    callbacks.on_stream_data = [this](std::uint64_t id,
                                      std::span<const std::uint8_t> data,
                                      bool fin) {
      stream_data_[id].insert(stream_data_[id].end(), data.begin(),
                              data.end());
      if (fin) {
        stream_fin_[id] = true;
        stream_fin_at_[id] = sim_.now();
      }
    };
    callbacks.on_new_ticket = [this](const tls::SessionTicket& t) {
      tickets_.push_back(t);
    };
    callbacks.on_new_token = [this](const AddressToken& t) {
      tokens_.push_back(t);
    };
    callbacks.on_closed = [this](const util::Error& error) {
      close_reasons_.push_back(error);
    };
    auto conn = QuicConnection::make_client(sim_, std::move(config),
                                            std::move(callbacks));
    client_socket_->on_datagram(
        [conn](const Endpoint&, util::Buffer payload) {
          conn->on_datagram(payload);
        });
    return conn;
  }

  QuicConfig client_config() {
    QuicConfig c;
    c.alpn = {"doq"};
    c.sni = "resolver.example";
    return c;
  }

  /// Warm a session fully: returns (ticket, token) learned from the server.
  std::pair<tls::SessionTicket, AddressToken> warm_session() {
    auto conn = make_client(client_config());
    conn->connect();
    sim_.run_until(sim_.now() + 3 * kSecond);
    EXPECT_FALSE(tickets_.empty());
    EXPECT_FALSE(tokens_.empty());
    conn->close();
    auto result = std::make_pair(tickets_.back(), tokens_.back());
    tickets_.clear();
    tokens_.clear();
    client_info_.reset();
    return result;
  }

  sim::Simulator sim_;
  net::Network network_;
  net::Host& client_host_;
  net::Host& server_host_;
  net::UdpStack client_udp_;
  net::UdpStack server_udp_;
  std::unique_ptr<QuicServer> server_;
  std::unique_ptr<net::UdpSocket> client_socket_;
  std::vector<std::shared_ptr<QuicConnection>> accepted_;
  std::optional<QuicHandshakeInfo> client_info_;
  SimTime handshake_done_at_ = -1;
  std::map<std::uint64_t, std::vector<std::uint8_t>> stream_data_;
  std::map<std::uint64_t, bool> stream_fin_;
  std::map<std::uint64_t, SimTime> stream_fin_at_;
  std::vector<tls::SessionTicket> tickets_;
  std::vector<AddressToken> tokens_;
  std::vector<util::Error> close_reasons_;
};

TEST_F(QuicFixture, FullHandshakeCompletesInOneRtt) {
  start_server(server_config());
  auto conn = make_client(client_config());
  conn->connect();
  sim_.run_until(3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_FALSE(client_info_->resumed);
  EXPECT_EQ(client_info_->alpn, "doq");
  EXPECT_EQ(client_info_->version, QuicVersion::kV1);
  // 1 RTT = 20 ms; full handshake with a 3000-byte cert may stall on the
  // amplification limit (client INITIAL is 1208+8 bytes -> budget ~3.6KB,
  // server flight ~4.3KB) costing one extra RTT.
  EXPECT_GE(handshake_done_at_, from_ms(20));
  EXPECT_LT(handshake_done_at_, from_ms(65));
}

TEST_F(QuicFixture, HandshakeIssuesTicketAndToken) {
  start_server(server_config());
  auto conn = make_client(client_config());
  conn->connect();
  sim_.run_until(3 * kSecond);
  ASSERT_FALSE(tickets_.empty());
  EXPECT_EQ(tickets_[0].server_secret, 0xD0Cu);
  ASSERT_FALSE(tokens_.empty());
  EXPECT_EQ(tokens_[0].client_ip, client_host_.address().value());
}

TEST_F(QuicFixture, StreamEchoRoundTrip) {
  start_server(server_config());
  auto conn = make_client(client_config());
  conn->connect();
  std::uint64_t id = conn->open_stream({1, 2, 3}, true);
  sim_.run_until(3 * kSecond);
  EXPECT_EQ(stream_data_[id], (std::vector<std::uint8_t>{3, 2, 1}));
  EXPECT_TRUE(stream_fin_[id]);
}

TEST_F(QuicFixture, MultipleStreamsGetDistinctIds) {
  start_server(server_config());
  auto conn = make_client(client_config());
  conn->connect();
  std::uint64_t a = conn->open_stream({1}, true);
  std::uint64_t b = conn->open_stream({2}, true);
  sim_.run_until(3 * kSecond);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(stream_data_[a], (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(stream_data_[b], (std::vector<std::uint8_t>{2}));
}

TEST_F(QuicFixture, ResumedHandshakeAvoidsAmplificationStall) {
  start_server(server_config());
  auto [ticket, token] = warm_session();

  auto conn = make_client(client_config());
  conn->connect(ticket, token);
  const SimTime t0 = sim_.now();
  sim_.run_until(sim_.now() + 3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_TRUE(client_info_->resumed);
  EXPECT_TRUE(client_info_->presented_token);
  EXPECT_FALSE(client_info_->amplification_stall);
  // Exactly 1 RTT (20ms) + jitter.
  EXPECT_GE(handshake_done_at_ - t0, from_ms(20));
  EXPECT_LT(handshake_done_at_ - t0, from_ms(30));
}

TEST_F(QuicFixture, FullHandshakeWithLargeCertStallsOnAmplification) {
  QuicConfig cfg = server_config();
  cfg.certificate_chain_size = 5000;  // server flight far above 3x budget
  start_server(cfg);
  auto conn = make_client(client_config());
  conn->connect();
  sim_.run_until(3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  // The *server* saw the block; the client paid an extra round trip.
  ASSERT_FALSE(accepted_.empty());
  ASSERT_TRUE(accepted_[0]->info().has_value());
  EXPECT_TRUE(accepted_[0]->info()->amplification_stall);
  EXPECT_GE(handshake_done_at_, from_ms(40));  // 2+ RTT
}

TEST_F(QuicFixture, TokenAloneSkipsAmplificationLimit) {
  QuicConfig cfg = server_config();
  cfg.certificate_chain_size = 5000;
  start_server(cfg);
  auto [ticket, token] = warm_session();
  (void)ticket;

  // Token without ticket: full handshake (cert flight) but address is
  // validated up front, so no stall despite the big cert.
  auto conn = make_client(client_config());
  conn->connect(std::nullopt, token);
  const SimTime t0 = sim_.now();
  sim_.run_until(sim_.now() + 3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_FALSE(client_info_->resumed);
  ASSERT_FALSE(accepted_.empty());
  ASSERT_GE(accepted_.size(), 2u);
  ASSERT_TRUE(accepted_[1]->info().has_value());
  EXPECT_FALSE(accepted_[1]->info()->amplification_stall);
  EXPECT_LT(handshake_done_at_ - t0, from_ms(30));
}

TEST_F(QuicFixture, ZeroRttDeliversQueryWithFirstFlight) {
  QuicConfig scfg = server_config();
  scfg.enable_0rtt = true;
  start_server(scfg);
  auto [ticket, token] = warm_session();
  EXPECT_TRUE(ticket.allow_early_data);

  QuicConfig ccfg = client_config();
  ccfg.enable_0rtt = true;
  auto conn = make_client(ccfg);
  const SimTime t0 = sim_.now();
  std::uint64_t id = conn->open_stream({5, 6, 7}, true);  // queued pre-connect
  conn->connect(ticket, token);
  sim_.run_until(sim_.now() + 3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_TRUE(client_info_->early_data_accepted);
  EXPECT_EQ(stream_data_[id], (std::vector<std::uint8_t>{7, 6, 5}));
  // Reply arrives ~1 RTT after the first flight (echo sent with the
  // server's handshake flight).
  EXPECT_LT(stream_fin_at_[id] - t0, from_ms(30));
}

TEST_F(QuicFixture, ZeroRttRejectedIsRetransmitted) {
  QuicConfig issuing = server_config();
  issuing.enable_0rtt = true;
  start_server(issuing);
  auto [ticket, token] = warm_session();

  // Server restarts with 0-RTT disabled (what the paper observed: nobody
  // accepts early data).
  server_.reset();
  accepted_.clear();
  QuicConfig strict = server_config();
  strict.enable_0rtt = false;
  start_server(strict);

  QuicConfig ccfg = client_config();
  ccfg.enable_0rtt = true;
  auto conn = make_client(ccfg);
  std::uint64_t id = conn->open_stream({9}, true);
  conn->connect(ticket, token);
  sim_.run_until(sim_.now() + 3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_FALSE(client_info_->early_data_accepted);
  EXPECT_EQ(stream_data_[id], (std::vector<std::uint8_t>{9}));
}

TEST_F(QuicFixture, RetryAddsRoundTripWithoutToken) {
  QuicConfig cfg = server_config();
  cfg.require_retry = true;
  start_server(cfg);
  auto conn = make_client(client_config());
  conn->connect();
  sim_.run_until(3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_TRUE(client_info_->used_retry);
  EXPECT_EQ(server_->retries_sent(), 1u);
  // Retry costs a full extra RTT before the normal handshake.
  EXPECT_GE(handshake_done_at_, from_ms(40));
}

TEST_F(QuicFixture, TokenSuppressesRetry) {
  QuicConfig cfg = server_config();
  cfg.require_retry = true;
  start_server(cfg);
  auto [ticket, token] = warm_session();

  auto conn = make_client(client_config());
  conn->connect(ticket, token);
  const SimTime t0 = sim_.now();
  sim_.run_until(sim_.now() + 3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_FALSE(client_info_->used_retry);
  EXPECT_LT(handshake_done_at_ - t0, from_ms(30));
}

TEST_F(QuicFixture, VersionNegotiationWhenClientGuessesWrong) {
  QuicConfig scfg = server_config();
  scfg.supported = {QuicVersion::kDraft29};  // old server
  start_server(scfg);
  QuicConfig ccfg = client_config();
  ccfg.version = QuicVersion::kV1;
  auto conn = make_client(ccfg);
  conn->connect();
  sim_.run_until(3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_TRUE(client_info_->used_version_negotiation);
  EXPECT_EQ(client_info_->version, QuicVersion::kDraft29);
  EXPECT_EQ(server_->version_negotiations_sent(), 1u);
  EXPECT_GE(handshake_done_at_, from_ms(40));  // +1 RTT
}

TEST_F(QuicFixture, KnownVersionAvoidsNegotiation) {
  QuicConfig scfg = server_config();
  scfg.supported = {QuicVersion::kDraft29};
  start_server(scfg);
  QuicConfig ccfg = client_config();
  ccfg.version = QuicVersion::kDraft29;  // learned during cache warming
  auto conn = make_client(ccfg);
  conn->connect();
  sim_.run_until(3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_FALSE(client_info_->used_version_negotiation);
  EXPECT_EQ(server_->version_negotiations_sent(), 0u);
}

TEST_F(QuicFixture, HandshakeSurvivesHeavyLoss) {
  network_.set_loss_override(client_host_.address(), server_host_.address(),
                             0.3);
  start_server(server_config());
  auto conn = make_client(client_config());
  conn->connect();
  std::uint64_t id = conn->open_stream({1, 2}, true);
  sim_.run_until(60 * kSecond);
  EXPECT_TRUE(client_info_.has_value());
  EXPECT_EQ(stream_data_[id], (std::vector<std::uint8_t>{2, 1}));
  EXPECT_GT(conn->pto_count_total() +
                (accepted_.empty() ? 0 : accepted_[0]->pto_count_total()),
            0u);
}

TEST_F(QuicFixture, UnreachableServerTimesOut) {
  // No server started; INITIAL PTOs then gives up.
  auto conn = make_client(client_config());
  conn->connect();
  sim_.run_until(600 * kSecond);
  EXPECT_TRUE(conn->closed());
  ASSERT_FALSE(close_reasons_.empty());
  EXPECT_EQ(close_reasons_[0].cls, util::ErrorClass::kTimeout);
}

TEST_F(QuicFixture, ClientCloseSendsConnectionClose) {
  start_server(server_config());
  auto conn = make_client(client_config());
  conn->connect();
  sim_.run_until(3 * kSecond);
  ASSERT_EQ(accepted_.size(), 1u);
  bool server_closed = false;
  accepted_[0]->set_on_closed(
      [&](const util::Error&) { server_closed = true; });
  conn->close();
  sim_.run_until(sim_.now() + kSecond);
  EXPECT_TRUE(conn->closed());
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(server_->connection_count(), 0u);
}

TEST_F(QuicFixture, IdleTimeoutClosesConnection) {
  QuicConfig scfg = server_config();
  scfg.idle_timeout = 5 * kSecond;
  start_server(scfg);
  QuicConfig ccfg = client_config();
  ccfg.idle_timeout = 5 * kSecond;
  auto conn = make_client(ccfg);
  conn->connect();
  sim_.run_until(30 * kSecond);
  EXPECT_TRUE(conn->closed());
}

TEST_F(QuicFixture, StreamsSurviveExtremeJitterReordering) {
  // Crank jitter so datagrams frequently reorder; stream payloads must
  // still deliver exactly once, in order.
  net::LatencyConfig lat;
  lat.jitter_mu_ms = 2.0;  // median ~7 ms jitter vs 10 ms propagation
  lat.jitter_sigma = 1.0;
  // Rebuild the fixture network pieces with the aggressive latency model.
  sim::Simulator sim;
  net::Network network(sim, Rng(77), net::LatencyModel(lat));
  network.set_loss_rate(0.0);
  auto& ch = network.add_host("c", IpAddress::from_octets(10, 9, 0, 1),
                              {50, 8}, Continent::kEurope);
  auto& sh = network.add_host("s", IpAddress::from_octets(10, 9, 0, 2),
                              {51, 9}, Continent::kEurope);
  network.set_path_override(ch.address(), sh.address(), from_ms(10));
  net::UdpStack cu(ch), su(sh);
  QuicConfig scfg;
  scfg.alpn = {"doq"};
  scfg.ticket_secret = 0x1;
  QuicServer server(sim, su, 853, scfg);
  std::map<std::uint64_t, std::vector<std::uint8_t>> echoed;
  server.on_accept([&](const std::shared_ptr<QuicConnection>& conn,
                       const Endpoint&) {
    // Accumulate per stream: reordering may deliver a stream in chunks.
    auto buffers = std::make_shared<
        std::map<std::uint64_t, std::vector<std::uint8_t>>>();
    // Raw capture: the server owns the connection; a shared capture in its
    // own handler would leak it as a cycle.
    conn->set_on_stream_data([c = conn.get(), buffers](
                                 std::uint64_t id,
                                 std::span<const std::uint8_t> d, bool fin) {
      auto& buffer = (*buffers)[id];
      buffer.insert(buffer.end(), d.begin(), d.end());
      if (fin) c->send_stream(id, std::move(buffer), true);
    });
  });
  auto socket = cu.bind_ephemeral();
  QuicConnection::Callbacks callbacks;
  callbacks.send_datagram = [&](util::Buffer bytes) {
    socket->send_to(Endpoint{sh.address(), 853}, std::move(bytes));
  };
  callbacks.on_stream_data = [&](std::uint64_t id,
                                 std::span<const std::uint8_t> d, bool) {
    echoed[id].insert(echoed[id].end(), d.begin(), d.end());
  };
  auto conn = QuicConnection::make_client(
      sim, QuicConfig{.alpn = {"doq"}, .sni = "s"}, std::move(callbacks));
  socket->on_datagram([conn](const Endpoint&,
                             util::Buffer payload) {
    conn->on_datagram(payload);
  });
  conn->connect();
  std::map<std::uint64_t, std::vector<std::uint8_t>> sent;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::uint8_t> payload(200 + i * 37);
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::uint8_t>(i + j);
    }
    std::uint64_t id = conn->open_stream(payload, true);
    sent[id] = std::move(payload);
  }
  sim.run_until(60 * kSecond);
  ASSERT_EQ(echoed.size(), sent.size());
  for (const auto& [id, payload] : sent) {
    EXPECT_EQ(echoed[id], payload) << "stream " << id;
  }
}

TEST_F(QuicFixture, HandshakeTimeoutWhenServerVanishesMidway) {
  start_server(server_config());
  auto conn = make_client(client_config());
  conn->connect();
  // Kill the server host after the first flight leaves.
  sim_.schedule(from_ms(5), [this] { server_host_.set_up(false); });
  sim_.run_until(600 * kSecond);
  EXPECT_TRUE(conn->closed());
  ASSERT_FALSE(close_reasons_.empty());
  EXPECT_EQ(close_reasons_[0].cls, util::ErrorClass::kTimeout);
}

TEST_F(QuicFixture, ClientInitialDatagramIsPadded) {
  start_server(server_config());
  std::size_t first_c2s = 0;
  network_.set_tap([&](const net::Packet& p) {
    if (first_c2s == 0 && p.src.address == client_host_.address()) {
      first_c2s = p.payload.size();
    }
  });
  auto conn = make_client(client_config());
  conn->connect();
  sim_.run_until(kSecond);
  EXPECT_GE(first_c2s, kMinInitialDatagram);
}

TEST_F(QuicFixture, ResumedHandshakeBytesMatchPaperShape) {
  start_server(server_config());
  auto [ticket, token] = warm_session();

  auto conn = make_client(client_config());
  conn->connect(ticket, token);
  std::uint64_t sent_at_complete = 0, received_at_complete = 0;
  conn->set_on_handshake_complete([&](const QuicHandshakeInfo& info) {
    client_info_ = info;
    sent_at_complete = conn->bytes_sent();
    received_at_complete = conn->bytes_received();
  });
  sim_.run_until(sim_.now() + 3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  // Paper Table 1: DoQ handshake C->R 2564 bytes, R->C 1304 bytes. The
  // client sends two padded 1200-byte datagrams (CH, then ACK+Fin); the
  // server sends one padded INITIAL plus a small handshake flight.
  EXPECT_GE(sent_at_complete, 2400u);
  EXPECT_LE(sent_at_complete, 2800u);
  EXPECT_GE(received_at_complete, 1200u);
  EXPECT_LE(received_at_complete, 1500u);
}

// ------------------------------------------- RFC 9002 congestion control

TEST_F(QuicFixture, CcDisabledByDefaultKeepsSeedBehaviour) {
  start_server(server_config());
  auto conn = make_client(client_config());
  conn->connect();
  sim_.run_until(3 * kSecond);
  ASSERT_TRUE(client_info_.has_value());
  EXPECT_FALSE(conn->congestion().config().trace);
  EXPECT_TRUE(conn->congestion().trace().empty());
}

TEST_F(QuicFixture, PacketThresholdLossDetectionDeclaresLosses) {
  // Moderate iid loss with CC on: ack-triggered kPacketThreshold reordering
  // detection must declare losses well before a PTO would fire, and the
  // transfer still completes.
  network_.set_loss_override(client_host_.address(), server_host_.address(),
                             0.1);
  // Custom server that accumulates the whole stream and acks the byte count
  // back once the fin lands (the fixture echo only reflects the last span).
  server_ = std::make_unique<QuicServer>(sim_, server_udp_, 853,
                                         server_config());
  std::size_t server_received = 0;
  server_->on_accept([&](const std::shared_ptr<QuicConnection>& conn,
                         const Endpoint&) {
    accepted_.push_back(conn);
    conn->set_on_stream_data([&server_received, c = conn.get()](
                                 std::uint64_t id,
                                 std::span<const std::uint8_t> data,
                                 bool fin) {
      server_received += data.size();
      if (fin) c->send_stream(id, {1}, true);
    });
  });
  QuicConfig config = client_config();
  config.enable_cc = true;
  auto conn = make_client(config);
  conn->connect();
  sim_.run_until(kSecond);
  const std::uint64_t id =
      conn->open_stream(std::vector<std::uint8_t>(120000, 0x3C), true);
  sim_.run_until(60 * kSecond);
  ASSERT_TRUE(stream_fin_[id]);
  EXPECT_EQ(server_received, 120000u);
  EXPECT_GT(conn->packets_declared_lost(), 0u);
  EXPECT_GT(conn->congestion().loss_episodes(), 0u);
  EXPECT_EQ(conn->bytes_in_flight(), 0u);  // everything acked or declared
}

TEST_F(QuicFixture, CwndTraceShowsSlowStartThenRecovery) {
  network_.set_loss_override(client_host_.address(), server_host_.address(),
                             0.08);
  start_server(server_config());
  QuicConfig config = client_config();
  config.enable_cc = true;
  config.cc_trace = true;
  auto conn = make_client(config);
  conn->connect();
  sim_.run_until(kSecond);
  conn->open_stream(std::vector<std::uint8_t>(150000, 0x77), true);
  sim_.run_until(30 * kSecond);
  const auto& trace = conn->congestion().trace();
  ASSERT_FALSE(trace.empty());
  bool saw_slow_start = false;
  bool recovery_after_slow_start = false;
  for (const auto& point : trace) {
    if (point.phase == cc::CcPhase::kSlowStart) saw_slow_start = true;
    if (saw_slow_start && point.phase == cc::CcPhase::kRecovery) {
      recovery_after_slow_start = true;
    }
  }
  EXPECT_TRUE(saw_slow_start);
  EXPECT_TRUE(recovery_after_slow_start);
}

TEST_F(QuicFixture, BlackholeCollapsesWindowViaPersistentCongestion) {
  start_server(server_config());
  QuicConfig config = client_config();
  config.enable_cc = true;
  auto conn = make_client(config);
  conn->connect();
  sim_.run_until(kSecond);
  const std::size_t cwnd_before = conn->congestion().cwnd();
  // Black-hole the path mid-transfer: consecutive PTOs with nothing acked
  // in between must trip persistent congestion and floor the window.
  conn->open_stream(std::vector<std::uint8_t>(50000, 0x2A), true);
  sim_.at(sim_.now() + from_ms(5), [&] {
    network_.set_loss_override(client_host_.address(),
                               server_host_.address(), 1.0);
  });
  sim_.run_until(sim_.now() + 10 * kSecond);
  EXPECT_LT(conn->congestion().cwnd(), cwnd_before);
  EXPECT_EQ(conn->congestion().cwnd(),
            conn->congestion().config().min_window_segments *
                conn->congestion().config().mss);
}

}  // namespace
}  // namespace doxlab::quic
