# Parallel campaign determinism: the --jobs=N runner must produce a CSV
# bit-identical to the serial run. Buffers are recycled through thread-local
# pools, so any cross-thread state leak would show up here first.
#
# Invoked by ctest as:
#   cmake -DDOXPERF_BIN=... -DWORK_DIR=... -P this_file
file(MAKE_DIRECTORY "${WORK_DIR}")
foreach(jobs 1 4)
  execute_process(COMMAND "${DOXPERF_BIN}" campaign --resolvers=6
                          --protocols=doudp,doq --reps=2 --jobs=${jobs}
                          --csv=jobs${jobs}.csv
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "doxperf campaign --jobs=${jobs} failed (exit ${rc})")
  endif()
endforeach()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORK_DIR}/jobs1.csv" "${WORK_DIR}/jobs4.csv"
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "campaign CSV differs between --jobs=1 and --jobs=4")
endif()
