// Tests for the local DNS proxy: stub forwarding over each upstream
// protocol, id rewriting, session reset semantics, cache on/off, SERVFAIL.
#include <gtest/gtest.h>

#include "dox/transport.h"
#include "net/network.h"
#include "proxy/proxy.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"

namespace doxlab::proxy {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

class ProxyFixture : public ::testing::Test {
 protected:
  ProxyFixture()
      : network_(sim_, Rng(21)),
        client_host_(network_.add_host("client",
                                       IpAddress::from_octets(10, 1, 0, 1),
                                       {50.11, 8.68}, Continent::kEurope)),
        udp_(client_host_),
        tcp_(client_host_) {
    network_.set_loss_rate(0.0);
    resolver::ResolverProfile profile;
    profile.name = "resolver";
    profile.address = IpAddress::from_octets(10, 2, 0, 1);
    profile.location = {48.86, 2.35};
    profile.secret = 0xAA;
    profile.drop_probability = 0.0;
    resolver_ = std::make_unique<resolver::DoxResolver>(network_, profile,
                                                        Rng(1));
    network_.set_path_override(client_host_.address(), profile.address,
                               from_ms(10));
  }

  ProxyConfig proxy_config(dox::DnsProtocol protocol) {
    ProxyConfig config;
    config.upstream_protocol = protocol;
    config.upstream = Endpoint{resolver_->profile().address,
                               dox::default_port(protocol)};
    return config;
  }

  dox::TransportDeps deps() {
    dox::TransportDeps d;
    d.sim = &sim_;
    d.udp = &udp_;
    d.tcp = &tcp_;
    d.tickets = &tickets_;
    d.doq_cache = &doq_cache_;
    return d;
  }

  /// Sends a stub query to the proxy from an ephemeral socket; returns the
  /// decoded response.
  std::optional<dns::Message> stub_query(const std::string& name,
                                         std::uint16_t id = 0x77) {
    auto socket = udp_.bind_ephemeral();
    std::optional<dns::Message> response;
    socket->on_datagram(
        [&](const Endpoint&, util::Buffer payload) {
          response = dns::Message::decode(payload);
        });
    dns::Message query =
        dns::make_query(id, dns::DnsName::parse(name), dns::RRType::kA);
    socket->send_to(Endpoint{client_host_.address(), 53}, query.encode());
    sim_.run_until(sim_.now() + 30 * kSecond);
    return response;
  }

  sim::Simulator sim_;
  net::Network network_;
  net::Host& client_host_;
  net::UdpStack udp_;
  tcp::TcpStack tcp_;
  tls::TicketStore tickets_;
  dox::DoqSessionCache doq_cache_;
  std::unique_ptr<resolver::DoxResolver> resolver_;
};

class ProxyAllProtocols
    : public ProxyFixture,
      public ::testing::WithParamInterface<dox::DnsProtocol> {};

TEST_P(ProxyAllProtocols, ForwardsAndRewritesId) {
  DnsProxy proxy(sim_, udp_, deps(), proxy_config(GetParam()));
  auto response = stub_query("example.com", 0x1234);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, 0x1234);  // stub id restored
  EXPECT_TRUE(response->qr);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(dns::rdata_as_a(response->answers[0]),
            resolver::authoritative_ipv4(dns::DnsName::parse("example.com")));
  EXPECT_EQ(proxy.queries_forwarded(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ProxyAllProtocols,
                         ::testing::ValuesIn(dox::kAllProtocols),
                         [](const auto& info) {
                           return std::string(
                               dox::protocol_name(info.param));
                         });

TEST_F(ProxyFixture, ForwardsOverDoh3WhenResolverSupportsIt) {
  // The fixture's resolver does not serve DoH3; build one that does.
  resolver::ResolverProfile p;
  p.name = "doh3-resolver";
  p.address = IpAddress::from_octets(10, 2, 0, 9);
  p.location = {48.86, 2.35};
  p.secret = 0xBB;
  p.supports_doh3 = true;
  p.drop_probability = 0.0;
  resolver::DoxResolver doh3_resolver(network_, p, Rng(2));
  network_.set_path_override(client_host_.address(), p.address, from_ms(10));

  ProxyConfig config;
  config.upstream_protocol = dox::DnsProtocol::kDoH3;
  config.upstream = Endpoint{p.address, 443};
  DnsProxy proxy(sim_, udp_, deps(), config);
  auto response = stub_query("h3.example");
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(dns::rdata_as_a(response->answers[0]),
            resolver::authoritative_ipv4(dns::DnsName::parse("h3.example")));
}

TEST_F(ProxyFixture, TruncatedUpstreamAnswerArrivesCompleteViaTcpFallback) {
  // A big TXT answer truncates on the upstream UDP leg; the proxy's
  // transport falls back to TCP and the stub still gets the full record.
  DnsProxy proxy(sim_, udp_, deps(), proxy_config(dox::DnsProtocol::kDoUdp));
  auto socket = udp_.bind_ephemeral();
  std::optional<dns::Message> response;
  socket->on_datagram(
      [&](const Endpoint&, util::Buffer payload) {
        response = dns::Message::decode(payload);
      });
  dns::Message query = dns::make_query(
      0x31, dns::DnsName::parse("txt2000.example"), dns::RRType::kTXT,
      /*udp_payload_size=*/4096);  // stub leg is loopback: no truncation
  socket->send_to(Endpoint{client_host_.address(), 53}, query.encode());
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_GT(response->answers[0].rdata.size(), 1999u);
}

TEST_F(ProxyFixture, CacheDisabledForwardsEveryQuery) {
  DnsProxy proxy(sim_, udp_, deps(), proxy_config(dox::DnsProtocol::kDoUdp));
  stub_query("example.com");
  stub_query("example.com");
  EXPECT_EQ(proxy.queries_forwarded(), 2u);
  EXPECT_EQ(proxy.cache_hits(), 0u);
}

TEST_F(ProxyFixture, CacheEnabledServesSecondQueryLocally) {
  ProxyConfig config = proxy_config(dox::DnsProtocol::kDoUdp);
  config.cache_enabled = true;
  DnsProxy proxy(sim_, udp_, deps(), config);
  stub_query("example.com");
  stub_query("example.com");
  EXPECT_EQ(proxy.queries_forwarded(), 1u);
  EXPECT_EQ(proxy.cache_hits(), 1u);
}

TEST_F(ProxyFixture, ResetSessionsForcesNewUpstreamHandshake) {
  DnsProxy proxy(sim_, udp_, deps(), proxy_config(dox::DnsProtocol::kDoT));
  stub_query("a.example");
  const auto stats_before = proxy.upstream_wire_stats();
  sim_.run_until(sim_.now() + 300 * kMillisecond);
  proxy.reset_sessions();
  sim_.run_until(sim_.now() + kSecond);
  stub_query("b.example");
  const auto stats_after = proxy.upstream_wire_stats();
  // Fresh connection, fresh accounting: the second connection's handshake
  // bytes are present again.
  EXPECT_GT(stats_before.handshake_c2r, 0u);
  EXPECT_GT(stats_after.handshake_c2r, 0u);
}

TEST_F(ProxyFixture, UpstreamFailureYieldsServfail) {
  ProxyConfig config = proxy_config(dox::DnsProtocol::kDoUdp);
  config.transport_options.query_timeout = 2 * kSecond;
  config.transport_options.udp_max_attempts = 1;
  DnsProxy proxy(sim_, udp_, deps(), config);
  network_.set_loss_override(client_host_.address(),
                             resolver_->profile().address, 1.0);
  EXPECT_EQ(proxy.servfails_sent(), 0u);
  auto response = stub_query("dead.example");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rcode, dns::RCode::kServFail);
  EXPECT_EQ(proxy.servfails_sent(), 1u);
}

TEST_F(ProxyFixture, MalformedStubQueryIgnored) {
  DnsProxy proxy(sim_, udp_, deps(), proxy_config(dox::DnsProtocol::kDoUdp));
  auto socket = udp_.bind_ephemeral();
  bool got = false;
  socket->on_datagram(
      [&](const Endpoint&, util::Buffer) { got = true; });
  socket->send_to(Endpoint{client_host_.address(), 53}, {1, 2, 3});
  sim_.run_until(sim_.now() + kSecond);
  EXPECT_FALSE(got);
  EXPECT_EQ(proxy.queries_forwarded(), 0u);
}

TEST_F(ProxyFixture, ConcurrentStubQueriesAllAnswered) {
  DnsProxy proxy(sim_, udp_, deps(), proxy_config(dox::DnsProtocol::kDoQ));
  auto socket = udp_.bind_ephemeral();
  int answers = 0;
  socket->on_datagram(
      [&](const Endpoint&, util::Buffer) { ++answers; });
  for (int i = 0; i < 5; ++i) {
    dns::Message query = dns::make_query(
        static_cast<std::uint16_t>(100 + i),
        dns::DnsName::parse("host" + std::to_string(i) + ".example"),
        dns::RRType::kA);
    socket->send_to(Endpoint{client_host_.address(), 53}, query.encode());
  }
  sim_.run_until(sim_.now() + 30 * kSecond);
  EXPECT_EQ(answers, 5);
  EXPECT_EQ(proxy.queries_forwarded(), 5u);
}

}  // namespace
}  // namespace doxlab::proxy
