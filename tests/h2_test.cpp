// Unit tests for the HTTP/2 model: HPACK compression behaviour, framing,
// preface/SETTINGS, request/response exchange.
#include <gtest/gtest.h>

#include "h2/connection.h"
#include "h2/hpack.h"

namespace doxlab::h2 {
namespace {

TEST(Hpack, StaticTableFullMatchIsOneByte) {
  HpackEncoder enc;
  auto block = enc.encode(std::vector<Header>{{":method", "POST"}});
  EXPECT_EQ(block.size(), 1u);
}

TEST(Hpack, RepeatedLiteralCompresses) {
  HpackEncoder enc;
  std::vector<Header> headers = {{":authority", "resolver-1.2.3.4"}};
  auto first = enc.encode(headers);
  auto second = enc.encode(headers);
  EXPECT_GT(first.size(), second.size());
  EXPECT_EQ(second.size(), 1u);  // dynamic-table hit
}

TEST(Hpack, EncoderDecoderStayInSync) {
  HpackEncoder enc;
  HpackDecoder dec;
  std::vector<Header> req = {
      {":method", "POST"},
      {":scheme", "https"},
      {":authority", "resolver-9.9.9.9"},
      {":path", "/dns-query"},
      {"content-type", "application/dns-message"},
      {"content-length", "51"},
      {"user-agent", "doxlab-dnsperf/1.0"},
  };
  for (int round = 0; round < 3; ++round) {
    auto block = enc.encode(req);
    auto decoded = dec.decode(block);
    ASSERT_TRUE(decoded.has_value()) << "round " << round;
    EXPECT_EQ(*decoded, req) << "round " << round;
  }
}

TEST(Hpack, DecodeRejectsGarbage) {
  HpackDecoder dec;
  std::vector<std::uint8_t> garbage = {0x40, 0xFF};  // dangling name index
  EXPECT_FALSE(dec.decode(garbage).has_value());
}

TEST(Hpack, ValueChangeReusesNameIndex) {
  HpackEncoder enc;
  auto a = enc.encode(std::vector<Header>{{"content-length", "51"}});
  auto b = enc.encode(std::vector<Header>{{"content-length", "55"}});
  // Second encoding uses an indexed name + literal value: smaller than a
  // full literal but bigger than a full match.
  EXPECT_LT(b.size(), a.size() + 2);
  EXPECT_GT(b.size(), 1u);
}

/// Wires a client and server H2Connection back to back.
struct H2Pair {
  H2Pair() {
    H2Connection::Callbacks ccb;
    ccb.send_transport = [this](util::Buffer b) {
      to_server.insert(to_server.end(), b.data(), b.data() + b.size());
    };
    ccb.on_headers = [this](std::uint32_t id, const std::vector<Header>& h,
                            bool end) {
      client_headers[id] = h;
      if (end) client_end[id] = true;
    };
    ccb.on_data = [this](std::uint32_t id, std::span<const std::uint8_t> d,
                         bool end) {
      client_data[id].insert(client_data[id].end(), d.begin(), d.end());
      if (end) client_end[id] = true;
    };
    client = std::make_unique<H2Connection>(true, std::move(ccb));

    H2Connection::Callbacks scb;
    scb.send_transport = [this](util::Buffer b) {
      to_client.insert(to_client.end(), b.data(), b.data() + b.size());
    };
    scb.on_headers = [this](std::uint32_t id, const std::vector<Header>& h,
                            bool end) {
      server_headers[id] = h;
      if (end) server_end[id] = true;
    };
    scb.on_data = [this](std::uint32_t id, std::span<const std::uint8_t> d,
                         bool end) {
      server_data[id].insert(server_data[id].end(), d.begin(), d.end());
      if (end) server_end[id] = true;
    };
    server = std::make_unique<H2Connection>(false, std::move(scb));
  }

  void pump() {
    while (!to_server.empty() || !to_client.empty()) {
      auto a = std::move(to_server);
      to_server.clear();
      if (!a.empty()) server->on_transport_data(a);
      auto b = std::move(to_client);
      to_client.clear();
      if (!b.empty()) client->on_transport_data(b);
    }
  }

  std::unique_ptr<H2Connection> client;
  std::unique_ptr<H2Connection> server;
  std::vector<std::uint8_t> to_server;
  std::vector<std::uint8_t> to_client;
  std::map<std::uint32_t, std::vector<Header>> client_headers, server_headers;
  std::map<std::uint32_t, std::vector<std::uint8_t>> client_data, server_data;
  std::map<std::uint32_t, bool> client_end, server_end;
};

TEST(H2Connection, RequestResponseRoundTrip) {
  H2Pair pair;
  pair.client->start();
  std::uint32_t id = pair.client->send_request(
      {{":method", "POST"}, {":path", "/dns-query"}}, {1, 2, 3});
  pair.pump();
  EXPECT_EQ(id, 1u);
  ASSERT_TRUE(pair.server_end[id]);
  EXPECT_EQ(pair.server_data[id], (std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_EQ(pair.server_headers[id].size(), 2u);

  pair.server->send_response(id, {{":status", "200"}}, {4, 5});
  pair.pump();
  ASSERT_TRUE(pair.client_end[id]);
  EXPECT_EQ(pair.client_data[id], (std::vector<std::uint8_t>{4, 5}));
  EXPECT_EQ(pair.client_headers[id][0].value, "200");
}

TEST(H2Connection, SettingsExchangedBothWays) {
  H2Pair pair;
  pair.client->start();
  pair.pump();
  EXPECT_TRUE(pair.client->settings_received());
  EXPECT_TRUE(pair.server->settings_received());
}

TEST(H2Connection, StreamIdsAreOddAndIncreasing) {
  H2Pair pair;
  pair.client->start();
  EXPECT_EQ(pair.client->send_request({{":method", "GET"}}, util::Buffer{}),
            1u);
  EXPECT_EQ(pair.client->send_request({{":method", "GET"}}, util::Buffer{}),
            3u);
  EXPECT_EQ(pair.client->send_request({{":method", "GET"}}, util::Buffer{}),
            5u);
}

TEST(H2Connection, BadPrefaceFailsServer) {
  bool failed = false;
  H2Connection::Callbacks scb;
  scb.send_transport = [](util::Buffer) {};
  scb.on_error = [&](const util::Error&) { failed = true; };
  H2Connection server(false, std::move(scb));
  std::vector<std::uint8_t> junk(32, 'x');
  server.on_transport_data(junk);
  EXPECT_TRUE(failed);
}

TEST(H2Connection, MultiplexedStreamsKeepBodiesSeparate) {
  H2Pair pair;
  pair.client->start();
  std::uint32_t a = pair.client->send_request({{":method", "POST"}}, {0xA});
  std::uint32_t b = pair.client->send_request({{":method", "POST"}}, {0xB});
  pair.pump();
  pair.server->send_response(a, {{":status", "200"}}, {0xA, 0xA});
  pair.server->send_response(b, {{":status", "200"}}, {0xB, 0xB});
  pair.pump();
  EXPECT_EQ(pair.client_data[a], (std::vector<std::uint8_t>{0xA, 0xA}));
  EXPECT_EQ(pair.client_data[b], (std::vector<std::uint8_t>{0xB, 0xB}));
}

TEST(H2Connection, GoawayDelivered) {
  H2Pair pair;
  bool goaway = false;
  H2Connection::Callbacks scb;
  scb.send_transport = [&pair](util::Buffer b) {
    pair.to_client.insert(pair.to_client.end(), b.data(),
                          b.data() + b.size());
  };
  scb.on_goaway = [&] { goaway = true; };
  H2Connection server(false, std::move(scb));
  pair.client->start();
  pair.client->send_goaway();
  server.on_transport_data(pair.to_server);
  EXPECT_TRUE(goaway);
}

}  // namespace
}  // namespace doxlab::h2
