// Unit tests for the campaign runner: thread-pool correctness (coverage,
// exceptions, stealing) and the determinism contract — a campaign's output
// is a pure function of the seed/config, never of --jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "measure/csv.h"
#include "runner/campaign.h"
#include "util/thread_pool.h"

namespace doxlab::runner {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadStillCompletes) {
  util::ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  util::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(20, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, PropagatesFirstException) {
  util::ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("cell 13");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // Every non-throwing task still ran before the rethrow.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, CallerParticipatesInDraining) {
  // One worker + the participating caller = two executors. Two tasks that
  // each wait for the other to start can only both finish if the calling
  // thread really drains a task instead of idling on the completion CV —
  // with a caller that only waits, this test would hang.
  util::ThreadPool pool(1);
  std::atomic<int> arrived{0};
  pool.parallel_for(2, [&](std::size_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 2) std::this_thread::yield();
  });
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  util::ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(CampaignSeed, DerivedSeedsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(derive_run_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 10000u);
  // Different campaign seeds diverge too.
  EXPECT_NE(derive_run_seed(1, 0), derive_run_seed(2, 0));
}

measure::SingleQueryConfig small_query_config() {
  measure::SingleQueryConfig config;
  config.repetitions = 2;
  config.max_resolvers = 4;
  config.protocols = {dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoQ};
  return config;
}

TEST(Campaign, SingleQueryParallelMatchesSerial) {
  CampaignConfig campaign;
  campaign.seed = 7;
  campaign.population.verified_dox = 8;

  campaign.jobs = 1;
  const auto serial = run_single_query_campaign(campaign, small_query_config());
  campaign.jobs = 8;
  const auto parallel =
      run_single_query_campaign(campaign, small_query_config());

  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(measure::single_query_csv(serial),
            measure::single_query_csv(parallel));
}

TEST(Campaign, SingleQuerySeedChangesOutput) {
  CampaignConfig campaign;
  campaign.population.verified_dox = 8;
  campaign.seed = 7;
  const auto a = run_single_query_campaign(campaign, small_query_config());
  campaign.seed = 8;
  const auto b = run_single_query_campaign(campaign, small_query_config());
  EXPECT_NE(measure::single_query_csv(a), measure::single_query_csv(b));
}

TEST(Campaign, WebParallelMatchesSerial) {
  CampaignConfig campaign;
  campaign.seed = 11;
  campaign.population.verified_dox = 6;

  measure::WebStudyConfig web;
  web.max_resolvers = 2;
  web.loads_per_combo = 1;
  web.pages = {"wikipedia.org"};
  web.protocols = {dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoQ};

  campaign.jobs = 1;
  const auto serial = run_web_campaign(campaign, web);
  campaign.jobs = 4;
  const auto parallel = run_web_campaign(campaign, web);

  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(measure::web_csv(serial), measure::web_csv(parallel));
}

}  // namespace
}  // namespace doxlab::runner
