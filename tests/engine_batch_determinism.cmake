# Batched-delivery outcome determinism: turning on --batch-us coalesces
# UDP datagrams into burst events, which legitimately changes the event
# COUNT and ORDER (so the event-stream digest differs) — but must never
# change any query's outcome. This pins exactly that, two ways:
#
#  1. Across batch settings (0 vs 200 us), at one shard and at eight, the
#     outcome-comparable columns must match per shard: arrivals, sent,
#     answered, servfails, timeouts, shed, queries, and the commutative
#     outcome digest (splitmix64(seed ^ sent_at, outcome) summed — see
#     EngineShard::outcome_digest). Cache/wire/miss counters and event
#     digests are excluded: delivery-time quantization may shift WHICH
#     layer answers, never WHETHER a query is answered.
#  2. With batching on, the full CSV (every column, digests included) must
#     still be bit-identical run over run — batching must not introduce
#     any scheduling dependence.
#
# Invoked by ctest as:
#   cmake -DDOXPERF_BIN=... -DWORK_DIR=... -P this_file
cmake_policy(SET CMP0007 NEW)  # keep the merged row's empty CSV fields
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_engine shards batch_us out_csv)
  execute_process(COMMAND "${DOXPERF_BIN}" engine --shards=${shards}
                          --clients=5000 --qps=3000 --seconds=2
                          --wire-cache=4096 --batch-us=${batch_us}
                          --shard-csv=${out_csv}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "doxperf engine --shards=${shards} "
                        "--batch-us=${batch_us} failed (exit ${rc})")
  endif()
endfunction()

# Columns of the shard CSV that must be invariant to the batch window:
# shard, arrivals, sent, answered, servfails, timeouts, shed, queries
# (indices 0-7) and the outcome digest (index 19).
function(reduce_outcomes path out_var)
  file(STRINGS "${path}" lines)
  set(reduced "")
  foreach(line IN LISTS lines)
    string(REPLACE "," ";" fields "${line}")
    list(GET fields 0 first)
    if(first STREQUAL "shard")
      continue()
    endif()
    list(GET fields 19 outcomes)
    if(first STREQUAL "merged")
      string(APPEND reduced "merged outcomes=${outcomes}\n")
    else()
      list(SUBLIST fields 0 8 head)
      string(APPEND reduced "${head} outcomes=${outcomes}\n")
    endif()
  endforeach()
  set(${out_var} "${reduced}" PARENT_SCOPE)
endfunction()

foreach(shards 1 8)
  run_engine(${shards} 0 batch0_s${shards}.csv)
  run_engine(${shards} 200 batch200_s${shards}.csv)
  reduce_outcomes("${WORK_DIR}/batch0_s${shards}.csv" base)
  reduce_outcomes("${WORK_DIR}/batch200_s${shards}.csv" batched)
  if(NOT base STREQUAL batched)
    message(FATAL_ERROR "per-query outcomes differ between --batch-us=0 "
                        "and --batch-us=200 at --shards=${shards}:\n"
                        "--- batch 0 ---\n${base}"
                        "--- batch 200 ---\n${batched}")
  endif()
endforeach()

# Run-to-run determinism with batching on: the whole file, digests and all.
run_engine(8 200 batch200_rerun.csv)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${WORK_DIR}/batch200_s8.csv"
                        "${WORK_DIR}/batch200_rerun.csv"
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "shard CSV differs between runs at --batch-us=200")
endif()
