// Tests for the policy pipeline (src/policy): netmask parsing, the
// deterministic token bucket, the per-subnet rate limiter, chain
// compilation errors, the full matcher x action matrix, first-match-wins
// ordering, negation, per-rule counters, and the CSV report.
#include <gtest/gtest.h>

#include <stdexcept>

#include "policy/policy.h"

namespace doxlab::policy {
namespace {

using net::IpAddress;

TEST(Netmask, ParsesCidrAndHostForms) {
  const Netmask slash16 = Netmask::parse("10.66.0.0/16");
  EXPECT_TRUE(slash16.contains(IpAddress::from_octets(10, 66, 200, 9)));
  EXPECT_FALSE(slash16.contains(IpAddress::from_octets(10, 67, 0, 1)));
  EXPECT_EQ(slash16.to_string(), "10.66.0.0/16");

  // No slash: an exact /32 host match.
  const Netmask host = Netmask::parse("192.0.2.7");
  EXPECT_TRUE(host.contains(IpAddress::from_octets(192, 0, 2, 7)));
  EXPECT_FALSE(host.contains(IpAddress::from_octets(192, 0, 2, 8)));

  // /0 matches everything.
  const Netmask all = Netmask::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(IpAddress::from_octets(255, 255, 255, 255)));

  // Host bits below the mask are dropped, as in real CIDR notation.
  const Netmask sloppy = Netmask::parse("10.1.2.3/8");
  EXPECT_TRUE(sloppy.contains(IpAddress::from_octets(10, 250, 0, 1)));
}

TEST(Netmask, RejectsMalformedInput) {
  EXPECT_THROW(Netmask::parse("10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW(Netmask::parse("10.0.0.0/"), std::invalid_argument);
  EXPECT_THROW(Netmask::parse("10.0.0.0/x"), std::invalid_argument);
  EXPECT_THROW(Netmask::parse("not-an-address/8"), std::invalid_argument);
  EXPECT_THROW(Netmask::parse(""), std::invalid_argument);
}

TEST(NetmaskGroup, MatchesAnyMember) {
  NetmaskGroup group;
  group.add(Netmask::parse("10.0.0.0/8"));
  group.add(Netmask::parse("192.0.2.0/24"));
  EXPECT_TRUE(group.matches(IpAddress::from_octets(10, 9, 9, 9)));
  EXPECT_TRUE(group.matches(IpAddress::from_octets(192, 0, 2, 200)));
  EXPECT_FALSE(group.matches(IpAddress::from_octets(172, 16, 0, 1)));
  EXPECT_FALSE(NetmaskGroup().matches(IpAddress::from_octets(10, 0, 0, 1)));
}

TEST(TokenBucket, RefillIsExactFromIntegerTime) {
  // 100 tokens/s, burst 10: drain the burst, then tokens come back one per
  // 10 ms with no floating-point drift — take() at exactly the refill
  // boundary must succeed every time.
  TokenBucket bucket(100, 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(bucket.take(0)) << "burst token " << i;
  }
  EXPECT_FALSE(bucket.take(0));

  SimTime now = 0;
  for (int i = 0; i < 1000; ++i) {
    now += from_ms(10);  // exactly one token's worth
    EXPECT_TRUE(bucket.take(now)) << "refill " << i;
    EXPECT_FALSE(bucket.take(now)) << "over-refill " << i;
  }
}

TEST(TokenBucket, CapsAtBurstAndIgnoresClockStalls) {
  TokenBucket bucket(1000, 5);
  // A long idle period may only refill to the burst cap.
  EXPECT_EQ(bucket.available(kMinute), 5u);
  // Same-timestamp calls never double-refill.
  EXPECT_TRUE(bucket.take(kMinute));
  EXPECT_EQ(bucket.available(kMinute), 4u);
}

TEST(SubnetRateLimiter, BudgetsPerSubnetIndependently) {
  // 2 qps, burst 2, per /24.
  SubnetRateLimiter limiter(2, 2, 24);
  const IpAddress a1 = IpAddress::from_octets(10, 0, 1, 5);
  const IpAddress a2 = IpAddress::from_octets(10, 0, 1, 200);  // same /24
  const IpAddress b = IpAddress::from_octets(10, 0, 2, 5);     // other /24

  EXPECT_FALSE(limiter.over_limit(a1, 0));
  EXPECT_FALSE(limiter.over_limit(a2, 0));  // shares a1's bucket
  EXPECT_TRUE(limiter.over_limit(a1, 0));   // subnet budget exhausted
  EXPECT_FALSE(limiter.over_limit(b, 0));   // its own bucket
  // Refill: half a second restores one token at 2 qps.
  EXPECT_FALSE(limiter.over_limit(a2, 500 * kMillisecond));
  EXPECT_TRUE(limiter.over_limit(a2, 500 * kMillisecond));
}

TEST(SubnetRateLimiter, RejectsDegenerateConfig) {
  EXPECT_THROW(SubnetRateLimiter(0, 0, 24), std::invalid_argument);
  EXPECT_THROW(SubnetRateLimiter(10, 0, 40), std::invalid_argument);
}

TEST(SubnetRateLimiter, ZeroRateWithBurstNeverRefills) {
  // The zero-share shard case of scale_rate_limits: the subnet gets its
  // burst allowance once, then every query is over limit — forever.
  SubnetRateLimiter limiter(0, 2, 24);
  const IpAddress a = IpAddress::from_octets(10, 0, 0, 1);
  EXPECT_FALSE(limiter.over_limit(a, 0));
  EXPECT_FALSE(limiter.over_limit(a, 0));
  EXPECT_TRUE(limiter.over_limit(a, 0));
  EXPECT_TRUE(limiter.over_limit(a, 100 * kSecond));
}

// ---------------------------------------------------------------------------
// RuleChain

const std::vector<std::string> kPools = {"default", "special"};

QueryInfo query_of(IpAddress client, const dns::DnsName& qname,
                   dns::RRType qtype = dns::RRType::kA, SimTime now = 0) {
  return QueryInfo{client, qname, qtype, now};
}

TEST(RuleChain, EmptyChainAllowsEverything) {
  RuleChain chain;
  const dns::DnsName name = dns::DnsName::parse("anything.example");
  const Verdict verdict =
      chain.evaluate(query_of(IpAddress::from_octets(1, 2, 3, 4), name));
  EXPECT_TRUE(verdict.allowed());
  EXPECT_EQ(verdict.pool, 0u);
  EXPECT_EQ(verdict.rule, -1);
  EXPECT_EQ(chain.evaluations(), 1u);
}

TEST(RuleChain, CompileRejectsInvalidRules) {
  {
    ChainConfig config;
    RuleConfig rule;
    rule.matcher = MatcherKind::kClientSubnet;  // no subnets
    config.rules.push_back(rule);
    EXPECT_THROW(RuleChain(config, kPools), std::invalid_argument);
  }
  {
    ChainConfig config;
    RuleConfig rule;
    rule.matcher = MatcherKind::kQnameSuffix;  // no suffixes
    config.rules.push_back(rule);
    EXPECT_THROW(RuleChain(config, kPools), std::invalid_argument);
  }
  {
    ChainConfig config;
    RuleConfig rule;
    rule.matcher = MatcherKind::kRateLimit;
    rule.rate_qps = 10;
    rule.negate = true;  // negated rate limit is meaningless
    config.rules.push_back(rule);
    EXPECT_THROW(RuleChain(config, kPools), std::invalid_argument);
  }
  {
    ChainConfig config;
    RuleConfig rule;
    rule.action = ActionKind::kRoutePool;
    rule.pool = "no-such-pool";
    config.rules.push_back(rule);
    EXPECT_THROW(RuleChain(config, kPools), std::invalid_argument);
  }
}

TEST(RuleChain, MatcherActionMatrix) {
  ChainConfig config;
  {
    RuleConfig rule;
    rule.name = "subnet-drop";
    rule.matcher = MatcherKind::kClientSubnet;
    rule.subnets = {"10.66.0.0/16"};
    rule.action = ActionKind::kDrop;
    config.rules.push_back(rule);
  }
  {
    RuleConfig rule;
    rule.name = "txt-refuse";
    rule.matcher = MatcherKind::kQType;
    rule.qtype = dns::RRType::kTXT;
    rule.action = ActionKind::kRefuse;
    rule.rcode = dns::RCode::kRefused;
    config.rules.push_back(rule);
  }
  {
    RuleConfig rule;
    rule.name = "suffix-truncate";
    rule.matcher = MatcherKind::kQnameSuffix;
    rule.suffixes = {"tcp-only.example"};
    rule.action = ActionKind::kTruncate;
    config.rules.push_back(rule);
  }
  {
    RuleConfig rule;
    rule.name = "suffix-route";
    rule.matcher = MatcherKind::kQnameSuffix;
    rule.suffixes = {"special.example"};
    rule.action = ActionKind::kRoutePool;
    rule.pool = "special";
    config.rules.push_back(rule);
  }
  RuleChain chain(config, kPools);

  const IpAddress bot = IpAddress::from_octets(10, 66, 1, 1);
  const IpAddress ok = IpAddress::from_octets(10, 50, 1, 1);
  const dns::DnsName plain = dns::DnsName::parse("www.example");
  const dns::DnsName tcp_only = dns::DnsName::parse("a.tcp-only.example");
  const dns::DnsName special = dns::DnsName::parse("a.b.special.example");

  const Verdict drop = chain.evaluate(query_of(bot, plain));
  EXPECT_EQ(drop.action, ActionKind::kDrop);
  EXPECT_EQ(drop.rule, 0);

  const Verdict refuse =
      chain.evaluate(query_of(ok, plain, dns::RRType::kTXT));
  EXPECT_EQ(refuse.action, ActionKind::kRefuse);
  EXPECT_EQ(refuse.rcode, dns::RCode::kRefused);

  const Verdict truncate = chain.evaluate(query_of(ok, tcp_only));
  EXPECT_EQ(truncate.action, ActionKind::kTruncate);

  const Verdict route = chain.evaluate(query_of(ok, special));
  EXPECT_EQ(route.action, ActionKind::kRoutePool);
  EXPECT_EQ(route.pool, 1u);  // "special"

  const Verdict allow = chain.evaluate(query_of(ok, plain));
  EXPECT_TRUE(allow.allowed());
  EXPECT_EQ(allow.rule, -1);

  // Per-rule counters line up with the hits above.
  const auto stats = chain.stats();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats[0].name, "subnet-drop");
  EXPECT_EQ(stats[0].matches, 1u);
  EXPECT_EQ(stats[1].matches, 1u);
  EXPECT_EQ(stats[2].matches, 1u);
  EXPECT_EQ(stats[3].matches, 1u);
  EXPECT_EQ(chain.evaluations(), 5u);
}

TEST(RuleChain, FirstMatchWinsAndAllowShortCircuits) {
  ChainConfig config;
  {
    // Allow-list the operator's own subnet ahead of the drop-all.
    RuleConfig rule;
    rule.name = "allow-ops";
    rule.matcher = MatcherKind::kClientSubnet;
    rule.subnets = {"192.0.2.0/24"};
    rule.action = ActionKind::kAllow;
    config.rules.push_back(rule);
  }
  {
    RuleConfig rule;
    rule.name = "drop-all";
    rule.matcher = MatcherKind::kAny;
    rule.action = ActionKind::kDrop;
    config.rules.push_back(rule);
  }
  RuleChain chain(config, kPools);
  const dns::DnsName name = dns::DnsName::parse("x.example");

  const Verdict ops =
      chain.evaluate(query_of(IpAddress::from_octets(192, 0, 2, 10), name));
  EXPECT_TRUE(ops.allowed());
  EXPECT_EQ(ops.rule, 0);  // matched the allow rule, skipped drop-all

  const Verdict other =
      chain.evaluate(query_of(IpAddress::from_octets(10, 0, 0, 1), name));
  EXPECT_EQ(other.action, ActionKind::kDrop);
}

TEST(RuleChain, NegatedMatcherInverts) {
  ChainConfig config;
  RuleConfig rule;
  rule.name = "drop-foreign";
  rule.matcher = MatcherKind::kClientSubnet;
  rule.subnets = {"10.0.0.0/8"};
  rule.negate = true;  // drop everyone OUTSIDE 10/8
  rule.action = ActionKind::kDrop;
  config.rules.push_back(rule);
  RuleChain chain(config, kPools);
  const dns::DnsName name = dns::DnsName::parse("x.example");

  EXPECT_TRUE(
      chain.evaluate(query_of(IpAddress::from_octets(10, 1, 1, 1), name))
          .allowed());
  EXPECT_EQ(
      chain.evaluate(query_of(IpAddress::from_octets(172, 16, 0, 1), name))
          .action,
      ActionKind::kDrop);
}

TEST(RuleChain, RateLimitRuleShedsExcessDeterministically) {
  ChainConfig config;
  RuleConfig rule;
  rule.name = "qps";
  rule.matcher = MatcherKind::kRateLimit;
  rule.rate_qps = 10;
  rule.burst = 10;
  rule.subnet_prefix_len = 24;
  rule.action = ActionKind::kDrop;
  config.rules.push_back(rule);
  RuleChain chain(config, kPools);

  const IpAddress client = IpAddress::from_octets(10, 0, 0, 1);
  const dns::DnsName name = dns::DnsName::parse("x.example");
  // 40 queries spaced 25 ms over one simulated second: the budget is the
  // burst (10) plus 39 x 25 ms of refill at 10 qps (9.75 tokens), so
  // exactly 19 whole tokens get spent. Integer micro-token arithmetic
  // makes this bit-reproducible — pin the exact split.
  int allowed = 0;
  SimTime now = 0;
  for (int i = 0; i < 40; ++i) {
    now += from_ms(25);
    if (chain.evaluate(query_of(client, name, dns::RRType::kA, now))
            .allowed()) {
      ++allowed;
    }
  }
  EXPECT_EQ(allowed, 19);
  EXPECT_EQ(chain.stats()[0].matches, 21u);  // the dropped excess
}

TEST(PolicyCsv, RendersRuleCountersInOrder) {
  ChainConfig config;
  RuleConfig rule;
  rule.name = "drop-all";
  rule.matcher = MatcherKind::kAny;
  rule.action = ActionKind::kDrop;
  config.rules.push_back(rule);
  rule.name = "";  // second rule: name defaults to rule1
  rule.action = ActionKind::kRefuse;
  config.rules.push_back(rule);
  RuleChain chain(config, kPools);
  const dns::DnsName name = dns::DnsName::parse("x.example");
  chain.evaluate(query_of(IpAddress::from_octets(1, 1, 1, 1), name));

  EXPECT_EQ(policy_csv(chain.stats()),
            "rule,matcher,action,matches\n"
            "drop-all,any,drop,1\n"
            "rule1,any,refuse,0\n");
}

}  // namespace
}  // namespace doxlab::policy
