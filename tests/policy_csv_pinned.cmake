# Pin for the per-rule policy report: runs the smoke abuse scenario and
# asserts the rule/matcher/action/matches CSV is bit-identical to the
# committed baseline. This guards the deterministic end-to-end path in one
# hash: attack traffic generation (splitmix64-derived streams), chain
# compilation order, per-rule hit accounting, and the report layout.
#
# Invoked by ctest as:
#   cmake -DDOXPERF_BIN=... -DWORK_DIR=... -DEXPECTED_SHA256=... -P this_file
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${DOXPERF_BIN}" abuse --smoke --seed=42
                        --policy-csv=policy_report.csv
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "doxperf abuse --policy-csv failed (exit ${rc})")
endif()
file(SHA256 "${WORK_DIR}/policy_report.csv" actual)
if(NOT actual STREQUAL "${EXPECTED_SHA256}")
  message(FATAL_ERROR "policy_report.csv drifted: sha256 ${actual} != "
                      "pinned ${EXPECTED_SHA256} — attack generation, rule "
                      "matching, or report layout changed observable "
                      "behaviour")
endif()
# The pinned run must actually shed traffic; an all-zero report would only
# pass the hash check if the baseline itself were degenerate, so double-check
# every abuse rule recorded at least one match.
file(STRINGS "${WORK_DIR}/policy_report.csv" lines)
set(rule_rows 0)
foreach(line IN LISTS lines)
  if(line MATCHES "^[^,]+,[^,]+,[^,]+,([0-9]+)$")
    math(EXPR rule_rows "${rule_rows} + 1")
    if(CMAKE_MATCH_1 EQUAL 0)
      message(FATAL_ERROR "pinned policy report rule '${line}' matched "
                          "nothing — the abuse scenario no longer exercises "
                          "that rule")
    endif()
  endif()
endforeach()
if(rule_rows EQUAL 0)
  message(FATAL_ERROR "pinned policy report contains no rule rows")
endif()
