// Tests for the forwarder engine: query coalescing fan-out, the bounded LRU
// cache, RFC 8767 serve-stale + background refresh, upstream fallback
// ordering and health-based failover, SERVFAIL accounting, and the load
// generator's determinism.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/load_gen.h"
#include "engine/scenario.h"
#include "net/network.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"

namespace doxlab::engine {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture()
      : network_(sim_, Rng(33)),
        client_host_(network_.add_host("client",
                                       IpAddress::from_octets(10, 1, 0, 1),
                                       {50.11, 8.68}, Continent::kEurope)),
        udp_(client_host_),
        tcp_(client_host_) {
    network_.set_loss_rate(0.0);
    add_resolver(/*index=*/0, /*one_way=*/from_ms(10));
    add_resolver(/*index=*/1, /*one_way=*/from_ms(30));
  }

  resolver::DoxResolver& add_resolver(std::size_t index, SimTime one_way,
                                      bool supports_doq = true) {
    resolver::ResolverProfile profile;
    profile.name = "upstream-" + std::to_string(index);
    profile.address =
        IpAddress::from_octets(10, 2, 0, static_cast<std::uint8_t>(index + 1));
    profile.location = {48.86, 2.35};
    profile.secret = 0xAA + index;
    profile.supports_doq = supports_doq;
    profile.drop_probability = 0.0;
    auto resolver = std::make_unique<resolver::DoxResolver>(
        network_, profile, Rng(index + 1));
    network_.set_path_override(client_host_.address(), profile.address,
                               one_way);
    resolvers_.push_back(std::move(resolver));
    return *resolvers_.back();
  }

  UpstreamConfig upstream_config(std::size_t index) {
    UpstreamConfig config;
    config.name = resolvers_[index]->profile().name;
    config.address = resolvers_[index]->profile().address;
    config.protocols = {dox::DnsProtocol::kDoQ, dox::DnsProtocol::kDoT,
                        dox::DnsProtocol::kDoUdp};
    return config;
  }

  EngineConfig engine_config() {
    EngineConfig config;
    config.pool.attempt_timeout = kSecond;
    config.pool.quarantine = 5 * kSecond;
    return config;
  }

  std::unique_ptr<ForwarderEngine> make_engine(
      EngineConfig config, std::vector<std::size_t> resolver_indices = {0,
                                                                        1}) {
    dox::TransportDeps deps;
    deps.sim = &sim_;
    deps.udp = &udp_;
    deps.tcp = &tcp_;
    deps.tickets = &tickets_;
    deps.doq_cache = &doq_cache_;
    std::vector<UpstreamConfig> configs;
    for (std::size_t i : resolver_indices) {
      configs.push_back(upstream_config(i));
    }
    return std::make_unique<ForwarderEngine>(sim_, udp_, deps,
                                             std::move(configs), config);
  }

  /// Sends one stub query and waits for the response.
  std::optional<dns::Message> stub_query(const std::string& name,
                                         std::uint16_t id = 0x77,
                                         SimTime wait = 30 * kSecond) {
    auto socket = udp_.bind_ephemeral();
    std::optional<dns::Message> response;
    socket->on_datagram(
        [&](const Endpoint&, util::Buffer payload) {
          response = dns::Message::decode(payload);
        });
    dns::Message query =
        dns::make_query(id, dns::DnsName::parse(name), dns::RRType::kA);
    socket->send_to(Endpoint{client_host_.address(), 53}, query.encode());
    sim_.run_until(sim_.now() + wait);
    return response;
  }

  sim::Simulator sim_;
  net::Network network_;
  net::Host& client_host_;
  net::UdpStack udp_;
  tcp::TcpStack tcp_;
  tls::TicketStore tickets_;
  dox::DoqSessionCache doq_cache_;
  std::vector<std::unique_ptr<resolver::DoxResolver>> resolvers_;
};

TEST_F(EngineFixture, ForwardsAndRewritesId) {
  auto engine = make_engine(engine_config());
  auto response = stub_query("example.com", 0x1234);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, 0x1234);
  EXPECT_TRUE(response->qr);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(dns::rdata_as_a(response->answers[0]),
            resolver::authoritative_ipv4(dns::DnsName::parse("example.com")));
  EXPECT_EQ(engine->stats().queries, 1u);
  EXPECT_EQ(engine->stats().misses, 1u);
}

TEST_F(EngineFixture, CoalescesConcurrentIdenticalQueries) {
  auto engine = make_engine(engine_config());
  // Five clients ask for the same name in the same instant: one upstream
  // resolve, five answers, each with its own transaction id.
  std::vector<std::unique_ptr<net::UdpSocket>> sockets;
  std::vector<std::uint16_t> answered_ids;
  for (int i = 0; i < 5; ++i) {
    sockets.push_back(udp_.bind_ephemeral());
    sockets.back()->on_datagram(
        [&](const Endpoint&, util::Buffer payload) {
          auto response = dns::Message::decode(payload);
          ASSERT_TRUE(response.has_value());
          answered_ids.push_back(response->id);
        });
    dns::Message query = dns::make_query(
        static_cast<std::uint16_t>(0x100 + i),
        dns::DnsName::parse("hot.example"), dns::RRType::kA);
    sockets[i]->send_to(Endpoint{client_host_.address(), 53},
                        query.encode());
  }
  sim_.run_until(30 * kSecond);

  ASSERT_EQ(answered_ids.size(), 5u);
  std::sort(answered_ids.begin(), answered_ids.end());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(answered_ids[i], 0x100 + i);
  }
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.queries, 5u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced, 4u);
  EXPECT_EQ(stats.upstream_resolves, 1u);
  EXPECT_DOUBLE_EQ(stats.coalesce_rate(), 0.8);
  EXPECT_EQ(resolvers_[0]->queries_served(dox::DnsProtocol::kDoQ), 1u);
}

TEST_F(EngineFixture, CoalescingDisabledResolvesEachQueryUpstream) {
  EngineConfig config = engine_config();
  config.coalesce = false;
  config.cache_enabled = false;
  auto engine = make_engine(config);
  std::vector<std::unique_ptr<net::UdpSocket>> sockets;
  int answers = 0;
  for (int i = 0; i < 3; ++i) {
    sockets.push_back(udp_.bind_ephemeral());
    sockets.back()->on_datagram(
        [&](const Endpoint&, util::Buffer) { ++answers; });
    dns::Message query = dns::make_query(
        static_cast<std::uint16_t>(i), dns::DnsName::parse("hot.example"),
        dns::RRType::kA);
    sockets[i]->send_to(Endpoint{client_host_.address(), 53},
                        query.encode());
  }
  sim_.run_until(30 * kSecond);
  EXPECT_EQ(answers, 3);
  EXPECT_EQ(engine->stats().coalesced, 0u);
  EXPECT_EQ(engine->stats().upstream_resolves, 3u);
}

TEST_F(EngineFixture, CacheServesRepeatQueriesWithoutUpstreamTraffic) {
  auto engine = make_engine(engine_config());
  stub_query("example.com");
  stub_query("example.com");
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.upstream_resolves, 1u);
}

TEST_F(EngineFixture, LruBoundEvictsAndReResolves) {
  EngineConfig config = engine_config();
  config.cache_capacity = 2;
  config.serve_stale = false;
  auto engine = make_engine(config);
  stub_query("a.example");
  stub_query("b.example");
  stub_query("c.example");  // evicts a.example (LRU)
  EXPECT_EQ(engine->cache().size(), 2u);
  EXPECT_EQ(engine->stats().cache_evictions, 1u);
  stub_query("a.example");  // must go upstream again
  EXPECT_EQ(engine->stats().upstream_resolves, 4u);
}

TEST_F(EngineFixture, ServeStaleAnswersImmediatelyAndRefreshes) {
  EngineConfig config = engine_config();
  config.max_ttl = 1;  // entries expire after a simulated second
  config.stale_ttl = 30;
  auto engine = make_engine(config);
  stub_query("stale.example");
  sim_.run_until(sim_.now() + 5 * kSecond);  // entry is now stale

  // The stale answer arrives without waiting for the upstream.
  auto socket = udp_.bind_ephemeral();
  std::optional<dns::Message> response;
  SimTime answered_at = 0;
  socket->on_datagram(
      [&](const Endpoint&, util::Buffer payload) {
        response = dns::Message::decode(payload);
        answered_at = sim_.now();
      });
  const SimTime asked_at = sim_.now();
  dns::Message query = dns::make_query(
      0x42, dns::DnsName::parse("stale.example"), dns::RRType::kA);
  socket->send_to(Endpoint{client_host_.address(), 53}, query.encode());
  // Short wait: long enough for the background refresh (one RTT), short
  // enough that the refreshed 1 s-TTL entry is still fresh below.
  sim_.run_until(sim_.now() + 500 * kMillisecond);

  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].ttl, 30u);      // clamped stale TTL
  EXPECT_LT(answered_at - asked_at, from_ms(1));  // no upstream round trip
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.stale_hits, 1u);
  EXPECT_EQ(stats.stale_refreshes, 1u);
  EXPECT_EQ(stats.upstream_resolves, 2u);  // initial + background refresh

  // The background refresh re-populated the cache: the next query is a
  // fresh hit, no new upstream resolve.
  stub_query("stale.example");
  EXPECT_EQ(engine->stats().cache_hits, 1u);
  EXPECT_EQ(engine->stats().upstream_resolves, 2u);
}

TEST_F(EngineFixture, FallbackWalksProtocolChainInOrder) {
  // The primary does not listen on DoQ: the DoQ attempt burns the attempt
  // timeout, then DoT succeeds — on the same upstream.
  add_resolver(2, from_ms(10), /*supports_doq=*/false);
  auto engine = make_engine(engine_config(), {2, 1});
  auto response = stub_query("fallback.example");
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(resolvers_[2]->queries_served(dox::DnsProtocol::kDoQ), 0u);
  EXPECT_EQ(resolvers_[2]->queries_served(dox::DnsProtocol::kDoT), 1u);
  EXPECT_EQ(resolvers_[1]->queries_served(dox::DnsProtocol::kDoT), 0u);
  EXPECT_EQ(engine->pool().failovers(), 1u);
}

TEST_F(EngineFixture, DeadPrimaryQuarantinedAfterConsecutiveFailures) {
  EngineConfig config = engine_config();
  config.cache_enabled = false;
  // Each stub_query advances the clock 30 s; keep the quarantine longer so
  // the primary is not re-probed between queries.
  config.pool.quarantine = 10 * kMinute;
  auto engine = make_engine(config);
  resolvers_[0]->host().set_up(false);

  // Each query walks primary's dead chain before reaching the secondary;
  // after `unhealthy_after` failed attempts the primary is quarantined and
  // later queries go straight to the secondary.
  for (int i = 0; i < 3; ++i) {
    auto response =
        stub_query("q" + std::to_string(i) + ".example", 0x10 + i);
    ASSERT_TRUE(response.has_value()) << "query " << i;
    EXPECT_EQ(response->rcode, dns::RCode::kNoError) << "query " << i;
  }
  auto health = engine->pool().health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_FALSE(health[0].healthy);
  EXPECT_GE(health[0].consecutive_failures, 3);
  EXPECT_TRUE(health[1].healthy);
  EXPECT_GT(health[1].ewma_latency_ms, 0.0);

  // Quarantined: the next query must not pay the primary's timeouts — its
  // client-visible latency stays under one attempt timeout because it goes
  // straight to the live secondary.
  auto response = stub_query("fast.example");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(engine->stats().servfails_sent, 0u);
  auto samples = engine->latency_samples_ms();
  ASSERT_FALSE(samples.empty());
  EXPECT_LT(samples.back(), to_ms(config.pool.attempt_timeout));
}

TEST_F(EngineFixture, AllUpstreamsDeadYieldsServfail) {
  EngineConfig config = engine_config();
  config.pool.attempt_timeout = 500 * kMillisecond;
  auto engine = make_engine(config);
  resolvers_[0]->host().set_up(false);
  resolvers_[1]->host().set_up(false);
  auto response = stub_query("dead.example", 0x99, 60 * kSecond);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rcode, dns::RCode::kServFail);
  EXPECT_EQ(engine->stats().servfails_sent, 1u);
  EXPECT_GE(engine->pool().exhausted(), 1u);
}

TEST_F(EngineFixture, StaleServedInsteadOfServfailOnUpstreamFailure) {
  EngineConfig config = engine_config();
  config.pool.attempt_timeout = 500 * kMillisecond;
  config.max_ttl = 1;
  auto engine = make_engine(config);
  stub_query("resilient.example");
  sim_.run_until(sim_.now() + 5 * kSecond);  // entry stale
  resolvers_[0]->host().set_up(false);
  resolvers_[1]->host().set_up(false);
  auto response = stub_query("resilient.example", 0x55, 60 * kSecond);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rcode, dns::RCode::kNoError);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(engine->stats().servfails_sent, 0u);
}

TEST_F(EngineFixture, NegativeAnswerCachedAndFannedOut) {
  auto engine = make_engine(engine_config());
  // TXT query against an A-only name yields an empty answer set; the
  // engine caches it as a negative entry.
  auto socket = udp_.bind_ephemeral();
  std::optional<dns::Message> response;
  socket->on_datagram(
      [&](const Endpoint&, util::Buffer payload) {
        response = dns::Message::decode(payload);
      });
  dns::Message query = dns::make_query(
      0x61, dns::DnsName::parse("nodata.example"), dns::RRType::kAAAA);
  socket->send_to(Endpoint{client_host_.address(), 53}, query.encode());
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_TRUE(response.has_value());

  socket->send_to(Endpoint{client_host_.address(), 53}, query.encode());
  sim_.run_until(sim_.now() + 30 * kSecond);
  EXPECT_EQ(engine->stats().cache_hits, 1u);
  EXPECT_EQ(engine->stats().upstream_resolves, 1u);
}

TEST_F(EngineFixture, PolicyRefusesDropsAndTruncatesBeforeResolution) {
  EngineConfig config = engine_config();
  {
    policy::RuleConfig rule;
    rule.name = "refuse-flood";
    rule.matcher = policy::MatcherKind::kQnameSuffix;
    rule.suffixes = {"flood.example"};
    rule.action = policy::ActionKind::kRefuse;
    config.policy.rules.push_back(rule);
  }
  {
    policy::RuleConfig rule;
    rule.name = "drop-torture";
    rule.matcher = policy::MatcherKind::kQnameSuffix;
    rule.suffixes = {"torture.example"};
    rule.action = policy::ActionKind::kDrop;
    config.policy.rules.push_back(rule);
  }
  {
    policy::RuleConfig rule;
    rule.name = "tc-tcp-only";
    rule.matcher = policy::MatcherKind::kQnameSuffix;
    rule.suffixes = {"tcp-only.example"};
    rule.action = policy::ActionKind::kTruncate;
    config.policy.rules.push_back(rule);
  }
  auto engine = make_engine(config);

  const auto refused = stub_query("r1.flood.example", 0x21, 5 * kSecond);
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->rcode, dns::RCode::kRefused);
  EXPECT_TRUE(refused->answers.empty());

  // Dropped silently: the client never hears back.
  const auto dropped = stub_query("w9.torture.example", 0x22, 5 * kSecond);
  EXPECT_FALSE(dropped.has_value());

  const auto truncated = stub_query("a.tcp-only.example", 0x23, 5 * kSecond);
  ASSERT_TRUE(truncated.has_value());
  EXPECT_TRUE(truncated->tc);
  EXPECT_EQ(truncated->rcode, dns::RCode::kNoError);

  // None of the three touched cache or upstreams.
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.policy_evaluations, 3u);
  EXPECT_EQ(stats.policy_refused, 1u);
  EXPECT_EQ(stats.policy_dropped, 1u);
  EXPECT_EQ(stats.policy_truncated, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.upstream_resolves, 0u);
  EXPECT_EQ(engine->cache().size(), 0u);
  // Verdicts key into the PR-4 failure taxonomy.
  EXPECT_EQ(stats.policy_errors.count(util::ErrorClass::kRcode), 1u);
  EXPECT_EQ(stats.policy_errors.count(util::ErrorClass::kCancelled), 1u);
  EXPECT_EQ(stats.policy_errors.count(util::ErrorClass::kTruncated), 1u);
  ASSERT_EQ(stats.policy_rules.size(), 3u);
  EXPECT_EQ(stats.policy_rules[0].matches, 1u);
  EXPECT_EQ(stats.policy_rules[1].matches, 1u);
  EXPECT_EQ(stats.policy_rules[2].matches, 1u);
}

TEST_F(EngineFixture, PolicyRoutesSuffixToNamedPool) {
  // Upstream 0 stays in the default pool; upstream 1 forms pool "special".
  EngineConfig config = engine_config();
  {
    policy::RuleConfig rule;
    rule.name = "route-special";
    rule.matcher = policy::MatcherKind::kQnameSuffix;
    rule.suffixes = {"special.example"};
    rule.action = policy::ActionKind::kRoutePool;
    rule.pool = "special";
    config.policy.rules.push_back(rule);
  }
  dox::TransportDeps deps;
  deps.sim = &sim_;
  deps.udp = &udp_;
  deps.tcp = &tcp_;
  deps.tickets = &tickets_;
  deps.doq_cache = &doq_cache_;
  std::vector<UpstreamConfig> configs = {upstream_config(0),
                                         upstream_config(1)};
  configs[1].pool = "special";
  ForwarderEngine engine(sim_, udp_, deps, std::move(configs), config);
  ASSERT_EQ(engine.pool_count(), 2u);
  EXPECT_EQ(engine.pool_names()[0], "default");
  EXPECT_EQ(engine.pool_names()[1], "special");

  auto plain = stub_query("plain.example");
  auto special = stub_query("a.special.example");
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(special.has_value());
  ASSERT_EQ(special->answers.size(), 1u);
  // Each pool resolved exactly its own traffic.
  EXPECT_EQ(resolvers_[0]->queries_served(dox::DnsProtocol::kDoQ), 1u);
  EXPECT_EQ(resolvers_[1]->queries_served(dox::DnsProtocol::kDoQ), 1u);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.policy_routed, 1u);
  EXPECT_EQ(stats.policy_evaluations, 2u);
  EXPECT_DOUBLE_EQ(stats.policy_shed_rate(), 0.0);
}

TEST_F(EngineFixture, PolicyUnknownPoolFailsConstruction) {
  EngineConfig config = engine_config();
  policy::RuleConfig rule;
  rule.action = policy::ActionKind::kRoutePool;
  rule.pool = "nope";
  config.policy.rules.push_back(rule);
  EXPECT_THROW(make_engine(config), std::invalid_argument);
}

TEST_F(EngineFixture, PolicyAllowedQueriesStillCacheAndCoalesce) {
  EngineConfig config = engine_config();
  {
    // A chain that never matches the test traffic: the engine must behave
    // exactly as with no chain, just with the evaluation counter ticking.
    policy::RuleConfig rule;
    rule.matcher = policy::MatcherKind::kQnameSuffix;
    rule.suffixes = {"never.example"};
    rule.action = policy::ActionKind::kDrop;
    config.policy.rules.push_back(rule);
  }
  auto engine = make_engine(config);
  stub_query("hot.example");
  stub_query("hot.example");
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.policy_evaluations, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.upstream_resolves, 1u);
  EXPECT_DOUBLE_EQ(stats.policy_shed_rate(), 0.0);
}

class WireCacheEngineFixture : public EngineFixture {
 protected:
  /// Sends one stub query and returns the raw response wire (empty on
  /// timeout) — the byte-fidelity probes below compare images, not decodes.
  std::vector<std::uint8_t> raw_query(const std::string& name,
                                      std::uint16_t id,
                                      SimTime wait = 200 * kMillisecond) {
    auto socket = udp_.bind_ephemeral();
    std::vector<std::uint8_t> raw;
    socket->on_datagram([&](const Endpoint&, util::Buffer payload) {
      raw.assign(payload.view().begin(), payload.view().end());
    });
    dns::Message query =
        dns::make_query(id, dns::DnsName::parse(name), dns::RRType::kA);
    socket->send_to(Endpoint{client_host_.address(), 53}, query.encode());
    sim_.run_until(sim_.now() + wait);
    return raw;
  }
};

TEST_F(WireCacheEngineFixture, WireCacheServesRepeatsByPatchingBytes) {
  EngineConfig config = engine_config();
  config.wire_cache_capacity = 1024;
  auto engine = make_engine(config);

  // First query resolves upstream; the second is an L1 hit whose encoded
  // answer fills the wire cache; the third never touches Message at all.
  const auto first = raw_query("hot.example", 0x0101);
  const auto second = raw_query("hot.example", 0x0202);
  const auto third = raw_query("hot.example", 0x0303);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  ASSERT_FALSE(third.empty());

  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.wire_lookups, 3u);
  EXPECT_EQ(stats.wire_hits, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.upstream_resolves, 1u);
  ASSERT_NE(engine->wire_cache(), nullptr);
  EXPECT_EQ(engine->wire_cache()->size(), 1u);
  EXPECT_EQ(engine->wire_cache()->stats().hits, 1u);

  // The patched answer is the L1 answer byte for byte — only the two ID
  // bytes differ (same whole simulated second, so no TTL decay yet).
  ASSERT_EQ(third.size(), second.size());
  EXPECT_EQ(third[0], 0x03);
  EXPECT_EQ(third[1], 0x03);
  EXPECT_TRUE(std::equal(third.begin() + 2, third.end(),
                         second.begin() + 2));
}

TEST_F(WireCacheEngineFixture, WireCacheFoldsQnameCase) {
  EngineConfig config = engine_config();
  config.wire_cache_capacity = 1024;
  auto engine = make_engine(config);
  raw_query("case.example", 1);
  raw_query("case.example", 2);  // fills the wire cache
  const auto shouty = raw_query("CASE.Example", 3);
  ASSERT_FALSE(shouty.empty());
  EXPECT_EQ(engine->stats().wire_hits, 1u);
  const auto decoded = dns::Message::decode(shouty);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 3);
  ASSERT_FALSE(decoded->answers.empty());
}

TEST_F(WireCacheEngineFixture, WireCacheServesStaleAndTriggersRefresh) {
  EngineConfig config = engine_config();
  config.wire_cache_capacity = 1024;
  config.max_ttl = 1;  // 1 s entries: stale quickly
  config.stale_ttl = 30;
  auto engine = make_engine(config);
  raw_query("stale.example", 1);
  raw_query("stale.example", 2);  // fills the wire cache (1 s lifetime)
  sim_.run_until(sim_.now() + 5 * kSecond);

  const auto stale = raw_query("stale.example", 3);
  ASSERT_FALSE(stale.empty());
  const auto decoded = dns::Message::decode(stale);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_FALSE(decoded->answers.empty());
  EXPECT_EQ(decoded->answers[0].ttl, 30u);  // stale-stamped on the wire

  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.wire_hits, 1u);
  EXPECT_EQ(stats.stale_hits, 1u);        // wire-stale counts as stale
  EXPECT_EQ(stats.stale_refreshes, 1u);   // background refresh started
  EXPECT_EQ(stats.upstream_resolves, 2u);
  // A stale image serves once: the entry is gone until the next fill.
  EXPECT_EQ(engine->wire_cache()->size(), 0u);
}

TEST_F(WireCacheEngineFixture, PolicyChainRunsOnWireHits) {
  // A refill-free rate limiter (rate 0, burst 2) admits exactly two
  // queries, so the third — which probes the wire cache successfully — must
  // still be REFUSED by the chain: the fast path cannot bypass policy.
  EngineConfig config = engine_config();
  config.wire_cache_capacity = 1024;
  {
    policy::RuleConfig rule;
    rule.name = "budget";
    rule.matcher = policy::MatcherKind::kRateLimit;
    rule.rate_qps = 0;
    rule.burst = 2;
    rule.action = policy::ActionKind::kRefuse;
    config.policy.rules.push_back(rule);
  }
  auto engine = make_engine(config);
  raw_query("hot.example", 1);
  raw_query("hot.example", 2);  // fills the wire cache
  const auto refused = raw_query("hot.example", 3);
  ASSERT_FALSE(refused.empty());
  const auto decoded = dns::Message::decode(refused);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rcode, dns::RCode::kRefused);
  EXPECT_TRUE(decoded->answers.empty());

  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.policy_evaluations, 3u);
  EXPECT_EQ(stats.policy_refused, 1u);
  EXPECT_EQ(stats.wire_lookups, 3u);
  EXPECT_EQ(stats.wire_hits, 0u);  // consumed by policy, not served
}

TEST(EngineStatsTest, AddMergesWireCounters) {
  EngineStats a;
  a.wire_hits = 3;
  a.wire_lookups = 10;
  EngineStats b;
  b.wire_hits = 4;
  b.wire_lookups = 11;
  a.add(b);
  EXPECT_EQ(a.wire_hits, 7u);
  EXPECT_EQ(a.wire_lookups, 21u);
}

TEST(LoadGenerator, DeterministicFromSeed) {
  auto run = [](std::uint64_t seed) {
    ScenarioConfig config;
    config.seed = seed;
    config.load.seed = seed;
    config.load.clients = 50;
    config.load.qps = 200;
    config.load.duration = 2 * kSecond;
    config.load.names = 20;
    return run_scenario(config);
  };
  const ScenarioResult a = run(11);
  const ScenarioResult b = run(11);
  const ScenarioResult c = run(12);
  EXPECT_EQ(a.load.sent, b.load.sent);
  EXPECT_EQ(a.load.answered, b.load.answered);
  EXPECT_EQ(a.engine.upstream_resolves, b.engine.upstream_resolves);
  EXPECT_EQ(a.load.latency_ms, b.load.latency_ms);
  EXPECT_EQ(a.events, b.events);
  EXPECT_NE(a.load.latency_ms, c.load.latency_ms);  // seed matters
}

TEST(LoadGenerator, ClientSourceAddressesDeterministicFromSeed) {
  // Per-client spoofed sources are a pure function of (seed, index): two
  // generators with the same seed agree address-for-address, a different
  // seed reshuffles, and every address stays inside the configured span.
  auto sources = [](std::uint64_t seed) {
    sim::Simulator sim;
    net::Network network(sim, Rng(5));
    net::Host& host = network.add_host(
        "stub", IpAddress::from_octets(10, 9, 0, 1), {50.11, 8.68},
        Continent::kEurope);
    net::UdpStack udp(host);
    LoadConfig config;
    config.seed = seed;
    config.clients = 32;
    config.duration = 0;  // addressing only; no arrivals scheduled
    config.client_base = IpAddress::from_octets(10, 50, 0, 0);
    config.client_span = std::uint32_t{1} << 16;
    config.target = Endpoint{host.address(), 53};
    LoadGenerator generator(sim, udp, config);
    std::vector<net::IpAddress> out;
    for (std::size_t i = 0; i < config.clients; ++i) {
      out.push_back(generator.client_source(i));
    }
    return out;
  };
  const auto a = sources(42);
  const auto b = sources(42);
  const auto c = sources(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const policy::Netmask span = policy::Netmask::parse("10.50.0.0/16");
  for (const auto& address : a) EXPECT_TRUE(span.contains(address));
}

TEST(LoadGenerator, AbuseScenarioShedsAttacksWithoutPerturbingLegitLoad) {
  ScenarioConfig config;
  config.load.clients = 100;
  config.load.qps = 400;
  config.load.duration = 5 * kSecond;
  config.load.names = 50;
  config.abuse.enabled = true;
  config.abuse.start = kSecond;
  config.abuse.flood_qps = 400;
  config.abuse.torture_qps = 200;
  config.abuse.amp_qps = 150;

  // Baseline: same scenario, attacks silenced. The attack streams draw from
  // disjoint splitmix64-derived Rngs, so the legitimate arrival schedule is
  // identical between the runs (same sent count, sample for sample); the
  // individual latencies may wiggle (attack packets interleave with legit
  // ones on the shared network), but the tail must stay within the same 10%
  // band the bench gates on.
  ScenarioConfig baseline = config;
  baseline.abuse.flood_qps = 0.0;
  baseline.abuse.torture_qps = 0.0;
  baseline.abuse.amp_qps = 0.0;

  const ScenarioResult quiet = run_scenario(baseline);
  const ScenarioResult attacked = run_scenario(config);
  EXPECT_EQ(quiet.load.sent, attacked.load.sent);
  EXPECT_EQ(quiet.load.latency_ms.size(), attacked.load.latency_ms.size());
  EXPECT_TRUE(attacked.load.complete());
  EXPECT_EQ(attacked.load.timeouts, 0u);
  const double p99_quiet = quiet.load.latency_summary().p99;
  const double p99_attacked = attacked.load.latency_summary().p99;
  EXPECT_LE(p99_attacked, 1.10 * p99_quiet);

  // All three attack families fired and were shed at the policy chain.
  ASSERT_EQ(attacked.attacks.size(), 3u);
  std::uint64_t sent = 0;
  for (const auto& attack : attacked.attacks) {
    EXPECT_GT(attack.sent, 0u) << attack_kind_name(attack.kind);
    sent += attack.sent;
  }
  EXPECT_GE(attacked.attack_shed_rate(), 0.95);
  const EngineStats& stats = attacked.engine;
  EXPECT_EQ(stats.policy_evaluations, stats.queries);
  EXPECT_GT(stats.policy_refused, 0u);
  EXPECT_GT(stats.policy_dropped, 0u);
  EXPECT_EQ(stats.policy_errors.count(util::ErrorClass::kRcode),
            stats.policy_refused);
  EXPECT_EQ(stats.policy_errors.count(util::ErrorClass::kCancelled),
            stats.policy_dropped);
  ASSERT_EQ(stats.policy_rules.size(), 5u);
  std::uint64_t rule_matches = 0;
  for (const auto& rule : stats.policy_rules) rule_matches += rule.matches;
  EXPECT_GT(rule_matches, sent / 2);  // the chain saw the attack traffic
}

TEST(LoadGenerator, AllQueriesAccountedFor) {
  ScenarioConfig config;
  config.load.clients = 100;
  config.load.qps = 500;
  config.load.duration = 4 * kSecond;
  const ScenarioResult result = run_scenario(config);
  EXPECT_GT(result.load.sent, 1000u);
  EXPECT_TRUE(result.load.complete());
  EXPECT_EQ(result.load.servfails, 0u);
  EXPECT_EQ(result.load.timeouts, 0u);
  EXPECT_EQ(result.load.sent, result.engine.queries);
}

}  // namespace
}  // namespace doxlab::engine
