// Unit tests for the shared L2 packet cache (dns/packet_cache.h): deferred
// lane inserts, the epoch sweep merge, the try-lock miss fallback, TTL
// expiry, the capacity bound, and the RRset wire codec.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dns/packet_cache.h"

namespace doxlab::dns {
namespace {

ResourceRecord cname(const char* owner, const char* target) {
  ResourceRecord record;
  record.name = DnsName::parse(owner);
  record.type = RRType::kCNAME;
  record.ttl = 300;
  const DnsName target_name = DnsName::parse(target);
  const auto wire = target_name.wire_labels();
  record.rdata.assign(wire.begin(), wire.end());
  record.rdata.push_back(0);  // root terminator
  return record;
}

TEST(SharedPacketCache, DeferredInsertInvisibleUntilSweep) {
  SharedPacketCache cache(64, 2);
  const DnsName name = DnsName::parse("www.example.com");
  const std::vector<ResourceRecord> records = {
      make_a(name, 60, 0x0A000001)};

  cache.insert(0, name, RRType::kA, records, 0);
  PacketCacheHit hit;
  EXPECT_FALSE(cache.lookup(0, name, RRType::kA, 0, hit));
  EXPECT_FALSE(cache.lookup(1, name, RRType::kA, 0, hit));

  auto stats = cache.stats();
  EXPECT_EQ(stats.deferred_inserts, 1u);
  EXPECT_EQ(stats.applied_inserts, 0u);
  EXPECT_EQ(stats.size, 0u);

  cache.sweep(0);
  // Visible to every shard after the merge, not just the inserter.
  EXPECT_TRUE(cache.lookup(1, name, RRType::kA, 0, hit));
  EXPECT_EQ(hit.ttl_s, 60u);
  EXPECT_EQ(hit.age_s, 0u);

  stats = cache.stats();
  EXPECT_EQ(stats.applied_inserts, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(SharedPacketCache, HitAgesAndDecodes) {
  SharedPacketCache cache(64, 1);
  const DnsName name = DnsName::parse("aged.example.com");
  const std::vector<ResourceRecord> records = {
      make_a(name, 60, 0x0A000001), make_a(name, 90, 0x0A000002)};

  cache.insert(0, name, RRType::kA, records, 0);
  cache.sweep(0);

  PacketCacheHit hit;
  ASSERT_TRUE(cache.lookup(0, name, RRType::kA, 10 * kSecond, hit));
  EXPECT_EQ(hit.ttl_s, 60u);  // minimum record TTL
  EXPECT_EQ(hit.age_s, 10u);

  std::vector<ResourceRecord> decoded;
  ASSERT_TRUE(SharedPacketCache::decode_rrset(hit.wire.view(), decoded));
  EXPECT_EQ(decoded, records);
}

TEST(SharedPacketCache, EncodeDecodeRoundtripsCnameChain) {
  // Chains need every record's owner name intact, not just the question's.
  const std::vector<ResourceRecord> records = {
      cname("www.example.com", "cdn.example.net"),
      make_a(DnsName::parse("cdn.example.net"), 30, 0x0A000003)};
  util::Buffer wire = SharedPacketCache::encode_rrset(records);
  EXPECT_TRUE(wire.is_shared());  // ready to cross a shard boundary

  std::vector<ResourceRecord> decoded;
  ASSERT_TRUE(SharedPacketCache::decode_rrset(wire.view(), decoded));
  EXPECT_EQ(decoded, records);
}

TEST(SharedPacketCache, DecodeRejectsTruncatedWire) {
  util::Buffer wire = SharedPacketCache::encode_rrset(std::vector<ResourceRecord>{
      make_a(DnsName::parse("x.example.com"), 60, 1)});
  std::vector<ResourceRecord> decoded;
  EXPECT_FALSE(SharedPacketCache::decode_rrset(
      wire.view().subspan(0, wire.size() - 3), decoded));
}

TEST(SharedPacketCache, ExpiredEntryMissesThenSweepReaps) {
  SharedPacketCache cache(64, 1);
  const DnsName name = DnsName::parse("ttl.example.com");
  cache.insert(0, name, RRType::kA, std::vector<ResourceRecord>{make_a(name, 5, 1)}, 0);
  cache.sweep(0);

  PacketCacheHit hit;
  EXPECT_TRUE(cache.lookup(0, name, RRType::kA, 5 * kSecond - 1, hit));
  // At exactly TTL the entry is dead; the reader reports a miss but leaves
  // the reaping to the next sweep.
  EXPECT_FALSE(cache.lookup(0, name, RRType::kA, 5 * kSecond, hit));
  EXPECT_EQ(cache.size(), 1u);

  cache.sweep(5 * kSecond);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().expired_evicted, 1u);
}

TEST(SharedPacketCache, CapacityRejectsNewKeysButReplacesExisting) {
  SharedPacketCache cache(2, 1);
  const DnsName a = DnsName::parse("a.example.com");
  const DnsName b = DnsName::parse("b.example.com");
  const DnsName c = DnsName::parse("c.example.com");
  cache.insert(0, a, RRType::kA, std::vector<ResourceRecord>{make_a(a, 60, 1)}, 0);
  cache.insert(0, b, RRType::kA, std::vector<ResourceRecord>{make_a(b, 60, 2)}, 0);
  cache.insert(0, c, RRType::kA, std::vector<ResourceRecord>{make_a(c, 60, 3)}, 0);
  cache.sweep(0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().rejected_capacity, 1u);

  // Replacing a resident key is always allowed at the bound.
  cache.insert(0, a, RRType::kA, std::vector<ResourceRecord>{make_a(a, 120, 4)}, kSecond);
  cache.sweep(kSecond);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().replaced, 1u);
  PacketCacheHit hit;
  ASSERT_TRUE(cache.lookup(0, a, RRType::kA, kSecond, hit));
  EXPECT_EQ(hit.ttl_s, 120u);
}

TEST(SharedPacketCache, LaterShardLaneWinsTheMerge) {
  // Lanes merge in shard-index order, so the highest shard's insert is the
  // survivor — deterministic no matter which thread ran first.
  SharedPacketCache cache(64, 3);
  const DnsName name = DnsName::parse("dup.example.com");
  cache.insert(2, name, RRType::kA, std::vector<ResourceRecord>{make_a(name, 20, 2)}, 0);
  cache.insert(0, name, RRType::kA, std::vector<ResourceRecord>{make_a(name, 10, 1)}, 0);
  cache.sweep(0);

  PacketCacheHit hit;
  ASSERT_TRUE(cache.lookup(0, name, RRType::kA, 0, hit));
  EXPECT_EQ(hit.ttl_s, 20u);
  EXPECT_EQ(cache.stats().replaced, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedPacketCache, EmptyAndZeroTtlRecordSetsAreNotCached) {
  SharedPacketCache cache(64, 1);
  const DnsName name = DnsName::parse("skip.example.com");
  cache.insert(0, name, RRType::kA, std::span<const ResourceRecord>(), 0);
  cache.insert(0, name, RRType::kA, std::vector<ResourceRecord>{make_a(name, 0, 1)}, 0);
  EXPECT_EQ(cache.stats().deferred_inserts, 0u);
  cache.sweep(0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SharedPacketCache, ContendedTryLockFallsBackToMiss) {
  SharedPacketCache cache(64, 1);
  const DnsName name = DnsName::parse("locked.example.com");
  cache.insert(0, name, RRType::kA, std::vector<ResourceRecord>{make_a(name, 60, 1)}, 0);
  cache.sweep(0);

  bool found = true;
  {
    auto guard = cache.lock_for_testing();
    // The reader must not block behind the held mutex: it reports a miss
    // and counts the contention instead.
    std::thread reader([&] {
      PacketCacheHit hit;
      found = cache.lookup(0, name, RRType::kA, 0, hit);
    });
    reader.join();
  }
  EXPECT_FALSE(found);
  auto stats = cache.stats();
  EXPECT_EQ(stats.lock_misses, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // With the lock free again the same lookup hits.
  PacketCacheHit hit;
  EXPECT_TRUE(cache.lookup(0, name, RRType::kA, 0, hit));
}

TEST(SharedPacketCache, SharedReadersDoNotExcludeEachOther) {
  SharedPacketCache cache(64, 2);
  const DnsName name = DnsName::parse("shared.example.com");
  cache.insert(0, name, RRType::kA,
               std::vector<ResourceRecord>{make_a(name, 60, 1)}, 0);
  cache.sweep(0);

  // While one reader holds the lock shared, another shard's lookup must
  // still hit: readers contend only with the (barrier-time) exclusive
  // sweep, never with each other — L2 hit/miss outcomes cannot depend on
  // how the OS scheduled concurrent lookups.
  bool found = false;
  {
    auto guard = cache.lock_shared_for_testing();
    std::thread reader([&] {
      PacketCacheHit hit;
      found = cache.lookup(1, name, RRType::kA, 0, hit);
    });
    reader.join();
  }
  EXPECT_TRUE(found);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lock_misses, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(SharedPacketCache, ConcurrentShardReadersAndLaneWriters) {
  // One thread per shard doing interleaved lookups and lane inserts while
  // the table is epoch-frozen — the exact engine contract. Run under TSan
  // this pins the lanes' independence and the shared buffers' refcounts.
  constexpr std::uint32_t kShards = 4;
  constexpr int kNamesPerShard = 50;
  SharedPacketCache cache(1024, kShards);

  const DnsName hot = DnsName::parse("hot.example.com");
  cache.insert(0, hot, RRType::kA, std::vector<ResourceRecord>{make_a(hot, 600, 7)}, 0);
  cache.sweep(0);

  std::vector<std::uint64_t> hits(kShards, 0);
  std::vector<std::thread> threads;
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    threads.emplace_back([&, shard] {
      for (int i = 0; i < kNamesPerShard; ++i) {
        const DnsName name = DnsName::parse(
            "n" + std::to_string(i) + "-s" + std::to_string(shard) +
            ".example.com");
        cache.insert(shard, name, RRType::kA,
                     std::vector<ResourceRecord>{
                         make_a(name, 60, shard * 1000 + i)},
                     0);
        PacketCacheHit hit;
        if (cache.lookup(shard, hot, RRType::kA, 0, hit)) ++hits[shard];
      }
    });
  }
  for (auto& thread : threads) thread.join();

  cache.sweep(0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.deferred_inserts, kShards * kNamesPerShard + 1u);
  EXPECT_EQ(stats.applied_inserts, kShards * kNamesPerShard + 1u);
  EXPECT_EQ(cache.size(), kShards * kNamesPerShard + 1u);
  // Epoch-frozen table: not a single reader may have been turned away.
  std::uint64_t total_hits = 0;
  for (const auto h : hits) total_hits += h;
  EXPECT_EQ(total_hits, kShards * kNamesPerShard);
  EXPECT_EQ(stats.lock_misses, 0u);
}

}  // namespace
}  // namespace doxlab::dns
