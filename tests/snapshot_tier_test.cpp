// Persistence tests for the append-log snapshot tier
// (dns/snapshot_tier.h): round-trip replay, the truncate-at-every-byte
// crash-recovery fuzz (any prefix of a valid log must replay to a clean
// prefix of the inserted entries and accept appends afterwards),
// supersede-on-rewrite, compaction, absolute expiry, and foreign-file
// rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "dns/cache_tier.h"
#include "dns/message.h"
#include "dns/packet_cache.h"
#include "dns/snapshot_tier.h"

namespace doxlab::dns {
namespace {

std::string temp_path(const std::string& file) {
  const std::string path = ::testing::TempDir() + file;
  std::remove(path.c_str());
  return path;
}

std::vector<ResourceRecord> a_records(const DnsName& name, std::uint32_t ttl,
                                      std::uint32_t ipv4) {
  return {make_a(name, ttl, ipv4)};
}

DnsName numbered(int i) {
  return DnsName::parse("name" + std::to_string(i) + ".snap.example");
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::vector<std::uint8_t> data;
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return data;
  std::fseek(in, 0, SEEK_END);
  const long size = std::ftell(in);
  std::fseek(in, 0, SEEK_SET);
  if (size > 0) {
    data.resize(static_cast<std::size_t>(size));
    if (std::fread(data.data(), 1, data.size(), in) != data.size()) {
      data.clear();
    }
  }
  std::fclose(in);
  return data;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& data) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  if (!data.empty()) {
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), out), data.size());
  }
  std::fclose(out);
}

TEST(SnapshotTier, RoundTripAcrossReopen) {
  const std::string path = temp_path("roundtrip.snap");
  {
    SnapshotTier tier({.path = path});
    for (int i = 0; i < 10; ++i) {
      tier.insert(numbered(i), RRType::kA,
                  a_records(numbered(i), 300, 0x0A000000u + i), kSecond);
    }
    tier.flush();
    EXPECT_EQ(tier.size(), 10u);
  }
  SnapshotTier reopened({.path = path});
  EXPECT_EQ(reopened.size(), 10u);
  EXPECT_EQ(reopened.replay_stats().frames_replayed, 10u);
  EXPECT_EQ(reopened.replay_stats().torn_dropped, 0u);
  EXPECT_EQ(reopened.replay_stats().skipped_bad, 0u);
  for (int i = 0; i < 10; ++i) {
    SnapshotHit hit;
    ASSERT_TRUE(
        reopened.lookup(numbered(i), RRType::kA, 2 * kSecond, hit))
        << "name" << i;
    EXPECT_EQ(hit.ttl_s, 300u);
    EXPECT_EQ(hit.age_s, 1u);
    EXPECT_FALSE(hit.stale);
    std::vector<ResourceRecord> records;
    ASSERT_TRUE(SharedPacketCache::decode_rrset(*hit.rrset, records));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].rdata[3], static_cast<std::uint8_t>(i));
  }
}

/// The crash-recovery fuzz: write a log of N records, then for every
/// possible truncation length, replay must (a) not crash, (b) recover an
/// exact prefix of the inserted entries, and (c) leave a log that accepts
/// new appends which survive another reopen.
TEST(SnapshotTier, TruncateAtEveryByteReplaysAPrefix) {
  const std::string path = temp_path("fuzz.snap");
  constexpr int kRecords = 30;
  {
    SnapshotTier tier({.path = path});
    for (int i = 0; i < kRecords; ++i) {
      tier.insert(numbered(i), RRType::kA,
                  a_records(numbered(i), 120, 0x0A000000u + i), kSecond);
    }
    tier.flush();
  }
  const std::vector<std::uint8_t> full = read_file(path);
  ASSERT_GT(full.size(), 8u);

  const std::string fuzz = temp_path("fuzz-cut.snap");
  std::size_t prefix_sizes_seen = 0;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    write_file(fuzz, {full.begin(), full.begin() + cut});
    std::size_t replayed = 0;
    {
      SnapshotTier tier({.path = fuzz});
      replayed = tier.size();
      ASSERT_LE(replayed, static_cast<std::size_t>(kRecords));
      // Exactly the first `replayed` names are present: recovery is a
      // prefix, never a subset with holes.
      for (int i = 0; i < kRecords; ++i) {
        SnapshotHit hit;
        const bool found =
            tier.lookup(numbered(i), RRType::kA, 2 * kSecond, hit);
        EXPECT_EQ(found, static_cast<std::size_t>(i) < replayed)
            << "cut=" << cut << " name" << i;
      }
      // The torn tail was truncated away; the log must accept an append.
      tier.insert(numbered(1000), RRType::kA,
                  a_records(numbered(1000), 60, 1), 2 * kSecond);
      tier.flush();
      EXPECT_EQ(tier.size(), replayed + 1);
    }
    SnapshotTier reopened({.path = fuzz});
    EXPECT_EQ(reopened.size(), replayed + 1) << "cut=" << cut;
    SnapshotHit hit;
    EXPECT_TRUE(
        reopened.lookup(numbered(1000), RRType::kA, 3 * kSecond, hit))
        << "cut=" << cut;
    if (replayed == static_cast<std::size_t>(kRecords)) {
      ++prefix_sizes_seen;
    }
  }
  // Sanity: only the untruncated file (cut == full.size()) replays all
  // records — every other cut loses at least the final frame.
  EXPECT_EQ(prefix_sizes_seen, 1u);
}

TEST(SnapshotTier, RewriteSupersedesInsteadOfDuplicating) {
  const std::string path = temp_path("supersede.snap");
  const DnsName name = DnsName::parse("dup.snap.example");
  {
    SnapshotTier tier({.path = path});
    tier.insert(name, RRType::kA, a_records(name, 60, 1), kSecond);
    tier.insert(name, RRType::kA, a_records(name, 90, 2), 2 * kSecond);
    tier.flush();
    EXPECT_EQ(tier.size(), 1u);
  }
  SnapshotTier reopened({.path = path});
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.replay_stats().frames_replayed, 2u);
  EXPECT_EQ(reopened.replay_stats().superseded, 1u);
  SnapshotHit hit;
  ASSERT_TRUE(reopened.lookup(name, RRType::kA, 3 * kSecond, hit));
  EXPECT_EQ(hit.ttl_s, 90u);  // the later write won
  std::vector<ResourceRecord> records;
  ASSERT_TRUE(SharedPacketCache::decode_rrset(*hit.rrset, records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].rdata[3], 2);
}

TEST(SnapshotTier, CompactionShrinksLogAndSurvivesReopen) {
  const std::string path = temp_path("compact.snap");
  SnapshotConfig config;
  config.path = path;
  config.compact_min_bytes = 4096;
  SnapshotTier tier(config);
  const DnsName name = DnsName::parse("churny.snap.example");
  // Rewrite the same key until the dead-frame ratio trips the trigger.
  for (int i = 0; i < 200; ++i) {
    tier.insert(name, RRType::kA, a_records(name, 300, 0x0A000000u + i),
                kSecond + i);
  }
  EXPECT_GE(tier.compactions(), 1u);
  EXPECT_EQ(tier.size(), 1u);
  // Between automatic compactions the log re-accumulates dead frames, but
  // it never grows past the trigger floor plus one frame.
  EXPECT_LT(tier.log_bytes(), 4096u + 256u);
  // An explicit compaction rewrites the log down to the single live frame.
  tier.compact();
  EXPECT_LT(tier.log_bytes(), 256u);
  tier.flush();

  SnapshotTier reopened(config);
  EXPECT_EQ(reopened.size(), 1u);
  SnapshotHit hit;
  ASSERT_TRUE(reopened.lookup(name, RRType::kA, 2 * kSecond, hit));
  std::vector<ResourceRecord> records;
  ASSERT_TRUE(SharedPacketCache::decode_rrset(*hit.rrset, records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].rdata[3], 199);  // last rewrite survived
}

TEST(SnapshotTier, AbsoluteExpiryJudgedAtLookup) {
  const std::string path = temp_path("expiry.snap");
  const DnsName name = DnsName::parse("old.snap.example");
  {
    SnapshotTier tier({.path = path});
    tier.insert(name, RRType::kA, a_records(name, 10, 1), kSecond);
    tier.flush();
  }
  // Reopen far past expiry: replay keeps the entry (expiry is judged at
  // lookup, not replay), the lookup misses and evicts it.
  SnapshotTier tier({.path = path});
  EXPECT_EQ(tier.size(), 1u);
  SnapshotHit hit;
  EXPECT_FALSE(tier.lookup(name, RRType::kA, 30 * kSecond, hit));
  EXPECT_EQ(tier.size(), 0u);
  EXPECT_EQ(tier.tier_stats().evictions, 1u);

  // Same stamps with a stale window: an RFC 8767 stale hit instead.
  SnapshotConfig stale_config;
  stale_config.path = path;
  stale_config.max_stale = 60 * kSecond;
  SnapshotTier stale_tier(stale_config);
  // The eviction above only touched the in-memory index; the log frame is
  // still there for a fresh replay.
  ASSERT_EQ(stale_tier.size(), 1u);
  ASSERT_TRUE(stale_tier.lookup(name, RRType::kA, 30 * kSecond, hit));
  EXPECT_TRUE(hit.stale);
  EXPECT_EQ(stale_tier.tier_stats().stale_hits, 1u);
}

TEST(SnapshotTier, ForeignFileStartsFresh) {
  const std::string path = temp_path("foreign.snap");
  write_file(path, {'n', 'o', 't', ' ', 'a', ' ', 's', 'n', 'a', 'p'});
  SnapshotTier tier({.path = path});
  EXPECT_EQ(tier.size(), 0u);
  EXPECT_EQ(tier.replay_stats().torn_dropped, 1u);
  // The foreign content was replaced by a fresh log that works.
  const DnsName name = DnsName::parse("fresh.snap.example");
  tier.insert(name, RRType::kA, a_records(name, 60, 1), kSecond);
  tier.flush();
  SnapshotTier reopened({.path = path});
  EXPECT_EQ(reopened.size(), 1u);
}

TEST(SnapshotTier, EmptyPathIsInert) {
  SnapshotTier tier(SnapshotConfig{});
  const DnsName name = DnsName::parse("inert.snap.example");
  tier.insert(name, RRType::kA, a_records(name, 60, 1), kSecond);
  SnapshotHit hit;
  EXPECT_FALSE(tier.lookup(name, RRType::kA, kSecond, hit));
  EXPECT_EQ(tier.size(), 0u);
}

}  // namespace
}  // namespace doxlab::dns
