// Tests for the web model: page catalogue invariants, transfer-time model,
// browser navigation through a real proxy+resolver, FCP/PLT semantics, and
// the DNS-protocol sensitivity that drives Figs. 3/4.
#include <gtest/gtest.h>

#include "net/network.h"
#include "proxy/proxy.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"
#include "web/browser.h"
#include "web/page.h"

namespace doxlab::web {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

TEST(Pages, TenPagesSortedByQueryCount) {
  const auto& pages = tranco_top10();
  ASSERT_EQ(pages.size(), 10u);
  for (std::size_t i = 1; i < pages.size(); ++i) {
    EXPECT_LE(pages[i - 1].dns_queries(), pages[i].dns_queries())
        << pages[i - 1].name << " vs " << pages[i].name;
  }
  // The paper's anchors: wikipedia/instagram have a single DNS query,
  // microsoft/youtube are the most complex.
  EXPECT_EQ(page_by_name("wikipedia.org").dns_queries(), 1);
  EXPECT_EQ(page_by_name("instagram.com").dns_queries(), 1);
  EXPECT_GE(page_by_name("microsoft.com").dns_queries(), 8);
  EXPECT_GE(page_by_name("youtube.com").dns_queries(), 10);
}

TEST(Pages, EveryPageHasDocumentGroupAndCriticalContent) {
  for (const WebPage& page : tranco_top10()) {
    ASSERT_FALSE(page.groups.empty()) << page.name;
    EXPECT_EQ(page.groups[0].depth, 0) << page.name;
    bool any_critical = false;
    for (const auto& group : page.groups) {
      if (group.render_critical) any_critical = true;
      EXPECT_GT(group.resources, 0) << page.name;
      EXPECT_GT(group.total_bytes, 0u) << page.name;
    }
    EXPECT_TRUE(any_critical) << page.name;
    // Depth-2 groups require at least one depth-1 or the document to chain
    // from; all depths are in {0, 1, 2}.
    for (const auto& group : page.groups) {
      EXPECT_GE(group.depth, 0);
      EXPECT_LE(group.depth, 2);
    }
  }
}

TEST(Pages, UnknownPageThrows) {
  EXPECT_THROW(page_by_name("nonexistent.example"), std::invalid_argument);
}

TEST(TransferTime, ZeroBytesIsFree) {
  EXPECT_EQ(Browser::transfer_time(0, from_ms(20), 50), 0);
}

TEST(TransferTime, ScalesWithSizeAndBandwidth) {
  const SimTime rtt = from_ms(20);
  const SimTime small = Browser::transfer_time(10'000, rtt, 16);
  const SimTime big = Browser::transfer_time(1'000'000, rtt, 16);
  EXPECT_LT(small, big);
  const SimTime fast = Browser::transfer_time(1'000'000, rtt, 160);
  EXPECT_LT(fast, big);
  // 1 MB at 16 Mbit/s is at least 500 ms of serialization.
  EXPECT_GT(big, from_ms(500));
}

TEST(TransferTime, SmallObjectsAreRttBound) {
  // A 5 KB object fits the initial window: one round.
  const SimTime t = Browser::transfer_time(5'000, from_ms(50), 1000);
  EXPECT_GE(t, from_ms(50));
  EXPECT_LT(t, from_ms(110));
}

// ------------------------------------------------------- full navigation

class BrowserFixture : public ::testing::Test {
 protected:
  BrowserFixture()
      : network_(sim_, Rng(31)),
        client_host_(network_.add_host("client",
                                       IpAddress::from_octets(10, 1, 0, 1),
                                       {50.11, 8.68}, Continent::kEurope)),
        udp_(client_host_),
        tcp_(client_host_) {
    network_.set_loss_rate(0.0);
    resolver::ResolverProfile profile;
    profile.name = "resolver";
    profile.address = IpAddress::from_octets(10, 2, 0, 1);
    profile.location = {48.86, 2.35};
    profile.secret = 0xBB;
    profile.drop_probability = 0.0;
    resolver_ = std::make_unique<resolver::DoxResolver>(network_, profile,
                                                        Rng(1));
    network_.set_path_override(client_host_.address(), profile.address,
                               from_ms(15));
  }

  void start_proxy(dox::DnsProtocol protocol) {
    dox::TransportDeps deps;
    deps.sim = &sim_;
    deps.udp = &udp_;
    deps.tcp = &tcp_;
    deps.tickets = &tickets_;
    deps.doq_cache = &doq_cache_;
    proxy::ProxyConfig config;
    config.upstream_protocol = protocol;
    config.upstream = Endpoint{resolver_->profile().address,
                               dox::default_port(protocol)};
    proxy_ = std::make_unique<proxy::DnsProxy>(sim_, udp_, deps, config);
  }

  Browser::OriginRttFn flat_rtt(double ms = 20.0) {
    return [ms](const dns::DnsName&) { return from_ms(ms); };
  }

  PageLoadMetrics load(const WebPage& page, BrowserConfig config = {}) {
    config.stub_resolver = Endpoint{client_host_.address(), 53};
    Browser browser(sim_, udp_, config, flat_rtt(), Rng(7));
    PageLoadMetrics out;
    bool done = false;
    browser.navigate(page, [&](PageLoadMetrics m) {
      out = std::move(m);
      done = true;
    });
    sim_.run_until(sim_.now() + 300 * kSecond);
    EXPECT_TRUE(done);
    return out;
  }

  sim::Simulator sim_;
  net::Network network_;
  net::Host& client_host_;
  net::UdpStack udp_;
  tcp::TcpStack tcp_;
  tls::TicketStore tickets_;
  dox::DoqSessionCache doq_cache_;
  std::unique_ptr<resolver::DoxResolver> resolver_;
  std::unique_ptr<proxy::DnsProxy> proxy_;
};

TEST_F(BrowserFixture, SimplePageLoads) {
  start_proxy(dox::DnsProtocol::kDoUdp);
  auto metrics = load(page_by_name("wikipedia.org"));
  ASSERT_TRUE(metrics.success) << metrics.error;
  EXPECT_GT(metrics.fcp, 0);
  EXPECT_GE(metrics.plt, metrics.fcp);
  EXPECT_EQ(metrics.dns_queries, 1);
}

TEST_F(BrowserFixture, ComplexPageLoadsAllGroups) {
  start_proxy(dox::DnsProtocol::kDoUdp);
  auto metrics = load(page_by_name("youtube.com"));
  ASSERT_TRUE(metrics.success) << metrics.error;
  EXPECT_EQ(metrics.dns_queries, 12);
  // Depth-2 groups chain after depth-1: the PLT reflects at least three
  // sequential stages.
  EXPECT_GT(metrics.plt, from_ms(300));
}

TEST_F(BrowserFixture, FcpPrecedesPltOnComplexPages) {
  start_proxy(dox::DnsProtocol::kDoUdp);
  auto metrics = load(page_by_name("microsoft.com"));
  ASSERT_TRUE(metrics.success);
  EXPECT_LT(metrics.fcp, metrics.plt);
}

TEST_F(BrowserFixture, EncryptedDnsSlowsLoadByHandshake) {
  start_proxy(dox::DnsProtocol::kDoUdp);
  auto udp_metrics = load(page_by_name("wikipedia.org"));
  proxy_.reset();
  start_proxy(dox::DnsProtocol::kDoH);
  auto doh_metrics = load(page_by_name("wikipedia.org"));
  ASSERT_TRUE(udp_metrics.success);
  ASSERT_TRUE(doh_metrics.success);
  // DoH pays TCP+TLS handshakes (2 RTT = 60 ms at 15 ms one-way) that
  // DoUDP does not.
  EXPECT_GT(doh_metrics.plt, udp_metrics.plt + from_ms(40));
}

TEST_F(BrowserFixture, DnsFailureFailsNavigation) {
  start_proxy(dox::DnsProtocol::kDoUdp);
  network_.set_loss_override(client_host_.address(),
                             resolver_->profile().address, 1.0);
  BrowserConfig config;
  config.dns_retry_timeout = kSecond;
  config.dns_max_attempts = 1;
  config.load_timeout = 20 * kSecond;
  auto metrics = load(page_by_name("wikipedia.org"), config);
  EXPECT_FALSE(metrics.success);
  EXPECT_NE(metrics.error.cls, util::ErrorClass::kNone);
}

TEST_F(BrowserFixture, LostDnsPacketCostsFiveSeconds) {
  start_proxy(dox::DnsProtocol::kDoUdp);
  auto baseline = load(page_by_name("wikipedia.org"));
  // Break the loopback path? Loopback is lossless by design, so break the
  // upstream path for the first attempt instead.
  network_.set_loss_override(client_host_.address(),
                             resolver_->profile().address, 1.0);
  sim_.schedule(2 * kSecond, [&] {
    network_.set_loss_override(client_host_.address(),
                               resolver_->profile().address, 0.0);
  });
  auto delayed = load(page_by_name("wikipedia.org"));
  ASSERT_TRUE(baseline.success);
  ASSERT_TRUE(delayed.success);
  // Chromium's 5 s application-layer retry dominates: the page lands >4.5 s
  // later than the baseline (the paper's DoUDP outlier mechanism).
  EXPECT_GT(delayed.plt, baseline.plt + from_ms(4500));
  EXPECT_GE(delayed.dns_retransmissions, 1);
}

}  // namespace
}  // namespace doxlab::web
