// Unit tests for the DNS wire codec: names, compression, messages, EDNS0,
// cache — including the byte-size anchors the paper's Table 1 relies on.
#include <gtest/gtest.h>

#include <cstring>

#include "dns/cache.h"
#include "dns/message.h"
#include "dns/name.h"
#include "dns/types.h"

namespace doxlab::dns {
namespace {

TEST(DnsName, ParseBasics) {
  DnsName n = DnsName::parse("WWW.Google.COM");
  EXPECT_EQ(n.to_string(), "www.google.com");
  ASSERT_EQ(n.labels().size(), 3u);
  EXPECT_EQ(n.labels()[0], "www");
}

TEST(DnsName, TrailingDotAndRoot) {
  EXPECT_EQ(DnsName::parse("google.com.").to_string(), "google.com");
  EXPECT_TRUE(DnsName::parse(".").is_root());
  EXPECT_TRUE(DnsName::parse("").is_root());
  EXPECT_EQ(DnsName::root().to_string(), ".");
}

TEST(DnsName, RejectsInvalid) {
  EXPECT_THROW(DnsName::parse("a..b"), std::invalid_argument);
  EXPECT_THROW(DnsName::parse(std::string(64, 'a') + ".com"),
               std::invalid_argument);
  std::string too_long;
  for (int i = 0; i < 50; ++i) too_long += "abcdef.";
  too_long += "com";
  EXPECT_THROW(DnsName::parse(too_long), std::invalid_argument);
}

TEST(DnsName, WireLength) {
  // google.com = 1+6 + 1+3 + 1 = 12
  EXPECT_EQ(DnsName::parse("google.com").wire_length(), 12u);
  EXPECT_EQ(DnsName::root().wire_length(), 1u);
}

TEST(DnsName, SubdomainAndParent) {
  DnsName www = DnsName::parse("www.google.com");
  DnsName google = DnsName::parse("google.com");
  EXPECT_TRUE(www.is_subdomain_of(google));
  EXPECT_TRUE(google.is_subdomain_of(google));
  EXPECT_FALSE(google.is_subdomain_of(www));
  EXPECT_EQ(www.parent(), google);
}

TEST(DnsName, HasSuffixWalksLabelBoundaries) {
  const DnsName name = DnsName::parse("a.b.flood.example");
  EXPECT_TRUE(name.has_suffix(DnsName::parse("flood.example")));
  EXPECT_TRUE(name.has_suffix(DnsName::parse("b.flood.example")));
  EXPECT_TRUE(name.has_suffix(DnsName::parse("example")));
  EXPECT_TRUE(name.has_suffix(name));  // a name is its own suffix
  EXPECT_FALSE(name.has_suffix(DnsName::parse("x.flood.example")));
  // A textual suffix that is not a label suffix must not match: the "ood"
  // tail of the "flood" label is inside a label, not at a boundary.
  EXPECT_FALSE(name.has_suffix(DnsName::parse("ood.example")));
  // Longer than the name: never a suffix.
  EXPECT_FALSE(DnsName::parse("example")
                   .has_suffix(DnsName::parse("flood.example")));
}

TEST(DnsName, HasSuffixCaseInsensitiveByConstruction) {
  // Wire storage is lowercased at parse, so differently-cased spellings
  // compare equal label-for-label (RFC 1035 case-insensitive matching).
  EXPECT_TRUE(DnsName::parse("WWW.Flood.EXAMPLE")
                  .has_suffix(DnsName::parse("flood.example")));
  EXPECT_TRUE(DnsName::parse("www.flood.example")
                  .has_suffix(DnsName::parse("FLOOD.example")));
}

TEST(DnsName, HasSuffixRootEdges) {
  // The root is a suffix of every name, including itself.
  EXPECT_TRUE(DnsName::parse("a.example").has_suffix(DnsName::root()));
  EXPECT_TRUE(DnsName::root().has_suffix(DnsName::root()));
  EXPECT_FALSE(DnsName::root().has_suffix(DnsName::parse("example")));
}

TEST(DnsName, CompressionSharesSuffixes) {
  // Written names must outlive the compressor (it keys on views into
  // their label storage), so bind them to locals.
  const DnsName google = DnsName::parse("google.com");
  const DnsName www = DnsName::parse("www.google.com");
  ByteWriter w;
  NameCompressor nc;
  nc.write(w, google);
  const std::size_t first = w.size();
  EXPECT_EQ(first, 12u);
  nc.write(w, google);
  EXPECT_EQ(w.size(), first + 2);  // pure pointer
  nc.write(w, www);
  EXPECT_EQ(w.size(), first + 2 + 4 + 2);  // "www" label + pointer
}

TEST(DnsName, CompressedRoundTrip) {
  const DnsName mail = DnsName::parse("mail.google.com");
  const DnsName chat = DnsName::parse("chat.google.com");
  ByteWriter w;
  NameCompressor nc;
  nc.write(w, mail);
  nc.write(w, chat);
  ByteReader r(w.view());
  EXPECT_EQ(read_name(r)->to_string(), "mail.google.com");
  EXPECT_EQ(read_name(r)->to_string(), "chat.google.com");
  EXPECT_TRUE(r.at_end());
}

TEST(DnsName, DecodeRejectsPointerLoops) {
  // A name that points at itself: offset 0 contains a pointer to 0.
  std::vector<std::uint8_t> evil = {0xC0, 0x00};
  ByteReader r(evil);
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(DnsName, DecodeRejectsForwardPointer) {
  std::vector<std::uint8_t> evil = {0xC0, 0x04, 0x00, 0x00, 0x00};
  ByteReader r(evil);
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(DnsName, DecodeRejectsTruncation) {
  std::vector<std::uint8_t> truncated = {0x06, 'g', 'o', 'o'};
  ByteReader r(truncated);
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(Message, QueryEncodesToPaperAnchorSize) {
  // dnsperf-style query: A google.com, EDNS0 + 8-byte COOKIE.
  // Header 12 + question 16 + OPT 23 = 51 bytes; +8 UDP header = the 59-byte
  // DoUDP query IP payload in Table 1 of the paper.
  Message q = make_query(0x1234, DnsName::parse("google.com"), RRType::kA);
  EXPECT_EQ(q.encode().size(), 51u);
}

TEST(Message, CachedResponseEncodesToPaperAnchorSize) {
  // Response: header 12 + question 16 + compressed A answer 16 + OPT 11 =
  // 55 bytes; +8 UDP header = the 63-byte DoUDP response in Table 1.
  Message q = make_query(0x1234, DnsName::parse("google.com"), RRType::kA);
  Message r = make_response(q);
  r.answers.push_back(
      make_a(DnsName::parse("google.com"), 300, 0x8EFA'B00Eu));
  EXPECT_EQ(r.encode().size(), 55u);
}

TEST(Message, PooledEncodeMatchesVectorEncodeByteForByte) {
  // The zero-copy path must not change a single wire byte: Table 1 and the
  // fig2/fig3/fig4 CSVs are pinned to these exact encodings (59/63-byte
  // DoUDP query/response IP payloads with the 8-byte UDP header).
  Message q = make_query(0x1234, DnsName::parse("google.com"), RRType::kA);
  Message r = make_response(q);
  r.answers.push_back(make_a(DnsName::parse("google.com"), 300, 0x08080404));

  for (const Message* m : {&q, &r}) {
    const std::vector<std::uint8_t> vec = m->encode();
    const util::Buffer plain = m->encode_buffer();
    const util::Buffer roomy = m->encode_buffer(/*headroom=*/14);
    ASSERT_EQ(plain.size(), vec.size());
    EXPECT_EQ(std::memcmp(plain.data(), vec.data(), vec.size()), 0);
    ASSERT_EQ(roomy.size(), vec.size());
    EXPECT_EQ(std::memcmp(roomy.data(), vec.data(), vec.size()), 0);
    EXPECT_GE(roomy.headroom(), 14u);
  }
  EXPECT_EQ(q.encode_buffer().size(), 51u);  // + 8-byte UDP header = 59
  EXPECT_EQ(r.encode_buffer().size(), 55u);  // + 8-byte UDP header = 63
}

TEST(Message, DecodeIntoMatchesDecodeAndReusesScratch) {
  Message q = make_query(0x4321, DnsName::parse("example.org"), RRType::kAAAA);
  Message r = make_response(q);
  r.answers.push_back(make_a(DnsName::parse("example.org"), 60, 0x01020304));

  Message scratch;
  // Decode the (larger) response first, then the query into the same
  // scratch: stale answers/additionals must be fully overwritten.
  const std::vector<std::uint8_t> response_wire = r.encode();
  ASSERT_TRUE(Message::decode_into(response_wire, scratch));
  EXPECT_EQ(scratch.encode(), response_wire);

  const std::vector<std::uint8_t> query_wire = q.encode();
  ASSERT_TRUE(Message::decode_into(query_wire, scratch));
  auto fresh = Message::decode(query_wire);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(scratch.encode(), fresh->encode());
  EXPECT_TRUE(scratch.answers.empty());
}

TEST(Message, RoundTripPreservesEverything) {
  Message m = make_query(7, DnsName::parse("example.org"), RRType::kAAAA);
  m.answers.push_back(make_a(DnsName::parse("example.org"), 60, 0x01020304));
  m.answers.push_back(
      make_cname(DnsName::parse("alias.example.org"), 120,
                 DnsName::parse("example.org")));
  m.authorities.push_back(
      make_txt(DnsName::parse("example.org"), 30, "hello world"));
  m.qr = true;
  m.ra = true;
  m.rcode = RCode::kNoError;

  auto wire = m.encode();
  auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
}

TEST(Message, DecodeRejectsTruncatedHeader) {
  std::vector<std::uint8_t> short_msg = {0x00, 0x01, 0x00};
  EXPECT_FALSE(Message::decode(short_msg).has_value());
}

TEST(Message, DecodeRejectsTruncatedRecord) {
  Message m = make_query(7, DnsName::parse("example.org"), RRType::kA);
  auto wire = m.encode();
  wire.resize(wire.size() - 5);
  EXPECT_FALSE(Message::decode(wire).has_value());
}

TEST(Message, FlagsRoundTrip) {
  Message m;
  m.id = 0xFFFF;
  m.qr = true;
  m.aa = true;
  m.tc = true;
  m.rd = false;
  m.ra = true;
  m.ad = true;
  m.cd = true;
  m.rcode = RCode::kNXDomain;
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
}

TEST(Message, TypedRdataAccessors) {
  auto a = make_a(DnsName::parse("x.com"), 1, 0x7F000001);
  EXPECT_EQ(rdata_as_a(a), 0x7F000001u);
  EXPECT_FALSE(rdata_as_name(a).has_value());

  auto cname = make_cname(DnsName::parse("x.com"), 1, DnsName::parse("y.com"));
  EXPECT_EQ(rdata_as_name(cname)->to_string(), "y.com");
  EXPECT_FALSE(rdata_as_a(cname).has_value());
}

TEST(Message, OptCarriesUdpSizeAndOptions) {
  Message q = make_query(1, DnsName::parse("a.com"), RRType::kA,
                         /*udp_payload_size=*/4096, /*with_cookie=*/true);
  const ResourceRecord* opt = q.opt();
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->klass_or_udpsize, 4096);
  auto options = rdata_as_options(*opt);
  ASSERT_TRUE(options.has_value());
  ASSERT_EQ(options->size(), 1u);
  EXPECT_EQ(options->front().code, kEdnsCookieOption);
  EXPECT_EQ(options->front().value.size(), 8u);
}

TEST(Message, ResponseEchoesIdAndQuestion) {
  Message q = make_query(42, DnsName::parse("google.com"), RRType::kA);
  Message r = make_response(q, RCode::kNXDomain);
  EXPECT_EQ(r.id, 42);
  EXPECT_TRUE(r.qr);
  EXPECT_TRUE(r.ra);
  EXPECT_EQ(r.rcode, RCode::kNXDomain);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.questions[0].name.to_string(), "google.com");
}

TEST(Message, CnameRdataDecompressesAgainstMessage) {
  // Hand-build a message where CNAME RDATA uses a compression pointer into
  // the question name, and check the decoder resolves it.
  Message m = make_query(9, DnsName::parse("target.net"), RRType::kCNAME);
  m.qr = true;
  m.answers.push_back(make_cname(DnsName::parse("alias.net"), 60,
                                 DnsName::parse("target.net")));
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(rdata_as_name(decoded->answers[0])->to_string(), "target.net");
}

class PaddingBlocks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaddingBlocks, PadsToBlockMultiple) {
  const std::size_t block = GetParam();
  Message q = make_query(1, DnsName::parse("google.com"), RRType::kA);
  pad_to_block(q, block);
  EXPECT_EQ(q.encode().size() % block, 0u);
  // The padding option must be parseable.
  auto options = rdata_as_options(*q.opt());
  ASSERT_TRUE(options.has_value());
  bool has_padding = false;
  for (const auto& option : *options) {
    if (option.code == kEdnsPaddingOption) has_padding = true;
  }
  EXPECT_TRUE(has_padding);
  // And the padded message still decodes.
  EXPECT_TRUE(Message::decode(q.encode()).has_value());
}

INSTANTIATE_TEST_SUITE_P(Rfc8467, PaddingBlocks,
                         ::testing::Values(std::size_t(128), std::size_t(256),
                                           std::size_t(468)));

TEST(Padding, AlreadyAlignedIsNoop) {
  Message q = make_query(1, DnsName::parse("google.com"), RRType::kA);
  pad_to_block(q, 128);
  const auto once = q.encode();
  pad_to_block(q, 128);
  EXPECT_EQ(q.encode().size(), once.size());
}

TEST(Padding, AddsOptWhenMissing) {
  Message m;
  m.id = 1;
  m.questions.push_back(Question{DnsName::parse("a.com"), RRType::kA,
                                 RRClass::kIN});
  pad_to_block(m, 128);
  EXPECT_NE(m.opt(), nullptr);
  EXPECT_EQ(m.encode().size() % 128, 0u);
}

TEST(Truncation, AdvertisedSizeDefaultsTo512) {
  Message no_opt;
  no_opt.questions.push_back(Question{DnsName::parse("a.com"), RRType::kA,
                                      RRClass::kIN});
  EXPECT_EQ(advertised_udp_size(no_opt), 512);
  Message with_opt = make_query(1, DnsName::parse("a.com"), RRType::kA,
                                /*udp_payload_size=*/4096);
  EXPECT_EQ(advertised_udp_size(with_opt), 4096);
}

TEST(Truncation, SetsTcAndDropsAnswers) {
  Message q = make_query(1, DnsName::parse("big.example"), RRType::kTXT);
  Message r = make_response(q);
  r.answers.push_back(
      make_txt(DnsName::parse("big.example"), 300, std::string(2000, 'x')));
  EXPECT_TRUE(truncate_for_udp(r, 1232));
  EXPECT_TRUE(r.tc);
  EXPECT_TRUE(r.answers.empty());
  EXPECT_LE(r.encode().size(), 1232u);
}

TEST(Truncation, SmallResponseUntouched) {
  Message q = make_query(1, DnsName::parse("a.com"), RRType::kA);
  Message r = make_response(q);
  r.answers.push_back(make_a(DnsName::parse("a.com"), 300, 1));
  EXPECT_FALSE(truncate_for_udp(r, 1232));
  EXPECT_FALSE(r.tc);
  EXPECT_EQ(r.answers.size(), 1u);
}

TEST(Cache, HitWithinTtl) {
  Cache cache;
  DnsName name = DnsName::parse("google.com");
  cache.insert(name, RRType::kA, {make_a(name, 300, 1)}, /*now=*/0);
  auto hit = cache.lookup(name, RRType::kA, 100 * kSecond);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].ttl, 200u);  // decayed
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, ExpiryAtTtlBoundary) {
  Cache cache;
  DnsName name = DnsName::parse("google.com");
  cache.insert(name, RRType::kA, {make_a(name, 300, 1)}, 0);
  EXPECT_TRUE(cache.lookup(name, RRType::kA, 299 * kSecond).has_value());
  EXPECT_FALSE(cache.lookup(name, RRType::kA, 300 * kSecond).has_value());
}

TEST(Cache, LookupRefBorrowsRecordsWithoutTtlDecay) {
  // The allocation-free engine path: EntryRef points at the cached records
  // (original TTLs); the caller applies `age_s` itself.
  Cache cache;
  DnsName name = DnsName::parse("ref.example");
  cache.insert(name, RRType::kA, {make_a(name, 300, 7)}, 0);

  auto ref = cache.lookup_ref(name, RRType::kA, 100 * kSecond);
  ASSERT_TRUE(ref.has_value());
  EXPECT_FALSE(ref->stale);
  EXPECT_EQ(ref->age_s, 100u);
  ASSERT_EQ(ref->records->size(), 1u);
  EXPECT_EQ((*ref->records)[0].ttl, 300u);  // undecayed — borrowed storage

  // Expired + within max_stale: the stale ref leaves TTL clamping to the
  // caller as well.
  auto stale = cache.lookup_stale_ref(name, RRType::kA, 301 * kSecond,
                                      /*max_stale=*/10 * kSecond);
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->stale);
  auto gone = cache.lookup_stale_ref(name, RRType::kA, 312 * kSecond,
                                     /*max_stale=*/10 * kSecond);
  EXPECT_FALSE(gone.has_value());
}

TEST(Cache, TypeAndNameAreKeyed) {
  Cache cache;
  DnsName name = DnsName::parse("google.com");
  cache.insert(name, RRType::kA, {make_a(name, 300, 1)}, 0);
  EXPECT_FALSE(cache.lookup(name, RRType::kAAAA, 0).has_value());
  EXPECT_FALSE(
      cache.lookup(DnsName::parse("g00gle.com"), RRType::kA, 0).has_value());
}

TEST(Cache, NegativeEntriesExpireAfter60s) {
  Cache cache;
  DnsName name = DnsName::parse("nxdomain.example");
  cache.insert(name, RRType::kA, {}, 0);
  auto hit = cache.lookup(name, RRType::kA, 59 * kSecond);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->empty());
  EXPECT_FALSE(cache.lookup(name, RRType::kA, 61 * kSecond).has_value());
}

TEST(Cache, EvictExpired) {
  Cache cache;
  cache.insert(DnsName::parse("a.com"), RRType::kA,
               {make_a(DnsName::parse("a.com"), 10, 1)}, 0);
  cache.insert(DnsName::parse("b.com"), RRType::kA,
               {make_a(DnsName::parse("b.com"), 1000, 1)}, 0);
  EXPECT_EQ(cache.evict_expired(500 * kSecond), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, InsertReplaces) {
  Cache cache;
  DnsName name = DnsName::parse("a.com");
  cache.insert(name, RRType::kA, {make_a(name, 10, 1)}, 0);
  cache.insert(name, RRType::kA, {make_a(name, 999, 2)}, 0);
  auto hit = cache.lookup(name, RRType::kA, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(rdata_as_a((*hit)[0]), 2u);
}

TEST(Cache, TtlDecrementsToOneJustBeforeExpiry) {
  Cache cache;
  DnsName name = DnsName::parse("edge.com");
  cache.insert(name, RRType::kA, {make_a(name, 300, 1)}, 0);
  auto hit = cache.lookup(name, RRType::kA, 299 * kSecond);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].ttl, 1u);  // one second of life left
  // One microsecond short of the boundary still answers.
  EXPECT_TRUE(
      cache.lookup(name, RRType::kA, 300 * kSecond - 1).has_value());
  // The boundary itself is a miss.
  EXPECT_FALSE(cache.lookup(name, RRType::kA, 300 * kSecond).has_value());
}

TEST(Cache, NegativeEntryExpiresExactlyAtNegativeTtlBoundary) {
  Cache cache;
  DnsName name = DnsName::parse("nxdomain.example");
  cache.insert(name, RRType::kA, {}, 0);
  EXPECT_TRUE(cache.lookup(name, RRType::kA, 60 * kSecond - 1).has_value());
  EXPECT_FALSE(cache.lookup(name, RRType::kA, 60 * kSecond).has_value());
}

TEST(Cache, EvictExpiredReturnsZeroWhenNothingExpired) {
  Cache cache;
  DnsName name = DnsName::parse("a.com");
  cache.insert(name, RRType::kA, {make_a(name, 100, 1)}, 0);
  EXPECT_EQ(cache.evict_expired(50 * kSecond), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, EvictExpiredDropsNegativeEntriesToo) {
  Cache cache;
  cache.insert(DnsName::parse("neg.example"), RRType::kA, {}, 0);
  EXPECT_EQ(cache.evict_expired(61 * kSecond), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, UnboundedByDefaultNeverEvicts) {
  Cache cache;
  for (int i = 0; i < 100; ++i) {
    DnsName name = DnsName::parse("n" + std::to_string(i) + ".example");
    cache.insert(name, RRType::kA, {make_a(name, 300, 1)}, 0);
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(Cache, CapacityBoundEvictsLeastRecentlyUsed) {
  Cache cache;
  cache.set_capacity(2);
  DnsName a = DnsName::parse("a.com");
  DnsName b = DnsName::parse("b.com");
  DnsName c = DnsName::parse("c.com");
  cache.insert(a, RRType::kA, {make_a(a, 300, 1)}, 0);
  cache.insert(b, RRType::kA, {make_a(b, 300, 2)}, 0);
  // Touch a so b becomes least recently used.
  EXPECT_TRUE(cache.lookup(a, RRType::kA, 0).has_value());
  cache.insert(c, RRType::kA, {make_a(c, 300, 3)}, 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup(a, RRType::kA, 0).has_value());
  EXPECT_FALSE(cache.lookup(b, RRType::kA, 0).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(c, RRType::kA, 0).has_value());
}

TEST(Cache, ShrinkingCapacityEvictsDownToBound) {
  Cache cache;
  for (int i = 0; i < 10; ++i) {
    DnsName name = DnsName::parse("n" + std::to_string(i) + ".example");
    cache.insert(name, RRType::kA, {make_a(name, 300, 1)}, 0);
  }
  cache.set_capacity(3);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 7u);
  // The three most recently inserted names survive.
  for (int i = 7; i < 10; ++i) {
    EXPECT_TRUE(cache
                    .lookup(DnsName::parse("n" + std::to_string(i) +
                                           ".example"),
                            RRType::kA, 0)
                    .has_value());
  }
}

TEST(Cache, ReplacingInsertDoesNotGrowLruState) {
  Cache cache;
  cache.set_capacity(2);
  DnsName a = DnsName::parse("a.com");
  for (int i = 0; i < 5; ++i) {
    cache.insert(a, RRType::kA, {make_a(a, 300, i)}, 0);
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(Cache, StaleLookupServesExpiredEntryWithClampedTtl) {
  Cache cache;
  DnsName name = DnsName::parse("stale.com");
  cache.insert(name, RRType::kA, {make_a(name, 10, 1)}, 0);
  // Fresh: decayed TTL, not stale.
  auto fresh = cache.lookup_stale(name, RRType::kA, 4 * kSecond,
                                  /*max_stale=*/kMinute, /*stale_ttl=*/30);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->stale);
  EXPECT_EQ(fresh->records[0].ttl, 6u);
  // Expired but within the stale window: clamped TTL, stale flag set.
  auto stale = cache.lookup_stale(name, RRType::kA, 30 * kSecond, kMinute,
                                  30);
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->stale);
  EXPECT_EQ(stale->records[0].ttl, 30u);
  // Beyond the stale window: gone.
  EXPECT_FALSE(cache
                   .lookup_stale(name, RRType::kA, 10 * kSecond + kMinute,
                                 kMinute, 30)
                   .has_value());
}

}  // namespace
}  // namespace doxlab::dns
