// Cross-tier semantics tests for the unified cache hierarchy
// (dns/cache_tier.h): every tier — L1 Cache, shared L2 packet cache,
// raw-wire cache, persistent snapshot tier — must age an entry against the
// same absolute clock, so the same RRset inserted everywhere at t0 reports
// the same remaining TTL from any tier at any later instant. Plus the
// shared helper edge cases (expiry boundary, stale window) and the TierStats
// surface each tier exposes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dns/cache.h"
#include "dns/cache_tier.h"
#include "dns/message.h"
#include "dns/packet_cache.h"
#include "dns/snapshot_tier.h"
#include "dns/wire_cache.h"

namespace doxlab::dns {
namespace {

std::vector<ResourceRecord> a_records(const DnsName& name,
                                      std::uint32_t ttl) {
  return {make_a(name, ttl, 0x0A000001)};
}

std::string temp_path(const std::string& file) {
  return ::testing::TempDir() + file;
}

// The concept is the refactor's contract: every tier satisfies it.
static_assert(CacheTier<Cache>);
static_assert(CacheTier<SharedPacketCache>);
static_assert(CacheTier<WireCache>);
static_assert(CacheTier<SnapshotTier>);

TEST(CacheTierHelpers, ExpiryBoundary) {
  const SimTime t0 = 5 * kSecond;
  const std::uint32_t ttl = 30;
  const SimTime expiry = tier_expiry(t0, ttl);
  EXPECT_EQ(expiry, t0 + 30 * kSecond);
  EXPECT_TRUE(tier_fresh(t0, ttl, expiry - 1));
  EXPECT_FALSE(tier_fresh(t0, ttl, expiry));  // expiry instant is expired
  // Stale window: [expiry, expiry + max_stale).
  EXPECT_FALSE(tier_stale_within(t0, ttl, expiry - 1, kSecond));  // fresh
  EXPECT_TRUE(tier_stale_within(t0, ttl, expiry, kSecond));
  EXPECT_TRUE(tier_stale_within(t0, ttl, expiry + kSecond - 1, kSecond));
  EXPECT_FALSE(tier_stale_within(t0, ttl, expiry + kSecond, kSecond));
}

TEST(CacheTierHelpers, AgeAndDecayClamp) {
  const SimTime t0 = 10 * kSecond;
  EXPECT_EQ(tier_age_s(t0, t0), 0u);
  EXPECT_EQ(tier_age_s(t0, t0 - kSecond), 0u);  // clock before insert: 0
  EXPECT_EQ(tier_age_s(t0, t0 + 2 * kSecond + kSecond / 2), 2u);
  EXPECT_EQ(tier_decay_ttl(120, 45), 75u);
  EXPECT_EQ(tier_decay_ttl(120, 120), 0u);
  EXPECT_EQ(tier_decay_ttl(120, 500), 0u);  // clamped, never wraps
}

/// The tentpole invariant: one RRset (TTL 120) inserted into all four
/// tiers at t0 must report exactly 75 seconds remaining at t0 + 45 s from
/// every tier.
TEST(CacheTierCross, SameRemainingTtlFromEveryTier) {
  const DnsName name = DnsName::parse("xtier.example.com");
  const std::uint32_t ttl = 120;
  const SimTime t0 = kSecond;
  const SimTime later = t0 + 45 * kSecond;
  const std::uint32_t remaining = 75;
  const auto records = a_records(name, ttl);

  // L1.
  Cache l1;
  l1.insert(name, RRType::kA, records, t0);
  const auto l1_hit = l1.lookup(name, RRType::kA, later);
  ASSERT_TRUE(l1_hit.has_value());
  ASSERT_EQ(l1_hit->size(), 1u);
  EXPECT_EQ((*l1_hit)[0].ttl, remaining);

  // Shared L2 (insert is deferred; merge at a barrier sweep).
  SharedPacketCache l2(64, 1);
  l2.insert(0, name, RRType::kA, records, t0);
  l2.sweep(t0);
  PacketCacheHit l2_hit;
  ASSERT_TRUE(l2.lookup(0, name, RRType::kA, later, l2_hit));
  EXPECT_FALSE(l2_hit.stale);
  EXPECT_EQ(l2_hit.ttl_s - l2_hit.age_s, remaining);

  // Raw-wire cache: materialized answers carry the decayed TTL in-band.
  WireCache wire({});
  const Message query = make_query(0x42, name, RRType::kA);
  Message response = make_response(query);
  response.answers = records;
  ASSERT_TRUE(wire.insert(query.encode(), response.encode(), t0));
  WireCache::Hit wire_hit;
  const Message probe_query = make_query(0x43, name, RRType::kA);
  const auto probe_wire = probe_query.encode();
  ASSERT_TRUE(wire.probe(probe_wire, later, wire_hit));
  EXPECT_FALSE(wire_hit.stale);
  const util::Buffer patched = wire.materialize(wire_hit, probe_wire);
  const auto materialized = Message::decode(patched);
  ASSERT_TRUE(materialized.has_value());
  ASSERT_EQ(materialized->answers.size(), 1u);
  EXPECT_EQ(materialized->answers[0].ttl, remaining);

  // Snapshot tier (persisted absolute stamps).
  SnapshotConfig snap_config;
  snap_config.path = temp_path("xtier.snap");
  std::remove(snap_config.path.c_str());
  SnapshotTier snapshot(snap_config);
  snapshot.insert(name, RRType::kA, records, t0);
  SnapshotHit snap_hit;
  ASSERT_TRUE(snapshot.lookup(name, RRType::kA, later, snap_hit));
  EXPECT_FALSE(snap_hit.stale);
  EXPECT_EQ(snap_hit.ttl_s - snap_hit.age_s, remaining);

  // And the persisted copy survives a restart with the same arithmetic.
  snapshot.flush();
  SnapshotTier reopened(snap_config);
  SnapshotHit reopened_hit;
  ASSERT_TRUE(reopened.lookup(name, RRType::kA, later, reopened_hit));
  EXPECT_EQ(reopened_hit.ttl_s - reopened_hit.age_s, remaining);
}

/// All tiers agree the entry is dead at the same instant too.
TEST(CacheTierCross, SameExpiryInstantEverywhere) {
  const DnsName name = DnsName::parse("expire.example.com");
  const std::uint32_t ttl = 10;
  const SimTime t0 = 2 * kSecond;
  const SimTime expiry = tier_expiry(t0, ttl);
  const auto records = a_records(name, ttl);

  Cache l1;
  l1.insert(name, RRType::kA, records, t0);
  SharedPacketCache l2(64, 1);
  l2.insert(0, name, RRType::kA, records, t0);
  l2.sweep(t0);
  SnapshotConfig snap_config;
  snap_config.path = temp_path("expiry.snap");
  std::remove(snap_config.path.c_str());
  SnapshotTier snapshot(snap_config);
  snapshot.insert(name, RRType::kA, records, t0);

  EXPECT_TRUE(l1.lookup(name, RRType::kA, expiry - 1).has_value());
  EXPECT_FALSE(l1.lookup(name, RRType::kA, expiry).has_value());
  PacketCacheHit l2_hit;
  EXPECT_TRUE(l2.lookup(0, name, RRType::kA, expiry - 1, l2_hit));
  EXPECT_FALSE(l2.lookup(0, name, RRType::kA, expiry, l2_hit));
  SnapshotHit snap_hit;
  EXPECT_TRUE(snapshot.lookup(name, RRType::kA, expiry - 1, snap_hit));
  EXPECT_FALSE(snapshot.lookup(name, RRType::kA, expiry, snap_hit));
}

TEST(CacheTierL2, StaleLookupAndRetention) {
  const DnsName name = DnsName::parse("stale.example.com");
  const SimTime t0 = kSecond;
  SharedPacketCache l2(64, 1);
  l2.insert(0, name, RRType::kA, a_records(name, 1), t0);
  l2.sweep(t0);

  const SimTime expired_at = tier_expiry(t0, 1);
  PacketCacheHit hit;
  // Default lookup: expired is a miss.
  EXPECT_FALSE(l2.lookup(0, name, RRType::kA, expired_at + kSecond, hit));
  // Stale-window lookup serves it and marks it stale.
  ASSERT_TRUE(l2.lookup(0, name, RRType::kA, expired_at + kSecond, hit,
                        /*max_stale=*/10 * kSecond));
  EXPECT_TRUE(hit.stale);
  EXPECT_EQ(hit.ttl_s, 1u);
  EXPECT_GE(l2.stats().stale_hits, 1u);

  // Without retention a barrier sweep reaps the expired entry...
  SharedPacketCache reaping(64, 1);
  reaping.insert(0, name, RRType::kA, a_records(name, 1), t0);
  reaping.sweep(t0);
  reaping.sweep(expired_at + kSecond);
  EXPECT_EQ(reaping.size(), 0u);
  // ...with retention it survives sweeps for the whole stale window.
  SharedPacketCache retaining(64, 1);
  retaining.set_stale_retention(10 * kSecond);
  retaining.insert(0, name, RRType::kA, a_records(name, 1), t0);
  retaining.sweep(t0);
  retaining.sweep(expired_at + kSecond);
  EXPECT_EQ(retaining.size(), 1u);
  retaining.sweep(expired_at + 11 * kSecond);
  EXPECT_EQ(retaining.size(), 0u);
}

TEST(CacheTierStats, CountersAreCoherent) {
  const DnsName name = DnsName::parse("stats.example.com");
  const SimTime t0 = kSecond;

  Cache l1;
  l1.insert(name, RRType::kA, a_records(name, 60), t0);
  (void)l1.lookup(name, RRType::kA, t0 + kSecond);                  // hit
  (void)l1.lookup(DnsName::parse("absent.example"), RRType::kA, t0);  // miss
  const TierStats l1_stats = l1.tier_stats();
  EXPECT_EQ(l1_stats.inserts, 1u);
  EXPECT_EQ(l1_stats.hits, 1u);
  EXPECT_EQ(l1_stats.lookups, 2u);
  EXPECT_EQ(l1_stats.entries, 1u);
  EXPECT_GT(l1_stats.bytes, 0u);

  SharedPacketCache l2(64, 1);
  l2.insert(0, name, RRType::kA, a_records(name, 60), t0);
  l2.sweep(t0);
  PacketCacheHit hit;
  (void)l2.lookup(0, name, RRType::kA, t0 + kSecond, hit);
  const TierStats l2_stats = l2.tier_stats();
  EXPECT_EQ(l2_stats.inserts, 1u);
  EXPECT_EQ(l2_stats.hits, 1u);
  EXPECT_EQ(l2_stats.entries, 1u);
  EXPECT_GT(l2_stats.bytes, 0u);

  SnapshotConfig snap_config;
  snap_config.path = temp_path("stats.snap");
  std::remove(snap_config.path.c_str());
  SnapshotTier snapshot(snap_config);
  snapshot.insert(name, RRType::kA, a_records(name, 60), t0);
  SnapshotHit snap_hit;
  (void)snapshot.lookup(name, RRType::kA, t0 + kSecond, snap_hit);
  const TierStats snap_stats = snapshot.tier_stats();
  EXPECT_EQ(snap_stats.inserts, 1u);
  EXPECT_EQ(snap_stats.hits, 1u);
  EXPECT_EQ(snap_stats.lookups, 1u);
  EXPECT_EQ(snap_stats.entries, 1u);
  EXPECT_GT(snap_stats.bytes, 0u);
}

}  // namespace
}  // namespace doxlab::dns
