// End-to-end tests for the tiered cache hierarchy inside the forwarder
// engine: warm-starting a fresh engine from the snapshot tier across a
// restart, the stale-L2 / stale-snapshot serve paths (stale answer, exactly
// one upstream refresh, re-promotion into L1), administrative
// withdraw/announce through the upstream pool, and the churn-campaign
// runner's bucket accounting.
//
// Engine worlds are built as a self-contained `World` value (not a gtest
// fixture) so a restart test can tear the whole first world down — engine,
// transports, and simulator together, the only safe order — before the
// second world reopens the same snapshot directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/churn.h"
#include "engine/engine.h"
#include "engine/load_gen.h"
#include "net/network.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"

namespace doxlab::engine {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// One engine world, destroyed as a unit (members in reverse declaration
/// order: engine first, simulator last — no timer can outlive its target).
struct World {
  sim::Simulator sim;
  net::Network network{sim, Rng(33)};
  net::Host& client_host;
  net::UdpStack udp;
  tcp::TcpStack tcp;
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;
  std::vector<std::unique_ptr<resolver::DoxResolver>> resolvers;
  std::unique_ptr<ForwarderEngine> engine;

  World()
      : client_host(network.add_host("client",
                                     IpAddress::from_octets(10, 1, 0, 1),
                                     {50.11, 8.68}, Continent::kEurope)),
        udp(client_host),
        tcp(client_host) {
    network.set_loss_rate(0.0);
    add_resolver(/*index=*/0, /*one_way=*/from_ms(10));
    add_resolver(/*index=*/1, /*one_way=*/from_ms(30));
  }

  void add_resolver(std::size_t index, SimTime one_way) {
    resolver::ResolverProfile profile;
    profile.name = "upstream-" + std::to_string(index);
    profile.address = IpAddress::from_octets(
        10, 2, 0, static_cast<std::uint8_t>(index + 1));
    profile.location = {48.86, 2.35};
    profile.secret = 0xAA + index;
    profile.drop_probability = 0.0;
    resolvers.push_back(std::make_unique<resolver::DoxResolver>(
        network, profile, Rng(index + 1)));
    network.set_path_override(client_host.address(), profile.address,
                              one_way);
  }

  EngineConfig engine_config() {
    EngineConfig config;
    config.pool.attempt_timeout = kSecond;
    config.pool.quarantine = 5 * kSecond;
    return config;
  }

  void start_engine(EngineConfig config) {
    dox::TransportDeps deps;
    deps.sim = &sim;
    deps.udp = &udp;
    deps.tcp = &tcp;
    deps.tickets = &tickets;
    deps.doq_cache = &doq_cache;
    std::vector<UpstreamConfig> configs;
    for (const auto& resolver : resolvers) {
      UpstreamConfig upstream;
      upstream.name = resolver->profile().name;
      upstream.address = resolver->profile().address;
      upstream.protocols = {dox::DnsProtocol::kDoQ, dox::DnsProtocol::kDoT,
                            dox::DnsProtocol::kDoUdp};
      configs.push_back(std::move(upstream));
    }
    engine = std::make_unique<ForwarderEngine>(sim, udp, deps,
                                               std::move(configs), config);
  }

  std::optional<dns::Message> stub_query(const std::string& name,
                                         std::uint16_t id = 0x77,
                                         SimTime wait = 30 * kSecond) {
    auto socket = udp.bind_ephemeral();
    std::optional<dns::Message> response;
    socket->on_datagram([&](const Endpoint&, util::Buffer payload) {
      response = dns::Message::decode(payload);
    });
    dns::Message query =
        dns::make_query(id, dns::DnsName::parse(name), dns::RRType::kA);
    socket->send_to(Endpoint{client_host.address(), 53}, query.encode());
    sim.run_until(sim.now() + wait);
    return response;
  }
};

/// Restart protocol: world A resolves through an engine that persists to a
/// snapshot directory and is torn down whole; world B fast-forwards its
/// clock, warm-starts a fresh engine from the same directory, and answers
/// the repeat query from L1 with the TTL still decaying against the
/// original insertion instant — zero upstream resolves.
TEST(TieredEngine, WarmStartFromSnapshotAcrossRestart) {
  const std::string dir = temp_dir("warm_restart_snapdir");
  {
    World a;
    EngineConfig config = a.engine_config();
    config.snapshot_dir = dir;
    a.start_engine(config);
    const auto response = a.stub_query("warm.example.com");
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->answers.size(), 1u);
    EXPECT_EQ(response->answers[0].ttl, 300u);
    EXPECT_EQ(a.engine->stats().upstream_resolves, 1u);
    EXPECT_EQ(a.engine->stats().snapshot_entries, 1u);
  }

  World b;
  b.sim.run_until(20 * kSecond);  // the process was down for ~20 s
  EngineConfig config = b.engine_config();
  config.snapshot_dir = dir;
  b.start_engine(config);
  EXPECT_EQ(b.engine->stats().snapshot_warm_loaded, 1u);

  const auto response = b.stub_query("warm.example.com", 0x78);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->answers.size(), 1u);
  // Answered from the warm-started L1 without touching an upstream...
  EXPECT_EQ(b.engine->stats().cache_hits, 1u);
  EXPECT_EQ(b.engine->stats().upstream_resolves, 0u);
  // ...with the TTL aged against world A's insertion stamp (~20 s gone).
  EXPECT_GE(response->answers[0].ttl, 270u);
  EXPECT_LE(response->answers[0].ttl, 281u);
}

TEST(TieredEngine, StaleL2HitServesOnceRefreshesOnceRepromotes) {
  World world;
  dns::SharedPacketCache l2(64, 1);
  l2.set_stale_retention(10 * kMinute);
  EngineConfig config = world.engine_config();
  config.l2 = &l2;
  config.l2_serve_stale = true;
  world.start_engine(config);

  // Seed the shared L2 with a 1 s answer whose rdata differs from the
  // authoritative one, then let it expire into the stale window.
  const dns::DnsName name = dns::DnsName::parse("stale-l2.example.com");
  l2.insert(0, name, dns::RRType::kA,
            std::vector<dns::ResourceRecord>{make_a(name, 1, 0x7F000001)},
            world.sim.now());
  l2.sweep(world.sim.now());
  world.sim.run_until(world.sim.now() + 5 * kSecond);

  const auto stale = world.stub_query("stale-l2.example.com");
  ASSERT_TRUE(stale.has_value());
  ASSERT_EQ(stale->answers.size(), 1u);
  // The immediate answer is the seeded stale rdata with the stale TTL
  // stamped — the refresh has not been waited on.
  EXPECT_EQ(dns::rdata_as_a(stale->answers[0]), 0x7F000001u);
  EXPECT_EQ(stale->answers[0].ttl, config.stale_ttl);
  const EngineStats after_stale = world.engine->stats();
  EXPECT_EQ(after_stale.l2_hits, 1u);
  EXPECT_EQ(after_stale.stale_hits, 1u);
  EXPECT_EQ(after_stale.stale_refreshes, 1u);
  // Exactly one upstream refresh was owed for the stale answer.
  EXPECT_EQ(after_stale.upstream_resolves, 1u);

  // The refresh re-promoted the authoritative answer into the L1: the next
  // query is a fresh cache hit with no new resolve.
  const auto fresh = world.stub_query("stale-l2.example.com", 0x78);
  ASSERT_TRUE(fresh.has_value());
  ASSERT_EQ(fresh->answers.size(), 1u);
  EXPECT_EQ(dns::rdata_as_a(fresh->answers[0]),
            resolver::authoritative_ipv4(name));
  const EngineStats after_fresh = world.engine->stats();
  EXPECT_EQ(after_fresh.cache_hits, 1u);
  EXPECT_EQ(after_fresh.upstream_resolves, 1u);
  EXPECT_EQ(after_fresh.stale_refreshes, 1u);
}

TEST(TieredEngine, StaleSnapshotHitServesOnceRefreshesOnce) {
  const std::string dir = temp_dir("stale_snap_snapdir");
  const dns::DnsName name = dns::DnsName::parse("stale-snap.example.com");
  {
    // Pre-populate the snapshot log with an answer that will be expired
    // (but inside the stale window) by the time the engine starts.
    std::filesystem::create_directories(dir);
    dns::SnapshotTier tier({.path = dir + "/shard-0.snap"});
    tier.insert(name, dns::RRType::kA,
                std::vector<dns::ResourceRecord>{make_a(name, 1,
                                                        0x7F000002)},
                0);
    tier.flush();
  }

  World world;
  world.sim.run_until(5 * kSecond);
  EngineConfig config = world.engine_config();
  config.snapshot_dir = dir;
  world.start_engine(config);
  // Expired entries are not warm-promoted; they wait in the snapshot tier
  // for a stale lookup.
  EXPECT_EQ(world.engine->stats().snapshot_warm_loaded, 0u);

  const auto stale = world.stub_query("stale-snap.example.com");
  ASSERT_TRUE(stale.has_value());
  ASSERT_EQ(stale->answers.size(), 1u);
  EXPECT_EQ(dns::rdata_as_a(stale->answers[0]), 0x7F000002u);
  EXPECT_EQ(stale->answers[0].ttl, config.stale_ttl);
  const EngineStats after_stale = world.engine->stats();
  EXPECT_EQ(after_stale.snapshot_hits, 1u);
  EXPECT_EQ(after_stale.stale_hits, 1u);
  EXPECT_EQ(after_stale.stale_refreshes, 1u);
  EXPECT_EQ(after_stale.upstream_resolves, 1u);

  const auto fresh = world.stub_query("stale-snap.example.com", 0x78);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(dns::rdata_as_a(fresh->answers[0]),
            resolver::authoritative_ipv4(name));
  EXPECT_EQ(world.engine->stats().cache_hits, 1u);
  EXPECT_EQ(world.engine->stats().upstream_resolves, 1u);
}

TEST(TieredEngine, WithdrawSkipsUpstreamAnnounceRestoresIt) {
  World world;
  EngineConfig config = world.engine_config();
  config.cache_enabled = false;  // every query pays a resolve
  world.start_engine(config);

  // Withdrawn upstream 0 is never attempted — no timeout is paid, the
  // query goes straight to upstream 1.
  world.engine->pool(0).set_enabled(0, false);
  ASSERT_TRUE(world.stub_query("withdraw-a.example.com").has_value());
  EngineStats stats = world.engine->stats();
  ASSERT_EQ(stats.upstreams.size(), 2u);
  EXPECT_FALSE(stats.upstreams[0].admin_enabled);
  EXPECT_EQ(stats.upstreams[0].attempts, 0u);
  EXPECT_GE(stats.upstreams[1].attempts, 1u);

  // Re-announce: the preferred upstream serves again.
  world.engine->pool(0).set_enabled(0, true);
  ASSERT_TRUE(
      world.stub_query("withdraw-b.example.com", 0x78).has_value());
  stats = world.engine->stats();
  EXPECT_TRUE(stats.upstreams[0].admin_enabled);
  EXPECT_GE(stats.upstreams[0].attempts, 1u);
}

TEST(ChurnCampaign, BucketAccountingIsExhaustive) {
  ChurnConfig config;
  config.load.clients = 20;
  config.load.qps = 100.0;
  config.load.duration = 4 * kSecond;
  config.load.names = 20;
  config.events = {{kSecond, 0, ChurnAction::kOutage},
                   {2 * kSecond, 0, ChurnAction::kRecover},
                   {2 * kSecond, 1, ChurnAction::kWithdraw},
                   {3 * kSecond, 1, ChurnAction::kAnnounce}};
  const ChurnResult result = run_churn(config);

  EXPECT_EQ(result.events_executed, 4u);
  EXPECT_TRUE(result.load.complete());
  EXPECT_GT(result.load.sent, 0u);
  ASSERT_FALSE(result.series.empty());
  std::uint64_t sent = 0;
  for (const ChurnBucket& bucket : result.series) {
    // Every sent query in a bucket reached exactly one terminal outcome.
    EXPECT_EQ(bucket.sent,
              bucket.answered + bucket.servfails + bucket.timeouts);
    sent += bucket.sent;
  }
  EXPECT_EQ(sent, result.load.sent);

  // Determinism: the same config reproduces the same series.
  const ChurnResult again = run_churn(config);
  ASSERT_EQ(again.series.size(), result.series.size());
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    EXPECT_EQ(again.series[i].sent, result.series[i].sent);
    EXPECT_EQ(again.series[i].answered, result.series[i].answered);
    EXPECT_EQ(again.series[i].p99_ms, result.series[i].p99_ms);
  }
}

TEST(ChurnCampaign, RestartWarmStartsFromSnapshot) {
  const std::string dir = temp_dir("churn_restart_snapdir");
  ChurnConfig config;
  config.load.clients = 30;
  config.load.qps = 150.0;
  config.load.duration = 5 * kSecond;
  config.load.names = 25;
  config.restart_at = 3 * kSecond;
  config.epoch_window = kSecond;
  config.engine.snapshot_dir = dir;
  const ChurnResult result = run_churn(config);

  EXPECT_GT(result.warm_loaded, 0u);
  EXPECT_TRUE(result.load.complete());
  // The pre-restart windows were probed in ascending order.
  EXPECT_GE(result.pre_restart.queries, result.pre_window_start.queries);
  EXPECT_GT(result.pre_restart.queries, 0u);
  EXPECT_GT(result.post_first_epoch.queries, 0u);
  // Warm start: the post-restart engine answered from its promoted tiers
  // far more often than it resolved upstream.
  EXPECT_LT(result.post_first_epoch.upstream_resolves,
            result.post_first_epoch.queries / 2);
}

}  // namespace
}  // namespace doxlab::engine
