// Fidelity tests for the raw-wire packet cache: a materialized hit must be
// byte-identical to freshly encoding the same response with the client's
// transaction ID and the decayed TTLs — across mixed-case qnames, EDNS
// options, multi-record answers and compression — plus the key-normalization,
// expiry/serve-stale, and capacity rules the engine fast path relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dns/message.h"
#include "dns/wire_cache.h"

namespace doxlab::dns {
namespace {

Message query_for(std::uint16_t id, const std::string& name,
                  RRType type = RRType::kA) {
  return make_query(id, DnsName::parse(name), type);
}

/// A multi-section response: CNAME chain + A answers, NS authority, OPT —
/// compression pointers everywhere past the first name.
Message rich_response(const Message& query) {
  Message response = make_response(query);
  const DnsName& qname = query.questions[0].name;
  const DnsName target = DnsName::parse("edge.cdn.example");
  response.answers.push_back(make_cname(qname, 300, target));
  response.answers.push_back(make_a(target, 60, 0x0A000001));
  response.answers.push_back(make_a(target, 60, 0x0A000002));
  response.authorities.push_back(
      make_cname(DnsName::parse("cdn.example"), 3600,
                 DnsName::parse("ns1.cdn.example")));
  response.additionals.push_back(make_opt(1232));
  return response;
}

/// What the wire cache must produce for a hit of age `age_s`: the stored
/// response re-encoded with the new ID and every record TTL decremented
/// (clamped at 0), OPT excluded. The codec is deterministic, so comparing
/// encodings compares layouts byte for byte.
std::vector<std::uint8_t> expect_patched(Message response, std::uint16_t id,
                                         std::uint32_t age_s) {
  response.id = id;
  for (auto* section :
       {&response.answers, &response.authorities, &response.additionals}) {
    for (ResourceRecord& rr : *section) {
      if (rr.type == RRType::kOPT) continue;
      rr.ttl = rr.ttl > age_s ? rr.ttl - age_s : 0;
    }
  }
  return response.encode();
}

TEST(WireCacheTest, HitPatchesOnlyTheId) {
  WireCache cache({});
  const Message query = query_for(0x1111, "www.example.com");
  const Message response = rich_response(query);
  ASSERT_TRUE(cache.insert(query.encode(), response.encode(), 0));

  const Message same = query_for(0x2222, "www.example.com");
  const auto wire = same.encode();
  WireCache::Hit hit;
  ASSERT_TRUE(cache.probe(wire, 0, hit));
  EXPECT_FALSE(hit.stale);
  EXPECT_EQ(hit.age_s, 0u);

  const util::Buffer patched = cache.materialize(hit, wire);
  const auto expected = expect_patched(response, 0x2222, 0);
  EXPECT_TRUE(std::ranges::equal(patched.view(), expected));
}

TEST(WireCacheTest, AgedHitDecrementsEveryNonOptTtl) {
  WireCache cache({});
  const Message query = query_for(7, "www.example.com");
  const Message response = rich_response(query);
  ASSERT_TRUE(cache.insert(query.encode(), response.encode(), 0));

  // min TTL is 60 s, so 59 s in the entry is still fresh and every record
  // (300/60/60/3600) must have aged by exactly 59 — except the OPT, whose
  // TTL field carries flags, never a lifetime.
  const Message later = query_for(0xBEEF, "www.example.com");
  const auto wire = later.encode();
  WireCache::Hit hit;
  ASSERT_TRUE(cache.probe(wire, 59 * kSecond, hit));
  EXPECT_FALSE(hit.stale);
  EXPECT_EQ(hit.age_s, 59u);

  const util::Buffer patched = cache.materialize(hit, wire);
  EXPECT_TRUE(
      std::ranges::equal(patched.view(), expect_patched(response, 0xBEEF, 59)));

  // And the patched image must still decode: TTLs visible to a client.
  const auto decoded = Message::decode(patched.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 0xBEEF);
  EXPECT_EQ(decoded->answers[0].ttl, 300u - 59u);
  EXPECT_EQ(decoded->answers[1].ttl, 1u);
  EXPECT_EQ(decoded->authorities[0].ttl, 3600u - 59u);
}

TEST(WireCacheTest, QnameCaseFoldsIntoTheSameKey) {
  WireCache cache({});
  const Message query = query_for(1, "www.example.com");
  ASSERT_TRUE(
      cache.insert(query.encode(), rich_response(query).encode(), 0));

  const Message shouty = query_for(2, "WWW.ExAmPlE.CoM");
  const auto wire = shouty.encode();
  WireCache::Hit hit;
  ASSERT_TRUE(cache.probe(wire, 0, hit));
  // The patched answer carries the stored response bytes — including the
  // original lower-case qname — with only the ID swapped.
  const util::Buffer patched = cache.materialize(hit, wire);
  const auto decoded = Message::decode(patched.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 2);
  EXPECT_EQ(decoded->questions[0].name.to_string(), "www.example.com");
}

TEST(WireCacheTest, DifferentQtypeIsADifferentKey) {
  WireCache cache({});
  const Message query = query_for(1, "www.example.com", RRType::kA);
  ASSERT_TRUE(
      cache.insert(query.encode(), rich_response(query).encode(), 0));

  const auto aaaa = query_for(1, "www.example.com", RRType::kAAAA).encode();
  WireCache::Hit hit;
  EXPECT_FALSE(cache.probe(aaaa, 0, hit));
}

TEST(WireCacheTest, ExpiredEntryEvictsOnProbe) {
  WireCache cache({});  // serve_stale off
  const Message query = query_for(1, "a.example");
  Message response = make_response(query);
  response.answers.push_back(
      make_a(query.questions[0].name, 5, 0x7F000001));
  ASSERT_TRUE(cache.insert(query.encode(), response.encode(), 0));
  EXPECT_EQ(cache.size(), 1u);

  const auto wire = query_for(2, "a.example").encode();
  WireCache::Hit hit;
  EXPECT_FALSE(cache.probe(wire, 5 * kSecond, hit));  // at the deadline
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().expired_evictions, 1u);
}

TEST(WireCacheTest, ServeStaleStampsTtlAndServesOnce) {
  WireCacheConfig config;
  config.serve_stale = true;
  config.max_stale = 60 * kSecond;
  config.stale_ttl = 7;
  WireCache cache(config);
  const Message query = query_for(1, "a.example");
  Message response = make_response(query);
  response.answers.push_back(
      make_a(query.questions[0].name, 5, 0x7F000001));
  response.answers.push_back(
      make_a(query.questions[0].name, 9, 0x7F000002));
  response.additionals.push_back(make_opt(1232));
  ASSERT_TRUE(cache.insert(query.encode(), response.encode(), 0));

  const auto wire = query_for(3, "a.example").encode();
  WireCache::Hit hit;
  ASSERT_TRUE(cache.probe(wire, 30 * kSecond, hit));
  EXPECT_TRUE(hit.stale);

  const util::Buffer patched = cache.materialize(hit, wire);
  const auto decoded = Message::decode(patched.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 3);
  EXPECT_EQ(decoded->answers[0].ttl, 7u);  // stamped, not decremented
  EXPECT_EQ(decoded->answers[1].ttl, 7u);
  EXPECT_EQ(decoded->additionals[0].ttl, 0u);  // OPT flags untouched

  // A stale image is served at most once: materialize evicted it.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.probe(wire, 30 * kSecond, hit));
  EXPECT_EQ(cache.stats().stale_hits, 1u);

  // Past the stale window it is gone even before materialize.
  ASSERT_TRUE(cache.insert(query.encode(), response.encode(), 0));
  EXPECT_FALSE(cache.probe(wire, (5 + 61) * kSecond, hit));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(WireCacheTest, RejectsUncacheableResponses) {
  WireCache cache({});
  const Message query = query_for(1, "a.example");
  // No answer records.
  EXPECT_FALSE(cache.insert(query.encode(),
                            make_response(query).encode(), 0));
  // Zero minimum TTL: would expire before any probe could hit.
  Message zero = make_response(query);
  zero.answers.push_back(make_a(query.questions[0].name, 0, 1));
  EXPECT_FALSE(cache.insert(query.encode(), zero.encode(), 0));
  // Malformed response bytes.
  Message ok = make_response(query);
  ok.answers.push_back(make_a(query.questions[0].name, 60, 1));
  auto bytes = ok.encode();
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(cache.insert(query.encode(), bytes, 0));
  EXPECT_EQ(cache.stats().rejected, 3u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(WireCacheTest, CapacityBoundPurgesExpiredBeforeRejecting) {
  WireCacheConfig config;
  config.capacity = 1;
  WireCache cache(config);
  const Message first = query_for(1, "a.example");
  Message response_a = make_response(first);
  response_a.answers.push_back(make_a(first.questions[0].name, 5, 1));
  ASSERT_TRUE(cache.insert(first.encode(), response_a.encode(), 0));

  const Message second = query_for(1, "b.example");
  Message response_b = make_response(second);
  response_b.answers.push_back(make_a(second.questions[0].name, 5, 2));
  // Full, and the resident entry is still fresh: reject.
  EXPECT_FALSE(cache.insert(second.encode(), response_b.encode(), 0));
  // Once the resident entry has expired, the insert purges it and lands.
  EXPECT_TRUE(
      cache.insert(second.encode(), response_b.encode(), 6 * kSecond));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(WireCacheTest, RefusesQueriesTheFastPathCannotKey) {
  WireCache cache({});
  WireCache::Hit hit;
  // Truncated header.
  const std::vector<std::uint8_t> stub = {0, 1, 2};
  EXPECT_FALSE(cache.probe(stub, 0, hit));
  // QR set: a response, not a query.
  auto wire = query_for(1, "a.example").encode();
  wire[2] |= 0x80;
  EXPECT_FALSE(cache.probe(wire, 0, hit));
  EXPECT_FALSE(cache.insert(wire, wire, 0));
}

TEST(WireCacheTest, ParseQuestionMatchesFullDecode) {
  const Message query = query_for(9, "WwW.Example.COM", RRType::kAAAA);
  const auto wire = query.encode();
  Question question;
  ASSERT_TRUE(WireCache::parse_question(wire, question));
  EXPECT_EQ(question, query.questions[0]);
  EXPECT_FALSE(WireCache::parse_question(
      std::span(wire).first(11), question));
}

TEST(WireCacheTest, ScanTtlOffsetsFindsEveryRecord) {
  const Message query = query_for(1, "www.example.com");
  const Message response = rich_response(query);
  const auto wire = response.encode();
  std::vector<std::uint16_t> offsets;
  std::uint32_t min_ttl = 0xFFFFFFFF;
  std::uint16_t answers = 0;
  ASSERT_TRUE(WireCache::scan_ttl_offsets(wire, offsets, min_ttl, answers));
  EXPECT_EQ(answers, 3u);
  ASSERT_EQ(offsets.size(), 4u);  // 3 answers + 1 authority; OPT excluded
  EXPECT_EQ(min_ttl, 60u);
  // Each recorded offset must point at the record's actual TTL field.
  std::vector<std::uint32_t> ttls;
  for (std::uint16_t offset : offsets) {
    ttls.push_back(static_cast<std::uint32_t>(wire[offset]) << 24 |
                   static_cast<std::uint32_t>(wire[offset + 1]) << 16 |
                   static_cast<std::uint32_t>(wire[offset + 2]) << 8 |
                   wire[offset + 3]);
  }
  EXPECT_EQ(ttls, (std::vector<std::uint32_t>{300, 60, 60, 3600}));
}

}  // namespace
}  // namespace doxlab::dns
