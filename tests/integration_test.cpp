// Cross-module integration tests: draft DoQ ports, the DoT-bug visible on
// the wire, full page loads over every protocol, unresponsive resolvers,
// QUIC duplicate suppression, and testbed determinism.
#include <gtest/gtest.h>

#include "measure/single_query.h"
#include "net/network.h"
#include "proxy/proxy.h"
#include "quic/wire.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"
#include "web/browser.h"

namespace doxlab {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

class IntegrationFixture : public ::testing::Test {
 protected:
  IntegrationFixture()
      : network_(sim_, Rng(23)),
        client_host_(network_.add_host("client",
                                       IpAddress::from_octets(10, 1, 0, 1),
                                       {50.11, 8.68}, Continent::kEurope)),
        udp_(client_host_),
        tcp_(client_host_) {
    network_.set_loss_rate(0.0);
  }

  resolver::ResolverProfile profile() {
    resolver::ResolverProfile p;
    p.name = "resolver";
    p.address = IpAddress::from_octets(10, 2, 0, 1);
    p.location = {52.37, 4.90};
    p.secret = 0xAB;
    p.drop_probability = 0.0;
    return p;
  }

  void start_resolver(resolver::ResolverProfile p) {
    resolver_ = std::make_unique<resolver::DoxResolver>(network_, p, Rng(3));
    network_.set_path_override(client_host_.address(), p.address,
                               from_ms(10));
  }

  dox::TransportDeps deps() {
    dox::TransportDeps d;
    d.sim = &sim_;
    d.udp = &udp_;
    d.tcp = &tcp_;
    d.tickets = &tickets_;
    d.doq_cache = &doq_cache_;
    return d;
  }

  sim::Simulator sim_;
  net::Network network_;
  net::Host& client_host_;
  net::UdpStack udp_;
  tcp::TcpStack tcp_;
  tls::TicketStore tickets_;
  dox::DoqSessionCache doq_cache_;
  std::unique_ptr<resolver::DoxResolver> resolver_;
};

// The early-draft DoQ ports from the paper's scan must all serve queries.
class DoqPorts : public IntegrationFixture,
                 public ::testing::WithParamInterface<std::uint16_t> {};

TEST_P(DoqPorts, ServesOnDraftPort) {
  start_resolver(profile());
  dox::TransportOptions opts;
  opts.resolver = Endpoint{resolver_->profile().address, GetParam()};
  auto transport = dox::make_transport(dox::DnsProtocol::kDoQ, deps(), opts);
  std::optional<dox::QueryResult> result;
  transport->resolve(dns::Question{dns::DnsName::parse("google.com"),
                                   dns::RRType::kA, dns::RRClass::kIN},
                     [&](dox::QueryResult r) { result = std::move(r); });
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok()) << "port " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(DraftPorts, DoqPorts,
                         ::testing::Values(std::uint16_t(784),
                                           std::uint16_t(853),
                                           std::uint16_t(8853)));

// The dnsproxy DoT bug must be visible on the wire: parallel stub queries
// through the proxy trigger a second TCP connection to port 853.
TEST_F(IntegrationFixture, DotBugVisibleAsSecondConnectionOnWire) {
  start_resolver(profile());
  for (const bool buggy : {true, false}) {
    proxy::ProxyConfig config;
    config.upstream_protocol = dox::DnsProtocol::kDoT;
    config.upstream = Endpoint{resolver_->profile().address, 853};
    config.listen_port = buggy ? 5301 : 5302;
    config.transport_options.dot_buggy_reuse = buggy;
    proxy::DnsProxy proxy(sim_, udp_, deps(), config);

    int syns_to_853 = 0;
    network_.set_tap([&](const net::Packet& p) {
      if (p.protocol != net::kProtoTcp || p.dst.port != 853) return;
      // SYN segments have 40-byte headers in the model.
      if (p.header_bytes == tcp::kSynHeaderBytes) ++syns_to_853;
    });

    auto socket = udp_.bind_ephemeral();
    int answers = 0;
    socket->on_datagram(
        [&](const Endpoint&, util::Buffer) { ++answers; });
    for (int i = 0; i < 3; ++i) {
      dns::Message query = dns::make_query(
          static_cast<std::uint16_t>(i + 1),
          dns::DnsName::parse("host" + std::to_string(i) + ".test"),
          dns::RRType::kA);
      socket->send_to(Endpoint{client_host_.address(), config.listen_port},
                      query.encode());
    }
    sim_.run_until(sim_.now() + 30 * kSecond);
    network_.set_tap(nullptr);
    EXPECT_EQ(answers, 3);
    if (buggy) {
      EXPECT_GE(syns_to_853, 3) << "buggy proxy must open per-query conns";
    } else {
      EXPECT_EQ(syns_to_853, 1) << "fixed proxy pipelines on one connection";
    }
  }
}

// Every modelled page loads over every protocol through the proxy.
struct PageProtocol {
  const char* page;
  dox::DnsProtocol protocol;
};

class AllPagesLoad : public IntegrationFixture,
                     public ::testing::WithParamInterface<PageProtocol> {};

TEST_P(AllPagesLoad, CompletesWithConsistentMetrics) {
  start_resolver(profile());
  proxy::ProxyConfig config;
  config.upstream_protocol = GetParam().protocol;
  config.upstream = Endpoint{resolver_->profile().address,
                             dox::default_port(GetParam().protocol)};
  proxy::DnsProxy proxy(sim_, udp_, deps(), config);

  web::BrowserConfig browser_config;
  browser_config.stub_resolver = Endpoint{client_host_.address(), 53};
  auto rtt = [](const dns::DnsName&) { return from_ms(20); };
  web::Browser browser(sim_, udp_, browser_config, rtt, Rng(4));

  const web::WebPage& page = web::page_by_name(GetParam().page);
  web::PageLoadMetrics metrics;
  bool done = false;
  browser.navigate(page, [&](web::PageLoadMetrics m) {
    metrics = std::move(m);
    done = true;
  });
  sim_.run_until(sim_.now() + 300 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(metrics.success) << metrics.error;
  EXPECT_EQ(metrics.dns_queries, page.dns_queries());
  EXPECT_GT(metrics.fcp, 0);
  EXPECT_GE(metrics.plt, metrics.fcp);
}

std::vector<PageProtocol> all_page_protocol_combos() {
  std::vector<PageProtocol> combos;
  for (const auto& page : web::tranco_top10()) {
    combos.push_back({page.name.c_str(), dox::DnsProtocol::kDoQ});
  }
  combos.push_back({"wikipedia.org", dox::DnsProtocol::kDoUdp});
  combos.push_back({"wikipedia.org", dox::DnsProtocol::kDoTcp});
  combos.push_back({"wikipedia.org", dox::DnsProtocol::kDoT});
  combos.push_back({"wikipedia.org", dox::DnsProtocol::kDoH});
  return combos;
}

INSTANTIATE_TEST_SUITE_P(
    PagesTimesProtocols, AllPagesLoad,
    ::testing::ValuesIn(all_page_protocol_combos()),
    [](const auto& info) {
      std::string name = info.param.page;
      for (char& c : name) {
        if (c == '.' || c == '-') c = '_';
      }
      return name + "_" +
             std::string(dox::protocol_name(info.param.protocol));
    });

TEST_F(IntegrationFixture, FullyUnresponsiveResolverTimesOutEveryProtocol) {
  auto p = profile();
  p.drop_probability = 1.0;
  start_resolver(p);
  for (dox::DnsProtocol protocol : dox::kAllProtocols) {
    dox::TransportOptions opts;
    opts.resolver = Endpoint{resolver_->profile().address,
                             dox::default_port(protocol)};
    opts.query_timeout = 5 * kSecond;
    auto transport = dox::make_transport(protocol, deps(), opts);
    std::optional<dox::QueryResult> result;
    transport->resolve(dns::Question{dns::DnsName::parse("google.com"),
                                     dns::RRType::kA, dns::RRClass::kIN},
                       [&](dox::QueryResult r) { result = std::move(r); });
    sim_.run_until(sim_.now() + 60 * kSecond);
    ASSERT_TRUE(result.has_value()) << protocol_name(protocol);
    EXPECT_FALSE(result->ok()) << protocol_name(protocol);
    transport->reset_sessions();
    sim_.run_until(sim_.now() + 5 * kSecond);
  }
}

TEST_F(IntegrationFixture, DuplicateQuicDatagramsAreSuppressed) {
  start_resolver(profile());
  // Deliver every datagram twice by re-sending it through a tap.
  auto transport = dox::make_transport(
      dox::DnsProtocol::kDoQ, deps(),
      dox::TransportOptions{
          .resolver = Endpoint{resolver_->profile().address, 853}});
  std::optional<dox::QueryResult> result;
  int responses = 0;
  transport->resolve(dns::Question{dns::DnsName::parse("google.com"),
                                   dns::RRType::kA, dns::RRClass::kIN},
                     [&](dox::QueryResult r) {
                       result = std::move(r);
                       ++responses;
                     });
  sim_.run_until(sim_.now() + 30 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(responses, 1);
}

// Regression guard for the callback-cycle leak class: repeated measurement
// cycles must not accumulate bound UDP sockets (each leaked QUIC connection
// used to pin its ephemeral port until the port space ran out at paper
// scale).
TEST_F(IntegrationFixture, RepeatedDoqMeasurementsReleasePorts) {
  start_resolver(profile());
  dox::TransportOptions opts;
  opts.resolver = Endpoint{resolver_->profile().address, 853};
  for (int i = 0; i < 40; ++i) {
    auto transport = dox::make_transport(dox::DnsProtocol::kDoQ, deps(), opts);
    bool done = false;
    transport->resolve(dns::Question{dns::DnsName::parse("google.com"),
                                     dns::RRType::kA, dns::RRClass::kIN},
                       [&](dox::QueryResult) { done = true; });
    sim_.run_until(sim_.now() + 10 * kSecond);
    ASSERT_TRUE(done);
    transport->reset_sessions();
    sim_.run_until(sim_.now() + kSecond);
  }
  // Everything torn down: only transient state may remain.
  EXPECT_LE(udp_.bound_count(), 2u);
}

TEST_F(IntegrationFixture, RepeatedWebLoadsReleasePorts) {
  start_resolver(profile());
  proxy::ProxyConfig config;
  config.upstream_protocol = dox::DnsProtocol::kDoQ;
  config.upstream = Endpoint{resolver_->profile().address, 853};
  proxy::DnsProxy proxy(sim_, udp_, deps(), config);
  web::BrowserConfig browser_config;
  browser_config.stub_resolver = Endpoint{client_host_.address(), 53};
  auto rtt = [](const dns::DnsName&) { return from_ms(15); };
  for (int i = 0; i < 25; ++i) {
    web::Browser browser(sim_, udp_, browser_config, rtt, Rng(i + 1));
    bool done = false;
    browser.navigate(web::page_by_name("google.com"),
                     [&](web::PageLoadMetrics) { done = true; });
    sim_.run_until(sim_.now() + 120 * kSecond);
    ASSERT_TRUE(done);
    sim_.run_until(sim_.now() + kSecond);
    proxy.reset_sessions();
    sim_.run_until(sim_.now() + kSecond);
  }
  // The proxy listener plus at most transient teardown state.
  EXPECT_LE(udp_.bound_count(), 4u);
}

TEST(TestbedIntegration, OriginRttDeterministicWithContinentFactor) {
  measure::TestbedConfig config;
  config.population.verified_only = true;
  config.population.verified_dox = 6;
  measure::Testbed testbed(config);
  auto& eu = *testbed.vantage_points()[0];  // Frankfurt
  auto& af = *testbed.vantage_points()[3];  // Cape Town
  auto eu_fn = testbed.origin_rtt_fn(eu);
  auto af_fn = testbed.origin_rtt_fn(af);
  const auto domain = dns::DnsName::parse("www.example.com");
  // Deterministic per (vp, domain).
  EXPECT_EQ(eu_fn(domain), eu_fn(domain));
  // The AF/OC/SA continent factor inflates RTTs on average: test over many
  // domains since individual draws vary.
  SimTime eu_sum = 0, af_sum = 0;
  for (int i = 0; i < 50; ++i) {
    const auto name =
        dns::DnsName::parse("host" + std::to_string(i) + ".example");
    eu_sum += eu_fn(name);
    af_sum += af_fn(name);
  }
  EXPECT_GT(af_sum, eu_sum);
}

TEST(TestbedIntegration, IdenticalSeedsGiveIdenticalStudies) {
  auto run_study = [] {
    measure::TestbedConfig config;
    config.seed = 99;
    config.population.verified_only = true;
    config.population.verified_dox = 6;
    measure::Testbed testbed(config);
    measure::SingleQueryConfig sq;
    sq.protocols = {dox::DnsProtocol::kDoQ};
    measure::SingleQueryStudy study(testbed, sq);
    std::vector<double> times;
    for (const auto& r : study.run()) {
      times.push_back(to_ms(r.resolve_time));
    }
    return times;
  };
  EXPECT_EQ(run_study(), run_study());
}

}  // namespace
}  // namespace doxlab
