// Unit tests for util: byte codec (incl. QUIC varints), pooled buffers,
// RNG, strings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/types.h"

namespace doxlab {
namespace {

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.view()[0], 0x01);
  EXPECT_EQ(w.view()[1], 0x02);
}

TEST(Bytes, ReadPastEndReturnsNullopt) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.view());
  EXPECT_TRUE(r.u8().has_value());
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.u16().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.u64().has_value());
  EXPECT_FALSE(r.varint().has_value());
}

struct VarintCase {
  std::uint64_t value;
  std::size_t encoded_size;
};

class VarintTest : public ::testing::TestWithParam<VarintCase> {};

TEST_P(VarintTest, RoundTripAndSize) {
  const auto& param = GetParam();
  ByteWriter w;
  w.varint(param.value);
  EXPECT_EQ(w.size(), param.encoded_size);
  ByteReader r(w.view());
  EXPECT_EQ(r.varint(), param.value);
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintTest,
    ::testing::Values(VarintCase{0, 1}, VarintCase{63, 1}, VarintCase{64, 2},
                      VarintCase{16383, 2}, VarintCase{16384, 4},
                      VarintCase{1073741823, 4}, VarintCase{1073741824, 8},
                      VarintCase{4611686018427387903ull, 8}));

TEST(Bytes, VarintTruncatedRejected) {
  ByteWriter w;
  w.varint(70000);  // 4-byte encoding
  auto data = w.take();
  data.pop_back();
  ByteReader r(data);
  EXPECT_FALSE(r.varint().has_value());
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.bytes(std::string_view("abc"));
  w.patch_u16(0, 3);
  ByteReader r(w.view());
  EXPECT_EQ(r.u16(), 3);
}

TEST(Bytes, SeekAndHex) {
  ByteWriter w;
  w.u32(0x00FF10AB);
  ByteReader r(w.view());
  EXPECT_TRUE(r.seek(2));
  EXPECT_EQ(r.u8(), 0x10);
  EXPECT_FALSE(r.seek(99));
  EXPECT_EQ(to_hex(w.view()), "00ff10ab");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, ForkDivergesFromParentStream) {
  Rng a(42);
  Rng child = a.fork();
  Rng b(42);
  Rng child_b = b.fork();
  // Forks of identical parents match each other...
  EXPECT_EQ(child.uniform_int(0, 1 << 30), child_b.uniform_int(0, 1 << 30));
  // ...and children differ from a fresh engine with the parent seed.
  Rng c(42);
  bool any_diff = false;
  Rng child2 = a.fork();
  for (int i = 0; i < 10; ++i) {
    if (child2.uniform_int(0, 1 << 30) != c.uniform_int(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  Rng rng(7);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, WeightedIndexApproximatesWeights) {
  Rng rng(7);
  const double weights[] = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(double(counts[1]) / counts[0], 3.0, 0.5);
}

TEST(Strings, SplitJoin) {
  auto parts = split("a.b..c", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "."), "a.b..c");
}

TEST(Strings, CaseAndPadding) {
  EXPECT_EQ(to_lower("GooGLE.Com"), "google.com");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_right("abcdef", 4), "abcd");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_TRUE(ends_with("google.com", ".com"));
  EXPECT_FALSE(ends_with("com", ".com"));
}

TEST(Buffer, PrependFillsHeadroomInPlace) {
  util::Buffer buf = util::Buffer::allocate(16, /*headroom=*/8);
  std::memcpy(buf.append(5), "hello", 5);
  ASSERT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.headroom(), 8u);
  const std::uint8_t* payload = buf.data();

  std::uint8_t* front = buf.prepend(3);
  std::memcpy(front, "abc", 3);
  // In-place: the payload bytes did not move, the view grew leftwards.
  EXPECT_EQ(buf.data() + 3, payload);
  EXPECT_EQ(buf.headroom(), 5u);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(std::memcmp(buf.data(), "abchello", 8), 0);
}

TEST(Buffer, PrependBeyondHeadroomReallocatesCorrectly) {
  util::Buffer buf = util::Buffer::allocate(8, /*headroom=*/2);
  std::memcpy(buf.append(4), "data", 4);
  std::uint8_t* front = buf.prepend(6);  // only 2 bytes of headroom
  std::memcpy(front, "header", 6);
  ASSERT_EQ(buf.size(), 10u);
  EXPECT_EQ(std::memcmp(buf.data(), "headerdata", 10), 0);
}

TEST(Buffer, SharedPrependCopiesOnWrite) {
  util::Buffer a = util::Buffer::allocate(16, /*headroom=*/8);
  std::memcpy(a.append(4), "body", 4);
  util::Buffer b = a;  // refbump share
  EXPECT_FALSE(a.unique());

  std::memcpy(b.prepend(2), "xy", 2);
  // The writer got its own slab; the original view is untouched.
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(std::memcmp(a.data(), "body", 4), 0);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(std::memcmp(b.data(), "xybody", 6), 0);
  EXPECT_TRUE(a.unique());
  EXPECT_TRUE(b.unique());
}

TEST(Buffer, SharedHandoffAcrossThreads) {
  // The L2 packet cache publishes share()d buffers produced on one shard
  // thread to readers on others. This pins the handoff: bytes survive the
  // move, the consumer's copies retain/release the slab atomically, and the
  // last release happens off the producing thread without corruption.
  constexpr int kRounds = 64;
  std::vector<util::Buffer> produced;
  for (int i = 0; i < kRounds; ++i) {
    util::Buffer buffer = util::Buffer::allocate(64);
    std::memset(buffer.append(16), 'a' + (i % 26), 16);
    buffer.share();
    produced.push_back(std::move(buffer));
  }

  std::atomic<int> bad_bytes{0};
  std::thread consumer([&] {
    for (int i = 0; i < kRounds; ++i) {
      util::Buffer copy = produced[i];  // atomic retain on a foreign slab
      const char expected = static_cast<char>('a' + (i % 26));
      for (std::size_t b = 0; b < copy.size(); ++b) {
        if (static_cast<char>(copy.data()[b]) != expected) ++bad_bytes;
      }
    }
  });
  consumer.join();
  EXPECT_EQ(bad_bytes.load(), 0);

  // Producer still holds valid sole references after the consumer drained.
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_EQ(produced[i].size(), 16u);
    EXPECT_TRUE(produced[i].unique());
  }
}

TEST(Buffer, ConcurrentRetainReleaseOnSharedSlab) {
  // Two threads hammering copies of one shared buffer: the atomic refcount
  // must neither double-free nor leak (run under TSan this is the race
  // detector's target).
  util::Buffer original = util::Buffer::allocate(64);
  std::memcpy(original.append(5), "hello", 5);
  original.share();

  std::atomic<bool> start{false};
  std::atomic<int> mismatches{0};
  auto hammer = [&] {
    while (!start.load(std::memory_order_acquire)) {
    }
    for (int i = 0; i < 20000; ++i) {
      util::Buffer copy = original;
      if (copy.size() != 5 || std::memcmp(copy.data(), "hello", 5) != 0) {
        ++mismatches;
      }
    }
  };
  std::thread a(hammer);
  std::thread b(hammer);
  start.store(true, std::memory_order_release);
  a.join();
  b.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(original.unique());
  EXPECT_EQ(std::memcmp(original.data(), "hello", 5), 0);
}

TEST(BufferPool, CrossThreadLastReleaseRecyclesIntoReleasersPool) {
  util::BufferPool& home = util::BufferPool::local();
  home.trim();
  const auto before = home.stats();

  util::Buffer buffer = util::Buffer::allocate(128);
  std::memcpy(buffer.append(4), "data", 4);
  buffer.share();

  std::thread worker([moved = std::move(buffer)]() mutable {
    util::BufferPool& pool = util::BufferPool::local();
    const auto empty = pool.stats();
    EXPECT_EQ(std::memcmp(moved.data(), "data", 4), 0);
    moved = util::Buffer();  // last reference dies on this thread...
    EXPECT_EQ(pool.stats().cached, empty.cached + 1);  // ...and parks here
    pool.trim();
  });
  worker.join();

  // Nothing came back to the producing thread's free list.
  EXPECT_EQ(home.stats().cached, before.cached);
}

TEST(BufferPool, RecyclesSlabsFromFreeList) {
  util::BufferPool& pool = util::BufferPool::local();
  pool.trim();
  const auto before = pool.stats();

  { util::Buffer one = util::Buffer::allocate(100); }
  // The released slab sits on the free list and satisfies the next alloc.
  { util::Buffer two = util::Buffer::allocate(100); }

  const auto after = pool.stats();
  EXPECT_EQ(after.fresh_allocs, before.fresh_allocs + 1);
  EXPECT_GE(after.reuses, before.reuses + 1);
  EXPECT_GE(after.cached, 1u);

  pool.trim();
  EXPECT_EQ(pool.stats().cached, 0u);
}

TEST(BufferPool, HighWaterMarkTracksConcurrentSlabs) {
  util::BufferPool& pool = util::BufferPool::local();
  pool.trim();
  const auto before = pool.stats();

  std::vector<util::Buffer> live;
  for (int i = 0; i < 4; ++i) live.push_back(util::Buffer::allocate(64));
  const auto peak = pool.stats();
  EXPECT_GE(peak.outstanding, before.outstanding + 4);
  EXPECT_GE(peak.high_water, before.outstanding + 4);

  live.clear();
  // High-water is sticky: it keeps the peak after the slabs drain.
  EXPECT_GE(pool.stats().high_water, peak.high_water);
  pool.trim();
}

TEST(BufferPool, OversizeAllocationsBypassThePool) {
  util::BufferPool& pool = util::BufferPool::local();
  const auto before = pool.stats();
  { util::Buffer big = util::Buffer::allocate(util::BufferPool::kMaxPooledBytes + 1); }
  const auto after = pool.stats();
  EXPECT_EQ(after.oversize, before.oversize + 1);
  EXPECT_EQ(after.cached, before.cached);  // oversize slabs are never parked
}

TEST(Types, TimeConversions) {
  EXPECT_EQ(to_ms(1500), 1.5);
  EXPECT_EQ(from_ms(1.5), 1500);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kDay, 24 * kHour);
}

}  // namespace
}  // namespace doxlab
