// Integration tests of the measurement harness: testbed construction,
// single-query study invariants (the paper's §3.1 relationships), web study
// invariants (§3.2), report aggregation, CSV export.
#include <gtest/gtest.h>

#include "measure/csv.h"
#include "measure/report.h"
#include "measure/single_query.h"
#include "measure/web_study.h"

namespace doxlab::measure {
namespace {

/// Small but non-trivial shared testbed (built once; studies are
/// independent because every measurement warms its own sessions).
class MeasureFixture : public ::testing::Test {
 protected:
  static Testbed& testbed() {
    static Testbed* instance = [] {
      TestbedConfig config;
      config.seed = 7;
      config.population.verified_only = true;
      config.population.verified_dox = 18;
      return new Testbed(config);
    }();
    return *instance;
  }

  static std::vector<SingleQueryRecord>& single_query_records() {
    static std::vector<SingleQueryRecord> records = [] {
      SingleQueryConfig config;
      config.repetitions = 1;
      SingleQueryStudy study(testbed(), config);
      return study.run();
    }();
    return records;
  }

  static std::vector<WebRecord>& web_records() {
    static std::vector<WebRecord> records = [] {
      WebStudyConfig config;
      config.max_resolvers = 4;
      config.pages = {"wikipedia.org", "facebook.com", "youtube.com"};
      WebStudy study(testbed(), config);
      return study.run();
    }();
    return records;
  }

  static std::vector<std::string> vp_names() {
    std::vector<std::string> names;
    for (auto& vp : testbed().vantage_points()) names.push_back(vp->name);
    return names;
  }

  static double median_ms(dox::DnsProtocol protocol, bool handshake) {
    std::vector<double> values;
    for (const auto& r : single_query_records()) {
      if (!r.success || r.protocol != protocol) continue;
      values.push_back(to_ms(handshake ? r.handshake_time : r.resolve_time));
    }
    return stats::median(values).value_or(0);
  }
};

TEST_F(MeasureFixture, TestbedHasSixVantagePointsAcrossContinents) {
  EXPECT_EQ(testbed().vantage_points().size(), 6u);
  std::set<net::Continent> continents;
  for (auto& vp : testbed().vantage_points()) continents.insert(vp->continent);
  EXPECT_EQ(continents.size(), 6u);
}

TEST_F(MeasureFixture, StudyProducesRecordsForAllCombinations) {
  const auto& records = single_query_records();
  // 6 VPs x (scaled verified set) x 5 protocols x 1 rep. The builder
  // rounds per-continent quotas, so use the actual population size.
  EXPECT_EQ(records.size(),
            6u * testbed().population().verified.size() * 5u);
  int successes = 0;
  for (const auto& r : records) successes += r.success;
  // Resolvers drop ~0.2% of queries; the overwhelming majority succeed.
  EXPECT_GT(successes, static_cast<int>(records.size() * 95 / 100));
}

TEST_F(MeasureFixture, HandshakeRelationshipsMatchPaper) {
  const double tcp = median_ms(dox::DnsProtocol::kDoTcp, true);
  const double doq = median_ms(dox::DnsProtocol::kDoQ, true);
  const double dot = median_ms(dox::DnsProtocol::kDoT, true);
  const double doh = median_ms(dox::DnsProtocol::kDoH, true);
  // Fig. 2a: DoQ ~ DoTCP (1 RTT), DoT ~ DoH ~ 2x (2 RTT).
  EXPECT_NEAR(doq / tcp, 1.0, 0.2);
  EXPECT_NEAR(dot / doh, 1.0, 0.15);
  EXPECT_NEAR(doh / doq, 2.0, 0.35);
}

TEST_F(MeasureFixture, ResolveTimesSimilarAcrossProtocols) {
  // Fig. 2b: cached resolve times are protocol-independent.
  const double base = median_ms(dox::DnsProtocol::kDoUdp, false);
  for (dox::DnsProtocol protocol : dox::kAllProtocols) {
    EXPECT_NEAR(median_ms(protocol, false) / base, 1.0, 0.15)
        << protocol_name(protocol);
  }
}

TEST_F(MeasureFixture, SingleQueryTotalsMatchPaperRatios) {
  // §3.1 takeaway: DoQ ~33% faster than DoT/DoH for the full exchange
  // (handshake + resolve); DoQ trails DoUDP by ~50%, DoT/DoH by ~66%.
  auto total = [&](dox::DnsProtocol p) {
    return median_ms(p, true) + median_ms(p, false);
  };
  const double udp = total(dox::DnsProtocol::kDoUdp);
  const double doq = total(dox::DnsProtocol::kDoQ);
  const double doh = total(dox::DnsProtocol::kDoH);
  EXPECT_NEAR((doh - doq) / doh, 0.33, 0.10);  // DoQ vs DoH improvement
  EXPECT_NEAR((doq - udp) / udp, 1.0, 0.35);   // DoQ ~2x DoUDP (1 extra RTT)
}

TEST_F(MeasureFixture, Table1ShapeHolds) {
  auto rows = table1_sizes(single_query_records());
  ASSERT_EQ(rows.size(), 5u);
  std::map<dox::DnsProtocol, Table1Row> by_protocol;
  for (const auto& row : rows) by_protocol[row.protocol] = row;
  EXPECT_EQ(by_protocol[dox::DnsProtocol::kDoUdp].total_bytes, 122);
  EXPECT_EQ(by_protocol[dox::DnsProtocol::kDoUdp].query_bytes, 59);
  EXPECT_EQ(by_protocol[dox::DnsProtocol::kDoUdp].response_bytes, 63);
  EXPECT_EQ(by_protocol[dox::DnsProtocol::kDoTcp].handshake_c2r, 72);
  // DoQ handshake >= 2x DoH handshake (QUIC padding).
  EXPECT_GE(by_protocol[dox::DnsProtocol::kDoQ].handshake_c2r +
                by_protocol[dox::DnsProtocol::kDoQ].handshake_r2c,
            2 * (by_protocol[dox::DnsProtocol::kDoH].handshake_c2r +
                 by_protocol[dox::DnsProtocol::kDoH].handshake_r2c));
  // Total ordering of Table 1.
  EXPECT_LT(by_protocol[dox::DnsProtocol::kDoUdp].total_bytes,
            by_protocol[dox::DnsProtocol::kDoTcp].total_bytes);
  EXPECT_LT(by_protocol[dox::DnsProtocol::kDoTcp].total_bytes,
            by_protocol[dox::DnsProtocol::kDoT].total_bytes);
  EXPECT_LT(by_protocol[dox::DnsProtocol::kDoT].total_bytes,
            by_protocol[dox::DnsProtocol::kDoH].total_bytes);
  EXPECT_LT(by_protocol[dox::DnsProtocol::kDoH].total_bytes,
            by_protocol[dox::DnsProtocol::kDoQ].total_bytes);
}

TEST_F(MeasureFixture, ProtocolMixMatchesPopulation) {
  auto mix = protocol_mix(single_query_records());
  // All TLS 1.3-capable resolvers resume; nobody does 0-RTT.
  EXPECT_GT(mix.resumption_pct, 95.0);
  EXPECT_EQ(mix.zero_rtt_pct, 0.0);
  EXPECT_GT(mix.quic_version_pct["v1"], 70.0);
  EXPECT_GT(mix.doq_alpn_pct["doq-i02"], 60.0);
}

TEST_F(MeasureFixture, WebStudyRecordsCompleteAndPlausible) {
  const auto& records = web_records();
  // 6 VPs x 4 resolvers x 5 protocols x 3 pages x 4 loads.
  EXPECT_EQ(records.size(), 6u * 4u * 5u * 3u * 4u);
  int successes = 0;
  for (const auto& r : records) {
    successes += r.success;
    if (r.success) {
      EXPECT_GT(r.fcp, 0);
      EXPECT_GE(r.plt, r.fcp);
    }
  }
  EXPECT_GT(successes, static_cast<int>(records.size() * 9 / 10));
}

TEST_F(MeasureFixture, WebPltOrderingMatchesPaper) {
  auto report = fig3_relative(web_records());
  auto median_rel = [&](dox::DnsProtocol p) {
    return stats::median(report.plt_rel[p]).value_or(0);
  };
  // Fig. 3b: DoQ degrades least; DoT (with the dnsproxy bug) is the worst
  // encrypted protocol.
  EXPECT_LT(median_rel(dox::DnsProtocol::kDoQ),
            median_rel(dox::DnsProtocol::kDoH));
  EXPECT_LE(median_rel(dox::DnsProtocol::kDoH),
            median_rel(dox::DnsProtocol::kDoT) + 0.02);
  // Everything is slower than DoUDP in the median.
  EXPECT_GT(median_rel(dox::DnsProtocol::kDoQ), 0.0);
}

TEST_F(MeasureFixture, Fig4AmortizationAcrossPages) {
  auto cells = fig4_cells(web_records(), vp_names());
  // Median DoUDP advantage over DoQ shrinks with page complexity
  // (aggregate across VPs: simple = wikipedia, complex = youtube).
  std::vector<double> simple, complex_page;
  for (const auto& cell : cells) {
    for (double v : cell.doudp_rel) {
      if (cell.page == "wikipedia.org") simple.push_back(v);
      if (cell.page == "youtube.com") complex_page.push_back(v);
    }
  }
  const double simple_med = stats::median(simple).value_or(0);
  const double complex_med = stats::median(complex_page).value_or(0);
  // DoUDP is faster (negative), and notably more so on the simple page.
  EXPECT_LT(simple_med, 0.0);
  EXPECT_GT(complex_med, simple_med + 0.02);
}

TEST_F(MeasureFixture, ReportsRenderNonEmpty) {
  auto rows = table1_sizes(single_query_records());
  EXPECT_NE(render_table1(rows, &web_records()).find("DoQ"),
            std::string::npos);
  auto fig2 = fig2_handshake_resolve(single_query_records(), vp_names());
  EXPECT_EQ(fig2.rows.size(), 7u);  // Total + 6 VPs
  EXPECT_NE(render_fig2(fig2).find("Total"), std::string::npos);
  EXPECT_NE(render_mix(protocol_mix(single_query_records())).find("TLS"),
            std::string::npos);
  EXPECT_NE(render_fig3(fig3_relative(web_records())).find("Quantile"),
            std::string::npos);
  auto cells = fig4_cells(web_records(), vp_names());
  EXPECT_FALSE(cells.empty());
  EXPECT_NE(render_fig4(cells, vp_names()).find("wikipedia"),
            std::string::npos);
}

TEST_F(MeasureFixture, CsvExportsParseableLines) {
  auto sq = single_query_csv(single_query_records());
  auto web = web_csv(web_records());
  // Header + one line per record.
  EXPECT_EQ(std::count(sq.begin(), sq.end(), '\n'),
            static_cast<long>(single_query_records().size() + 1));
  EXPECT_EQ(std::count(web.begin(), web.end(), '\n'),
            static_cast<long>(web_records().size() + 1));
  EXPECT_NE(sq.find("DoQ"), std::string::npos);
  EXPECT_NE(web.find("wikipedia.org"), std::string::npos);
}

}  // namespace
}  // namespace doxlab::measure
