// Fault-injection matrix for the typed failure taxonomy: every injected
// fault must surface as its exact util::ErrorClass, the transport's
// ResultHandler must fire exactly once, and the phase timeline must carry a
// terminal kError mark. Also covers the pool-level REFUSED policy: an
// rcode-REFUSED answer walks to the next candidate without burning an
// attempt from the max_attempts budget.
#include <gtest/gtest.h>

#include "dox/transport.h"
#include "engine/upstream_pool.h"
#include "net/network.h"
#include "quic/server.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"
#include "tls/wire.h"

namespace doxlab::dox {
namespace {

using net::Continent;
using net::Endpoint;
using net::IpAddress;

class FaultFixture : public ::testing::Test {
 protected:
  FaultFixture()
      : network_(sim_, Rng(17)),
        client_host_(network_.add_host("vantage",
                                       IpAddress::from_octets(10, 1, 0, 1),
                                       {50.11, 8.68}, Continent::kEurope)),
        faulty_host_(network_.add_host("faulty",
                                       IpAddress::from_octets(10, 9, 0, 1),
                                       {48.86, 2.35}, Continent::kEurope)),
        udp_(client_host_),
        tcp_(client_host_),
        faulty_udp_(faulty_host_),
        faulty_tcp_(faulty_host_) {
    network_.set_loss_rate(0.0);
    network_.set_path_override(client_host_.address(),
                               faulty_host_.address(), from_ms(10));
  }

  TransportDeps deps() {
    TransportDeps d;
    d.sim = &sim_;
    d.udp = &udp_;
    d.tcp = &tcp_;
    d.tickets = &tickets_;
    d.doq_cache = &doq_cache_;
    return d;
  }

  TransportOptions faulty_options(DnsProtocol protocol) {
    TransportOptions opts;
    opts.resolver = Endpoint{faulty_host_.address(), default_port(protocol)};
    return opts;
  }

  /// Starts an unresponsive-but-reachable resolver: handshakes succeed,
  /// every DNS query is silently dropped.
  resolver::DoxResolver& start_blackhole_resolver() {
    resolver::ResolverProfile profile;
    profile.name = "blackhole";
    profile.address = IpAddress::from_octets(10, 2, 0, 1);
    profile.location = {52.37, 4.90};
    profile.secret = 0xDEAD;
    profile.supports_doh3 = true;
    profile.drop_probability = 1.0;
    resolver_ = std::make_unique<resolver::DoxResolver>(network_, profile,
                                                        Rng(7));
    network_.set_path_override(client_host_.address(), profile.address,
                               from_ms(10));
    return *resolver_;
  }

  /// Starts a healthy resolver (the pool's fallback target).
  resolver::DoxResolver& start_healthy_resolver() {
    resolver::ResolverProfile profile;
    profile.name = "healthy";
    profile.address = IpAddress::from_octets(10, 2, 0, 2);
    profile.location = {52.37, 4.90};
    profile.secret = 0xBEEF;
    profile.drop_probability = 0.0;
    resolver_ = std::make_unique<resolver::DoxResolver>(network_, profile,
                                                        Rng(8));
    network_.set_path_override(client_host_.address(), profile.address,
                               from_ms(10));
    return *resolver_;
  }

  /// Binds a UDP responder on the faulty host that answers every query
  /// with rcode REFUSED (a resolver that is up but declines service).
  void start_refused_responder(std::uint16_t port = 53) {
    refuser_socket_ = faulty_udp_.bind(port);
    refuser_socket_->on_datagram([this](const Endpoint& from,
                                        util::Buffer payload) {
      auto query = dns::Message::decode(payload);
      if (!query || query->qr || query->questions.empty()) return;
      dns::Message response;
      response.id = query->id;
      response.qr = true;
      response.ra = true;
      response.rcode = dns::RCode::kRefused;
      response.questions = query->questions;
      refuser_socket_->send_to(from, response.encode());
    });
  }

  static dns::Question question(const std::string& name) {
    return dns::Question{dns::DnsName::parse(name), dns::RRType::kA,
                         dns::RRClass::kIN};
  }

  struct Completion {
    int calls = 0;
    QueryResult result;
  };

  /// Issues one query, runs the simulation for `wait`, then keeps running
  /// to catch any (forbidden) second handler invocation.
  void run_query(DnsTransport& transport, Completion& completion,
                 SimTime wait = 30 * kSecond) {
    transport.resolve(question("example.com"), [&completion](QueryResult r) {
      ++completion.calls;
      completion.result = std::move(r);
    });
    sim_.run_until(sim_.now() + wait);
    sim_.run_until(sim_.now() + 10 * kSecond);  // late-event double-fire sweep
  }

  /// Asserts the matrix invariants for one (protocol, fault) cell.
  void expect_failure(const Completion& completion, util::ErrorClass expected,
                      const std::string& context) {
    EXPECT_EQ(completion.calls, 1) << context << ": handler invocations";
    EXPECT_FALSE(completion.result.ok()) << context;
    EXPECT_EQ(completion.result.error_class(), expected)
        << context << ": got " << completion.result.error();
    EXPECT_TRUE(completion.result.timeline.has(QueryPhase::kSubmit))
        << context;
    EXPECT_TRUE(completion.result.timeline.has(QueryPhase::kError))
        << context;
    EXPECT_FALSE(completion.result.timeline.has(QueryPhase::kResponse))
        << context;
  }

  sim::Simulator sim_;
  net::Network network_;
  net::Host& client_host_;
  net::Host& faulty_host_;
  net::UdpStack udp_;
  tcp::TcpStack tcp_;
  net::UdpStack faulty_udp_;
  tcp::TcpStack faulty_tcp_;
  tls::TicketStore tickets_;
  DoqSessionCache doq_cache_;
  std::unique_ptr<resolver::DoxResolver> resolver_;
  std::unique_ptr<net::UdpSocket> refuser_socket_;
  std::unique_ptr<quic::QuicServer> quic_server_;
  std::vector<std::shared_ptr<tcp::TcpConnection>> accepted_;
};

// --------------------------------------------------- fault: query black hole

// A reachable resolver that never answers DNS queries: every protocol's
// query deadline fires and classifies as kTimeout with the shared detail.
TEST_F(FaultFixture, UnresponsiveResolverTimesOutOnEveryProtocol) {
  resolver::DoxResolver& resolver = start_blackhole_resolver();
  for (DnsProtocol protocol : kAllProtocols) {
    TransportOptions opts;
    opts.resolver =
        Endpoint{resolver.profile().address, default_port(protocol)};
    auto transport = make_transport(protocol, deps(), opts);
    Completion completion;
    run_query(*transport, completion);
    expect_failure(completion, util::ErrorClass::kTimeout,
                   std::string(protocol_name(protocol)));
    EXPECT_EQ(completion.result.error().detail, util::kQueryDeadlineDetail)
        << protocol_name(protocol);
  }
}

// ------------------------------------------------------------ fault: TCP RST

// A host that RSTs every SYN (no listener + refuse_unbound): the three
// TCP-based transports classify as kConnRefused.
TEST_F(FaultFixture, RstToSynClassifiesAsConnRefused) {
  faulty_tcp_.set_refuse_unbound(true);
  for (DnsProtocol protocol :
       {DnsProtocol::kDoTcp, DnsProtocol::kDoT, DnsProtocol::kDoH}) {
    auto transport = make_transport(protocol, deps(),
                                    faulty_options(protocol));
    Completion completion;
    run_query(*transport, completion);
    expect_failure(completion, util::ErrorClass::kConnRefused,
                   std::string(protocol_name(protocol)));
  }
}

// ---------------------------------------------------------- fault: TLS alert

// A TCP server that answers the ClientHello with a well-framed TLS record
// whose handshake body is garbage: the TLS session aborts with an alert and
// DoT/DoH classify as kTlsAlert.
TEST_F(FaultFixture, GarbageServerHelloClassifiesAsTlsAlert) {
  for (DnsProtocol protocol : {DnsProtocol::kDoT, DnsProtocol::kDoH}) {
    tcp::TcpListener& listener =
        faulty_tcp_.listen(default_port(protocol));
    listener.on_accept([this](const std::shared_ptr<tcp::TcpConnection>& c) {
      accepted_.push_back(c);
      std::weak_ptr<tcp::TcpConnection> weak = c;
      c->on_data([weak](std::span<const std::uint8_t>) {
        // Record type 22 (handshake), length 2: too short for the u8 type +
        // u24 length of a handshake message -> "malformed handshake record".
        if (auto conn = weak.lock()) {
          conn->send(std::vector<std::uint8_t>{22, 0x03, 0x03, 0x00, 0x02,
                                               0xAB, 0xCD});
        }
      });
    });
    auto transport = make_transport(protocol, deps(),
                                    faulty_options(protocol));
    Completion completion;
    run_query(*transport, completion);
    expect_failure(completion, util::ErrorClass::kTlsAlert,
                   std::string(protocol_name(protocol)));
  }
}

// ------------------------------------------- fault: QUIC CONNECTION_CLOSE

// A QUIC server that completes the handshake and then closes with a nonzero
// application error: DoQ classifies as kQuicTransportError.
TEST_F(FaultFixture, ServerConnectionCloseClassifiesAsQuicTransportError) {
  quic::QuicConfig config;
  config.is_server = true;
  config.alpn = {"doq-i02"};
  config.ticket_secret = 0x5151;
  quic_server_ = std::make_unique<quic::QuicServer>(
      sim_, faulty_udp_, default_port(DnsProtocol::kDoQ), config);
  quic_server_->on_accept(
      [](const std::shared_ptr<quic::QuicConnection>& conn,
         const Endpoint&) {
        std::weak_ptr<quic::QuicConnection> weak = conn;
        conn->set_on_handshake_complete(
            [weak](const quic::QuicHandshakeInfo&) {
              if (auto c = weak.lock()) c->close(0x0A, "server refused");
            });
      });
  auto transport = make_transport(DnsProtocol::kDoQ, deps(),
                                  faulty_options(DnsProtocol::kDoQ));
  Completion completion;
  run_query(*transport, completion);
  expect_failure(completion, util::ErrorClass::kQuicTransportError, "DoQ");
}

// ----------------------------------------------- fault: garbage stream bytes

// A TCP server that replies with a garbage DNS length prefix (too short to
// hold a DNS header): the bounded StreamMessageReader poisons itself and
// DoTCP classifies as kProtocolError.
TEST_F(FaultFixture, GarbageLengthPrefixClassifiesAsProtocolError) {
  tcp::TcpListener& listener =
      faulty_tcp_.listen(default_port(DnsProtocol::kDoTcp));
  listener.on_accept([this](const std::shared_ptr<tcp::TcpConnection>& c) {
    accepted_.push_back(c);
    std::weak_ptr<tcp::TcpConnection> weak = c;
    c->on_data([weak](std::span<const std::uint8_t>) {
      // Prefix announces a 4-byte "message" — below the 12-byte DNS header.
      if (auto conn = weak.lock()) {
        conn->send(
            std::vector<std::uint8_t>{0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF});
      }
    });
  });
  auto transport = make_transport(DnsProtocol::kDoTcp, deps(),
                                  faulty_options(DnsProtocol::kDoTcp));
  Completion completion;
  run_query(*transport, completion);
  expect_failure(completion, util::ErrorClass::kProtocolError, "DoTCP");
}

// -------------------------------------------------- fault: REFUSED (rcode)

// Pool policy: an rcode-REFUSED answer is a transport success (the upstream
// is alive) but a resolution failure — the pool must walk to the next
// candidate WITHOUT burning an attempt from the max_attempts budget. With
// max_attempts=1 the fallback succeeds only if the REFUSED attempt was
// refunded.
TEST_F(FaultFixture, RefusedAnswerWalksPastWithoutBurningAttempt) {
  start_refused_responder();
  resolver::DoxResolver& healthy = start_healthy_resolver();

  engine::UpstreamConfig refuser;
  refuser.name = "refuser";
  refuser.address = faulty_host_.address();
  refuser.protocols = {DnsProtocol::kDoUdp};
  engine::UpstreamConfig fallback;
  fallback.name = "healthy";
  fallback.address = healthy.profile().address;
  fallback.protocols = {DnsProtocol::kDoUdp};

  engine::PoolConfig pool_config;
  pool_config.max_attempts = 1;
  engine::UpstreamPool pool(sim_, deps(), {refuser, fallback}, pool_config);

  Completion completion;
  pool.resolve(question("example.com"), [&completion](QueryResult r) {
    ++completion.calls;
    completion.result = std::move(r);
  });
  sim_.run_until(sim_.now() + 30 * kSecond);

  EXPECT_EQ(completion.calls, 1);
  EXPECT_TRUE(completion.result.ok())
      << "fallback after REFUSED failed: " << completion.result.error();
  EXPECT_EQ(completion.result.response.rcode, dns::RCode::kNoError);
  EXPECT_EQ(pool.error_counts().count(util::ErrorClass::kRcode), 1u);
  EXPECT_EQ(pool.failovers(), 1u);
  // REFUSED keeps the upstream healthy: it answered, it just declined.
  for (const engine::UpstreamHealth& health : pool.health()) {
    EXPECT_EQ(health.consecutive_failures, 0) << health.name;
    EXPECT_TRUE(health.healthy) << health.name;
  }
}

// Every candidate answering REFUSED exhausts the pool with a kRcode
// classification (not a timeout, not a generic failure).
TEST_F(FaultFixture, RefusedEverywhereExhaustsWithRcodeClass) {
  start_refused_responder();

  engine::UpstreamConfig refuser;
  refuser.name = "refuser";
  refuser.address = faulty_host_.address();
  refuser.protocols = {DnsProtocol::kDoUdp};

  engine::UpstreamPool pool(sim_, deps(), {refuser}, engine::PoolConfig{});

  Completion completion;
  pool.resolve(question("example.com"), [&completion](QueryResult r) {
    ++completion.calls;
    completion.result = std::move(r);
  });
  sim_.run_until(sim_.now() + 60 * kSecond);

  EXPECT_EQ(completion.calls, 1);
  EXPECT_FALSE(completion.result.ok());
  EXPECT_EQ(completion.result.error_class(), util::ErrorClass::kRcode);
  EXPECT_EQ(completion.result.error().rcode,
            static_cast<std::uint8_t>(dns::RCode::kRefused));
  EXPECT_GE(pool.error_counts().count(util::ErrorClass::kRcode), 1u);
  EXPECT_EQ(pool.exhausted(), 1u);
}

}  // namespace
}  // namespace doxlab::dox
