# Byte-fidelity pin for the zero-copy byte path: runs the fig2 experiment
# in a scratch directory and asserts the CSV it writes is bit-identical to
# the committed baseline hash. Same seeds must keep producing the same wire
# traces and therefore the same timings, no matter how the buffers under
# them are pooled or framed.
#
# Invoked by ctest as:
#   cmake -DFIG2_BIN=... -DWORK_DIR=... -DEXPECTED_SHA256=... -P this_file
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(COMMAND "${FIG2_BIN}" --csv
                WORKING_DIRECTORY "${WORK_DIR}"
                RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig2_single_query --csv failed (exit ${rc})")
endif()
file(SHA256 "${WORK_DIR}/fig2_single_query.csv" actual)
if(NOT actual STREQUAL "${EXPECTED_SHA256}")
  message(FATAL_ERROR "fig2_single_query.csv drifted: sha256 ${actual} != "
                      "pinned ${EXPECTED_SHA256} — the byte path changed "
                      "observable wire behaviour")
endif()
