// Unit tests for the shared congestion-control module: NewReno slow
// start / avoidance / recovery-episode semantics, CUBIC growth and fast
// convergence, RTO collapse, and the seed-faithful legacy mode the default
// TCP path pins its byte-identical artifacts on.
#include <gtest/gtest.h>

#include "cc/cc.h"

namespace doxlab::cc {
namespace {

constexpr std::size_t kMss = 1460;

CcConfig newreno_config() {
  CcConfig c;
  c.algorithm = CcAlgorithm::kNewReno;
  c.mss = kMss;
  return c;
}

TEST(CongestionController, StartsAtInitialWindowInSlowStart) {
  CongestionController cc(newreno_config());
  EXPECT_EQ(cc.cwnd(), 10 * kMss);
  EXPECT_TRUE(cc.in_slow_start());
  EXPECT_EQ(cc.phase(), CcPhase::kSlowStart);
}

TEST(CongestionController, SlowStartGrowsOneMssPerMssAcked) {
  CongestionController cc(newreno_config());
  const std::size_t before = cc.cwnd();
  cc.on_ack(kMss, /*sent_at=*/0, /*now=*/from_ms(20));
  EXPECT_EQ(cc.cwnd(), before + kMss);
  // A jumbo ack is capped at 2 MSS of growth (RFC 9002 appendix rationale).
  cc.on_ack(10 * kMss, 0, from_ms(40));
  EXPECT_EQ(cc.cwnd(), before + kMss + 2 * kMss);
}

TEST(CongestionController, LossHalvesWindowAndEntersRecovery) {
  CongestionController cc(newreno_config());
  const std::size_t before = cc.cwnd();
  EXPECT_TRUE(cc.on_loss(/*sent_at=*/from_ms(5), /*now=*/from_ms(30)));
  EXPECT_EQ(cc.cwnd(), before / 2);
  EXPECT_EQ(cc.ssthresh(), before / 2);
  EXPECT_EQ(cc.phase(), CcPhase::kRecovery);
  EXPECT_EQ(cc.loss_episodes(), 1u);
}

TEST(CongestionController, OneReductionPerRecoveryEpisode) {
  CongestionController cc(newreno_config());
  ASSERT_TRUE(cc.on_loss(from_ms(5), from_ms(30)));
  const std::size_t reduced = cc.cwnd();
  // Losses of other packets from the same pre-recovery flight: no-ops.
  EXPECT_FALSE(cc.on_loss(from_ms(10), from_ms(31)));
  EXPECT_FALSE(cc.on_loss(from_ms(29), from_ms(35)));
  EXPECT_EQ(cc.cwnd(), reduced);
  EXPECT_EQ(cc.loss_episodes(), 1u);
  // A loss of data sent AFTER recovery began starts a new episode.
  EXPECT_TRUE(cc.on_loss(from_ms(40), from_ms(60)));
  EXPECT_EQ(cc.loss_episodes(), 2u);
}

TEST(CongestionController, AckOfPostRecoveryDataExitsRecovery) {
  CongestionController cc(newreno_config());
  ASSERT_TRUE(cc.on_loss(from_ms(5), from_ms(30)));
  // Acks for pre-recovery data repair the episode without growth.
  const std::size_t during = cc.cwnd();
  cc.on_ack(kMss, from_ms(10), from_ms(50));
  EXPECT_EQ(cc.cwnd(), during);
  EXPECT_EQ(cc.phase(), CcPhase::kRecovery);
  // An ack of data sent after the reduction ends the episode.
  cc.on_ack(kMss, from_ms(40), from_ms(70));
  EXPECT_NE(cc.phase(), CcPhase::kRecovery);
}

TEST(CongestionController, AvoidanceGrowsOneMssPerWindow) {
  CongestionController cc(newreno_config());
  ASSERT_TRUE(cc.on_loss(from_ms(5), from_ms(30)));
  cc.on_ack(kMss, from_ms(40), from_ms(50));  // exit recovery
  ASSERT_EQ(cc.phase(), CcPhase::kCongestionAvoidance);
  const std::size_t start = cc.cwnd();
  // One full window of acked bytes grows the window by exactly one MSS.
  std::size_t acked = 0;
  SimTime now = from_ms(60);
  while (acked < start) {
    cc.on_ack(kMss, from_ms(41), now);
    acked += kMss;
    now += from_ms(1);
  }
  EXPECT_GE(cc.cwnd(), start + kMss);
  EXPECT_LT(cc.cwnd(), start + 3 * kMss);
}

TEST(CongestionController, RtoCollapsesToMinWindowAndHalvesSsthresh) {
  CongestionController cc(newreno_config());
  const std::size_t before = cc.cwnd();
  cc.on_rto(from_ms(100));
  EXPECT_EQ(cc.cwnd(), 2 * kMss);  // min_window_segments = 2
  EXPECT_EQ(cc.ssthresh(), before / 2);
  EXPECT_EQ(cc.loss_episodes(), 1u);
}

TEST(CongestionController, PersistentCongestionMatchesRto) {
  CongestionController a(newreno_config());
  CongestionController b(newreno_config());
  a.on_rto(from_ms(100));
  b.on_persistent_congestion(from_ms(100));
  EXPECT_EQ(a.cwnd(), b.cwnd());
  EXPECT_EQ(a.ssthresh(), b.ssthresh());
}

TEST(CongestionController, WindowNeverDropsBelowFloor) {
  CongestionController cc(newreno_config());
  for (int i = 0; i < 20; ++i) {
    cc.on_rto(from_ms(100 + i));
    cc.on_loss(from_ms(100 + i), from_ms(101 + i));
  }
  EXPECT_GE(cc.cwnd(), 2 * kMss);
}

TEST(CongestionController, TraceRecordsPhaseTransitions) {
  CcConfig config = newreno_config();
  config.trace = true;
  CongestionController cc(config);
  cc.on_ack(kMss, 0, from_ms(20));
  cc.on_loss(from_ms(5), from_ms(30));
  cc.on_ack(kMss, from_ms(40), from_ms(50));
  const auto& trace = cc.trace();
  ASSERT_GE(trace.size(), 3u);
  bool saw_slow_start = false;
  bool saw_recovery = false;
  for (const auto& point : trace) {
    saw_slow_start |= point.phase == CcPhase::kSlowStart;
    saw_recovery |= point.phase == CcPhase::kRecovery;
  }
  EXPECT_TRUE(saw_slow_start);
  EXPECT_TRUE(saw_recovery);
}

// ------------------------------------------------------------------- CUBIC

CcConfig cubic_config() {
  CcConfig c;
  c.algorithm = CcAlgorithm::kCubic;
  c.mss = kMss;
  return c;
}

TEST(CongestionController, CubicReducesByBetaOnLoss) {
  CongestionController cc(cubic_config());
  const std::size_t before = cc.cwnd();
  ASSERT_TRUE(cc.on_loss(from_ms(5), from_ms(30)));
  EXPECT_EQ(cc.cwnd(),
            static_cast<std::size_t>(static_cast<double>(before) * 0.7));
}

TEST(CongestionController, CubicRegrowsTowardWmaxAfterLoss) {
  CongestionController cc(cubic_config());
  ASSERT_TRUE(cc.on_loss(from_ms(5), from_ms(30)));
  cc.on_ack(kMss, from_ms(40), from_ms(50));  // exit recovery, start epoch
  const std::size_t reduced = cc.cwnd();
  // Feed acks over simulated seconds: the cubic function must regrow the
  // window, capped at one MSS per ack.
  SimTime now = from_ms(60);
  std::size_t last = reduced;
  for (int i = 0; i < 400; ++i) {
    cc.on_ack(kMss, from_ms(41), now);
    EXPECT_LE(cc.cwnd(), last + kMss);  // per-ack growth cap
    last = cc.cwnd();
    now += from_ms(10);
  }
  EXPECT_GT(cc.cwnd(), reduced + 2 * kMss);
}

// ----------------------------------------------------- legacy (seed) mode

CcConfig legacy_config() {
  CcConfig c;
  c.algorithm = CcAlgorithm::kLegacySlowStart;
  c.mss = kMss;
  return c;
}

TEST(CongestionController, LegacyGrowsOnEveryAck) {
  CongestionController cc(legacy_config());
  const std::size_t before = cc.cwnd();
  cc.on_ack(kMss, 0, from_ms(20));
  EXPECT_EQ(cc.cwnd(), before + kMss);
  // Still grows while nominally "in recovery" — the seed model had no
  // episode bookkeeping at all.
  cc.on_rto(from_ms(30));
  cc.on_ack(kMss, from_ms(5), from_ms(40));
  EXPECT_EQ(cc.cwnd(), kMss + kMss);
}

TEST(CongestionController, LegacyCollapsesToExactlyOneSegment) {
  CongestionController cc(legacy_config());
  cc.on_rto(from_ms(100));
  EXPECT_EQ(cc.cwnd(), kMss);
  // on_loss routes to the same collapse (the seed had no fast recovery).
  CongestionController cc2(legacy_config());
  EXPECT_TRUE(cc2.on_loss(from_ms(5), from_ms(30)));
  EXPECT_EQ(cc2.cwnd(), kMss);
}

TEST(CongestionController, LegacyNeverSetsSsthresh) {
  CongestionController cc(legacy_config());
  const std::size_t unset = cc.ssthresh();
  cc.on_rto(from_ms(100));
  cc.on_ack(kMss, from_ms(5), from_ms(120));
  EXPECT_EQ(cc.ssthresh(), unset);
  EXPECT_EQ(cc.phase(), CcPhase::kSlowStart);
}

TEST(CongestionController, LegacyDisablesFastRecovery) {
  EXPECT_FALSE(CongestionController(legacy_config()).fast_recovery_enabled());
  EXPECT_TRUE(CongestionController(newreno_config()).fast_recovery_enabled());
  EXPECT_TRUE(CongestionController(cubic_config()).fast_recovery_enabled());
}

}  // namespace
}  // namespace doxlab::cc
