// Property-based tests: randomized round-trip, robustness and invariant
// sweeps across the wire codecs, the transport state machines and the
// statistics — the "no input crashes, every encode decodes, order never
// inverts" guarantees that unit examples cannot cover.
#include <gtest/gtest.h>

#include <algorithm>

#include "dns/message.h"
#include "h2/hpack.h"
#include "net/network.h"
#include "net/udp.h"
#include "quic/wire.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "tcp/tcp.h"
#include "tls/session.h"
#include "util/rng.h"

namespace doxlab {
namespace {

// ------------------------------------------------------------ DNS codec

dns::DnsName random_name(Rng& rng) {
  const int labels = static_cast<int>(rng.uniform_int(1, 5));
  std::vector<std::string> parts;
  for (int i = 0; i < labels; ++i) {
    const int len = static_cast<int>(rng.uniform_int(1, 20));
    std::string label;
    for (int j = 0; j < len; ++j) {
      label.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
    }
    parts.push_back(std::move(label));
  }
  std::string joined;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) joined.push_back('.');
    joined += parts[i];
  }
  return dns::DnsName::parse(joined);
}

dns::Message random_message(Rng& rng) {
  dns::Message m;
  m.id = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
  m.qr = rng.chance(0.5);
  m.rd = rng.chance(0.5);
  m.ra = rng.chance(0.5);
  m.tc = rng.chance(0.1);
  m.rcode = rng.chance(0.8) ? dns::RCode::kNoError : dns::RCode::kNXDomain;
  const int questions = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < questions; ++i) {
    m.questions.push_back(dns::Question{
        random_name(rng),
        rng.chance(0.5) ? dns::RRType::kA : dns::RRType::kAAAA,
        dns::RRClass::kIN});
  }
  const int answers = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < answers; ++i) {
    switch (rng.uniform_int(0, 2)) {
      case 0:
        m.answers.push_back(dns::make_a(
            random_name(rng), static_cast<std::uint32_t>(
                                  rng.uniform_int(0, 86400)),
            static_cast<std::uint32_t>(rng.uniform_int(0, INT32_MAX))));
        break;
      case 1:
        m.answers.push_back(
            dns::make_cname(random_name(rng), 60, random_name(rng)));
        break;
      default: {
        const int len = static_cast<int>(rng.uniform_int(0, 600));
        m.answers.push_back(dns::make_txt(random_name(rng), 30,
                                          std::string(len, 't')));
        break;
      }
    }
  }
  if (rng.chance(0.5)) {
    m.additionals.push_back(dns::make_opt(
        static_cast<std::uint16_t>(rng.uniform_int(512, 4096))));
  }
  return m;
}

TEST(DnsProperty, EncodeDecodeRoundTripsRandomMessages) {
  Rng rng(1001);
  for (int i = 0; i < 300; ++i) {
    dns::Message m = random_message(rng);
    auto wire = m.encode();
    auto decoded = dns::Message::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    EXPECT_EQ(*decoded, m) << "iteration " << i;
  }
}

TEST(DnsProperty, CorruptedBytesNeverCrashDecoder) {
  Rng rng(1002);
  for (int i = 0; i < 500; ++i) {
    dns::Message m = random_message(rng);
    auto wire = m.encode();
    // Flip, truncate or extend.
    switch (rng.uniform_int(0, 2)) {
      case 0: {
        const std::size_t pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
        wire[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
        break;
      }
      case 1:
        wire.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(wire.size()))));
        break;
      default:
        wire.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
        break;
    }
    // Must not crash; may return nullopt or a different message.
    auto decoded = dns::Message::decode(wire);
    (void)decoded;
  }
}

TEST(DnsProperty, CompressionNeverGrowsBeyondUncompressed) {
  Rng rng(1003);
  for (int i = 0; i < 200; ++i) {
    std::vector<dns::DnsName> names;
    std::size_t uncompressed = 0;
    for (int j = 0; j < 6; ++j) {
      names.push_back(random_name(rng));
      uncompressed += names.back().wire_length();
    }
    ByteWriter w;
    dns::NameCompressor nc;
    for (const auto& name : names) nc.write(w, name);
    EXPECT_LE(w.size(), uncompressed);
    // And every name reads back.
    ByteReader r(w.view());
    for (const auto& name : names) {
      auto back = dns::read_name(r);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, name);
    }
  }
}

TEST(DnsProperty, PaddingAlwaysAlignsAndDecodes) {
  Rng rng(1004);
  for (int i = 0; i < 200; ++i) {
    dns::Message m = random_message(rng);
    const std::size_t block = static_cast<std::size_t>(
        rng.uniform_int(16, 512));
    dns::pad_to_block(m, block);
    EXPECT_EQ(m.encode().size() % block, 0u) << "block " << block;
    EXPECT_TRUE(dns::Message::decode(m.encode()).has_value());
  }
}

// ------------------------------------------------------------- QUIC codec

quic::Frame random_frame(Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0: {
      std::vector<quic::AckRange> ranges;
      std::uint64_t low = static_cast<std::uint64_t>(rng.uniform_int(0, 50));
      const int count = static_cast<int>(rng.uniform_int(1, 3));
      std::vector<quic::AckRange> ascending;
      for (int i = 0; i < count; ++i) {
        const std::uint64_t first = low;
        const std::uint64_t last =
            first + static_cast<std::uint64_t>(rng.uniform_int(0, 9));
        ascending.push_back({first, last});
        low = last + 2 + static_cast<std::uint64_t>(rng.uniform_int(0, 5));
      }
      for (auto it = ascending.rbegin(); it != ascending.rend(); ++it) {
        ranges.push_back(*it);
      }
      return quic::Frame::ack(std::move(ranges));
    }
    case 1: {
      std::vector<std::uint8_t> data(
          static_cast<std::size_t>(rng.uniform_int(0, 800)));
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      return quic::Frame::crypto(
          static_cast<std::uint64_t>(rng.uniform_int(0, 10000)),
          std::move(data));
    }
    case 2: {
      std::vector<std::uint8_t> data(
          static_cast<std::size_t>(rng.uniform_int(0, 800)));
      return quic::Frame::stream(
          static_cast<std::uint64_t>(rng.uniform_int(0, 100)) * 4,
          static_cast<std::uint64_t>(rng.uniform_int(0, 10000)),
          std::move(data), rng.chance(0.5));
    }
    case 3: {
      std::vector<std::uint8_t> token(
          static_cast<std::size_t>(rng.uniform_int(1, 64)));
      return quic::Frame::new_token(std::move(token));
    }
    case 4:
      return quic::Frame::connection_close(
          static_cast<std::uint64_t>(rng.uniform_int(0, 32)), "reason");
    default:
      return quic::Frame::ping();
  }
}

TEST(QuicProperty, PacketRoundTripsRandomFrames) {
  Rng rng(2001);
  const quic::PacketType types[] = {
      quic::PacketType::kInitial, quic::PacketType::kHandshake,
      quic::PacketType::kZeroRtt, quic::PacketType::kOneRtt};
  for (int i = 0; i < 300; ++i) {
    quic::QuicPacket p;
    p.type = types[rng.uniform_int(0, 3)];
    p.version = quic::QuicVersion::kV1;
    p.dcid = static_cast<std::uint64_t>(rng.uniform_int(0, INT32_MAX));
    p.scid = static_cast<std::uint64_t>(rng.uniform_int(0, INT32_MAX));
    p.packet_number =
        static_cast<std::uint64_t>(rng.uniform_int(0, 0xFFFF));
    if (p.type == quic::PacketType::kInitial && rng.chance(0.5)) {
      p.token.resize(static_cast<std::size_t>(rng.uniform_int(1, 48)));
    }
    const int frames = static_cast<int>(rng.uniform_int(1, 4));
    for (int j = 0; j < frames; ++j) p.frames.push_back(random_frame(rng));

    auto decoded = quic::decode_datagram(quic::encode_packet(p));
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    ASSERT_EQ(decoded->size(), 1u);
    const quic::QuicPacket& q = (*decoded)[0];
    EXPECT_EQ(q.type, p.type);
    EXPECT_EQ(q.packet_number, p.packet_number);
    ASSERT_EQ(q.frames.size(), p.frames.size());
    for (std::size_t f = 0; f < p.frames.size(); ++f) {
      EXPECT_EQ(q.frames[f].type, p.frames[f].type);
      EXPECT_EQ(q.frames[f].data, p.frames[f].data);
      EXPECT_EQ(q.frames[f].offset, p.frames[f].offset);
      EXPECT_EQ(q.frames[f].stream_id, p.frames[f].stream_id);
      EXPECT_EQ(q.frames[f].fin, p.frames[f].fin);
      EXPECT_EQ(q.frames[f].ack_ranges, p.frames[f].ack_ranges);
      EXPECT_EQ(q.frames[f].token, p.frames[f].token);
    }
  }
}

TEST(QuicProperty, CorruptedDatagramsNeverCrashDecoder) {
  Rng rng(2002);
  for (int i = 0; i < 500; ++i) {
    quic::QuicPacket p;
    p.type = quic::PacketType::kInitial;
    p.frames.push_back(random_frame(rng));
    auto wire = quic::encode_packet(p);
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
    wire[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    if (rng.chance(0.3)) {
      wire.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()))));
    }
    auto decoded = quic::decode_datagram(wire);
    (void)decoded;  // nullopt or garbage both fine; crashing is not
  }
}

TEST(QuicProperty, AckFrameCoverageMatchesRanges) {
  Rng rng(2003);
  for (int i = 0; i < 200; ++i) {
    auto frame = random_frame(rng);
    if (frame.type != quic::FrameType::kAck) continue;
    // acks(pn) must be true exactly within the ranges.
    for (const auto& range : frame.ack_ranges) {
      EXPECT_TRUE(frame.acks(range.first));
      EXPECT_TRUE(frame.acks(range.last));
      if (range.first > 0) {
        bool covered_elsewhere = false;
        for (const auto& other : frame.ack_ranges) {
          if (range.first - 1 >= other.first &&
              range.first - 1 <= other.last) {
            covered_elsewhere = true;
          }
        }
        if (!covered_elsewhere) EXPECT_FALSE(frame.acks(range.first - 1));
      }
    }
  }
}

// ----------------------------------------------------------------- HPACK

TEST(HpackProperty, RandomHeaderBlocksRoundTripAcrossRequests) {
  Rng rng(3001);
  h2::HpackEncoder encoder;
  h2::HpackDecoder decoder;
  std::vector<h2::Header> pool;
  for (int i = 0; i < 20; ++i) {
    std::string name, value;
    for (int j = 0; j < 8; ++j) {
      name.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
    }
    for (int j = 0; j < 12; ++j) {
      value.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
    }
    pool.push_back({name, value});
  }
  // Sequential blocks reusing the pool: tables must stay in sync.
  for (int round = 0; round < 50; ++round) {
    std::vector<h2::Header> block;
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < n; ++i) {
      block.push_back(pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))]);
    }
    auto encoded = encoder.encode(block);
    auto decoded = decoder.decode(encoded);
    ASSERT_TRUE(decoded.has_value()) << "round " << round;
    EXPECT_EQ(*decoded, block) << "round " << round;
  }
}

// ----------------------------------------------------------------- stats

TEST(StatsProperty, QuantilesAreMonotone) {
  Rng rng(4001);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> samples;
    const int n = static_cast<int>(rng.uniform_int(1, 500));
    for (int j = 0; j < n; ++j) {
      samples.push_back(rng.normal(0, 100));
    }
    stats::Cdf cdf(samples);
    double previous = -1e18;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
      const double value = cdf.quantile(q).value_or(previous);
      EXPECT_GE(value, previous);
      previous = value;
    }
  }
}

TEST(StatsProperty, FractionBelowInvertsQuantile) {
  Rng rng(4002);
  std::vector<double> samples;
  for (int j = 0; j < 400; ++j) samples.push_back(rng.uniform_real(0, 1000));
  stats::Cdf cdf(samples);
  for (double q = 0.1; q < 1.0; q += 0.1) {
    const double value = *cdf.quantile(q);
    // fraction_below(quantile(q)) must bracket q.
    EXPECT_NEAR(cdf.fraction_below(value), q, 0.05);
  }
}

TEST(StatsProperty, MedianBoundedByExtremes) {
  Rng rng(4003);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> samples;
    const int n = static_cast<int>(rng.uniform_int(1, 50));
    for (int j = 0; j < n; ++j) samples.push_back(rng.normal(50, 30));
    auto summary = stats::Summary::of(samples);
    EXPECT_GE(summary.median, summary.min);
    EXPECT_LE(summary.median, summary.max);
    EXPECT_GE(summary.p75, summary.p25);
    EXPECT_GE(summary.p99, summary.p90);
  }
}

// ------------------------------------------------------- TCP under stress

struct TcpSweepParam {
  double loss;
  std::size_t bytes;
};

class TcpLossSweep : public ::testing::TestWithParam<TcpSweepParam> {};

TEST_P(TcpLossSweep, ReliableDeliveryUnderLossAndReordering) {
  const auto& param = GetParam();
  sim::Simulator sim;
  net::Network network(sim, Rng(static_cast<std::uint64_t>(
                                    param.bytes * 7919 +
                                    std::llround(param.loss * 1000))));
  auto& a = network.add_host("a", net::IpAddress::from_octets(10, 7, 0, 1),
                             {50, 8}, net::Continent::kEurope);
  auto& b = network.add_host("b", net::IpAddress::from_octets(10, 7, 0, 2),
                             {51, 9}, net::Continent::kEurope);
  network.set_loss_override(a.address(), b.address(), param.loss);
  tcp::TcpStack stack_a(a);
  tcp::TcpStack stack_b(b);

  std::vector<std::uint8_t> received;
  auto& listener = stack_b.listen(80);
  listener.on_accept([&](const std::shared_ptr<tcp::TcpConnection>& conn) {
    conn->on_data([&](std::span<const std::uint8_t> d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });

  std::vector<std::uint8_t> payload(param.bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  auto conn = stack_a.connect(net::Endpoint{b.address(), 80});
  conn->send(payload);
  sim.run_until(10 * kMinute);

  ASSERT_EQ(received.size(), payload.size())
      << "loss " << param.loss << " bytes " << param.bytes;
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(
    LossByteMatrix, TcpLossSweep,
    ::testing::Values(TcpSweepParam{0.0, 1}, TcpSweepParam{0.0, 100000},
                      TcpSweepParam{0.05, 5000}, TcpSweepParam{0.05, 50000},
                      TcpSweepParam{0.15, 5000}, TcpSweepParam{0.15, 30000},
                      TcpSweepParam{0.30, 2000}, TcpSweepParam{0.30, 10000}),
    [](const auto& info) {
      return "loss" + std::to_string(int(info.param.loss * 100)) + "_bytes" +
             std::to_string(info.param.bytes);
    });

// -------------------------------------------------- TLS cert-size sweep

class TlsCertSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TlsCertSweep, ServerFlightGrowsWithChainSize) {
  const std::size_t chain = GetParam();
  std::size_t server_bytes = 0;
  bool complete = false;

  tls::TlsConfig server_config;
  server_config.is_server = true;
  server_config.alpn = {"dot"};
  server_config.ticket_secret = 5;
  server_config.certificate_chain_size = chain;

  tls::TlsSession* server_ptr = nullptr;
  tls::TlsSession* client_ptr = nullptr;
  std::vector<util::Buffer> to_server, to_client;

  tls::TlsSession::Callbacks server_callbacks;
  server_callbacks.send_transport = [&](util::Buffer bytes) {
    server_bytes += bytes.size();
    to_client.push_back(std::move(bytes));
  };
  server_callbacks.now = [] { return SimTime(0); };
  tls::TlsSession server(server_config, std::move(server_callbacks));
  server_ptr = &server;

  tls::TlsSession::Callbacks client_callbacks;
  client_callbacks.send_transport = [&](util::Buffer bytes) {
    to_server.push_back(std::move(bytes));
  };
  client_callbacks.on_handshake_complete =
      [&](const tls::HandshakeInfo&) { complete = true; };
  client_callbacks.now = [] { return SimTime(0); };
  tls::TlsSession client(
      tls::TlsConfig{.alpn = {"dot"}, .sni = "x"},
      std::move(client_callbacks));
  client_ptr = &client;

  client.start();
  for (int round = 0; round < 6; ++round) {
    auto a = std::move(to_server);
    to_server.clear();
    for (auto& bytes : a) server_ptr->on_transport_data(bytes);
    auto b = std::move(to_client);
    to_client.clear();
    for (auto& bytes : b) client_ptr->on_transport_data(bytes);
  }
  ASSERT_TRUE(complete) << "chain " << chain;
  EXPECT_GT(server_bytes, chain);          // the chain is on the wire
  EXPECT_LT(server_bytes, chain + 1500);   // plus bounded overhead
}

INSTANTIATE_TEST_SUITE_P(ChainSizes, TlsCertSweep,
                         ::testing::Values(std::size_t(800),
                                           std::size_t(1500),
                                           std::size_t(2500),
                                           std::size_t(4000),
                                           std::size_t(8000),
                                           std::size_t(12000)));

// ------------------------------------------------ simulator determinism

TEST(SimulatorProperty, RandomSchedulesExecuteInTimeOrder) {
  Rng rng(5001);
  for (int trial = 0; trial < 30; ++trial) {
    sim::Simulator sim;
    std::vector<SimTime> fired;
    const int events = static_cast<int>(rng.uniform_int(1, 200));
    for (int i = 0; i < events; ++i) {
      sim.schedule(rng.uniform_int(0, 10000),
                   [&fired, &sim] { fired.push_back(sim.now()); });
    }
    sim.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(events));
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  }
}

TEST(SimulatorProperty, IdenticalSeedsGiveIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    net::Network network(sim, Rng(seed));
    auto& a = network.add_host("a", net::IpAddress::from_octets(10, 8, 0, 1),
                               {50, 8}, net::Continent::kEurope);
    auto& b = network.add_host("b", net::IpAddress::from_octets(10, 8, 0, 2),
                               {30, 100}, net::Continent::kAsia);
    net::UdpStack ua(a), ub(b);
    auto server = ub.bind(53);
    std::vector<SimTime> arrivals;
    server->on_datagram([&](const net::Endpoint&, util::Buffer) {
      arrivals.push_back(sim.now());
    });
    auto client = ua.bind_ephemeral();
    for (int i = 0; i < 50; ++i) {
      client->send_to(net::Endpoint{b.address(), 53}, {1});
    }
    sim.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

}  // namespace
}  // namespace doxlab
