// Unit tests for the statistics module (percentiles, CDFs, relative
// differences, table rendering).
#include <gtest/gtest.h>

#include "stats/stats.h"
#include "stats/table.h"

namespace doxlab::stats {
namespace {

TEST(Percentile, EmptyInput) {
  EXPECT_FALSE(percentile({}, 50).has_value());
  EXPECT_FALSE(median({}).has_value());
}

TEST(Percentile, SingleValue) {
  EXPECT_EQ(percentile({42.0}, 0), 42.0);
  EXPECT_EQ(percentile({42.0}, 50), 42.0);
  EXPECT_EQ(percentile({42.0}, 100), 42.0);
}

TEST(Percentile, MedianOfOddAndEven) {
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Percentile, Interpolates) {
  // p25 of [10, 20, 30, 40]: rank 0.75 -> 17.5.
  EXPECT_DOUBLE_EQ(*percentile({10, 20, 30, 40}, 25), 17.5);
}

TEST(Percentile, ClampsRange) {
  EXPECT_EQ(percentile({1.0, 2.0}, -5), 1.0);
  EXPECT_EQ(percentile({1.0, 2.0}, 150), 2.0);
}

TEST(SummaryTest, ComputesAllFields) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  Summary s = Summary::of(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p90, 90.1, 0.2);
  EXPECT_NEAR(s.p99, 99.01, 0.1);
}

TEST(CdfTest, FractionBelow) {
  Cdf cdf({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(3), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(100), 1.0);
}

TEST(CdfTest, QuantileInverse) {
  Cdf cdf({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(*cdf.quantile(0), 10);
  EXPECT_DOUBLE_EQ(*cdf.quantile(0.5), 30);
  EXPECT_DOUBLE_EQ(*cdf.quantile(1), 50);
}

TEST(CdfTest, CurveIsMonotonic) {
  Cdf cdf({5, 1, 9, 3, 7, 2, 8});
  auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GT(curve[i].first, curve[i - 1].first);
  }
}

TEST(CdfTest, EmptyBehaviour) {
  Cdf cdf({});
  EXPECT_EQ(cdf.fraction_below(1), 0.0);
  EXPECT_FALSE(cdf.quantile(0.5).has_value());
  EXPECT_TRUE(cdf.curve().empty());
}

TEST(RelativeDifference, Basics) {
  EXPECT_DOUBLE_EQ(*relative_difference(100, 110), 0.10);
  EXPECT_DOUBLE_EQ(*relative_difference(100, 90), -0.10);
  EXPECT_FALSE(relative_difference(0, 5).has_value());
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"Name", "Value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  std::string out = table.render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Right-aligned numeric column: " 1" under "Value".
  EXPECT_NE(out.find("    1"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"A", "B", "C"});
  table.add_row({"x"});
  EXPECT_NO_THROW(table.render());
}

TEST(Cells, Formatting) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(percent_cell(0.123), "+12.3%");
  EXPECT_EQ(percent_cell(-0.04), "-4.0%");
}

}  // namespace
}  // namespace doxlab::stats
