// Unit tests for the TLS session model: 1.3 full/resumed/0-RTT handshakes,
// 1.2 fallback, ticket issuance and validation, ALPN, framing robustness.
#include <gtest/gtest.h>

#include <memory>

#include "tls/session.h"
#include "tls/ticket.h"
#include "tls/wire.h"

namespace doxlab::tls {
namespace {

/// Wires two TlsSessions back-to-back through in-memory byte queues and
/// counts bytes per direction.
class TlsPair {
 public:
  TlsPair(TlsConfig client_cfg, TlsConfig server_cfg, SimTime now = 0)
      : now_(now) {
    client_cfg.is_server = false;
    server_cfg.is_server = true;

    TlsSession::Callbacks ccb;
    ccb.send_transport = [this](util::Buffer b) {
      c2s_bytes += b.size();
      to_server_.push_back(std::move(b));
    };
    ccb.on_handshake_complete = [this](const HandshakeInfo& i) {
      client_info = i;
    };
    ccb.on_application_data = [this](std::span<const std::uint8_t> d) {
      client_received.insert(client_received.end(), d.begin(), d.end());
    };
    ccb.on_new_ticket = [this](const SessionTicket& t) { tickets.push_back(t); };
    ccb.on_error = [this](const util::Error& e) { client_error = e.to_string(); };
    ccb.on_close_notify = [this] { client_saw_close = true; };
    ccb.now = [this] { return now_; };

    TlsSession::Callbacks scb;
    scb.send_transport = [this](util::Buffer b) {
      s2c_bytes += b.size();
      to_client_.push_back(std::move(b));
    };
    scb.on_handshake_complete = [this](const HandshakeInfo& i) {
      server_info = i;
    };
    scb.on_application_data = [this](std::span<const std::uint8_t> d) {
      server_received.insert(server_received.end(), d.begin(), d.end());
      server_data_flight = flight_counter;
    };
    scb.on_error = [this](const util::Error& e) { server_error = e.to_string(); };
    scb.now = [this] { return now_; };

    client = std::make_unique<TlsSession>(client_cfg, std::move(ccb));
    server = std::make_unique<TlsSession>(server_cfg, std::move(scb));
  }

  /// Moves queued bytes between the endpoints until quiescent.
  void pump() {
    if (pumping_) return;
    pumping_ = true;
    while (!to_server_.empty() || !to_client_.empty()) {
      ++flight_counter;
      std::vector<util::Buffer> batch;
      batch.swap(to_server_);
      for (auto& b : batch) server->on_transport_data(b);
      batch.clear();
      batch.swap(to_client_);
      for (auto& b : batch) client->on_transport_data(b);
    }
    pumping_ = false;
  }

  std::unique_ptr<TlsSession> client;
  std::unique_ptr<TlsSession> server;
  std::optional<HandshakeInfo> client_info;
  std::optional<HandshakeInfo> server_info;
  std::vector<SessionTicket> tickets;
  std::vector<std::uint8_t> client_received;
  std::vector<std::uint8_t> server_received;
  std::string client_error;
  std::string server_error;
  bool client_saw_close = false;
  std::size_t c2s_bytes = 0;
  std::size_t s2c_bytes = 0;
  int flight_counter = 0;
  int server_data_flight = -1;

 private:
  SimTime now_;
  bool pumping_ = false;
  std::vector<util::Buffer> to_server_;
  std::vector<util::Buffer> to_client_;
};

TlsConfig dot_client() {
  TlsConfig c;
  c.alpn = {"dot"};
  c.sni = "resolver.example";
  return c;
}

TlsConfig dot_server() {
  TlsConfig c;
  c.alpn = {"dot"};
  c.ticket_secret = 0xABCDEF;
  c.certificate_chain_size = 3000;
  return c;
}

TEST(TlsSession, FullHandshake13) {
  TlsPair pair(dot_client(), dot_server());
  pair.client->start();
  pair.pump();
  ASSERT_TRUE(pair.client_info.has_value());
  ASSERT_TRUE(pair.server_info.has_value());
  EXPECT_EQ(pair.client_info->version, TlsVersion::kTls13);
  EXPECT_FALSE(pair.client_info->resumed);
  EXPECT_EQ(pair.client_info->alpn, "dot");
  EXPECT_EQ(pair.client_info->round_trips, 1);
  EXPECT_TRUE(pair.client_error.empty());
  // Full handshake carries the certificate: server flight must exceed the
  // chain size.
  EXPECT_GT(pair.s2c_bytes, 3000u);
}

TEST(TlsSession, TicketIssuedAfterFullHandshake) {
  TlsPair pair(dot_client(), dot_server());
  pair.client->start();
  pair.pump();
  ASSERT_EQ(pair.tickets.size(), 1u);
  EXPECT_EQ(pair.tickets[0].server_secret, 0xABCDEFu);
  EXPECT_EQ(pair.tickets[0].lifetime, 7 * kDay);
  EXPECT_FALSE(pair.tickets[0].allow_early_data);
}

TEST(TlsSession, ResumedHandshakeSkipsCertificate) {
  TlsPair first(dot_client(), dot_server());
  first.client->start();
  first.pump();
  ASSERT_EQ(first.tickets.size(), 1u);

  TlsPair second(dot_client(), dot_server());
  second.client->start(first.tickets[0]);
  second.pump();
  ASSERT_TRUE(second.client_info.has_value());
  EXPECT_TRUE(second.client_info->resumed);
  // Resumed server flight: SH + EE + Fin + NST, far below the chain size.
  EXPECT_LT(second.s2c_bytes, 800u);
}

TEST(TlsSession, ExpiredTicketFallsBackToFullHandshake) {
  TlsPair first(dot_client(), dot_server());
  first.client->start();
  first.pump();

  // 8 days later the 7-day ticket is dead.
  TlsPair second(dot_client(), dot_server(), /*now=*/8 * kDay);
  second.client->start(first.tickets[0]);
  second.pump();
  ASSERT_TRUE(second.client_info.has_value());
  EXPECT_FALSE(second.client_info->resumed);
  EXPECT_GT(second.s2c_bytes, 3000u);
}

TEST(TlsSession, WrongServerSecretRejectsPsk) {
  TlsPair first(dot_client(), dot_server());
  first.client->start();
  first.pump();

  TlsConfig other_server = dot_server();
  other_server.ticket_secret = 0x999;
  TlsPair second(dot_client(), other_server);
  second.client->start(first.tickets[0]);
  second.pump();
  ASSERT_TRUE(second.client_info.has_value());
  EXPECT_FALSE(second.client_info->resumed);
}

TEST(TlsSession, AppDataQueuedUntilHandshakeCompletes) {
  TlsPair pair(dot_client(), dot_server());
  pair.client->send_application_data({1, 2, 3});
  pair.client->start();
  pair.pump();
  EXPECT_EQ(pair.server_received, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(TlsSession, ZeroRttAcceptedWhenEnabledEverywhere) {
  TlsConfig server_cfg = dot_server();
  server_cfg.enable_0rtt = true;
  TlsPair first(dot_client(), server_cfg);
  first.client->start();
  first.pump();
  ASSERT_EQ(first.tickets.size(), 1u);
  EXPECT_TRUE(first.tickets[0].allow_early_data);

  TlsConfig client_cfg = dot_client();
  client_cfg.enable_0rtt = true;
  TlsPair second(client_cfg, server_cfg);
  second.client->start(first.tickets[0], {7, 7, 7});
  second.pump();
  EXPECT_TRUE(second.client->sent_early_data());
  ASSERT_TRUE(second.client_info.has_value());
  EXPECT_TRUE(second.client_info->early_data_accepted);
  EXPECT_EQ(second.client_info->round_trips, 0);
  EXPECT_EQ(second.server_received, (std::vector<std::uint8_t>{7, 7, 7}));
  // Early data is processed in the same flight as the ClientHello.
  EXPECT_EQ(second.server_data_flight, 1);
}

TEST(TlsSession, ZeroRttRejectedByServerIsRetransmitted) {
  // Ticket allows early data, but the *new* server config refuses 0-RTT
  // (e.g. resolver disabled it — the paper found none accept it).
  TlsConfig issuing_server = dot_server();
  issuing_server.enable_0rtt = true;
  TlsPair first(dot_client(), issuing_server);
  first.client->start();
  first.pump();

  TlsConfig strict_server = dot_server();
  strict_server.enable_0rtt = false;
  TlsConfig client_cfg = dot_client();
  client_cfg.enable_0rtt = true;
  TlsPair second(client_cfg, strict_server);
  second.client->start(first.tickets[0], {9, 9});
  second.pump();
  EXPECT_TRUE(second.client->sent_early_data());
  ASSERT_TRUE(second.client_info.has_value());
  EXPECT_FALSE(second.client_info->early_data_accepted);
  // Data still arrives — after the handshake.
  EXPECT_EQ(second.server_received, (std::vector<std::uint8_t>{9, 9}));
}

TEST(TlsSession, ClientWithoutTicketNeverSendsEarlyData) {
  TlsConfig client_cfg = dot_client();
  client_cfg.enable_0rtt = true;
  TlsConfig server_cfg = dot_server();
  server_cfg.enable_0rtt = true;
  TlsPair pair(client_cfg, server_cfg);
  pair.client->start(std::nullopt, {1});
  pair.pump();
  EXPECT_FALSE(pair.client->sent_early_data());
  EXPECT_EQ(pair.server_received, (std::vector<std::uint8_t>{1}));
}

TEST(TlsSession, Tls12ServerNegotiatesTwoRoundTrips) {
  TlsConfig server_cfg = dot_server();
  server_cfg.max_version = TlsVersion::kTls12;
  TlsPair pair(dot_client(), server_cfg);
  pair.client->start();
  pair.pump();
  ASSERT_TRUE(pair.client_info.has_value());
  EXPECT_EQ(pair.client_info->version, TlsVersion::kTls12);
  EXPECT_EQ(pair.client_info->round_trips, 2);
  // No ticket in our 1.2 model.
  EXPECT_TRUE(pair.tickets.empty());
}

TEST(TlsSession, Tls12IgnoresOfferedTicket) {
  TlsConfig server_cfg = dot_server();
  server_cfg.max_version = TlsVersion::kTls12;
  // Hand-craft a ticket; the 1.2 server must do a full handshake anyway.
  SessionTicket ticket;
  ticket.server_secret = server_cfg.ticket_secret;
  ticket.issued_at = 0;
  TlsPair pair(dot_client(), server_cfg);
  pair.client->start(ticket);
  pair.pump();
  ASSERT_TRUE(pair.client_info.has_value());
  EXPECT_FALSE(pair.client_info->resumed);
  EXPECT_EQ(pair.client_info->version, TlsVersion::kTls12);
}

TEST(TlsSession, BidirectionalApplicationData) {
  TlsPair pair(dot_client(), dot_server());
  pair.client->start();
  pair.pump();
  pair.client->send_application_data({1});
  pair.pump();
  pair.server->send_application_data({2, 2});
  pair.pump();
  EXPECT_EQ(pair.server_received, (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(pair.client_received, (std::vector<std::uint8_t>{2, 2}));
}

TEST(TlsSession, CloseNotifyDelivered) {
  TlsPair pair(dot_client(), dot_server());
  pair.client->start();
  pair.pump();
  pair.server->send_close_notify();
  pair.pump();
  EXPECT_TRUE(pair.client_saw_close);
}

TEST(TlsSession, AlpnMismatchFailsHandshake) {
  TlsConfig client_cfg = dot_client();
  client_cfg.alpn = {"doq"};
  TlsPair pair(client_cfg, dot_server());
  pair.client->start();
  pair.pump();
  EXPECT_FALSE(pair.server_error.empty());
  EXPECT_FALSE(pair.client_info.has_value());
}

TEST(TlsSession, MultiProtocolAlpnPicksFirstOverlap) {
  TlsConfig client_cfg = dot_client();
  client_cfg.alpn = {"doq", "dot"};
  TlsPair pair(client_cfg, dot_server());
  pair.client->start();
  pair.pump();
  ASSERT_TRUE(pair.client_info.has_value());
  EXPECT_EQ(pair.client_info->alpn, "dot");
}

TEST(TlsWire, RecordFramingSurvivesFragmentation) {
  // Feed the server the client's bytes one octet at a time.
  TlsConfig server_cfg = dot_server();
  std::vector<std::uint8_t> server_out;
  bool complete = false;
  TlsSession server(
      {.is_server = true, .alpn = {"dot"}, .ticket_secret = 1},
      TlsSession::Callbacks{
          .send_transport =
              [&](util::Buffer b) {
                server_out.insert(server_out.end(), b.data(),
                                  b.data() + b.size());
              },
          .on_handshake_complete = [&](const HandshakeInfo&) {},
          .now = [] { return SimTime(0); },
      });

  TlsWire wire;
  ClientHello ch;
  ch.alpn = {"dot"};
  auto record = wire.client_hello_record(ch);
  for (std::uint8_t byte : record.view()) {
    server.on_transport_data(std::span(&byte, 1));
  }
  // Server must have emitted its flight exactly once.
  EXPECT_GT(server_out.size(), 3000u);
  (void)complete;
}

TEST(TlsWire, NextRecordReturnsNulloptOnPartial) {
  TlsWire wire;
  auto record = wire.finished_record();
  std::vector<std::uint8_t> buf(record.data(),
                                record.data() + record.size() - 1);
  EXPECT_FALSE(TlsWire::next_record(buf).has_value());
  buf.push_back(record.data()[record.size() - 1]);
  auto parsed = TlsWire::next_record(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, RecordType::kHandshake);
  EXPECT_TRUE(buf.empty());
}

TEST(TlsWire, ClientHelloSizeGrowsWithPsk) {
  TlsWire wire;
  ClientHello plain;
  plain.sni = "resolver.example";
  plain.alpn = {"dot"};
  ClientHello with_psk = plain;
  with_psk.psk = SessionTicket{};
  const auto a = wire.client_hello_record(plain).size();
  const auto b = wire.client_hello_record(with_psk).size();
  EXPECT_EQ(b - a, wire.sizes().psk_extension);
}

TEST(TlsWire, TicketRoundTripThroughNst) {
  TlsWire wire;
  SessionTicket t;
  t.server_secret = 42;
  t.ticket_id = 7;
  t.issued_at = 123456;
  t.lifetime = 7 * kDay;
  t.allow_early_data = true;
  t.alpn = "doq";
  auto record_bytes = wire.new_session_ticket_record(t);
  std::vector<std::uint8_t> buf(record_bytes.data(),
                                record_bytes.data() + record_bytes.size());
  auto record = TlsWire::next_record(buf);
  ASSERT_TRUE(record.has_value());
  auto msg = wire.parse_handshake(record->body, /*encrypted=*/true);
  ASSERT_TRUE(msg.has_value());
  ASSERT_TRUE(msg->new_session_ticket.has_value());
  const SessionTicket& back = msg->new_session_ticket->ticket;
  EXPECT_EQ(back.server_secret, 42u);
  EXPECT_EQ(back.ticket_id, 7u);
  EXPECT_EQ(back.issued_at, 123456);
  EXPECT_TRUE(back.allow_early_data);
  EXPECT_EQ(back.alpn, "doq");
}

TEST(TicketStore, ExpiryAndReplacement) {
  TicketStore store;
  SessionTicket t;
  t.issued_at = 0;
  t.lifetime = kDay;
  store.put("k", t);
  EXPECT_TRUE(store.get("k", kHour).has_value());
  EXPECT_FALSE(store.get("k", 2 * kDay).has_value());
  EXPECT_EQ(store.size(), 0u);  // expired entry erased
}

}  // namespace
}  // namespace doxlab::tls
