#!/bin/sh
# Tier-1 gate: build + run the full test suite twice — the regular
# RelWithDebInfo build, then an ASan+UBSan instrumented build
# (-DDOXLAB_SANITIZE=ON). Both must be green.
#
# Usage: tools/check.sh [jobs]   (from the repository root)
set -eu

jobs=${1:-$(nproc 2>/dev/null || echo 4)}
root=$(cd "$(dirname "$0")/.." && pwd)

echo "== regular build (${root}/build) =="
cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs"
ctest --test-dir "$root/build" --output-on-failure -j "$jobs"

echo "== sanitizer build (${root}/build-sanitize, ASan+UBSan) =="
cmake -B "$root/build-sanitize" -S "$root" -DDOXLAB_SANITIZE=ON >/dev/null
cmake --build "$root/build-sanitize" -j "$jobs"
ctest --test-dir "$root/build-sanitize" --output-on-failure -j "$jobs"

echo "== all checks passed =="
