#!/bin/sh
# Tier-1 gate: build + run the full test suite three times — the regular
# RelWithDebInfo build (plus the sharded-engine scaling smoke), an
# ASan+UBSan instrumented build (-DDOXLAB_SANITIZE=ON), and a TSan build
# (-DDOXLAB_TSAN=ON) that re-runs the cross-thread tests and a sharded
# engine smoke under the race detector. All must be green.
#
# Usage: tools/check.sh [jobs]   (from the repository root)
set -eu

jobs=${1:-$(nproc 2>/dev/null || echo 4)}
root=$(cd "$(dirname "$0")/.." && pwd)

echo "== regular build (${root}/build) =="
cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs"
ctest --test-dir "$root/build" --output-on-failure -j "$jobs"
echo "== sharded engine scaling smoke =="
"$root/build/bench/engine_scale" --smoke
echo "== tiered cache / warm-restart smoke =="
"$root/build/bench/cache_tiers" --smoke
echo "== adverse-path smoke (fairness + RFC 9002 recovery) =="
"$root/build/bench/adverse_path" --smoke
"$root/build/tools/doxperf" adverse --smoke >/dev/null

echo "== sanitizer build (${root}/build-sanitize, ASan+UBSan) =="
cmake -B "$root/build-sanitize" -S "$root" -DDOXLAB_SANITIZE=ON >/dev/null
cmake --build "$root/build-sanitize" -j "$jobs"
ctest --test-dir "$root/build-sanitize" --output-on-failure -j "$jobs"
# Snapshot-tier warm start under ASan: the second run replays the log the
# first one wrote (append + replay + compaction paths), then a churn
# campaign with a mid-run restart exercises the two-world teardown.
snapdir=$(mktemp -d)
trap 'rm -rf "$snapdir"' EXIT
"$root/build-sanitize/tools/doxperf" engine --shards=2 --clients=2000 \
      --qps=2000 --seconds=2 --snapshot-dir="$snapdir" >/dev/null
"$root/build-sanitize/tools/doxperf" engine --shards=2 --clients=2000 \
      --qps=2000 --seconds=2 --snapshot-dir="$snapdir" --l2-stale >/dev/null
"$root/build-sanitize/tools/doxperf" churn --smoke --restart-at=4 \
      --snapshot-dir="$snapdir/churn" >/dev/null

echo "== race-detector build (${root}/build-tsan, TSan) =="
cmake -B "$root/build-tsan" -S "$root" -DDOXLAB_TSAN=ON >/dev/null
# Fail loudly if the build dir is stale (configured without the TSan
# flag, e.g. created by hand): running uninstrumented binaries here would
# silently pass the race stage without detecting anything.
if ! grep -q '^DOXLAB_TSAN:BOOL=ON' "$root/build-tsan/CMakeCache.txt"; then
  echo "ERROR: $root/build-tsan is not a TSan build" \
       "(DOXLAB_TSAN is not ON in CMakeCache.txt) — delete it and rerun" >&2
  exit 1
fi
cmake --build "$root/build-tsan" -j "$jobs" --target \
      util_test packet_cache_test sharded_engine_test runner_test doxperf
for bin in tests/util_test tests/packet_cache_test \
           tests/sharded_engine_test tests/runner_test tools/doxperf; do
  if [ ! -x "$root/build-tsan/$bin" ]; then
    echo "ERROR: expected TSan binary $root/build-tsan/$bin is missing" >&2
    exit 1
  fi
done
"$root/build-tsan/tests/util_test" --gtest_filter='Buffer*:BufferPool*'
"$root/build-tsan/tests/packet_cache_test"
"$root/build-tsan/tests/sharded_engine_test"
"$root/build-tsan/tests/runner_test"
"$root/build-tsan/tools/doxperf" engine --shards=4 --clients=5000 \
      --qps=3000 --seconds=2 >/dev/null
"$root/build-tsan/tools/doxperf" engine --shards=4 --clients=5000 \
      --qps=3000 --seconds=2 --batch-us=200 --wire-cache=4096 >/dev/null
# Finite-rate bottleneck on every shard host: exercises the link-layer
# queue/loss path under the race detector.
"$root/build-tsan/tools/doxperf" engine --shards=4 --clients=5000 \
      --qps=3000 --seconds=2 --bottleneck-mbps=20 >/dev/null
# Snapshot tier + stale-L2 serving across 4 shards under TSan: per-shard
# snapshot files must never be touched cross-thread, and stale retention
# changes the sweep/lookup interleaving.
"$root/build-tsan/tools/doxperf" engine --shards=4 --clients=5000 \
      --qps=3000 --seconds=2 --snapshot-dir="$snapdir/tsan" \
      --l2-stale >/dev/null

echo "== all checks passed =="
