#!/bin/sh
# Tier-1 gate: build + run the full test suite three times — the regular
# RelWithDebInfo build (plus the sharded-engine scaling smoke), an
# ASan+UBSan instrumented build (-DDOXLAB_SANITIZE=ON), and a TSan build
# (-DDOXLAB_TSAN=ON) that re-runs the cross-thread tests and a sharded
# engine smoke under the race detector. All must be green.
#
# Usage: tools/check.sh [jobs]   (from the repository root)
set -eu

jobs=${1:-$(nproc 2>/dev/null || echo 4)}
root=$(cd "$(dirname "$0")/.." && pwd)

echo "== regular build (${root}/build) =="
cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs"
ctest --test-dir "$root/build" --output-on-failure -j "$jobs"
echo "== sharded engine scaling smoke =="
"$root/build/bench/engine_scale" --smoke
echo "== adverse-path smoke (fairness + RFC 9002 recovery) =="
"$root/build/bench/adverse_path" --smoke
"$root/build/tools/doxperf" adverse --smoke >/dev/null

echo "== sanitizer build (${root}/build-sanitize, ASan+UBSan) =="
cmake -B "$root/build-sanitize" -S "$root" -DDOXLAB_SANITIZE=ON >/dev/null
cmake --build "$root/build-sanitize" -j "$jobs"
ctest --test-dir "$root/build-sanitize" --output-on-failure -j "$jobs"

echo "== race-detector build (${root}/build-tsan, TSan) =="
cmake -B "$root/build-tsan" -S "$root" -DDOXLAB_TSAN=ON >/dev/null
cmake --build "$root/build-tsan" -j "$jobs" --target \
      util_test packet_cache_test sharded_engine_test runner_test doxperf
"$root/build-tsan/tests/util_test" --gtest_filter='Buffer*:BufferPool*'
"$root/build-tsan/tests/packet_cache_test"
"$root/build-tsan/tests/sharded_engine_test"
"$root/build-tsan/tests/runner_test"
"$root/build-tsan/tools/doxperf" engine --shards=4 --clients=5000 \
      --qps=3000 --seconds=2 >/dev/null
"$root/build-tsan/tools/doxperf" engine --shards=4 --clients=5000 \
      --qps=3000 --seconds=2 --batch-us=200 --wire-cache=4096 >/dev/null
# Finite-rate bottleneck on every shard host: exercises the link-layer
# queue/loss path under the race detector.
"$root/build-tsan/tools/doxperf" engine --shards=4 --clients=5000 \
      --qps=3000 --seconds=2 --bottleneck-mbps=20 >/dev/null

echo "== all checks passed =="
