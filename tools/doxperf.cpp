// doxperf — a dnsperf-style command-line front end for the doxlab testbed.
//
// Runs the paper's measurement methodology (cache warming, session
// resumption, token reuse) over a synthetic resolver population and prints
// the single-query and/or web-performance reports. Everything is
// deterministic for a given --seed.
//
// Examples:
//   doxperf                                  # single-query study, defaults
//   doxperf --protocols=doq,doh --reps=4
//   doxperf --web --resolvers=24             # web study (FCP/PLT CDFs)
//   doxperf --no-resumption --protocols=doq  # preliminary-work behaviour
//   doxperf --0rtt --pad --csv=out.csv
//   doxperf engine --clients=2000 --qps=3000  # forwarder-engine load run
//   doxperf campaign --jobs=8 --reps=4        # parallel measurement sweep
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/churn.h"
#include "engine/scenario.h"
#include "engine/sharded.h"
#include "measure/csv.h"
#include "measure/report.h"
#include "measure/single_query.h"
#include "measure/web_study.h"
#include "net/geo.h"
#include "runner/campaign.h"
#include "stats/stats.h"
#include "util/strings.h"

using namespace doxlab;
using namespace doxlab::measure;

namespace {

const char* kUsage = R"(doxperf — DNS-over-X measurement testbed CLI

  --protocols=LIST   comma list of doudp,dotcp,dot,doh,doq,doh3 (default:
                     the paper's five)
  --resolvers=N      verified resolvers in the population (default 48)
  --reps=N           repetitions per combination (default 1)
  --qname=NAME       query name (default google.com)
  --seed=N           study seed (default 42)
  --web              run the web study (FCP/PLT) instead of single queries
  --pages=LIST       web: comma list of page names (default: all ten)
  --loads=N          web: measured loads per combination (default 4)
  --no-resumption    disable TLS session resumption (preliminary-work mode)
  --no-token         do not present QUIC address-validation tokens
  --0rtt             resolvers accept TLS/QUIC 0-RTT (future-work mode)
  --doh3             resolvers additionally serve DNS over HTTP/3
  --pad              RFC 8467 padding on encrypted transports
  --fix-dot          use the fixed dnsproxy DoT connection reuse (web)
  --csv=FILE         write raw records as CSV
  --failure-csv=FILE write the per-protocol x error-class failure report
  --help             this text

campaign subcommand — the same studies sharded over a thread pool
(doxperf campaign ...). Output is bit-identical for any --jobs value:
  --jobs=N           worker threads (default 1; 0 = all hardware threads)
  plus the study flags above (--web, --protocols, --resolvers, --reps, ...)

engine subcommand — forwarder-engine load run (doxperf engine ...):
  --clients=N        simulated stub clients (default 1000)
  --qps=N            aggregate Poisson query rate (default 2000)
  --seconds=N        arrival window length (default 10)
  --names=N          distinct query names, Zipf-popular (default 200)
  --seed=N           scenario seed (default 42)
  --no-coalesce      resolve each concurrent identical query upstream
  --no-stale         disable RFC 8767 serve-stale
  --kill-primary     take the primary upstream down mid-run
  --snapshot-dir=DIR persistent snapshot tier: replay DIR/shard-N.snap into
                     the caches at startup (warm start) and append every
                     successful resolve (default: disabled)
  --l2-stale         serve RFC 8767 stale answers straight from the shared
                     L2 (sharded runs; one background refresh per stale hit)

sharded engine (doxperf engine --shards=N ...): one scenario partitioned
across N shard worlds driven by the thread pool, clients source-hashed onto
shards, per-shard L1 caches over one shared L2 packet cache:
  --shards=N         shard count (default: unset — single-engine run above)
  --threads=N        pool worker threads (default 0 = hardware threads)
  --epoch-ms=N       epoch barrier interval for L2 sweeps (default 100)
  --l2-capacity=N    shared packet-cache entries, 0 disables (default 65536)
  --batch-us=N       coalesce UDP datagrams per host within an N-us window
                     into one batch event, 0 = per-datagram (default 0)
  --wire-cache=N     raw-wire packet-cache entries fronting the L1, 0
                     disables (default 0; also honoured by single-engine)
  --bottleneck-mbps=N     finite-rate ingress link on each shard host, 0
                     disables (default 0)
  --bottleneck-queue-kb=N tail-drop queue depth for that link (default 64)
  --shard-csv=FILE   per-shard stats rows (deterministic columns only)

adverse subcommand — the adverse-path study (doxperf adverse ...): the
single-query sweep repeated per link profile (baseline / burstloss /
bufferbloat / handover / lte) with real congestion control (TCP NewReno,
QUIC RFC 9002) on every transport. Bit-identical for any --jobs value:
  --jobs=N           worker threads (default 1; 0 = all hardware threads)
  --resolvers=N      verified resolvers (default 12)
  --reps=N           repetitions per combination (default 3)
  --profiles=LIST    comma list of the profiles above (default: all five)
  --csv=FILE         raw per-record rows with a profile column
  --smoke            tiny deterministic run (CI)

abuse subcommand — engine load plus attack mixes shed by the policy chain
(doxperf abuse ...): the engine flags above, and
  --flood-qps=N      random-subdomain flood rate (default 3000)
  --torture-qps=N    water-torture rate (default 1500)
  --amp-qps=N        spoofed-source TXT amplification rate (default 1000)
  --rate-limit=N     per-/24 client-subnet budget, qps (default 100)
  --policy-csv=FILE  write the per-rule hit-counter report
  --smoke            small deterministic run (sanitizer CI)

churn subcommand — resolver-churn availability campaign (doxperf churn
...): scripted upstream outages/recoveries and anycast-style route flaps
under live load, with the answerable rate and tail latency bucketed into a
time series through every transition:
  --clients/--qps/--seconds/--names/--seed   as for engine (defaults
                     500 / 1000 / 60 / 200 / 42)
  --bucket-ms=N      time-series bucket width (default 1000)
  --restart-at=N     restart the forwarder at second N (0 = never); with
                     --snapshot-dir the new engine warm-starts from disk
  --snapshot-dir=DIR persistent snapshot tier directory
  --churn-csv=FILE   write the bucket series as CSV
  --smoke            tiny deterministic run (CI)
Without explicit events the default schedule runs: primary outage at 20%
of the horizon, recovery at 50%, secondary withdraw at 60%, re-announce
at 80%.
)";

std::string flag_value(int argc, char** argv, const char* name,
                       const char* fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool flag_set(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::vector<dox::DnsProtocol> parse_protocols(const std::string& list) {
  std::vector<dox::DnsProtocol> out;
  for (const std::string& raw : split(list, ',')) {
    const std::string name = to_lower(raw);
    if (name == "doudp" || name == "udp") {
      out.push_back(dox::DnsProtocol::kDoUdp);
    } else if (name == "dotcp" || name == "tcp") {
      out.push_back(dox::DnsProtocol::kDoTcp);
    } else if (name == "dot") {
      out.push_back(dox::DnsProtocol::kDoT);
    } else if (name == "doh") {
      out.push_back(dox::DnsProtocol::kDoH);
    } else if (name == "doq") {
      out.push_back(dox::DnsProtocol::kDoQ);
    } else if (name == "doh3") {
      out.push_back(dox::DnsProtocol::kDoH3);
    } else if (!name.empty()) {
      std::fprintf(stderr, "unknown protocol: %s\n", name.c_str());
      std::exit(2);
    }
  }
  return out;
}

int flag_int(int argc, char** argv, const char* name, int fallback) {
  const std::string value = flag_value(argc, argv, name, "");
  return value.empty() ? fallback : std::atoi(value.c_str());
}

/// Per-shard stats rows. Only simulation-derived (deterministic) columns —
/// no wall-clock timing — so two runs with the same seed and shard count
/// produce bit-identical files (the engine_shards_determinism ctest).
std::string shard_csv(const engine::ShardedResult& result) {
  std::string out =
      "shard,arrivals,sent,answered,servfails,timeouts,shed,queries,"
      "cache_hits,stale_hits,misses,coalesced,wire_hits,wire_lookups,"
      "l2_hits,l2_lookups,upstream_resolves,link_packets,link_drops,"
      "link_queue_peak,l1_lookups,l1_evictions,l1_entries,l1_bytes,"
      "wire_evictions,wire_entries,wire_bytes,snapshot_hits,"
      "snapshot_lookups,snapshot_entries,snapshot_bytes,events,digest,"
      "outcomes\n";
  char line[1024];
  for (const auto& shard : result.shards) {
    std::snprintf(
        line, sizeof(line),
        "%u,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%llu,%llu,%llu,%llu,%llu,%016llx,%016llx\n",
        shard.index, static_cast<unsigned long long>(shard.arrivals),
        static_cast<unsigned long long>(shard.load.sent),
        static_cast<unsigned long long>(shard.load.answered),
        static_cast<unsigned long long>(shard.load.servfails),
        static_cast<unsigned long long>(shard.load.timeouts),
        static_cast<unsigned long long>(shard.load.shed),
        static_cast<unsigned long long>(shard.engine.queries),
        static_cast<unsigned long long>(shard.engine.cache_hits),
        static_cast<unsigned long long>(shard.engine.stale_hits),
        static_cast<unsigned long long>(shard.engine.misses),
        static_cast<unsigned long long>(shard.engine.coalesced),
        static_cast<unsigned long long>(shard.engine.wire_hits),
        static_cast<unsigned long long>(shard.engine.wire_lookups),
        static_cast<unsigned long long>(shard.engine.l2_hits),
        static_cast<unsigned long long>(shard.engine.l2_lookups),
        static_cast<unsigned long long>(shard.engine.upstream_resolves),
        static_cast<unsigned long long>(shard.engine.link_packets),
        static_cast<unsigned long long>(shard.engine.link_drops),
        static_cast<unsigned long long>(shard.engine.link_queue_peak),
        static_cast<unsigned long long>(shard.engine.l1_lookups),
        static_cast<unsigned long long>(shard.engine.l1_evictions),
        static_cast<unsigned long long>(shard.engine.l1_entries),
        static_cast<unsigned long long>(shard.engine.l1_bytes),
        static_cast<unsigned long long>(shard.engine.wire_evictions),
        static_cast<unsigned long long>(shard.engine.wire_entries),
        static_cast<unsigned long long>(shard.engine.wire_bytes),
        static_cast<unsigned long long>(shard.engine.snapshot_hits),
        static_cast<unsigned long long>(shard.engine.snapshot_lookups),
        static_cast<unsigned long long>(shard.engine.snapshot_entries),
        static_cast<unsigned long long>(shard.engine.snapshot_bytes),
        static_cast<unsigned long long>(shard.events),
        static_cast<unsigned long long>(shard.stream_digest),
        static_cast<unsigned long long>(shard.outcome_digest));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "merged,,,,,,,,,,,,,,,,,,,,,,,,,,,,,,,,%016llx,%016llx\n",
                static_cast<unsigned long long>(result.merged_digest),
                static_cast<unsigned long long>(result.outcome_digest));
  out += line;
  return out;
}

/// `doxperf engine --shards=N` — the sharded engine run.
int run_engine_sharded(int argc, char** argv, std::uint32_t shards) {
  engine::ShardedConfig config;
  config.shards = shards;
  config.seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "42").c_str()));
  config.clients = static_cast<std::size_t>(
      std::atoll(flag_value(argc, argv, "--clients", "1000000").c_str()));
  config.qps = flag_int(argc, argv, "--qps", 20000);
  config.duration = flag_int(argc, argv, "--seconds", 10) * kSecond;
  config.names =
      static_cast<std::size_t>(flag_int(argc, argv, "--names", 200));
  config.threads = flag_int(argc, argv, "--threads", 0);
  config.epoch = flag_int(argc, argv, "--epoch-ms", 100) * kMillisecond;
  config.l2_capacity = static_cast<std::size_t>(
      flag_int(argc, argv, "--l2-capacity", 1 << 16));
  config.batch_window =
      flag_int(argc, argv, "--batch-us", 0) * kMicrosecond;
  config.engine.coalesce = !flag_set(argc, argv, "--no-coalesce");
  config.engine.serve_stale = !flag_set(argc, argv, "--no-stale");
  config.engine.wire_cache_capacity = static_cast<std::size_t>(
      flag_int(argc, argv, "--wire-cache", 0));
  config.engine.snapshot_dir = flag_value(argc, argv, "--snapshot-dir", "");
  config.engine.l2_serve_stale = flag_set(argc, argv, "--l2-stale");
  config.engine.max_ttl = 1;
  const int bottleneck_mbps = flag_int(argc, argv, "--bottleneck-mbps", 0);
  if (bottleneck_mbps > 0) {
    net::LinkConfig link;
    link.rate_bps = static_cast<double>(bottleneck_mbps) * 1e6;
    link.queue_bytes = static_cast<std::size_t>(
                           flag_int(argc, argv, "--bottleneck-queue-kb", 64)) *
                       1024;
    config.bottleneck = link;
  }

  const auto result = engine::run_sharded(config);
  const auto& e = result.engine;
  const auto latency = result.load.latency_summary();
  std::printf("sharded engine: %u shards, %zu clients, %.0f qps offered for "
              "%llu s (seed %llu)\n",
              config.shards, config.clients, config.qps,
              static_cast<unsigned long long>(config.duration / kSecond),
              static_cast<unsigned long long>(config.seed));
  std::printf("  epoch %llu ms, %llu epochs, L2 capacity %zu, coalescing "
              "%s, batch window %llu us, wire cache %zu\n",
              static_cast<unsigned long long>(config.epoch / kMillisecond),
              static_cast<unsigned long long>(result.epochs),
              config.l2_capacity, config.engine.coalesce ? "on" : "off",
              static_cast<unsigned long long>(config.batch_window),
              config.engine.wire_cache_capacity);
  std::printf("\nthroughput     %9.0f qps critical-path (%.0f qps wall on "
              "this host)\n",
              result.effective_qps(), result.wall_qps());
  std::printf("timing         wall %.1f ms  critical path %.1f ms  sweeps "
              "%.2f ms\n",
              result.wall_ms, result.critical_path_ms, result.sweep_ms);
  std::printf("queries        %llu processed, %llu arrivals, %llu sim "
              "events\n",
              static_cast<unsigned long long>(e.queries),
              static_cast<unsigned long long>(result.total_arrivals),
              static_cast<unsigned long long>(
                  [&] {
                    std::uint64_t total = 0;
                    for (const auto& s : result.shards) total += s.events;
                    return total;
                  }()));
  std::printf("latency        p50 %.2f  p95 %.2f  p99 %.2f  max %.2f ms\n",
              latency.median, latency.p95, latency.p99, latency.max);
  std::printf("client side    answered %llu  servfail %llu  timeout %llu  "
              "shed %llu\n",
              static_cast<unsigned long long>(result.load.answered),
              static_cast<unsigned long long>(result.load.servfails),
              static_cast<unsigned long long>(result.load.timeouts),
              static_cast<unsigned long long>(result.load.shed));
  std::printf("L1 cache       hit %llu  stale %llu  miss %llu\n",
              static_cast<unsigned long long>(e.cache_hits),
              static_cast<unsigned long long>(e.stale_hits),
              static_cast<unsigned long long>(e.misses));
  std::printf("wire cache     hit %llu / %llu lookups\n",
              static_cast<unsigned long long>(e.wire_hits),
              static_cast<unsigned long long>(e.wire_lookups));
  std::printf("L2 cache       hit %llu / %llu lookups  deferred %llu  "
              "applied %llu  lock-miss %llu  size %zu\n",
              static_cast<unsigned long long>(result.l2.hits),
              static_cast<unsigned long long>(result.l2.hits +
                                              result.l2.misses),
              static_cast<unsigned long long>(result.l2.deferred_inserts),
              static_cast<unsigned long long>(result.l2.applied_inserts),
              static_cast<unsigned long long>(result.l2.lock_misses),
              result.l2.size);
  if (!config.engine.snapshot_dir.empty()) {
    std::printf("snapshot tier  hit %llu / %llu lookups  warm-loaded %llu  "
                "entries %llu (%llu bytes)\n",
                static_cast<unsigned long long>(e.snapshot_hits),
                static_cast<unsigned long long>(e.snapshot_lookups),
                static_cast<unsigned long long>(e.snapshot_warm_loaded),
                static_cast<unsigned long long>(e.snapshot_entries),
                static_cast<unsigned long long>(e.snapshot_bytes));
  }
  std::printf("coalescing     joined %llu in-flight resolves\n",
              static_cast<unsigned long long>(e.coalesced));
  std::printf("upstream       resolves %llu  attempts %llu  servfails "
              "%llu\n",
              static_cast<unsigned long long>(e.upstream_resolves),
              static_cast<unsigned long long>(e.upstream_attempts),
              static_cast<unsigned long long>(e.servfails_sent));
  std::printf("per shard      arrivals [");
  for (const auto& shard : result.shards) {
    std::printf("%s%llu", shard.index == 0 ? "" : " ",
                static_cast<unsigned long long>(shard.arrivals));
  }
  std::printf("]  digest %016llx\n",
              static_cast<unsigned long long>(result.merged_digest));
  std::printf("               busy ms [");
  for (const auto& shard : result.shards) {
    std::printf("%s%.1f", shard.index == 0 ? "" : " ", shard.busy_ms);
  }
  std::printf("]\n");

  const std::string csv_path = flag_value(argc, argv, "--shard-csv", "");
  if (!csv_path.empty()) {
    write_file(csv_path, shard_csv(result));
    std::printf("shard report -> %s\n", csv_path.c_str());
  }
  return 0;
}

/// `doxperf engine` — run the forwarder engine under multi-client load and
/// print its stats surface.
int run_engine(int argc, char** argv) {
  const int shards = flag_int(argc, argv, "--shards", 0);
  if (shards > 0) {
    return run_engine_sharded(argc, argv,
                              static_cast<std::uint32_t>(shards));
  }
  engine::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "42").c_str()));
  config.load.clients =
      static_cast<std::size_t>(flag_int(argc, argv, "--clients", 1000));
  config.load.qps = flag_int(argc, argv, "--qps", 2000);
  config.load.duration = flag_int(argc, argv, "--seconds", 10) * kSecond;
  config.load.names =
      static_cast<std::size_t>(flag_int(argc, argv, "--names", 200));
  config.engine.coalesce = !flag_set(argc, argv, "--no-coalesce");
  config.engine.serve_stale = !flag_set(argc, argv, "--no-stale");
  config.engine.wire_cache_capacity = static_cast<std::size_t>(
      flag_int(argc, argv, "--wire-cache", 0));
  config.engine.snapshot_dir = flag_value(argc, argv, "--snapshot-dir", "");
  // Short TTLs keep refresh traffic flowing past the initial warmup.
  config.engine.max_ttl = 1;
  if (flag_set(argc, argv, "--kill-primary")) {
    config.kill_primary_at = config.load.duration / 2;
  }

  const auto result = engine::run_scenario(config);
  const auto& e = result.engine;
  const auto& l = result.load;
  const auto latency = l.latency_summary();
  std::printf("forwarder engine: %zu clients, %zu names, %.0f qps offered "
              "for %llu s (seed %llu)\n",
              config.load.clients, config.load.names, config.load.qps,
              static_cast<unsigned long long>(config.load.duration /
                                              kSecond),
              static_cast<unsigned long long>(config.seed));
  std::printf("  coalescing %s, serve-stale %s, primary %s\n",
              config.engine.coalesce ? "on" : "off",
              config.engine.serve_stale ? "on" : "off",
              config.kill_primary_at ? "killed mid-run" : "up");
  std::printf("\nsustained      %9.0f qps (%llu queries, %llu events)\n",
              result.engine_qps, static_cast<unsigned long long>(e.queries),
              static_cast<unsigned long long>(result.events));
  std::printf("latency        p50 %.2f  p95 %.2f  p99 %.2f  max %.2f ms\n",
              latency.median, latency.p95, latency.p99, latency.max);
  std::printf("client side    answered %llu  servfail %llu  timeout %llu\n",
              static_cast<unsigned long long>(l.answered),
              static_cast<unsigned long long>(l.servfails),
              static_cast<unsigned long long>(l.timeouts));
  std::printf("cache          hit %llu  stale %llu  miss %llu  "
              "evictions %llu\n",
              static_cast<unsigned long long>(e.cache_hits),
              static_cast<unsigned long long>(e.stale_hits),
              static_cast<unsigned long long>(e.misses),
              static_cast<unsigned long long>(e.cache_evictions));
  if (config.engine.wire_cache_capacity > 0) {
    std::printf("wire cache     hit %llu / %llu lookups\n",
                static_cast<unsigned long long>(e.wire_hits),
                static_cast<unsigned long long>(e.wire_lookups));
  }
  if (!config.engine.snapshot_dir.empty()) {
    std::printf("snapshot tier  hit %llu / %llu lookups  warm-loaded %llu  "
                "entries %llu (%llu bytes)\n",
                static_cast<unsigned long long>(e.snapshot_hits),
                static_cast<unsigned long long>(e.snapshot_lookups),
                static_cast<unsigned long long>(e.snapshot_warm_loaded),
                static_cast<unsigned long long>(e.snapshot_entries),
                static_cast<unsigned long long>(e.snapshot_bytes));
  }
  std::printf("coalescing     joined %llu in-flight resolves (%.0f%% of "
              "misses)\n",
              static_cast<unsigned long long>(e.coalesced),
              100.0 * e.coalesce_rate());
  std::printf("upstream       resolves %llu  attempts %llu  failovers %llu"
              "  stale refreshes %llu  servfails %llu\n",
              static_cast<unsigned long long>(e.upstream_resolves),
              static_cast<unsigned long long>(e.upstream_attempts),
              static_cast<unsigned long long>(e.failovers),
              static_cast<unsigned long long>(e.stale_refreshes),
              static_cast<unsigned long long>(e.servfails_sent));
  for (const auto& upstream : e.upstreams) {
    std::printf("  %-12s ewma %7.2f ms  attempts %6llu  failures %5llu"
                "  %s\n",
                upstream.name.c_str(), upstream.ewma_latency_ms,
                static_cast<unsigned long long>(upstream.attempts),
                static_cast<unsigned long long>(upstream.failures),
                upstream.healthy ? "healthy" : "quarantined");
  }
  std::printf("failure classes");
  for (util::ErrorClass cls : util::kAllErrorClasses) {
    if (cls == util::ErrorClass::kNone) continue;
    std::printf("  %s %llu", std::string(util::error_class_name(cls)).c_str(),
                static_cast<unsigned long long>(
                    e.upstream_errors.count(cls)));
  }
  std::printf("\n");
  return 0;
}

/// `doxperf abuse` — the abuse-scenario family: legit load plus the three
/// attack mixes, shed by the canonical policy chain.
int run_abuse(int argc, char** argv) {
  const bool smoke = flag_set(argc, argv, "--smoke");
  engine::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "42").c_str()));
  config.load.clients = static_cast<std::size_t>(
      flag_int(argc, argv, "--clients", smoke ? 200 : 1000));
  config.load.qps = flag_int(argc, argv, "--qps", smoke ? 500 : 2000);
  config.load.duration =
      flag_int(argc, argv, "--seconds", smoke ? 5 : 10) * kSecond;
  config.load.names =
      static_cast<std::size_t>(flag_int(argc, argv, "--names", 200));
  config.abuse.enabled = true;
  config.abuse.flood_qps =
      flag_int(argc, argv, "--flood-qps", smoke ? 800 : 3000);
  config.abuse.torture_qps =
      flag_int(argc, argv, "--torture-qps", smoke ? 400 : 1500);
  config.abuse.amp_qps = flag_int(argc, argv, "--amp-qps", smoke ? 300 : 1000);
  config.abuse.start = (smoke ? 1 : 2) * kSecond;
  config.abuse.rate_limit_qps = static_cast<std::uint32_t>(
      flag_int(argc, argv, "--rate-limit", 100));
  config.engine.max_ttl = 1;

  const auto result = engine::run_scenario(config);
  const auto& e = result.engine;
  const auto latency = result.load.latency_summary();
  std::printf("abuse scenario: %zu clients at %.0f legit qps for %llu s "
              "(seed %llu)\n",
              config.load.clients, config.load.qps,
              static_cast<unsigned long long>(config.load.duration / kSecond),
              static_cast<unsigned long long>(config.seed));
  for (const auto& attack : result.attacks) {
    std::printf("  %-17s sent %7llu  answered %6llu  refused %6llu  "
                "truncated %6llu\n",
                std::string(engine::attack_kind_name(attack.kind)).c_str(),
                static_cast<unsigned long long>(attack.sent),
                static_cast<unsigned long long>(attack.answered),
                static_cast<unsigned long long>(attack.refused),
                static_cast<unsigned long long>(attack.truncated));
  }
  std::printf("policy         evaluated %llu  dropped %llu  refused %llu  "
              "truncated %llu  routed %llu\n",
              static_cast<unsigned long long>(e.policy_evaluations),
              static_cast<unsigned long long>(e.policy_dropped),
              static_cast<unsigned long long>(e.policy_refused),
              static_cast<unsigned long long>(e.policy_truncated),
              static_cast<unsigned long long>(e.policy_routed));
  for (const auto& rule : e.policy_rules) {
    std::printf("  %-18s %-13s %-10s %8llu hits\n", rule.name.c_str(),
                std::string(policy::matcher_kind_name(rule.matcher)).c_str(),
                std::string(policy::action_kind_name(rule.action)).c_str(),
                static_cast<unsigned long long>(rule.matches));
  }
  std::printf("attack shed    %.1f%%\n", 100.0 * result.attack_shed_rate());
  std::printf("legit          answered %llu  servfail %llu  timeout %llu\n",
              static_cast<unsigned long long>(result.load.answered),
              static_cast<unsigned long long>(result.load.servfails),
              static_cast<unsigned long long>(result.load.timeouts));
  std::printf("legit latency  p50 %.2f  p95 %.2f  p99 %.2f ms\n",
              latency.median, latency.p95, latency.p99);

  const std::string policy_csv_path =
      flag_value(argc, argv, "--policy-csv", "");
  if (!policy_csv_path.empty()) {
    write_file(policy_csv_path, policy::policy_csv(e.policy_rules));
    std::printf("policy report -> %s\n", policy_csv_path.c_str());
  }
  return 0;
}

/// `doxperf churn` — the resolver-churn availability campaign: scripted
/// outages/recoveries and route flaps, answerable-rate + tail-latency time
/// series through every transition, optional mid-run forwarder restart
/// with snapshot warm start.
int run_churn_cmd(int argc, char** argv) {
  const bool smoke = flag_set(argc, argv, "--smoke");
  engine::ChurnConfig config;
  config.seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "42").c_str()));
  config.load.clients = static_cast<std::size_t>(
      flag_int(argc, argv, "--clients", smoke ? 100 : 500));
  config.load.qps = flag_int(argc, argv, "--qps", smoke ? 300 : 1000);
  const int seconds = flag_int(argc, argv, "--seconds", smoke ? 8 : 60);
  config.load.duration = seconds * kSecond;
  config.load.names =
      static_cast<std::size_t>(flag_int(argc, argv, "--names", 200));
  config.bucket = flag_int(argc, argv, "--bucket-ms", 1000) * kMillisecond;
  config.engine.snapshot_dir =
      flag_value(argc, argv, "--snapshot-dir", "");
  config.restart_at = flag_int(argc, argv, "--restart-at", 0) * kSecond;
  // Short TTLs keep refresh traffic flowing, so an outage is visible as
  // latency/timeouts instead of being absorbed by a warmed cache.
  config.engine.max_ttl = 1;

  // Default transition schedule, scaled to the horizon: the primary dies
  // and recovers (timeout-discovered), the second upstream is withdrawn
  // and re-announced (plan-level, no timeout paid).
  const SimTime horizon = config.load.duration;
  config.events = {
      {horizon / 5, 0, engine::ChurnAction::kOutage},
      {horizon / 2, 0, engine::ChurnAction::kRecover},
      {horizon * 3 / 5, 1, engine::ChurnAction::kWithdraw},
      {horizon * 4 / 5, 1, engine::ChurnAction::kAnnounce},
  };

  const auto result = engine::run_churn(config);
  const auto& e = result.engine;
  std::printf("churn campaign: %zu clients, %.0f qps offered for %d s "
              "(seed %llu)\n",
              config.load.clients, config.load.qps, seconds,
              static_cast<unsigned long long>(config.seed));
  for (const auto& event : result.events) {
    std::printf("  t=%5.1fs upstream-%zu %s\n",
                static_cast<double>(event.at) / kSecond, event.upstream,
                std::string(engine::churn_action_name(event.action))
                    .c_str());
  }
  if (config.restart_at > 0) {
    std::printf("  t=%5.1fs forwarder restart (%s; warm-loaded %llu)\n",
                static_cast<double>(config.restart_at) / kSecond,
                config.engine.snapshot_dir.empty() ? "cold"
                                                   : "snapshot warm start",
                static_cast<unsigned long long>(result.warm_loaded));
  }
  std::printf("\n%8s %8s %8s %9s %9s %12s %9s %9s\n", "bucket_s", "sent",
              "answered", "servfails", "timeouts", "answer_rate", "p50_ms",
              "p99_ms");
  for (const auto& bucket : result.series) {
    std::printf("%8.1f %8llu %8llu %9llu %9llu %12.4f %9.2f %9.2f\n",
                static_cast<double>(bucket.start) / kSecond,
                static_cast<unsigned long long>(bucket.sent),
                static_cast<unsigned long long>(bucket.answered),
                static_cast<unsigned long long>(bucket.servfails),
                static_cast<unsigned long long>(bucket.timeouts),
                bucket.answer_rate(), bucket.p50_ms, bucket.p99_ms);
  }
  const auto latency = result.load.latency_summary();
  std::printf("\nclient side    answered %llu  servfail %llu  timeout "
              "%llu\n",
              static_cast<unsigned long long>(result.load.answered),
              static_cast<unsigned long long>(result.load.servfails),
              static_cast<unsigned long long>(result.load.timeouts));
  std::printf("latency        p50 %.2f  p95 %.2f  p99 %.2f ms\n",
              latency.median, latency.p95, latency.p99);
  std::printf("upstream       resolves %llu  attempts %llu  failovers "
              "%llu\n",
              static_cast<unsigned long long>(e.upstream_resolves),
              static_cast<unsigned long long>(e.upstream_attempts),
              static_cast<unsigned long long>(e.failovers));
  if (!config.engine.snapshot_dir.empty()) {
    std::printf("snapshot tier  hit %llu / %llu lookups  warm-loaded "
                "%llu\n",
                static_cast<unsigned long long>(e.snapshot_hits),
                static_cast<unsigned long long>(e.snapshot_lookups),
                static_cast<unsigned long long>(e.snapshot_warm_loaded));
  }

  const std::string csv_path = flag_value(argc, argv, "--churn-csv", "");
  if (!csv_path.empty()) {
    write_file(csv_path, engine::churn_csv(result));
    std::printf("churn series -> %s\n", csv_path.c_str());
  }
  return 0;
}

/// One adverse-path link profile: a name plus the access-link shape every
/// vantage point gets (nullopt = the pinned geo-latency baseline).
struct AdverseProfile {
  const char* name;
  std::optional<net::LinkConfig> link;
};

/// The profile family for `doxperf adverse` — LTE-flavoured impairments
/// from the web-performance literature the paper draws on.
std::vector<AdverseProfile> adverse_profiles() {
  std::vector<AdverseProfile> out;
  out.push_back({"baseline", std::nullopt});

  // Gilbert-Elliott burst loss alone: ~7% stationary loss in ~4-packet
  // bursts, the regime where one lost TCP segment stalls the whole stream
  // but QUIC only delays the affected one.
  net::LinkConfig burst;
  burst.burst_loss = net::GilbertElliott{};
  out.push_back({"burstloss", burst});

  // Bufferbloat: a 10 Mbit/s bottleneck with a deep FIFO — no loss, but
  // queueing delay inflates every RTT once the link saturates.
  net::LinkConfig bloat;
  bloat.rate_bps = 10e6;
  bloat.queue_bytes = 256 * 1024;
  out.push_back({"bufferbloat", bloat});

  // Handover: scripted RTT steps, +80 ms one-way between t=1s and t=3s
  // (a radio handover mid-measurement).
  net::LinkConfig handover;
  handover.delay_steps = {{0, 0}, {1 * kSecond, from_ms(80)},
                          {3 * kSecond, 0}};
  out.push_back({"handover", handover});

  // LTE composite: constrained rate, moderate queue, burst loss and one
  // handover step together.
  net::LinkConfig lte;
  lte.rate_bps = 8e6;
  lte.queue_bytes = 96 * 1024;
  lte.burst_loss = net::GilbertElliott{};
  lte.delay_steps = {{0, 0}, {2 * kSecond, from_ms(60)}, {4 * kSecond, 0}};
  out.push_back({"lte", lte});
  return out;
}

/// `doxperf adverse` — the single-query sweep per link profile, with real
/// congestion control on every transport. Runs on the campaign runner, so
/// output is a pure function of the seed (never of --jobs).
int run_adverse(int argc, char** argv) {
  const bool smoke = flag_set(argc, argv, "--smoke");
  runner::CampaignConfig campaign;
  campaign.seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "42").c_str()));
  campaign.jobs = flag_int(argc, argv, "--jobs", 1);
  campaign.population.verified_only = true;
  campaign.population.verified_dox =
      flag_int(argc, argv, "--resolvers", smoke ? 4 : 12);

  std::vector<dox::DnsProtocol> protocols{std::begin(dox::kAllProtocols),
                                          std::end(dox::kAllProtocols)};
  const std::string protocol_list = flag_value(argc, argv, "--protocols", "");
  if (!protocol_list.empty()) protocols = parse_protocols(protocol_list);

  SingleQueryConfig sq;
  sq.protocols = protocols;
  sq.qname = flag_value(argc, argv, "--qname", "google.com");
  sq.repetitions = flag_int(argc, argv, "--reps", smoke ? 1 : 3);
  sq.tcp_congestion = cc::CcAlgorithm::kNewReno;
  sq.quic_enable_cc = true;

  std::vector<AdverseProfile> profiles = adverse_profiles();
  const std::string profile_list = flag_value(argc, argv, "--profiles", "");
  if (!profile_list.empty()) {
    std::vector<AdverseProfile> chosen;
    for (const std::string& raw : split(profile_list, ',')) {
      const std::string name = to_lower(raw);
      bool found = false;
      for (const AdverseProfile& p : profiles) {
        if (name == p.name) {
          chosen.push_back(p);
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown profile: %s\n", name.c_str());
        return 2;
      }
    }
    profiles = std::move(chosen);
  }

  std::string csv = "profile,protocol,vp,resolver,rep,success,"
                    "handshake_ms,resolve_ms,total_ms\n";
  std::printf("adverse-path study: %d resolvers, %d reps, seed %llu "
              "(TCP NewReno, QUIC RFC 9002 CC)\n\n",
              campaign.population.verified_dox, sq.repetitions,
              static_cast<unsigned long long>(campaign.seed));
  std::printf("%-12s %-6s %6s %6s %9s %9s %9s\n", "profile", "proto", "n",
              "fail%", "p50 ms", "p95 ms", "hs p50");
  for (const AdverseProfile& profile : profiles) {
    campaign.access_link = profile.link;
    const auto records = runner::run_single_query_campaign(campaign, sq);
    for (dox::DnsProtocol protocol : protocols) {
      std::vector<double> resolve_ms;
      std::vector<double> handshake_ms;
      std::size_t n = 0;
      std::size_t failures = 0;
      for (const auto& record : records) {
        if (record.protocol != protocol) continue;
        ++n;
        if (!record.success) {
          ++failures;
          continue;
        }
        resolve_ms.push_back(to_ms(record.resolve_time));
        handshake_ms.push_back(to_ms(record.handshake_time));
      }
      const auto p50 = stats::percentile(resolve_ms, 50.0);
      const auto p95 = stats::percentile(resolve_ms, 95.0);
      const auto hs50 = stats::percentile(handshake_ms, 50.0);
      std::printf("%-12s %-6s %6zu %6.1f %9.2f %9.2f %9.2f\n", profile.name,
                  std::string(dox::protocol_name(protocol)).c_str(), n,
                  n ? 100.0 * static_cast<double>(failures) /
                          static_cast<double>(n)
                    : 0.0,
                  p50.value_or(0.0), p95.value_or(0.0), hs50.value_or(0.0));
    }
    for (const auto& record : records) {
      char line[256];
      std::snprintf(line, sizeof(line), "%s,%s,%d,%d,%d,%d,%.3f,%.3f,%.3f\n",
                    profile.name,
                    std::string(dox::protocol_name(record.protocol)).c_str(),
                    record.vp, record.resolver, record.rep,
                    record.success ? 1 : 0, to_ms(record.handshake_time),
                    to_ms(record.resolve_time), to_ms(record.total_time));
      csv += line;
    }
    std::printf("\n");
  }
  const std::string csv_path = flag_value(argc, argv, "--csv", "");
  if (!csv_path.empty()) {
    write_file(csv_path, csv);
    std::printf("raw records -> %s\n", csv_path.c_str());
  }
  return 0;
}

/// `doxperf campaign` — the measurement studies sharded across a
/// work-stealing pool; reports the same tables plus wall-clock timing.
int run_campaign(int argc, char** argv) {
  runner::CampaignConfig campaign;
  campaign.seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "42").c_str()));
  campaign.jobs = flag_int(argc, argv, "--jobs", 1);
  campaign.population.verified_only = true;
  campaign.population.verified_dox = flag_int(argc, argv, "--resolvers", 48);
  if (flag_set(argc, argv, "--0rtt")) {
    campaign.population.force_supports_0rtt = true;
  }
  if (flag_set(argc, argv, "--doh3")) {
    campaign.population.force_supports_doh3 = true;
  }

  std::vector<dox::DnsProtocol> protocols{std::begin(dox::kAllProtocols),
                                          std::end(dox::kAllProtocols)};
  const std::string protocol_list = flag_value(argc, argv, "--protocols", "");
  if (!protocol_list.empty()) protocols = parse_protocols(protocol_list);

  std::vector<std::string> vp_names;
  for (const net::City& city : net::vantage_point_cities()) {
    vp_names.push_back(city.name);
  }
  const std::string csv_path = flag_value(argc, argv, "--csv", "");
  const auto started = std::chrono::steady_clock::now();
  const auto wall_seconds = [&started] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  if (flag_set(argc, argv, "--web")) {
    WebStudyConfig web;
    web.protocols = protocols;
    web.max_resolvers = std::min<int>(
        campaign.population.verified_dox,
        flag_int(argc, argv, "--resolvers", 48));
    web.loads_per_combo = flag_int(argc, argv, "--loads", 4);
    web.repetitions = flag_int(argc, argv, "--reps", 1);
    web.dot_buggy_reuse = !flag_set(argc, argv, "--fix-dot");
    web.attempt_0rtt = true;
    const std::string pages = flag_value(argc, argv, "--pages", "");
    if (!pages.empty()) web.pages = split(pages, ',');

    auto records = runner::run_web_campaign(campaign, web);
    std::printf("%s", render_fig3(fig3_relative(records)).c_str());
    std::printf("%s",
                render_fig4(fig4_cells(records, vp_names), vp_names).c_str());
    std::printf("campaign: %zu records in %.2f s (--jobs %d)\n",
                records.size(), wall_seconds(), campaign.jobs);
    if (!csv_path.empty()) {
      write_file(csv_path, web_csv(records));
      std::printf("raw records -> %s\n", csv_path.c_str());
    }
    return 0;
  }

  SingleQueryConfig sq;
  sq.protocols = protocols;
  sq.qname = flag_value(argc, argv, "--qname", "google.com");
  sq.repetitions = flag_int(argc, argv, "--reps", 1);
  sq.use_session_resumption = !flag_set(argc, argv, "--no-resumption");
  sq.use_address_token = !flag_set(argc, argv, "--no-token");
  sq.pad_encrypted = flag_set(argc, argv, "--pad");

  auto records = runner::run_single_query_campaign(campaign, sq);
  std::printf("%s\n", render_table1(table1_sizes(records), nullptr).c_str());
  std::printf("%s",
              render_fig2(fig2_handshake_resolve(records, vp_names)).c_str());
  std::printf("%s", render_mix(protocol_mix(records)).c_str());
  std::printf("campaign: %zu records in %.2f s (--jobs %d)\n",
              records.size(), wall_seconds(), campaign.jobs);
  if (!csv_path.empty()) {
    write_file(csv_path, single_query_csv(records));
    std::printf("raw records -> %s\n", csv_path.c_str());
  }
  const std::string failure_csv =
      flag_value(argc, argv, "--failure-csv", "");
  if (!failure_csv.empty()) {
    write_file(failure_csv, failure_rate_csv(records));
    std::printf("failure report -> %s\n", failure_csv.c_str());
  }
  return 0;
}

}  // namespace

int run(int argc, char** argv);

int main(int argc, char** argv) {
  if (flag_set(argc, argv, "--help") || flag_set(argc, argv, "-h")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  try {
    if (argc > 1 && std::strcmp(argv[1], "engine") == 0) {
      return run_engine(argc, argv);
    }
    if (argc > 1 && std::strcmp(argv[1], "abuse") == 0) {
      return run_abuse(argc, argv);
    }
    if (argc > 1 && std::strcmp(argv[1], "churn") == 0) {
      return run_churn_cmd(argc, argv);
    }
    if (argc > 1 && std::strcmp(argv[1], "campaign") == 0) {
      return run_campaign(argc, argv);
    }
    if (argc > 1 && std::strcmp(argv[1], "adverse") == 0) {
      return run_adverse(argc, argv);
    }
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "doxperf: %s\n", e.what());
    return 2;
  }
}

int run(int argc, char** argv) {

  TestbedConfig config;
  config.seed =
      static_cast<std::uint64_t>(std::atoll(
          flag_value(argc, argv, "--seed", "42").c_str()));
  config.population.verified_only = true;
  config.population.verified_dox =
      std::atoi(flag_value(argc, argv, "--resolvers", "48").c_str());
  if (flag_set(argc, argv, "--0rtt")) {
    config.population.force_supports_0rtt = true;
  }
  if (flag_set(argc, argv, "--doh3")) {
    config.population.force_supports_doh3 = true;
  }

  std::vector<dox::DnsProtocol> protocols{std::begin(dox::kAllProtocols),
                                          std::end(dox::kAllProtocols)};
  const std::string protocol_list = flag_value(argc, argv, "--protocols", "");
  if (!protocol_list.empty()) protocols = parse_protocols(protocol_list);

  Testbed testbed(config);
  std::vector<std::string> vp_names;
  for (auto& vp : testbed.vantage_points()) vp_names.push_back(vp->name);
  const std::string csv_path = flag_value(argc, argv, "--csv", "");

  if (flag_set(argc, argv, "--web")) {
    WebStudyConfig web;
    web.protocols = protocols;
    web.max_resolvers = std::min<int>(
        config.population.verified_dox,
        std::atoi(flag_value(argc, argv, "--resolvers", "48").c_str()));
    web.loads_per_combo =
        std::atoi(flag_value(argc, argv, "--loads", "4").c_str());
    web.dot_buggy_reuse = !flag_set(argc, argv, "--fix-dot");
    web.attempt_0rtt = true;
    const std::string pages = flag_value(argc, argv, "--pages", "");
    if (!pages.empty()) web.pages = split(pages, ',');

    WebStudy study(testbed, web);
    auto records = study.run();
    std::printf("%s", render_fig3(fig3_relative(records)).c_str());
    std::printf("%s",
                render_fig4(fig4_cells(records, vp_names), vp_names).c_str());
    if (!csv_path.empty()) {
      write_file(csv_path, web_csv(records));
      std::printf("raw records -> %s\n", csv_path.c_str());
    }
    return 0;
  }

  SingleQueryConfig sq;
  sq.protocols = protocols;
  sq.qname = flag_value(argc, argv, "--qname", "google.com");
  sq.repetitions = std::atoi(flag_value(argc, argv, "--reps", "1").c_str());
  sq.use_session_resumption = !flag_set(argc, argv, "--no-resumption");
  sq.use_address_token = !flag_set(argc, argv, "--no-token");
  sq.pad_encrypted = flag_set(argc, argv, "--pad");

  SingleQueryStudy study(testbed, sq);
  auto records = study.run();

  std::printf("%s\n", render_table1(table1_sizes(records), nullptr).c_str());
  std::printf("%s",
              render_fig2(fig2_handshake_resolve(records, vp_names)).c_str());
  std::printf("%s", render_mix(protocol_mix(records)).c_str());
  if (!csv_path.empty()) {
    write_file(csv_path, single_query_csv(records));
    std::printf("raw records -> %s\n", csv_path.c_str());
  }
  const std::string failure_csv =
      flag_value(argc, argv, "--failure-csv", "");
  if (!failure_csv.empty()) {
    write_file(failure_csv, failure_rate_csv(records));
    std::printf("failure report -> %s\n", failure_csv.c_str());
  }
  return 0;
}
