// Compares one warmed query over all five DNS transports against the same
// resolver — a miniature of the paper's single-query study (§3.1),
// including the cache-warming + session-resumption methodology.
//
//   ./build/examples/compare_protocols
#include <cstdio>

#include "dox/transport.h"
#include "net/network.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"
#include "stats/table.h"

using namespace doxlab;

namespace {

struct Measurement {
  dox::QueryResult result;
  dox::WireStats bytes;
};

Measurement measure(sim::Simulator& sim, const dox::TransportDeps& deps,
                    dox::DnsProtocol protocol, net::IpAddress resolver) {
  dox::TransportOptions options;
  options.resolver = net::Endpoint{resolver, dox::default_port(protocol)};
  const dns::Question question{dns::DnsName::parse("google.com"),
                               dns::RRType::kA, dns::RRClass::kIN};

  // Cache-warming query: populates the resolver cache and learns the TLS
  // ticket / QUIC token, exactly like dnsperf in the paper.
  {
    auto warm = dox::make_transport(protocol, deps, options);
    bool done = false;
    warm->resolve(question, [&](dox::QueryResult) { done = true; });
    sim.run_until(sim.now() + 30 * kSecond);
    sim.run_until(sim.now() + 300 * kMillisecond);
    warm->reset_sessions();
    sim.run_until(sim.now() + kSecond);
    (void)done;
  }

  Measurement out;
  auto transport = dox::make_transport(protocol, deps, options);
  bool done = false;
  transport->resolve(question, [&](dox::QueryResult r) {
    out.result = std::move(r);
    done = true;
  });
  sim.run_until(sim.now() + 30 * kSecond);
  sim.run_until(sim.now() + 300 * kMillisecond);
  transport->reset_sessions();
  sim.run_until(sim.now() + 2 * kSecond);
  out.bytes = transport->wire_stats();
  (void)done;
  return out;
}

}  // namespace

int main() {
  sim::Simulator sim;
  net::Network network(sim, Rng(7));

  resolver::ResolverProfile profile;
  profile.name = "resolver";
  profile.address = net::IpAddress::from_octets(10, 0, 0, 53);
  profile.location = {48.86, 2.35};  // Paris
  profile.secret = 0xCAFE;
  resolver::DoxResolver resolver(network, profile, Rng(3));

  auto& client = network.add_host("client",
                                  net::IpAddress::from_octets(10, 0, 0, 1),
                                  {50.11, 8.68}, net::Continent::kEurope);
  net::UdpStack udp(client);
  tcp::TcpStack tcp(client);
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;
  dox::TransportDeps deps{&sim, &udp, &tcp, &tickets, &doq_cache};

  stats::TextTable table({"Protocol", "Handshake ms", "Resolve ms",
                          "Total ms", "Bytes C->R", "Bytes R->C",
                          "Session"});
  for (dox::DnsProtocol protocol : dox::kAllProtocols) {
    Measurement m = measure(sim, deps, protocol, profile.address);
    std::string session = "-";
    if (m.result.used_0rtt) {
      session = "0-RTT";
    } else if (m.result.session_resumed) {
      session = "resumed";
    } else if (m.result.tls_version) {
      session = "full";
    }
    table.add_row({std::string(dox::protocol_name(protocol)),
                   stats::cell(to_ms(m.result.handshake_time()), 1),
                   stats::cell(to_ms(m.result.resolve_time()), 1),
                   stats::cell(to_ms(m.result.total_time()), 1),
                   std::to_string(m.bytes.total_c2r),
                   std::to_string(m.bytes.total_r2c), session});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nExpected shape (paper §3.1): DoQ matches DoTCP (1 RTT handshake),\n"
      "DoT/DoH need 2 RTTs, resolve times are equal, and DoQ moves by far\n"
      "the most handshake bytes (padded INITIALs).\n");
  return 0;
}
