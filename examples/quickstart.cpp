// Quickstart: build a one-client, one-resolver world and issue a DNS query
// over DNS-over-QUIC — the library's "hello world".
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "dox/transport.h"
#include "net/network.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"

using namespace doxlab;

int main() {
  // 1. A simulator drives everything; a network connects hosts with
  //    geography-derived latency.
  sim::Simulator sim;
  net::Network network(sim, Rng(/*seed=*/1));

  // 2. A resolver in Amsterdam speaking all five DNS transports.
  resolver::ResolverProfile profile;
  profile.name = "resolver-ams";
  profile.address = net::IpAddress::from_octets(10, 0, 0, 53);
  profile.location = {52.37, 4.90};
  profile.continent = net::Continent::kEurope;
  profile.secret = 0xD00D;
  resolver::DoxResolver resolver(network, profile, Rng(2));

  // 3. A client machine in Frankfurt.
  auto& client = network.add_host("client",
                                  net::IpAddress::from_octets(10, 0, 0, 1),
                                  {50.11, 8.68}, net::Continent::kEurope);
  net::UdpStack udp(client);
  tcp::TcpStack tcp(client);
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;

  // 4. A DoQ transport to that resolver.
  dox::TransportDeps deps;
  deps.sim = &sim;
  deps.udp = &udp;
  deps.tcp = &tcp;
  deps.tickets = &tickets;
  deps.doq_cache = &doq_cache;
  dox::TransportOptions options;
  options.resolver = net::Endpoint{profile.address, 853};
  auto transport = dox::make_transport(dox::DnsProtocol::kDoQ, deps, options);

  // 5. Resolve google.com and print what happened.
  transport->resolve(
      dns::Question{dns::DnsName::parse("google.com"), dns::RRType::kA,
                    dns::RRClass::kIN},
      [&](dox::QueryResult result) {
        if (!result.ok()) {
          std::printf("query failed: %s\n", result.error().to_string().c_str());
          return;
        }
        auto ip = dns::rdata_as_a(result.response.answers.at(0));
        std::printf("google.com -> %s\n",
                    net::IpAddress(ip.value_or(0)).to_string().c_str());
        std::printf("  QUIC handshake: %6.1f ms (%s, ALPN %s)\n",
                    to_ms(result.handshake_time()),
                    result.session_resumed ? "resumed" : "full",
                    result.alpn.c_str());
        std::printf("  resolve:        %6.1f ms\n",
                    to_ms(result.resolve_time()));
        std::printf("  total:          %6.1f ms\n", to_ms(result.total_time()));
      });
  sim.run();

  auto stats = transport->wire_stats();
  std::printf("  wire bytes:     %llu C->R, %llu R->C\n",
              (unsigned long long)stats.total_c2r,
              (unsigned long long)stats.total_r2c);
  return 0;
}
