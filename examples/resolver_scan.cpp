// Runs the ZMap-style discovery pipeline against a small synthetic world —
// the paper's §2 methodology end to end: version-negotiation probing, DoQ
// ALPN verification, and per-protocol support probing.
//
//   ./build/examples/resolver_scan
#include <cstdio>

#include "net/network.h"
#include "scan/population.h"
#include "scan/scanner.h"
#include "sim/simulator.h"

using namespace doxlab;

int main() {
  sim::Simulator sim;
  Rng rng(2022);
  net::Network network(sim, rng.fork());
  network.set_loss_rate(0.0);

  // A scaled-down world: ~20 verified DoX resolvers among ~80 DoQ hosts.
  scan::PopulationConfig config;
  config.verified_dox = 20;
  config.total_doq = 80;
  Rng pop_rng = rng.fork();
  scan::Population population =
      scan::build_population(network, config, pop_rng);

  auto& scanner_host = network.add_host(
      "scanner", net::IpAddress::from_octets(10, 9, 9, 9), {48.26, 11.67},
      net::Continent::kEurope);

  std::vector<net::IpAddress> candidates;
  for (const auto& resolver : population.resolvers) {
    candidates.push_back(resolver->profile().address);
  }
  for (int i = 0; i < 100; ++i) {  // dark space
    candidates.push_back(net::IpAddress(0x0AC00000u + i));
  }

  scan::Ipv4Scanner scanner(network, scanner_host, scan::ScanConfig{});
  scan::ScanReport report = scanner.run(candidates);

  std::printf("probed %llu addresses (%llu QUIC probes on 3 ports)\n",
              (unsigned long long)report.addresses_probed,
              (unsigned long long)report.probes_sent);
  std::printf("version-negotiation responders: %zu\n",
              report.quic_hosts.size());
  std::printf("DoQ (ALPN verified):            %zu\n",
              report.doq_resolvers.size());
  std::printf("  + DoUDP: %d, DoTCP: %d, DoT: %d, DoH: %d\n", report.doudp,
              report.dotcp, report.dot, report.doh);
  std::printf("verified DoX resolvers:         %zu (planted: %zu)\n",
              report.verified_dox.size(), population.verified.size());
  return 0;
}
