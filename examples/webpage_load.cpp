// Loads two of the modelled Tranco pages (a simple one and a complex one)
// through the local DNS proxy over DoUDP, DoH and DoQ, and prints FCP/PLT —
// a miniature of the paper's web-performance study (§3.2) showing the
// amortization effect.
//
//   ./build/examples/webpage_load
#include <cstdio>

#include "net/network.h"
#include "proxy/proxy.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "web/browser.h"

using namespace doxlab;

int main() {
  sim::Simulator sim;
  net::Network network(sim, Rng(11));

  resolver::ResolverProfile profile;
  profile.name = "resolver";
  profile.address = net::IpAddress::from_octets(10, 0, 0, 53);
  profile.location = {40.71, -74.01};  // a transatlantic resolver
  profile.continent = net::Continent::kNorthAmerica;
  profile.secret = 0xFACE;
  resolver::DoxResolver resolver(network, profile, Rng(4));

  auto& client = network.add_host("laptop",
                                  net::IpAddress::from_octets(10, 0, 0, 1),
                                  {50.11, 8.68}, net::Continent::kEurope);
  net::UdpStack udp(client);
  tcp::TcpStack tcp(client);
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;
  dox::TransportDeps deps{&sim, &udp, &tcp, &tickets, &doq_cache};

  // Deterministic CDN RTTs per origin.
  auto origin_rtt = [](const dns::DnsName& domain) {
    return from_ms(10.0 + (std::hash<std::string>()(domain.to_string()) %
                           2500) / 100.0);
  };

  stats::TextTable table(
      {"Page", "Protocol", "FCP ms", "PLT ms", "#DNS queries"});
  for (const char* page_name : {"wikipedia.org", "youtube.com"}) {
    const web::WebPage& page = web::page_by_name(page_name);
    for (dox::DnsProtocol protocol :
         {dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoH,
          dox::DnsProtocol::kDoQ}) {
      // Fresh proxy per protocol, exactly like the study's methodology.
      proxy::ProxyConfig proxy_config;
      proxy_config.upstream_protocol = protocol;
      proxy_config.upstream =
          net::Endpoint{profile.address, dox::default_port(protocol)};
      proxy::DnsProxy proxy(sim, udp, deps, proxy_config);

      web::BrowserConfig browser_config;
      browser_config.stub_resolver = net::Endpoint{client.address(), 53};

      // Warm navigation (resolver cache + session tickets), then reset
      // sessions and measure a cold-start load.
      for (int pass = 0; pass < 2; ++pass) {
        web::Browser browser(sim, udp, browser_config, origin_rtt, Rng(5));
        web::PageLoadMetrics metrics;
        bool done = false;
        browser.navigate(page, [&](web::PageLoadMetrics m) {
          metrics = std::move(m);
          done = true;
        });
        sim.run_until(sim.now() + 300 * kSecond);
        if (pass == 0) {
          sim.run_until(sim.now() + 500 * kMillisecond);
          proxy.reset_sessions();
          sim.run_until(sim.now() + 500 * kMillisecond);
          continue;
        }
        if (!done || !metrics.success) {
          std::printf("load failed: %s\n", metrics.error.to_string().c_str());
          continue;
        }
        table.add_row({page.name, std::string(dox::protocol_name(protocol)),
                       stats::cell(to_ms(metrics.fcp), 0),
                       stats::cell(to_ms(metrics.plt), 0),
                       std::to_string(metrics.dns_queries)});
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nExpected shape (paper §3.2): encrypted DNS costs the most on the\n"
      "simple page (one query pays the whole upstream handshake); on the\n"
      "complex page the cost amortizes over many queries, and DoQ sits\n"
      "between DoUDP and DoH.\n");
  return 0;
}
