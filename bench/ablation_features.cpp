// Ablation benches for the design choices DESIGN.md §5 calls out. Each
// section flips one mechanism and reports its effect on single-query or web
// timings:
//   1. Session resumption off — reproduces the paper's *preliminary work*:
//      full handshakes hit the QUIC 3x amplification limit and stall.
//   2. 0-RTT on — the paper's future-work projection: DoQ approaches DoUDP.
//   3. Address-validation token off + Retry-requiring resolvers — +1 RTT.
//   4. dnsproxy DoT reuse bug on/off — Fig. 3's DoT tail.
//   5. TFO + RFC 9210 connection reuse for DoTCP — what DoTCP could do.
//   6. Amplification stall rate as a function of certificate-chain size.
//
// Usage: ablation_features [--resolvers=N]
#include <cstdio>

#include "bench_util.h"
#include "measure/report.h"
#include "measure/single_query.h"
#include "measure/web_study.h"
#include "stats/stats.h"

using namespace doxlab;
using namespace doxlab::measure;

namespace {

double protocol_median(const std::vector<SingleQueryRecord>& records,
                       dox::DnsProtocol protocol, bool handshake) {
  std::vector<double> values;
  for (const auto& r : records) {
    if (!r.success || r.protocol != protocol) continue;
    values.push_back(to_ms(handshake ? r.handshake_time : r.resolve_time));
  }
  return stats::median(values).value_or(0);
}

double total_median(const std::vector<SingleQueryRecord>& records,
                    dox::DnsProtocol protocol) {
  std::vector<double> values;
  for (const auto& r : records) {
    if (!r.success || r.protocol != protocol) continue;
    // total_time, not handshake+resolve: with 0-RTT the phases overlap.
    values.push_back(to_ms(r.total_time));
  }
  return stats::median(values).value_or(0);
}

std::vector<SingleQueryRecord> run_single(TestbedConfig testbed_config,
                                          SingleQueryConfig config) {
  Testbed testbed(testbed_config);
  SingleQueryStudy study(testbed, config);
  return study.run();
}

}  // namespace

int main(int argc, char** argv) {
  const int resolvers = bench::flag_int(argc, argv, "--resolvers", 30);
  TestbedConfig base;
  base.population.verified_only = true;
  base.population.verified_dox = resolvers;

  SingleQueryConfig doq_only;
  doq_only.protocols = {dox::DnsProtocol::kDoQ};

  // ---------------------------------------------------------------- 1.
  bench::banner("Ablation 1 — session resumption (DoQ handshake, ms)");
  {
    auto with = run_single(base, doq_only);
    SingleQueryConfig no_resumption = doq_only;
    no_resumption.use_session_resumption = false;
    no_resumption.use_address_token = false;
    auto without = run_single(base, no_resumption);
    const double hs_with = protocol_median(with, dox::DnsProtocol::kDoQ, true);
    const double hs_without =
        protocol_median(without, dox::DnsProtocol::kDoQ, true);
    const double rtt =
        protocol_median(with, dox::DnsProtocol::kDoQ, false);  // ~1 RTT
    int stalls = 0, n = 0;
    for (const auto& r : without) {
      if (!r.success) continue;
      ++n;
      // A full handshake that exceeds ~1.6 RTT hit the amplification limit.
      if (to_ms(r.handshake_time) > 1.6 * to_ms(r.resolve_time)) ++stalls;
    }
    std::printf("resumption + token:  median handshake %7.1f ms (1 RTT)\n",
                hs_with);
    std::printf("full handshake:      median handshake %7.1f ms\n",
                hs_without);
    std::printf("amplification stalls without resumption: %d/%d (%.0f%%)\n",
                stalls, n, 100.0 * stalls / std::max(1, n));
    std::printf(
        "paper (preliminary work): ~40%% of DoQ handshakes stalled for an\n"
        "extra RTT before Session Resumption was used; with it, none.\n");
    (void)rtt;
  }

  // ---------------------------------------------------------------- 2.
  bench::banner("Ablation 2 — 0-RTT (total time of query exchange, ms)");
  {
    auto baseline = run_single(base, SingleQueryConfig{});
    TestbedConfig zero_rtt_world = base;
    zero_rtt_world.population.force_supports_0rtt = true;
    auto zero = run_single(zero_rtt_world, SingleQueryConfig{});
    std::printf("%-22s %10s %10s %10s\n", "", "DoUDP", "DoQ", "DoT");
    std::printf("%-22s %9.1f  %9.1f  %9.1f\n", "no 0-RTT (paper)",
                total_median(baseline, dox::DnsProtocol::kDoUdp),
                total_median(baseline, dox::DnsProtocol::kDoQ),
                total_median(baseline, dox::DnsProtocol::kDoT));
    std::printf("%-22s %9.1f  %9.1f  %9.1f\n", "0-RTT everywhere",
                total_median(zero, dox::DnsProtocol::kDoUdp),
                total_median(zero, dox::DnsProtocol::kDoQ),
                total_median(zero, dox::DnsProtocol::kDoT));
    int used = 0, n = 0;
    for (const auto& r : zero) {
      if (r.protocol != dox::DnsProtocol::kDoQ || !r.success) continue;
      ++n;
      used += r.used_0rtt;
    }
    std::printf("DoQ measurements using 0-RTT: %d/%d\n", used, n);
    std::printf(
        "paper (future work): resolver 0-RTT support \"can shift the total\n"
        "response times of DoQ even closer to DoUDP\".\n");
  }

  // ---------------------------------------------------------------- 3.
  bench::banner("Ablation 3 — address-validation token vs Retry (DoQ)");
  {
    TestbedConfig retry_world = base;
    retry_world.population.force_validate_with_retry = true;
    auto with_token = run_single(retry_world, doq_only);
    SingleQueryConfig no_token = doq_only;
    no_token.use_address_token = false;
    auto without_token = run_single(retry_world, no_token);
    std::printf("Retry-requiring resolvers, token presented:  %7.1f ms\n",
                protocol_median(with_token, dox::DnsProtocol::kDoQ, true));
    std::printf("Retry-requiring resolvers, no token (+1 RTT): %6.1f ms\n",
                protocol_median(without_token, dox::DnsProtocol::kDoQ, true));
    std::printf(
        "paper: NEW_TOKEN reuse (with resumption, per RFC 9250) avoids the\n"
        "address-validation round trip.\n");
  }

  // ---------------------------------------------------------------- 4.
  bench::banner("Ablation 4 — dnsproxy DoT connection-reuse bug (web PLT)");
  {
    Testbed testbed(base);
    WebStudyConfig buggy;
    buggy.max_resolvers = 6;
    buggy.pages = {"facebook.com", "youtube.com"};
    buggy.protocols = {dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoT};
    buggy.dot_buggy_reuse = true;
    auto buggy_records = WebStudy(testbed, buggy).run();
    WebStudyConfig fixed = buggy;
    fixed.dot_buggy_reuse = false;
    auto fixed_records = WebStudy(testbed, fixed).run();
    auto median_rel = [](const std::vector<WebRecord>& records) {
      auto report = fig3_relative(records);
      return stats::median(report.plt_rel[dox::DnsProtocol::kDoT])
          .value_or(0);
    };
    std::printf("DoT PLT degradation vs DoUDP, buggy reuse:  %+6.1f%%\n",
                100 * median_rel(buggy_records));
    std::printf("DoT PLT degradation vs DoUDP, fixed reuse:  %+6.1f%%\n",
                100 * median_rel(fixed_records));
    std::printf(
        "paper: the bug re-ran the full transport+TLS handshake in ~60%% of\n"
        "DoT page loads; the authors upstreamed the fix.\n");
  }

  // ---------------------------------------------------------------- 5.
  bench::banner("Ablation 5 — DoTCP with TFO + RFC 9210 reuse (handshake)");
  {
    auto observed = run_single(base, SingleQueryConfig{});
    // TFO world: resolvers accept fast-open and clients hold cookies.
    TestbedConfig tfo_world = base;
    tfo_world.population.force_supports_tfo = true;
    Testbed testbed(tfo_world);
    for (auto& vp : testbed.vantage_points()) {
      for (const auto& resolver : testbed.population().resolvers) {
        vp->tcp->learn_tfo_cookie(resolver->profile().address);
      }
    }
    SingleQueryConfig tcp_only;
    tcp_only.protocols = {dox::DnsProtocol::kDoTcp};
    tcp_only.tcp_use_tfo = true;
    SingleQueryStudy study(testbed, tcp_only);
    auto records = study.run();
    std::printf("DoTCP observed behaviour: total %7.1f ms (2 RTT: handshake"
                " then exchange)\n",
                total_median(observed, dox::DnsProtocol::kDoTcp));
    std::printf("DoTCP with TFO:           total %7.1f ms (1 RTT: the query"
                " rides the SYN)\n",
                total_median(records, dox::DnsProtocol::kDoTcp));
    std::printf(
        "paper: no resolver supports TFO or edns-tcp-keepalive, so every\n"
        "DoTCP query costs 2 RTTs (handshake + exchange) despite RFC 9210.\n");
  }

  // ---------------------------------------------------------------- 6.
  bench::banner(
      "Ablation 6 — amplification stalls vs certificate size (DoQ, no "
      "resumption)");
  {
    std::printf("%-18s %12s\n", "cert chain bytes", "stall rate");
    for (std::size_t cert : {1500u, 2500u, 3500u, 4500u, 6000u}) {
      sim::Simulator sim;
      Rng rng(99);
      net::Network network(sim, rng.fork());
      network.set_loss_rate(0.0);
      resolver::ResolverProfile profile;
      profile.name = "r";
      profile.address = net::IpAddress::from_octets(10, 50, 0, 1);
      profile.location = {50.0, 8.0};
      profile.secret = 0x1;
      profile.certificate_chain_size = cert;
      profile.drop_probability = 0.0;
      resolver::DoxResolver resolver(network, profile, rng.fork());
      auto& client = network.add_host(
          "c", net::IpAddress::from_octets(10, 50, 0, 2), {52.0, 5.0},
          net::Continent::kEurope);
      network.set_path_override(client.address(), profile.address,
                                from_ms(20));
      net::UdpStack udp(client);
      tls::TicketStore tickets;
      dox::DoqSessionCache cache;
      dox::TransportDeps deps;
      deps.sim = &sim;
      deps.udp = &udp;
      deps.tickets = &tickets;
      deps.doq_cache = &cache;
      dox::TransportOptions options;
      options.resolver = {profile.address, 853};
      options.use_session_resumption = false;
      options.use_address_token = false;
      int stalls = 0;
      const int trials = 10;
      for (int i = 0; i < trials; ++i) {
        auto transport =
            dox::make_transport(dox::DnsProtocol::kDoQ, deps, options);
        std::optional<dox::QueryResult> result;
        transport->resolve(
            {dns::DnsName::parse("google.com"), dns::RRType::kA,
             dns::RRClass::kIN},
            [&](dox::QueryResult r) { result = std::move(r); });
        sim.run_until(sim.now() + 30 * kSecond);
        if (result && result->ok() &&
            to_ms(result->handshake_time()) > 60.0) {
          ++stalls;  // > 1.5 RTT: amplification stall
        }
        transport->reset_sessions();
        sim.run_until(sim.now() + kSecond);
      }
      std::printf("%-18zu %10d/%d\n", cert, stalls, trials);
    }
    std::printf(
        "paper mechanism: the server may send at most 3x the client's\n"
        "~1.2 KB INITIAL before validation; chains above ~3.6 KB minus the\n"
        "handshake overhead stall for one extra round trip.\n");
  }

  // ---------------------------------------------------------------- 7.
  bench::banner("Ablation 7 — RFC 8467 DNS padding (median bytes, DoT/DoQ)");
  {
    auto plain = run_single(base, SingleQueryConfig{});
    SingleQueryConfig padded_config;
    padded_config.pad_encrypted = true;
    auto padded = run_single(base, padded_config);
    auto med_bytes = [](const std::vector<SingleQueryRecord>& records,
                        dox::DnsProtocol protocol, bool query) {
      std::vector<double> v;
      for (const auto& r : records) {
        if (!r.success || r.protocol != protocol) continue;
        v.push_back(static_cast<double>(query ? r.bytes.query_c2r()
                                              : r.bytes.response_r2c()));
      }
      return stats::median(v).value_or(0);
    };
    std::printf("%-12s %14s %14s\n", "", "query bytes", "response bytes");
    for (dox::DnsProtocol protocol :
         {dox::DnsProtocol::kDoT, dox::DnsProtocol::kDoQ}) {
      std::printf("%-12s %9.0f->%4.0f %9.0f->%4.0f\n",
                  std::string(dox::protocol_name(protocol)).c_str(),
                  med_bytes(plain, protocol, true),
                  med_bytes(padded, protocol, true),
                  med_bytes(plain, protocol, false),
                  med_bytes(padded, protocol, false));
    }
    std::printf(
        "The 2022 population used no padding (the paper's Table 1 sizes\n"
        "imply none); RFC 8467 trades these extra bytes for resistance to\n"
        "size-based traffic analysis.\n");
  }
  return 0;
}
