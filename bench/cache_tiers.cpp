// Tiered-cache hierarchy bench (src/dns/cache_tier.h + snapshot_tier.h):
// gates the two properties the persistent snapshot tier was built for.
//
//   1. Warm restart. A churn campaign restarts the forwarder mid-run twice
//      — once with the snapshot tier on (the new engine replays
//      shard-0.snap into its L1) and once fully cold — and compares the
//      first post-restart epoch's cache hit rate against the steady-state
//      window just before the restart. The gate is the PR's acceptance
//      criterion: warm-start first-epoch hit rate within 10% of the
//      pre-restart steady state, and strictly better than cold start (which
//      must also pay at least 2x the upstream resolves).
//
//   2. Snapshot I/O. Direct append-log write and replay throughput over a
//      synthetic RRset population, with loose floors so a pathological
//      regression (per-record fsync, quadratic replay) fails loudly while
//      slow CI containers pass.
//
// Writes BENCH_cache_tiers.json with --json. Usage:
//   cache_tiers [--seed=N] [--json] [--smoke]
// --smoke runs a reduced workload; the gates apply in both modes.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dns/snapshot_tier.h"
#include "engine/churn.h"
#include "stats/stats.h"

namespace {

using namespace doxlab;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Answered-from-any-tier count: the numerator of the hit rate.
std::uint64_t tier_hits(const engine::EngineStats& stats) {
  return stats.cache_hits + stats.stale_hits + stats.wire_hits +
         stats.l2_hits + stats.snapshot_hits;
}

struct Window {
  double hit_rate = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t resolves = 0;
};

Window window_between(const engine::EngineStats& from,
                      const engine::EngineStats& to) {
  Window w;
  w.queries = to.queries - from.queries;
  w.resolves = to.upstream_resolves - from.upstream_resolves;
  if (w.queries > 0) {
    w.hit_rate = static_cast<double>(tier_hits(to) - tier_hits(from)) /
                 static_cast<double>(w.queries);
  }
  return w;
}

struct RestartOutcome {
  Window steady;       ///< pre-restart window of width epoch_window
  Window first_epoch;  ///< first epoch_window after the restart
  std::uint64_t warm_loaded = 0;
};

/// One restart campaign: no churn events, just the mid-run restart, so the
/// only variable between the warm and cold runs is the snapshot tier.
RestartOutcome run_restart(std::uint64_t seed, bool smoke,
                           const std::string& snapshot_dir) {
  engine::ChurnConfig config;
  config.seed = seed;
  config.load.clients = smoke ? 150 : 300;
  config.load.qps = smoke ? 400 : 1000;
  config.load.duration = (smoke ? 10 : 16) * kSecond;
  config.load.names = smoke ? 200 : 400;
  config.restart_at = (smoke ? 6 : 10) * kSecond;
  config.epoch_window = 1 * kSecond;
  // No TTL clamp: the testbed resolvers answer with 300 s TTLs, so nothing
  // expires inside the run and the restart is the only source of misses.
  config.engine.max_ttl = 0;
  config.engine.snapshot_dir = snapshot_dir;

  const engine::ChurnResult result = engine::run_churn(config);
  RestartOutcome outcome;
  outcome.steady =
      window_between(result.pre_window_start, result.pre_restart);
  outcome.first_epoch =
      window_between(engine::EngineStats{}, result.post_first_epoch);
  outcome.warm_loaded = result.warm_loaded;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::flag_set(argc, argv, "--smoke");
  const bool json = bench::flag_set(argc, argv, "--json");
  const std::uint64_t seed = static_cast<std::uint64_t>(
      bench::flag_int(argc, argv, "--seed", 42));
  bench::JsonReporter reporter;
  int failures = 0;

  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() /
      ("doxlab_cache_tiers_" + std::to_string(seed));
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  bench::banner("warm vs cold restart (churn campaign with mid-run "
                "forwarder restart)");
  const RestartOutcome warm =
      run_restart(seed, smoke, (scratch / "warm").string());
  const RestartOutcome cold = run_restart(seed, smoke, "");
  std::printf("  steady-state hit rate   %.4f (%llu queries)\n",
              warm.steady.hit_rate,
              static_cast<unsigned long long>(warm.steady.queries));
  std::printf("  warm first epoch        %.4f hit rate, %llu resolves, "
              "%llu warm-loaded\n",
              warm.first_epoch.hit_rate,
              static_cast<unsigned long long>(warm.first_epoch.resolves),
              static_cast<unsigned long long>(warm.warm_loaded));
  std::printf("  cold first epoch        %.4f hit rate, %llu resolves\n",
              cold.first_epoch.hit_rate,
              static_cast<unsigned long long>(cold.first_epoch.resolves));
  reporter.metric("warm_restart", "steady_hit_rate", warm.steady.hit_rate);
  reporter.metric("warm_restart", "warm_first_epoch_hit_rate",
                  warm.first_epoch.hit_rate);
  reporter.metric("warm_restart", "cold_first_epoch_hit_rate",
                  cold.first_epoch.hit_rate);
  reporter.metric("warm_restart", "warm_loaded",
                  static_cast<double>(warm.warm_loaded));
  reporter.metric("warm_restart", "warm_first_epoch_resolves",
                  static_cast<double>(warm.first_epoch.resolves));
  reporter.metric("warm_restart", "cold_first_epoch_resolves",
                  static_cast<double>(cold.first_epoch.resolves));

  if (warm.steady.queries == 0 || warm.first_epoch.queries == 0) {
    std::printf("  FAIL: empty measurement window\n");
    ++failures;
  }
  if (warm.first_epoch.hit_rate < 0.9 * warm.steady.hit_rate) {
    std::printf("  FAIL: warm first-epoch hit rate %.4f below 90%% of "
                "steady state %.4f\n",
                warm.first_epoch.hit_rate, warm.steady.hit_rate);
    ++failures;
  }
  if (warm.first_epoch.hit_rate <= cold.first_epoch.hit_rate) {
    std::printf("  FAIL: warm start (%.4f) not better than cold start "
                "(%.4f)\n",
                warm.first_epoch.hit_rate, cold.first_epoch.hit_rate);
    ++failures;
  }
  if (warm.first_epoch.resolves * 2 > cold.first_epoch.resolves) {
    std::printf("  FAIL: warm start resolves %llu not at most half of "
                "cold's %llu\n",
                static_cast<unsigned long long>(warm.first_epoch.resolves),
                static_cast<unsigned long long>(cold.first_epoch.resolves));
    ++failures;
  }
  if (warm.warm_loaded == 0) {
    std::printf("  FAIL: warm run loaded nothing from the snapshot\n");
    ++failures;
  }

  bench::banner("snapshot append-log write / replay throughput");
  const int records = smoke ? 4000 : 20000;
  const std::filesystem::path io_path = scratch / "io.snap";
  {
    dns::SnapshotConfig snap;
    snap.path = io_path.string();
    dns::SnapshotTier tier(snap);
    std::vector<dns::ResourceRecord> rrset(1);
    const auto start = Clock::now();
    for (int i = 0; i < records; ++i) {
      const dns::DnsName name = dns::DnsName::parse(
          "name" + std::to_string(i) + ".bench.example");
      rrset[0].name = name;
      rrset[0].type = dns::RRType::kA;
      rrset[0].ttl = 300;
      rrset[0].rdata = {10, 0,
                        static_cast<std::uint8_t>(i >> 8),
                        static_cast<std::uint8_t>(i)};
      tier.insert(name, dns::RRType::kA, rrset, kSecond);
    }
    tier.flush();
    const double write_s = seconds_since(start);
    const double write_per_s = static_cast<double>(records) / write_s;
    std::printf("  write   %d records in %.3f s  (%.0f records/s, "
                "%llu log bytes)\n",
                records, write_s, write_per_s,
                static_cast<unsigned long long>(tier.log_bytes()));
    reporter.metric("snapshot_io", "write_records_per_s", write_per_s);
    reporter.metric("snapshot_io", "log_bytes",
                    static_cast<double>(tier.log_bytes()));
    if (write_per_s < 1000.0) {
      std::printf("  FAIL: write throughput %.0f records/s below 1000\n",
                  write_per_s);
      ++failures;
    }
  }
  {
    dns::SnapshotConfig snap;
    snap.path = io_path.string();
    const auto start = Clock::now();
    dns::SnapshotTier tier(snap);
    const double replay_s = seconds_since(start);
    const double replay_per_s =
        replay_s > 0.0 ? static_cast<double>(tier.size()) / replay_s : 0.0;
    std::printf("  replay  %zu records in %.3f s  (%.0f records/s)\n",
                tier.size(), replay_s, replay_per_s);
    reporter.metric("snapshot_io", "replay_records_per_s", replay_per_s);
    reporter.metric("snapshot_io", "replay_entries",
                    static_cast<double>(tier.size()));
    if (tier.size() != static_cast<std::size_t>(records)) {
      std::printf("  FAIL: replay recovered %zu of %d records\n",
                  tier.size(), records);
      ++failures;
    }
    if (replay_per_s < 10000.0) {
      std::printf("  FAIL: replay throughput %.0f records/s below 10000\n",
                  replay_per_s);
      ++failures;
    }
  }

  std::filesystem::remove_all(scratch);

  if (json) {
    const char* path = "BENCH_cache_tiers.json";
    if (reporter.write_file(path)) {
      std::printf("\nbaseline -> %s\n", path);
    } else {
      std::printf("\nFAIL: could not write %s\n", path);
      ++failures;
    }
  }
  std::printf("\ncache_tiers: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}
