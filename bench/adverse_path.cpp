// Adverse-path bench: congestion control end to end over link models.
//
// Two gated experiments, both pure functions of the built-in seeds:
//
//   1. TCP fairness — two NewReno flows from separate hosts share one
//      finite-rate tail-drop bottleneck (the server's ingress link). Each
//      flow's steady-state goodput must converge to 50% +/- 15 of the link
//      rate, the classic AIMD fairness result. The seed's legacy
//      slow-start-only TCP cannot pass this: without fast retransmit every
//      drop costs a full RTO and the first flow to stall loses its share.
//
//   2. QUIC recovery — one RFC 9002 connection (enable_cc) pushes a bulk
//      stream through the same kind of bottleneck with burst loss. Its
//      cwnd trace must show a slow-start phase followed by at least one
//      recovery episode (packet-threshold loss detection feeding the
//      shared cc module), i.e. real congestion control, not PTO-only.
//
// `--smoke` shrinks the transfers for sanitizer CI; `--json` writes the
// committed BENCH_adverse.json baseline. Exits non-zero if a gate fails.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cc/cc.h"
#include "net/link.h"
#include "net/network.h"
#include "net/udp.h"
#include "quic/connection.h"
#include "quic/server.h"
#include "sim/simulator.h"
#include "tcp/tcp.h"

using namespace doxlab;

namespace {

bool g_failed = false;

void gate(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) g_failed = true;
}

struct FairnessResult {
  double share_a = 0.0;  // flow goodput / link rate
  double share_b = 0.0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t loss_episodes = 0;
};

/// Two bulk NewReno flows into one 5 Mbit/s, 32 KiB tail-drop bottleneck.
FairnessResult run_tcp_fairness(cc::CcAlgorithm algorithm, SimTime duration,
                                std::size_t transfer_bytes) {
  sim::Simulator sim;
  net::Network network(sim, Rng(21));
  network.set_loss_rate(0.0);

  auto& a_host = network.add_host("flow-a", net::IpAddress::from_octets(
                                                10, 0, 0, 1),
                                  {50.11, 8.68}, net::Continent::kEurope);
  auto& b_host = network.add_host("flow-b", net::IpAddress::from_octets(
                                                10, 0, 0, 2),
                                  {48.85, 2.35}, net::Continent::kEurope);
  auto& server_host = network.add_host(
      "server", net::IpAddress::from_octets(10, 0, 0, 3), {52.37, 4.90},
      net::Continent::kEurope);
  network.set_path_override(a_host.address(), server_host.address(),
                            from_ms(10));
  network.set_path_override(b_host.address(), server_host.address(),
                            from_ms(10));

  // The shared bottleneck: ONE link instance on the server's ingress, so
  // both flows' data segments drain through the same FIFO; acks return
  // unimpeded.
  net::LinkConfig bottleneck;
  bottleneck.rate_bps = 5e6;
  bottleneck.queue_bytes = 32 * 1024;
  network.set_host_ingress_link(server_host.address(),
                                network.add_link(bottleneck));

  tcp::TcpStack a_stack(a_host);
  tcp::TcpStack b_stack(b_host);
  tcp::TcpStack server(server_host);

  std::uint64_t received_a = 0;
  std::uint64_t received_b = 0;
  std::vector<std::shared_ptr<tcp::TcpConnection>> accepted;
  auto& listener = server.listen(9000);
  listener.on_accept([&](const std::shared_ptr<tcp::TcpConnection>& conn) {
    const bool is_a = accepted.empty();
    accepted.push_back(conn);
    conn->on_data([&received_a, &received_b,
                   is_a](std::span<const std::uint8_t> data) {
      (is_a ? received_a : received_b) += data.size();
    });
  });

  tcp::TcpOptions options;
  options.congestion_algorithm = algorithm;
  const net::Endpoint sink{server_host.address(), 9000};
  auto a_conn = a_stack.connect(sink, options);
  auto b_conn = b_stack.connect(sink, options);
  const std::vector<std::uint8_t> payload(transfer_bytes, 0x42);
  a_conn->on_connected([&] { a_conn->send(payload); });
  b_conn->on_connected([&] { b_conn->send(payload); });

  sim.run_until(duration);

  FairnessResult result;
  const double link_bytes =
      bottleneck.rate_bps / 8.0 * (static_cast<double>(duration) / kSecond);
  result.share_a = static_cast<double>(received_a) / link_bytes;
  result.share_b = static_cast<double>(received_b) / link_bytes;
  result.fast_retransmits =
      a_conn->fast_retransmit_count() + b_conn->fast_retransmit_count();
  result.loss_episodes = a_conn->congestion().loss_episodes() +
                         b_conn->congestion().loss_episodes();
  return result;
}

struct QuicResult {
  bool saw_slow_start = false;
  bool saw_recovery = false;
  bool recovery_after_slow_start = false;
  std::uint64_t packets_lost = 0;
  std::uint64_t loss_episodes = 0;
  std::size_t trace_points = 0;
  std::size_t delivered = 0;
};

/// One RFC 9002 connection pushing a bulk stream through a constrained
/// link with Gilbert-Elliott burst loss.
QuicResult run_quic_recovery(SimTime duration, std::size_t transfer_bytes) {
  sim::Simulator sim;
  net::Network network(sim, Rng(31));
  network.set_loss_rate(0.0);

  auto& client_host = network.add_host(
      "client", net::IpAddress::from_octets(10, 1, 0, 1), {50.11, 8.68},
      net::Continent::kEurope);
  auto& server_host = network.add_host(
      "server", net::IpAddress::from_octets(10, 1, 0, 2), {52.37, 4.90},
      net::Continent::kEurope);
  network.set_path_override(client_host.address(), server_host.address(),
                            from_ms(10));

  net::LinkConfig bottleneck;
  bottleneck.rate_bps = 4e6;
  bottleneck.queue_bytes = 24 * 1024;
  bottleneck.burst_loss = net::GilbertElliott{};
  network.set_host_ingress_link(server_host.address(),
                                network.add_link(bottleneck));

  net::UdpStack client_udp(client_host);
  net::UdpStack server_udp(server_host);

  quic::QuicConfig server_config;
  server_config.alpn = {"doq"};
  server_config.ticket_secret = 0xD0C;
  quic::QuicServer server(sim, server_udp, 853, server_config);
  std::size_t delivered = 0;
  std::vector<std::shared_ptr<quic::QuicConnection>> accepted;
  server.on_accept([&](const std::shared_ptr<quic::QuicConnection>& conn,
                       const net::Endpoint&) {
    accepted.push_back(conn);
    conn->set_on_stream_data([&delivered](std::uint64_t,
                                          std::span<const std::uint8_t> data,
                                          bool) { delivered += data.size(); });
  });

  quic::QuicConfig client_config;
  client_config.alpn = {"doq"};
  client_config.sni = "resolver.example";
  client_config.enable_cc = true;
  client_config.cc_trace = true;

  auto socket = client_udp.bind_ephemeral();
  quic::QuicConnection::Callbacks callbacks;
  auto* socket_raw = socket.get();
  auto server_addr = server_host.address();
  callbacks.send_datagram = [socket_raw, server_addr](util::Buffer bytes) {
    socket_raw->send_to(net::Endpoint{server_addr, 853}, std::move(bytes));
  };
  auto conn = quic::QuicConnection::make_client(sim, client_config,
                                                std::move(callbacks));
  socket->on_datagram([conn](const net::Endpoint&, util::Buffer payload) {
    conn->on_datagram(payload);
  });
  conn->connect();
  conn->open_stream(std::vector<std::uint8_t>(transfer_bytes, 0x51), true);
  sim.run_until(duration);

  QuicResult result;
  result.delivered = delivered;
  result.packets_lost = conn->packets_declared_lost();
  result.loss_episodes = conn->congestion().loss_episodes();
  const auto& trace = conn->congestion().trace();
  result.trace_points = trace.size();
  for (const auto& point : trace) {
    if (point.phase == cc::CcPhase::kSlowStart) {
      result.saw_slow_start = true;
    }
    if (point.phase == cc::CcPhase::kRecovery) {
      result.saw_recovery = true;
      if (result.saw_slow_start) result.recovery_after_slow_start = true;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::flag_set(argc, argv, "--smoke");
  const bool json = bench::flag_set(argc, argv, "--json");
  const SimTime fair_duration = (smoke ? 6 : 12) * kSecond;
  const std::size_t fair_bytes = smoke ? 6 * 1024 * 1024 : 12 * 1024 * 1024;
  const SimTime quic_duration = (smoke ? 4 : 8) * kSecond;
  const std::size_t quic_bytes = smoke ? 256 * 1024 : 1024 * 1024;

  bench::banner("adverse_path: NewReno fairness on a shared bottleneck");
  const auto fair =
      run_tcp_fairness(cc::CcAlgorithm::kNewReno, fair_duration, fair_bytes);
  std::printf("  flow shares of 5 Mbit/s link: %.3f / %.3f  (fast "
              "retransmits %llu, loss episodes %llu)\n",
              fair.share_a, fair.share_b,
              static_cast<unsigned long long>(fair.fast_retransmits),
              static_cast<unsigned long long>(fair.loss_episodes));
  gate(fair.share_a >= 0.35 && fair.share_a <= 0.65,
       "flow A gets 50% +/- 15 of the link rate");
  gate(fair.share_b >= 0.35 && fair.share_b <= 0.65,
       "flow B gets 50% +/- 15 of the link rate");
  gate(fair.fast_retransmits > 0,
       "tail drops repaired by fast retransmit, not RTO");

  bench::banner("adverse_path: QUIC RFC 9002 recovery under burst loss");
  const auto quic = run_quic_recovery(quic_duration, quic_bytes);
  std::printf("  delivered %zu bytes, %llu packets declared lost, %llu loss "
              "episodes, %zu trace points\n",
              quic.delivered,
              static_cast<unsigned long long>(quic.packets_lost),
              static_cast<unsigned long long>(quic.loss_episodes),
              quic.trace_points);
  gate(quic.saw_slow_start, "cwnd trace shows a slow-start phase");
  gate(quic.recovery_after_slow_start,
       "cwnd trace shows slow start -> recovery transition");
  gate(quic.loss_episodes >= 1, "packet-threshold losses reduced the window");
  gate(quic.delivered > 0, "stream data still delivered under loss");

  if (json) {
    bench::JsonReporter reporter;
    reporter.metric("tcp_fairness", "share_a", fair.share_a);
    reporter.metric("tcp_fairness", "share_b", fair.share_b);
    reporter.metric("tcp_fairness", "fast_retransmits",
                    static_cast<double>(fair.fast_retransmits));
    reporter.metric("tcp_fairness", "loss_episodes",
                    static_cast<double>(fair.loss_episodes));
    reporter.metric("quic_recovery", "delivered_bytes",
                    static_cast<double>(quic.delivered));
    reporter.metric("quic_recovery", "packets_lost",
                    static_cast<double>(quic.packets_lost));
    reporter.metric("quic_recovery", "loss_episodes",
                    static_cast<double>(quic.loss_episodes));
    reporter.metric("quic_recovery", "trace_points",
                    static_cast<double>(quic.trace_points));
    reporter.metric("quic_recovery", "slow_start_to_recovery",
                    quic.recovery_after_slow_start ? 1.0 : 0.0);
    const char* path = "BENCH_adverse.json";
    if (reporter.write_file(path)) {
      std::printf("\nbaseline -> %s\n", path);
    } else {
      std::printf("\nfailed to write %s\n", path);
      return 1;
    }
  }

  std::printf("\n%s\n", g_failed ? "ADVERSE-PATH GATES FAILED"
                                 : "all adverse-path gates passed");
  return g_failed ? 1 : 0;
}
