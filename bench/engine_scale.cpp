// Scaling bench for the sharded forwarder engine (src/engine/sharded.h):
// one scenario, the same offered load, partitioned across N = 1/2/4/8
// shard worlds.
//
// Reports, per shard count:
//   * critical-path qps — queries processed divided by the sum over epochs
//     of the slowest shard's busy time plus the serial L2 sweep. This is
//     the wall time an N-core machine would see, measured exactly even on
//     a single-core CI container (each shard's epoch slice is timed
//     individually), so the scaling claim is hardware-independent.
//   * wall qps on this host, for reference.
//   * speedup vs N=1 on the critical-path metric.
// and proves three invariants:
//   * the offered load is identical for every N (same arrivals, same
//     queries processed — resharding only repartitions the schedule);
//   * per-shard event streams are bit-identical across repeated runs
//     (merged simulator digests equal);
//   * the cached L1 fast path still performs zero heap allocations per
//     query with the shared L2 attached.
//
// A second sweep re-runs the scenario with the raw-wire cache enabled at
// delivery-batch windows of 0/50/200 us and pins the answered totals and
// summed per-query outcome digests across windows: batching may reshape the
// event schedule but must not change any query's outcome.
//
// Writes BENCH_engine_scale.json with --json. Usage:
//   engine_scale [--seed=N] [--clients=N] [--qps=N] [--seconds=N]
//                [--json] [--smoke]
// --smoke runs a reduced workload and exits non-zero if the 4-shard
// within-run speedup (serialized shard work / critical path — both sides
// measured in the same run, so host frequency drift cancels) falls below
// 3.0x, the load varies across N, reruns diverge, or the cached path
// allocates (the CI gate).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_util.h"
#include "dox/transport.h"
#include "engine/sharded.h"
#include "net/network.h"
#include "resolver/resolver.h"
#include "stats/stats.h"
#include "tcp/tcp.h"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace doxlab;

/// Steady-state heap allocations per cached query through a ForwarderEngine
/// with the shared L2 attached — the sharded configuration must not cost
/// the L1 fast path its zero-allocation property (the L2 is only probed on
/// L1 misses). Mirrors micro_components' byte-path probe.
double measure_cached_allocs_with_l2(int queries) {
  sim::Simulator sim;
  net::Network network(sim, Rng(33));
  net::Host& host = network.add_host(
      "client", net::IpAddress::from_octets(10, 1, 0, 1), {50.11, 8.68},
      net::Continent::kEurope);
  net::UdpStack udp(host);
  tcp::TcpStack tcp(host);
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;
  network.set_loss_rate(0.0);

  resolver::ResolverProfile profile;
  profile.name = "upstream";
  profile.address = net::IpAddress::from_octets(10, 2, 0, 1);
  profile.location = {48.86, 2.35};
  profile.secret = 0xAA;
  profile.drop_probability = 0.0;
  resolver::DoxResolver upstream(network, profile, Rng(1));
  network.set_path_override(host.address(), profile.address, from_ms(10));

  dox::TransportDeps deps;
  deps.sim = &sim;
  deps.udp = &udp;
  deps.tcp = &tcp;
  deps.tickets = &tickets;
  deps.doq_cache = &doq_cache;
  engine::UpstreamConfig upstream_config;
  upstream_config.name = profile.name;
  upstream_config.address = profile.address;
  upstream_config.protocols = {dox::DnsProtocol::kDoUdp};

  dns::SharedPacketCache l2(1024, 1);
  engine::EngineConfig config;
  config.l2 = &l2;
  config.shard_index = 0;
  engine::ForwarderEngine engine(sim, udp, deps, {upstream_config}, config);

  auto socket = udp.bind_ephemeral();
  std::uint64_t answered = 0;
  socket->on_datagram(
      [&](const net::Endpoint&, util::Buffer) { ++answered; });
  const dns::Message query = dns::make_query(
      0x77, dns::DnsName::parse("cached.example.com"), dns::RRType::kA);
  const util::Buffer query_wire = query.encode_buffer();
  const net::Endpoint engine_ep{host.address(), 53};

  for (int i = 0; i < 1024; ++i) {
    socket->send_to(engine_ep, query_wire);
    sim.run_until(sim.now() + (i == 0 ? kSecond : kMillisecond));
  }

  const std::uint64_t before = answered;
  const std::uint64_t allocs0 = g_heap_allocs.load();
  for (int i = 0; i < queries; ++i) {
    socket->send_to(engine_ep, query_wire);
    sim.run_until(sim.now() + kMillisecond);
  }
  const std::uint64_t allocs = g_heap_allocs.load() - allocs0;
  if (answered - before != static_cast<std::uint64_t>(queries)) {
    std::fprintf(stderr, "l2 cached probe: %llu/%d queries answered\n",
                 static_cast<unsigned long long>(answered - before),
                 queries);
    return -1.0;
  }
  return static_cast<double>(allocs) / queries;
}

struct ScaleRow {
  std::uint32_t shards = 0;
  double effective_qps = 0.0;
  double wall_qps = 0.0;
  double critical_path_ms = 0.0;
  double busy_sum_ms = 0.0;
  double sweep_ms = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t answered = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t wire_hits = 0;
  std::uint64_t lock_misses = 0;
  std::uint64_t digest = 0;
  std::uint64_t outcome_digest = 0;
  double p99_ms = 0.0;

  /// Within-run speedup: how much shorter the critical path is than
  /// serializing the same run's shard work. Numerator and denominator come
  /// from the same process instant, so CPU frequency drift and cache state
  /// cancel — this is the ratio the CI gate checks, because cross-run qps
  /// comparisons wobble on a shared single-core container.
  double vs_serial() const {
    return critical_path_ms <= 0.0 ? 0.0 : busy_sum_ms / critical_path_ms;
  }
};

ScaleRow run_once(const engine::ShardedConfig& config) {
  const auto result = engine::run_sharded(config);
  ScaleRow row;
  row.shards = config.shards;
  row.effective_qps = result.effective_qps();
  row.wall_qps = result.wall_qps();
  row.critical_path_ms = result.critical_path_ms;
  row.sweep_ms = result.sweep_ms;
  row.queries = result.engine.queries;
  row.answered = result.load.answered;
  row.l2_hits = result.engine.l2_hits;
  row.wire_hits = result.engine.wire_hits;
  row.lock_misses = result.l2.lock_misses;
  row.digest = result.merged_digest;
  row.outcome_digest = result.outcome_digest;
  row.p99_ms = result.load.latency_summary().p99;
  for (const auto& shard : result.shards) row.busy_sum_ms += shard.busy_ms;
  row.busy_sum_ms += result.sweep_ms;  // serial work serializes either way
  return row;
}

/// Best-of-N to shed scheduler and frequency noise (same idiom as
/// micro_components): the simulated results are bit-identical across reps —
/// which doubles as the run-to-run determinism check — so only the timing
/// differs, and the fastest rep is the least-perturbed measurement.
ScaleRow run_best(const engine::ShardedConfig& config, int reps,
                  bool* deterministic) {
  ScaleRow best = run_once(config);
  for (int rep = 1; rep < reps; ++rep) {
    const ScaleRow row = run_once(config);
    if (row.digest != best.digest || row.queries != best.queries ||
        row.l2_hits != best.l2_hits) {
      *deterministic = false;
    }
    if (row.critical_path_ms < best.critical_path_ms) best = row;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::flag_set(argc, argv, "--smoke");
  const bool json = bench::flag_set(argc, argv, "--json");

  engine::ShardedConfig base;
  base.seed =
      static_cast<std::uint64_t>(bench::flag_int(argc, argv, "--seed", 42));
  base.clients = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "--clients", smoke ? 100000 : 1000000));
  base.qps = bench::flag_int(argc, argv, "--qps", 20000);
  base.duration =
      bench::flag_int(argc, argv, "--seconds", smoke ? 3 : 10) * kSecond;
  base.names = 200;
  base.engine.max_ttl = 1;  // keep refresh traffic flowing past warmup

  bench::banner("Engine scale — one scenario across N shard worlds");
  std::printf("%zu clients, %.0f qps offered for %llu s (seed %llu)\n",
              base.clients, base.qps,
              static_cast<unsigned long long>(base.duration / kSecond),
              static_cast<unsigned long long>(base.seed));

  const std::vector<std::uint32_t> counts = {1, 2, 4, 8};
  const int reps = 3;
  bool deterministic = true;
  std::vector<ScaleRow> rows;
  for (std::uint32_t n : counts) {
    engine::ShardedConfig config = base;
    config.shards = n;
    rows.push_back(run_best(config, reps, &deterministic));
  }

  std::printf("\n%7s %14s %12s %10s %9s %10s %8s %10s\n", "shards",
              "critical qps", "wall qps", "vs serial", "vs N=1", "l2 hits",
              "p99 ms", "lock-miss");
  for (const ScaleRow& row : rows) {
    std::printf("%7u %14.0f %12.0f %9.2fx %8.2fx %10llu %8.2f %10llu\n",
                row.shards, row.effective_qps, row.wall_qps, row.vs_serial(),
                row.effective_qps / rows.front().effective_qps,
                static_cast<unsigned long long>(row.l2_hits), row.p99_ms,
                static_cast<unsigned long long>(row.lock_misses));
  }

  // Batch-window sweep: the same scenario with the wire cache on, across
  // delivery-batching windows. Batching only reshapes the event schedule —
  // it must not change any individual query's outcome — so for every shard
  // count the answered total and the commutative per-query outcome digest
  // are pinned across windows.
  const std::vector<std::uint32_t> batch_counts =
      smoke ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 4, 8};
  const std::vector<std::uint64_t> windows =
      smoke ? std::vector<std::uint64_t>{0, 200}
            : std::vector<std::uint64_t>{0, 50, 200};
  struct BatchRow {
    std::uint32_t shards = 0;
    std::uint64_t window_us = 0;
    ScaleRow row;
  };
  std::vector<BatchRow> batch_rows;
  for (std::uint32_t n : batch_counts) {
    for (std::uint64_t w : windows) {
      engine::ShardedConfig config = base;
      config.shards = n;
      config.batch_window = static_cast<SimTime>(w) * kMicrosecond;
      config.engine.wire_cache_capacity = 4096;
      batch_rows.push_back({n, w, run_once(config)});
    }
  }

  std::printf("\nbatch sweep (wire cache on, %zu-entry):\n", std::size_t{4096});
  std::printf("%7s %9s %14s %12s %10s %10s  %s\n", "shards", "batch us",
              "critical qps", "wall qps", "wire hits", "answered",
              "outcome digest");
  for (const BatchRow& b : batch_rows) {
    std::printf("%7u %9llu %14.0f %12.0f %10llu %10llu  %016llx\n", b.shards,
                static_cast<unsigned long long>(b.window_us),
                b.row.effective_qps, b.row.wall_qps,
                static_cast<unsigned long long>(b.row.wire_hits),
                static_cast<unsigned long long>(b.row.answered),
                static_cast<unsigned long long>(b.row.outcome_digest));
  }

  const double allocs = measure_cached_allocs_with_l2(smoke ? 1000 : 4000);
  std::printf("\ncached-query heap allocations with L2 attached: %.4f\n",
              allocs);

  bool ok = true;
  bool batch_invariant = true;
  for (std::size_t i = 0; i < batch_rows.size(); ++i) {
    const BatchRow& b = batch_rows[i];
    const BatchRow& zero = batch_rows[i - i % windows.size()];
    if (b.row.answered != zero.row.answered ||
        b.row.outcome_digest != zero.row.outcome_digest) {
      std::fprintf(stderr,
                   "FAIL: batching changed outcomes at %u shards "
                   "(window %llu us: %llu answered digest %016llx vs "
                   "%llu answered digest %016llx)\n",
                   b.shards, static_cast<unsigned long long>(b.window_us),
                   static_cast<unsigned long long>(b.row.answered),
                   static_cast<unsigned long long>(b.row.outcome_digest),
                   static_cast<unsigned long long>(zero.row.answered),
                   static_cast<unsigned long long>(zero.row.outcome_digest));
      batch_invariant = false;
      ok = false;
    }
  }
  for (const ScaleRow& row : rows) {
    if (row.queries != rows.front().queries ||
        row.answered != rows.front().answered) {
      std::fprintf(stderr,
                   "FAIL: load varies with shard count (%u shards: %llu "
                   "queries vs %llu)\n",
                   row.shards,
                   static_cast<unsigned long long>(row.queries),
                   static_cast<unsigned long long>(rows.front().queries));
      ok = false;
    }
  }
  const ScaleRow& four = rows[2];
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: reruns diverged (digest/query mismatch "
                         "across repetitions)\n");
    ok = false;
  }
  if (four.vs_serial() < 3.0) {
    std::fprintf(stderr, "FAIL: 4-shard speedup %.2fx < 3.0x\n",
                 four.vs_serial());
    ok = false;
  }
  if (allocs < 0.0 || allocs > 0.01) {
    std::fprintf(stderr, "FAIL: cached query allocates with L2 (%.4f/op)\n",
                 allocs);
    ok = false;
  }

  if (json) {
    bench::JsonReporter reporter;
    for (const ScaleRow& row : rows) {
      const std::string bench = "shards_" + std::to_string(row.shards);
      reporter.metric(bench, "critical_path_qps", row.effective_qps);
      reporter.metric(bench, "wall_qps", row.wall_qps);
      reporter.metric(bench, "speedup_vs_1",
                      row.effective_qps / rows.front().effective_qps);
      reporter.metric(bench, "speedup_vs_serial", row.vs_serial());
      reporter.metric(bench, "critical_path_ms", row.critical_path_ms);
      reporter.metric(bench, "shard_busy_sum_ms", row.busy_sum_ms);
      reporter.metric(bench, "sweep_ms", row.sweep_ms);
      reporter.metric(bench, "queries", static_cast<double>(row.queries));
      reporter.metric(bench, "l2_hits", static_cast<double>(row.l2_hits));
      reporter.metric(bench, "l2_lock_misses",
                      static_cast<double>(row.lock_misses));
      reporter.metric(bench, "p99_ms", row.p99_ms);
    }
    for (const BatchRow& b : batch_rows) {
      const std::string bench = "batch_N" + std::to_string(b.shards) + "_w" +
                                std::to_string(b.window_us);
      reporter.metric(bench, "critical_path_qps", b.row.effective_qps);
      reporter.metric(bench, "wall_qps", b.row.wall_qps);
      reporter.metric(bench, "answered", static_cast<double>(b.row.answered));
      reporter.metric(bench, "wire_hits",
                      static_cast<double>(b.row.wire_hits));
      reporter.metric(bench, "p99_ms", b.row.p99_ms);
    }
    reporter.metric("invariants", "cached_allocs_with_l2", allocs);
    reporter.metric("invariants", "rerun_digest_match",
                    deterministic ? 1.0 : 0.0);
    reporter.metric("invariants", "batch_outcome_match",
                    batch_invariant ? 1.0 : 0.0);
    const char* path = "BENCH_engine_scale.json";
    if (reporter.write_file(path)) {
      std::printf("\nbaseline -> %s\n", path);
    } else {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
  }

  std::printf("\nengine scale: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
