// The seed repo's DNS codec — names decoded into one std::string per label,
// suffix compression tracked in a std::map keyed by freshly built suffix
// strings — frozen verbatim as a bench fixture so the zero-copy byte path's
// speedup stays measurable in-tree (BENCH_byte_path.json records both
// sides). Not used by any library code; the fixture asserts its wire output
// is byte-identical to the current codec before timing anything.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/strings.h"

namespace doxlab::bench::legacy {

/// Seed DnsName: lower-cased labels, one heap string apiece.
struct Name {
  std::vector<std::string> labels;
};

inline std::optional<Name> read_name(ByteReader& reader) {
  Name name;
  std::size_t total = 1;
  int pointer_hops = 0;
  std::optional<std::size_t> resume_at;

  while (true) {
    auto len = reader.u8();
    if (!len) return std::nullopt;
    if ((*len & 0xC0) == 0xC0) {
      auto low = reader.u8();
      if (!low) return std::nullopt;
      const std::size_t target =
          (static_cast<std::size_t>(*len & 0x3F) << 8) | *low;
      if (!resume_at) resume_at = reader.position();
      if (target >= reader.position() - 2) return std::nullopt;
      if (++pointer_hops > 32) return std::nullopt;
      if (!reader.seek(target)) return std::nullopt;
      continue;
    }
    if ((*len & 0xC0) != 0) return std::nullopt;
    if (*len == 0) break;
    auto label = reader.string(*len);
    if (!label) return std::nullopt;
    total += 1 + label->size();
    if (total > 255) return std::nullopt;
    name.labels.push_back(to_lower(*label));
  }
  if (resume_at) reader.seek(*resume_at);
  return name;
}

/// Seed NameCompressor: presentation-form suffix strings in a std::map.
class NameCompressor {
 public:
  void write(ByteWriter& writer, const Name& name) {
    const auto& labels = name.labels;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      std::string suffix;
      for (std::size_t j = i; j < labels.size(); ++j) {
        if (j > i) suffix.push_back('.');
        suffix.append(labels[j]);
      }
      auto it = offsets_.find(suffix);
      if (it != offsets_.end()) {
        writer.u16(static_cast<std::uint16_t>(0xC000 | it->second));
        return;
      }
      if (writer.size() < 0x3FFF) {
        offsets_.emplace(std::move(suffix),
                         static_cast<std::uint16_t>(writer.size()));
      }
      writer.u8(static_cast<std::uint8_t>(labels[i].size()));
      writer.bytes(labels[i]);
    }
    writer.u8(0);
  }

 private:
  std::map<std::string, std::uint16_t> offsets_;
};

struct Question {
  Name name;
  std::uint16_t type = 0;
  std::uint16_t klass = 1;
};

struct ResourceRecord {
  Name name;
  std::uint16_t type = 0;
  std::uint16_t klass_or_udpsize = 1;
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;
};

struct Message {
  std::uint16_t id = 0;
  bool qr = false;
  std::uint8_t opcode = 0;
  bool aa = false, tc = false, rd = false, ra = false, ad = false, cd = false;
  std::uint8_t rcode = 0;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;
};

inline void write_record(ByteWriter& w, NameCompressor& nc,
                         const ResourceRecord& rr) {
  nc.write(w, rr.name);
  w.u16(rr.type);
  w.u16(rr.klass_or_udpsize);
  w.u32(rr.ttl);
  w.u16(static_cast<std::uint16_t>(rr.rdata.size()));
  w.bytes(rr.rdata);
}

inline std::optional<ResourceRecord> read_record(ByteReader& r) {
  ResourceRecord rr;
  auto name = read_name(r);
  if (!name) return std::nullopt;
  rr.name = std::move(*name);
  auto type = r.u16();
  auto klass = r.u16();
  auto ttl = r.u32();
  auto rdlen = r.u16();
  if (!type || !klass || !ttl || !rdlen) return std::nullopt;
  rr.type = *type;
  rr.klass_or_udpsize = *klass;
  rr.ttl = *ttl;
  auto rdata = r.bytes(*rdlen);
  if (!rdata) return std::nullopt;
  rr.rdata.assign(rdata->begin(), rdata->end());
  return rr;
}

inline std::vector<std::uint8_t> encode(const Message& m) {
  ByteWriter w(512);
  NameCompressor nc;
  w.u16(m.id);
  std::uint16_t flags = 0;
  if (m.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(m.opcode) << 11;
  if (m.aa) flags |= 0x0400;
  if (m.tc) flags |= 0x0200;
  if (m.rd) flags |= 0x0100;
  if (m.ra) flags |= 0x0080;
  if (m.ad) flags |= 0x0020;
  if (m.cd) flags |= 0x0010;
  flags |= static_cast<std::uint16_t>(m.rcode) & 0x0F;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(m.questions.size()));
  w.u16(static_cast<std::uint16_t>(m.answers.size()));
  w.u16(static_cast<std::uint16_t>(m.authorities.size()));
  w.u16(static_cast<std::uint16_t>(m.additionals.size()));
  for (const Question& q : m.questions) {
    nc.write(w, q.name);
    w.u16(q.type);
    w.u16(q.klass);
  }
  for (const ResourceRecord& rr : m.answers) write_record(w, nc, rr);
  for (const ResourceRecord& rr : m.authorities) write_record(w, nc, rr);
  for (const ResourceRecord& rr : m.additionals) write_record(w, nc, rr);
  return w.take();
}

inline std::optional<Message> decode(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  Message m;
  auto id = r.u16();
  auto flags = r.u16();
  auto qd = r.u16();
  auto an = r.u16();
  auto ns = r.u16();
  auto ar = r.u16();
  if (!id || !flags || !qd || !an || !ns || !ar) return std::nullopt;
  m.id = *id;
  m.qr = (*flags & 0x8000) != 0;
  m.opcode = static_cast<std::uint8_t>((*flags >> 11) & 0x0F);
  m.aa = (*flags & 0x0400) != 0;
  m.tc = (*flags & 0x0200) != 0;
  m.rd = (*flags & 0x0100) != 0;
  m.ra = (*flags & 0x0080) != 0;
  m.ad = (*flags & 0x0020) != 0;
  m.cd = (*flags & 0x0010) != 0;
  m.rcode = static_cast<std::uint8_t>(*flags & 0x0F);
  for (int i = 0; i < *qd; ++i) {
    Question q;
    auto name = read_name(r);
    auto type = r.u16();
    auto klass = r.u16();
    if (!name || !type || !klass) return std::nullopt;
    q.name = std::move(*name);
    q.type = *type;
    q.klass = *klass;
    m.questions.push_back(std::move(q));
  }
  for (int i = 0; i < *an; ++i) {
    auto rr = read_record(r);
    if (!rr) return std::nullopt;
    m.answers.push_back(std::move(*rr));
  }
  for (int i = 0; i < *ns; ++i) {
    auto rr = read_record(r);
    if (!rr) return std::nullopt;
    m.authorities.push_back(std::move(*rr));
  }
  for (int i = 0; i < *ar; ++i) {
    auto rr = read_record(r);
    if (!rr) return std::nullopt;
    m.additionals.push_back(std::move(*rr));
  }
  return m;
}

}  // namespace doxlab::bench::legacy
