// Reproduces **Fig. 1** of the paper and the §2 discovery funnel: the
// ZMap-style IPv4 scan for QUIC responders on UDP 784/853/8853, DoQ ALPN
// verification, DNSPerf-style support probing for the other protocols, and
// the intersection yielding the verified DoX resolvers — with their
// continent and AS distributions.
//
// Usage: fig1_resolver_scan [--verified=N] [--doq=N] [--full]
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "net/network.h"
#include "scan/population.h"
#include "scan/scanner.h"
#include "sim/simulator.h"
#include "stats/table.h"

using namespace doxlab;
using namespace doxlab::scan;

int main(int argc, char** argv) {
  const bool full = bench::flag_set(argc, argv, "--full");
  sim::Simulator sim;
  Rng rng(2022);
  net::Network network(sim, rng.fork());
  network.set_loss_rate(0.0);  // the paper's scan ran for a week; we don't
                               // model scan-probe loss

  PopulationConfig config;
  config.verified_dox = bench::flag_int(argc, argv, "--verified",
                                        full ? 313 : 80);
  config.total_doq =
      bench::flag_int(argc, argv, "--doq",
                      full ? 1216 : config.verified_dox * 1216 / 313);
  Rng pop_rng = rng.fork();
  Population population = build_population(network, config, pop_rng);

  auto& scan_host = network.add_host(
      "scanner-tum", net::IpAddress::from_octets(10, 9, 9, 9),
      {48.26, 11.67}, net::Continent::kEurope);  // Munich, like the paper

  std::vector<net::IpAddress> candidates;
  for (const auto& resolver : population.resolvers) {
    candidates.push_back(resolver->profile().address);
  }
  // Dark space: addresses that never answer (the scan's common case).
  const int dark = static_cast<int>(candidates.size()) * 2;
  for (int i = 0; i < dark; ++i) {
    candidates.push_back(net::IpAddress(0x0AC00000u + i));
  }

  Ipv4Scanner scanner(network, scan_host, ScanConfig{});
  ScanReport report = scanner.run(candidates);

  bench::banner("Sec. 2 discovery funnel (measured vs paper)");
  std::printf("addresses probed:        %8llu (x3 ports = %llu probes)\n",
              (unsigned long long)report.addresses_probed,
              (unsigned long long)report.probes_sent);
  std::printf("QUIC (VN) responders:    %8zu   paper: 1216 candidates\n",
              report.quic_hosts.size());
  std::printf("DoQ-verified (ALPN):     %8zu   paper: 1216\n",
              report.doq_resolvers.size());
  std::printf("  of which DoUDP:        %8d   paper:  548\n", report.doudp);
  std::printf("  of which DoTCP:        %8d   paper:  706\n", report.dotcp);
  std::printf("  of which DoT:          %8d   paper: 1149\n", report.dot);
  std::printf("  of which DoH:          %8d   paper:  732\n", report.doh);
  std::printf("verified DoX (all five): %8zu   paper:  313\n",
              report.verified_dox.size());

  bench::banner("Fig. 1 — verified resolvers per continent");
  stats::TextTable continents({"Continent", "Measured", "Paper"});
  const std::map<net::Continent, int> paper = {
      {net::Continent::kEurope, 130},      {net::Continent::kAsia, 128},
      {net::Continent::kNorthAmerica, 49}, {net::Continent::kAfrica, 2},
      {net::Continent::kOceania, 2},       {net::Continent::kSouthAmerica, 2},
  };
  for (net::Continent c : net::all_continents()) {
    continents.add_row({std::string(net::continent_code(c)),
                        std::to_string(population.verified_on(c)),
                        std::to_string(paper.at(c))});
  }
  std::printf("%s", continents.render().c_str());

  bench::banner("Fig. 1 — autonomous systems of the verified resolvers");
  std::map<std::string, int> by_as;
  int as_count = 0;
  std::map<int, bool> asn_seen;
  for (std::size_t index : population.verified) {
    const auto& profile = population.resolvers[index]->profile();
    ++by_as[profile.as_name];
    if (!asn_seen[profile.as_number]) {
      asn_seen[profile.as_number] = true;
      ++as_count;
    }
  }
  stats::TextTable as_table({"AS", "Resolvers"});
  for (const char* name : {"ORACLE", "DIGITALOCEAN", "MNGTNET", "OVHCLOUD"}) {
    as_table.add_row({name, std::to_string(by_as[name])});
  }
  as_table.add_row({"(other ASes)", std::to_string(by_as["AS-MISC"])});
  std::printf("%s", as_table.render().c_str());
  std::printf("distinct ASes: %d (paper: 107; others host <=12 each)\n",
              as_count);
  std::printf(
      "\nPaper reference: ORACLE 47 (15.0%%), DIGITALOCEAN 20 (6.4%%),\n"
      "MNGTNET 18 (5.8%%), OVHCLOUD 16 (5.1%%).\n");
  return 0;
}
