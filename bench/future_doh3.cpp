// Quantifies the paper's **Future Work** section (§4): DNS over HTTP/3.
//
// The paper: "The recently standardized HTTP/3 also uses QUIC as its
// transport protocol ... DoH3 is expected to gain momentum" and "we expect
// resolvers to introduce support for 0-RTT in the future, which can shift
// the total response times of DoQ even closer to DoUDP."
//
// This bench builds a population where every resolver additionally serves
// DoH3 on UDP 443 and compares warmed single-query timings and sizes across
// DoUDP / DoH (HTTP/2 over TCP+TLS) / DoH3 / DoQ, with and without 0-RTT.
//
// Usage: future_doh3 [--resolvers=N]
#include <cstdio>

#include "bench_util.h"
#include "measure/report.h"
#include "measure/single_query.h"
#include "measure/web_study.h"
#include "stats/stats.h"
#include "stats/table.h"

using namespace doxlab;
using namespace doxlab::measure;

namespace {

struct ProtocolSummary {
  double handshake_ms = 0;
  double resolve_ms = 0;
  double total_ms = 0;
  double total_bytes = 0;
};

std::map<dox::DnsProtocol, ProtocolSummary> summarize(
    const std::vector<SingleQueryRecord>& records) {
  std::map<dox::DnsProtocol, std::vector<double>> hs, resolve, total, bytes;
  for (const auto& r : records) {
    if (!r.success) continue;
    hs[r.protocol].push_back(to_ms(r.handshake_time));
    resolve[r.protocol].push_back(to_ms(r.resolve_time));
    // total_time, not handshake+resolve: with 0-RTT the phases overlap.
    total[r.protocol].push_back(to_ms(r.total_time));
    bytes[r.protocol].push_back(static_cast<double>(r.bytes.total()));
  }
  std::map<dox::DnsProtocol, ProtocolSummary> out;
  for (auto& [protocol, values] : total) {
    out[protocol] = ProtocolSummary{
        stats::median(hs[protocol]).value_or(0),
        stats::median(resolve[protocol]).value_or(0),
        stats::median(values).value_or(0),
        stats::median(bytes[protocol]).value_or(0),
    };
  }
  return out;
}

void print_summary(const char* title,
                   const std::map<dox::DnsProtocol, ProtocolSummary>& rows) {
  std::printf("%s\n", title);
  stats::TextTable table({"Protocol", "Handshake ms", "Resolve ms",
                          "Total ms", "Total bytes"});
  for (const auto& [protocol, s] : rows) {
    table.add_row({std::string(dox::protocol_name(protocol)),
                   stats::cell(s.handshake_ms, 1), stats::cell(s.resolve_ms, 1),
                   stats::cell(s.total_ms, 1), stats::cell(s.total_bytes, 0)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  TestbedConfig config;
  config.population.verified_only = true;
  config.population.verified_dox =
      bench::flag_int(argc, argv, "--resolvers", 30);
  config.population.force_supports_doh3 = true;

  SingleQueryConfig sq;
  sq.protocols = {dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoH,
                  dox::DnsProtocol::kDoH3, dox::DnsProtocol::kDoQ};

  bench::banner("Future work — DoH3 vs DoH vs DoQ (2022 deployment: no 0-RTT)");
  {
    Testbed testbed(config);
    SingleQueryStudy study(testbed, sq);
    auto summary = summarize(study.run());
    print_summary("Warmed single-query medians:", summary);
    const double doh = summary[dox::DnsProtocol::kDoH].total_ms;
    const double doh3 = summary[dox::DnsProtocol::kDoH3].total_ms;
    std::printf("DoH3 closes %.0f%% of the DoH-DoQ total-time gap\n",
                100.0 * (doh - doh3) /
                    std::max(1.0, doh - summary[dox::DnsProtocol::kDoQ]
                                            .total_ms));
  }

  bench::banner("Future work — the same, with resolver 0-RTT support");
  {
    TestbedConfig zero = config;
    zero.population.force_supports_0rtt = true;
    Testbed testbed(zero);
    SingleQueryStudy study(testbed, sq);
    auto summary = summarize(study.run());
    print_summary("Warmed single-query medians (0-RTT):", summary);
    const double udp = summary[dox::DnsProtocol::kDoUdp].total_ms;
    const double doq = summary[dox::DnsProtocol::kDoQ].total_ms;
    std::printf(
        "With 0-RTT, DoQ totals sit %.0f%% above DoUDP (paper's projection:\n"
        "\"can shift the total response times of DoQ even closer to "
        "DoUDP\").\n",
        100.0 * (doq - udp) / udp);
  }

  bench::banner("Future work — web performance with DoH3");
  {
    Testbed testbed(config);
    WebStudyConfig web;
    web.max_resolvers = 8;
    web.pages = {"wikipedia.org", "google.com", "youtube.com"};
    web.protocols = {dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoH,
                     dox::DnsProtocol::kDoH3, dox::DnsProtocol::kDoQ};
    WebStudy study(testbed, web);
    auto records = study.run();
    auto report = fig3_relative(records);
    std::printf("Median PLT degradation vs DoUDP:\n");
    for (dox::DnsProtocol protocol :
         {dox::DnsProtocol::kDoH, dox::DnsProtocol::kDoH3,
          dox::DnsProtocol::kDoQ}) {
      std::printf("  %-5s %+6.1f%%\n",
                  std::string(dox::protocol_name(protocol)).c_str(),
                  100 * stats::median(report.plt_rel[protocol]).value_or(0));
    }
    std::printf(
        "DoH3 page loads track DoQ, not DoH: the HTTP layer costs bytes but\n"
        "no round trips once the transport is QUIC.\n");
  }
  return 0;
}
