// Shared helpers for the experiment-reproduction binaries: tiny flag
// parsing and paper-vs-measured table helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace doxlab::bench {

/// Parses "--name=value" integer flags; returns `fallback` if absent.
inline int flag_int(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Presence flag ("--full").
inline bool flag_set(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

inline void banner(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace doxlab::bench
