// Shared helpers for the experiment-reproduction binaries: tiny flag
// parsing and paper-vs-measured table helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

namespace doxlab::bench {

/// Parses "--name=value" integer flags; returns `fallback` if absent.
inline int flag_int(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Presence flag ("--full").
inline bool flag_set(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

inline void banner(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// Collects named metrics grouped by benchmark and serializes them as JSON
/// (sorted keys, so reruns of identical results are byte-identical). Used
/// by the microbenches to commit machine-readable baselines like
/// BENCH_sim_core.json alongside the textual report.
class JsonReporter {
 public:
  void metric(const std::string& bench, const std::string& name,
              double value) {
    benches_[bench][name] = value;
  }

  std::string to_json() const {
    std::string out = "{\n";
    bool first_bench = true;
    for (const auto& [bench, metrics] : benches_) {
      if (!first_bench) out += ",\n";
      first_bench = false;
      out += "  \"" + bench + "\": {\n";
      bool first_metric = true;
      for (const auto& [name, value] : metrics) {
        if (!first_metric) out += ",\n";
        first_metric = false;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        out += "    \"" + name + "\": " + buf;
      }
      out += "\n  }";
    }
    out += "\n}\n";
    return out;
  }

  /// Returns false on I/O failure.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = to_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                    json.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  std::map<std::string, std::map<std::string, double>> benches_;
};

}  // namespace doxlab::bench
