// Policy-pipeline bench (src/policy): the two numbers the subsystem is
// built around.
//
//   1. Rule evaluation cost — the compiled abuse chain evaluated on a legit
//      cached-path query: ns/op and heap allocations/op (must be zero; the
//      chain reads only borrowed views, so the cached fast path stays
//      allocation-free end to end).
//   2. Attack shed — the full abuse scenario (random-subdomain flood, water
//      torture, spoofed-source TXT amplification) against the same run with
//      the attacks silenced: attack queries shed at the chain while the
//      legitimate p99 stays flat.
//
// Writes BENCH_policy.json with --json. Deterministic from --seed.
// Usage:
//   policy_path [--seed=N] [--clients=N] [--qps=N] [--seconds=N]
//               [--json] [--smoke]
// --smoke runs a reduced scenario and exits non-zero if evaluation
// allocates, shed falls below 95%, or the under-attack legit p99 drifts
// more than 10% from the no-attack baseline (the CI gate).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_util.h"
#include "engine/scenario.h"
#include "policy/policy.h"
#include "stats/stats.h"

// Program-wide allocation counter, the same convention as
// micro_components: evaluation claims zero per query, so count every
// operator new and prove it.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace doxlab;

/// The abuse chain the scenario installs, compiled standalone against the
/// pool layout the engine would build.
policy::ChainConfig bench_chain() {
  policy::ChainConfig chain;
  policy::RuleConfig txt;
  txt.name = "refuse-txt";
  txt.matcher = policy::MatcherKind::kQType;
  txt.qtype = dns::RRType::kTXT;
  txt.action = policy::ActionKind::kRefuse;
  chain.rules.push_back(txt);
  policy::RuleConfig qps;
  qps.name = "qps-per-24";
  qps.matcher = policy::MatcherKind::kRateLimit;
  qps.rate_qps = 100;
  qps.subnet_prefix_len = 24;
  qps.action = policy::ActionKind::kDrop;
  chain.rules.push_back(qps);
  policy::RuleConfig flood;
  flood.name = "refuse-flood-zone";
  flood.matcher = policy::MatcherKind::kQnameSuffix;
  flood.suffixes = {"flood.example"};
  flood.action = policy::ActionKind::kRefuse;
  chain.rules.push_back(flood);
  policy::RuleConfig torture;
  torture.name = "drop-torture-zone";
  torture.matcher = policy::MatcherKind::kQnameSuffix;
  torture.suffixes = {"torture.example"};
  torture.action = policy::ActionKind::kDrop;
  chain.rules.push_back(torture);
  policy::RuleConfig route;
  route.name = "route-load-anycast";
  route.matcher = policy::MatcherKind::kQnameSuffix;
  route.suffixes = {"load.example"};
  route.action = policy::ActionKind::kRoutePool;
  route.pool = "anycast";
  chain.rules.push_back(route);
  return chain;
}

struct EvalNumbers {
  double legit_ns = 0.0;
  double attack_ns = 0.0;
  double allocs_per_op = 0.0;
};

/// Times chain evaluation on the legit fast path (walks every rule, ends
/// at the route rule) and on an attack query (sheds at the suffix rule),
/// counting heap allocations across the whole measured region.
EvalNumbers measure_eval(int iters) {
  const std::vector<std::string> pools = {"default", "anycast"};
  policy::RuleChain chain(bench_chain(), pools);
  const dns::DnsName legit = dns::DnsName::parse("name42.load.example");
  const dns::DnsName attack = dns::DnsName::parse("r1337.flood.example");
  const net::IpAddress client = net::IpAddress::from_octets(10, 50, 3, 7);

  EvalNumbers out;
  SimTime now = 0;
  std::uint64_t sink = 0;
  const std::uint64_t allocs_before = g_heap_allocs.load();
  auto started = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    // Advance the clock past the per-/24 budget so the legit query keeps
    // falling through the rate limiter, like real under-budget traffic.
    now += from_ms(10);
    const auto verdict = chain.evaluate(
        policy::QueryInfo{client, legit, dns::RRType::kA, now});
    sink += static_cast<std::uint64_t>(verdict.action);
  }
  out.legit_ns = std::chrono::duration<double, std::nano>(
                     std::chrono::steady_clock::now() - started)
                     .count() /
                 iters;
  started = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    now += from_ms(10);
    const auto verdict = chain.evaluate(
        policy::QueryInfo{client, attack, dns::RRType::kA, now});
    sink += static_cast<std::uint64_t>(verdict.action);
  }
  out.attack_ns = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - started)
                      .count() /
                  iters;
  out.allocs_per_op = static_cast<double>(g_heap_allocs.load() -
                                          allocs_before) /
                      (2.0 * iters);
  if (sink == 0xDEAD) std::printf("unreachable %llu\n",
                                  static_cast<unsigned long long>(sink));
  return out;
}

void print_run(const char* label, const engine::ScenarioResult& result) {
  const auto summary = result.load.latency_summary();
  std::printf("%-22s %7.0f qps  p50 %6.2f  p95 %6.2f  p99 %7.2f ms  "
              "answered %llu  timeout %llu\n",
              label, result.engine_qps, summary.median, summary.p95,
              summary.p99,
              static_cast<unsigned long long>(result.load.answered),
              static_cast<unsigned long long>(result.load.timeouts));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::flag_set(argc, argv, "--smoke");
  const bool json = bench::flag_set(argc, argv, "--json");

  engine::ScenarioConfig attack;
  attack.seed =
      static_cast<std::uint64_t>(bench::flag_int(argc, argv, "--seed", 42));
  attack.load.clients = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "--clients", smoke ? 300 : 1000));
  attack.load.qps = bench::flag_int(argc, argv, "--qps", smoke ? 600 : 2000);
  attack.load.duration =
      bench::flag_int(argc, argv, "--seconds", smoke ? 6 : 20) * kSecond;
  attack.load.names = 100;
  attack.engine.max_ttl = 1;  // keep refresh traffic flowing past warmup
  attack.abuse.enabled = true;
  attack.abuse.start = 2 * kSecond;
  if (smoke) {
    attack.abuse.flood_qps = 900;
    attack.abuse.torture_qps = 450;
    attack.abuse.amp_qps = 300;
  }

  // The baseline is the same scenario with the attacks silenced: same
  // policy chain, same per-client addressing, same anycast pool — the only
  // variable is the abuse traffic.
  engine::ScenarioConfig baseline = attack;
  baseline.abuse.flood_qps = 0.0;
  baseline.abuse.torture_qps = 0.0;
  baseline.abuse.amp_qps = 0.0;

  bench::banner("Policy path 1 — compiled chain evaluation (hot path)");
  const EvalNumbers eval = measure_eval(smoke ? 200000 : 1000000);
  std::printf("legit query   %7.1f ns/op (full chain walk to the route "
              "rule)\n",
              eval.legit_ns);
  std::printf("attack query  %7.1f ns/op (sheds at the flood suffix "
              "rule)\n",
              eval.attack_ns);
  std::printf("allocations   %7.2f per evaluation\n", eval.allocs_per_op);

  bench::banner("Policy path 2 — attack shed vs legit tail latency");
  const auto result_base = engine::run_scenario(baseline);
  const auto result_attack = engine::run_scenario(attack);
  print_run("no attack", result_base);
  print_run("under attack", result_attack);
  std::uint64_t attack_sent = 0;
  for (const auto& a : result_attack.attacks) attack_sent += a.sent;
  const double shed = result_attack.attack_shed_rate();
  const double p99_base = result_base.load.latency_summary().p99;
  const double p99_attack = result_attack.load.latency_summary().p99;
  const double p99_ratio = p99_base > 0 ? p99_attack / p99_base : 0.0;
  std::printf("attack queries %llu, shed %.1f%% at the chain "
              "(refused/dropped before cache or upstream)\n",
              static_cast<unsigned long long>(attack_sent), 100.0 * shed);
  std::printf("legit p99 %.2f ms -> %.2f ms under attack (%+.1f%%)\n",
              p99_base, p99_attack, 100.0 * (p99_ratio - 1.0));
  for (const auto& rule : result_attack.engine.policy_rules) {
    std::printf("    %-18s %-13s %-10s %8llu hits\n", rule.name.c_str(),
                std::string(policy::matcher_kind_name(rule.matcher)).c_str(),
                std::string(policy::action_kind_name(rule.action)).c_str(),
                static_cast<unsigned long long>(rule.matches));
  }

  if (json) {
    bench::JsonReporter reporter;
    reporter.metric("chain_eval", "legit_ns_per_op", eval.legit_ns);
    reporter.metric("chain_eval", "attack_ns_per_op", eval.attack_ns);
    reporter.metric("chain_eval", "allocs_per_op", eval.allocs_per_op);
    reporter.metric("attack_shed", "attack_sent",
                    static_cast<double>(attack_sent));
    reporter.metric("attack_shed", "shed_rate", shed);
    reporter.metric("attack_shed", "legit_p99_ms_baseline", p99_base);
    reporter.metric("attack_shed", "legit_p99_ms_under_attack", p99_attack);
    reporter.metric("attack_shed", "legit_p99_ratio", p99_ratio);
    reporter.metric("attack_shed", "legit_answered",
                    static_cast<double>(result_attack.load.answered));
    reporter.metric("attack_shed", "legit_timeouts",
                    static_cast<double>(result_attack.load.timeouts));
    const char* path = "BENCH_policy.json";
    if (reporter.write_file(path)) {
      std::printf("\nbaseline -> %s\n", path);
    } else {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
  }

  // CI gate: the three claims the subsystem makes.
  bool ok = true;
  if (eval.allocs_per_op > 0.0) {
    std::fprintf(stderr, "FAIL: chain evaluation allocated (%.2f/op)\n",
                 eval.allocs_per_op);
    ok = false;
  }
  if (shed < 0.95) {
    std::fprintf(stderr, "FAIL: attack shed %.1f%% < 95%%\n", 100.0 * shed);
    ok = false;
  }
  if (p99_ratio > 1.10) {
    std::fprintf(stderr,
                 "FAIL: legit p99 ratio %.3f > 1.10 under attack\n",
                 p99_ratio);
    ok = false;
  }
  std::printf("\npolicy path: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
