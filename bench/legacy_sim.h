// The seed repo's event loop — per-event `std::make_shared<State>` plus a
// type-erased `std::function` — frozen verbatim as a bench fixture so the
// slab/SBO rewrite's speedup stays measurable in-tree (BENCH_sim_core.json
// records both sides). Not used by any library code.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/types.h"

namespace doxlab::bench::legacy {

class Simulator;

class Timer {
 public:
  Timer() = default;

  void cancel() {
    if (!state_) return;
    state_->cancelled = true;
    state_->fn = nullptr;
  }

  bool armed() const {
    return state_ && !state_->cancelled && !state_->fired;
  }

 private:
  friend class Simulator;
  struct State {
    std::function<void()> fn;
    bool cancelled = false;
    bool fired = false;
  };
  explicit Timer(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  Timer schedule(SimTime delay, std::function<void()> fn) {
    if (delay < 0) delay = 0;
    return at(now_ + delay, std::move(fn));
  }

  Timer at(SimTime time, std::function<void()> fn) {
    if (time < now_) time = now_;
    auto state = std::make_shared<Timer::State>();
    state->fn = std::move(fn);
    queue_.push(Entry{time, next_seq_++, state});
    return Timer(std::move(state));
  }

  void run() {
    while (step()) {
    }
  }

  void run_until(SimTime deadline) {
    while (!queue_.empty()) {
      const Entry& top = queue_.top();
      if (top.state->cancelled) {
        queue_.pop();
        continue;
      }
      if (top.time > deadline) break;
      step();
    }
    if (now_ < deadline) now_ = deadline;
  }

  bool step() {
    while (!queue_.empty()) {
      Entry entry = queue_.top();
      queue_.pop();
      if (entry.state->cancelled) continue;
      now_ = entry.time;
      entry.state->fired = true;
      ++executed_;
      auto fn = std::move(entry.state->fn);
      fn();
      return true;
    }
    return false;
  }

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::shared_ptr<Timer::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace doxlab::bench::legacy
