// Reproduces **Fig. 4** of the paper: per vantage point and per page (sorted
// by average DNS queries per load), the relative PLT difference of DoUDP and
// DoH against the DoQ baseline, plus the fraction of resolvers for which
// DoQ beats DoH (the figure's background shading).
//
// Usage: fig4_doq_vs [--resolvers=N] [--loads=N] [--full] [--csv]
//        [--jobs=N]  (shard over a thread pool via the campaign runner;
//                     output depends only on the seed, not on N)
#include <cstdio>

#include "bench_util.h"
#include "measure/csv.h"
#include "measure/report.h"
#include "measure/web_study.h"
#include "net/geo.h"
#include "runner/campaign.h"
#include "stats/stats.h"

using namespace doxlab;
using namespace doxlab::measure;

int main(int argc, char** argv) {
  const bool full = bench::flag_set(argc, argv, "--full");

  WebStudyConfig web_config;
  web_config.max_resolvers =
      bench::flag_int(argc, argv, "--resolvers", full ? 0 : 12);
  web_config.loads_per_combo = bench::flag_int(argc, argv, "--loads", 4);
  // Fig. 4 needs only DoUDP, DoH and the DoQ baseline.
  web_config.protocols = {dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoH,
                          dox::DnsProtocol::kDoQ};

  std::vector<WebRecord> records;
  std::vector<std::string> vp_names;
  if (bench::flag_int(argc, argv, "--jobs", -1) >= 0) {
    runner::CampaignConfig campaign;
    campaign.jobs = bench::flag_int(argc, argv, "--jobs", 1);
    campaign.population.verified_only = true;
    campaign.population.verified_dox = full ? 313 : 60;
    records = runner::run_web_campaign(campaign, web_config);
    for (const net::City& city : net::vantage_point_cities()) {
      vp_names.push_back(city.name);
    }
  } else {
    TestbedConfig config;
    config.population.verified_only = true;
    config.population.verified_dox = full ? 313 : 60;
    Testbed testbed(config);
    WebStudy study(testbed, web_config);
    records = study.run();
    for (auto& vp : testbed.vantage_points()) vp_names.push_back(vp->name);
  }

  bench::banner("Fig. 4 — PLT vs the DoQ baseline per VP x page (measured)");
  auto cells = fig4_cells(records, vp_names);
  std::printf("%s", render_fig4(cells, vp_names).c_str());

  // Aggregate amortization curve: median deltas per page across VPs.
  bench::banner("Amortization summary (median across vantage points)");
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      per_page;
  std::map<std::string, int> queries;
  for (const auto& cell : cells) {
    auto& entry = per_page[cell.page];
    entry.first.insert(entry.first.end(), cell.doudp_rel.begin(),
                       cell.doudp_rel.end());
    entry.second.insert(entry.second.end(), cell.doh_rel.begin(),
                        cell.doh_rel.end());
    queries[cell.page] = cell.dns_queries;
  }
  std::vector<std::pair<std::string, int>> ordered(queries.begin(),
                                                   queries.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::printf("%-16s %5s  %16s  %14s\n", "page", "#DNS", "DoUDP vs DoQ med",
              "DoH vs DoQ med");
  for (const auto& [page, count] : ordered) {
    const auto& [doudp, doh] = per_page[page];
    std::printf("%-16s %5d  %15.1f%%  %13.1f%%\n", page.c_str(), count,
                100 * stats::median(doudp).value_or(0),
                100 * stats::median(doh).value_or(0));
  }
  std::printf(
      "\nPaper reference: DoQ beats DoH in nearly every cell, by up to ~10%%\n"
      "median on the simple pages (wikipedia, instagram), shrinking as the\n"
      "number of DNS queries grows; DoQ trails DoUDP by up to ~10%% on the\n"
      "simple pages but only ~2%% on the complex ones (microsoft, youtube);\n"
      "EU shows the smallest differences.\n");

  if (bench::flag_set(argc, argv, "--csv")) {
    write_file("fig4_web.csv", web_csv(records));
    std::printf("\nraw records -> fig4_web.csv\n");
  }
  return 0;
}
