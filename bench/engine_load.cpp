// Load bench for the forwarder engine (src/engine): sustained qps and
// client-visible latency percentiles under thousands of simulated stub
// clients, with ablations of the engine's three load-bearing mechanisms:
//   1. Query coalescing — identical concurrent misses share one upstream
//      resolve; off, every miss goes upstream on its own.
//   2. RFC 8767 serve-stale — expired entries answer immediately with a
//      clamped TTL while a background refresh runs; off, every expiry is a
//      client-visible cold miss.
//   3. Upstream failover — the primary resolver dies mid-run; health
//      tracking + the DoQ -> DoT -> DoUDP fallback chain keep answering
//      without client-visible SERVFAILs.
//
// Deterministic from --seed. Usage:
//   engine_load [--clients=N] [--qps=N] [--seconds=N] [--seed=N] [--full]
#include <cstdio>

#include "bench_util.h"
#include "engine/scenario.h"
#include "stats/stats.h"

using namespace doxlab;
using namespace doxlab::engine;

namespace {

void print_run(const char* label, const ScenarioResult& result) {
  const auto& e = result.engine;
  const auto& l = result.load;
  const auto summary = l.latency_summary();
  std::printf("%-24s %7.0f qps  p50 %6.2f  p95 %6.2f  p99 %7.2f ms\n",
              label, result.engine_qps, summary.median, summary.p95,
              summary.p99);
  std::printf(
      "    sent %llu  answered %llu  servfail %llu  timeout %llu | "
      "hit %llu  stale %llu  miss %llu  coalesced %llu (%.0f%%)\n",
      static_cast<unsigned long long>(l.sent),
      static_cast<unsigned long long>(l.answered),
      static_cast<unsigned long long>(l.servfails),
      static_cast<unsigned long long>(l.timeouts),
      static_cast<unsigned long long>(e.cache_hits),
      static_cast<unsigned long long>(e.stale_hits),
      static_cast<unsigned long long>(e.misses),
      static_cast<unsigned long long>(e.coalesced),
      100.0 * e.coalesce_rate());
  std::printf(
      "    upstream: resolves %llu  attempts %llu  failovers %llu  "
      "refreshes %llu  evictions %llu\n",
      static_cast<unsigned long long>(e.upstream_resolves),
      static_cast<unsigned long long>(e.upstream_attempts),
      static_cast<unsigned long long>(e.failovers),
      static_cast<unsigned long long>(e.stale_refreshes),
      static_cast<unsigned long long>(e.cache_evictions));
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::flag_set(argc, argv, "--full");
  ScenarioConfig base;
  base.seed =
      static_cast<std::uint64_t>(bench::flag_int(argc, argv, "--seed", 42));
  base.load.clients = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "--clients", full ? 4000 : 1200));
  base.load.qps = bench::flag_int(argc, argv, "--qps", full ? 4000 : 2000);
  base.load.duration =
      bench::flag_int(argc, argv, "--seconds", full ? 40 : 25) * kSecond;
  // Keep one-time cold-miss traffic (one resolve per name, plus the
  // queries that coalesce onto those first-contact windows) below 1% of
  // total queries, so the p99 bucket reflects steady-state behaviour.
  base.load.names = full ? 400 : 100;
  // Short TTLs force refresh/expiry traffic — without them the Zipf head
  // would be a one-time warmup and every mechanism under test would idle.
  base.engine.max_ttl = 1;

  // ---------------------------------------------------------------- 1.
  bench::banner("Engine load 1 — query coalescing (upstream traffic)");
  {
    ScenarioConfig off = base;
    off.engine.serve_stale = false;  // isolate coalescing from serve-stale
    off.engine.coalesce = false;
    ScenarioConfig on = off;
    on.engine.coalesce = true;
    auto result_off = run_scenario(off);
    auto result_on = run_scenario(on);
    print_run("coalescing off", result_off);
    print_run("coalescing on", result_on);
    const double saved =
        result_off.engine.upstream_resolves == 0
            ? 0.0
            : 100.0 *
                  (1.0 - static_cast<double>(
                             result_on.engine.upstream_resolves) /
                             static_cast<double>(
                                 result_off.engine.upstream_resolves));
    std::printf(
        "coalescing cut upstream resolves %llu -> %llu (-%.0f%%) across "
        "%zu clients\n",
        static_cast<unsigned long long>(result_off.engine.upstream_resolves),
        static_cast<unsigned long long>(result_on.engine.upstream_resolves),
        saved, base.load.clients);
  }

  // ---------------------------------------------------------------- 2.
  bench::banner("Engine load 2 — RFC 8767 serve-stale (tail latency)");
  {
    ScenarioConfig off = base;
    off.engine.serve_stale = false;
    ScenarioConfig on = base;
    on.engine.serve_stale = true;
    auto result_off = run_scenario(off);
    auto result_on = run_scenario(on);
    print_run("serve-stale off", result_off);
    print_run("serve-stale on", result_on);
    std::printf(
        "serve-stale p99: %.2f ms -> %.2f ms (expired hot names answer "
        "from cache while refreshing)\n",
        result_off.load.latency_summary().p99,
        result_on.load.latency_summary().p99);
  }

  // ---------------------------------------------------------------- 3.
  bench::banner("Engine load 3 — primary upstream dies mid-run (failover)");
  {
    ScenarioConfig kill = base;
    kill.kill_primary_at = kill.load.duration / 2;
    auto result = run_scenario(kill);
    print_run("primary killed", result);
    for (const auto& upstream : result.engine.upstreams) {
      std::printf(
          "    %-12s ewma %7.2f ms  attempts %6llu  failures %5llu  %s\n",
          upstream.name.c_str(), upstream.ewma_latency_ms,
          static_cast<unsigned long long>(upstream.attempts),
          static_cast<unsigned long long>(upstream.failures),
          upstream.healthy ? "healthy" : "quarantined");
    }
    std::printf(
        "client-visible SERVFAILs: %llu (health tracking walks the "
        "DoQ->DoT->DoUDP chain to the surviving upstreams)\n",
        static_cast<unsigned long long>(result.load.servfails));
  }
  return 0;
}
