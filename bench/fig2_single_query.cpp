// Reproduces **Fig. 2** of the paper: median handshake time (a) and resolve
// time (b) per protocol, over all vantage points and per vantage point,
// plus the §3 protocol-mix observations (QUIC versions, DoQ ALPNs, TLS
// versions, session resumption / 0-RTT usage).
//
// Usage: fig2_single_query [--resolvers=N] [--reps=N] [--full] [--csv=path]
//        [--jobs=N]  (shard over a thread pool via the campaign runner;
//                     output depends only on the seed, not on N)
#include <cstdio>

#include "bench_util.h"
#include "measure/csv.h"
#include "measure/report.h"
#include "measure/single_query.h"
#include "net/geo.h"
#include "runner/campaign.h"

using namespace doxlab;
using namespace doxlab::measure;

int main(int argc, char** argv) {
  const bool full = bench::flag_set(argc, argv, "--full");
  const int resolvers =
      bench::flag_int(argc, argv, "--resolvers", full ? 313 : 48);

  SingleQueryConfig sq_config;
  sq_config.repetitions =
      bench::flag_int(argc, argv, "--reps", full ? 4 : 1);

  std::vector<SingleQueryRecord> records;
  std::vector<std::string> vp_names;
  if (bench::flag_int(argc, argv, "--jobs", -1) >= 0) {
    runner::CampaignConfig campaign;
    campaign.jobs = bench::flag_int(argc, argv, "--jobs", 1);
    campaign.population.verified_only = true;
    campaign.population.verified_dox = resolvers;
    records = runner::run_single_query_campaign(campaign, sq_config);
    for (const net::City& city : net::vantage_point_cities()) {
      vp_names.push_back(city.name);
    }
  } else {
    TestbedConfig config;
    config.population.verified_only = true;
    config.population.verified_dox = resolvers;
    Testbed testbed(config);
    SingleQueryStudy study(testbed, sq_config);
    records = study.run();
    for (auto& vp : testbed.vantage_points()) vp_names.push_back(vp->name);
  }

  bench::banner("Fig. 2 — handshake and resolve times (measured)");
  std::printf("%s", render_fig2(
                        fig2_handshake_resolve(records, vp_names)).c_str());
  std::printf(
      "Paper reference (Total row): handshake DoH ~376 ms ~ DoT ~377 ms,\n"
      "DoTCP ~183 ms ~ DoQ ~187 ms (encrypted 1-RTT matches plain TCP);\n"
      "resolve times similar across protocols, ordered by vantage point\n"
      "distance (EU fastest; AF/OC/SA slowest).\n");

  bench::banner("Sec. 3 — protocol mix (measured)");
  std::printf("%s", render_mix(protocol_mix(records)).c_str());
  std::printf(
      "\nPaper reference: QUIC v1 89.1%%, draft-34 8.5%%, draft-32 1.8%%,\n"
      "draft-29 0.6%%; ALPN doq-i02 87.4%%, doq-i03 10.8%%, doq-i00 1.8%%;\n"
      "TLS 1.3 ~99%%; session resumption in all TLS 1.3 measurements;\n"
      "0-RTT supported by no resolver.\n");

  if (bench::flag_set(argc, argv, "--csv")) {
    write_file("fig2_single_query.csv", single_query_csv(records));
    std::printf("\nraw records -> fig2_single_query.csv\n");
  }
  return 0;
}
