// Microbenchmarks of the library's hot components (google-benchmark):
// wire codecs (DNS, QUIC, HPACK, TLS records), the event loop, and a full
// in-simulation DoQ query round trip. These quantify the cost of the
// simulation substrate itself, not the paper's results.
//
// The sim-core suite additionally measures the slab/SBO event loop against
// the seed's shared_ptr+std::function implementation (bench/legacy_sim.h)
// and writes the numbers to BENCH_sim_core.json — the committed hot-path
// baseline. The byte-path suite does the same for the pooled zero-copy
// send/receive path (util::Buffer + in-place framing + scratch decode) vs
// the seed's copy chain, writing BENCH_byte_path.json; it also counts heap
// allocations per forwarded cached query through the full forwarder engine.
// Extra flags (stripped before google-benchmark sees them):
//   --smoke        run only the sim-core + byte-path suites, briefly, and
//                  exit non-zero on a hot-path regression (CI guard)
//   --json[=PATH]  write BENCH_sim_core.json (default name) and
//                  BENCH_byte_path.json after the run
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dns/message.h"
#include "dns/wire_cache.h"
#include "engine/engine.h"
#include "h2/hpack.h"
#include "legacy_dns.h"
#include "legacy_sim.h"
#include "measure/testbed.h"
#include "net/network.h"
#include "quic/wire.h"
#include "resolver/resolver.h"
#include "sim/simulator.h"
#include "tls/wire.h"
#include "util/buffer.h"

// Program-wide allocation counter: the sim-core suite reports heap
// allocations per event, the headline metric of the slab/SBO rewrite.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace doxlab;

void BM_DnsEncodeQuery(benchmark::State& state) {
  const auto name = dns::DnsName::parse("www.google.com");
  for (auto _ : state) {
    auto wire = dns::make_query(0x1234, name, dns::RRType::kA).encode();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_DnsEncodeQuery);

void BM_DnsDecodeResponse(benchmark::State& state) {
  auto query = dns::make_query(1, dns::DnsName::parse("google.com"),
                               dns::RRType::kA);
  auto response = dns::make_response(query);
  response.answers.push_back(
      dns::make_a(dns::DnsName::parse("google.com"), 300, 0x8080404));
  const auto wire = response.encode();
  for (auto _ : state) {
    auto decoded = dns::Message::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DnsDecodeResponse);

void BM_DnsNameCompression(benchmark::State& state) {
  std::vector<dns::DnsName> names;
  for (int i = 0; i < 8; ++i) {
    names.push_back(
        dns::DnsName::parse("host" + std::to_string(i) + ".cdn.example.com"));
  }
  for (auto _ : state) {
    ByteWriter w;
    dns::NameCompressor nc;
    for (const auto& name : names) nc.write(w, name);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_DnsNameCompression);

void BM_QuicDatagramRoundTrip(benchmark::State& state) {
  quic::QuicPacket packet;
  packet.type = quic::PacketType::kInitial;
  packet.frames.push_back(
      quic::Frame::crypto(0, std::vector<std::uint8_t>(300, 0xAB)));
  std::vector<quic::QuicPacket> packets = {packet};
  for (auto _ : state) {
    auto wire = quic::encode_datagram(packets, true);
    auto decoded = quic::decode_datagram(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_QuicDatagramRoundTrip);

void BM_HpackRequestBlock(benchmark::State& state) {
  const std::vector<h2::Header> headers = {
      {":method", "POST"},
      {":scheme", "https"},
      {":authority", "resolver-9.9.9.9"},
      {":path", "/dns-query"},
      {"content-type", "application/dns-message"},
      {"content-length", "51"},
  };
  for (auto _ : state) {
    h2::HpackEncoder encoder;  // fresh table = first-request cost
    auto block = encoder.encode(headers);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_HpackRequestBlock);

void BM_TlsClientHello(benchmark::State& state) {
  tls::TlsWire wire;
  tls::ClientHello ch;
  ch.sni = "resolver.example";
  ch.alpn = {"doq"};
  ch.psk = tls::SessionTicket{};
  for (auto _ : state) {
    auto record = wire.client_hello_record(ch);
    benchmark::DoNotOptimize(record);
  }
}
BENCHMARK(BM_TlsClientHello);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

// Steady-state variants: the simulator (and its slab) persists across
// batches, the shape of a real study where one simulator drains millions
// of events. The *Legacy twins run the seed implementation for comparison.
template <typename Sim>
void event_loop_steady(benchmark::State& state, Sim& sim) {
  long long sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(i, [&sink] { ++sink; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
}

void BM_EventLoopSteady(benchmark::State& state) {
  sim::Simulator sim;
  event_loop_steady(state, sim);
}
BENCHMARK(BM_EventLoopSteady);

void BM_EventLoopSteadyLegacy(benchmark::State& state) {
  bench::legacy::Simulator sim;
  event_loop_steady(state, sim);
}
BENCHMARK(BM_EventLoopSteadyLegacy);

template <typename Sim, typename TimerT>
void event_loop_cancel_drain(benchmark::State& state, Sim& sim) {
  long long sink = 0;
  std::vector<TimerT> timers;
  timers.reserve(1000);
  for (auto _ : state) {
    timers.clear();
    for (int i = 0; i < 1000; ++i) {
      timers.push_back(sim.schedule(i, [&sink] { ++sink; }));
    }
    // Disarm 75% — the retransmission-timers-cancelled-by-ACKs pattern
    // that exercises lazy-cancel compaction.
    for (int i = 0; i < 1000; ++i) {
      if (i % 4 != 0) timers[i].cancel();
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
}

void BM_EventLoopCancelDrain(benchmark::State& state) {
  sim::Simulator sim;
  event_loop_cancel_drain<sim::Simulator, sim::Timer>(state, sim);
}
BENCHMARK(BM_EventLoopCancelDrain);

void BM_EventLoopCancelDrainLegacy(benchmark::State& state) {
  bench::legacy::Simulator sim;
  event_loop_cancel_drain<bench::legacy::Simulator, bench::legacy::Timer>(
      state, sim);
}
BENCHMARK(BM_EventLoopCancelDrainLegacy);

void BM_FullDoqQuery(benchmark::State& state) {
  // One warmed DoQ query per iteration, full stack, in simulated time.
  measure::TestbedConfig config;
  config.population.verified_only = true;
  config.population.verified_dox = 6;
  measure::Testbed testbed(config);
  auto& sim = testbed.simulator();
  auto& vp = *testbed.vantage_points()[0];
  const dns::Question question{dns::DnsName::parse("google.com"),
                               dns::RRType::kA, dns::RRClass::kIN};
  dox::TransportOptions options;
  options.resolver = testbed.resolver_endpoint(testbed.population().verified[0],
                                               dox::DnsProtocol::kDoQ);
  for (auto _ : state) {
    auto transport = dox::make_transport(dox::DnsProtocol::kDoQ,
                                         vp.deps(sim), options);
    bool done = false;
    transport->resolve(question, [&](dox::QueryResult) { done = true; });
    testbed.run_until_flag(done);
    transport->reset_sessions();
    sim.run_until(sim.now() + 100 * kMillisecond);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FullDoqQuery);

// ---------------------------------------------------------------------------
// sim-core suite: steady-state ns/event and allocations/event for the new
// slab/SBO simulator vs the frozen seed implementation, reported to
// BENCH_sim_core.json. Timed by hand (not google-benchmark) so one run
// yields exactly the numbers the JSON baseline commits.

struct SimCoreSample {
  double ns_per_op = 0;
  double allocs_per_op = 0;      // global operator new count delta
  double eventfn_heap_per_op = 0;  // EventFn SBO fallbacks (new sim only)
};

/// Schedule `batch` small-capture events and drain, `trials` times.
template <typename Sim>
SimCoreSample measure_fire(Sim& sim, int trials, int batch) {
  long long sink = 0;
  const std::uint64_t allocs0 = g_heap_allocs.load();
  const std::uint64_t sbo0 = sim::EventFn::heap_allocations();
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < trials; ++t) {
    for (int i = 0; i < batch; ++i) sim.schedule(i, [&sink] { ++sink; });
    sim.run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  const double ops = static_cast<double>(trials) * batch;
  SimCoreSample sample;
  sample.ns_per_op =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
  sample.allocs_per_op =
      static_cast<double>(g_heap_allocs.load() - allocs0) / ops;
  sample.eventfn_heap_per_op =
      static_cast<double>(sim::EventFn::heap_allocations() - sbo0) / ops;
  return sample;
}

/// Schedule, cancel 75%, drain — the lazy-cancel + compaction path.
template <typename Sim, typename TimerT>
SimCoreSample measure_cancel(Sim& sim, int trials, int batch) {
  long long sink = 0;
  std::vector<TimerT> timers;
  timers.reserve(batch);
  const std::uint64_t allocs0 = g_heap_allocs.load();
  const std::uint64_t sbo0 = sim::EventFn::heap_allocations();
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < trials; ++t) {
    timers.clear();
    for (int i = 0; i < batch; ++i) {
      timers.push_back(sim.schedule(i, [&sink] { ++sink; }));
    }
    for (int i = 0; i < batch; ++i) {
      if (i % 4 != 0) timers[i].cancel();
    }
    sim.run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  const double ops = static_cast<double>(trials) * batch;
  SimCoreSample sample;
  sample.ns_per_op =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
  sample.allocs_per_op =
      static_cast<double>(g_heap_allocs.load() - allocs0) / ops;
  sample.eventfn_heap_per_op =
      static_cast<double>(sim::EventFn::heap_allocations() - sbo0) / ops;
  return sample;
}

struct SimCoreResults {
  SimCoreSample fire_new, fire_legacy;
  SimCoreSample cancel_new, cancel_legacy;
};

/// Keeps the faster timing (machine noise only ever slows a run down);
/// allocation counts are identical across passes.
void keep_best(SimCoreSample& best, const SimCoreSample& sample) {
  if (best.ns_per_op == 0 || sample.ns_per_op < best.ns_per_op) best = sample;
}

SimCoreResults run_sim_core_suite(int trials) {
  // Queue depth 256: study simulators run shallow queues (in-flight packets
  // and timers), so deep-heap sift costs — identical in both
  // implementations — should not dominate the comparison.
  constexpr int kBatch = 256;
  constexpr int kPasses = 3;  // best-of-N to shed scheduler noise
  const int warmup = trials / 10 + 10;
  SimCoreResults r;
  for (int pass = 0; pass < kPasses; ++pass) {
    {
      sim::Simulator sim;
      measure_fire(sim, warmup, kBatch);
      keep_best(r.fire_new, measure_fire(sim, trials, kBatch));
    }
    {
      bench::legacy::Simulator sim;
      measure_fire(sim, warmup, kBatch);
      keep_best(r.fire_legacy, measure_fire(sim, trials, kBatch));
    }
    {
      sim::Simulator sim;
      measure_cancel<sim::Simulator, sim::Timer>(sim, warmup, kBatch);
      keep_best(r.cancel_new, measure_cancel<sim::Simulator, sim::Timer>(
                                  sim, trials, kBatch));
    }
    {
      bench::legacy::Simulator sim;
      measure_cancel<bench::legacy::Simulator, bench::legacy::Timer>(
          sim, warmup, kBatch);
      keep_best(
          r.cancel_legacy,
          measure_cancel<bench::legacy::Simulator, bench::legacy::Timer>(
              sim, trials, kBatch));
    }
  }
  return r;
}

void report_sim_core(const SimCoreResults& r, bench::JsonReporter& json) {
  const double fire_speedup = r.fire_legacy.ns_per_op / r.fire_new.ns_per_op;
  const double cancel_speedup =
      r.cancel_legacy.ns_per_op / r.cancel_new.ns_per_op;
  bench::banner("sim-core: slab/SBO event loop vs seed implementation");
  std::printf("schedule/fire     %7.1f ns/event  (legacy %7.1f)  %0.2fx\n",
              r.fire_new.ns_per_op, r.fire_legacy.ns_per_op, fire_speedup);
  std::printf("schedule/cancel   %7.1f ns/op     (legacy %7.1f)  %0.2fx\n",
              r.cancel_new.ns_per_op, r.cancel_legacy.ns_per_op,
              cancel_speedup);
  std::printf("allocations/event %7.4f           (legacy %7.4f)\n",
              r.fire_new.allocs_per_op, r.fire_legacy.allocs_per_op);
  std::printf("EventFn SBO heap fallbacks/event: %.4f\n",
              r.fire_new.eventfn_heap_per_op);

  json.metric("sim_core_fire", "ns_per_event", r.fire_new.ns_per_op);
  json.metric("sim_core_fire", "ns_per_event_legacy",
              r.fire_legacy.ns_per_op);
  json.metric("sim_core_fire", "events_per_sec",
              1e9 / r.fire_new.ns_per_op);
  json.metric("sim_core_fire", "speedup_vs_legacy", fire_speedup);
  json.metric("sim_core_fire", "heap_allocs_per_event",
              r.fire_new.allocs_per_op);
  json.metric("sim_core_fire", "heap_allocs_per_event_legacy",
              r.fire_legacy.allocs_per_op);
  json.metric("sim_core_fire", "eventfn_heap_fallbacks_per_event",
              r.fire_new.eventfn_heap_per_op);
  json.metric("sim_core_cancel", "ns_per_op", r.cancel_new.ns_per_op);
  json.metric("sim_core_cancel", "ns_per_op_legacy",
              r.cancel_legacy.ns_per_op);
  json.metric("sim_core_cancel", "speedup_vs_legacy", cancel_speedup);
  json.metric("sim_core_cancel", "heap_allocs_per_op",
              r.cancel_new.allocs_per_op);
  json.metric("sim_core_cancel", "heap_allocs_per_op_legacy",
              r.cancel_legacy.allocs_per_op);
}

// ---------------------------------------------------------------------------
// byte-path suite: the pooled zero-copy send/receive path vs the seed's
// copy-chain (vector encode, per-hop payload copy, allocating decode),
// reported to BENCH_byte_path.json. Timed by hand like the sim-core suite.

struct BytePathSample {
  double ns_per_op = 0;
  double allocs_per_op = 0;  // global operator new count delta
};

/// Times `op` over `trials` iterations, reporting ns and allocations per op.
template <typename Op>
BytePathSample measure_ops(int trials, Op&& op) {
  const std::uint64_t allocs0 = g_heap_allocs.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < trials; ++t) op();
  const auto t1 = std::chrono::steady_clock::now();
  BytePathSample sample;
  sample.ns_per_op =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / trials;
  sample.allocs_per_op =
      static_cast<double>(g_heap_allocs.load() - allocs0) / trials;
  return sample;
}

/// The study's DoUDP exchange: the 59-byte query and 63-byte response, in
/// both today's codec and the frozen seed codec (bench/legacy_dns.h). The
/// constructor asserts both produce identical wire bytes, so the two sides
/// of the comparison do identical protocol work.
struct DoudpMessages {
  dns::Message query;
  dns::Message response;
  bench::legacy::Message legacy_query;
  bench::legacy::Message legacy_response;

  DoudpMessages() {
    query = dns::make_query(0x1234, dns::DnsName::parse("google.com"),
                            dns::RRType::kA);
    response = dns::make_response(query);
    response.answers.push_back(
        dns::make_a(dns::DnsName::parse("google.com"), 300, 0x08080404));
    legacy_query = *bench::legacy::decode(query.encode());
    legacy_response = *bench::legacy::decode(response.encode());
    if (bench::legacy::encode(legacy_query) != query.encode() ||
        bench::legacy::encode(legacy_response) != response.encode()) {
      std::fprintf(stderr, "legacy codec fixture diverged from current\n");
      std::abort();
    }
  }
};

/// Seed path: vector encode (std::map suffix compression), a per-hop
/// payload copy (the old net::Packet payload vector), then the decode that
/// built a std::vector<std::string> per name.
BytePathSample measure_roundtrip_legacy(int trials) {
  DoudpMessages m;
  return measure_ops(trials, [&] {
    std::vector<std::uint8_t> query_wire = bench::legacy::encode(m.legacy_query);
    std::vector<std::uint8_t> delivered_q(query_wire);  // hop copy
    auto decoded_q = bench::legacy::decode(delivered_q);
    benchmark::DoNotOptimize(decoded_q);
    std::vector<std::uint8_t> response_wire =
        bench::legacy::encode(m.legacy_response);
    std::vector<std::uint8_t> delivered_r(response_wire);  // hop copy
    auto decoded_r = bench::legacy::decode(delivered_r);
    benchmark::DoNotOptimize(decoded_r);
  });
}

/// Pooled path: one slab per message, moved through the hop, decoded into
/// reusable scratch storage.
BytePathSample measure_roundtrip_pooled(int trials) {
  DoudpMessages m;
  dns::Message scratch_q, scratch_r;
  return measure_ops(trials, [&] {
    util::Buffer query_wire = m.query.encode_buffer();
    util::Buffer delivered_q = std::move(query_wire);  // zero-copy hop
    dns::Message::decode_into(delivered_q, scratch_q);
    benchmark::DoNotOptimize(scratch_q.id);
    util::Buffer response_wire = m.response.encode_buffer();
    util::Buffer delivered_r = std::move(response_wire);  // zero-copy hop
    dns::Message::decode_into(delivered_r, scratch_r);
    benchmark::DoNotOptimize(scratch_r.id);
  });
}

/// Seed DoT framing chain: encode vector, copy into a length-prefixed
/// vector, copy again into a TLS application-data record vector.
BytePathSample measure_dot_frame_legacy(int trials) {
  DoudpMessages m;
  return measure_ops(trials, [&] {
    std::vector<std::uint8_t> msg = bench::legacy::encode(m.legacy_query);
    std::vector<std::uint8_t> prefixed;
    prefixed.reserve(2 + msg.size());
    prefixed.push_back(static_cast<std::uint8_t>(msg.size() >> 8));
    prefixed.push_back(static_cast<std::uint8_t>(msg.size() & 0xFF));
    prefixed.insert(prefixed.end(), msg.begin(), msg.end());
    std::vector<std::uint8_t> record;
    record.reserve(tls::kRecordHeaderBytes + prefixed.size() +
                   tls::kAeadTagBytes);
    const std::size_t record_len = prefixed.size() + tls::kAeadTagBytes;
    record.push_back(0x17);
    record.push_back(0x03);
    record.push_back(0x03);
    record.push_back(static_cast<std::uint8_t>(record_len >> 8));
    record.push_back(static_cast<std::uint8_t>(record_len & 0xFF));
    record.insert(record.end(), prefixed.begin(), prefixed.end());
    record.insert(record.end(), tls::kAeadTagBytes, 0);
    benchmark::DoNotOptimize(record);
  });
}

/// Pooled DoT framing: the length prefix and TLS record header are
/// prepended into the message's headroom in place — one slab end to end.
BytePathSample measure_dot_frame_pooled(int trials) {
  DoudpMessages m;
  tls::TlsWire wire;
  constexpr std::size_t kDotHeadroom = 2 + tls::kRecordHeaderBytes;
  return measure_ops(trials, [&] {
    util::Buffer msg = m.query.encode_buffer(kDotHeadroom);
    const std::size_t len = msg.size();
    std::uint8_t* prefix = msg.prepend(2);
    prefix[0] = static_cast<std::uint8_t>(len >> 8);
    prefix[1] = static_cast<std::uint8_t>(len & 0xFF);
    util::Buffer record = wire.seal_application_data(std::move(msg));
    benchmark::DoNotOptimize(record.size());
  });
}

/// The engine's Message-path cached answer, componentized: decode the query
/// into scratch, rebuild the response in scratch (id echo + record copies),
/// re-encode into a pooled buffer. This is the per-hit work the wire cache
/// eliminates, with the same fixture on both sides.
BytePathSample measure_message_cached(int trials) {
  DoudpMessages m;
  const std::vector<std::uint8_t> query_wire = m.query.encode();
  dns::Message scratch_q, scratch_r;
  return measure_ops(trials, [&] {
    dns::Message::decode_into(query_wire, scratch_q);
    scratch_r.id = scratch_q.id;
    scratch_r.qr = true;
    scratch_r.ra = true;
    scratch_r.rcode = dns::RCode::kNoError;
    scratch_r.questions = scratch_q.questions;
    scratch_r.answers = m.response.answers;  // the cached records
    scratch_r.authorities.clear();
    scratch_r.additionals.clear();
    util::Buffer out = scratch_r.encode_buffer();
    benchmark::DoNotOptimize(out.size());
  });
}

/// The raw-wire fast path for the same exchange: normalized-hash probe plus
/// copy-and-patch materialize — no Message anywhere.
BytePathSample measure_wire_cached(int trials) {
  DoudpMessages m;
  dns::WireCache cache({});
  const std::vector<std::uint8_t> query_wire = m.query.encode();
  if (!cache.insert(query_wire, m.response.encode(), 0)) {
    std::fprintf(stderr, "wire-cache fixture refused the insert\n");
    std::abort();
  }
  return measure_ops(trials, [&] {
    dns::WireCache::Hit hit;
    if (!cache.probe(query_wire, kSecond, hit)) std::abort();
    util::Buffer out = cache.materialize(hit, query_wire);
    benchmark::DoNotOptimize(out.size());
  });
}

/// Heap allocations per forwarded cached DoUDP query through the full
/// forwarder engine (stub socket -> UDP -> decode -> cache hit -> encode ->
/// UDP -> stub socket), measured steady-state after warm-up. With
/// `wire_capacity` > 0 the steady-state hits take the raw-wire fast path
/// instead of the Message path.
double measure_engine_cached_allocs(int queries, std::size_t wire_capacity) {
  sim::Simulator sim;
  net::Network network(sim, Rng(33));
  net::Host& host = network.add_host(
      "client", net::IpAddress::from_octets(10, 1, 0, 1), {50.11, 8.68},
      net::Continent::kEurope);
  net::UdpStack udp(host);
  tcp::TcpStack tcp(host);
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;
  network.set_loss_rate(0.0);

  resolver::ResolverProfile profile;
  profile.name = "upstream";
  profile.address = net::IpAddress::from_octets(10, 2, 0, 1);
  profile.location = {48.86, 2.35};
  profile.secret = 0xAA;
  profile.drop_probability = 0.0;
  resolver::DoxResolver upstream(network, profile, Rng(1));
  network.set_path_override(host.address(), profile.address, from_ms(10));

  dox::TransportDeps deps;
  deps.sim = &sim;
  deps.udp = &udp;
  deps.tcp = &tcp;
  deps.tickets = &tickets;
  deps.doq_cache = &doq_cache;
  engine::UpstreamConfig upstream_config;
  upstream_config.name = profile.name;
  upstream_config.address = profile.address;
  upstream_config.protocols = {dox::DnsProtocol::kDoUdp};
  engine::EngineConfig config;
  config.wire_cache_capacity = wire_capacity;
  engine::ForwarderEngine engine(sim, udp, deps, {upstream_config}, config);

  auto socket = udp.bind_ephemeral();
  std::uint64_t answered = 0;
  socket->on_datagram(
      [&](const net::Endpoint&, util::Buffer) { ++answered; });
  const dns::Message query = dns::make_query(
      0x77, dns::DnsName::parse("cached.example.com"), dns::RRType::kA);
  const util::Buffer query_wire = query.encode_buffer();
  const net::Endpoint engine_ep{host.address(), 53};

  // Warm-up: the first query resolves upstream and fills the cache; the
  // rest drive every scratch vector and the buffer pool to their
  // steady-state high-water marks.
  for (int i = 0; i < 1024; ++i) {
    socket->send_to(engine_ep, query_wire);
    sim.run_until(sim.now() + (i == 0 ? kSecond : kMillisecond));
  }

  const std::uint64_t before = answered;
  const std::uint64_t allocs0 = g_heap_allocs.load();
  for (int i = 0; i < queries; ++i) {
    socket->send_to(engine_ep, query_wire);
    sim.run_until(sim.now() + kMillisecond);
  }
  const std::uint64_t allocs = g_heap_allocs.load() - allocs0;
  if (answered - before != static_cast<std::uint64_t>(queries)) {
    std::fprintf(stderr,
                 "byte-path engine probe: %llu/%d cached queries answered\n",
                 static_cast<unsigned long long>(answered - before), queries);
    return -1.0;
  }
  return static_cast<double>(allocs) / queries;
}

struct BytePathResults {
  BytePathSample roundtrip_new, roundtrip_legacy;
  BytePathSample frame_new, frame_legacy;
  BytePathSample wire_cached, message_cached;
  double engine_allocs_per_query = 0;
  double engine_wire_allocs_per_query = 0;
};

void keep_best(BytePathSample& best, const BytePathSample& sample) {
  if (best.ns_per_op == 0 || sample.ns_per_op < best.ns_per_op) best = sample;
}

BytePathResults run_byte_path_suite(int trials) {
  constexpr int kPasses = 3;  // best-of-N to shed scheduler noise
  const int warmup = trials / 10 + 10;
  BytePathResults r;
  for (int pass = 0; pass < kPasses; ++pass) {
    measure_roundtrip_pooled(warmup);
    keep_best(r.roundtrip_new, measure_roundtrip_pooled(trials));
    measure_roundtrip_legacy(warmup);
    keep_best(r.roundtrip_legacy, measure_roundtrip_legacy(trials));
    measure_dot_frame_pooled(warmup);
    keep_best(r.frame_new, measure_dot_frame_pooled(trials));
    measure_dot_frame_legacy(warmup);
    keep_best(r.frame_legacy, measure_dot_frame_legacy(trials));
    measure_wire_cached(warmup);
    keep_best(r.wire_cached, measure_wire_cached(trials));
    measure_message_cached(warmup);
    keep_best(r.message_cached, measure_message_cached(trials));
  }
  r.engine_allocs_per_query =
      measure_engine_cached_allocs(/*queries=*/1000, /*wire_capacity=*/0);
  r.engine_wire_allocs_per_query =
      measure_engine_cached_allocs(/*queries=*/1000, /*wire_capacity=*/4096);
  return r;
}

void report_byte_path(const BytePathResults& r, bench::JsonReporter& json) {
  const double rt_speedup =
      r.roundtrip_legacy.ns_per_op / r.roundtrip_new.ns_per_op;
  const double frame_speedup =
      r.frame_legacy.ns_per_op / r.frame_new.ns_per_op;
  bench::banner("byte-path: pooled zero-copy stack vs seed copy chain");
  std::printf("DoUDP encode->deliver->decode %8.1f ns/op (legacy %8.1f)  "
              "%0.2fx\n",
              r.roundtrip_new.ns_per_op, r.roundtrip_legacy.ns_per_op,
              rt_speedup);
  std::printf("  allocations/op              %8.4f       (legacy %8.4f)\n",
              r.roundtrip_new.allocs_per_op, r.roundtrip_legacy.allocs_per_op);
  std::printf("DoT in-place framing          %8.1f ns/op (legacy %8.1f)  "
              "%0.2fx\n",
              r.frame_new.ns_per_op, r.frame_legacy.ns_per_op, frame_speedup);
  std::printf("  allocations/op              %8.4f       (legacy %8.4f)\n",
              r.frame_new.allocs_per_op, r.frame_legacy.allocs_per_op);
  const double wire_speedup =
      r.message_cached.ns_per_op / r.wire_cached.ns_per_op;
  const double wire_cached_qps = 1e9 / r.wire_cached.ns_per_op;
  std::printf("wire-cache hit (probe+patch)  %8.1f ns/op (msg    %8.1f)  "
              "%0.2fx\n",
              r.wire_cached.ns_per_op, r.message_cached.ns_per_op,
              wire_speedup);
  std::printf("  allocations/op              %8.4f       (msg    %8.4f)\n",
              r.wire_cached.allocs_per_op, r.message_cached.allocs_per_op);
  std::printf("  wire-cached throughput      %8.0f hits/s single-thread\n",
              wire_cached_qps);
  std::printf("engine cached-query heap allocations/query: %.4f "
              "(wire path %.4f)\n",
              r.engine_allocs_per_query, r.engine_wire_allocs_per_query);

  json.metric("byte_path_roundtrip", "ns_per_op", r.roundtrip_new.ns_per_op);
  json.metric("byte_path_roundtrip", "ns_per_op_legacy",
              r.roundtrip_legacy.ns_per_op);
  json.metric("byte_path_roundtrip", "speedup_vs_legacy", rt_speedup);
  json.metric("byte_path_roundtrip", "heap_allocs_per_op",
              r.roundtrip_new.allocs_per_op);
  json.metric("byte_path_roundtrip", "heap_allocs_per_op_legacy",
              r.roundtrip_legacy.allocs_per_op);
  json.metric("byte_path_dot_frame", "ns_per_op", r.frame_new.ns_per_op);
  json.metric("byte_path_dot_frame", "ns_per_op_legacy",
              r.frame_legacy.ns_per_op);
  json.metric("byte_path_dot_frame", "speedup_vs_legacy", frame_speedup);
  json.metric("byte_path_wire_cache", "ns_per_hit", r.wire_cached.ns_per_op);
  json.metric("byte_path_wire_cache", "ns_per_hit_message_path",
              r.message_cached.ns_per_op);
  json.metric("byte_path_wire_cache", "speedup_vs_message_path",
              wire_speedup);
  json.metric("byte_path_wire_cache", "wire_cached_qps", wire_cached_qps);
  json.metric("byte_path_wire_cache", "heap_allocs_per_hit",
              r.wire_cached.allocs_per_op);
  json.metric("byte_path_engine", "heap_allocs_per_cached_query",
              r.engine_allocs_per_query);
  json.metric("byte_path_engine", "heap_allocs_per_wire_cached_query",
              r.engine_wire_allocs_per_query);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool write_json = false;
  std::string json_path = "BENCH_sim_core.json";
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json", 6) == 0) {
      write_json = true;
      if (argv[i][6] == '=') json_path = argv[i] + 7;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());

  if (smoke) {
    // CI guard: short run, only the sim-core and byte-path suites. Fails
    // on a hot-path regression — allocations crept back in or a speedup
    // collapsed. The gates (1.3x) are deliberately looser than the
    // committed baselines (>=2x) to keep noisy shared runners from flaking.
    const SimCoreResults r = run_sim_core_suite(/*trials=*/300);
    const BytePathResults b = run_byte_path_suite(/*trials=*/3000);
    bench::JsonReporter json;
    report_sim_core(r, json);
    bench::JsonReporter byte_json;
    report_byte_path(b, byte_json);
    if (write_json && !json.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    bool ok = true;
    if (r.fire_new.allocs_per_op > 0.01 ||
        r.fire_new.eventfn_heap_per_op > 0.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: event hot path allocates (%.4f heap, %.4f "
                   "SBO fallback per event)\n",
                   r.fire_new.allocs_per_op, r.fire_new.eventfn_heap_per_op);
      ok = false;
    }
    const double fire_speedup =
        r.fire_legacy.ns_per_op / r.fire_new.ns_per_op;
    if (fire_speedup < 1.3) {
      std::fprintf(stderr,
                   "SMOKE FAIL: schedule/fire speedup %.2fx < 1.3x floor\n",
                   fire_speedup);
      ok = false;
    }
    const double rt_speedup =
        b.roundtrip_legacy.ns_per_op / b.roundtrip_new.ns_per_op;
    if (rt_speedup < 1.3) {
      std::fprintf(stderr,
                   "SMOKE FAIL: byte-path round-trip speedup %.2fx < 1.3x "
                   "floor\n",
                   rt_speedup);
      ok = false;
    }
    if (b.engine_allocs_per_query < 0 ||
        b.engine_allocs_per_query > 0.01) {
      std::fprintf(stderr,
                   "SMOKE FAIL: cached engine query allocates (%.4f heap "
                   "allocations per query; gate 0.01)\n",
                   b.engine_allocs_per_query);
      ok = false;
    }
    const double wire_speedup =
        b.message_cached.ns_per_op / b.wire_cached.ns_per_op;
    if (wire_speedup < 2.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: wire-cache hit speedup %.2fx < 2.0x floor "
                   "over the Message cached path\n",
                   wire_speedup);
      ok = false;
    }
    if (b.wire_cached.allocs_per_op > 0.01) {
      std::fprintf(stderr,
                   "SMOKE FAIL: wire-cache hit allocates (%.4f heap "
                   "allocations per hit; gate 0.01)\n",
                   b.wire_cached.allocs_per_op);
      ok = false;
    }
    if (b.engine_wire_allocs_per_query < 0 ||
        b.engine_wire_allocs_per_query > 0.01) {
      std::fprintf(stderr,
                   "SMOKE FAIL: wire-cached engine query allocates (%.4f "
                   "heap allocations per query; gate 0.01)\n",
                   b.engine_wire_allocs_per_query);
      ok = false;
    }
    std::printf("\nhot-path smoke: %s\n", ok ? "OK" : "REGRESSION");
    return ok ? 0 : 1;
  }

  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const SimCoreResults r = run_sim_core_suite(/*trials=*/2000);
  bench::JsonReporter json;
  report_sim_core(r, json);
  const BytePathResults b = run_byte_path_suite(/*trials=*/20000);
  bench::JsonReporter byte_json;
  report_byte_path(b, byte_json);
  if (write_json) {
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("sim-core baseline -> %s\n", json_path.c_str());
    if (!byte_json.write_file("BENCH_byte_path.json")) {
      std::fprintf(stderr, "failed to write BENCH_byte_path.json\n");
      return 1;
    }
    std::printf("byte-path baseline -> BENCH_byte_path.json\n");
  }
  return 0;
}
