// Microbenchmarks of the library's hot components (google-benchmark):
// wire codecs (DNS, QUIC, HPACK, TLS records), the event loop, and a full
// in-simulation DoQ query round trip. These quantify the cost of the
// simulation substrate itself, not the paper's results.
#include <benchmark/benchmark.h>

#include "dns/message.h"
#include "h2/hpack.h"
#include "measure/testbed.h"
#include "quic/wire.h"
#include "sim/simulator.h"
#include "tls/wire.h"

namespace {

using namespace doxlab;

void BM_DnsEncodeQuery(benchmark::State& state) {
  const auto name = dns::DnsName::parse("www.google.com");
  for (auto _ : state) {
    auto wire = dns::make_query(0x1234, name, dns::RRType::kA).encode();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_DnsEncodeQuery);

void BM_DnsDecodeResponse(benchmark::State& state) {
  auto query = dns::make_query(1, dns::DnsName::parse("google.com"),
                               dns::RRType::kA);
  auto response = dns::make_response(query);
  response.answers.push_back(
      dns::make_a(dns::DnsName::parse("google.com"), 300, 0x8080404));
  const auto wire = response.encode();
  for (auto _ : state) {
    auto decoded = dns::Message::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DnsDecodeResponse);

void BM_DnsNameCompression(benchmark::State& state) {
  std::vector<dns::DnsName> names;
  for (int i = 0; i < 8; ++i) {
    names.push_back(
        dns::DnsName::parse("host" + std::to_string(i) + ".cdn.example.com"));
  }
  for (auto _ : state) {
    ByteWriter w;
    dns::NameCompressor nc;
    for (const auto& name : names) nc.write(w, name);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_DnsNameCompression);

void BM_QuicDatagramRoundTrip(benchmark::State& state) {
  quic::QuicPacket packet;
  packet.type = quic::PacketType::kInitial;
  packet.frames.push_back(
      quic::Frame::crypto(0, std::vector<std::uint8_t>(300, 0xAB)));
  std::vector<quic::QuicPacket> packets = {packet};
  for (auto _ : state) {
    auto wire = quic::encode_datagram(packets, true);
    auto decoded = quic::decode_datagram(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_QuicDatagramRoundTrip);

void BM_HpackRequestBlock(benchmark::State& state) {
  const std::vector<h2::Header> headers = {
      {":method", "POST"},
      {":scheme", "https"},
      {":authority", "resolver-9.9.9.9"},
      {":path", "/dns-query"},
      {"content-type", "application/dns-message"},
      {"content-length", "51"},
  };
  for (auto _ : state) {
    h2::HpackEncoder encoder;  // fresh table = first-request cost
    auto block = encoder.encode(headers);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_HpackRequestBlock);

void BM_TlsClientHello(benchmark::State& state) {
  tls::TlsWire wire;
  tls::ClientHello ch;
  ch.sni = "resolver.example";
  ch.alpn = {"doq"};
  ch.psk = tls::SessionTicket{};
  for (auto _ : state) {
    auto record = wire.client_hello_record(ch);
    benchmark::DoNotOptimize(record);
  }
}
BENCHMARK(BM_TlsClientHello);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_FullDoqQuery(benchmark::State& state) {
  // One warmed DoQ query per iteration, full stack, in simulated time.
  measure::TestbedConfig config;
  config.population.verified_only = true;
  config.population.verified_dox = 6;
  measure::Testbed testbed(config);
  auto& sim = testbed.simulator();
  auto& vp = *testbed.vantage_points()[0];
  const dns::Question question{dns::DnsName::parse("google.com"),
                               dns::RRType::kA, dns::RRClass::kIN};
  dox::TransportOptions options;
  options.resolver = testbed.resolver_endpoint(testbed.population().verified[0],
                                               dox::DnsProtocol::kDoQ);
  for (auto _ : state) {
    auto transport = dox::make_transport(dox::DnsProtocol::kDoQ,
                                         vp.deps(sim), options);
    bool done = false;
    transport->resolve(question, [&](dox::QueryResult) { done = true; });
    testbed.run_until_flag(done);
    transport->reset_sessions();
    sim.run_until(sim.now() + 100 * kMillisecond);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FullDoqQuery);

}  // namespace

BENCHMARK_MAIN();
