// Reproduces **Table 1** of the paper: median single-query sizes (bytes,
// IP payload) per protocol, split into total / handshake C->R / handshake
// R->C / DNS query / DNS response, plus the sample counts of the
// single-query and web measurements.
//
// Usage: table1_sizes [--resolvers=N] [--reps=N] [--full] [--csv=PREFIX]
//   --full runs the verified population at paper scale (313 resolvers).
#include <cstdio>

#include "bench_util.h"
#include "measure/csv.h"
#include "measure/report.h"
#include "measure/single_query.h"
#include "measure/web_study.h"

using namespace doxlab;
using namespace doxlab::measure;

namespace {

void print_paper_reference() {
  std::printf(
      "Paper reference (Table 1, medians in bytes)\n"
      "Metric          DoUDP  DoTCP   DoQ   DoH   DoT\n"
      "--------------  -----  -----  ----  ----  ----\n"
      "Total bytes       122    382  4444  2163  1522\n"
      "Handshake C->R      -     72  2564   569   551\n"
      "Handshake R->C      -     40  1304   211   211\n"
      "DNS Query          59    149   190   579   261\n"
      "DNS Response       63    121   386   804   499\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::flag_set(argc, argv, "--full");
  TestbedConfig config;
  config.population.verified_only = true;
  config.population.verified_dox =
      bench::flag_int(argc, argv, "--resolvers", full ? 313 : 48);
  Testbed testbed(config);

  SingleQueryConfig sq_config;
  sq_config.repetitions = bench::flag_int(argc, argv, "--reps", 1);
  SingleQueryStudy study(testbed, sq_config);
  auto records = study.run();

  // A small web study supplies the web sample counts of Table 1.
  WebStudyConfig web_config;
  web_config.max_resolvers = full ? 0 : 6;
  web_config.pages = {"wikipedia.org", "google.com", "youtube.com"};
  WebStudy web_study(testbed, web_config);
  auto web_records = web_study.run();

  bench::banner("Table 1 — single query sizes and sample counts (measured)");
  std::printf("%s\n", render_table1(table1_sizes(records),
                                    &web_records).c_str());
  print_paper_reference();
  std::printf(
      "\nShape checks (paper): DoQ handshake ~2x DoH handshake; DoH carries\n"
      "the largest query/response (HTTP/2 framing + headers); totals order\n"
      "DoUDP < DoTCP < DoT < DoH < DoQ.\n");

  (void)argv;
  return 0;
}
