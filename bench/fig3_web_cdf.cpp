// Reproduces **Fig. 3** of the paper: CDFs of the relative differences in
// First Contentful Paint (a) and Page Load Time (b) between the encrypted
// protocols (and DoTCP) and the DoUDP baseline, across the top-10 pages.
//
// Usage: fig3_web_cdf [--resolvers=N] [--loads=N] [--full] [--csv]
//        [--jobs=N]  (shard over a thread pool via the campaign runner;
//                     output depends only on the seed, not on N)
#include <cstdio>

#include "bench_util.h"
#include "measure/csv.h"
#include "measure/report.h"
#include "measure/web_study.h"
#include "runner/campaign.h"

using namespace doxlab;
using namespace doxlab::measure;

int main(int argc, char** argv) {
  const bool full = bench::flag_set(argc, argv, "--full");

  WebStudyConfig web_config;
  web_config.max_resolvers =
      bench::flag_int(argc, argv, "--resolvers", full ? 0 : 12);
  web_config.loads_per_combo = bench::flag_int(argc, argv, "--loads", 4);

  std::vector<WebRecord> records;
  if (bench::flag_int(argc, argv, "--jobs", -1) >= 0) {
    runner::CampaignConfig campaign;
    campaign.jobs = bench::flag_int(argc, argv, "--jobs", 1);
    campaign.population.verified_only = true;
    campaign.population.verified_dox = full ? 313 : 60;
    records = runner::run_web_campaign(campaign, web_config);
  } else {
    TestbedConfig config;
    config.population.verified_only = true;
    config.population.verified_dox = full ? 313 : 60;
    Testbed testbed(config);
    WebStudy study(testbed, web_config);
    records = study.run();
  }

  bench::banner("Fig. 3 — relative FCP/PLT differences vs DoUDP (measured)");
  std::printf("%s", render_fig3(fig3_relative(records)).c_str());
  std::printf(
      "Paper reference: (a) in ~40%% of cases DoQ delays FCP by <=10%% while\n"
      "DoT/DoH delay it by >20%% at the same fraction; ~10%% of encrypted\n"
      "loads are *faster* than DoUDP (5 s application-layer retry outliers).\n"
      "(b) <15%% of DoQ loads degrade PLT by >15%%, vs >40%% for DoH; DoT is\n"
      "worst because dnsproxy re-handshakes when a query is in flight.\n");

  if (bench::flag_set(argc, argv, "--csv")) {
    write_file("fig3_web.csv", web_csv(records));
    std::printf("\nraw records -> fig3_web.csv\n");
  }
  return 0;
}
