#include "net/latency.h"

#include <algorithm>

namespace doxlab::net {

SimTime LatencyModel::base_one_way(const GeoPoint& a, const GeoPoint& b,
                                   SimTime access_a, SimTime access_b) const {
  const double km = haversine_km(a, b) * config_.route_inflation;
  const double prop_ms = km / config_.fiber_km_per_ms;
  const SimTime prop = std::max(config_.min_propagation, from_ms(prop_ms));
  return prop + access_a + access_b;
}

SimTime LatencyModel::jitter(Rng& rng) const {
  const double ms = rng.lognormal(config_.jitter_mu_ms, config_.jitter_sigma);
  // Cap pathological draws; even a congested path rarely adds >250 ms.
  return from_ms(std::min(ms, 250.0));
}

}  // namespace doxlab::net
