#include "net/network.h"

#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace doxlab::net {

namespace {
constexpr SimTime kLoopbackOneWay = 50;  // 50 us
}  // namespace

void Host::set_protocol_handler(int protocol, PacketHandler handler) {
  handlers_[protocol] = std::move(handler);
}

void Host::deliver(Packet packet) {
  auto it = handlers_.find(packet.protocol);
  if (it == handlers_.end() || !it->second) {
    DOXLAB_DEBUG("host " << name_ << " has no handler for protocol "
                         << packet.protocol);
    return;
  }
  it->second(std::move(packet));
}

Network::Network(sim::Simulator& simulator, Rng rng, LatencyModel latency)
    : simulator_(simulator), rng_(std::move(rng)), latency_(latency) {}

Host& Network::add_host(std::string name, IpAddress address,
                        GeoPoint location, Continent continent,
                        SimTime access_delay) {
  auto [it, inserted] = hosts_.try_emplace(
      address, std::unique_ptr<Host>(new Host(*this, std::move(name), address,
                                              location, continent,
                                              access_delay)));
  if (!inserted) {
    throw std::invalid_argument("duplicate host address " +
                                address.to_string());
  }
  return *it->second;
}

Host* Network::find_host(IpAddress address) {
  auto it = hosts_.find(address);
  return it == hosts_.end() ? nullptr : it->second.get();
}

const Host* Network::find_host(IpAddress address) const {
  auto it = hosts_.find(address);
  return it == hosts_.end() ? nullptr : it->second.get();
}

std::uint64_t Network::pair_key(IpAddress a, IpAddress b) {
  std::uint32_t lo = std::min(a.value(), b.value());
  std::uint32_t hi = std::max(a.value(), b.value());
  return (std::uint64_t(hi) << 32) | lo;
}

void Network::set_path_override(IpAddress a, IpAddress b, SimTime one_way) {
  path_overrides_[pair_key(a, b)] = one_way;
}

void Network::set_loss_override(IpAddress a, IpAddress b, double loss) {
  loss_overrides_[pair_key(a, b)] = loss;
}

SimTime Network::base_one_way(const Host& a, const Host& b) const {
  if (a.address() == b.address()) return kLoopbackOneWay;
  return keyed_one_way(pair_key(a.address(), b.address()), a, b);
}

SimTime Network::keyed_one_way(std::uint64_t key, const Host& a,
                               const Host& b) const {
  auto it = path_overrides_.find(key);
  if (it != path_overrides_.end()) return it->second;
  return latency_.base_one_way(a.location(), b.location(), a.access_delay(),
                               b.access_delay());
}

void Network::send(Packet packet) {
  ++counters_.packets_sent;
  counters_.ip_payload_bytes += packet.ip_payload_bytes();
  if (tap_) tap_(packet);

  Host* src = find_host(packet.src.address);
  Host* dst = find_host(packet.dst.address);
  if (src == nullptr || dst == nullptr) {
    ++counters_.packets_unroutable;
    return;
  }

  // Hash the (src, dst) pair once; the key feeds both the loss override and
  // the path override lookups. Loopback needs neither.
  const bool loopback = packet.src.address == packet.dst.address;
  const std::uint64_t key =
      loopback ? 0 : pair_key(packet.src.address, packet.dst.address);

  double loss = loopback ? 0.0 : loss_rate_;
  if (!loopback) {
    auto lit = loss_overrides_.find(key);
    if (lit != loss_overrides_.end()) loss = lit->second;
  }
  if (rng_.chance(loss)) {
    ++counters_.packets_lost;
    return;
  }

  SimTime delay = loopback ? kLoopbackOneWay : keyed_one_way(key, *src, *dst);
  if (!loopback) delay += latency_.jitter(rng_);

  const IpAddress dst_addr = packet.dst.address;
  simulator_.schedule(delay, [this, dst_addr,
                              p = std::move(packet)]() mutable {
    Host* target = find_host(dst_addr);
    if (target == nullptr || !target->up()) {
      ++counters_.packets_unroutable;
      return;
    }
    ++counters_.packets_delivered;
    target->deliver(std::move(p));
  });
}

}  // namespace doxlab::net
