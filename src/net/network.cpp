#include "net/network.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace doxlab::net {

namespace {
constexpr SimTime kLoopbackOneWay = 50;  // 50 us
}  // namespace

void Host::set_protocol_handler(int protocol, PacketHandler handler) {
  handlers_[protocol] = std::move(handler);
}

void Host::set_protocol_batch_handler(int protocol, BatchHandler handler) {
  batch_handlers_[protocol] = std::move(handler);
}

void Host::deliver(Packet packet) {
  auto it = handlers_.find(packet.protocol);
  if (it == handlers_.end() || !it->second) {
    DOXLAB_DEBUG("host " << name_ << " has no handler for protocol "
                         << packet.protocol);
    return;
  }
  it->second(std::move(packet));
}

void Host::deliver_batch(PacketBatch& batch) {
  // A staged slot holds one protocol (only UDP batches today), so the first
  // packet speaks for the burst.
  const int protocol = batch.front().protocol;
  auto it = batch_handlers_.find(protocol);
  if (it != batch_handlers_.end() && it->second) {
    it->second(batch);
    return;
  }
  for (Packet& packet : batch) deliver(std::move(packet));
}

Network::Network(sim::Simulator& simulator, Rng rng, LatencyModel latency)
    : simulator_(simulator), rng_(std::move(rng)), latency_(latency) {}

Host& Network::add_host(std::string name, IpAddress address,
                        GeoPoint location, Continent continent,
                        SimTime access_delay) {
  auto [it, inserted] = hosts_.try_emplace(
      address, std::unique_ptr<Host>(new Host(*this, std::move(name), address,
                                              location, continent,
                                              access_delay)));
  if (!inserted) {
    throw std::invalid_argument("duplicate host address " +
                                address.to_string());
  }
  return *it->second;
}

Host* Network::find_host(IpAddress address) {
  auto it = hosts_.find(address);
  return it == hosts_.end() ? nullptr : it->second.get();
}

const Host* Network::find_host(IpAddress address) const {
  auto it = hosts_.find(address);
  return it == hosts_.end() ? nullptr : it->second.get();
}

void Network::add_prefix_route(IpAddress network, int prefix_len,
                               IpAddress via) {
  if (prefix_len < 0 || prefix_len > 32) {
    throw std::invalid_argument("prefix length out of range");
  }
  if (find_host(via) == nullptr) {
    throw std::invalid_argument("prefix route target is not a host: " +
                                via.to_string());
  }
  const std::uint32_t mask =
      prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  prefix_routes_.push_back(
      PrefixRoute{network.value() & mask, mask, via});
  // Longest prefix first, so the linear scan returns the most specific.
  std::stable_sort(prefix_routes_.begin(), prefix_routes_.end(),
                   [](const PrefixRoute& a, const PrefixRoute& b) {
                     return a.mask > b.mask;
                   });
}

Host* Network::route_host(IpAddress address) {
  if (Host* exact = find_host(address)) return exact;
  for (const PrefixRoute& route : prefix_routes_) {
    if ((address.value() & route.mask) == route.network) {
      return find_host(route.via);
    }
  }
  return nullptr;
}

std::uint64_t Network::pair_key(IpAddress a, IpAddress b) {
  std::uint32_t lo = std::min(a.value(), b.value());
  std::uint32_t hi = std::max(a.value(), b.value());
  return (std::uint64_t(hi) << 32) | lo;
}

void Network::set_path_override(IpAddress a, IpAddress b, SimTime one_way) {
  path_overrides_[pair_key(a, b)] = one_way;
}

void Network::set_loss_override(IpAddress a, IpAddress b, double loss) {
  loss_overrides_[pair_key(a, b)] = loss;
}

int Network::add_link(LinkConfig config) {
  const int id = static_cast<int>(links_.size());
  // Each link gets an independent deterministic stream: the fabric RNG is
  // never drawn for link decisions, so configuring links on one path leaves
  // every other path's jitter/loss sequence untouched.
  links_.push_back(std::make_unique<Link>(
      std::move(config),
      splitmix64(0x11A6'0DE1ull, static_cast<std::uint64_t>(id))));
  any_links_ = true;
  return id;
}

void Network::bind_link(IpAddress src, IpAddress dst, int link_id) {
  if (link_id < 0 || static_cast<std::size_t>(link_id) >= links_.size()) {
    throw std::invalid_argument("bind_link: unknown link id");
  }
  pair_links_[directed_key(src, dst)] = link_id;
}

void Network::set_host_egress_link(IpAddress host, int link_id) {
  if (link_id < 0 || static_cast<std::size_t>(link_id) >= links_.size()) {
    throw std::invalid_argument("set_host_egress_link: unknown link id");
  }
  egress_links_[host] = link_id;
}

void Network::set_host_ingress_link(IpAddress host, int link_id) {
  if (link_id < 0 || static_cast<std::size_t>(link_id) >= links_.size()) {
    throw std::invalid_argument("set_host_ingress_link: unknown link id");
  }
  ingress_links_[host] = link_id;
}

void Network::set_default_link(LinkConfig config) {
  default_link_ = std::move(config);
  any_links_ = true;
}

LinkStats Network::link_totals() const {
  LinkStats total;
  for (const auto& link : links_) {
    const LinkStats& s = link->stats();
    total.packets += s.packets;
    total.tail_drops += s.tail_drops;
    total.burst_losses += s.burst_losses;
    total.queued_bytes_max =
        std::max(total.queued_bytes_max, s.queued_bytes_max);
    total.busy_us += s.busy_us;
  }
  return total;
}

std::optional<SimTime> Network::traverse_links(const Host& src,
                                               const Host& dst,
                                               std::size_t wire_bytes) {
  // Path order: the sender's access link, then the (possibly defaulted)
  // path link, then the receiver's access link. Each stage may queue, drop,
  // or burst-lose the packet independently.
  int chain[3];
  int stages = 0;
  if (auto it = egress_links_.find(src.address()); it != egress_links_.end()) {
    chain[stages++] = it->second;
  }
  const std::uint64_t key = directed_key(src.address(), dst.address());
  auto pit = pair_links_.find(key);
  if (pit == pair_links_.end() && default_link_) {
    // Lazily materialize this directed pair's own instance of the default
    // link (independent queue + loss chain per direction).
    const int id = add_link(*default_link_);
    pit = pair_links_.emplace(key, id).first;
  }
  if (pit != pair_links_.end()) chain[stages++] = pit->second;
  if (auto it = ingress_links_.find(dst.address());
      it != ingress_links_.end()) {
    chain[stages++] = it->second;
  }

  SimTime extra = 0;
  for (int i = 0; i < stages; ++i) {
    auto hop = links_[static_cast<std::size_t>(chain[i])]->admit(
        wire_bytes, simulator_.now());
    if (!hop) {
      ++counters_.packets_link_dropped;
      return std::nullopt;
    }
    extra += *hop;
  }
  return extra;
}

SimTime Network::base_one_way(const Host& a, const Host& b) const {
  if (a.address() == b.address()) return kLoopbackOneWay;
  return keyed_one_way(pair_key(a.address(), b.address()), a, b);
}

SimTime Network::keyed_one_way(std::uint64_t key, const Host& a,
                               const Host& b) const {
  auto it = path_overrides_.find(key);
  if (it != path_overrides_.end()) return it->second;
  return latency_.base_one_way(a.location(), b.location(), a.access_delay(),
                               b.access_delay());
}

void Network::send(Packet packet) {
  ++counters_.packets_sent;
  counters_.ip_payload_bytes += packet.ip_payload_bytes();
  if (tap_) tap_(packet);

  // Spoofed/prefixed source addresses resolve through the routing table:
  // the latency model needs *some* host on each end, and a reply to a
  // routed address must reach the fronting machine.
  Host* src = route_host(packet.src.address);
  Host* dst = route_host(packet.dst.address);
  if (src == nullptr || dst == nullptr) {
    ++counters_.packets_unroutable;
    return;
  }

  // Hash the (src, dst) pair once; the key feeds both the loss override and
  // the path override lookups. Loopback — same machine after routing, which
  // covers a host fronting a whole client prefix — needs neither.
  const bool loopback = src == dst;
  const std::uint64_t key =
      loopback ? 0 : pair_key(packet.src.address, packet.dst.address);

  double loss = loopback ? 0.0 : loss_rate_;
  if (!loopback) {
    auto lit = loss_overrides_.find(key);
    if (lit != loss_overrides_.end()) loss = lit->second;
  }
  if (rng_.chance(loss)) {
    ++counters_.packets_lost;
    return;
  }

  SimTime delay = loopback ? kLoopbackOneWay : keyed_one_way(key, *src, *dst);
  if (!loopback) delay += latency_.jitter(rng_);

  // Link models (finite-rate queues, burst loss, handover steps) sit after
  // the iid loss/jitter draws so that configs without links replay the
  // exact pre-link event stream. Loopback never crosses a link.
  if (any_links_ && !loopback) {
    auto extra = traverse_links(*src, *dst, packet.ip_payload_bytes());
    if (!extra) return;  // counted in traverse_links
    delay += *extra;
  }

  if (batch_window_ > 0 && packet.protocol == kProtoUdp) {
    // Round delivery UP to the aggregation grid; every packet landing on
    // this (host, slot) pair flushes as one PacketBatch event.
    const SimTime deliver_at = simulator_.now() + delay;
    const SimTime bucket =
        ((deliver_at + batch_window_ - 1) / batch_window_) * batch_window_;
    stage_batch(*dst, bucket, std::move(packet));
    return;
  }

  const IpAddress dst_addr = packet.dst.address;
  simulator_.schedule(delay, [this, dst_addr,
                              p = std::move(packet)]() mutable {
    Host* target = route_host(dst_addr);
    if (target == nullptr || !target->up()) {
      ++counters_.packets_unroutable;
      return;
    }
    ++counters_.packets_delivered;
    target->deliver(std::move(p));
  });
}

void Network::stage_batch(Host& target, SimTime bucket, Packet packet) {
  auto [it, inserted] =
      staged_.try_emplace(BatchKey{target.address().value(), bucket});
  if (inserted && !batch_pool_.empty()) {
    it->second = std::move(batch_pool_.back());
    batch_pool_.pop_back();
  }
  it->second.push_back(std::move(packet));
  if (inserted) {
    simulator_.at(bucket, [this, via = target.address(), bucket] {
      flush_batch(via, bucket);
    });
  }
}

void Network::flush_batch(IpAddress via, SimTime bucket) {
  auto it = staged_.find(BatchKey{via.value(), bucket});
  if (it == staged_.end()) return;
  PacketBatch batch = std::move(it->second);
  staged_.erase(it);
  Host* target = find_host(via);
  if (target == nullptr || !target->up()) {
    counters_.packets_unroutable += batch.size();
  } else {
    counters_.packets_delivered += batch.size();
    target->deliver_batch(batch);
  }
  batch.clear();
  batch_pool_.push_back(std::move(batch));
}

}  // namespace doxlab::net
