#include "net/address.h"

#include <charconv>

#include "util/strings.h"

namespace doxlab::net {

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  std::uint32_t value = 0;
  int parts = 0;
  std::size_t start = 0;
  while (parts < 4) {
    std::size_t dot = text.find('.', start);
    std::string_view part = (dot == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, dot - start);
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), octet);
    if (ec != std::errc() || ptr != part.data() + part.size() || octet > 255) {
      return std::nullopt;
    }
    value = (value << 8) | octet;
    ++parts;
    if (dot == std::string_view::npos) {
      return parts == 4 ? std::optional<IpAddress>(IpAddress(value))
                        : std::nullopt;
    }
    start = dot + 1;
  }
  return std::nullopt;  // four octets consumed but input continues
}

std::string IpAddress::to_string() const {
  return std::to_string((value_ >> 24) & 0xFF) + "." +
         std::to_string((value_ >> 16) & 0xFF) + "." +
         std::to_string((value_ >> 8) & 0xFF) + "." +
         std::to_string(value_ & 0xFF);
}

std::string Endpoint::to_string() const {
  return address.to_string() + ":" + std::to_string(port);
}

}  // namespace doxlab::net
