// Geographic model: coordinates, continents, and great-circle distances.
//
// The paper's latency structure is geographic (Fig. 1/Fig. 2: vantage points
// and resolvers per continent; resolve times ordered by distance). We place
// every simulated host at a lat/lon and derive propagation delay from the
// great-circle distance.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace doxlab::net {

/// Continents, ordered as the paper reports them (by resolver count).
enum class Continent { kEurope, kAsia, kNorthAmerica, kAfrica, kOceania,
                       kSouthAmerica };

/// Two-letter code as used in the paper's figures (EU, AS, NA, AF, OC, SA).
std::string_view continent_code(Continent c);

/// Parses a two-letter code; throws std::invalid_argument on unknown input.
Continent continent_from_code(std::string_view code);

/// All continents in the paper's display order.
const std::vector<Continent>& all_continents();

/// A point on the globe (degrees).
struct GeoPoint {
  double lat_deg = 0;
  double lon_deg = 0;
};

/// Great-circle (haversine) distance in kilometres.
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// A named city with coordinates — the building block for placing vantage
/// points and resolver populations.
struct City {
  std::string name;
  Continent continent;
  GeoPoint location;
};

/// Cities used to seed resolver placement, grouped per continent. These are
/// major population / hosting hubs; resolvers scatter around them.
const std::vector<City>& cities_in(Continent c);

/// The six EC2-like vantage point locations used by the paper (one per
/// continent): Frankfurt (EU), Singapore (AS), N. Virginia (NA),
/// Cape Town (AF), Sydney (OC), Sao Paulo (SA).
const std::vector<City>& vantage_point_cities();

}  // namespace doxlab::net
