#include "net/link.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace doxlab::net {

Link::Link(LinkConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  for (std::size_t i = 1; i < config_.delay_steps.size(); ++i) {
    if (config_.delay_steps[i].at < config_.delay_steps[i - 1].at) {
      throw std::invalid_argument("link delay steps must be sorted by time");
    }
  }
}

SimTime Link::transmit_time(std::size_t wire_bytes) const {
  if (config_.rate_bps <= 0.0) return 0;
  // bits / (bits/s) in microseconds, rounded up so back-to-back packets
  // never overlap the transmitter.
  const double us =
      static_cast<double>(wire_bytes) * 8.0 * 1e6 / config_.rate_bps;
  return static_cast<SimTime>(std::ceil(us));
}

std::size_t Link::backlog_bytes(SimTime now) const {
  if (config_.rate_bps <= 0.0 || busy_until_ <= now) return 0;
  const double bytes = static_cast<double>(busy_until_ - now) *
                       config_.rate_bps / 8.0 / 1e6;
  return static_cast<std::size_t>(bytes);
}

bool Link::draw_burst_loss() {
  const GilbertElliott& ge = *config_.burst_loss;
  // Advance the chain, then draw at the new state's loss rate.
  if (bad_state_) {
    if (rng_.chance(ge.p_bad_to_good)) bad_state_ = false;
  } else {
    if (rng_.chance(ge.p_good_to_bad)) bad_state_ = true;
  }
  return rng_.chance(bad_state_ ? ge.loss_bad : ge.loss_good);
}

std::optional<SimTime> Link::admit(std::size_t wire_bytes, SimTime now) {
  ++stats_.packets;

  if (config_.burst_loss && draw_burst_loss()) {
    ++stats_.burst_losses;
    return std::nullopt;
  }

  SimTime extra = 0;
  if (!config_.delay_steps.empty()) {
    while (next_step_ < config_.delay_steps.size() &&
           config_.delay_steps[next_step_].at <= now) {
      ++next_step_;
    }
    if (next_step_ > 0) extra = config_.delay_steps[next_step_ - 1].extra_one_way;
  }

  if (config_.rate_bps > 0.0) {
    const std::size_t backlog = backlog_bytes(now);
    if (backlog > config_.queue_bytes) {
      ++stats_.tail_drops;
      return std::nullopt;
    }
    stats_.queued_bytes_max =
        std::max<std::uint64_t>(stats_.queued_bytes_max, backlog);
    const SimTime tx = transmit_time(wire_bytes);
    const SimTime start = std::max(now, busy_until_);
    busy_until_ = start + tx;
    stats_.busy_us += static_cast<std::uint64_t>(tx);
    extra += (busy_until_ - now);  // queueing wait + own serialization
  }

  return extra;
}

}  // namespace doxlab::net
