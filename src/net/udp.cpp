#include "net/udp.h"

#include <stdexcept>

namespace doxlab::net {

UdpSocket::~UdpSocket() {
  if (stack_) stack_->unbind(port_);
}

Endpoint UdpSocket::local_endpoint() const {
  return Endpoint{stack_->host().address(), port_};
}

void UdpSocket::send_to(const Endpoint& to, util::Buffer payload) {
  send_to_from(to, stack_->host().address(), std::move(payload));
}

void UdpSocket::send_to_from(const Endpoint& to, IpAddress source,
                             util::Buffer payload) {
  Packet packet;
  packet.src = Endpoint{source, port_};
  packet.dst = to;
  packet.protocol = kProtoUdp;
  packet.header_bytes = kUdpHeaderBytes;
  packet.payload = std::move(payload);
  bytes_sent_ += packet.ip_payload_bytes();
  stack_->host().network().send(std::move(packet));
}

void UdpSocket::send_batch(std::vector<OutboundDatagram>& out) {
  for (OutboundDatagram& datagram : out) {
    send_to_from(datagram.to,
                 datagram.source.value() == 0 ? stack_->host().address()
                                              : datagram.source,
                 std::move(datagram.payload));
  }
  out.clear();
}

void UdpSocket::receive(const Endpoint& from, util::Buffer payload) {
  bytes_received_ += kUdpHeaderBytes + payload.size();
  if (handler_) handler_(from, std::move(payload));
}

void UdpSocket::receive_run(PacketBatch& batch, std::size_t begin,
                            std::size_t end) {
  if (!batch_handler_) {
    for (std::size_t i = begin; i < end; ++i) {
      receive(batch[i].src, std::move(batch[i].payload));
    }
    return;
  }
  scratch_batch_.clear();
  for (std::size_t i = begin; i < end; ++i) {
    bytes_received_ += kUdpHeaderBytes + batch[i].payload.size();
    scratch_batch_.push_back(
        Datagram{batch[i].src, std::move(batch[i].payload)});
  }
  batch_handler_(std::span<Datagram>(scratch_batch_));
}

UdpStack::UdpStack(Host& host) : host_(&host) {
  host_->set_protocol_handler(
      kProtoUdp, [this](Packet packet) { on_packet(std::move(packet)); });
  host_->set_protocol_batch_handler(
      kProtoUdp, [this](PacketBatch& batch) { on_packet_batch(batch); });
}

std::unique_ptr<UdpSocket> UdpStack::bind(std::uint16_t port) {
  if (sockets_.contains(port)) {
    throw std::invalid_argument("UDP port already bound: " +
                                std::to_string(port));
  }
  auto socket = std::unique_ptr<UdpSocket>(new UdpSocket(*this, port));
  sockets_[port] = socket.get();
  return socket;
}

std::unique_ptr<UdpSocket> UdpStack::bind_ephemeral() {
  // Scan the ephemeral range for a free port, wrapping once.
  for (int attempts = 0; attempts < 16384; ++attempts) {
    std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        (next_ephemeral_ >= 65535) ? 49152 : std::uint16_t(next_ephemeral_ + 1);
    if (!sockets_.contains(candidate)) return bind(candidate);
  }
  throw std::runtime_error("ephemeral UDP port space exhausted");
}

void UdpStack::unbind(std::uint16_t port) { sockets_.erase(port); }

void UdpStack::on_packet(Packet packet) {
  auto it = sockets_.find(packet.dst.port);
  if (it == sockets_.end()) return;  // No listener: silently dropped.
  it->second->receive(packet.src, std::move(packet.payload));
}

void UdpStack::on_packet_batch(PacketBatch& batch) {
  // Group consecutive same-port packets into runs so a socket sees one
  // burst per run — order across the batch is preserved exactly.
  std::size_t i = 0;
  while (i < batch.size()) {
    const std::uint16_t port = batch[i].dst.port;
    std::size_t j = i + 1;
    while (j < batch.size() && batch[j].dst.port == port) ++j;
    auto it = sockets_.find(port);
    if (it != sockets_.end()) it->second->receive_run(batch, i, j);
    i = j;
  }
}

}  // namespace doxlab::net
