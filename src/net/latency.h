// Propagation-delay model.
//
// One-way delay between two hosts =
//     great-circle distance / fiber propagation speed * route inflation
//   + per-host access delay (last-mile / in-DC)
//   + per-packet jitter (log-normal, heavy right tail).
//
// This reproduces the structure the paper relies on: handshake times scale
// with RTT multiplied by the protocol's round-trip count, and resolve times
// order by vantage-point-to-resolver distance (Fig. 2b).
#pragma once

#include "net/geo.h"
#include "util/rng.h"
#include "util/types.h"

namespace doxlab::net {

struct LatencyConfig {
  /// Speed of light in fiber, km per millisecond (~2/3 c).
  double fiber_km_per_ms = 204.19;
  /// Real routes are longer than great circles.
  double route_inflation = 1.6;
  /// Floor for one-way propagation (same-DC traffic is never truly zero).
  SimTime min_propagation = 200;  // 0.2 ms
  /// Log-normal jitter: exp(N(mu, sigma)) milliseconds per packet.
  double jitter_mu_ms = -1.2;     // median ~0.3 ms
  double jitter_sigma = 0.9;
};

/// Computes one-way delays; stateless apart from configuration.
class LatencyModel {
 public:
  LatencyModel() = default;
  explicit LatencyModel(LatencyConfig config) : config_(config) {}

  /// Deterministic propagation + access component (no jitter).
  SimTime base_one_way(const GeoPoint& a, const GeoPoint& b,
                       SimTime access_a, SimTime access_b) const;

  /// Per-packet jitter draw.
  SimTime jitter(Rng& rng) const;

  const LatencyConfig& config() const { return config_; }

 private:
  LatencyConfig config_{};
};

}  // namespace doxlab::net
