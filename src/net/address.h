// IPv4 addresses and transport endpoints.
//
// The study targets the IPv4 address space (the paper's ZMap scan is
// IPv4-only), so a 32-bit value is sufficient. Addresses are strong types,
// not bare integers, per the interface guidelines.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace doxlab::net {

/// An IPv4 address.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t value) : value_(value) {}

  /// Builds from dotted-quad components.
  static constexpr IpAddress from_octets(std::uint8_t a, std::uint8_t b,
                                         std::uint8_t c, std::uint8_t d) {
    return IpAddress((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                     (std::uint32_t(c) << 8) | std::uint32_t(d));
  }

  /// Parses "a.b.c.d"; nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  auto operator<=>(const IpAddress&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// Loopback (127.0.0.1), used by the local DNS proxy.
inline constexpr IpAddress kLoopback = IpAddress::from_octets(127, 0, 0, 1);

/// A transport endpoint: address + port.
struct Endpoint {
  IpAddress address;
  std::uint16_t port = 0;

  std::string to_string() const;
  auto operator<=>(const Endpoint&) const = default;
};

/// IANA protocol numbers used by the packet fabric.
inline constexpr int kProtoTcp = 6;
inline constexpr int kProtoUdp = 17;

}  // namespace doxlab::net

template <>
struct std::hash<doxlab::net::IpAddress> {
  std::size_t operator()(const doxlab::net::IpAddress& a) const noexcept {
    return std::hash<std::uint32_t>()(a.value());
  }
};

template <>
struct std::hash<doxlab::net::Endpoint> {
  std::size_t operator()(const doxlab::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>()(
        (std::uint64_t(e.address.value()) << 16) | e.port);
  }
};
