// UDP: sockets and the per-host port demultiplexer.
//
// `UdpStack` registers itself as the host's UDP protocol handler and routes
// datagrams to bound `UdpSocket`s. Sockets are RAII: destruction unbinds.
// Every datagram carries the 8-byte UDP header in its IP-payload accounting,
// matching how the paper reports sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/network.h"

namespace doxlab::net {

class UdpStack;

/// The size of a UDP header; every datagram's IP payload includes it.
inline constexpr std::size_t kUdpHeaderBytes = 8;

/// One received datagram inside a batch delivery.
struct Datagram {
  Endpoint from;
  util::Buffer payload;
};

/// One staged outbound datagram for UdpSocket::send_batch. A default
/// (zero) `source` sends from the host's own address, like send_to.
struct OutboundDatagram {
  Endpoint to;
  IpAddress source;
  util::Buffer payload;
};

/// A bound UDP socket.
class UdpSocket {
 public:
  using DatagramHandler =
      std::function<void(const Endpoint& from, util::Buffer)>;
  /// Burst receive: all datagrams reaching this socket in one batched
  /// delivery event (see Network::set_batch_window). The span is valid only
  /// for the duration of the call; payloads may be moved out.
  using BatchHandler = std::function<void(std::span<Datagram>)>;

  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Sends a datagram to `to`. The socket's bound port is the source port.
  /// The buffer is moved untouched into the packet (zero-copy path).
  void send_to(const Endpoint& to, util::Buffer payload);
  /// Sends with an explicit source address (bound port still the source
  /// port): raw-socket-style spoofing for attack traffic, and the stamp the
  /// load generator uses to give every simulated client its own address.
  /// Replies reach this socket only if `source` routes back to this host
  /// (Network::add_prefix_route).
  void send_to_from(const Endpoint& to, IpAddress source,
                    util::Buffer payload);
  /// Convenience for cold paths and tests still assembling vectors; the
  /// bytes are copied into a pooled buffer.
  void send_to(const Endpoint& to, std::vector<std::uint8_t> payload) {
    send_to(to, util::Buffer::copy_of(payload));
  }

  /// sendmmsg-style bulk send: pushes every staged datagram into the fabric
  /// in order with one call, then clears `out` (storage retained for the
  /// caller's reuse). Identical per-packet semantics to send_to_from.
  void send_batch(std::vector<OutboundDatagram>& out);

  /// Sets the receive callback (may be replaced at any time).
  void on_datagram(DatagramHandler handler) { handler_ = std::move(handler); }

  /// Sets the burst receive callback. When set, batched deliveries invoke
  /// it once per burst instead of the per-datagram handler; per-packet
  /// deliveries (batch window 0) still use on_datagram.
  void on_batch(BatchHandler handler) { batch_handler_ = std::move(handler); }

  std::uint16_t port() const { return port_; }
  Endpoint local_endpoint() const;

  /// Bytes sent/received including UDP headers (IP payload accounting).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class UdpStack;
  UdpSocket(UdpStack& stack, std::uint16_t port)
      : stack_(&stack), port_(port) {}

  void receive(const Endpoint& from, util::Buffer payload);
  /// Delivers batch[begin, end) — a same-port run — through the batch
  /// handler if set, else one receive() per datagram.
  void receive_run(PacketBatch& batch, std::size_t begin, std::size_t end);

  UdpStack* stack_;
  std::uint16_t port_;
  DatagramHandler handler_;
  BatchHandler batch_handler_;
  std::vector<Datagram> scratch_batch_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

/// Per-host UDP port table. Construct at most one per host.
class UdpStack {
 public:
  explicit UdpStack(Host& host);
  UdpStack(const UdpStack&) = delete;
  UdpStack& operator=(const UdpStack&) = delete;

  /// Binds a specific port. Throws std::invalid_argument if taken.
  std::unique_ptr<UdpSocket> bind(std::uint16_t port);

  /// Binds an ephemeral port (49152+).
  std::unique_ptr<UdpSocket> bind_ephemeral();

  Host& host() { return *host_; }

  /// Number of currently bound sockets (leak diagnostics in tests).
  std::size_t bound_count() const { return sockets_.size(); }

 private:
  friend class UdpSocket;
  void unbind(std::uint16_t port);
  void on_packet(Packet packet);
  void on_packet_batch(PacketBatch& batch);

  Host* host_;
  std::uint16_t next_ephemeral_ = 49152;
  std::unordered_map<std::uint16_t, UdpSocket*> sockets_;
};

}  // namespace doxlab::net
