// UDP: sockets and the per-host port demultiplexer.
//
// `UdpStack` registers itself as the host's UDP protocol handler and routes
// datagrams to bound `UdpSocket`s. Sockets are RAII: destruction unbinds.
// Every datagram carries the 8-byte UDP header in its IP-payload accounting,
// matching how the paper reports sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"

namespace doxlab::net {

class UdpStack;

/// The size of a UDP header; every datagram's IP payload includes it.
inline constexpr std::size_t kUdpHeaderBytes = 8;

/// A bound UDP socket.
class UdpSocket {
 public:
  using DatagramHandler =
      std::function<void(const Endpoint& from, util::Buffer)>;

  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Sends a datagram to `to`. The socket's bound port is the source port.
  /// The buffer is moved untouched into the packet (zero-copy path).
  void send_to(const Endpoint& to, util::Buffer payload);
  /// Sends with an explicit source address (bound port still the source
  /// port): raw-socket-style spoofing for attack traffic, and the stamp the
  /// load generator uses to give every simulated client its own address.
  /// Replies reach this socket only if `source` routes back to this host
  /// (Network::add_prefix_route).
  void send_to_from(const Endpoint& to, IpAddress source,
                    util::Buffer payload);
  /// Convenience for cold paths and tests still assembling vectors; the
  /// bytes are copied into a pooled buffer.
  void send_to(const Endpoint& to, std::vector<std::uint8_t> payload) {
    send_to(to, util::Buffer::copy_of(payload));
  }

  /// Sets the receive callback (may be replaced at any time).
  void on_datagram(DatagramHandler handler) { handler_ = std::move(handler); }

  std::uint16_t port() const { return port_; }
  Endpoint local_endpoint() const;

  /// Bytes sent/received including UDP headers (IP payload accounting).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class UdpStack;
  UdpSocket(UdpStack& stack, std::uint16_t port)
      : stack_(&stack), port_(port) {}

  void receive(const Endpoint& from, util::Buffer payload);

  UdpStack* stack_;
  std::uint16_t port_;
  DatagramHandler handler_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

/// Per-host UDP port table. Construct at most one per host.
class UdpStack {
 public:
  explicit UdpStack(Host& host);
  UdpStack(const UdpStack&) = delete;
  UdpStack& operator=(const UdpStack&) = delete;

  /// Binds a specific port. Throws std::invalid_argument if taken.
  std::unique_ptr<UdpSocket> bind(std::uint16_t port);

  /// Binds an ephemeral port (49152+).
  std::unique_ptr<UdpSocket> bind_ephemeral();

  Host& host() { return *host_; }

  /// Number of currently bound sockets (leak diagnostics in tests).
  std::size_t bound_count() const { return sockets_.size(); }

 private:
  friend class UdpSocket;
  void unbind(std::uint16_t port);
  void on_packet(Packet packet);

  Host* host_;
  std::uint16_t next_ephemeral_ = 49152;
  std::unordered_map<std::uint16_t, UdpSocket*> sockets_;
};

}  // namespace doxlab::net
