// The packet fabric: hosts, packets, and the delay/jitter/loss model that
// connects them.
//
// `Network` is the only way packets move between hosts. Every send consults
// the latency model (geography-derived) or an explicit per-pair override
// (used by unit tests to pin RTTs), applies random loss, and schedules
// delivery on the simulator. Delivery dispatches to the destination host's
// per-protocol handler (UDP and TCP stacks register themselves).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.h"
#include "net/geo.h"
#include "net/latency.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "util/buffer.h"
#include "util/rng.h"
#include "util/types.h"

namespace doxlab::net {

class Network;

/// A packet in flight. `header_bytes` is the transport header including
/// options (8 for UDP, 20+options for TCP); `payload` is the transport
/// payload. IP payload size — the unit Table 1 of the paper reports — is
/// `header_bytes + payload.size()`.
struct Packet {
  Endpoint src;
  Endpoint dst;
  int protocol = kProtoUdp;
  std::size_t header_bytes = 8;
  /// Pooled slab moved (not copied) from the sender's encoder through
  /// delivery to the receive handler; copies share the slab by refcount.
  util::Buffer payload;
  /// Structured sidecar for protocols whose control metadata we do not
  /// serialize byte-exactly (TCP segment flags/seq live here).
  std::shared_ptr<const void> meta;

  std::size_t ip_payload_bytes() const {
    return header_bytes + payload.size();
  }
};

/// A burst of packets reaching one host in a single simulator event
/// (recvmmsg-style; see Network::set_batch_window). Handlers may move the
/// packets out but must leave the vector itself alive — the fabric recycles
/// its storage.
using PacketBatch = std::vector<Packet>;

/// A simulated machine: address, location, and protocol demultiplexers.
class Host {
 public:
  using PacketHandler = std::function<void(Packet)>;
  using BatchHandler = std::function<void(PacketBatch&)>;

  const std::string& name() const { return name_; }
  IpAddress address() const { return address_; }
  const GeoPoint& location() const { return location_; }
  Continent continent() const { return continent_; }
  SimTime access_delay() const { return access_delay_; }

  /// Registers the handler for an IP protocol number (kProtoUdp/kProtoTcp).
  /// Replaces any previous handler.
  void set_protocol_handler(int protocol, PacketHandler handler);

  /// Registers a burst handler for a protocol: when the fabric runs in
  /// batch mode it hands a whole PacketBatch over in one call instead of
  /// one deliver() per packet. A protocol without a batch handler falls
  /// back to per-packet delivery (same packets, same order).
  void set_protocol_batch_handler(int protocol, BatchHandler handler);

  /// Marks the host unreachable; packets to it are dropped silently (used by
  /// the scanner simulation for dark address space and resolver outages).
  void set_up(bool up) { up_ = up; }
  bool up() const { return up_; }

  Network& network() const { return *network_; }

 private:
  friend class Network;
  Host(Network& network, std::string name, IpAddress address,
       GeoPoint location, Continent continent, SimTime access_delay)
      : network_(&network),
        name_(std::move(name)),
        address_(address),
        location_(location),
        continent_(continent),
        access_delay_(access_delay) {}

  void deliver(Packet packet);
  void deliver_batch(PacketBatch& batch);

  Network* network_;
  std::string name_;
  IpAddress address_;
  GeoPoint location_;
  Continent continent_;
  SimTime access_delay_;
  bool up_ = true;
  std::unordered_map<int, PacketHandler> handlers_;
  std::unordered_map<int, BatchHandler> batch_handlers_;
};

/// Aggregate traffic counters, exposed for tests and the scan module.
struct NetworkCounters {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t packets_unroutable = 0;
  std::uint64_t ip_payload_bytes = 0;
  /// Packets that died on a link: full queue (tail drop) or the
  /// Gilbert-Elliott chain. Disjoint from `packets_lost` (the iid draw).
  std::uint64_t packets_link_dropped = 0;
};

/// The fabric. Owns all hosts.
class Network {
 public:
  Network(sim::Simulator& simulator, Rng rng, LatencyModel latency = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Creates and registers a host. Throws std::invalid_argument on a
  /// duplicate address.
  Host& add_host(std::string name, IpAddress address, GeoPoint location,
                 Continent continent, SimTime access_delay = from_ms(1.0));

  /// Looks up a host; nullptr if the address is unassigned.
  Host* find_host(IpAddress address);
  const Host* find_host(IpAddress address) const;

  /// Routes a whole prefix to an existing host: any packet addressed into
  /// `network`/`prefix_len` that matches no exact host is delivered to the
  /// host at `via` (its UDP/TCP stacks then demultiplex by port). This is
  /// how one simulated machine fronts many client source addresses — the
  /// load generator's per-client subnets, and the victim of a spoofed-
  /// source attack receiving the backscatter. Longest prefix wins; the
  /// route target must already be a host.
  void add_prefix_route(IpAddress network, int prefix_len, IpAddress via);

  /// Exact host, or the longest-prefix route target; nullptr when neither
  /// matches.
  Host* route_host(IpAddress address);

  /// Sends a packet. Routability is evaluated at delivery time (in batch
  /// mode the routed host is pinned at send time; liveness is still checked
  /// at the flush).
  void send(Packet packet);

  /// Burst mode: 0 (the default) keeps classic one-event-per-packet
  /// delivery. When > 0, each UDP packet's delivery time is rounded UP to
  /// the next multiple of `window`, and every packet landing on the same
  /// (host, grid slot) is flushed as one PacketBatch in a single simulator
  /// event — the discrete-event analogue of recvmmsg with a small
  /// aggregation delay (adds < `window` of latency per packet). Per-query
  /// outcomes are unchanged; only event count/order (and thus the event
  /// stream digest) differ from per-packet mode. TCP segments always take
  /// the per-packet path: their stacks are ordering-sensitive state
  /// machines with no burst entry point.
  void set_batch_window(SimTime window) { batch_window_ = window; }
  SimTime batch_window() const { return batch_window_; }

  /// Pins the one-way delay for a host pair in both directions (tests).
  void set_path_override(IpAddress a, IpAddress b, SimTime one_way);

  /// Per-pair loss override in [0,1] (both directions).
  void set_loss_override(IpAddress a, IpAddress b, double loss);

  // --- link-level path modeling (see net/link.h) ---
  //
  // With no links configured, send() is bit-identical to the flat
  // delay+loss fabric: no extra RNG draws, no timing changes. Each link has
  // its own RNG stream (seeded from the link seed and its id), so binding a
  // link on one path never perturbs jitter/loss draws on another.

  /// Creates a link; returns its id. Links are never destroyed.
  int add_link(LinkConfig config);

  /// Routes all traffic from `src` to `dst` (one direction!) through the
  /// link. The addresses are resolved through the routing table at send
  /// time, so a prefix-fronted client aggregate shares its host's link.
  void bind_link(IpAddress src, IpAddress dst, int link_id);

  /// All traffic leaving / reaching `host` traverses the link — ONE shared
  /// queue, so flows from different peers compete for it (the
  /// shared-bottleneck fairness setup). Pair bindings compose with these:
  /// a packet traverses egress(src), then the pair link, then ingress(dst).
  void set_host_egress_link(IpAddress host, int link_id);
  void set_host_ingress_link(IpAddress host, int link_id);

  /// Every directed host pair (after routing; loopback excluded) lazily
  /// gets its own link instance built from `config` — the "all paths are
  /// LTE-like" adverse study switch. Per-pair instances keep queues and
  /// loss chains independent, seeded from (link seed, directed pair key).
  void set_default_link(LinkConfig config);

  const Link& link(int link_id) const { return *links_.at(link_id); }
  std::size_t link_count() const { return links_.size(); }
  const LinkStats& link_stats(int link_id) const {
    return links_.at(link_id)->stats();
  }
  /// Elementwise sum over all links (queue-pressure observability; the
  /// sharded engine folds this into its shard CSV).
  LinkStats link_totals() const;

  /// Network-wide random loss rate (default 0.2%).
  void set_loss_rate(double rate) { loss_rate_ = rate; }
  double loss_rate() const { return loss_rate_; }

  /// Observer invoked for every packet accepted into the fabric (before the
  /// loss draw). Used by tests and by the scanner's traffic accounting.
  using Tap = std::function<void(const Packet&)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// One-way delay the next packet between two hosts would experience,
  /// excluding jitter. Exposed so studies can reason about distances.
  SimTime base_one_way(const Host& a, const Host& b) const;

  sim::Simulator& simulator() { return simulator_; }
  Rng& rng() { return rng_; }
  const NetworkCounters& counters() const { return counters_; }
  const LatencyModel& latency_model() const { return latency_; }

 private:
  static std::uint64_t pair_key(IpAddress a, IpAddress b);

  /// Non-loopback one-way delay with the pair key already computed — `send`
  /// hashes the pair once for both the loss and path override lookups.
  SimTime keyed_one_way(std::uint64_t key, const Host& a,
                        const Host& b) const;

  /// One pending batch slot: (routed host, delivery grid time).
  struct BatchKey {
    std::uint32_t via = 0;
    SimTime at = 0;
    bool operator==(const BatchKey&) const = default;
  };
  struct BatchKeyHash {
    std::size_t operator()(const BatchKey& k) const noexcept {
      std::uint64_t h = k.via * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<std::uint64_t>(k.at) + 0x9E3779B97F4A7C15ull +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  void stage_batch(Host& target, SimTime bucket, Packet packet);
  void flush_batch(IpAddress via, SimTime bucket);

  /// Directed (src, dst) key — unlike pair_key, order matters (each
  /// direction of a path has its own queue and loss chain).
  static std::uint64_t directed_key(IpAddress src, IpAddress dst) {
    return (std::uint64_t(src.value()) << 32) | dst.value();
  }

  /// Runs `packet`-sized bytes through every link bound on src->dst.
  /// Returns the summed extra delay, or nullopt when a link dropped it
  /// (counted). Called only when any link/default is configured.
  std::optional<SimTime> traverse_links(const Host& src, const Host& dst,
                                        std::size_t wire_bytes);

  sim::Simulator& simulator_;
  Rng rng_;
  LatencyModel latency_;
  double loss_rate_ = 0.002;
  struct PrefixRoute {
    std::uint32_t network = 0;
    std::uint32_t mask = 0;
    IpAddress via;
  };

  std::unordered_map<IpAddress, std::unique_ptr<Host>> hosts_;
  /// Sorted longest-prefix-first; scanned linearly (a handful of routes).
  std::vector<PrefixRoute> prefix_routes_;
  std::unordered_map<std::uint64_t, SimTime> path_overrides_;
  std::unordered_map<std::uint64_t, double> loss_overrides_;

  // Link layer. `links_` owns every Link; the maps bind them to directed
  // pairs and host aggregates. `default_link_` is the lazy per-pair
  // template; `pair_links_` caches both explicit bindings and lazily
  // created defaults, keyed by directed routed addresses.
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<std::uint64_t, int> pair_links_;
  std::unordered_map<IpAddress, int> egress_links_;
  std::unordered_map<IpAddress, int> ingress_links_;
  std::optional<LinkConfig> default_link_;
  bool any_links_ = false;
  Tap tap_;
  NetworkCounters counters_;
  SimTime batch_window_ = 0;
  /// In-flight batch slots; the first packet staged into a slot schedules
  /// its flush event. Drained vectors recycle through `batch_pool_` so a
  /// steady-state burst loop reuses the same storage.
  std::unordered_map<BatchKey, PacketBatch, BatchKeyHash> staged_;
  std::vector<PacketBatch> batch_pool_;
};

}  // namespace doxlab::net
