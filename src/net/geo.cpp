#include "net/geo.h"

#include <cmath>
#include <stdexcept>

namespace doxlab::net {

std::string_view continent_code(Continent c) {
  switch (c) {
    case Continent::kEurope: return "EU";
    case Continent::kAsia: return "AS";
    case Continent::kNorthAmerica: return "NA";
    case Continent::kAfrica: return "AF";
    case Continent::kOceania: return "OC";
    case Continent::kSouthAmerica: return "SA";
  }
  return "??";
}

Continent continent_from_code(std::string_view code) {
  if (code == "EU") return Continent::kEurope;
  if (code == "AS") return Continent::kAsia;
  if (code == "NA") return Continent::kNorthAmerica;
  if (code == "AF") return Continent::kAfrica;
  if (code == "OC") return Continent::kOceania;
  if (code == "SA") return Continent::kSouthAmerica;
  throw std::invalid_argument("unknown continent code: " + std::string(code));
}

const std::vector<Continent>& all_continents() {
  static const std::vector<Continent> kAll = {
      Continent::kEurope,       Continent::kAsia,
      Continent::kNorthAmerica, Continent::kAfrica,
      Continent::kOceania,      Continent::kSouthAmerica,
  };
  return kAll;
}

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2 * kEarthRadiusKm * std::asin(std::sqrt(s));
}

const std::vector<City>& cities_in(Continent c) {
  // Hosting hubs per continent. The paper finds resolvers concentrated in
  // EU datacenter regions (ORACLE, DIGITALOCEAN, OVH ASes), so EU lists the
  // major cloud cities.
  static const std::vector<City> kEu = {
      {"Frankfurt", Continent::kEurope, {50.11, 8.68}},
      {"Amsterdam", Continent::kEurope, {52.37, 4.90}},
      {"London", Continent::kEurope, {51.51, -0.13}},
      {"Paris", Continent::kEurope, {48.86, 2.35}},
      {"Warsaw", Continent::kEurope, {52.23, 21.01}},
      {"Zurich", Continent::kEurope, {47.38, 8.54}},
      {"Stockholm", Continent::kEurope, {59.33, 18.07}},
      {"Madrid", Continent::kEurope, {40.42, -3.70}},
  };
  static const std::vector<City> kAs = {
      {"Singapore", Continent::kAsia, {1.35, 103.82}},
      {"Tokyo", Continent::kAsia, {35.68, 139.69}},
      {"Seoul", Continent::kAsia, {37.57, 126.98}},
      {"Mumbai", Continent::kAsia, {19.08, 72.88}},
      {"Hong Kong", Continent::kAsia, {22.32, 114.17}},
      {"Istanbul", Continent::kAsia, {41.01, 28.98}},
      {"Dubai", Continent::kAsia, {25.20, 55.27}},
  };
  static const std::vector<City> kNa = {
      {"Ashburn", Continent::kNorthAmerica, {39.04, -77.49}},
      {"San Jose", Continent::kNorthAmerica, {37.34, -121.89}},
      {"Dallas", Continent::kNorthAmerica, {32.78, -96.80}},
      {"Toronto", Continent::kNorthAmerica, {43.65, -79.38}},
      {"Chicago", Continent::kNorthAmerica, {41.88, -87.63}},
  };
  static const std::vector<City> kAf = {
      {"Johannesburg", Continent::kAfrica, {-26.20, 28.05}},
      {"Lagos", Continent::kAfrica, {6.52, 3.38}},
  };
  static const std::vector<City> kOc = {
      {"Sydney", Continent::kOceania, {-33.87, 151.21}},
      {"Auckland", Continent::kOceania, {-36.85, 174.76}},
  };
  static const std::vector<City> kSa = {
      {"Sao Paulo", Continent::kSouthAmerica, {-23.55, -46.63}},
      {"Santiago", Continent::kSouthAmerica, {-33.45, -70.67}},
  };
  switch (c) {
    case Continent::kEurope: return kEu;
    case Continent::kAsia: return kAs;
    case Continent::kNorthAmerica: return kNa;
    case Continent::kAfrica: return kAf;
    case Continent::kOceania: return kOc;
    case Continent::kSouthAmerica: return kSa;
  }
  return kEu;
}

const std::vector<City>& vantage_point_cities() {
  static const std::vector<City> kVps = {
      {"eu-central (Frankfurt)", Continent::kEurope, {50.11, 8.68}},
      {"ap-southeast (Singapore)", Continent::kAsia, {1.35, 103.82}},
      {"us-east (N. Virginia)", Continent::kNorthAmerica, {38.95, -77.45}},
      {"af-south (Cape Town)", Continent::kAfrica, {-33.92, 18.42}},
      {"ap-sydney (Sydney)", Continent::kOceania, {-33.87, 151.21}},
      {"sa-east (Sao Paulo)", Continent::kSouthAmerica, {-23.55, -46.63}},
  };
  return kVps;
}

}  // namespace doxlab::net
