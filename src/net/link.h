// Link-level path modeling behind net::Network.
//
// The default fabric is a geo-latency + iid-loss model with infinite-rate
// paths — every packet departs instantly and loss draws are independent.
// That is the right model for the paper's wired EC2 vantage points, but it
// cannot say anything about *bad* paths: lossy mobile links, bufferbloat,
// or two flows competing for a bottleneck. A `Link` adds exactly those
// mechanisms, one directed traffic aggregate at a time:
//
//   * finite rate + FIFO queue with tail-drop: each packet occupies the
//     transmitter for bytes/rate; packets arriving while the queue holds
//     `queue_bytes` are dropped. A deep queue IS bufferbloat — the queueing
//     delay grows to queue_bytes/rate before drops begin.
//   * Gilbert-Elliott two-state burst loss: a good/bad Markov chain drawn
//     per packet, giving correlated loss runs (mean burst 1/p_bad_to_good)
//     instead of iid coin flips.
//   * scripted extra-delay steps: handover events — the one-way delay gains
//     `extra_one_way` of the latest step at or before the send time.
//
// Links are created on the Network (`add_link`) and bound to directed host
// pairs or to a host's ingress/egress aggregate. A link bound to a host's
// ingress is ONE shared queue: flows from different sources competing for
// it see each other's queueing — the shared-bottleneck fairness setup.
// With no links configured, Network::send is bit-identical to the
// pre-link-model fabric (no extra RNG draws, no timing changes).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace doxlab::net {

/// Gilbert-Elliott burst-loss parameters. The chain sits in Good or Bad;
/// each packet first advances the state, then draws loss at the state's
/// rate. Stationary loss = pi_bad * loss_bad + pi_good * loss_good with
/// pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good); the mean bad
/// sojourn (burst length scale) is 1 / p_bad_to_good packets.
struct GilbertElliott {
  double p_good_to_bad = 0.02;
  double p_bad_to_good = 0.25;
  double loss_good = 0.0;
  double loss_bad = 0.5;

  double stationary_loss() const {
    const double denom = p_good_to_bad + p_bad_to_good;
    if (denom <= 0.0) return loss_good;
    const double pi_bad = p_good_to_bad / denom;
    return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
  }
};

/// One scripted delay step: from `at` on, the link adds `extra_one_way`.
struct DelayStep {
  SimTime at = 0;
  SimTime extra_one_way = 0;
};

struct LinkConfig {
  /// Link rate in bits per second; 0 = infinite (no serialization delay,
  /// no queue — the seed fabric's behaviour).
  double rate_bps = 0.0;
  /// Tail-drop queue capacity in bytes (backlog excluding the packet in
  /// transmission). Sized deep relative to rate*RTT, this is bufferbloat.
  std::size_t queue_bytes = 64 * 1024;
  /// Burst-loss chain; nullopt = no link-level loss.
  std::optional<GilbertElliott> burst_loss;
  /// Scripted handover-style delay steps, sorted by `at` (enforced on
  /// add_link). Empty = no extra delay.
  std::vector<DelayStep> delay_steps;
};

/// Counters for one link, exposed through Network::link_stats and summed
/// into NetworkCounters/EngineStats for the shard CSV.
struct LinkStats {
  std::uint64_t packets = 0;        ///< packets offered to the link
  std::uint64_t tail_drops = 0;     ///< dropped on a full queue
  std::uint64_t burst_losses = 0;   ///< lost to the Gilbert-Elliott chain
  std::uint64_t queued_bytes_max = 0;  ///< high-water backlog (pressure)
  std::uint64_t busy_us = 0;        ///< transmitter busy time accumulated
};

/// One directed traffic aggregate: transmitter + FIFO queue + loss chain.
/// Owned by the Network; driven from Network::send on the simulated clock
/// (the queue is modeled analytically via the departure horizon — no events
/// are scheduled for the queue itself).
class Link {
 public:
  Link(LinkConfig config, std::uint64_t seed);

  /// Offers a packet of `wire_bytes` at time `now`. Returns the extra
  /// one-way delay the link imposes (queueing + serialization + scripted
  /// step), or nullopt when the packet dies here (tail drop / burst loss).
  std::optional<SimTime> admit(std::size_t wire_bytes, SimTime now);

  /// Current backlog in bytes at `now` (what a new arrival queues behind).
  std::size_t backlog_bytes(SimTime now) const;

  const LinkConfig& config() const { return config_; }
  const LinkStats& stats() const { return stats_; }
  bool in_bad_state() const { return bad_state_; }

 private:
  SimTime transmit_time(std::size_t wire_bytes) const;
  /// Advances the GE chain one packet; returns true when the packet is lost.
  bool draw_burst_loss();

  LinkConfig config_;
  Rng rng_;
  bool bad_state_ = false;
  /// When the transmitter frees up; arrivals before this queue behind it.
  /// The backlog is derived from this horizon (the queue drains at exactly
  /// the link rate), so no per-packet queue state is kept.
  SimTime busy_until_ = 0;
  /// Index of the next unreached delay step (steps are sorted by `at`).
  std::size_t next_step_ = 0;
  LinkStats stats_;
};

}  // namespace doxlab::net
