#include "resolver/resolver.h"

#include <algorithm>
#include <span>

#include "util/logging.h"

namespace doxlab::resolver {

namespace {

/// FNV-1a over the presentation name: stable fake authoritative data.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Strips/applies the DoQ length prefix depending on the draft ALPN.
bool alpn_uses_length_prefix(std::string_view alpn) {
  if (alpn == "doq") return true;
  if (alpn.substr(0, 5) == "doq-i") {
    return std::atoi(std::string(alpn.substr(5)).c_str()) >= 3;
  }
  return false;
}

std::vector<std::uint8_t> with_length_prefix(
    const std::vector<std::uint8_t>& m) {
  std::vector<std::uint8_t> out;
  out.reserve(m.size() + 2);
  out.push_back(static_cast<std::uint8_t>(m.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(m.size() & 0xFF));
  out.insert(out.end(), m.begin(), m.end());
  return out;
}

/// In-place variant: the prefix lands in the buffer's headroom.
util::Buffer with_length_prefix(util::Buffer m) {
  const std::size_t len = m.size();
  std::uint8_t* prefix = m.prepend(2);
  prefix[0] = static_cast<std::uint8_t>(len >> 8);
  prefix[1] = static_cast<std::uint8_t>(len & 0xFF);
  return m;
}

/// Parses "txtNNNN....": synthetic TXT payload size from the leftmost label
/// ("txt1800.example.com" -> a 1800-byte TXT record). Returns 0 when the
/// name does not request TXT data.
std::size_t txt_payload_size(const dns::DnsName& name) {
  if (name.is_root()) return 0;
  const std::string_view label = name.first_label();
  if (label.size() < 4 || label.substr(0, 3) != "txt") return 0;
  std::size_t n = 0;
  for (std::size_t i = 3; i < label.size(); ++i) {
    if (label[i] < '0' || label[i] > '9') return 0;
    n = n * 10 + static_cast<std::size_t>(label[i] - '0');
  }
  return std::min<std::size_t>(n, 16000);
}

/// Appends an EDNS0 option to the message's OPT record (no-op without OPT).
void append_edns_option(dns::Message& message, std::uint16_t code,
                        std::span<const std::uint8_t> value) {
  for (dns::ResourceRecord& rr : message.additionals) {
    if (rr.type != dns::RRType::kOPT) continue;
    ByteWriter w;
    w.bytes(rr.rdata);
    w.u16(code);
    w.u16(static_cast<std::uint16_t>(value.size()));
    w.bytes(value);
    rr.rdata = w.take();
    return;
  }
}

/// True if the query carries an RFC 7830 padding option (the client asked
/// for padded responses).
bool wants_padding(const dns::Message& query) {
  const dns::ResourceRecord* opt = query.opt();
  if (opt == nullptr) return false;
  auto options = dns::rdata_as_options(*opt);
  if (!options) return false;
  for (const auto& option : *options) {
    if (option.code == dns::kEdnsPaddingOption) return true;
  }
  return false;
}

/// Incremental 2-byte-length framing parser (server side).
struct LengthReader {
  std::vector<std::uint8_t> buffer;
  std::vector<std::vector<std::uint8_t>> feed(
      std::span<const std::uint8_t> data) {
    buffer.insert(buffer.end(), data.begin(), data.end());
    std::vector<std::vector<std::uint8_t>> out;
    while (buffer.size() >= 2) {
      const std::size_t len = (std::size_t(buffer[0]) << 8) | buffer[1];
      if (buffer.size() < 2 + len) break;
      out.emplace_back(buffer.begin() + 2, buffer.begin() + 2 + len);
      buffer.erase(buffer.begin(), buffer.begin() + 2 + len);
    }
    return out;
  }
};

}  // namespace

std::uint32_t authoritative_ipv4(const dns::DnsName& name) {
  // 198.18.0.0/15 (benchmarking range) + hash.
  return 0xC6120000u | static_cast<std::uint32_t>(fnv1a(name.to_string()) &
                                                  0x0001FFFFu);
}

// --------------------------------------------------------- connection state

struct DoxResolver::DotConn {
  std::shared_ptr<tcp::TcpConnection> tcp;
  std::unique_ptr<tls::TlsSession> tls;
  LengthReader reader;
  bool closed = false;
};

struct DoxResolver::DohConn {
  std::shared_ptr<tcp::TcpConnection> tcp;
  std::unique_ptr<tls::TlsSession> tls;
  std::unique_ptr<h2::H2Connection> h2;
  std::map<std::uint32_t, std::vector<std::uint8_t>> bodies;
  bool closed = false;
};

// ------------------------------------------------------------- construction

DoxResolver::DoxResolver(net::Network& network, const ResolverProfile& profile,
                         Rng rng)
    : network_(network), profile_(profile), rng_(std::move(rng)) {
  host_ = &network.add_host(profile_.name, profile_.address,
                            profile_.location, profile_.continent,
                            /*access_delay=*/from_ms(0.5));
  udp_ = std::make_unique<net::UdpStack>(*host_);
  tcp_ = std::make_unique<tcp::TcpStack>(*host_);
  open_listeners();
}

DoxResolver::~DoxResolver() = default;

void DoxResolver::open_listeners() {
  if (profile_.supports_doudp) serve_doudp();
  if (profile_.supports_dotcp) serve_dotcp();
  if (profile_.supports_dot) serve_dot();
  if (profile_.supports_doh) serve_doh();
  if (profile_.supports_doq) serve_doq();
  if (profile_.supports_doh3) serve_doh3();
}

tls::TlsConfig DoxResolver::server_tls_config(const std::string& alpn) const {
  tls::TlsConfig config;
  config.is_server = true;
  config.max_version = profile_.max_tls;
  config.alpn = {alpn};
  config.certificate_chain_size = profile_.certificate_chain_size;
  config.enable_session_tickets = profile_.session_tickets;
  config.enable_0rtt = profile_.supports_0rtt;
  config.ticket_secret = profile_.secret;
  return config;
}

quic::QuicConfig DoxResolver::server_quic_config() const {
  quic::QuicConfig config;
  config.is_server = true;
  config.version = profile_.quic_version;
  config.supported = {profile_.quic_version};
  config.alpn = {profile_.doq_alpn};
  config.certificate_chain_size = profile_.certificate_chain_size;
  config.enable_session_tickets = profile_.session_tickets;
  config.enable_0rtt = profile_.supports_0rtt;
  config.require_retry = profile_.validate_with_retry;
  config.ticket_secret = profile_.secret;
  return config;
}

// ----------------------------------------------------------- core resolution

void DoxResolver::handle_query(dox::DnsProtocol protocol,
                               const dns::Message& query,
                               std::function<void(dns::Message)> respond) {
  if (query.qr || query.questions.empty()) return;
  if (rng_.chance(profile_.drop_probability)) return;  // unresponsive sample
  ++served_[static_cast<int>(protocol)];

  const dns::Question& question = query.questions.front();
  auto& sim = network_.simulator();

  auto finish = [this, protocol, query, respond = std::move(respond),
                 question](std::vector<dns::ResourceRecord> records,
                           dns::RCode rcode = dns::RCode::kNoError) {
    dns::Message response = dns::make_response(query, rcode);
    response.answers = std::move(records);

    const bool encrypted = protocol != dox::DnsProtocol::kDoUdp &&
                           protocol != dox::DnsProtocol::kDoTcp;
    if (protocol == dox::DnsProtocol::kDoTcp &&
        profile_.supports_keepalive) {
      // RFC 7828: advertise an idle timeout (units of 100 ms) so clients
      // keep the connection for further queries.
      const std::uint8_t timeout[2] = {0, 100};  // 10 s
      append_edns_option(response, dns::kEdnsTcpKeepaliveOption, timeout);
    }
    if (encrypted && wants_padding(query)) {
      // RFC 8467: servers pad responses to 468-byte blocks.
      dns::pad_to_block(response, 468);
    }
    if (protocol == dox::DnsProtocol::kDoUdp) {
      const std::size_t limit =
          std::min<std::size_t>(dns::advertised_udp_size(query), 1232);
      dns::truncate_for_udp(response, limit);
    }
    respond(std::move(response));
  };

  auto cached = cache_.lookup(question.name, question.type, sim.now());
  if (cached) {
    // NXDOMAIN entries are cached as empty record sets for .invalid names.
    const dns::RCode rcode =
        question.name.is_subdomain_of(dns::DnsName::parse("invalid"))
            ? dns::RCode::kNXDomain
            : dns::RCode::kNoError;
    sim.schedule(profile_.processing_delay,
                 [finish, rcode, records = std::move(*cached)]() mutable {
                   finish(std::move(records), rcode);
                 });
    return;
  }

  // Simulated upstream recursion: log-normal around the profile mean.
  const double mean_ms = to_ms(profile_.recursive_latency_mean);
  const double mu = std::log(mean_ms) - 0.125;  // sigma^2/2 with sigma=0.5
  const SimTime recursion =
      from_ms(std::min(rng_.lognormal(mu, 0.5), 10 * mean_ms));
  sim.schedule(
      profile_.processing_delay + recursion, [this, finish, question] {
        std::vector<dns::ResourceRecord> records;
        dns::RCode rcode = dns::RCode::kNoError;
        if (question.name.is_subdomain_of(
                dns::DnsName::parse("invalid"))) {
          // The reserved .invalid TLD never resolves (RFC 2606).
          rcode = dns::RCode::kNXDomain;
        } else if (question.type == dns::RRType::kA ||
                   question.type == dns::RRType::kAAAA) {
          if (!question.name.is_root() &&
              question.name.first_label() == "www" &&
              question.name.label_count() > 2) {
            // Recursive resolvers return the full chain: the www alias plus
            // the canonical name's address record.
            const dns::DnsName canonical = question.name.parent();
            records.push_back(
                dns::make_cname(question.name, /*ttl=*/300, canonical));
            records.push_back(dns::make_a(canonical, /*ttl=*/300,
                                          authoritative_ipv4(canonical)));
          } else {
            records.push_back(dns::make_a(question.name, /*ttl=*/300,
                                          authoritative_ipv4(question.name)));
          }
        } else if (question.type == dns::RRType::kTXT) {
          // Synthetic large records ("txtNNNN.example") exercise UDP
          // truncation and the TCP fallback.
          if (const std::size_t n = txt_payload_size(question.name); n > 0) {
            records.push_back(dns::make_txt(question.name, /*ttl=*/300,
                                            std::string(n, 'x')));
          }
        }
        cache_.insert(question.name, question.type, records,
                      network_.simulator().now());
        finish(std::move(records), rcode);
      });
}

// ------------------------------------------------------------------- DoUDP

void DoxResolver::serve_doudp() {
  udp53_ = udp_->bind(53);
  udp53_->on_datagram([this](const net::Endpoint& from,
                             util::Buffer payload) {
    auto query = dns::Message::decode(payload);
    if (!query) return;
    handle_query(dox::DnsProtocol::kDoUdp, *query,
                 [this, from](dns::Message response) {
                   udp53_->send_to(from, response.encode());
                 });
  });
}

// ------------------------------------------------------------------- DoTCP

void DoxResolver::serve_dotcp() {
  auto& listener = tcp_->listen(53);
  listener.set_tfo_enabled(profile_.supports_tfo);
  listener.on_accept([this](const std::shared_ptr<tcp::TcpConnection>& conn) {
    // Handlers owned by the connection must capture it weakly, or the
    // connection keeps itself alive as a reference cycle until close.
    std::weak_ptr<tcp::TcpConnection> weak_conn = conn;
    conn->on_remote_fin([weak_conn] {
      if (auto conn = weak_conn.lock()) conn->close();
    });
    auto reader = std::make_shared<LengthReader>();
    conn->on_data([this, weak_conn,
                   reader](std::span<const std::uint8_t> data) {
      for (auto& payload : reader->feed(data)) {
        auto query = dns::Message::decode(payload);
        if (!query) continue;
        handle_query(dox::DnsProtocol::kDoTcp, *query,
                     [weak_conn](dns::Message response) {
                       // kSynReceived is legal too: a TFO query is answered
                       // together with the SYN-ACK (0.5-RTT data).
                       auto conn = weak_conn.lock();
                       if (conn && conn->state() != tcp::TcpState::kClosed) {
                         conn->send(with_length_prefix(
                             response.encode_buffer(/*headroom=*/2)));
                       }
                     });
      }
    });
  });
}

// --------------------------------------------------------------------- DoT

void DoxResolver::serve_dot() {
  auto& listener = tcp_->listen(853);
  listener.on_accept([this](const std::shared_ptr<tcp::TcpConnection>& conn) {
    // The DotConn owns the TLS session and (a reference to) the TCP
    // connection, so every callback stored inside either must capture the
    // state weakly or the whole trio leaks as a reference cycle.
    std::weak_ptr<tcp::TcpConnection> weak_conn = conn;
    conn->on_remote_fin([weak_conn] {
      if (auto conn = weak_conn.lock()) conn->close();
    });
    auto state = std::make_shared<DotConn>();
    std::weak_ptr<DotConn> weak_state = state;
    state->tcp = conn;

    tls::TlsSession::Callbacks callbacks;
    callbacks.now = [this] { return network_.simulator().now(); };
    callbacks.send_transport = [weak_state](util::Buffer bytes) {
      auto state = weak_state.lock();
      if (!state) return;
      if (!state->closed) state->tcp->send(std::move(bytes));
    };
    callbacks.on_application_data = [this, weak_state](
                                        std::span<const std::uint8_t> data) {
      auto state = weak_state.lock();
      if (!state) return;
      for (auto& payload : state->reader.feed(data)) {
        auto query = dns::Message::decode(payload);
        if (!query) continue;
        handle_query(dox::DnsProtocol::kDoT, *query,
                     [weak_state](dns::Message response) {
                       auto state = weak_state.lock();
                       if (state && !state->closed) {
                         state->tls->send_application_data(
                             with_length_prefix(response.encode_buffer(
                                 2 + tls::kRecordHeaderBytes)));
                       }
                     });
      }
    };
    callbacks.on_error = [weak_state](const util::Error&) {
      if (auto state = weak_state.lock()) state->closed = true;
    };
    state->tls = std::make_unique<tls::TlsSession>(server_tls_config("dot"),
                                                   std::move(callbacks));
    conn->on_data([weak_state](std::span<const std::uint8_t> data) {
      auto state = weak_state.lock();
      if (!state) return;
      state->tls->on_transport_data(data);
    });
    conn->on_closed([this, weak_state](const util::Error&) {
      auto state = weak_state.lock();
      if (!state) return;
      state->closed = true;
      std::erase(dot_conns_, state);
    });
    dot_conns_.push_back(state);
  });
}

// --------------------------------------------------------------------- DoH

void DoxResolver::serve_doh() {
  auto& listener = tcp_->listen(443);
  listener.on_accept([this](const std::shared_ptr<tcp::TcpConnection>& conn) {
    // Same cycle-avoidance as serve_dot: the DohConn owns the TLS and H2
    // sessions plus a TCP reference, so their stored callbacks capture it
    // weakly.
    std::weak_ptr<tcp::TcpConnection> weak_conn = conn;
    conn->on_remote_fin([weak_conn] {
      if (auto conn = weak_conn.lock()) conn->close();
    });
    auto state = std::make_shared<DohConn>();
    std::weak_ptr<DohConn> weak_state = state;
    state->tcp = conn;

    h2::H2Connection::Callbacks h2_callbacks;
    h2_callbacks.send_transport = [weak_state](util::Buffer bytes) {
      auto state = weak_state.lock();
      if (!state) return;
      if (!state->closed) state->tls->send_application_data(std::move(bytes));
    };
    h2_callbacks.on_headers = [](std::uint32_t id, const std::vector<h2::Header>& h,
                                 bool end) {
      DOXLAB_DEBUG("DoH server headers stream=" << id << " n=" << h.size()
                                                << " end=" << end);
    };
    h2_callbacks.on_error = [](const util::Error& error) {
      DOXLAB_DEBUG("DoH server h2 error: " << error);
    };
    h2_callbacks.on_data = [this, weak_state](
                               std::uint32_t stream_id,
                               std::span<const std::uint8_t> data,
                               bool end_stream) {
      auto state = weak_state.lock();
      if (!state) return;
      auto& body = state->bodies[stream_id];
      body.insert(body.end(), data.begin(), data.end());
      DOXLAB_DEBUG("DoH server data stream=" << stream_id << " total="
                                             << body.size() << " end="
                                             << end_stream);
      if (!end_stream) return;
      auto query = dns::Message::decode(body);
      state->bodies.erase(stream_id);
      if (!query) return;
      handle_query(
          dox::DnsProtocol::kDoH, *query,
          [weak_state, stream_id](dns::Message response) {
            auto state = weak_state.lock();
            if (!state || state->closed) return;
            util::Buffer body = response.encode_buffer(
                h2::kFrameHeaderBytes + tls::kRecordHeaderBytes);
            std::vector<h2::Header> headers = {
                {":status", "200"},
                {"content-type", "application/dns-message"},
                {"content-length", std::to_string(body.size())},
                {"cache-control", "no-cache"},
            };
            state->h2->send_response(stream_id, headers, std::move(body));
          });
    };
    state->h2 = std::make_unique<h2::H2Connection>(/*is_client=*/false,
                                                   std::move(h2_callbacks));

    tls::TlsSession::Callbacks tls_callbacks;
    tls_callbacks.now = [this] { return network_.simulator().now(); };
    tls_callbacks.send_transport = [weak_state](util::Buffer bytes) {
      auto state = weak_state.lock();
      if (!state) return;
      if (!state->closed) state->tcp->send(std::move(bytes));
    };
    tls_callbacks.on_application_data =
        [weak_state](std::span<const std::uint8_t> data) {
          auto state = weak_state.lock();
          if (!state) return;
          state->h2->on_transport_data(data);
        };
    tls_callbacks.on_error = [weak_state](const util::Error&) {
      if (auto state = weak_state.lock()) state->closed = true;
    };
    state->tls = std::make_unique<tls::TlsSession>(server_tls_config("h2"),
                                                   std::move(tls_callbacks));
    conn->on_data([weak_state](std::span<const std::uint8_t> data) {
      auto state = weak_state.lock();
      if (!state) return;
      state->tls->on_transport_data(data);
    });
    conn->on_closed([this, weak_state](const util::Error&) {
      auto state = weak_state.lock();
      if (!state) return;
      state->closed = true;
      std::erase(doh_conns_, state);
    });
    doh_conns_.push_back(state);
  });
}

// --------------------------------------------------------------------- DoQ

void DoxResolver::serve_doq() {
  // RFC 9250 port 853 plus the earlier draft ports the paper scanned.
  for (std::uint16_t port : {std::uint16_t(853), std::uint16_t(784),
                             std::uint16_t(8853)}) {
    auto server = std::make_unique<quic::QuicServer>(
        network_.simulator(), *udp_, port, server_quic_config());
    server->on_accept([this](const std::shared_ptr<quic::QuicConnection>& conn,
                             const net::Endpoint&) {
      const bool prefix = alpn_uses_length_prefix(profile_.doq_alpn);
      auto buffers =
          std::make_shared<std::map<std::uint64_t,
                                    std::vector<std::uint8_t>>>();
      // Weak capture: the connection owns this callback, so a shared
      // capture would pin the connection alive forever (cycle). The
      // QuicServer's connection map is the owner.
      std::weak_ptr<quic::QuicConnection> weak_conn = conn;
      conn->set_on_stream_data([this, weak_conn, buffers, prefix](
                                   std::uint64_t stream_id,
                                   std::span<const std::uint8_t> data,
                                   bool fin) {
        auto& buffer = (*buffers)[stream_id];
        buffer.insert(buffer.end(), data.begin(), data.end());
        if (!fin) return;
        std::span<const std::uint8_t> payload(buffer);
        if (prefix) {
          if (payload.size() < 2) return;
          const std::size_t len = (std::size_t(payload[0]) << 8) | payload[1];
          payload = payload.subspan(2, std::min(len, payload.size() - 2));
        }
        auto query = dns::Message::decode(payload);
        buffers->erase(stream_id);
        if (!query) return;
        handle_query(dox::DnsProtocol::kDoQ, *query,
                     [weak_conn, stream_id, prefix](dns::Message response) {
                       auto conn = weak_conn.lock();
                       if (!conn || conn->closed()) return;
                       auto wire = response.encode();
                       if (prefix) wire = with_length_prefix(wire);
                       conn->send_stream(stream_id, std::move(wire), true);
                     });
      });
    });
    quic_servers_.push_back(std::move(server));
  }
}

// -------------------------------------------------------------------- DoH3

void DoxResolver::serve_doh3() {
  // HTTP/3 on UDP 443 (alpn "h3"); shares the QUIC substrate with DoQ.
  quic::QuicConfig config = server_quic_config();
  config.alpn = {"h3"};
  auto server = std::make_unique<quic::QuicServer>(network_.simulator(),
                                                   *udp_, 443, config);
  server->on_accept([this](const std::shared_ptr<quic::QuicConnection>& conn,
                           const net::Endpoint&) {
    auto h3 = std::make_shared<std::unique_ptr<h3::H3Connection>>();
    auto bodies = std::make_shared<
        std::map<std::uint64_t, std::vector<std::uint8_t>>>();
    // The H3 session owns the connection and the connection's stream
    // callback reaches the session — both captures must be weak or the
    // pair leaks as a cycle. The resolver (doh3_conns_) is the owner.
    std::weak_ptr<quic::QuicConnection> weak_conn = conn;
    std::weak_ptr<std::unique_ptr<h3::H3Connection>> weak_h3 = h3;

    h3::H3Connection::Callbacks callbacks;
    callbacks.on_headers = [](std::uint64_t, const std::vector<h2::Header>&,
                              bool) {
      // POST /dns-query implied; the DATA frame carries the query.
    };
    callbacks.on_data = [this, weak_conn, weak_h3, bodies](
                            std::uint64_t stream_id,
                            std::span<const std::uint8_t> data,
                            bool end_stream) {
      auto& body = (*bodies)[stream_id];
      body.insert(body.end(), data.begin(), data.end());
      if (!end_stream) return;
      auto query = dns::Message::decode(body);
      bodies->erase(stream_id);
      if (!query) return;
      handle_query(
          dox::DnsProtocol::kDoH3, *query,
          [weak_conn, weak_h3, stream_id](dns::Message response) {
            auto conn = weak_conn.lock();
            auto h3 = weak_h3.lock();
            if (!conn || conn->closed() || !h3 || !*h3) return;
            auto body = response.encode();
            std::vector<h2::Header> headers = {
                {":status", "200"},
                {"content-type", "application/dns-message"},
                {"content-length", std::to_string(body.size())},
                {"cache-control", "no-cache"},
            };
            (*h3)->send_response(stream_id, headers, std::move(body));
          });
    };
    *h3 = std::make_unique<h3::H3Connection>(conn, /*is_client=*/false,
                                             std::move(callbacks));
    conn->set_on_stream_data([weak_h3](std::uint64_t id,
                                       std::span<const std::uint8_t> data,
                                       bool fin) {
      auto h3 = weak_h3.lock();
      if (!h3 || !*h3) return;
      (*h3)->on_stream_data(id, data, fin);
    });
    (*h3)->start();
    doh3_conns_.push_back(std::move(h3));
  });
  quic_servers_.push_back(std::move(server));
}

}  // namespace doxlab::resolver
