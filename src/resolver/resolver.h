// A recursive DNS resolver speaking all five DoX protocols — the server
// side of the study. One `DoxResolver` is one of the paper's 313 verified
// resolvers: it listens on UDP/TCP 53 (Do53), TCP 853 (DoT), TCP 443 (DoH)
// and UDP 784/853/8853 (DoQ), answers from a shared record cache, and
// simulates the upstream recursive lookup on cache misses.
//
// Per-resolver behaviour is drawn from a `ResolverProfile` whose fields
// mirror the feature distributions the paper reports in §3: TLS version,
// QUIC version, DoQ ALPN draft, certificate chain size, no 0-RTT, no TFO,
// no edns-tcp-keepalive, 7-day session tickets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dns/cache.h"
#include "dns/message.h"
#include "dox/types.h"
#include "h2/connection.h"
#include "net/geo.h"
#include "net/network.h"
#include "net/udp.h"
#include "h3/connection.h"
#include "quic/server.h"
#include "tcp/tcp.h"
#include "tls/session.h"
#include "util/rng.h"

namespace doxlab::resolver {

/// Everything that varies across the resolver population.
struct ResolverProfile {
  std::string name;
  net::IpAddress address;
  net::GeoPoint location;
  net::Continent continent = net::Continent::kEurope;
  std::string as_name = "EXAMPLE-AS";
  int as_number = 64500;

  // Protocol support (the scan module verifies these; the 313 DoX
  // resolvers have all five true).
  bool supports_doudp = true;
  bool supports_dotcp = true;
  bool supports_dot = true;
  bool supports_doh = true;
  bool supports_doq = true;
  /// DNS over HTTP/3 — the paper's future-work protocol; rare in 2022
  /// (Cloudflare only), so off by default.
  bool supports_doh3 = false;

  // Feature mix (§3 of the paper).
  tls::TlsVersion max_tls = tls::TlsVersion::kTls13;
  quic::QuicVersion quic_version = quic::QuicVersion::kV1;
  std::string doq_alpn = "doq-i02";
  bool supports_0rtt = false;       // none in the study
  bool supports_tfo = false;        // none in the study
  bool supports_keepalive = false;  // none in the study
  bool session_tickets = true;      // all in the study (7-day lifetime)
  /// Address validation via Retry for token-less DoQ clients (off in the
  /// study's population; the ablation bench turns it on).
  bool validate_with_retry = false;
  std::size_t certificate_chain_size = 3000;
  std::uint64_t secret = 0;  // ticket/token identity

  /// Mean simulated upstream recursion latency on cache miss.
  SimTime recursive_latency_mean = 80 * kMillisecond;
  /// Per-query probability of silently dropping (resolvers "not responding
  /// to every DNS query" — the paper's sample-count variation).
  double drop_probability = 0.002;
  /// Local processing delay per query.
  SimTime processing_delay = 200;  // 0.2 ms
};

/// Deterministically derives the A record address for a name (the simulated
/// "authoritative" answer every resolver eventually agrees on).
std::uint32_t authoritative_ipv4(const dns::DnsName& name);

class DoxResolver {
 public:
  /// Creates the resolver's host on `network` and opens its listeners.
  DoxResolver(net::Network& network, const ResolverProfile& profile, Rng rng);

  DoxResolver(const DoxResolver&) = delete;
  DoxResolver& operator=(const DoxResolver&) = delete;
  ~DoxResolver();

  const ResolverProfile& profile() const { return profile_; }
  net::Host& host() { return *host_; }
  dns::Cache& cache() { return cache_; }

  /// Counters (per protocol) for tests and the scan module.
  std::uint64_t queries_served(dox::DnsProtocol protocol) const {
    return served_[static_cast<int>(protocol)];
  }

 private:
  struct DotConn;
  struct DohConn;

  void open_listeners();
  tls::TlsConfig server_tls_config(const std::string& alpn) const;
  quic::QuicConfig server_quic_config() const;

  /// Resolves `question` (cache or simulated recursion), then calls
  /// `respond` with the complete response message.
  void handle_query(dox::DnsProtocol protocol, const dns::Message& query,
                    std::function<void(dns::Message)> respond);

  void serve_doudp();
  void serve_dotcp();
  void serve_dot();
  void serve_doh();
  void serve_doq();
  void serve_doh3();

  net::Network& network_;
  ResolverProfile profile_;
  Rng rng_;
  net::Host* host_;
  std::unique_ptr<net::UdpStack> udp_;
  std::unique_ptr<tcp::TcpStack> tcp_;
  dns::Cache cache_;

  std::unique_ptr<net::UdpSocket> udp53_;
  std::vector<std::unique_ptr<quic::QuicServer>> quic_servers_;
  std::vector<std::shared_ptr<DotConn>> dot_conns_;
  std::vector<std::shared_ptr<DohConn>> doh_conns_;
  /// Server-side H3 sessions (boxed so the accept handler can create the
  /// session after wiring callbacks that reference it weakly).
  std::vector<std::shared_ptr<std::unique_ptr<h3::H3Connection>>>
      doh3_conns_;

  std::uint64_t served_[6] = {0, 0, 0, 0, 0, 0};
};

}  // namespace doxlab::resolver
