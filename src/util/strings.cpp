#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace doxlab {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  std::string out(width - s.size(), ' ');
  out.append(s);
  return out;
}

}  // namespace doxlab
