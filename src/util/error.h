// Typed failure taxonomy shared by every layer of the stack.
//
// The paper's methodology hinges on knowing *why* a query failed — DoUDP's
// 5 s retry tail, DoTCP's fresh-connection penalty, resolvers answering
// REFUSED — so failures carry a machine-readable class instead of a
// free-form string. The class drives control flow (the engine's retry and
// fallback policy, the failure-rate report); `detail` is human context only
// and must never be string-matched.
//
// Layer mapping (see DESIGN.md §8 for the full table):
//   tcp     -> kConnRefused (RST to our SYN), kConnReset (RST established),
//              kTimeout (retransmit exhaustion)
//   tls     -> kTlsAlert (every fatal handshake/record failure)
//   quic    -> kTimeout (idle / PTO exhaustion), kQuicTransportError (peer
//              CONNECTION_CLOSE with an error code), kProtocolError
//              (malformed CRYPTO flights), kTlsAlert (no ALPN overlap)
//   h2/h3   -> kProtocolError
//   dox     -> kTimeout (query timer), kTruncated (short/empty responses),
//              kProtocolError (garbage framing, bad HTTP status)
//   engine  -> kRcode (REFUSED et al. walked past), kNoRoute (no upstream)
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>

namespace doxlab::util {

/// Machine-readable failure class. Keep kCount last; switches over this
/// enum are kept exhaustive by -Werror=switch.
enum class ErrorClass : std::uint8_t {
  kNone = 0,            ///< success / clean close
  kTimeout,             ///< timer expiry at any layer
  kConnRefused,         ///< RST in response to our SYN
  kConnReset,           ///< RST on an established connection
  kTlsAlert,            ///< fatal TLS handshake or record failure
  kQuicTransportError,  ///< peer CONNECTION_CLOSE with an error code
  kProtocolError,       ///< malformed peer bytes above the secure channel
  kTruncated,           ///< response shorter than its framing promised
  kRcode,               ///< semantically valid DNS answer with error RCODE
  kCancelled,           ///< caller tore the query down before completion
  kNoRoute,             ///< no usable upstream / destination
};

inline constexpr std::size_t kErrorClassCount = 11;

/// All classes in declaration order (report columns, counters).
inline constexpr std::array<ErrorClass, kErrorClassCount> kAllErrorClasses = {
    ErrorClass::kNone,          ErrorClass::kTimeout,
    ErrorClass::kConnRefused,   ErrorClass::kConnReset,
    ErrorClass::kTlsAlert,      ErrorClass::kQuicTransportError,
    ErrorClass::kProtocolError, ErrorClass::kTruncated,
    ErrorClass::kRcode,         ErrorClass::kCancelled,
    ErrorClass::kNoRoute,
};

/// Stable short name ("timeout", "conn_refused", ...) used in CSV headers.
std::string_view error_class_name(ErrorClass cls);

/// Shared detail for query-deadline expiry. The transport query timer and
/// the engine's per-attempt timer used to carry two different strings
/// ("query timed out" / "attempt timeout"); both are one kTimeout constant
/// now so no consumer can tell them apart by matching text.
inline constexpr std::string_view kQueryDeadlineDetail =
    "query deadline exceeded";

/// One failure: a class that drives policy plus free-form human context.
struct Error {
  ErrorClass cls = ErrorClass::kNone;
  /// Human-readable context. Diagnostics only — never branch on it.
  std::string detail;
  /// DNS RCODE when cls == kRcode (raw value; util cannot depend on dns).
  std::uint8_t rcode = 0;

  bool ok() const { return cls == ErrorClass::kNone; }
  /// "timeout: query timer expired" / "rcode(5): upstream answered REFUSED".
  std::string to_string() const;

  static Error none() { return {}; }
  static Error timeout(std::string detail = {}) {
    return {ErrorClass::kTimeout, std::move(detail), 0};
  }
  static Error conn_refused(std::string detail = {}) {
    return {ErrorClass::kConnRefused, std::move(detail), 0};
  }
  static Error conn_reset(std::string detail = {}) {
    return {ErrorClass::kConnReset, std::move(detail), 0};
  }
  static Error tls_alert(std::string detail = {}) {
    return {ErrorClass::kTlsAlert, std::move(detail), 0};
  }
  static Error quic_transport(std::string detail = {}) {
    return {ErrorClass::kQuicTransportError, std::move(detail), 0};
  }
  static Error protocol(std::string detail = {}) {
    return {ErrorClass::kProtocolError, std::move(detail), 0};
  }
  static Error truncated(std::string detail = {}) {
    return {ErrorClass::kTruncated, std::move(detail), 0};
  }
  static Error rcode_error(std::uint8_t rcode, std::string detail = {}) {
    return {ErrorClass::kRcode, std::move(detail), rcode};
  }
  static Error cancelled(std::string detail = {}) {
    return {ErrorClass::kCancelled, std::move(detail), 0};
  }
  static Error no_route(std::string detail = {}) {
    return {ErrorClass::kNoRoute, std::move(detail), 0};
  }

  friend bool operator==(const Error&, const Error&) = default;
};

std::ostream& operator<<(std::ostream& os, const Error& e);

/// Success-or-typed-error carrier for one completed operation. Default-
/// constructed outcomes are *failures* (kCancelled, "not completed") so a
/// result that was never finished can't read as success.
class Outcome {
 public:
  Outcome() : error_(Error::cancelled("not completed")) {}

  static Outcome success() {
    Outcome o;
    o.error_ = Error::none();
    return o;
  }
  static Outcome failure(Error e) {
    Outcome o;
    o.error_ = std::move(e);
    return o;
  }

  bool ok() const { return error_.ok(); }
  const Error& error() const { return error_; }
  ErrorClass cls() const { return error_.cls; }

 private:
  Error error_;
};

/// Per-class event counters (engine stats, failure-rate report).
class ErrorCounters {
 public:
  void record(ErrorClass cls) { ++counts_[index(cls)]; }
  std::uint64_t count(ErrorClass cls) const { return counts_[index(cls)]; }
  /// Accumulates another counter set (aggregating per-pool tallies).
  void add(const ErrorCounters& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }
  /// Sum over every class except kNone.
  std::uint64_t total_errors() const;
  bool empty() const { return total_errors() == 0; }

 private:
  static std::size_t index(ErrorClass cls) {
    return static_cast<std::size_t>(cls);
  }
  std::array<std::uint64_t, kErrorClassCount> counts_{};
};

}  // namespace doxlab::util
