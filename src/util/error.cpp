#include "util/error.h"

#include <ostream>

namespace doxlab::util {

std::string_view error_class_name(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kNone:
      return "none";
    case ErrorClass::kTimeout:
      return "timeout";
    case ErrorClass::kConnRefused:
      return "conn_refused";
    case ErrorClass::kConnReset:
      return "conn_reset";
    case ErrorClass::kTlsAlert:
      return "tls_alert";
    case ErrorClass::kQuicTransportError:
      return "quic_transport_error";
    case ErrorClass::kProtocolError:
      return "protocol_error";
    case ErrorClass::kTruncated:
      return "truncated";
    case ErrorClass::kRcode:
      return "rcode";
    case ErrorClass::kCancelled:
      return "cancelled";
    case ErrorClass::kNoRoute:
      return "no_route";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out{error_class_name(cls)};
  if (cls == ErrorClass::kRcode) {
    out += "(" + std::to_string(static_cast<int>(rcode)) + ")";
  }
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Error& e) {
  return os << e.to_string();
}

std::uint64_t ErrorCounters::total_errors() const {
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i) total += counts_[i];
  return total;
}

}  // namespace doxlab::util
