#include "util/buffer.h"

#include <algorithm>
#include <bit>
#include <new>

namespace doxlab::util {

namespace {

// Thread teardown can outlive buffers held by statics; the release path
// consults this pointer and falls back to a plain delete once the pool is
// gone. Set by the holder's constructor, cleared by its destructor.
thread_local BufferPool* g_local_pool = nullptr;

struct PoolHolder {
  BufferPool pool;
  PoolHolder() { g_local_pool = &pool; }
  ~PoolHolder() { g_local_pool = nullptr; }
};

int class_for(std::size_t bytes) {
  if (bytes > BufferPool::kMaxPooledBytes) return -1;
  const std::size_t rounded =
      std::bit_ceil(std::max(bytes, BufferPool::kMinSlabBytes));
  return std::countr_zero(rounded) - std::countr_zero(BufferPool::kMinSlabBytes);
}

std::size_t class_bytes(int cls) { return BufferPool::kMinSlabBytes << cls; }

detail::Slab* new_slab(std::size_t capacity, std::uint8_t cls) {
  void* mem = ::operator new(sizeof(detail::Slab) + capacity);
  auto* slab = new (mem) detail::Slab;
  slab->refs = 1;
  slab->capacity = static_cast<std::uint32_t>(capacity);
  slab->size_class = cls;
  slab->flags = 0;
  return slab;
}

// Free slabs store the next-pointer in their own payload bytes.
detail::Slab*& next_of(detail::Slab* slab) {
  return *reinterpret_cast<detail::Slab**>(slab->storage());
}

// Free lists adapt to the observed high-water mark instead of a fixed cap:
// a cell that keeps 3 buffers in flight caches ~3, a loaded forwarder more.
std::uint32_t cache_cap(std::uint32_t high_water) {
  return std::clamp<std::uint32_t>(high_water, 8, 1024);
}

}  // namespace

namespace detail {

void release_slab(Slab* slab) {
  BufferPool* pool = g_local_pool;
  if (slab->size_class == kUnpooled || pool == nullptr) {
    ::operator delete(slab);
    return;
  }
  pool->recycle(slab);
}

}  // namespace detail

BufferPool& BufferPool::local() {
  static thread_local PoolHolder holder;
  return holder.pool;
}

Buffer BufferPool::allocate(std::size_t capacity, std::size_t headroom) {
  const std::size_t total = capacity + headroom;
  const int cls = class_for(total);
  detail::Slab* slab = nullptr;
  if (cls < 0) {
    ++oversize_;
    slab = new_slab(total, detail::kUnpooled);
  } else if (free_[cls] != nullptr) {
    slab = free_[cls];
    free_[cls] = next_of(slab);
    --free_count_[cls];
    slab->refs = 1;
    slab->flags = 0;  // a recycled shared slab goes back to non-atomic
    ++reuses_;
  } else {
    ++fresh_allocs_;
    slab = new_slab(class_bytes(cls), static_cast<std::uint8_t>(cls));
  }
  if (cls >= 0) {
    ++live_[cls];
    high_water_[cls] = std::max(high_water_[cls], live_[cls]);
  }
  return Buffer(slab, slab->storage() + headroom, 0);
}

void BufferPool::recycle(detail::Slab* slab) {
  const int cls = slab->size_class;
  if (live_[cls] > 0) --live_[cls];
  if (free_count_[cls] >= cache_cap(high_water_[cls])) {
    ::operator delete(slab);
    return;
  }
  next_of(slab) = free_[cls];
  free_[cls] = slab;
  ++free_count_[cls];
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.fresh_allocs = fresh_allocs_;
  s.reuses = reuses_;
  s.oversize = oversize_;
  for (int c = 0; c < kClasses; ++c) {
    s.outstanding += live_[c];
    s.high_water += high_water_[c];
    s.cached += free_count_[c];
  }
  return s;
}

void BufferPool::trim() {
  for (int c = 0; c < kClasses; ++c) {
    while (free_[c] != nullptr) {
      detail::Slab* slab = free_[c];
      free_[c] = next_of(slab);
      ::operator delete(slab);
    }
    free_count_[c] = 0;
  }
}

BufferPool::~BufferPool() { trim(); }

Buffer Buffer::allocate(std::size_t capacity, std::size_t headroom) {
  return BufferPool::local().allocate(capacity, headroom);
}

Buffer Buffer::copy_of(std::span<const std::uint8_t> bytes,
                       std::size_t headroom) {
  Buffer buf = BufferPool::local().allocate(bytes.size(), headroom);
  if (!bytes.empty()) {
    std::memcpy(buf.data_, bytes.data(), bytes.size());
  }
  buf.len_ = bytes.size();
  return buf;
}

void Buffer::reallocate(std::size_t new_headroom, std::size_t new_tailroom) {
  Buffer grown =
      BufferPool::local().allocate(len_ + new_tailroom, new_headroom);
  if (len_ != 0) std::memcpy(grown.data_, data_, len_);
  grown.len_ = len_;
  swap(grown);
}

std::uint8_t* Buffer::prepend(std::size_t n) {
  if (!unique() || headroom() < n) {
    // Copy-on-write / room miss: give the copy generous front slack so a
    // retried prepend sequence stays in place.
    reallocate(std::max<std::size_t>(n, 64), tailroom());
  }
  data_ -= n;
  len_ += n;
  return data_;
}

std::uint8_t* Buffer::append(std::size_t n) {
  if (!unique() || tailroom() < n) {
    const std::size_t slack =
        std::max<std::size_t>(n, slab_ == nullptr ? 0 : slab_->capacity);
    reallocate(headroom(), slack);
  }
  std::uint8_t* out = data_ + len_;
  len_ += n;
  return out;
}

void Buffer::assign(std::span<const std::uint8_t> bytes) {
  if (!unique() || slab_->capacity < bytes.size()) {
    Buffer fresh = copy_of(bytes);
    swap(fresh);
    return;
  }
  data_ = slab_->storage();
  if (!bytes.empty()) std::memcpy(data_, bytes.data(), bytes.size());
  len_ = bytes.size();
}

}  // namespace doxlab::util
