#include "util/bytes.h"

namespace doxlab {

void ByteWriter::u16(std::uint16_t v) {
  std::uint8_t* out = grab(2);
  out[0] = static_cast<std::uint8_t>(v >> 8);
  out[1] = static_cast<std::uint8_t>(v);
}

void ByteWriter::u32(std::uint32_t v) {
  std::uint8_t* out = grab(4);
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

void ByteWriter::u64(std::uint64_t v) {
  std::uint8_t* out = grab(8);
  for (int shift = 56; shift >= 0; shift -= 8) {
    *out++ = static_cast<std::uint8_t>(v >> shift);
  }
}

void ByteWriter::varint(std::uint64_t v) {
  // RFC 9000 §16: the two most significant bits of the first byte encode the
  // length (00=1, 01=2, 10=4, 11=8 bytes).
  if (v < (1ull << 6)) {
    u8(static_cast<std::uint8_t>(v));
  } else if (v < (1ull << 14)) {
    u16(static_cast<std::uint16_t>(v | 0x4000));
  } else if (v < (1ull << 30)) {
    u32(static_cast<std::uint32_t>(v | 0x80000000u));
  } else {
    u64(v | 0xC000000000000000ull);
  }
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  std::memcpy(grab(data.size()), data.data(), data.size());
}

void ByteWriter::bytes(std::string_view data) {
  if (data.empty()) return;
  std::memcpy(grab(data.size()), data.data(), data.size());
}

void ByteWriter::pad(std::size_t n, std::uint8_t fill) {
  if (n == 0) return;
  std::memset(grab(n), fill, n);
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (pooled_mode_) {
    std::uint8_t* at = pooled_.data() + base_ + offset;
    at[0] = static_cast<std::uint8_t>(v >> 8);
    at[1] = static_cast<std::uint8_t>(v);
    return;
  }
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::optional<std::uint64_t> ByteReader::varint() {
  auto first = u8();
  if (!first) return std::nullopt;
  const int len = 1 << (*first >> 6);
  std::uint64_t v = *first & 0x3F;
  for (int i = 1; i < len; ++i) {
    auto b = u8();
    if (!b) return std::nullopt;
    v = (v << 8) | *b;
  }
  return v;
}

std::optional<std::span<const std::uint8_t>> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::optional<std::string> ByteReader::string(std::size_t n) {
  auto b = bytes(n);
  if (!b) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(b->data()), b->size());
}

bool ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) return false;
  pos_ = offset;
  return true;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

}  // namespace doxlab
