// Byte-buffer reader/writer used by every wire-format codec in doxlab.
//
// The codecs (DNS, QUIC varints, HTTP/2 frames, TLS records) all operate on
// network byte order (big-endian). `ByteWriter` grows an owned buffer;
// `ByteReader` is a non-owning cursor over caller-provided bytes and reports
// truncation instead of reading past the end.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace doxlab {

/// Growable big-endian byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// QUIC RFC 9000 §16 variable-length integer (1/2/4/8 bytes).
  void varint(std::uint64_t v);

  void bytes(std::span<const std::uint8_t> data);
  void bytes(std::string_view data);

  /// Appends `n` copies of `fill` (used for QUIC INITIAL padding).
  void pad(std::size_t n, std::uint8_t fill = 0);

  /// Overwrites two bytes at `offset` (for back-patched length fields).
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> view() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Non-owning big-endian cursor. All reads return std::nullopt on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();

  /// QUIC RFC 9000 §16 variable-length integer.
  std::optional<std::uint64_t> varint();

  /// Reads exactly `n` bytes; nullopt if fewer remain.
  std::optional<std::span<const std::uint8_t>> bytes(std::size_t n);

  /// Reads `n` bytes into a std::string.
  std::optional<std::string> string(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  /// Moves the cursor to an absolute offset (for DNS compression pointers).
  /// Returns false if the offset is out of range.
  bool seek(std::size_t offset);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex dump (lowercase, no separators) — used in tests and diagnostics.
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace doxlab
