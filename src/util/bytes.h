// Byte-buffer reader/writer used by every wire-format codec in doxlab.
//
// The codecs (DNS, QUIC varints, HTTP/2 frames, TLS records) all operate on
// network byte order (big-endian). `ByteWriter` grows an owned buffer;
// `ByteReader` is a non-owning cursor over caller-provided bytes and reports
// truncation instead of reading past the end.
//
// ByteWriter has two backends behind one interface: the classic
// std::vector (default) and a pooled util::Buffer whose headroom lets
// outer protocol layers prepend their framing in place (see util/buffer.h).
// Offsets passed to patch_u16 and values returned by size() are always
// relative to the writer's own start, whichever backend is active.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/buffer.h"

namespace doxlab {

/// Growable big-endian byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Pooled mode: appends into `buf` (after any existing content — the
  /// writer's offset 0 is the buffer's current end). take_buffer() hands
  /// back the buffer, headroom intact, for in-place framing.
  explicit ByteWriter(util::Buffer buf)
      : pooled_(std::move(buf)), base_(pooled_.size()), pooled_mode_(true) {}

  /// Pooled-mode writer over a fresh slab sized for `capacity` payload
  /// bytes plus `headroom` reserved front bytes.
  static ByteWriter pooled(std::size_t capacity, std::size_t headroom) {
    return ByteWriter(util::Buffer::allocate(capacity, headroom));
  }

  void u8(std::uint8_t v) { *grab(1) = v; }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// QUIC RFC 9000 §16 variable-length integer (1/2/4/8 bytes).
  void varint(std::uint64_t v);

  void bytes(std::span<const std::uint8_t> data);
  void bytes(std::string_view data);

  /// Appends `n` copies of `fill` (used for QUIC INITIAL padding).
  void pad(std::size_t n, std::uint8_t fill = 0);

  /// Overwrites two bytes at `offset` (for back-patched length fields).
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const {
    return pooled_mode_ ? pooled_.size() - base_ : buf_.size();
  }
  std::span<const std::uint8_t> view() const {
    return pooled_mode_
               ? std::span<const std::uint8_t>(pooled_.data() + base_, size())
               : std::span<const std::uint8_t>(buf_);
  }
  /// The written bytes as a vector: moved out in vector mode, copied in
  /// pooled mode (pooled callers should use take_buffer()).
  std::vector<std::uint8_t> take() {
    if (!pooled_mode_) return std::move(buf_);
    return {pooled_.data() + base_, pooled_.data() + pooled_.size()};
  }
  /// Pooled mode only: the backing buffer (prior content + written bytes).
  util::Buffer take_buffer() { return std::move(pooled_); }
  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  /// Extends the backend by `n` bytes and returns the write cursor.
  std::uint8_t* grab(std::size_t n) {
    if (!pooled_mode_) {
      const std::size_t at = buf_.size();
      buf_.resize(at + n);
      return buf_.data() + at;
    }
    return pooled_.append(n);
  }

  std::vector<std::uint8_t> buf_;
  util::Buffer pooled_;
  std::size_t base_ = 0;
  bool pooled_mode_ = false;
};

/// Non-owning big-endian cursor. All reads return std::nullopt on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();

  /// QUIC RFC 9000 §16 variable-length integer.
  std::optional<std::uint64_t> varint();

  /// Reads exactly `n` bytes; nullopt if fewer remain.
  std::optional<std::span<const std::uint8_t>> bytes(std::size_t n);

  /// Reads `n` bytes into a std::string.
  std::optional<std::string> string(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  /// Moves the cursor to an absolute offset (for DNS compression pointers).
  /// Returns false if the offset is out of range.
  bool seek(std::size_t offset);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex dump (lowercase, no separators) — used in tests and diagnostics.
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace doxlab
