// Pooled, headroom-aware byte buffers — the zero-copy backbone of the
// transport stack.
//
// A `Buffer` is a ref-counted handle onto a heap slab with reserved
// *headroom* in front of the payload and *tailroom* behind it. Encoders
// write the innermost payload once (DNS message, HTTP body) and each outer
// layer *prepends its framing in place* — DoT length prefix, H2/H3 frame
// header, TLS record header, QUIC packet header — instead of re-copying
// the payload into a fresh vector per layer. The receive path hands the
// same slab up the stack and parses `std::span` views over it.
//
// Slabs come from a thread-local `BufferPool` free list with power-of-two
// size classes and high-water-mark sizing, so a steady-state forwarder
// recycles the same few slabs and performs zero heap allocations per
// query. Refcounts are non-atomic by default: the simulator confines each
// campaign cell (and therefore every buffer it creates) to a single worker
// thread, mirroring the CorePtr design in src/sim. A slab released on a
// thread other than its allocator simply returns to *that* thread's pool —
// slabs carry no owner pointer, so sequential cross-thread handoff (move a
// buffer, synchronize, use it over there) is safe.
//
// Concurrent sharing of one slab across threads needs an explicit opt-in:
// `share()` flips the slab to atomic refcounting (std::atomic_ref on the
// same counter word), after which copies may be taken and dropped from any
// thread — the contract the sharded engine's L2 packet cache relies on,
// where one shard encodes an answer and every other shard may hold a
// reference to it concurrently. Call share() *before* publishing the buffer
// to other threads; whichever thread drops the last reference recycles the
// slab into its own pool (the flag is cleared on reuse). Unshared buffers
// keep the single-branch non-atomic fast path.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace doxlab::util {

class BufferPool;

namespace detail {

/// Slab header; payload storage follows contiguously. 8-byte alignment
/// keeps the storage area pointer-aligned: free slabs park their intrusive
/// next-pointer in the first payload bytes.
struct alignas(8) Slab {
  std::uint32_t refs;      ///< non-atomic unless kSharedFlag is set
  std::uint32_t capacity;  ///< storage bytes following this header
  std::uint8_t size_class; ///< pool class index; kUnpooled for oversize
  std::uint8_t flags;      ///< kSharedFlag: refcount ops go atomic
  std::uint8_t* storage() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  const std::uint8_t* storage() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
  bool is_shared() const { return (flags & kSharedFlag) != 0; }

  static constexpr std::uint8_t kSharedFlag = 0x01;
};

inline constexpr std::uint8_t kUnpooled = 0xFF;

/// Returns the slab to the releasing thread's pool (or frees it outright
/// when oversize or during thread teardown).
void release_slab(Slab* slab);

}  // namespace detail

/// Ref-counted view-adjustable byte buffer. Copying bumps a refcount and
/// shares the slab (treat shared contents as immutable); moving transfers
/// ownership. `prepend`/`append` mutate in place while the buffer is
/// uniquely owned and the reserved room suffices, and fall back to a
/// copy-on-write reallocation otherwise — correctness never depends on the
/// headroom budget being right, only speed does.
class Buffer {
 public:
  Buffer() = default;
  Buffer(const Buffer& other) : slab_(other.slab_), data_(other.data_),
                                len_(other.len_) {
    retain();
  }
  Buffer(Buffer&& other) noexcept
      : slab_(other.slab_), data_(other.data_), len_(other.len_) {
    other.slab_ = nullptr;
    other.data_ = nullptr;
    other.len_ = 0;
  }
  Buffer& operator=(const Buffer& other) {
    Buffer tmp(other);
    swap(tmp);
    return *this;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    swap(other);
    return *this;
  }
  ~Buffer() { release(); }

  void swap(Buffer& other) noexcept {
    std::swap(slab_, other.slab_);
    std::swap(data_, other.data_);
    std::swap(len_, other.len_);
  }

  /// Pool-allocates an empty buffer able to hold `capacity` payload bytes
  /// after `headroom` reserved front bytes.
  static Buffer allocate(std::size_t capacity, std::size_t headroom = 0);

  /// Pool-allocates a copy of `bytes` with `headroom` reserved in front.
  static Buffer copy_of(std::span<const std::uint8_t> bytes,
                        std::size_t headroom = 0);

  const std::uint8_t* data() const { return data_; }
  std::uint8_t* data() { return data_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  std::span<const std::uint8_t> view() const { return {data_, len_}; }
  operator std::span<const std::uint8_t>() const { return {data_, len_}; }

  /// Unused bytes in front of / behind the payload (0 for a null buffer).
  std::size_t headroom() const {
    return slab_ == nullptr ? 0
                            : static_cast<std::size_t>(data_ - slab_->storage());
  }
  std::size_t tailroom() const {
    return slab_ == nullptr ? 0 : slab_->capacity - headroom() - len_;
  }
  bool unique() const {
    if (slab_ == nullptr) return false;
    if (!slab_->is_shared()) return slab_->refs == 1;
    return std::atomic_ref<std::uint32_t>(slab_->refs)
               .load(std::memory_order_acquire) == 1;
  }

  /// Opts the slab into atomic refcounting so copies of this buffer may be
  /// taken and released concurrently from other threads. Must be called
  /// while the slab is still confined to the calling thread (i.e. before
  /// the buffer is published through a lock, queue, or other
  /// synchronization edge — that edge also publishes the flag). Idempotent;
  /// no-op on a null buffer. Treat shared contents as immutable: in-place
  /// mutation still requires unique ownership.
  void share() {
    if (slab_ != nullptr) slab_->flags |= detail::Slab::kSharedFlag;
  }
  bool is_shared() const { return slab_ != nullptr && slab_->is_shared(); }

  /// Grows the payload by `n` front bytes and returns a pointer to them
  /// (in place when uniquely owned with enough headroom).
  std::uint8_t* prepend(std::size_t n);
  /// Grows the payload by `n` back bytes and returns a pointer to them.
  std::uint8_t* append(std::size_t n);

  /// Shrinks the view from the front/back without touching the bytes.
  void drop_front(std::size_t n) { data_ += n; len_ -= n; }
  void drop_back(std::size_t n) { len_ -= n; }

  /// Replaces the contents with `bytes`, reusing the slab when uniquely
  /// owned and large enough.
  void assign(std::span<const std::uint8_t> bytes);

  /// Releases the slab and becomes a null buffer.
  void clear() {
    release();
    slab_ = nullptr;
    data_ = nullptr;
    len_ = 0;
  }

 private:
  friend class BufferPool;
  Buffer(detail::Slab* slab, std::uint8_t* data, std::size_t len)
      : slab_(slab), data_(data), len_(len) {}

  void retain() {
    if (slab_ == nullptr) return;
    if (!slab_->is_shared()) {
      ++slab_->refs;
      return;
    }
    std::atomic_ref<std::uint32_t>(slab_->refs)
        .fetch_add(1, std::memory_order_relaxed);
  }
  void release() {
    if (slab_ == nullptr) return;
    if (!slab_->is_shared()) {
      if (--slab_->refs == 0) detail::release_slab(slab_);
      return;
    }
    // acq_rel: the last release must observe every other thread's writes
    // through the slab before recycling it.
    if (std::atomic_ref<std::uint32_t>(slab_->refs)
            .fetch_sub(1, std::memory_order_acq_rel) == 1) {
      detail::release_slab(slab_);
    }
  }
  /// Moves to a fresh uniquely-owned slab with the requested room.
  void reallocate(std::size_t new_headroom, std::size_t new_tailroom);

  detail::Slab* slab_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
};

/// Non-owning view with the same surface tests use for Buffer contents.
/// Prefer std::span in new APIs; BufferView adds only convenience accessors.
class BufferView {
 public:
  BufferView() = default;
  BufferView(const Buffer& buffer) : data_(buffer.data()), len_(buffer.size()) {}
  BufferView(std::span<const std::uint8_t> bytes)
      : data_(bytes.data()), len_(bytes.size()) {}

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  operator std::span<const std::uint8_t>() const { return {data_, len_}; }
  std::span<const std::uint8_t> subview(std::size_t offset,
                                        std::size_t count) const {
    return std::span<const std::uint8_t>(data_ + offset, count);
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
};

/// Thread-local slab recycler. Free lists are per power-of-two size class
/// (512 B … 64 KiB; larger slabs bypass the pool), each capped at its
/// observed high-water mark of concurrently outstanding slabs, so the pool
/// adapts to the workload instead of hoarding.
class BufferPool {
 public:
  static constexpr std::size_t kMinSlabBytes = 512;
  static constexpr std::size_t kMaxPooledBytes = 64 * 1024;
  static constexpr int kClasses = 8;  // 512 << 0 … 512 << 7

  struct Stats {
    std::uint64_t fresh_allocs = 0;  ///< slabs taken from the heap
    std::uint64_t reuses = 0;        ///< slabs recycled from a free list
    std::uint64_t oversize = 0;      ///< unpooled (> kMaxPooledBytes) allocs
    std::uint64_t outstanding = 0;   ///< live slabs right now
    std::uint64_t high_water = 0;    ///< max simultaneously live slabs
    std::uint64_t cached = 0;        ///< slabs parked on free lists
  };

  /// The calling thread's pool.
  static BufferPool& local();

  Buffer allocate(std::size_t capacity, std::size_t headroom);
  Stats stats() const;
  /// Frees every cached slab (tests use this to probe recycling).
  void trim();

  ~BufferPool();

 private:
  friend void detail::release_slab(detail::Slab* slab);
  void recycle(detail::Slab* slab);

  detail::Slab* free_[kClasses] = {};   // intrusive singly-linked free lists
  std::uint32_t free_count_[kClasses] = {};
  std::uint32_t live_[kClasses] = {};       // outstanding per class
  std::uint32_t high_water_[kClasses] = {}; // per-class high-water mark
  std::uint64_t fresh_allocs_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t oversize_ = 0;
};

}  // namespace doxlab::util
