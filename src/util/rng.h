// Deterministic random number generation for the simulation.
//
// Every source of randomness in doxlab (latency jitter, packet loss, feature
// assignment across the resolver population, workload schedules) draws from
// an `Rng` that is ultimately seeded from the study seed, which makes every
// experiment reproducible bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace doxlab {

/// SplitMix64 finalizer (Steele et al., "Fast splittable PRNGs"): `seed`
/// selects the stream, the (1-based) `index` walks it. Well-spread and
/// collision-free in practice, so independent per-entity seeds (campaign
/// cells, load-generator client addresses, attack bots) can all be derived
/// from one study seed without coordination.
constexpr std::uint64_t splitmix64(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Seedable RNG with the distribution helpers the simulation needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream so adding draws in one place does not perturb another.
  Rng fork();

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p);

  /// Normal distribution (mean, stddev).
  double normal(double mean, double stddev);

  /// Log-normal distribution parameterized by the *underlying* normal.
  double lognormal(double mu, double sigma);

  /// Exponential distribution with the given mean.
  double exponential(double mean);

  /// Picks an index in [0, weights.size()) proportionally to `weights`.
  /// Precondition: weights is non-empty and sums to a positive value.
  std::size_t weighted_index(std::span<const double> weights);

  /// Shuffles a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace doxlab
