// Minimal leveled logging used for debugging protocol state machines.
//
// Logging is off (kError) by default so that studies with hundreds of
// thousands of simulated queries stay quiet and fast; tests flip the level
// when diagnosing a failure.
#pragma once

#include <sstream>
#include <string>

namespace doxlab {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold (process-wide; not thread safe by design — the
/// simulator is single-threaded).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace doxlab

#define DOXLAB_LOG(level, expr)                                     \
  do {                                                              \
    if (static_cast<int>(level) <=                                  \
        static_cast<int>(::doxlab::log_level())) {                  \
      std::ostringstream oss_;                                      \
      oss_ << expr;                                                 \
      ::doxlab::detail::log_line(level, oss_.str());                \
    }                                                               \
  } while (0)

#define DOXLAB_DEBUG(expr) DOXLAB_LOG(::doxlab::LogLevel::kDebug, expr)
#define DOXLAB_INFO(expr) DOXLAB_LOG(::doxlab::LogLevel::kInfo, expr)
#define DOXLAB_WARN(expr) DOXLAB_LOG(::doxlab::LogLevel::kWarn, expr)
#define DOXLAB_ERROR(expr) DOXLAB_LOG(::doxlab::LogLevel::kError, expr)
