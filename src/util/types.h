// Fundamental scalar types shared across doxlab.
//
// All simulated time is kept in integer microseconds (`SimTime`). Integer
// time keeps the discrete-event simulation exactly reproducible across
// platforms: no floating point accumulation order can change an event order.
#pragma once

#include <cstdint>

namespace doxlab {

/// Absolute simulated time or a duration, in microseconds.
using SimTime = std::int64_t;

/// One microsecond (the base unit).
inline constexpr SimTime kMicrosecond = 1;
/// One millisecond in `SimTime` units.
inline constexpr SimTime kMillisecond = 1000;
/// One second in `SimTime` units.
inline constexpr SimTime kSecond = 1000 * kMillisecond;
/// One minute in `SimTime` units.
inline constexpr SimTime kMinute = 60 * kSecond;
/// One hour in `SimTime` units.
inline constexpr SimTime kHour = 60 * kMinute;
/// One day in `SimTime` units.
inline constexpr SimTime kDay = 24 * kHour;

/// Sentinel for "no deadline" / "never".
inline constexpr SimTime kSimTimeNever = INT64_MAX;

/// Converts a `SimTime` duration to fractional milliseconds (for reporting).
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1000.0; }

/// Converts fractional milliseconds to `SimTime` (rounds toward zero).
constexpr SimTime from_ms(double ms) {
  return static_cast<SimTime>(ms * 1000.0);
}

}  // namespace doxlab
