#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace doxlab {

Rng Rng::fork() {
  // Mix two draws so that sibling forks differ even for adjacent seeds.
  std::uint64_t a = engine_();
  std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9E3779B97F4A7C15ull);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  assert(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0);
  double x = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace doxlab
