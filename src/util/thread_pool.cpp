#include "util/thread_pool.h"

#include <atomic>
#include <exception>

namespace doxlab::util {

struct ThreadPool::Batch {
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::mutex error_mutex;
  std::exception_ptr first_error;
};

ThreadPool::ThreadPool(int threads) {
  std::size_t n = threads > 0 ? static_cast<std::size_t>(threads)
                              : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  Batch batch;
  batch.remaining.store(count, std::memory_order_relaxed);

  // Round-robin initial distribution; stealing evens out any imbalance.
  for (std::size_t i = 0; i < count; ++i) {
    WorkerQueue& queue = *queues_[i % queues_.size()];
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(Task{&fn, i, &batch});
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    queued_ += count;
  }
  wake_cv_.notify_all();

  // The calling thread participates: drain queued tasks alongside the
  // workers until none are left, then sleep out the stragglers still
  // running on workers. With a single-worker pool this is what keeps two
  // interdependent tasks from serializing onto one thread.
  Task task;
  while (batch.remaining.load(std::memory_order_acquire) > 0 &&
         try_steal_task(task)) {
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      --queued_;
    }
    run_task(task);
  }

  std::unique_lock<std::mutex> lock(batch.done_mutex);
  batch.done_cv.wait(lock, [&] {
    return batch.remaining.load(std::memory_order_acquire) == 0;
  });
  lock.unlock();

  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [&] { return shutdown_ || queued_ > 0; });
      if (shutdown_ && queued_ == 0) return;
    }
    Task task;
    while (try_get_task(worker_index, task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --queued_;
      }
      run_task(task);
    }
  }
}

bool ThreadPool::try_steal_task(Task& out) {
  // The caller owns no deque, so it robs every queue from the front, the
  // same FIFO discipline worker-to-worker steals use.
  for (auto& queue_ptr : queues_) {
    WorkerQueue& queue = *queue_ptr;
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (!queue.tasks.empty()) {
      out = queue.tasks.front();
      queue.tasks.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::try_get_task(std::size_t self, Task& out) {
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      out = own.tasks.back();
      own.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = victim.tasks.front();
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(const Task& task) {
  Batch& batch = *task.batch;
  try {
    (*task.fn)(task.index);
  } catch (...) {
    std::lock_guard<std::mutex> lock(batch.error_mutex);
    if (!batch.first_error) batch.first_error = std::current_exception();
  }
  if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: notify under the mutex so the waiter cannot miss it
    // between its predicate check and its wait.
    std::lock_guard<std::mutex> lock(batch.done_mutex);
    batch.done_cv.notify_all();
  }
}

}  // namespace doxlab::util
