// Small string helpers shared by the DNS codec and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace doxlab {

/// ASCII lower-casing (DNS names are case-insensitive; we canonicalize).
std::string to_lower(std::string_view s);

/// Splits on a single character; empty segments are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Formats a double with `digits` decimal places.
std::string fmt_double(double v, int digits);

/// Right-pads or truncates to exactly `width` characters.
std::string pad_right(std::string_view s, std::size_t width);

/// Left-pads to at least `width` characters.
std::string pad_left(std::string_view s, std::size_t width);

}  // namespace doxlab
