#include "util/logging.h"

#include <cstdio>

namespace doxlab {

namespace {
LogLevel g_level = LogLevel::kError;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace doxlab
