// A small work-stealing thread pool shared by every parallel subsystem —
// the campaign runner (one Testbed per cell) and the sharded forwarder
// engine (one shard world per task, re-dispatched every epoch).
//
// Each worker owns a deque: it pushes and pops work at the back (LIFO, warm
// caches) and victims are robbed from the front (FIFO, oldest tasks first —
// the classic Chase-Lev discipline, here with a per-deque mutex because
// tasks are whole simulations or simulation epochs, i.e. milliseconds to
// seconds each; lock traffic is noise at that granularity). `parallel_for`
// partitions an index space round-robin across workers so the initial
// distribution is balanced even before any stealing happens.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace doxlab::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; <= 0 means one per hardware thread.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(0) .. fn(count-1) across the pool and waits for all of them.
  /// The calling thread participates: it drains queued tasks alongside the
  /// workers and only sleeps once every task has been picked up. If any
  /// invocation throws, the first exception (by completion order) is
  /// rethrown after every task finished or was abandoned; remaining queued
  /// tasks still run.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct Batch;  // one parallel_for invocation's completion state

  struct Task {
    const std::function<void(std::size_t)>* fn;
    std::size_t index;
    Batch* batch;
  };

  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t worker_index);
  /// Pops from own back, then steals from other fronts. Returns false when
  /// no work is available anywhere.
  bool try_get_task(std::size_t self, Task& out);
  /// Steal for a thread without a queue of its own (the parallel_for
  /// caller): robs every queue front-first.
  bool try_steal_task(Task& out);
  static void run_task(const Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::size_t queued_ = 0;  // tasks not yet picked up, guarded by wake_mutex_
  bool shutdown_ = false;
};

}  // namespace doxlab::util
