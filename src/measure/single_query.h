// The single-query study (paper §3.1): per [vantage point x resolver x
// protocol x repetition], a cache-warming query followed by the measured
// query on a fresh session that reuses the warmed TLS ticket, QUIC version
// and address-validation token — the paper's dnsperf methodology.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cc/cc.h"
#include "dox/types.h"
#include "measure/testbed.h"

namespace doxlab::measure {

struct SingleQueryConfig {
  /// Measurements per [vp x resolver x protocol]. The paper ran 84
  /// (every 2 h for a week); the default keeps bench runtime sane.
  int repetitions = 2;
  std::vector<dox::DnsProtocol> protocols{std::begin(dox::kAllProtocols),
                                          std::end(dox::kAllProtocols)};
  std::string qname = "google.com";
  /// Cap resolvers per run (0 = all verified). Subsampling keeps the
  /// continent mix because verified resolvers interleave continents.
  int max_resolvers = 0;
  /// Methodology switches (the ablation bench flips these).
  bool use_session_resumption = true;
  bool attempt_0rtt = true;
  bool use_address_token = true;
  bool tcp_use_tfo = false;
  /// RFC 8467 padding on encrypted transports.
  bool pad_encrypted = false;
  /// RFC 9210-style connection reuse for DoTCP (off: the observed
  /// fresh-connection-per-query behaviour).
  bool tcp_reuse_connections = false;
  /// Real congestion control (adverse-path studies): NewReno/CUBIC on TCP
  /// transports and RFC 9002 CC on QUIC. Defaults keep the pinned baseline.
  cc::CcAlgorithm tcp_congestion = cc::CcAlgorithm::kLegacySlowStart;
  bool quic_enable_cc = false;
  /// Sharding filters used by the campaign runner: restrict the sweep to a
  /// single vantage point / resolver population index (-1 = no filter) and
  /// offset the `rep` recorded so merged shards reproduce a serial sweep.
  int only_vp = -1;
  int only_resolver = -1;
  int rep_base = 0;
};

struct SingleQueryRecord {
  int vp = 0;
  int resolver = 0;
  dox::DnsProtocol protocol = dox::DnsProtocol::kDoUdp;
  int rep = 0;
  bool success = false;
  /// Failure class when !success (util::ErrorClass::kNone on success).
  util::ErrorClass error_class = util::ErrorClass::kNone;
  SimTime handshake_time = 0;
  SimTime resolve_time = 0;
  SimTime total_time = 0;
  dox::WireStats bytes;
  std::optional<tls::TlsVersion> tls_version;
  std::optional<quic::QuicVersion> quic_version;
  std::string alpn;
  bool session_resumed = false;
  bool used_0rtt = false;
  int udp_retransmissions = 0;
};

class SingleQueryStudy {
 public:
  SingleQueryStudy(Testbed& testbed, SingleQueryConfig config)
      : testbed_(testbed), config_(std::move(config)) {}

  /// Runs the full schedule; returns one record per *successful-warming*
  /// measurement (failed measurements appear with success=false, matching
  /// the paper's per-protocol sample-count variation).
  std::vector<SingleQueryRecord> run();

 private:
  Testbed& testbed_;
  SingleQueryConfig config_;
};

}  // namespace doxlab::measure
