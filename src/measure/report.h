// Aggregations that regenerate the paper's tables and figures from raw
// study records, plus text renderers used by the bench binaries.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "measure/single_query.h"
#include "measure/web_study.h"
#include "stats/stats.h"

namespace doxlab::measure {

// ------------------------------------------------------------- Table 1

struct Table1Row {
  dox::DnsProtocol protocol = dox::DnsProtocol::kDoUdp;
  double total_bytes = 0;
  double handshake_c2r = 0;
  double handshake_r2c = 0;
  double query_bytes = 0;
  double response_bytes = 0;
  std::size_t samples = 0;  // successful single-query samples
};

/// Median per-phase wire bytes per protocol (successful measurements only).
std::vector<Table1Row> table1_sizes(
    const std::vector<SingleQueryRecord>& records);

std::string render_table1(const std::vector<Table1Row>& rows,
                          const std::vector<WebRecord>* web_records);

// ------------------------------------------------------------- Fig. 2

struct Fig2Report {
  struct Row {
    std::string name;  // "Total" or the vantage point name
    std::map<dox::DnsProtocol, double> handshake_ms;  // medians
    std::map<dox::DnsProtocol, double> resolve_ms;
  };
  std::vector<Row> rows;
};

Fig2Report fig2_handshake_resolve(
    const std::vector<SingleQueryRecord>& records,
    const std::vector<std::string>& vp_names);

std::string render_fig2(const Fig2Report& report);

// ------------------------------------------------- §3 protocol mix

struct ProtocolMix {
  std::map<std::string, double> quic_version_pct;
  std::map<std::string, double> doq_alpn_pct;
  std::map<std::string, double> tls_version_pct;
  double resumption_pct = 0;
  double zero_rtt_pct = 0;
};

ProtocolMix protocol_mix(const std::vector<SingleQueryRecord>& records);
std::string render_mix(const ProtocolMix& mix);

// ------------------------------------------------------------- Fig. 3

struct Fig3Report {
  /// Relative FCP/PLT difference vs the DoUDP baseline, one sample per
  /// [vantage point x resolver x page] (median over the four loads).
  std::map<dox::DnsProtocol, std::vector<double>> fcp_rel;
  std::map<dox::DnsProtocol, std::vector<double>> plt_rel;
};

Fig3Report fig3_relative(const std::vector<WebRecord>& records);
std::string render_fig3(const Fig3Report& report);

// ------------------------------------------------------------- Fig. 4

struct Fig4Cell {
  int vp = 0;
  std::string page;
  int dns_queries = 0;
  /// Relative PLT difference vs the DoQ baseline, one sample per resolver.
  std::vector<double> doudp_rel;
  std::vector<double> doh_rel;
  /// Fraction of resolvers where DoQ loads faster than DoH (the background
  /// shading in the paper's figure).
  double frac_doq_faster_than_doh = 0;
};

std::vector<Fig4Cell> fig4_cells(const std::vector<WebRecord>& records,
                                 const std::vector<std::string>& vp_names);
std::string render_fig4(const std::vector<Fig4Cell>& cells,
                        const std::vector<std::string>& vp_names);

/// Helper shared by reports: median over the loads of one combo.
std::map<dox::DnsProtocol, double> per_protocol_plt_medians(
    const std::vector<WebRecord>& records, int vp, int resolver,
    const std::string& page);

}  // namespace doxlab::measure
