// Resolver subsampling shared by the studies and the campaign runner.
#pragma once

#include <cstddef>
#include <vector>

namespace doxlab::measure {

/// Caps a resolver set at `max` entries (0 = no cap) by stride-sampling,
/// which preserves the continent interleaving of the verified list. Both
/// studies and the campaign runner must agree on this selection for
/// parallel shards to reproduce the serial schedule.
inline std::vector<std::size_t> sample_resolvers(
    const std::vector<std::size_t>& resolvers, int max) {
  if (max <= 0 || static_cast<int>(resolvers.size()) <= max) {
    return resolvers;
  }
  std::vector<std::size_t> sampled;
  sampled.reserve(static_cast<std::size_t>(max));
  const double stride = static_cast<double>(resolvers.size()) / max;
  for (int i = 0; i < max; ++i) {
    sampled.push_back(resolvers[static_cast<std::size_t>(i * stride)]);
  }
  return sampled;
}

}  // namespace doxlab::measure
