#include "measure/single_query.h"

#include <algorithm>

#include "dox/transport.h"
#include "measure/sampling.h"

namespace doxlab::measure {

std::vector<SingleQueryRecord> SingleQueryStudy::run() {
  auto& sim = testbed_.simulator();
  auto& population = testbed_.population();
  std::vector<SingleQueryRecord> records;
  config_.repetitions = std::max(config_.repetitions, 0);
  config_.max_resolvers = std::max(config_.max_resolvers, 0);

  const dns::Question question{dns::DnsName::parse(config_.qname),
                               dns::RRType::kA, dns::RRClass::kIN};

  std::vector<std::size_t> resolver_set =
      sample_resolvers(population.verified, config_.max_resolvers);

  records.reserve(resolver_set.size() *
                  testbed_.vantage_points().size() *
                  config_.protocols.size() *
                  static_cast<std::size_t>(config_.repetitions));

  for (int rep = 0; rep < config_.repetitions; ++rep) {
    for (std::size_t vp_index = 0;
         vp_index < testbed_.vantage_points().size(); ++vp_index) {
      if (config_.only_vp >= 0 &&
          static_cast<int>(vp_index) != config_.only_vp) {
        continue;
      }
      auto& vp = *testbed_.vantage_points()[vp_index];
      for (std::size_t r = 0; r < resolver_set.size(); ++r) {
        const std::size_t resolver_index = resolver_set[r];
        if (config_.only_resolver >= 0 &&
            static_cast<int>(resolver_index) != config_.only_resolver) {
          continue;
        }
        for (dox::DnsProtocol protocol : config_.protocols) {
          dox::TransportOptions options;
          options.resolver =
              testbed_.resolver_endpoint(resolver_index, protocol);
          options.use_session_resumption = config_.use_session_resumption;
          options.attempt_0rtt = config_.attempt_0rtt;
          options.use_address_token = config_.use_address_token;
          options.tcp_use_tfo = config_.tcp_use_tfo;
          options.pad_encrypted = config_.pad_encrypted;
          options.tcp_fresh_connection_per_query =
              !config_.tcp_reuse_connections;
          options.tcp_congestion = config_.tcp_congestion;
          options.quic_enable_cc = config_.quic_enable_cc;

          SingleQueryRecord record;
          record.vp = static_cast<int>(vp_index);
          record.resolver = static_cast<int>(resolver_index);
          record.protocol = protocol;
          record.rep = config_.rep_base + rep;

          // Cache-warming query on a fresh session.
          {
            auto warm = dox::make_transport(protocol, vp.deps(sim), options);
            bool done = false;
            warm->resolve(question, [&](dox::QueryResult) { done = true; });
            testbed_.run_until_flag(done);
            // Drain in-flight post-handshake frames (NewSessionTicket,
            // NEW_TOKEN) before closing — the ticket/token are the whole
            // point of the warming query.
            sim.run_until(sim.now() + 300 * kMillisecond);
            warm->reset_sessions();
            sim.run_until(sim.now() + 200 * kMillisecond);
          }

          // Measured query, reusing ticket/token/version knowledge.
          auto transport =
              dox::make_transport(protocol, vp.deps(sim), options);
          bool done = false;
          transport->resolve(question, [&](dox::QueryResult result) {
            record.success = result.ok();
            record.error_class = result.error_class();
            record.handshake_time = result.handshake_time();
            record.resolve_time = result.resolve_time();
            record.total_time = result.total_time();
            record.tls_version = result.tls_version;
            record.quic_version = result.quic_version;
            record.alpn = result.alpn;
            record.session_resumed = result.session_resumed;
            record.used_0rtt = result.used_0rtt;
            record.udp_retransmissions = result.udp_retransmissions;
            done = true;
          });
          testbed_.run_until_flag(done);
          // Drain the server's post-handshake frames first (they count
          // towards the response phase, as in the paper's size accounting),
          // then tear down and let the FIN/CLOSE exchange finish.
          sim.run_until(sim.now() + 300 * kMillisecond);
          transport->reset_sessions();
          sim.run_until(sim.now() + 2 * kSecond);
          record.bytes = transport->wire_stats();
          records.push_back(record);
        }
      }
    }
  }
  return records;
}

}  // namespace doxlab::measure
