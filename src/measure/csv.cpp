#include "measure/csv.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "quic/wire.h"

namespace doxlab::measure {

std::string single_query_csv(const std::vector<SingleQueryRecord>& records) {
  std::ostringstream out;
  out << "vp,resolver,protocol,rep,success,handshake_ms,resolve_ms,total_ms,"
         "hs_c2r,hs_r2c,query_bytes,response_bytes,tls_version,quic_version,"
         "alpn,resumed,zero_rtt,udp_retx\n";
  for (const auto& r : records) {
    out << r.vp << ',' << r.resolver << ',' << protocol_name(r.protocol)
        << ',' << r.rep << ',' << (r.success ? 1 : 0) << ','
        << to_ms(r.handshake_time) << ',' << to_ms(r.resolve_time) << ','
        << to_ms(r.total_time) << ',' << r.bytes.handshake_c2r << ','
        << r.bytes.handshake_r2c << ',' << r.bytes.query_c2r() << ','
        << r.bytes.response_r2c() << ',';
    if (r.tls_version) {
      out << (*r.tls_version == tls::TlsVersion::kTls13 ? "1.3" : "1.2");
    }
    out << ',';
    if (r.quic_version) out << quic::version_name(*r.quic_version);
    out << ',' << r.alpn << ',' << (r.session_resumed ? 1 : 0) << ','
        << (r.used_0rtt ? 1 : 0) << ',' << r.udp_retransmissions << '\n';
  }
  return out.str();
}

std::string web_csv(const std::vector<WebRecord>& records) {
  std::ostringstream out;
  out << "vp,resolver,protocol,page,rep,load,success,fcp_ms,plt_ms,"
         "dns_queries,dns_retx\n";
  for (const auto& r : records) {
    out << r.vp << ',' << r.resolver << ',' << protocol_name(r.protocol)
        << ',' << r.page << ',' << r.rep << ',' << r.load << ','
        << (r.success ? 1 : 0) << ',' << to_ms(r.fcp) << ',' << to_ms(r.plt)
        << ',' << r.dns_queries << ',' << r.dns_retransmissions << '\n';
  }
  return out.str();
}

std::string failure_rate_csv(const std::vector<SingleQueryRecord>& records) {
  std::ostringstream out;
  out << "protocol,samples,failures";
  for (util::ErrorClass cls : util::kAllErrorClasses) {
    if (cls == util::ErrorClass::kNone) continue;
    out << ',' << util::error_class_name(cls);
  }
  out << ",failure_rate\n";
  for (dox::DnsProtocol protocol : dox::kAllProtocols) {
    util::ErrorCounters counters;
    std::uint64_t samples = 0;
    std::uint64_t failures = 0;
    for (const auto& r : records) {
      if (r.protocol != protocol) continue;
      ++samples;
      if (!r.success) {
        ++failures;
        counters.record(r.error_class);
      }
    }
    if (samples == 0) continue;
    out << protocol_name(protocol) << ',' << samples << ',' << failures;
    for (util::ErrorClass cls : util::kAllErrorClasses) {
      if (cls == util::ErrorClass::kNone) continue;
      out << ',' << counters.count(cls);
    }
    const double rate = static_cast<double>(failures) /
                        static_cast<double>(samples);
    out << ',' << std::fixed << std::setprecision(4) << rate << '\n';
    out.unsetf(std::ios::fixed);
    out.precision(6);
  }
  return out.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace doxlab::measure
