#include "measure/report.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "quic/wire.h"
#include "stats/table.h"
#include "util/strings.h"

namespace doxlab::measure {

namespace {

double med(std::vector<double> v) {
  return stats::median(std::move(v)).value_or(0.0);
}

/// Key for grouping web records into combos.
struct ComboKey {
  int vp;
  int resolver;
  std::string page;
  auto operator<=>(const ComboKey&) const = default;
};

/// (combo, protocol) -> per-load metric samples.
using ComboMetrics =
    std::map<ComboKey, std::map<dox::DnsProtocol, std::vector<double>>>;

ComboMetrics group_web(const std::vector<WebRecord>& records,
                       bool use_fcp) {
  ComboMetrics grouped;
  for (const WebRecord& r : records) {
    if (!r.success) continue;
    grouped[ComboKey{r.vp, r.resolver, r.page}][r.protocol].push_back(
        to_ms(use_fcp ? r.fcp : r.plt));
  }
  return grouped;
}

}  // namespace

// ---------------------------------------------------------------- Table 1

std::vector<Table1Row> table1_sizes(
    const std::vector<SingleQueryRecord>& records) {
  std::map<dox::DnsProtocol, std::vector<dox::WireStats>> per_protocol;
  for (const auto& r : records) {
    if (r.success) per_protocol[r.protocol].push_back(r.bytes);
  }
  std::vector<Table1Row> rows;
  for (dox::DnsProtocol protocol : dox::kExtendedProtocols) {
    auto it = per_protocol.find(protocol);
    if (it == per_protocol.end()) continue;
    std::vector<double> total, hs_c2r, hs_r2c, query, response;
    for (const auto& b : it->second) {
      total.push_back(static_cast<double>(b.total()));
      hs_c2r.push_back(static_cast<double>(b.handshake_c2r));
      hs_r2c.push_back(static_cast<double>(b.handshake_r2c));
      query.push_back(static_cast<double>(b.query_c2r()));
      response.push_back(static_cast<double>(b.response_r2c()));
    }
    Table1Row row;
    row.protocol = protocol;
    row.samples = it->second.size();
    row.total_bytes = med(total);
    row.handshake_c2r = med(hs_c2r);
    row.handshake_r2c = med(hs_r2c);
    row.query_bytes = med(query);
    row.response_bytes = med(response);
    rows.push_back(row);
  }
  return rows;
}

std::string render_table1(const std::vector<Table1Row>& rows,
                          const std::vector<WebRecord>* web_records) {
  // Column order matches the paper's Table 1; DoH3 appears when measured.
  std::vector<dox::DnsProtocol> order = {
      dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoTcp,
      dox::DnsProtocol::kDoQ, dox::DnsProtocol::kDoH, dox::DnsProtocol::kDoT};
  for (const auto& row : rows) {
    if (row.protocol == dox::DnsProtocol::kDoH3) {
      order.push_back(dox::DnsProtocol::kDoH3);
      break;
    }
  }
  std::vector<std::string> header = {"Metric"};
  for (dox::DnsProtocol p : order) {
    header.emplace_back(dox::protocol_name(p));
  }
  stats::TextTable table(std::move(header));
  auto find = [&](dox::DnsProtocol p) -> const Table1Row* {
    for (const auto& row : rows) {
      if (row.protocol == p) return &row;
    }
    return nullptr;
  };
  auto metric_row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells = {name};
    for (dox::DnsProtocol p : order) {
      const Table1Row* row = find(p);
      cells.push_back(row ? stats::cell(getter(*row), 0) : "-");
    }
    table.add_row(std::move(cells));
  };
  metric_row("Total bytes", [](const Table1Row& r) { return r.total_bytes; });
  metric_row("Handshake C->R",
             [](const Table1Row& r) { return r.handshake_c2r; });
  metric_row("Handshake R->C",
             [](const Table1Row& r) { return r.handshake_r2c; });
  metric_row("DNS Query", [](const Table1Row& r) { return r.query_bytes; });
  metric_row("DNS Response",
             [](const Table1Row& r) { return r.response_bytes; });
  {
    std::vector<std::string> cells = {"SQ samples"};
    for (dox::DnsProtocol p : order) {
      const Table1Row* row = find(p);
      cells.push_back(row ? std::to_string(row->samples) : "-");
    }
    table.add_row(std::move(cells));
  }
  if (web_records != nullptr) {
    std::map<dox::DnsProtocol, std::size_t> web_samples;
    for (const auto& r : *web_records) {
      if (r.success) ++web_samples[r.protocol];
    }
    std::vector<std::string> cells = {"Web samples"};
    for (dox::DnsProtocol p : order) {
      cells.push_back(std::to_string(web_samples[p]));
    }
    table.add_row(std::move(cells));
  }
  return table.render();
}

// ------------------------------------------------------------------ Fig. 2

Fig2Report fig2_handshake_resolve(
    const std::vector<SingleQueryRecord>& records,
    const std::vector<std::string>& vp_names) {
  Fig2Report report;
  // index -1 = Total.
  auto build_row = [&](int vp, const std::string& name) {
    Fig2Report::Row row;
    row.name = name;
    for (dox::DnsProtocol protocol : dox::kExtendedProtocols) {
      std::vector<double> hs, resolve;
      for (const auto& r : records) {
        if (!r.success || r.protocol != protocol) continue;
        if (vp >= 0 && r.vp != vp) continue;
        if (protocol != dox::DnsProtocol::kDoUdp) {
          hs.push_back(to_ms(r.handshake_time));
        }
        resolve.push_back(to_ms(r.resolve_time));
      }
      if (!hs.empty()) row.handshake_ms[protocol] = med(hs);
      if (!resolve.empty()) row.resolve_ms[protocol] = med(resolve);
    }
    report.rows.push_back(std::move(row));
  };
  build_row(-1, "Total");
  for (std::size_t vp = 0; vp < vp_names.size(); ++vp) {
    build_row(static_cast<int>(vp), vp_names[vp]);
  }
  return report;
}

std::string render_fig2(const Fig2Report& report) {
  std::ostringstream out;
  std::vector<dox::DnsProtocol> order = {
      dox::DnsProtocol::kDoUdp, dox::DnsProtocol::kDoTcp,
      dox::DnsProtocol::kDoQ, dox::DnsProtocol::kDoH, dox::DnsProtocol::kDoT};
  for (const auto& row : report.rows) {
    if (row.resolve_ms.contains(dox::DnsProtocol::kDoH3)) {
      order.push_back(dox::DnsProtocol::kDoH3);
      break;
    }
  }
  for (const char* metric : {"handshake", "resolve"}) {
    const bool handshake = std::string(metric) == "handshake";
    out << "Median " << (handshake ? "handshake" : "resolve")
        << " time (ms) per protocol and vantage point\n";
    std::vector<std::string> header = {"Vantage point"};
    for (dox::DnsProtocol p : order) {
      header.emplace_back(dox::protocol_name(p));
    }
    stats::TextTable table(std::move(header));
    for (const auto& row : report.rows) {
      std::vector<std::string> cells = {row.name};
      for (dox::DnsProtocol p : order) {
        const auto& source = handshake ? row.handshake_ms : row.resolve_ms;
        auto it = source.find(p);
        cells.push_back(it == source.end() ? "-" : stats::cell(it->second, 1));
      }
      table.add_row(std::move(cells));
    }
    out << table.render() << "\n";
  }
  return out.str();
}

// ------------------------------------------------------ §3 protocol mix

ProtocolMix protocol_mix(const std::vector<SingleQueryRecord>& records) {
  ProtocolMix mix;
  std::map<std::string, int> quic_versions, alpns, tls_versions;
  int quic_total = 0, alpn_total = 0, tls_total = 0;
  int resumed = 0, resumable = 0, zero_rtt = 0;
  for (const auto& r : records) {
    if (!r.success) continue;
    if (r.quic_version) {
      ++quic_versions[std::string(quic::version_name(*r.quic_version))];
      ++quic_total;
    }
    if (r.protocol == dox::DnsProtocol::kDoQ && !r.alpn.empty()) {
      ++alpns[r.alpn];
      ++alpn_total;
    }
    if (r.tls_version) {
      ++tls_versions[*r.tls_version == tls::TlsVersion::kTls13 ? "TLS 1.3"
                                                               : "TLS 1.2"];
      ++tls_total;
      ++resumable;
      if (r.session_resumed) ++resumed;
      if (r.used_0rtt) ++zero_rtt;
    }
  }
  auto to_pct = [](const std::map<std::string, int>& counts, int total,
                   std::map<std::string, double>& out) {
    for (const auto& [name, count] : counts) {
      out[name] = total ? 100.0 * count / total : 0.0;
    }
  };
  to_pct(quic_versions, quic_total, mix.quic_version_pct);
  to_pct(alpns, alpn_total, mix.doq_alpn_pct);
  to_pct(tls_versions, tls_total, mix.tls_version_pct);
  mix.resumption_pct = resumable ? 100.0 * resumed / resumable : 0;
  mix.zero_rtt_pct = resumable ? 100.0 * zero_rtt / resumable : 0;
  return mix;
}

std::string render_mix(const ProtocolMix& mix) {
  std::ostringstream out;
  auto section = [&](const char* title,
                     const std::map<std::string, double>& values) {
    out << title << ":\n";
    for (const auto& [name, pct] : values) {
      out << "  " << pad_right(name, 12) << stats::cell(pct, 1) << "%\n";
    }
  };
  section("QUIC versions (DoQ measurements)", mix.quic_version_pct);
  section("DoQ ALPN identifiers", mix.doq_alpn_pct);
  section("TLS versions (encrypted measurements)", mix.tls_version_pct);
  out << "Session resumption used: " << stats::cell(mix.resumption_pct, 1)
      << "% of TLS measurements\n";
  out << "0-RTT used:              " << stats::cell(mix.zero_rtt_pct, 1)
      << "% of TLS measurements\n";
  return out.str();
}

// ------------------------------------------------------------------ Fig. 3

Fig3Report fig3_relative(const std::vector<WebRecord>& records) {
  Fig3Report report;
  for (const bool use_fcp : {true, false}) {
    auto grouped = group_web(records, use_fcp);
    for (const auto& [combo, by_protocol] : grouped) {
      auto base_it = by_protocol.find(dox::DnsProtocol::kDoUdp);
      if (base_it == by_protocol.end()) continue;
      const double baseline = med(base_it->second);
      if (baseline <= 0) continue;
      for (const auto& [protocol, samples] : by_protocol) {
        if (protocol == dox::DnsProtocol::kDoUdp) continue;
        auto rel = stats::relative_difference(baseline, med(samples));
        if (!rel) continue;
        (use_fcp ? report.fcp_rel : report.plt_rel)[protocol].push_back(*rel);
      }
    }
  }
  return report;
}

std::string render_fig3(const Fig3Report& report) {
  std::ostringstream out;
  const double quantiles[] = {0.10, 0.25, 0.40, 0.50, 0.60,
                              0.75, 0.80, 0.90, 0.95};
  for (const bool use_fcp : {true, false}) {
    out << "CDF of relative " << (use_fcp ? "FCP" : "PLT")
        << " difference vs DoUDP (per [VP x resolver x page])\n";
    stats::TextTable table({"Quantile", "DoTCP", "DoQ", "DoH", "DoT"});
    const auto& source = use_fcp ? report.fcp_rel : report.plt_rel;
    for (double q : quantiles) {
      std::vector<std::string> cells = {"p" +
                                        std::to_string(int(q * 100 + 0.5))};
      for (dox::DnsProtocol p :
           {dox::DnsProtocol::kDoTcp, dox::DnsProtocol::kDoQ,
            dox::DnsProtocol::kDoH, dox::DnsProtocol::kDoT}) {
        auto it = source.find(p);
        if (it == source.end() || it->second.empty()) {
          cells.push_back("-");
          continue;
        }
        stats::Cdf cdf(it->second);
        cells.push_back(stats::percent_cell(cdf.quantile(q).value_or(0)));
      }
      table.add_row(std::move(cells));
    }
    out << table.render();
    // The paper's headline fractions.
    const auto& plt_or_fcp = source;
    auto frac_above = [&](dox::DnsProtocol p, double threshold) {
      auto it = plt_or_fcp.find(p);
      if (it == plt_or_fcp.end() || it->second.empty()) return 0.0;
      stats::Cdf cdf(it->second);
      return 1.0 - cdf.fraction_below(threshold);
    };
    if (use_fcp) {
      out << "Fraction of loads delaying FCP by >10%: DoQ "
          << stats::cell(100 * frac_above(dox::DnsProtocol::kDoQ, 0.10), 1)
          << "%, DoH "
          << stats::cell(100 * frac_above(dox::DnsProtocol::kDoH, 0.10), 1)
          << "%, DoT "
          << stats::cell(100 * frac_above(dox::DnsProtocol::kDoT, 0.10), 1)
          << "%\n\n";
    } else {
      out << "Fraction of loads degrading PLT by >15%: DoQ "
          << stats::cell(100 * frac_above(dox::DnsProtocol::kDoQ, 0.15), 1)
          << "%, DoH "
          << stats::cell(100 * frac_above(dox::DnsProtocol::kDoH, 0.15), 1)
          << "%, DoT "
          << stats::cell(100 * frac_above(dox::DnsProtocol::kDoT, 0.15), 1)
          << "%\n\n";
    }
  }
  return out.str();
}

// ------------------------------------------------------------------ Fig. 4

std::map<dox::DnsProtocol, double> per_protocol_plt_medians(
    const std::vector<WebRecord>& records, int vp, int resolver,
    const std::string& page) {
  std::map<dox::DnsProtocol, std::vector<double>> samples;
  for (const auto& r : records) {
    if (!r.success || r.vp != vp || r.resolver != resolver ||
        r.page != page) {
      continue;
    }
    samples[r.protocol].push_back(to_ms(r.plt));
  }
  std::map<dox::DnsProtocol, double> medians;
  for (auto& [protocol, values] : samples) {
    medians[protocol] = med(values);
  }
  return medians;
}

std::vector<Fig4Cell> fig4_cells(const std::vector<WebRecord>& records,
                                 const std::vector<std::string>& vp_names) {
  // Collect combos present in the data.
  std::map<std::pair<int, std::string>, std::set<int>> resolvers_by_cell;
  std::map<std::string, int> page_queries;
  for (const auto& r : records) {
    resolvers_by_cell[{r.vp, r.page}].insert(r.resolver);
    page_queries[r.page] = r.dns_queries;
  }

  std::vector<Fig4Cell> cells;
  for (const auto& [key, resolvers] : resolvers_by_cell) {
    Fig4Cell cell;
    cell.vp = key.first;
    cell.page = key.second;
    cell.dns_queries = page_queries[key.second];
    int doh_slower = 0, doh_total = 0;
    for (int resolver : resolvers) {
      auto medians =
          per_protocol_plt_medians(records, cell.vp, resolver, cell.page);
      auto doq = medians.find(dox::DnsProtocol::kDoQ);
      if (doq == medians.end() || doq->second <= 0) continue;
      if (auto it = medians.find(dox::DnsProtocol::kDoUdp);
          it != medians.end()) {
        cell.doudp_rel.push_back(*stats::relative_difference(doq->second,
                                                             it->second));
      }
      if (auto it = medians.find(dox::DnsProtocol::kDoH);
          it != medians.end()) {
        const double rel =
            *stats::relative_difference(doq->second, it->second);
        cell.doh_rel.push_back(rel);
        ++doh_total;
        if (rel > 0) ++doh_slower;  // DoH slower => DoQ faster
      }
    }
    cell.frac_doq_faster_than_doh =
        doh_total ? static_cast<double>(doh_slower) / doh_total : 0;
    cells.push_back(std::move(cell));
  }
  // Sort by (page query count, vp) like the paper's grid.
  std::sort(cells.begin(), cells.end(), [](const Fig4Cell& a,
                                           const Fig4Cell& b) {
    if (a.dns_queries != b.dns_queries) return a.dns_queries < b.dns_queries;
    if (a.page != b.page) return a.page < b.page;
    return a.vp < b.vp;
  });
  (void)vp_names;
  return cells;
}

std::string render_fig4(const std::vector<Fig4Cell>& cells,
                        const std::vector<std::string>& vp_names) {
  std::ostringstream out;
  out << "PLT relative to DoQ baseline, per vantage point and page\n"
      << "(positive median = protocol slower than DoQ; 'DoQ<DoH' = fraction "
         "of resolvers where DoQ beats DoH)\n";
  stats::TextTable table({"VP", "Page", "#DNS", "DoUDP med", "DoH med",
                          "DoQ<DoH"});
  for (const auto& cell : cells) {
    std::vector<std::string> row;
    row.push_back(cell.vp < static_cast<int>(vp_names.size())
                      ? vp_names[cell.vp]
                      : std::to_string(cell.vp));
    row.push_back(cell.page);
    row.push_back(std::to_string(cell.dns_queries));
    row.push_back(cell.doudp_rel.empty()
                      ? "-"
                      : stats::percent_cell(
                            stats::median(cell.doudp_rel).value_or(0)));
    row.push_back(cell.doh_rel.empty()
                      ? "-"
                      : stats::percent_cell(
                            stats::median(cell.doh_rel).value_or(0)));
    row.push_back(stats::cell(100 * cell.frac_doq_faster_than_doh, 0) + "%");
    table.add_row(std::move(row));
  }
  out << table.render();
  return out.str();
}

}  // namespace doxlab::measure
