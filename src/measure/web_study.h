// The Web-performance study (paper §3.2): Chromium-model page loads through
// the local DNS proxy, per [vantage point x resolver x protocol x page]:
// one cache-warming navigation, then four cold-start measured loads with
// proxy sessions reset before each — the paper's exact procedure.
#pragma once

#include <string>
#include <vector>

#include "dox/types.h"
#include "measure/testbed.h"
#include "web/page.h"

namespace doxlab::measure {

struct WebStudyConfig {
  /// Measured loads per combination (paper: four).
  int loads_per_combo = 4;
  /// Repetitions of the whole sweep (paper: every 48 h over a week ≈ 3).
  int repetitions = 1;
  std::vector<dox::DnsProtocol> protocols{std::begin(dox::kAllProtocols),
                                          std::end(dox::kAllProtocols)};
  /// Page names (default: all ten model pages).
  std::vector<std::string> pages;
  /// Cap resolvers (0 = all verified). The paper used all 313; benches
  /// subsample for runtime.
  int max_resolvers = 24;
  /// Reproduce dnsproxy's DoT connection-handling bug (paper behaviour).
  bool dot_buggy_reuse = true;
  /// Methodology switches.
  bool use_session_resumption = true;
  bool attempt_0rtt = true;
  /// Sharding filters used by the campaign runner: restrict the sweep to a
  /// single vantage point / resolver population index (-1 = no filter) and
  /// offset the `rep` recorded so merged shards reproduce a serial sweep.
  int only_vp = -1;
  int only_resolver = -1;
  int rep_base = 0;
};

struct WebRecord {
  int vp = 0;
  int resolver = 0;
  dox::DnsProtocol protocol = dox::DnsProtocol::kDoUdp;
  std::string page;
  int rep = 0;
  int load = 0;  // 0..loads_per_combo-1
  bool success = false;
  SimTime fcp = 0;
  SimTime plt = 0;
  int dns_queries = 0;
  int dns_retransmissions = 0;
};

class WebStudy {
 public:
  WebStudy(Testbed& testbed, WebStudyConfig config)
      : testbed_(testbed), config_(std::move(config)) {}

  std::vector<WebRecord> run();

 private:
  Testbed& testbed_;
  WebStudyConfig config_;
};

}  // namespace doxlab::measure
