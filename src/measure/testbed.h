// The measurement testbed: simulator + network + resolver population +
// six vantage points (one per continent, like the paper's EC2 fleet).
//
// Studies are written imperatively against the testbed using
// `run_until_flag` ("await"-style): measurements execute one after another
// in simulated time, which is free — determinism and simplicity beat
// simulated concurrency here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dox/transport.h"
#include "net/network.h"
#include "net/udp.h"
#include "scan/population.h"
#include "sim/simulator.h"
#include "tcp/tcp.h"
#include "tls/ticket.h"
#include "web/browser.h"

namespace doxlab::measure {

/// One measurement machine (EC2 instance in the paper).
struct VantagePoint {
  std::string name;
  net::Continent continent = net::Continent::kEurope;
  net::Host* host = nullptr;
  std::unique_ptr<net::UdpStack> udp;
  std::unique_ptr<tcp::TcpStack> tcp;
  tls::TicketStore tickets;
  dox::DoqSessionCache doq_cache;

  /// Transport dependencies backed by this vantage point's stacks/stores.
  dox::TransportDeps deps(sim::Simulator& sim) {
    dox::TransportDeps d;
    d.sim = &sim;
    d.udp = udp.get();
    d.tcp = tcp.get();
    d.tickets = &tickets;
    d.doq_cache = &doq_cache;
    return d;
  }
};

struct TestbedConfig {
  std::uint64_t seed = 42;
  /// When set, the resolver population is built from its own seed instead
  /// of the forked testbed stream. The campaign runner pins this to the
  /// campaign seed so every parallel run sees the identical population
  /// while per-run seeds vary jitter/loss.
  std::optional<std::uint64_t> population_seed;
  scan::PopulationConfig population = {.verified_only = true};
  double loss_rate = 0.002;
  /// Optional adverse-path access link applied to every vantage point in
  /// BOTH directions (its own egress and ingress Link instances per VP, so
  /// queues and burst-loss chains are independent). Unset preserves the
  /// seed's pure geo-latency + iid-loss fabric — pinned artifacts depend
  /// on that default.
  std::optional<net::LinkConfig> access_link;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *network_; }
  scan::Population& population() { return population_; }
  std::vector<std::unique_ptr<VantagePoint>>& vantage_points() {
    return vantage_points_;
  }
  Rng& rng() { return rng_; }
  const TestbedConfig& config() const { return config_; }

  /// Resolver endpoint for a protocol.
  net::Endpoint resolver_endpoint(std::size_t resolver_index,
                                  dox::DnsProtocol protocol) const;

  /// Deterministic per-(vantage point, origin) web-server RTT: most origins
  /// are CDN-served nearby; remote continents see inflated values.
  web::Browser::OriginRttFn origin_rtt_fn(const VantagePoint& vp);

  /// Runs the simulator until `flag` becomes true or `max_wait` elapses.
  /// Returns the final flag value.
  bool run_until_flag(const bool& flag, SimTime max_wait = 5 * kMinute);

 private:
  TestbedConfig config_;
  sim::Simulator sim_;
  Rng rng_;
  std::unique_ptr<net::Network> network_;
  scan::Population population_;
  std::vector<std::unique_ptr<VantagePoint>> vantage_points_;
};

}  // namespace doxlab::measure
