#include "measure/web_study.h"

#include <algorithm>

#include "measure/sampling.h"
#include "proxy/proxy.h"
#include "web/browser.h"

namespace doxlab::measure {

std::vector<WebRecord> WebStudy::run() {
  auto& sim = testbed_.simulator();
  auto& population = testbed_.population();
  std::vector<WebRecord> records;
  config_.repetitions = std::max(config_.repetitions, 0);
  config_.loads_per_combo = std::max(config_.loads_per_combo, 0);
  config_.max_resolvers = std::max(config_.max_resolvers, 0);

  std::vector<const web::WebPage*> pages;
  if (config_.pages.empty()) {
    for (const auto& page : web::tranco_top10()) pages.push_back(&page);
  } else {
    for (const auto& name : config_.pages) {
      pages.push_back(&web::page_by_name(name));
    }
  }

  std::vector<std::size_t> resolver_set =
      sample_resolvers(population.verified, config_.max_resolvers);

  for (int rep = 0; rep < config_.repetitions; ++rep) {
    for (std::size_t vp_index = 0;
         vp_index < testbed_.vantage_points().size(); ++vp_index) {
      if (config_.only_vp >= 0 &&
          static_cast<int>(vp_index) != config_.only_vp) {
        continue;
      }
      auto& vp = *testbed_.vantage_points()[vp_index];
      auto origin_rtt = testbed_.origin_rtt_fn(vp);

      for (std::size_t resolver_index : resolver_set) {
        if (config_.only_resolver >= 0 &&
            static_cast<int>(resolver_index) != config_.only_resolver) {
          continue;
        }
        for (dox::DnsProtocol protocol : config_.protocols) {
          // Fresh proxy per combination: Chromium's local resolver is
          // "newly setup" each time in the paper's methodology.
          proxy::ProxyConfig proxy_config;
          proxy_config.upstream_protocol = protocol;
          proxy_config.upstream =
              testbed_.resolver_endpoint(resolver_index, protocol);
          proxy_config.cache_enabled = false;
          proxy_config.transport_options.use_session_resumption =
              config_.use_session_resumption;
          proxy_config.transport_options.attempt_0rtt = config_.attempt_0rtt;
          proxy_config.transport_options.dot_buggy_reuse =
              config_.dot_buggy_reuse;
          proxy::DnsProxy proxy(sim, *vp.udp, vp.deps(sim), proxy_config);

          web::BrowserConfig browser_config;
          browser_config.stub_resolver =
              net::Endpoint{vp.host->address(), proxy_config.listen_port};

          for (const web::WebPage* page : pages) {
            // Cache-warming navigation: populates the upstream resolver's
            // cache (and the ticket/token stores).
            {
              web::Browser warm_browser(sim, *vp.udp, browser_config,
                                        origin_rtt,
                                        testbed_.rng().fork());
              bool done = false;
              warm_browser.navigate(*page,
                                    [&](web::PageLoadMetrics) { done = true; });
              testbed_.run_until_flag(done);
            }
            // Drain in-flight tickets/tokens before the session reset.
            sim.run_until(sim.now() + 500 * kMillisecond);
            proxy.reset_sessions();
            sim.run_until(sim.now() + 500 * kMillisecond);

            for (int load = 0; load < config_.loads_per_combo; ++load) {
              web::Browser browser(sim, *vp.udp, browser_config, origin_rtt,
                                   testbed_.rng().fork());
              WebRecord record;
              record.vp = static_cast<int>(vp_index);
              record.resolver = static_cast<int>(resolver_index);
              record.protocol = protocol;
              record.page = page->name;
              record.rep = config_.rep_base + rep;
              record.load = load;

              bool done = false;
              browser.navigate(*page, [&](web::PageLoadMetrics metrics) {
                record.success = metrics.success;
                record.fcp = metrics.fcp;
                record.plt = metrics.plt;
                record.dns_queries = metrics.dns_queries;
                record.dns_retransmissions = metrics.dns_retransmissions;
                done = true;
              });
              testbed_.run_until_flag(done);
              records.push_back(record);

              // Cold start for the next load: drop upstream connections
              // (tickets survive — resumption is the paper's default).
              sim.run_until(sim.now() + 500 * kMillisecond);
              proxy.reset_sessions();
              sim.run_until(sim.now() + 200 * kMillisecond);
            }
          }
        }
      }
    }
  }
  return records;
}

}  // namespace doxlab::measure
