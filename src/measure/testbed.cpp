#include "measure/testbed.h"

namespace doxlab::measure {

Testbed::Testbed(TestbedConfig config)
    : config_(config), rng_(config.seed) {
  network_ = std::make_unique<net::Network>(sim_, rng_.fork());
  network_->set_loss_rate(config_.loss_rate);

  // Fork for the population unconditionally so the testbed's own stream is
  // identical whether or not an explicit population seed overrides it.
  Rng pop_rng = rng_.fork();
  if (config_.population_seed) pop_rng = Rng(*config_.population_seed);
  population_ = scan::build_population(*network_, config_.population, pop_rng);

  // Six vantage points, one per continent (the paper's EC2 instances).
  std::uint32_t address = net::IpAddress::from_octets(10, 0, 0, 1).value();
  for (const net::City& city : net::vantage_point_cities()) {
    auto vp = std::make_unique<VantagePoint>();
    vp->name = city.name;
    vp->continent = city.continent;
    vp->host = &network_->add_host("vp-" + city.name,
                                   net::IpAddress(address++), city.location,
                                   city.continent,
                                   /*access_delay=*/from_ms(1.0));
    vp->udp = std::make_unique<net::UdpStack>(*vp->host);
    vp->tcp = std::make_unique<tcp::TcpStack>(*vp->host);
    if (config_.access_link) {
      // Separate uplink/downlink instances: real access networks queue the
      // two directions independently.
      network_->set_host_egress_link(vp->host->address(),
                                     network_->add_link(*config_.access_link));
      network_->set_host_ingress_link(vp->host->address(),
                                      network_->add_link(*config_.access_link));
    }
    vantage_points_.push_back(std::move(vp));
  }
}

net::Endpoint Testbed::resolver_endpoint(std::size_t resolver_index,
                                         dox::DnsProtocol protocol) const {
  return net::Endpoint{
      population_.resolvers[resolver_index]->profile().address,
      dox::default_port(protocol)};
}

web::Browser::OriginRttFn Testbed::origin_rtt_fn(const VantagePoint& vp) {
  // Deterministic per (vantage point, domain) via hashing; the continent
  // factor mirrors thinner CDN coverage in AF/OC/SA.
  double continent_factor = 1.0;
  switch (vp.continent) {
    case net::Continent::kAfrica:
    case net::Continent::kOceania:
    case net::Continent::kSouthAmerica:
      continent_factor = 1.7;
      break;
    default:
      break;
  }
  const std::uint64_t vp_hash = std::hash<std::string>()(vp.name);
  return [continent_factor, vp_hash](const dns::DnsName& domain) {
    const std::uint64_t h =
        vp_hash ^ std::hash<std::string>()(domain.to_string());
    // RTT in [8, 44) ms before the continent factor.
    const double base_ms = 8.0 + static_cast<double>(h % 3600) / 100.0;
    return from_ms(base_ms * continent_factor);
  };
}

bool Testbed::run_until_flag(const bool& flag, SimTime max_wait) {
  const SimTime deadline = sim_.now() + max_wait;
  while (!flag && sim_.now() < deadline) {
    if (!sim_.step()) {
      sim_.run_until(deadline);
      break;
    }
  }
  return flag;
}

}  // namespace doxlab::measure
