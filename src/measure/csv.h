// CSV export of raw study records (the paper publishes its raw data; so do
// we — benches write these next to their textual reports when asked).
#pragma once

#include <string>
#include <vector>

#include "measure/single_query.h"
#include "measure/web_study.h"

namespace doxlab::measure {

/// Serializes single-query records; returns CSV text (header + rows).
std::string single_query_csv(const std::vector<SingleQueryRecord>& records);

/// Serializes web records.
std::string web_csv(const std::vector<WebRecord>& records);

/// Per-protocol failure breakdown: one row per protocol with a sample
/// count, total failures, one column per util::ErrorClass, and the failure
/// rate. Protocols with no samples are omitted; rows follow
/// dox::kAllProtocols order, so the output is deterministic.
std::string failure_rate_csv(const std::vector<SingleQueryRecord>& records);

/// Writes text to a file; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace doxlab::measure
