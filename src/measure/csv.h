// CSV export of raw study records (the paper publishes its raw data; so do
// we — benches write these next to their textual reports when asked).
#pragma once

#include <string>
#include <vector>

#include "measure/single_query.h"
#include "measure/web_study.h"

namespace doxlab::measure {

/// Serializes single-query records; returns CSV text (header + rows).
std::string single_query_csv(const std::vector<SingleQueryRecord>& records);

/// Serializes web records.
std::string web_csv(const std::vector<WebRecord>& records);

/// Writes text to a file; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace doxlab::measure
