#include "h3/connection.h"

#include "util/bytes.h"

namespace doxlab::h3 {

namespace {
/// Unidirectional stream type for control streams (RFC 9114 §6.2.1).
constexpr std::uint8_t kControlStreamType = 0x00;
}  // namespace

H3Connection::H3Connection(std::shared_ptr<quic::QuicConnection> conn,
                           bool is_client, Callbacks callbacks)
    : conn_(std::move(conn)), is_client_(is_client), cb_(std::move(callbacks)) {}

void H3Connection::fail(const std::string& reason) {
  if (failed_) return;
  failed_ = true;
  if (cb_.on_error) cb_.on_error(util::Error::protocol(reason));
}

std::vector<std::uint8_t> H3Connection::encode_frame(
    H3FrameType type, std::span<const std::uint8_t> body) {
  ByteWriter w(body.size() + 4);
  w.varint(static_cast<std::uint64_t>(type));
  w.varint(body.size());
  w.bytes(body);
  return w.take();
}

void H3Connection::start() {
  if (started_ || failed_) return;
  started_ = true;
  // Control stream: stream type byte, then SETTINGS (three entries:
  // QPACK_MAX_TABLE_CAPACITY, QPACK_BLOCKED_STREAMS, MAX_FIELD_SECTION_SIZE).
  ByteWriter settings;
  settings.varint(0x01);
  settings.varint(4096);
  settings.varint(0x07);
  settings.varint(16);
  settings.varint(0x06);
  settings.varint(16384);
  ByteWriter stream;
  stream.u8(kControlStreamType);
  stream.bytes(encode_frame(H3FrameType::kSettings, settings.view()));
  conn_->send_stream(is_client_ ? kClientControlStream : kServerControlStream,
                     stream.take(), /*fin=*/false);
}

std::vector<std::uint8_t> H3Connection::headers_frame(
    const std::vector<h2::Header>& headers) {
  // QPACK encoded field section: 2-byte prefix (required insert count +
  // delta base) followed by the compressed fields.
  ByteWriter block;
  block.u16(0);  // prefix: static-table-only / in-order dynamic references
  auto fields = encoder_.encode(headers);
  block.bytes(fields);
  return encode_frame(H3FrameType::kHeaders, block.view());
}

std::uint64_t H3Connection::send_request(
    const std::vector<h2::Header>& headers, std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> payload = headers_frame(headers);
  if (!body.empty()) {
    auto data = encode_frame(H3FrameType::kData, body);
    payload.insert(payload.end(), data.begin(), data.end());
  }
  return conn_->open_stream(std::move(payload), /*fin=*/true);
}

void H3Connection::send_response(std::uint64_t stream_id,
                                 const std::vector<h2::Header>& headers,
                                 std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> payload = headers_frame(headers);
  if (!body.empty()) {
    auto data = encode_frame(H3FrameType::kData, body);
    payload.insert(payload.end(), data.begin(), data.end());
  }
  conn_->send_stream(stream_id, std::move(payload), /*fin=*/true);
}

void H3Connection::on_stream_data(std::uint64_t stream_id,
                                  std::span<const std::uint8_t> data,
                                  bool fin) {
  if (failed_) return;
  auto& buffer = stream_buffers_[stream_id];
  buffer.insert(buffer.end(), data.begin(), data.end());

  const bool unidirectional = (stream_id & 0x2) != 0;
  if (unidirectional) {
    // The stream-type byte arrives once per stream; remember it so later
    // deliveries on the same stream parse as frames, not as a new type.
    auto type_it = uni_stream_types_.find(stream_id);
    if (type_it == uni_stream_types_.end()) {
      if (buffer.empty()) return;
      type_it =
          uni_stream_types_.emplace(stream_id, buffer.front()).first;
      buffer.erase(buffer.begin());
    }
    if (type_it->second != kControlStreamType) {
      // QPACK encoder/decoder streams etc. — absorbed silently.
      buffer.clear();
      return;
    }
    ByteReader r(buffer);
    while (true) {
      const std::size_t mark = r.position();
      auto frame_type = r.varint();
      auto length = r.varint();
      if (!frame_type || !length || r.remaining() < *length) {
        buffer.erase(buffer.begin(), buffer.begin() + static_cast<long>(mark));
        return;
      }
      auto body = r.bytes(*length);
      if (static_cast<H3FrameType>(*frame_type) == H3FrameType::kSettings) {
        settings_received_ = true;
      }
      (void)body;
    }
  }

  process_request_stream(stream_id, fin);
}

void H3Connection::process_request_stream(std::uint64_t stream_id, bool fin) {
  // Request/response streams: frames are delivered to the application once
  // complete; HEADERS may arrive before the DATA frame is complete.
  auto& buffer = stream_buffers_[stream_id];
  while (true) {
    ByteReader r(buffer);
    auto frame_type = r.varint();
    auto length = r.varint();
    if (!frame_type || !length || r.remaining() < *length) break;
    auto body = r.bytes(*length);
    const std::size_t consumed = r.position();
    const bool last_frame = fin && r.at_end();

    switch (static_cast<H3FrameType>(*frame_type)) {
      case H3FrameType::kHeaders: {
        ByteReader block(*body);
        block.u16();  // QPACK field-section prefix
        auto rest = block.bytes(block.remaining());
        auto headers = decoder_.decode(*rest);
        if (!headers) {
          fail("QPACK decode error");
          return;
        }
        if (cb_.on_headers) cb_.on_headers(stream_id, *headers, last_frame);
        break;
      }
      case H3FrameType::kData:
        if (cb_.on_data) cb_.on_data(stream_id, *body, last_frame);
        break;
      case H3FrameType::kSettings:
        fail("SETTINGS on request stream");
        return;
      case H3FrameType::kGoaway:
        break;
    }
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<long>(consumed));
    if (failed_) return;
  }
  if (fin && buffer.empty()) stream_buffers_.erase(stream_id);
}

}  // namespace doxlab::h3
