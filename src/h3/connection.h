// HTTP/3 connection model (RFC 9114) over the QUIC stack — the transport
// behind DoH3, the paper's future-work protocol.
//
// Modelled pieces:
//   * unidirectional control streams (stream type 0x00) carrying SETTINGS,
//   * request streams on client-initiated bidirectional streams, carrying
//     HEADERS (0x01) and DATA (0x00) frames with varint type/length,
//   * QPACK-shaped field compression: a 2-byte encoded-field-section prefix
//     plus the same static/dynamic-table size model as the HPACK module
//     (QPACK's static table differs from HPACK's, but the byte-cost
//     behaviour — literals once, 1-byte references after — is what matters
//     for DoH3's size accounting).
//
// Unlike DoH-over-H2 there is no TCP and no TLS record layer: the QUIC
// handshake IS the session setup, so DoH3's connection establishment costs
// the same single round trip as DoQ.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "h2/hpack.h"
#include "quic/connection.h"

namespace doxlab::h3 {

/// HTTP/3 frame types (RFC 9114 §7.2).
enum class H3FrameType : std::uint64_t {
  kData = 0x00,
  kHeaders = 0x01,
  kSettings = 0x04,
  kGoaway = 0x07,
};

/// Unidirectional stream ids used for the control streams: the first
/// client- and server-initiated unidirectional streams (RFC 9000 §2.1).
inline constexpr std::uint64_t kClientControlStream = 2;
inline constexpr std::uint64_t kServerControlStream = 3;

class H3Connection {
 public:
  struct Callbacks {
    std::function<void(std::uint64_t stream_id,
                       const std::vector<h2::Header>& headers,
                       bool end_stream)>
        on_headers;
    std::function<void(std::uint64_t stream_id,
                       std::span<const std::uint8_t> data, bool end_stream)>
        on_data;
    /// Fatal framing/compression failure (always kProtocolError).
    std::function<void(const util::Error&)> on_error;
  };

  /// Binds to an established (or establishing) QUIC connection. The owner
  /// must forward QUIC stream data via `on_stream_data`.
  H3Connection(std::shared_ptr<quic::QuicConnection> conn, bool is_client,
               Callbacks callbacks);

  /// Opens the control stream and sends SETTINGS. Clients call this once
  /// (before or after the handshake; QUIC queues as needed); servers call
  /// it from their accept hook.
  void start();

  /// Client: sends a request (HEADERS [+ DATA]) on a new bidirectional
  /// stream; returns the stream id.
  std::uint64_t send_request(const std::vector<h2::Header>& headers,
                             std::vector<std::uint8_t> body);

  /// Server: sends the response on the request's stream.
  void send_response(std::uint64_t stream_id,
                     const std::vector<h2::Header>& headers,
                     std::vector<std::uint8_t> body);

  /// Feed for QUIC stream data (request/response and control streams).
  void on_stream_data(std::uint64_t stream_id,
                      std::span<const std::uint8_t> data, bool fin);

  bool settings_received() const { return settings_received_; }

 private:
  std::vector<std::uint8_t> encode_frame(H3FrameType type,
                                         std::span<const std::uint8_t> body);
  std::vector<std::uint8_t> headers_frame(
      const std::vector<h2::Header>& headers);
  void process_request_stream(std::uint64_t stream_id, bool fin);
  void fail(const std::string& reason);

  std::shared_ptr<quic::QuicConnection> conn_;
  bool is_client_;
  Callbacks cb_;
  h2::HpackEncoder encoder_;
  h2::HpackDecoder decoder_;
  bool started_ = false;
  bool failed_ = false;
  bool settings_received_ = false;
  std::map<std::uint64_t, std::vector<std::uint8_t>> stream_buffers_;
  /// Unidirectional streams whose stream-type byte has been consumed, with
  /// the type value (frames keep arriving across multiple deliveries).
  std::map<std::uint64_t, std::uint8_t> uni_stream_types_;
};

}  // namespace doxlab::h3
