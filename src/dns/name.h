// DNS domain names: parsing, canonicalization, and RFC 1035 §4.1.4 wire
// encoding with message compression.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace doxlab::dns {

/// A fully-qualified domain name, stored as lower-cased labels.
class DnsName {
 public:
  DnsName() = default;

  /// Parses dotted presentation form ("google.com", trailing dot optional).
  /// Throws std::invalid_argument on empty labels, labels > 63 octets, or
  /// total length > 255 octets.
  static DnsName parse(std::string_view text);

  /// The root name (".").
  static DnsName root() { return DnsName(); }

  /// Builds from raw labels (already split; used by the wire decoder, where
  /// labels may legally contain '.' characters). Labels are lower-cased.
  /// Throws std::invalid_argument on invalid label or total length.
  static DnsName from_labels(std::vector<std::string> labels);

  const std::vector<std::string>& labels() const { return labels_; }
  bool is_root() const { return labels_.empty(); }

  /// Presentation form without trailing dot ("google.com"); "." for root.
  std::string to_string() const;

  /// Wire length without compression: 1 byte per label length + label bytes
  /// + terminating zero octet.
  std::size_t wire_length() const;

  /// True if `this` equals `other` or is a subdomain of it.
  bool is_subdomain_of(const DnsName& other) const;

  /// Strips the leftmost label ("www.google.com" -> "google.com").
  /// Precondition: !is_root().
  DnsName parent() const;

  bool operator==(const DnsName&) const = default;
  auto operator<=>(const DnsName&) const = default;

 private:
  std::vector<std::string> labels_;
};

/// Tracks name offsets within one message so later names can point at
/// earlier ones (RFC 1035 §4.1.4 compression pointers).
class NameCompressor {
 public:
  /// Writes `name` at the writer's current position, compressing against
  /// previously written names.
  void write(ByteWriter& writer, const DnsName& name);

 private:
  // Maps a name suffix (presentation form) to its absolute message offset.
  std::map<std::string, std::uint16_t> offsets_;
};

/// Reads a possibly-compressed name. The reader must be positioned within
/// the full message buffer (pointer targets are absolute offsets). Returns
/// nullopt on truncation, pointer loops, or forward pointers.
std::optional<DnsName> read_name(ByteReader& reader);

}  // namespace doxlab::dns
