// DNS domain names: parsing, canonicalization, and RFC 1035 §4.1.4 wire
// encoding with message compression.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace doxlab::dns {

class DnsName;

/// Reads a possibly-compressed name into `out`, reusing its storage (the
/// allocation-free decode path). The reader must be positioned within the
/// full message buffer (pointer targets are absolute offsets). Returns
/// false on truncation, pointer loops, or forward pointers.
bool read_name_into(ByteReader& reader, DnsName& out);

/// A fully-qualified domain name. Labels are stored lower-cased and
/// flattened into one length-prefixed string — the RFC 1035 wire encoding
/// without the terminating zero octet ("www.google.com" is stored as
/// "\3www\6google\3com") — so construction and decode cost a single
/// allocation instead of one per label, and comparison/hashing are single
/// memcmp-style operations over the flat bytes.
class DnsName {
 public:
  DnsName() = default;

  /// Parses dotted presentation form ("google.com", trailing dot optional).
  /// Throws std::invalid_argument on empty labels, labels > 63 octets, or
  /// total length > 255 octets.
  static DnsName parse(std::string_view text);

  /// The root name (".").
  static DnsName root() { return DnsName(); }

  /// Builds from raw labels (already split; used where labels may legally
  /// contain '.' characters). Labels are lower-cased. Throws
  /// std::invalid_argument on invalid label or total length.
  static DnsName from_labels(const std::vector<std::string>& labels);

  /// The labels as strings, materialized on demand (prefer label_count()/
  /// first_label() on hot paths).
  std::vector<std::string> labels() const;
  std::size_t label_count() const;
  /// The leftmost label; empty view for the root name.
  std::string_view first_label() const {
    return wire_.empty()
               ? std::string_view{}
               : std::string_view(wire_.data() + 1,
                                  static_cast<std::uint8_t>(wire_[0]));
  }
  bool is_root() const { return wire_.empty(); }

  /// The flat length-prefixed label bytes (wire form minus the terminating
  /// zero octet) — the compressor and hashers key on this directly.
  std::string_view wire_labels() const { return wire_; }

  /// Presentation form without trailing dot ("google.com"); "." for root.
  std::string to_string() const;

  /// Wire length without compression: 1 byte per label length + label bytes
  /// + terminating zero octet.
  std::size_t wire_length() const { return wire_.size() + 1; }

  /// Label-wise suffix test: true if `suffix` is the root name, equals
  /// `this`, or `this` is a subdomain of it. Allocation-free — a byte-level
  /// suffix compare over the flat label storage plus a label-boundary walk
  /// (label bytes may themselves contain length-like values, so ends_with
  /// alone would false-positive). Case-insensitive by construction: labels
  /// are stored lower-cased. This is the comparator the policy suffix rule
  /// evaluates per query.
  bool has_suffix(const DnsName& suffix) const;

  /// True if `this` equals `other` or is a subdomain of it (alias of
  /// has_suffix, kept for call-site readability).
  bool is_subdomain_of(const DnsName& other) const {
    return has_suffix(other);
  }

  /// Strips the leftmost label ("www.google.com" -> "google.com").
  /// Precondition: !is_root().
  DnsName parent() const;

  bool operator==(const DnsName&) const = default;
  auto operator<=>(const DnsName&) const = default;

 private:
  friend bool read_name_into(ByteReader& reader, DnsName& out);

  std::string wire_;
};

/// Tracks name offsets within one message so later names can point at
/// earlier ones (RFC 1035 §4.1.4 compression pointers). Suffix keys are
/// views into the written names' flat label storage, so the names must
/// outlive the compressor — true for Message::encode, where both live for
/// the duration of one encode call. Typical messages fit the inline entry
/// array and the compressor allocates nothing.
class NameCompressor {
 public:
  /// Writes `name` at the writer's current position, compressing against
  /// previously written names.
  void write(ByteWriter& writer, const DnsName& name);

 private:
  struct Entry {
    std::string_view suffix;  // wire-form label bytes of the suffix
    std::uint16_t offset = 0;
  };

  const Entry* find(std::string_view suffix) const;
  void remember(std::string_view suffix, std::uint16_t offset);

  std::array<Entry, 24> inline_{};
  std::size_t count_ = 0;
  std::vector<Entry> overflow_;
};

/// Reads a possibly-compressed name (allocating wrapper over
/// read_name_into). Returns nullopt on malformed input.
std::optional<DnsName> read_name(ByteReader& reader);

}  // namespace doxlab::dns

template <>
struct std::hash<doxlab::dns::DnsName> {
  std::size_t operator()(const doxlab::dns::DnsName& name) const noexcept {
    return std::hash<std::string_view>()(name.wire_labels());
  }
};
