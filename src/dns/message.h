// DNS messages: header, question and resource-record sections, and the full
// RFC 1035 wire codec (with EDNS0 per RFC 6891).
//
// The study's single-query byte counts (Table 1) are produced by actually
// encoding these messages, so the codec is byte-faithful: a cached A lookup
// for google.com with an EDNS0 COOKIE option encodes to the same sizes the
// paper reports for DoUDP (59-byte query / 63-byte response IP payloads).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "util/bytes.h"

namespace doxlab::dns {

/// A question-section entry.
struct Question {
  DnsName name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;

  bool operator==(const Question&) const = default;
};

/// A resource record. `rdata` holds the *uncompressed* wire RDATA; typed
/// constructors and accessors below avoid hand-rolling it.
struct ResourceRecord {
  DnsName name;
  RRType type = RRType::kA;
  /// For OPT pseudo-records this field carries the UDP payload size.
  std::uint16_t klass_or_udpsize = static_cast<std::uint16_t>(RRClass::kIN);
  /// For OPT pseudo-records this carries extended RCODE and flags.
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;

  bool operator==(const ResourceRecord&) const = default;
};

/// Builds an A record.
ResourceRecord make_a(DnsName name, std::uint32_t ttl, std::uint32_t ipv4);
/// Builds an AAAA record.
ResourceRecord make_aaaa(DnsName name, std::uint32_t ttl,
                         std::array<std::uint8_t, 16> ipv6);
/// Builds a CNAME record.
ResourceRecord make_cname(DnsName name, std::uint32_t ttl, DnsName target);
/// Builds a TXT record (single character-string, split if > 255).
ResourceRecord make_txt(DnsName name, std::uint32_t ttl, std::string text);

/// An EDNS0 option (RFC 6891 §6.1.2).
struct EdnsOption {
  std::uint16_t code = 0;
  std::vector<std::uint8_t> value;
};

/// RFC 7873 DNS COOKIE option code.
inline constexpr std::uint16_t kEdnsCookieOption = 10;
/// RFC 7828 edns-tcp-keepalive option code.
inline constexpr std::uint16_t kEdnsTcpKeepaliveOption = 11;
/// RFC 7830 padding option code.
inline constexpr std::uint16_t kEdnsPaddingOption = 12;

/// Builds an OPT pseudo-record (RFC 6891).
ResourceRecord make_opt(std::uint16_t udp_payload_size,
                        std::span<const EdnsOption> options = {});

/// Extracts the IPv4 address from an A record; nullopt on wrong type/size.
std::optional<std::uint32_t> rdata_as_a(const ResourceRecord& rr);
/// Extracts the target name from a CNAME/NS/PTR record.
std::optional<DnsName> rdata_as_name(const ResourceRecord& rr);
/// Parses OPT RDATA into options.
std::optional<std::vector<EdnsOption>> rdata_as_options(
    const ResourceRecord& rr);

/// A complete DNS message.
struct Message {
  std::uint16_t id = 0;
  bool qr = false;  ///< response flag
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncation
  bool rd = true;   ///< recursion desired
  bool ra = false;  ///< recursion available
  bool ad = false;  ///< authentic data
  bool cd = false;  ///< checking disabled
  RCode rcode = RCode::kNoError;

  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  /// Encodes to wire format with name compression.
  std::vector<std::uint8_t> encode() const;

  /// Encodes into a pooled buffer with `headroom` bytes reserved in front
  /// so outer layers (DoT length prefix, TLS record, H2 frame) can prepend
  /// their framing in place. Byte-identical to encode().
  util::Buffer encode_buffer(std::size_t headroom = 0) const;

  /// Decodes from wire format; nullopt on malformed input.
  static std::optional<Message> decode(std::span<const std::uint8_t> wire);

  /// Decodes into `out`, reusing its section/name/rdata storage — the
  /// steady-state allocation-free path. `out` is fully overwritten on
  /// success and unspecified on failure. Returns false on malformed input.
  static bool decode_into(std::span<const std::uint8_t> wire, Message& out);

  /// Convenience: the first question, if any.
  const Question* question() const {
    return questions.empty() ? nullptr : &questions.front();
  }

  /// Finds the OPT pseudo-record in additionals, if present.
  const ResourceRecord* opt() const;

  bool operator==(const Message&) const = default;

 private:
  /// Uncompressed-size upper bound (writers reserve this and never regrow).
  std::size_t encoded_size_estimate() const;
  /// Shared encoder behind encode()/encode_buffer().
  void encode_to(ByteWriter& w) const;
};

/// Builds a standard recursive query for (name, type) with EDNS0 and an
/// 8-byte client COOKIE — the same shape dnsperf sends in the paper's
/// measurements.
Message make_query(std::uint16_t id, const DnsName& name, RRType type,
                   std::uint16_t udp_payload_size = 1232,
                   bool with_cookie = true);

/// Builds a response skeleton echoing the query's id/question, with RA set.
Message make_response(const Message& query, RCode rcode = RCode::kNoError);

/// Pads `message` with an EDNS0 PADDING option (RFC 7830) so its encoded
/// size becomes the next multiple of `block_size` (RFC 8467 recommends 128
/// for queries, 468 for responses). Requires an OPT record (one is added if
/// missing). No-op when the message already aligns.
void pad_to_block(Message& message, std::size_t block_size);

/// The advertised UDP payload size from the query's OPT record, or 512
/// (RFC 1035 classic limit) when EDNS0 is absent.
std::uint16_t advertised_udp_size(const Message& query);

/// Truncates `response` for a UDP channel limited to `limit` bytes: if the
/// encoding exceeds the limit, answer/authority sections are dropped and TC
/// is set (the client is expected to retry over TCP). Returns true if
/// truncation happened.
bool truncate_for_udp(Message& response, std::size_t limit);

}  // namespace doxlab::dns
