#include "dns/message.h"

#include <algorithm>

namespace doxlab::dns {

std::string_view rrtype_name(RRType t) {
  switch (t) {
    case RRType::kA: return "A";
    case RRType::kNS: return "NS";
    case RRType::kCNAME: return "CNAME";
    case RRType::kSOA: return "SOA";
    case RRType::kPTR: return "PTR";
    case RRType::kMX: return "MX";
    case RRType::kTXT: return "TXT";
    case RRType::kAAAA: return "AAAA";
    case RRType::kSVCB: return "SVCB";
    case RRType::kHTTPS: return "HTTPS";
    case RRType::kOPT: return "OPT";
  }
  return "?";
}

std::string_view rcode_name(RCode r) {
  switch (r) {
    case RCode::kNoError: return "NOERROR";
    case RCode::kFormErr: return "FORMERR";
    case RCode::kServFail: return "SERVFAIL";
    case RCode::kNXDomain: return "NXDOMAIN";
    case RCode::kNotImp: return "NOTIMP";
    case RCode::kRefused: return "REFUSED";
  }
  return "?";
}

ResourceRecord make_a(DnsName name, std::uint32_t ttl, std::uint32_t ipv4) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = RRType::kA;
  rr.ttl = ttl;
  ByteWriter w;
  w.u32(ipv4);
  rr.rdata = w.take();
  return rr;
}

ResourceRecord make_aaaa(DnsName name, std::uint32_t ttl,
                         std::array<std::uint8_t, 16> ipv6) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = RRType::kAAAA;
  rr.ttl = ttl;
  rr.rdata.assign(ipv6.begin(), ipv6.end());
  return rr;
}

ResourceRecord make_cname(DnsName name, std::uint32_t ttl, DnsName target) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = RRType::kCNAME;
  rr.ttl = ttl;
  ByteWriter w;
  NameCompressor nc;  // Fresh compressor: rdata stored uncompressed.
  nc.write(w, target);
  rr.rdata = w.take();
  return rr;
}

ResourceRecord make_txt(DnsName name, std::uint32_t ttl, std::string text) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = RRType::kTXT;
  rr.ttl = ttl;
  ByteWriter w;
  std::string_view rest = text;
  do {
    const std::size_t chunk = std::min<std::size_t>(rest.size(), 255);
    w.u8(static_cast<std::uint8_t>(chunk));
    w.bytes(rest.substr(0, chunk));
    rest.remove_prefix(chunk);
  } while (!rest.empty());
  rr.rdata = w.take();
  return rr;
}

ResourceRecord make_opt(std::uint16_t udp_payload_size,
                        std::span<const EdnsOption> options) {
  ResourceRecord rr;
  rr.name = DnsName::root();
  rr.type = RRType::kOPT;
  rr.klass_or_udpsize = udp_payload_size;
  rr.ttl = 0;  // extended rcode 0, version 0, flags 0
  ByteWriter w;
  for (const EdnsOption& opt : options) {
    w.u16(opt.code);
    w.u16(static_cast<std::uint16_t>(opt.value.size()));
    w.bytes(opt.value);
  }
  rr.rdata = w.take();
  return rr;
}

std::optional<std::uint32_t> rdata_as_a(const ResourceRecord& rr) {
  if (rr.type != RRType::kA || rr.rdata.size() != 4) return std::nullopt;
  ByteReader r(rr.rdata);
  return r.u32();
}

std::optional<DnsName> rdata_as_name(const ResourceRecord& rr) {
  if (rr.type != RRType::kCNAME && rr.type != RRType::kNS &&
      rr.type != RRType::kPTR) {
    return std::nullopt;
  }
  ByteReader r(rr.rdata);
  return read_name(r);
}

std::optional<std::vector<EdnsOption>> rdata_as_options(
    const ResourceRecord& rr) {
  if (rr.type != RRType::kOPT) return std::nullopt;
  std::vector<EdnsOption> out;
  ByteReader r(rr.rdata);
  while (!r.at_end()) {
    auto code = r.u16();
    auto len = r.u16();
    if (!code || !len) return std::nullopt;
    auto value = r.bytes(*len);
    if (!value) return std::nullopt;
    out.push_back(EdnsOption{*code, {value->begin(), value->end()}});
  }
  return out;
}

namespace {

void write_record(ByteWriter& w, NameCompressor& nc,
                  const ResourceRecord& rr) {
  nc.write(w, rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(rr.klass_or_udpsize);
  w.u32(rr.ttl);
  // RDATA with embedded names could be compressed against the message, but
  // storing and emitting it uncompressed is always legal and keeps records
  // self-contained.
  w.u16(static_cast<std::uint16_t>(rr.rdata.size()));
  w.bytes(rr.rdata);
}

bool read_record_into(ByteReader& r, ResourceRecord& rr) {
  if (!read_name_into(r, rr.name)) return false;
  auto type = r.u16();
  auto klass = r.u16();
  auto ttl = r.u32();
  auto rdlen = r.u16();
  if (!type || !klass || !ttl || !rdlen) return false;
  rr.type = static_cast<RRType>(*type);
  rr.klass_or_udpsize = *klass;
  rr.ttl = *ttl;

  // Name-bearing RDATA may be compressed against the message; decode and
  // re-encode it uncompressed so the record stands alone.
  if (rr.type == RRType::kCNAME || rr.type == RRType::kNS ||
      rr.type == RRType::kPTR) {
    const std::size_t end = r.position() + *rdlen;
    DnsName target;
    if (!read_name_into(r, target) || r.position() > end) return false;
    if (!r.seek(end)) return false;
    // Uncompressed name wire form: flat label bytes + terminating zero.
    const std::string_view labels = target.wire_labels();
    rr.rdata.clear();
    rr.rdata.reserve(labels.size() + 1);
    rr.rdata.insert(rr.rdata.end(), labels.begin(), labels.end());
    rr.rdata.push_back(0);
    return true;
  }

  auto rdata = r.bytes(*rdlen);
  if (!rdata) return false;
  rr.rdata.assign(rdata->begin(), rdata->end());
  return true;
}

}  // namespace

const ResourceRecord* Message::opt() const {
  for (const ResourceRecord& rr : additionals) {
    if (rr.type == RRType::kOPT) return &rr;
  }
  return nullptr;
}

std::size_t Message::encoded_size_estimate() const {
  // Uncompressed-size upper bound so writers never regrow: 12-byte header,
  // name + type/class per question, name + fixed 10 bytes (type, class,
  // ttl, rdlength) + rdata per record.
  std::size_t estimate = 12;
  for (const Question& q : questions) estimate += q.name.wire_length() + 4;
  for (const auto* section : {&answers, &authorities, &additionals}) {
    for (const ResourceRecord& rr : *section) {
      estimate += rr.name.wire_length() + 10 + rr.rdata.size();
    }
  }
  return estimate;
}

void Message::encode_to(ByteWriter& w) const {
  NameCompressor nc;

  w.u16(id);
  std::uint16_t flags = 0;
  if (qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(opcode) << 11;
  if (aa) flags |= 0x0400;
  if (tc) flags |= 0x0200;
  if (rd) flags |= 0x0100;
  if (ra) flags |= 0x0080;
  if (ad) flags |= 0x0020;
  if (cd) flags |= 0x0010;
  flags |= static_cast<std::uint16_t>(rcode) & 0x0F;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size()));

  for (const Question& q : questions) {
    nc.write(w, q.name);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(static_cast<std::uint16_t>(q.klass));
  }
  for (const ResourceRecord& rr : answers) write_record(w, nc, rr);
  for (const ResourceRecord& rr : authorities) write_record(w, nc, rr);
  for (const ResourceRecord& rr : additionals) write_record(w, nc, rr);
}

std::vector<std::uint8_t> Message::encode() const {
  ByteWriter w(encoded_size_estimate());
  encode_to(w);
  return w.take();
}

util::Buffer Message::encode_buffer(std::size_t headroom) const {
  ByteWriter w = ByteWriter::pooled(encoded_size_estimate(), headroom);
  encode_to(w);
  return w.take_buffer();
}

bool Message::decode_into(std::span<const std::uint8_t> wire, Message& out) {
  ByteReader r(wire);
  auto id = r.u16();
  auto flags = r.u16();
  auto qd = r.u16();
  auto an = r.u16();
  auto ns = r.u16();
  auto ar = r.u16();
  if (!id || !flags || !qd || !an || !ns || !ar) return false;

  out.id = *id;
  out.qr = (*flags & 0x8000) != 0;
  out.opcode = static_cast<Opcode>((*flags >> 11) & 0x0F);
  out.aa = (*flags & 0x0400) != 0;
  out.tc = (*flags & 0x0200) != 0;
  out.rd = (*flags & 0x0100) != 0;
  out.ra = (*flags & 0x0080) != 0;
  out.ad = (*flags & 0x0020) != 0;
  out.cd = (*flags & 0x0010) != 0;
  out.rcode = static_cast<RCode>(*flags & 0x0F);

  // resize + element-wise overwrite reuses each element's name and rdata
  // capacity across decodes — no allocations once the message is warm.
  out.questions.resize(*qd);
  for (Question& q : out.questions) {
    if (!read_name_into(r, q.name)) return false;
    auto type = r.u16();
    auto klass = r.u16();
    if (!type || !klass) return false;
    q.type = static_cast<RRType>(*type);
    q.klass = static_cast<RRClass>(*klass);
  }
  out.answers.resize(*an);
  for (ResourceRecord& rr : out.answers) {
    if (!read_record_into(r, rr)) return false;
  }
  out.authorities.resize(*ns);
  for (ResourceRecord& rr : out.authorities) {
    if (!read_record_into(r, rr)) return false;
  }
  out.additionals.resize(*ar);
  for (ResourceRecord& rr : out.additionals) {
    if (!read_record_into(r, rr)) return false;
  }
  return true;
}

std::optional<Message> Message::decode(std::span<const std::uint8_t> wire) {
  Message m;
  if (!decode_into(wire, m)) return std::nullopt;
  return m;
}

Message make_query(std::uint16_t id, const DnsName& name, RRType type,
                   std::uint16_t udp_payload_size, bool with_cookie) {
  Message m;
  m.id = id;
  m.rd = true;
  m.questions.push_back(Question{name, type, RRClass::kIN});
  if (with_cookie) {
    // 8-byte client cookie (RFC 7873). Contents are irrelevant to sizing.
    EdnsOption cookie{kEdnsCookieOption,
                      {0xde, 0xad, 0xbe, 0xef, 0x13, 0x37, 0x42, 0x77}};
    m.additionals.push_back(
        make_opt(udp_payload_size, std::span(&cookie, 1)));
  } else {
    m.additionals.push_back(make_opt(udp_payload_size));
  }
  return m;
}

void pad_to_block(Message& message, std::size_t block_size) {
  if (block_size == 0) return;
  // Ensure an OPT record exists.
  if (message.opt() == nullptr) {
    message.additionals.push_back(make_opt(1232));
  }
  const std::size_t unpadded = message.encode().size();
  // The option itself costs 4 bytes of header; zero-length padding is legal.
  const std::size_t with_empty = unpadded + 4;
  std::size_t target = ((with_empty + block_size - 1) / block_size) *
                       block_size;
  if (unpadded % block_size == 0) return;  // already aligned
  const std::size_t pad_len = target - with_empty;
  for (ResourceRecord& rr : message.additionals) {
    if (rr.type != RRType::kOPT) continue;
    ByteWriter w;
    w.bytes(rr.rdata);
    w.u16(kEdnsPaddingOption);
    w.u16(static_cast<std::uint16_t>(pad_len));
    w.pad(pad_len);
    rr.rdata = w.take();
    return;
  }
}

std::uint16_t advertised_udp_size(const Message& query) {
  const ResourceRecord* opt = query.opt();
  if (opt == nullptr) return 512;
  return std::max<std::uint16_t>(opt->klass_or_udpsize, 512);
}

bool truncate_for_udp(Message& response, std::size_t limit) {
  if (response.encode().size() <= limit) return false;
  response.tc = true;
  response.answers.clear();
  response.authorities.clear();
  return true;
}

Message make_response(const Message& query, RCode rcode) {
  Message m;
  m.id = query.id;
  m.qr = true;
  m.rd = query.rd;
  m.ra = true;
  m.rcode = rcode;
  m.questions = query.questions;
  if (query.opt() != nullptr) {
    // Respond with a plain OPT advertising our UDP size (no options echoes
    // what large public resolvers do for unsolicited cookies).
    m.additionals.push_back(make_opt(1232));
  }
  return m;
}

}  // namespace doxlab::dns
