// TTL-bounded DNS record cache, used by resolvers (and by the local proxy
// when its cache is *enabled* — the study disables it, and tests cover both).
//
// The cache is unbounded by default (the study's resolvers never evict), but
// can be given a capacity bound: insertion beyond the bound evicts the
// least-recently-used entry, which is what a shared forwarder cache under
// sustained traffic needs. It also supports RFC 8767 serve-stale lookups:
// an expired entry can still be returned (with clamped TTLs) for a bounded
// staleness window, leaving the refresh policy to the caller.
//
// Storage is a hash map keyed on the name's flat wire-form labels, with
// transparent hash/equality so lookups take the (name, type) pair by
// reference: a cache hit performs no heap allocation — callers on hot paths
// use lookup_ref()/lookup_stale_ref(), which hand back a pointer into the
// entry instead of a TTL-adjusted copy.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/cache_tier.h"
#include "dns/message.h"
#include "util/types.h"

namespace doxlab::dns {

/// A cached answer: the records plus their insertion time.
struct CacheEntry {
  std::vector<ResourceRecord> records;
  SimTime inserted_at = 0;
  std::uint32_t original_ttl = 0;
  /// Approximate wire footprint of `records` (names + fixed RR headers +
  /// rdata), computed once at insert for the tier byte accounting.
  std::size_t wire_bytes = 0;
};

/// Result of a serve-stale lookup.
struct StaleLookup {
  std::vector<ResourceRecord> records;
  /// True when the entry had expired and the records carry the clamped
  /// stale TTL instead of a decayed one.
  bool stale = false;
};

/// A zero-copy cache hit: `records` points into the cache entry and stays
/// valid until the next insert/eviction. Record TTLs are the *original*
/// ones; subtract `age_s` (fresh hits) or clamp to the stale TTL (stale
/// hits) when materializing an answer.
struct EntryRef {
  const std::vector<ResourceRecord>* records = nullptr;
  /// Whole seconds since insertion (0 for stale hits — use the stale TTL).
  std::uint32_t age_s = 0;
  bool stale = false;
};

/// Cache keyed by (qname, qtype). TTLs decay against simulated time.
class Cache {
 public:
  /// Inserts (replacing) the answer set for a key. `ttl` is taken from the
  /// minimum record TTL; an empty record set is cached as a negative entry.
  /// May evict the least-recently-used entry if a capacity bound is set.
  void insert(const DnsName& name, RRType type,
              std::vector<ResourceRecord> records, SimTime now);

  /// Returns the records (with TTLs decremented by elapsed time) if the
  /// entry exists and has not expired at `now`.
  std::optional<std::vector<ResourceRecord>> lookup(const DnsName& name,
                                                    RRType type,
                                                    SimTime now) const;

  /// RFC 8767 serve-stale lookup: like lookup(), but an entry that expired
  /// no more than `max_stale` ago is still returned, its record TTLs
  /// clamped to `stale_ttl` (RFC 8767 §4 recommends <= 30 s). Refreshing
  /// the entry is the caller's responsibility.
  std::optional<StaleLookup> lookup_stale(const DnsName& name, RRType type,
                                          SimTime now, SimTime max_stale,
                                          std::uint32_t stale_ttl = 30) const;

  /// Allocation-free variant of lookup(): a hit returns a reference into
  /// the entry (valid until the next mutation) instead of copying records.
  std::optional<EntryRef> lookup_ref(const DnsName& name, RRType type,
                                     SimTime now) const;

  /// Allocation-free variant of lookup_stale(). Stale hits have age_s == 0
  /// and stale == true; the caller stamps its own stale TTL.
  std::optional<EntryRef> lookup_stale_ref(const DnsName& name, RRType type,
                                           SimTime now,
                                           SimTime max_stale) const;

  /// Drops expired entries; returns how many were evicted. Does not count
  /// towards evictions() (which tracks capacity pressure only).
  std::size_t evict_expired(SimTime now);

  /// Bounds the cache to `max_entries` (0 = unbounded, the default).
  /// Shrinking below the current size evicts least-recently-used entries.
  void set_capacity(std::size_t max_entries);
  std::size_t capacity() const { return capacity_; }

  void clear();
  std::size_t size() const { return entries_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Entries evicted by the capacity bound (not TTL expiry).
  std::uint64_t evictions() const { return evictions_; }

  /// Uniform tier observability (see dns/cache_tier.h). `evictions` here
  /// covers both capacity pressure and expiry reaping.
  TierStats tier_stats() const;

 private:
  struct Key {
    DnsName name;
    RRType type = RRType::kA;
    bool operator==(const Key&) const = default;
  };
  /// Borrowed key for heterogeneous find(): no DnsName copy per lookup.
  struct KeyView {
    const DnsName& name;
    RRType type;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t mix(const DnsName& name, RRType type) noexcept {
      return std::hash<DnsName>()(name) ^
             (static_cast<std::size_t>(type) * 0x9E3779B97F4A7C15ull);
    }
    std::size_t operator()(const Key& k) const noexcept {
      return mix(k.name, k.type);
    }
    std::size_t operator()(const KeyView& k) const noexcept {
      return mix(k.name, k.type);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const KeyView& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const Key& a, const KeyView& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
  };
  struct Node {
    CacheEntry entry;
    /// Position in lru_ (front = most recently used).
    std::list<Key>::iterator lru;
  };
  using Map = std::unordered_map<Key, Node, KeyHash, KeyEq>;

  bool expired(const CacheEntry& entry, SimTime now) const;
  /// Moves a node to the front of the LRU list.
  void touch(const Node& node) const;
  /// Evicts LRU entries until size() <= capacity (no-op when unbounded).
  void enforce_capacity();

  Map entries_;
  mutable std::list<Key> lru_;
  std::size_t capacity_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  mutable std::uint64_t stale_hits_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expired_evictions_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t bytes_ = 0;
};

static_assert(CacheTier<Cache>);

}  // namespace doxlab::dns
