// TTL-bounded DNS record cache, used by resolvers (and by the local proxy
// when its cache is *enabled* — the study disables it, and tests cover both).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "util/types.h"

namespace doxlab::dns {

/// A cached answer: the records plus their insertion time.
struct CacheEntry {
  std::vector<ResourceRecord> records;
  SimTime inserted_at = 0;
  std::uint32_t original_ttl = 0;
};

/// Cache keyed by (qname, qtype). TTLs decay against simulated time.
class Cache {
 public:
  /// Inserts (replacing) the answer set for a key. `ttl` is taken from the
  /// minimum record TTL; an empty record set is cached as a negative entry.
  void insert(const DnsName& name, RRType type,
              std::vector<ResourceRecord> records, SimTime now);

  /// Returns the records (with TTLs decremented by elapsed time) if the
  /// entry exists and has not expired at `now`.
  std::optional<std::vector<ResourceRecord>> lookup(const DnsName& name,
                                                    RRType type,
                                                    SimTime now) const;

  /// Drops expired entries; returns how many were evicted.
  std::size_t evict_expired(SimTime now);

  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<DnsName, RRType>;
  bool expired(const CacheEntry& entry, SimTime now) const;

  std::map<Key, CacheEntry> entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace doxlab::dns
