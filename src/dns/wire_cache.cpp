#include "dns/wire_cache.h"

#include <cstring>
#include <limits>

namespace doxlab::dns {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint8_t fold(std::uint8_t b) {
  return (b >= 'A' && b <= 'Z') ? static_cast<std::uint8_t>(b + 32) : b;
}

inline std::uint32_t read_be32(const std::uint8_t* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

inline void write_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline std::uint16_t read_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t(p[0]) << 8) | p[1]);
}

/// Advances `pos` past a wire-format name (labels, root octet, or a
/// compression pointer, which ends the name). Returns false on truncation
/// or a reserved label type.
bool skip_name(std::span<const std::uint8_t> wire, std::size_t& pos) {
  while (pos < wire.size()) {
    const std::uint8_t len = wire[pos];
    if (len == 0) {
      ++pos;
      return true;
    }
    if ((len & 0xC0) == 0xC0) {
      if (pos + 2 > wire.size()) return false;
      pos += 2;
      return true;
    }
    if ((len & 0xC0) != 0) return false;
    pos += 1 + len;
  }
  return false;
}

}  // namespace

bool WireCache::scan_query(std::span<const std::uint8_t> query,
                           FoldRegions& regions) {
  // Offsets are stored as u16, so the image itself must fit; real DNS/UDP
  // payloads always do.
  if (query.size() < 12 || query.size() > 0xFFFF) return false;
  if ((query[2] & 0x80) != 0) return false;  // QR set: not a query
  const std::uint16_t qdcount = read_be16(query.data() + 4);
  if (qdcount == 0) return false;
  std::size_t pos = 12;
  for (std::uint16_t q = 0; q < qdcount; ++q) {
    while (true) {
      if (pos >= query.size()) return false;
      const std::uint8_t len = query[pos];
      if (len == 0) {
        ++pos;
        break;
      }
      // Compressed or reserved label types in a *question* name are rare
      // enough to leave to the decode path rather than normalize here.
      if ((len & 0xC0) != 0) return false;
      if (pos + 1 + len > query.size()) return false;
      if (regions.count >= regions.spans.size()) return false;
      regions.spans[regions.count++] = {
          static_cast<std::uint16_t>(pos + 1),
          static_cast<std::uint16_t>(pos + 1 + len)};
      pos += 1 + len;
    }
    pos += 4;  // qtype + qclass
    if (pos > query.size()) return false;
  }
  return true;
}

std::uint64_t WireCache::hash_normalized(std::span<const std::uint8_t> query,
                                         const FoldRegions& regions) {
  std::uint64_t h = kFnvOffset;
  const auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= kFnvPrime;
  };
  // The transaction ID hashes as zero.
  mix(0);
  mix(0);
  std::size_t pos = 2;
  for (std::size_t r = 0; r < regions.count; ++r) {
    const auto [begin, end] = regions.spans[r];
    for (; pos < begin; ++pos) mix(query[pos]);
    for (; pos < end; ++pos) mix(fold(query[pos]));
  }
  for (; pos < query.size(); ++pos) mix(query[pos]);
  return h;
}

void WireCache::normalize(std::span<const std::uint8_t> query,
                          const FoldRegions& regions,
                          std::vector<std::uint8_t>& out) {
  out.assign(query.begin(), query.end());
  out[0] = 0;
  out[1] = 0;
  for (std::size_t r = 0; r < regions.count; ++r) {
    const auto [begin, end] = regions.spans[r];
    for (std::size_t i = begin; i < end; ++i) out[i] = fold(out[i]);
  }
}

bool WireCache::equal_normalized(std::span<const std::uint8_t> query,
                                 const FoldRegions& regions,
                                 std::span<const std::uint8_t> stored) {
  if (query.size() != stored.size()) return false;
  // Stored images have a zeroed ID by construction; skip the incoming one.
  std::size_t pos = 2;
  for (std::size_t r = 0; r < regions.count; ++r) {
    const auto [begin, end] = regions.spans[r];
    if (std::memcmp(query.data() + pos, stored.data() + pos, begin - pos) !=
        0) {
      return false;
    }
    for (pos = begin; pos < end; ++pos) {
      if (fold(query[pos]) != stored[pos]) return false;
    }
  }
  return std::memcmp(query.data() + pos, stored.data() + pos,
                     query.size() - pos) == 0;
}

bool WireCache::scan_ttl_offsets(std::span<const std::uint8_t> response,
                                 std::vector<std::uint16_t>& offsets,
                                 std::uint32_t& min_ttl,
                                 std::uint16_t& answer_count) {
  if (response.size() < 12 || response.size() > 0xFFFF) return false;
  const std::uint16_t qdcount = read_be16(response.data() + 4);
  answer_count = read_be16(response.data() + 6);
  const std::uint16_t nscount = read_be16(response.data() + 8);
  const std::uint16_t arcount = read_be16(response.data() + 10);
  std::size_t pos = 12;
  for (std::uint16_t q = 0; q < qdcount; ++q) {
    if (!skip_name(response, pos)) return false;
    pos += 4;
    if (pos > response.size()) return false;
  }
  const std::uint32_t records =
      std::uint32_t(answer_count) + nscount + arcount;
  for (std::uint32_t r = 0; r < records; ++r) {
    if (!skip_name(response, pos)) return false;
    if (pos + 10 > response.size()) return false;
    const std::uint16_t type = read_be16(response.data() + pos);
    const std::size_t ttl_offset = pos + 4;
    const std::uint32_t ttl = read_be32(response.data() + ttl_offset);
    const std::uint16_t rdlen = read_be16(response.data() + pos + 8);
    pos += 10 + rdlen;
    if (pos > response.size()) return false;
    // OPT (RRType 41) reuses the TTL field for flags — never patch it.
    if (type != static_cast<std::uint16_t>(RRType::kOPT)) {
      offsets.push_back(static_cast<std::uint16_t>(ttl_offset));
      min_ttl = std::min(min_ttl, ttl);
    }
  }
  return pos == response.size();
}

bool WireCache::parse_question(std::span<const std::uint8_t> query,
                               Question& out) {
  if (query.size() < 12) return false;
  ByteReader reader(query);
  if (!reader.seek(12)) return false;
  if (!read_name_into(reader, out.name)) return false;
  const auto type = reader.u16();
  const auto klass = reader.u16();
  if (!type || !klass) return false;
  out.type = static_cast<RRType>(*type);
  out.klass = static_cast<RRClass>(*klass);
  return true;
}

bool WireCache::probe(std::span<const std::uint8_t> query, SimTime now,
                      Hit& hit) {
  ++stats_.probes;
  FoldRegions regions;
  if (!scan_query(query, regions)) return false;
  const std::uint64_t key = hash_normalized(query, regions);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (!equal_normalized(query, regions, it->second.query)) {
    ++stats_.collisions;
    return false;
  }
  const Entry& entry = it->second;
  if (tier_fresh(entry.inserted_at, entry.min_ttl_s, now)) {
    hit = Hit{key, /*stale=*/false, tier_age_s(entry.inserted_at, now)};
    ++stats_.hits;
    return true;
  }
  if (config_.serve_stale &&
      tier_stale_within(entry.inserted_at, entry.min_ttl_s, now,
                        config_.max_stale)) {
    hit = Hit{key, /*stale=*/true, tier_age_s(entry.inserted_at, now)};
    ++stats_.stale_hits;
    return true;
  }
  bytes_ -= entry_bytes(entry);
  entries_.erase(it);
  ++stats_.expired_evictions;
  return false;
}

util::Buffer WireCache::materialize(const Hit& hit,
                                    std::span<const std::uint8_t> query) {
  auto it = entries_.find(hit.key);
  Entry& entry = it->second;
  const std::size_t n = entry.response.size();
  util::Buffer out = util::Buffer::allocate(n);
  std::memcpy(out.append(n), entry.response.data(), n);
  std::uint8_t* bytes = out.data();
  bytes[0] = query[0];
  bytes[1] = query[1];
  if (hit.stale) {
    for (const std::uint16_t offset : entry.ttl_offsets) {
      write_be32(bytes + offset, config_.stale_ttl);
    }
    // A stale image is served at most once; the caller's background
    // refresh re-fills the slot with fresh bytes.
    bytes_ -= entry_bytes(entry);
    entries_.erase(it);
    ++stats_.expired_evictions;
  } else if (hit.age_s > 0) {
    for (const std::uint16_t offset : entry.ttl_offsets) {
      const std::uint32_t ttl = read_be32(bytes + offset);
      write_be32(bytes + offset, tier_decay_ttl(ttl, hit.age_s));
    }
  }
  return out;
}

bool WireCache::insert(std::span<const std::uint8_t> query,
                       std::span<const std::uint8_t> response, SimTime now) {
  if (config_.capacity == 0) {
    ++stats_.rejected;
    return false;
  }
  FoldRegions regions;
  if (!scan_query(query, regions)) {
    ++stats_.rejected;
    return false;
  }
  std::vector<std::uint16_t> offsets;
  std::uint32_t min_ttl = std::numeric_limits<std::uint32_t>::max();
  std::uint16_t answer_count = 0;
  if (!scan_ttl_offsets(response, offsets, min_ttl, answer_count) ||
      answer_count == 0 || offsets.empty() || min_ttl == 0 ||
      min_ttl == std::numeric_limits<std::uint32_t>::max()) {
    // Negative and zero-TTL answers stay a Message-path concern.
    ++stats_.rejected;
    return false;
  }
  const std::uint64_t key = hash_normalized(query, regions);
  if (!entries_.contains(key) && entries_.size() >= config_.capacity) {
    // Full: reap everything past its serve window, then re-check the bound.
    const SimTime grace = config_.serve_stale ? config_.max_stale : 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (now - deadline(it->second) >= grace) {
        bytes_ -= entry_bytes(it->second);
        it = entries_.erase(it);
        ++stats_.expired_evictions;
      } else {
        ++it;
      }
    }
    if (entries_.size() >= config_.capacity) {
      ++stats_.rejected;
      return false;
    }
  }
  Entry& entry = entries_[key];
  bytes_ -= entry_bytes(entry);  // replacement: retire the old image's bytes
  normalize(query, regions, entry.query);
  entry.response = util::Buffer::copy_of(response);
  entry.ttl_offsets = std::move(offsets);
  entry.min_ttl_s = min_ttl;
  entry.inserted_at = now;
  bytes_ += entry_bytes(entry);
  ++stats_.inserts;
  return true;
}

TierStats WireCache::tier_stats() const {
  TierStats t;
  t.lookups = stats_.probes;
  t.hits = stats_.hits + stats_.stale_hits;
  t.stale_hits = stats_.stale_hits;
  t.inserts = stats_.inserts;
  t.evictions = stats_.expired_evictions;
  t.entries = entries_.size();
  t.bytes = bytes_;
  return t;
}

}  // namespace doxlab::dns
