#include "dns/cache.h"

#include <algorithm>

namespace doxlab::dns {

namespace {
/// Negative entries (no records) are cached for 60 simulated seconds.
constexpr std::uint32_t kNegativeTtlSeconds = 60;
}  // namespace

void Cache::insert(const DnsName& name, RRType type,
                   std::vector<ResourceRecord> records, SimTime now) {
  CacheEntry entry;
  entry.inserted_at = now;
  if (records.empty()) {
    entry.original_ttl = kNegativeTtlSeconds;
  } else {
    std::uint32_t min_ttl = UINT32_MAX;
    for (const auto& rr : records) min_ttl = std::min(min_ttl, rr.ttl);
    entry.original_ttl = min_ttl;
  }
  entry.records = std::move(records);
  entries_[Key{name, type}] = std::move(entry);
}

bool Cache::expired(const CacheEntry& entry, SimTime now) const {
  const SimTime age = now - entry.inserted_at;
  return age >= static_cast<SimTime>(entry.original_ttl) * kSecond;
}

std::optional<std::vector<ResourceRecord>> Cache::lookup(const DnsName& name,
                                                         RRType type,
                                                         SimTime now) const {
  auto it = entries_.find(Key{name, type});
  if (it == entries_.end() || expired(it->second, now)) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  const SimTime age_s = (now - it->second.inserted_at) / kSecond;
  std::vector<ResourceRecord> out = it->second.records;
  for (auto& rr : out) {
    rr.ttl = rr.ttl > age_s ? rr.ttl - static_cast<std::uint32_t>(age_s) : 0;
  }
  return out;
}

std::size_t Cache::evict_expired(SimTime now) {
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (expired(it->second, now)) {
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace doxlab::dns
