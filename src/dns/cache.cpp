#include "dns/cache.h"

#include <algorithm>

namespace doxlab::dns {

namespace {
/// Negative entries (no records) are cached for 60 simulated seconds.
constexpr std::uint32_t kNegativeTtlSeconds = 60;

/// Approximate wire footprint of a record set: uncompressed owner name +
/// the 10 fixed RR header bytes + rdata, per record. Matches what
/// SharedPacketCache::encode_rrset would produce, so L1 and L2 byte
/// accounting are comparable.
std::size_t records_wire_bytes(const std::vector<ResourceRecord>& records) {
  std::size_t bytes = 0;
  for (const ResourceRecord& rr : records) {
    bytes += rr.name.wire_length() + 10 + rr.rdata.size();
  }
  return bytes;
}
}  // namespace

void Cache::insert(const DnsName& name, RRType type,
                   std::vector<ResourceRecord> records, SimTime now) {
  CacheEntry entry;
  entry.inserted_at = now;
  if (records.empty()) {
    entry.original_ttl = kNegativeTtlSeconds;
  } else {
    std::uint32_t min_ttl = UINT32_MAX;
    for (const auto& rr : records) min_ttl = std::min(min_ttl, rr.ttl);
    entry.original_ttl = min_ttl;
  }
  entry.wire_bytes = records_wire_bytes(records);
  entry.records = std::move(records);
  ++inserts_;
  bytes_ += entry.wire_bytes;

  auto it = entries_.find(KeyView{name, type});
  if (it != entries_.end()) {
    bytes_ -= it->second.entry.wire_bytes;
    it->second.entry = std::move(entry);
    touch(it->second);
    return;
  }
  lru_.push_front(Key{name, type});
  entries_.emplace(lru_.front(), Node{std::move(entry), lru_.begin()});
  enforce_capacity();
}

bool Cache::expired(const CacheEntry& entry, SimTime now) const {
  return !tier_fresh(entry.inserted_at, entry.original_ttl, now);
}

void Cache::touch(const Node& node) const {
  lru_.splice(lru_.begin(), lru_, node.lru);
}

void Cache::enforce_capacity() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    auto it = entries_.find(lru_.back());
    bytes_ -= it->second.entry.wire_bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

void Cache::set_capacity(std::size_t max_entries) {
  capacity_ = max_entries;
  enforce_capacity();
}

void Cache::clear() {
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

std::optional<EntryRef> Cache::lookup_ref(const DnsName& name, RRType type,
                                          SimTime now) const {
  auto it = entries_.find(KeyView{name, type});
  if (it == entries_.end() || expired(it->second.entry, now)) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  touch(it->second);
  const CacheEntry& entry = it->second.entry;
  EntryRef ref;
  ref.records = &entry.records;
  ref.age_s = tier_age_s(entry.inserted_at, now);
  return ref;
}

std::optional<EntryRef> Cache::lookup_stale_ref(const DnsName& name,
                                                RRType type, SimTime now,
                                                SimTime max_stale) const {
  auto it = entries_.find(KeyView{name, type});
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  const CacheEntry& entry = it->second.entry;
  if (!expired(entry, now)) {
    ++hits_;
    touch(it->second);
    EntryRef ref;
    ref.records = &entry.records;
    ref.age_s = tier_age_s(entry.inserted_at, now);
    return ref;
  }
  if (!tier_stale_within(entry.inserted_at, entry.original_ttl, now,
                         max_stale)) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  ++stale_hits_;
  touch(it->second);
  EntryRef ref;
  ref.records = &entry.records;
  ref.stale = true;
  return ref;
}

std::optional<std::vector<ResourceRecord>> Cache::lookup(const DnsName& name,
                                                         RRType type,
                                                         SimTime now) const {
  auto ref = lookup_ref(name, type, now);
  if (!ref) return std::nullopt;
  std::vector<ResourceRecord> out = *ref->records;
  for (auto& rr : out) rr.ttl = tier_decay_ttl(rr.ttl, ref->age_s);
  return out;
}

std::optional<StaleLookup> Cache::lookup_stale(const DnsName& name,
                                               RRType type, SimTime now,
                                               SimTime max_stale,
                                               std::uint32_t stale_ttl) const {
  auto ref = lookup_stale_ref(name, type, now, max_stale);
  if (!ref) return std::nullopt;
  StaleLookup result;
  result.stale = ref->stale;
  result.records = *ref->records;
  if (ref->stale) {
    for (auto& rr : result.records) rr.ttl = stale_ttl;
  } else {
    for (auto& rr : result.records) {
      rr.ttl = tier_decay_ttl(rr.ttl, ref->age_s);
    }
  }
  return result;
}

std::size_t Cache::evict_expired(SimTime now) {
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (expired(it->second.entry, now)) {
      bytes_ -= it->second.entry.wire_bytes;
      lru_.erase(it->second.lru);
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  expired_evictions_ += evicted;
  return evicted;
}

TierStats Cache::tier_stats() const {
  TierStats s;
  s.lookups = hits_ + misses_;
  s.hits = hits_;
  s.stale_hits = stale_hits_;
  s.inserts = inserts_;
  s.evictions = evictions_ + expired_evictions_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace doxlab::dns
