#include "dns/cache.h"

#include <algorithm>

namespace doxlab::dns {

namespace {
/// Negative entries (no records) are cached for 60 simulated seconds.
constexpr std::uint32_t kNegativeTtlSeconds = 60;
}  // namespace

void Cache::insert(const DnsName& name, RRType type,
                   std::vector<ResourceRecord> records, SimTime now) {
  CacheEntry entry;
  entry.inserted_at = now;
  if (records.empty()) {
    entry.original_ttl = kNegativeTtlSeconds;
  } else {
    std::uint32_t min_ttl = UINT32_MAX;
    for (const auto& rr : records) min_ttl = std::min(min_ttl, rr.ttl);
    entry.original_ttl = min_ttl;
  }
  entry.records = std::move(records);

  auto it = entries_.find(KeyView{name, type});
  if (it != entries_.end()) {
    it->second.entry = std::move(entry);
    touch(it->second);
    return;
  }
  lru_.push_front(Key{name, type});
  entries_.emplace(lru_.front(), Node{std::move(entry), lru_.begin()});
  enforce_capacity();
}

bool Cache::expired(const CacheEntry& entry, SimTime now) const {
  const SimTime age = now - entry.inserted_at;
  return age >= static_cast<SimTime>(entry.original_ttl) * kSecond;
}

void Cache::touch(const Node& node) const {
  lru_.splice(lru_.begin(), lru_, node.lru);
}

void Cache::enforce_capacity() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void Cache::set_capacity(std::size_t max_entries) {
  capacity_ = max_entries;
  enforce_capacity();
}

void Cache::clear() {
  entries_.clear();
  lru_.clear();
}

std::optional<EntryRef> Cache::lookup_ref(const DnsName& name, RRType type,
                                          SimTime now) const {
  auto it = entries_.find(KeyView{name, type});
  if (it == entries_.end() || expired(it->second.entry, now)) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  touch(it->second);
  const CacheEntry& entry = it->second.entry;
  EntryRef ref;
  ref.records = &entry.records;
  ref.age_s = static_cast<std::uint32_t>((now - entry.inserted_at) / kSecond);
  return ref;
}

std::optional<EntryRef> Cache::lookup_stale_ref(const DnsName& name,
                                                RRType type, SimTime now,
                                                SimTime max_stale) const {
  auto it = entries_.find(KeyView{name, type});
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  const CacheEntry& entry = it->second.entry;
  if (!expired(entry, now)) {
    ++hits_;
    touch(it->second);
    EntryRef ref;
    ref.records = &entry.records;
    ref.age_s =
        static_cast<std::uint32_t>((now - entry.inserted_at) / kSecond);
    return ref;
  }
  const SimTime expired_at =
      entry.inserted_at + static_cast<SimTime>(entry.original_ttl) * kSecond;
  if (now - expired_at >= max_stale) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  touch(it->second);
  EntryRef ref;
  ref.records = &entry.records;
  ref.stale = true;
  return ref;
}

std::optional<std::vector<ResourceRecord>> Cache::lookup(const DnsName& name,
                                                         RRType type,
                                                         SimTime now) const {
  auto ref = lookup_ref(name, type, now);
  if (!ref) return std::nullopt;
  std::vector<ResourceRecord> out = *ref->records;
  for (auto& rr : out) {
    rr.ttl = rr.ttl > ref->age_s ? rr.ttl - ref->age_s : 0;
  }
  return out;
}

std::optional<StaleLookup> Cache::lookup_stale(const DnsName& name,
                                               RRType type, SimTime now,
                                               SimTime max_stale,
                                               std::uint32_t stale_ttl) const {
  auto ref = lookup_stale_ref(name, type, now, max_stale);
  if (!ref) return std::nullopt;
  StaleLookup result;
  result.stale = ref->stale;
  result.records = *ref->records;
  if (ref->stale) {
    for (auto& rr : result.records) rr.ttl = stale_ttl;
  } else {
    for (auto& rr : result.records) {
      rr.ttl = rr.ttl > ref->age_s ? rr.ttl - ref->age_s : 0;
    }
  }
  return result;
}

std::size_t Cache::evict_expired(SimTime now) {
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (expired(it->second.entry, now)) {
      lru_.erase(it->second.lru);
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace doxlab::dns
