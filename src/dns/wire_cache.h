// Raw-wire packet cache: answers repeat queries by patching bytes, not by
// re-encoding messages.
//
// The forwarder's cached path still pays a full Message decode (labels,
// records, EDNS options) and a full encode per hit. Production resolvers
// skip both: dnsdist's packet cache keys on a hash of the *raw query bytes*
// and answers a hit by splicing the client's transaction ID (and aged TTLs)
// into a stored copy of the raw response. This class is that trick for the
// doxlab engine:
//
//   * The key is a 64-bit FNV-1a over the query image with two
//     normalizations applied on the fly (no copy, no DnsName
//     materialization): the 2-byte ID reads as zero, and qname label bytes
//     read case-folded — "WWW.Example.COM" and "www.example.com" with
//     different IDs are the same key. Everything else (flags, qtype, EDNS
//     options) is hashed verbatim, so queries that legitimately demand
//     different answers get different keys. The normalized image is stored
//     with the entry and compared on lookup, so hash collisions degrade to
//     misses, never to wrong answers.
//   * The value is the full encoded response slab plus the byte offsets of
//     every non-OPT record TTL (scanned once at insert — compression
//     pointers make the offsets non-trivial, so they are found by walking
//     the wire, not recomputed per hit).
//   * A hit copies the slab into a pooled buffer (zero heap allocations at
//     steady state), patches the ID at offset 0, and decrements each TTL by
//     the entry's whole-second age, clamping at 0 — the same decay the
//     Message-path cached answer applies.
//   * Expiry is an explicit check against the slab's absolute deadline
//     (insert time + minimum TTL). An expired slab is never served as if
//     fresh: it is evicted, and — only when the RFC 8767 serve-stale policy
//     flag allows it — served one last time with every TTL stamped to the
//     configured stale TTL while the caller triggers a refresh.
//
// Single-threaded by design: each engine shard owns its own WireCache (it
// fronts the shard's L1), so no locking. Cross-shard sharing stays the
// SharedPacketCache's job.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/cache_tier.h"
#include "dns/message.h"
#include "util/buffer.h"
#include "util/types.h"

namespace doxlab::dns {

struct WireCacheConfig {
  /// Entry bound; inserts beyond it are rejected after an expired-entry
  /// purge (the L1 behind this cache keeps recency, mirroring the L2's
  /// reject-at-capacity stance). 0 disables insertion entirely.
  std::size_t capacity = 4096;
  /// RFC 8767: an expired slab may be served once, stale-TTL-stamped,
  /// within `max_stale` of its deadline. Off: expiry is a plain miss.
  bool serve_stale = false;
  SimTime max_stale = 0;
  /// TTL (seconds) stamped into every record of a stale answer.
  std::uint32_t stale_ttl = 30;
};

class WireCache {
 public:
  explicit WireCache(WireCacheConfig config) : config_(config) {}

  WireCache(const WireCache&) = delete;
  WireCache& operator=(const WireCache&) = delete;

  /// A probe hit: everything materialize() needs, valid until the next
  /// insert()/materialize() call.
  struct Hit {
    std::uint64_t key = 0;
    bool stale = false;          ///< past deadline, inside the stale window
    std::uint32_t age_s = 0;     ///< whole seconds since insertion
  };

  /// Probes for `query` without building the answer (so the policy chain
  /// can run before any bytes move). Expired entries outside the stale
  /// window are evicted here and report a miss. Returns false for queries
  /// the fast path cannot serve (malformed header, QR set, compressed or
  /// over-deep question names) — the caller falls back to the decode path.
  bool probe(std::span<const std::uint8_t> query, SimTime now, Hit& hit);

  /// Builds the patched response for a probe hit: pooled copy of the slab,
  /// the query's ID spliced in at offset 0, and every recorded TTL
  /// decremented by age (clamped at 0) — or stamped `stale_ttl` for a stale
  /// hit, which also evicts the entry (a stale image is served at most
  /// once; the refreshed answer re-fills the cache).
  util::Buffer materialize(const Hit& hit,
                           std::span<const std::uint8_t> query);

  /// Stores `response` under the normalized image of `query`. Rejects
  /// responses with no answer records, a zero minimum TTL, malformed
  /// bytes, TTLs past offset 65535, or when the cache is full even after
  /// purging expired entries. Returns true when the entry was stored.
  bool insert(std::span<const std::uint8_t> query,
              std::span<const std::uint8_t> response, SimTime now);

  struct Stats {
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;          ///< fresh hits
    std::uint64_t stale_hits = 0;    ///< stale-window hits (served once)
    std::uint64_t collisions = 0;    ///< same hash, different query image
    std::uint64_t inserts = 0;
    std::uint64_t rejected = 0;      ///< uncacheable or capacity-bound
    std::uint64_t expired_evictions = 0;
  };
  const Stats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }

  /// Uniform tier observability (see dns/cache_tier.h).
  TierStats tier_stats() const;

  /// Parses the first question straight out of a query image into `out`,
  /// reusing its storage — the lazily-materialized view the policy chain
  /// (and the stale-refresh path) sees on wire hits, without a full
  /// Message decode. Returns false on malformed bytes.
  static bool parse_question(std::span<const std::uint8_t> query,
                             Question& out);

  /// Walks a response image recording the byte offset and value of every
  /// non-OPT record TTL across all sections. `min_ttl` is the smallest TTL
  /// seen (unchanged when no record carries one); `answer_count` is the
  /// header ANCOUNT. Exposed for the fidelity tests.
  static bool scan_ttl_offsets(std::span<const std::uint8_t> response,
                               std::vector<std::uint16_t>& offsets,
                               std::uint32_t& min_ttl,
                               std::uint16_t& answer_count);

 private:
  /// Byte spans of qname label characters inside the question section —
  /// the case-fold regions of the key. Bounded so the scan stays O(1)
  /// space; queries with more labels fall back to the decode path.
  struct FoldRegions {
    std::array<std::pair<std::uint16_t, std::uint16_t>, 32> spans;
    std::size_t count = 0;
  };

  struct Entry {
    std::vector<std::uint8_t> query;        ///< normalized query image
    util::Buffer response;                  ///< response wire as first sent
    std::vector<std::uint16_t> ttl_offsets;
    std::uint32_t min_ttl_s = 0;
    SimTime inserted_at = 0;
  };

  /// Validates the fast-path shape (QR clear, QDCOUNT >= 1, uncompressed
  /// question names) and collects the fold regions.
  static bool scan_query(std::span<const std::uint8_t> query,
                         FoldRegions& regions);
  static std::uint64_t hash_normalized(std::span<const std::uint8_t> query,
                                       const FoldRegions& regions);
  static void normalize(std::span<const std::uint8_t> query,
                        const FoldRegions& regions,
                        std::vector<std::uint8_t>& out);
  static bool equal_normalized(std::span<const std::uint8_t> query,
                               const FoldRegions& regions,
                               std::span<const std::uint8_t> stored);

  SimTime deadline(const Entry& entry) const {
    return tier_expiry(entry.inserted_at, entry.min_ttl_s);
  }
  static std::size_t entry_bytes(const Entry& entry) {
    return entry.query.size() + entry.response.size();
  }

  WireCacheConfig config_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  Stats stats_;
  std::uint64_t bytes_ = 0;
};

static_assert(CacheTier<WireCache>);

}  // namespace doxlab::dns
