#include "dns/name.h"

#include <stdexcept>

#include "util/strings.h"

namespace doxlab::dns {

DnsName DnsName::parse(std::string_view text) {
  DnsName name;
  if (text.empty() || text == ".") return name;
  if (text.back() == '.') text.remove_suffix(1);

  std::size_t total = 1;  // terminating zero octet
  for (const std::string& raw : split(text, '.')) {
    if (raw.empty()) throw std::invalid_argument("empty DNS label");
    if (raw.size() > 63) throw std::invalid_argument("DNS label > 63 octets");
    total += 1 + raw.size();
    name.labels_.push_back(to_lower(raw));
  }
  if (total > 255) throw std::invalid_argument("DNS name > 255 octets");
  return name;
}

DnsName DnsName::from_labels(std::vector<std::string> labels) {
  DnsName name;
  std::size_t total = 1;
  for (std::string& label : labels) {
    if (label.empty()) throw std::invalid_argument("empty DNS label");
    if (label.size() > 63) throw std::invalid_argument("DNS label > 63");
    total += 1 + label.size();
    label = to_lower(label);
  }
  if (total > 255) throw std::invalid_argument("DNS name > 255 octets");
  name.labels_ = std::move(labels);
  return name;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  return join(labels_, ".");
}

std::size_t DnsName::wire_length() const {
  std::size_t len = 1;
  for (const auto& label : labels_) len += 1 + label.size();
  return len;
}

bool DnsName::is_subdomain_of(const DnsName& other) const {
  if (other.labels_.size() > labels_.size()) return false;
  auto it = labels_.end() - static_cast<std::ptrdiff_t>(other.labels_.size());
  return std::equal(it, labels_.end(), other.labels_.begin());
}

DnsName DnsName::parent() const {
  DnsName p;
  p.labels_.assign(labels_.begin() + 1, labels_.end());
  return p;
}

void NameCompressor::write(ByteWriter& writer, const DnsName& name) {
  const auto& labels = name.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // Presentation form of the suffix starting at label i.
    std::string suffix;
    for (std::size_t j = i; j < labels.size(); ++j) {
      if (j > i) suffix.push_back('.');
      suffix.append(labels[j]);
    }
    auto it = offsets_.find(suffix);
    if (it != offsets_.end()) {
      writer.u16(static_cast<std::uint16_t>(0xC000 | it->second));
      return;
    }
    // Pointers can only address the first 16KiB - and the top two bits are
    // the pointer tag - so only record offsets that fit in 14 bits.
    if (writer.size() < 0x3FFF) {
      offsets_.emplace(std::move(suffix),
                       static_cast<std::uint16_t>(writer.size()));
    }
    writer.u8(static_cast<std::uint8_t>(labels[i].size()));
    writer.bytes(labels[i]);
  }
  writer.u8(0);
}

std::optional<DnsName> read_name(ByteReader& reader) {
  DnsName name;
  std::vector<std::string> labels;
  std::size_t total = 1;
  int pointer_hops = 0;
  std::optional<std::size_t> resume_at;  // position after the first pointer

  while (true) {
    auto len = reader.u8();
    if (!len) return std::nullopt;
    if ((*len & 0xC0) == 0xC0) {
      // Compression pointer: 14-bit absolute offset.
      auto low = reader.u8();
      if (!low) return std::nullopt;
      const std::size_t target =
          (static_cast<std::size_t>(*len & 0x3F) << 8) | *low;
      if (!resume_at) resume_at = reader.position();
      // Require strictly backward pointers; combined with the hop limit this
      // rules out loops.
      if (target >= reader.position() - 2) return std::nullopt;
      if (++pointer_hops > 32) return std::nullopt;
      if (!reader.seek(target)) return std::nullopt;
      continue;
    }
    if ((*len & 0xC0) != 0) return std::nullopt;  // reserved tags 01/10
    if (*len == 0) break;
    auto label = reader.string(*len);
    if (!label) return std::nullopt;
    total += 1 + label->size();
    if (total > 255) return std::nullopt;
    labels.push_back(to_lower(*label));
  }

  if (resume_at) reader.seek(*resume_at);
  if (labels.empty()) return DnsName::root();
  return DnsName::from_labels(std::move(labels));
}

}  // namespace doxlab::dns
