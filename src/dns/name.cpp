#include "dns/name.h"

#include <stdexcept>

#include "util/strings.h"

namespace doxlab::dns {

namespace {

char lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
}

/// Appends one length-prefixed lowercased label; throws on invalid size.
void append_label(std::string& wire, std::string_view label) {
  if (label.empty()) throw std::invalid_argument("empty DNS label");
  if (label.size() > 63) throw std::invalid_argument("DNS label > 63 octets");
  wire.push_back(static_cast<char>(label.size()));
  for (char c : label) wire.push_back(lower(c));
}

}  // namespace

DnsName DnsName::parse(std::string_view text) {
  DnsName name;
  if (text.empty() || text == ".") return name;
  if (text.back() == '.') text.remove_suffix(1);

  name.wire_.reserve(text.size() + 1);
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::size_t end = dot == std::string_view::npos ? text.size() : dot;
    append_label(name.wire_, text.substr(start, end - start));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  if (name.wire_.size() + 1 > 255) {
    throw std::invalid_argument("DNS name > 255 octets");
  }
  return name;
}

DnsName DnsName::from_labels(const std::vector<std::string>& labels) {
  DnsName name;
  for (const std::string& label : labels) append_label(name.wire_, label);
  if (name.wire_.size() + 1 > 255) {
    throw std::invalid_argument("DNS name > 255 octets");
  }
  return name;
}

std::vector<std::string> DnsName::labels() const {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < wire_.size()) {
    const std::size_t len = static_cast<std::uint8_t>(wire_[pos]);
    out.emplace_back(wire_, pos + 1, len);
    pos += 1 + len;
  }
  return out;
}

std::size_t DnsName::label_count() const {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < wire_.size()) {
    ++count;
    pos += 1 + static_cast<std::uint8_t>(wire_[pos]);
  }
  return count;
}

std::string DnsName::to_string() const {
  if (wire_.empty()) return ".";
  std::string out;
  out.reserve(wire_.size());
  std::size_t pos = 0;
  while (pos < wire_.size()) {
    const std::size_t len = static_cast<std::uint8_t>(wire_[pos]);
    if (pos > 0) out.push_back('.');
    out.append(wire_, pos + 1, len);
    pos += 1 + len;
  }
  return out;
}

bool DnsName::has_suffix(const DnsName& suffix) const {
  if (suffix.wire_.size() > wire_.size()) return false;
  const std::size_t split = wire_.size() - suffix.wire_.size();
  if (std::string_view(wire_).substr(split) != suffix.wire_) return false;
  // A byte-level suffix match only counts when it starts on a label
  // boundary (label bytes may themselves contain length-like values).
  std::size_t pos = 0;
  while (pos < split) pos += 1 + static_cast<std::uint8_t>(wire_[pos]);
  return pos == split;
}

DnsName DnsName::parent() const {
  DnsName p;
  p.wire_ = wire_.substr(1 + static_cast<std::uint8_t>(wire_[0]));
  return p;
}

const NameCompressor::Entry* NameCompressor::find(
    std::string_view suffix) const {
  for (std::size_t i = 0; i < count_; ++i) {
    if (inline_[i].suffix == suffix) return &inline_[i];
  }
  for (const Entry& e : overflow_) {
    if (e.suffix == suffix) return &e;
  }
  return nullptr;
}

void NameCompressor::remember(std::string_view suffix, std::uint16_t offset) {
  if (count_ < inline_.size()) {
    inline_[count_++] = Entry{suffix, offset};
  } else {
    overflow_.push_back(Entry{suffix, offset});
  }
}

void NameCompressor::write(ByteWriter& writer, const DnsName& name) {
  const std::string_view wire = name.wire_labels();
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::string_view suffix = wire.substr(pos);
    if (const Entry* hit = find(suffix)) {
      writer.u16(static_cast<std::uint16_t>(0xC000 | hit->offset));
      return;
    }
    // Pointers can only address the first 16KiB - and the top two bits are
    // the pointer tag - so only record offsets that fit in 14 bits.
    if (writer.size() < 0x3FFF) {
      remember(suffix, static_cast<std::uint16_t>(writer.size()));
    }
    const std::size_t label_len = static_cast<std::uint8_t>(wire[pos]);
    writer.u8(static_cast<std::uint8_t>(label_len));
    writer.bytes(wire.substr(pos, 1 + label_len).substr(1));
    pos += 1 + label_len;
  }
  writer.u8(0);
}

bool read_name_into(ByteReader& reader, DnsName& out) {
  std::string& wire = out.wire_;
  wire.clear();
  int pointer_hops = 0;
  std::optional<std::size_t> resume_at;  // position after the first pointer

  while (true) {
    auto len = reader.u8();
    if (!len) return false;
    if ((*len & 0xC0) == 0xC0) {
      // Compression pointer: 14-bit absolute offset.
      auto low = reader.u8();
      if (!low) return false;
      const std::size_t target =
          (static_cast<std::size_t>(*len & 0x3F) << 8) | *low;
      if (!resume_at) resume_at = reader.position();
      // Require strictly backward pointers; combined with the hop limit this
      // rules out loops.
      if (target >= reader.position() - 2) return false;
      if (++pointer_hops > 32) return false;
      if (!reader.seek(target)) return false;
      continue;
    }
    if ((*len & 0xC0) != 0) return false;  // reserved tags 01/10
    if (*len == 0) break;
    auto label = reader.bytes(*len);
    if (!label) return false;
    if (wire.size() + 1 + label->size() + 1 > 255) return false;
    wire.push_back(static_cast<char>(*len));
    for (std::uint8_t c : *label) wire.push_back(lower(static_cast<char>(c)));
  }

  if (resume_at) reader.seek(*resume_at);
  return true;
}

std::optional<DnsName> read_name(ByteReader& reader) {
  DnsName name;
  if (!read_name_into(reader, name)) return std::nullopt;
  return name;
}

}  // namespace doxlab::dns
