// Shared semantics for the cache hierarchy: per-shard L1 (`dns::Cache`),
// shared L2 (`dns::SharedPacketCache`), the raw-wire front (`dns::WireCache`)
// and the persistent snapshot tier (`dns::SnapshotTier`) all age, expire and
// serve-stale by the *same* rules, expressed once here:
//
//   * An entry's age is whole simulated seconds since insertion, never
//     negative (a snapshot replayed into a younger clock reports age 0
//     instead of wrapping).
//   * A record TTL decays by subtracting the age, clamped at 0.
//   * An entry expires the instant `inserted_at + ttl_s` is reached
//     (`now >= expiry` is expired — the `>=` matters for the pinned
//     artifacts, which all date from when each tier hand-rolled this).
//   * RFC 8767 staleness: an expired entry is servable while
//     `now - expiry < max_stale`; at exactly `max_stale` it is a miss.
//
// Every tier also exposes the same observability surface — a `TierStats`
// snapshot plus its live entry count — captured by the `CacheTier` concept
// so the engine can report l1/l2/wire/snapshot occupancy uniformly.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "util/types.h"

namespace doxlab::dns {

/// Whole seconds since `inserted_at`, clamped at 0 for clocks at or before
/// the insertion instant (warm-started snapshots may carry stamps from a
/// previous process whose clock ran ahead of a fresh world's).
constexpr std::uint32_t tier_age_s(SimTime inserted_at, SimTime now) {
  return now <= inserted_at
             ? 0u
             : static_cast<std::uint32_t>((now - inserted_at) / kSecond);
}

/// TTL decay shared by every tier: subtract the age, clamp at 0.
constexpr std::uint32_t tier_decay_ttl(std::uint32_t ttl,
                                       std::uint32_t age_s) {
  return ttl > age_s ? ttl - age_s : 0;
}

/// Absolute expiry instant of an entry inserted at `inserted_at` whose
/// minimum record TTL was `ttl_s`.
constexpr SimTime tier_expiry(SimTime inserted_at, std::uint32_t ttl_s) {
  return inserted_at + static_cast<SimTime>(ttl_s) * kSecond;
}

/// Fresh while strictly before the expiry instant.
constexpr bool tier_fresh(SimTime inserted_at, std::uint32_t ttl_s,
                          SimTime now) {
  return now < tier_expiry(inserted_at, ttl_s);
}

/// RFC 8767 stale window: expired, but by less than `max_stale`.
constexpr bool tier_stale_within(SimTime inserted_at, std::uint32_t ttl_s,
                                 SimTime now, SimTime max_stale) {
  const SimTime expiry = tier_expiry(inserted_at, ttl_s);
  return now >= expiry && now - expiry < max_stale;
}

/// Uniform per-tier counters. `bytes` is the approximate payload footprint
/// of live entries (wire images / RR names + rdata), maintained
/// incrementally so reading it is free.
struct TierStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;        ///< fresh + stale hits
  std::uint64_t stale_hits = 0;  ///< subset of hits served past expiry
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;   ///< capacity + expiry + stale-serve evictions
  std::uint64_t entries = 0;     ///< live entries right now
  std::uint64_t bytes = 0;       ///< approximate live payload bytes
};

/// What every member of the hierarchy exposes to the engine's stats plumbing.
template <typename T>
concept CacheTier = requires(const T& tier) {
  { tier.tier_stats() } -> std::convertible_to<TierStats>;
  { tier.size() } -> std::convertible_to<std::size_t>;
};

}  // namespace doxlab::dns
