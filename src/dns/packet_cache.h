// Shared L2 packet cache for the sharded forwarder engine.
//
// Every shard keeps its own L1 `dns::Cache` (see src/engine); this class is
// the level below it — one table shared by all shards so an answer resolved
// on shard 3 serves shard 5's next miss. The concurrency design borrows the
// dnsdist packet-cache tricks and adapts them to the discrete-event setting:
//
//   * The bucket array is reserve()d once at construction and never rehashes,
//     so lookups never pay a growth stall.
//   * Readers take the table lock *shared*, and only with try_lock_shared:
//     concurrent lookups from different shards never exclude each other. A
//     reader that does find the lock held exclusively is *not* waited out —
//     it is recorded (`lock_misses`) and reported as a cache miss, so the
//     per-query hot path never blocks on a lock.
//   * Writers never touch the table from the hot path at all: insert() parks
//     the encoded answer on the inserting shard's private lane
//     (`deferred_inserts`), and the coordinator merges all lanes into the
//     table under the exclusive lock in sweep(), which runs at epoch
//     barriers while no shard is executing.
//
// This split is also what makes the sharded engine deterministic: only
// sweep() ever takes the lock exclusively, and it runs at barriers, so
// mid-epoch try_lock_shared always succeeds and a lookup's outcome depends
// only on simulated time and the previous epoch's merged state — never on
// how the OS interleaved the shard threads. The contended-read fallback
// exists for safety and is exercised by unit tests, not by the engine.
//
// Entries store the answer RRset encoded into a single pooled util::Buffer
// that has been share()d (atomic refcount): a hit hands the reading shard a
// refcounted handle to bytes another shard's thread produced, and whichever
// thread drops the last reference recycles the slab into its own pool.
#pragma once

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/cache_tier.h"
#include "dns/message.h"
#include "util/buffer.h"
#include "util/types.h"

namespace doxlab::dns {

/// An L2 hit: a shared handle to the encoded RRset plus the TTL bookkeeping
/// the caller needs to materialize an answer (decode, then subtract age_s
/// from each record TTL, exactly like an L1 EntryRef hit).
struct PacketCacheHit {
  util::Buffer wire;         ///< shared encoded RRset (see encode_rrset)
  std::uint32_t ttl_s = 0;   ///< minimum record TTL at insert time
  std::uint32_t age_s = 0;   ///< whole seconds since insertion
  /// Past its TTL but inside the caller's stale window: the caller stamps
  /// its stale TTL and owes the hierarchy exactly one background refresh.
  bool stale = false;
};

/// Sharded-reader packet cache. Thread contract: lookup()/insert() may be
/// called concurrently from different shard threads (each shard passes its
/// own index; a lane is only ever touched by its shard); sweep() and
/// stats() must run while no shard is executing (epoch barrier).
class SharedPacketCache {
 public:
  /// `capacity` bounds the table (entries beyond it are rejected at sweep
  /// time, not evicted LRU — the L1s in front absorb recency); buckets are
  /// reserved up front. `shards` fixes the number of insert lanes.
  SharedPacketCache(std::size_t capacity, std::uint32_t shards);

  SharedPacketCache(const SharedPacketCache&) = delete;
  SharedPacketCache& operator=(const SharedPacketCache&) = delete;

  /// Hot-path read from shard `shard`. Returns true and fills `out` on a
  /// fresh hit — or, when `max_stale > 0`, on an RFC 8767 stale hit
  /// (`out.stale` set) for entries expired less than `max_stale` ago.
  /// Readers lock shared, so they only contend with the exclusive sweep
  /// (impossible mid-epoch, see header), never with each other; a contended
  /// or expired/absent entry reports false, and expired entries are left
  /// for sweep() to reap. Callers serving stale must also extend the sweep
  /// window via set_stale_retention(), or the entry is reaped at the next
  /// barrier and the stale window silently collapses to one epoch.
  bool lookup(std::uint32_t shard, const DnsName& name, RRType type,
              SimTime now, PacketCacheHit& out, SimTime max_stale = 0);

  /// Encodes `records` into a shared buffer and parks it on shard `shard`'s
  /// lane; the table itself is untouched until the next sweep(). Empty
  /// record sets are not cached (negative answers stay an L1 concern).
  void insert(std::uint32_t shard, const DnsName& name, RRType type,
              std::span<const ResourceRecord> records, SimTime now);

  /// Epoch-barrier maintenance: merges every lane into the table in shard
  /// order (deterministic regardless of which threads ran the shards), then
  /// reaps expired entries. Takes the lock exclusively and *blocking* — by
  /// contract nobody else holds it here.
  void sweep(SimTime now);

  /// Keeps expired entries sweepable-stale for `keep` past their expiry
  /// instead of reaping them at the next barrier (0 = reap immediately, the
  /// default). Set once before the run, at a barrier, when the engine
  /// serves stale from the L2.
  void set_stale_retention(SimTime keep) { retain_stale_ = keep; }

  /// Aggregated counters (lane counters summed in shard order).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t stale_hits = 0;    ///< subset of hits past expiry
    std::uint64_t misses = 0;        ///< includes lock_misses and expired
    std::uint64_t lock_misses = 0;   ///< try_lock_shared-vs-exclusive fallbacks
    std::uint64_t deferred_inserts = 0;  ///< insert() calls parked on lanes
    std::uint64_t applied_inserts = 0;   ///< lane entries merged by sweep
    std::uint64_t replaced = 0;          ///< merges that overwrote a key
    std::uint64_t rejected_capacity = 0; ///< merges dropped at the bound
    std::uint64_t expired_evicted = 0;   ///< entries reaped by sweeps
    std::uint64_t sweeps = 0;
    std::size_t size = 0;            ///< live entries right now
    std::uint64_t bytes = 0;         ///< live encoded-RRset bytes
  };
  Stats stats() const;

  /// Uniform tier observability (see dns/cache_tier.h). Same barrier
  /// contract as stats().
  TierStats tier_stats() const;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Test hooks, never used by the engine: `lock_for_testing` holds the
  /// table lock *exclusively* (as sweep does) so a unit test can force the
  /// contended-read fallback deterministically; `lock_shared_for_testing`
  /// holds it shared, proving readers never exclude each other.
  std::unique_lock<std::shared_mutex> lock_for_testing() {
    return std::unique_lock<std::shared_mutex>(mu_);
  }
  std::shared_lock<std::shared_mutex> lock_shared_for_testing() {
    return std::shared_lock<std::shared_mutex>(mu_);
  }

  /// Encodes an RRset into one pooled buffer: u16 record count, then per
  /// record its uncompressed wire name, u16 type, u16 class, u32 ttl,
  /// u16 rdlen, rdata. The buffer is already share()d.
  static util::Buffer encode_rrset(std::span<const ResourceRecord> records);

  /// Decodes encode_rrset() output into `out` (cleared first, storage
  /// reused). Returns false on malformed bytes.
  static bool decode_rrset(std::span<const std::uint8_t> wire,
                           std::vector<ResourceRecord>& out);

 private:
  struct Key {
    DnsName name;
    RRType type = RRType::kA;
    bool operator==(const Key&) const = default;
  };
  struct KeyView {
    const DnsName& name;
    RRType type;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t mix(const DnsName& name, RRType type) noexcept {
      return std::hash<DnsName>()(name) ^
             (static_cast<std::size_t>(type) * 0x9E3779B97F4A7C15ull);
    }
    std::size_t operator()(const Key& k) const noexcept {
      return mix(k.name, k.type);
    }
    std::size_t operator()(const KeyView& k) const noexcept {
      return mix(k.name, k.type);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const KeyView& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const Key& a, const KeyView& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
  };

  struct Entry {
    util::Buffer wire;
    SimTime inserted_at = 0;
    std::uint32_t ttl_s = 0;
  };

  struct Pending {
    Key key;
    Entry entry;
  };

  /// Per-shard insert lane + read counters. Padded to its own cache line so
  /// shard threads bumping counters never false-share.
  struct alignas(64) Lane {
    std::vector<Pending> pending;
    std::uint64_t hits = 0;
    std::uint64_t stale_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t lock_misses = 0;
    std::uint64_t deferred_inserts = 0;
  };

  static bool expired(const Entry& entry, SimTime now) {
    return !tier_fresh(entry.inserted_at, entry.ttl_s, now);
  }

  using Map = std::unordered_map<Key, Entry, KeyHash, KeyEq>;

  /// Guards entries_ and the sweep counters: shared for lookups, exclusive
  /// for the barrier-time sweep/stats.
  mutable std::shared_mutex mu_;
  Map entries_;
  std::size_t capacity_;
  SimTime retain_stale_ = 0;
  std::vector<Lane> lanes_;
  std::uint64_t applied_inserts_ = 0;
  std::uint64_t replaced_ = 0;
  std::uint64_t rejected_capacity_ = 0;
  std::uint64_t expired_evicted_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t bytes_ = 0;
};

static_assert(CacheTier<SharedPacketCache>);

}  // namespace doxlab::dns
