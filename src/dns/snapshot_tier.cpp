#include "dns/snapshot_tier.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "dns/name.h"
#include "dns/packet_cache.h"
#include "util/bytes.h"

namespace doxlab::dns {

namespace {

/// Log header: version-stamped magic. Bump the digit on format changes.
constexpr char kMagic[8] = {'D', 'O', 'X', 'S', 'N', 'A', 'P', '1'};

/// Anything claiming a larger payload than this is a torn length field, not
/// a record (a full RRset wire image is a few hundred bytes).
constexpr std::uint32_t kMaxPayload = 1u << 22;

std::uint32_t fnv1a32(std::span<const std::uint8_t> data) {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

}  // namespace

SnapshotTier::SnapshotTier(SnapshotConfig config)
    : config_(std::move(config)) {
  replay();
}

SnapshotTier::~SnapshotTier() {
  if (log_ != nullptr) {
    std::fflush(log_);
    std::fclose(log_);
  }
}

std::vector<std::uint8_t> SnapshotTier::encode_payload(
    const DnsName& name, RRType type, SimTime inserted_at,
    std::uint32_t ttl_s, std::span<const std::uint8_t> rrset) {
  ByteWriter writer(2 + 8 + 4 + name.wire_length() + rrset.size());
  writer.u16(static_cast<std::uint16_t>(type));
  writer.u64(static_cast<std::uint64_t>(inserted_at));
  writer.u32(ttl_s);
  writer.bytes(name.wire_labels());
  writer.u8(0);
  writer.bytes(rrset);
  return writer.take();
}

bool SnapshotTier::decode_payload(std::span<const std::uint8_t> payload,
                                  Key& key, Entry& entry) {
  ByteReader reader(payload);
  const auto type = reader.u16();
  const auto inserted_at = reader.u64();
  const auto ttl_s = reader.u32();
  if (!type || !inserted_at || !ttl_s) return false;
  if (!read_name_into(reader, key.name)) return false;
  key.type = static_cast<RRType>(*type);
  entry.inserted_at = static_cast<SimTime>(*inserted_at);
  entry.ttl_s = *ttl_s;
  const auto rrset = reader.bytes(reader.remaining());
  if (!rrset || rrset->empty()) return false;
  entry.rrset.assign(rrset->begin(), rrset->end());
  return true;
}

void SnapshotTier::replay() {
  if (config_.path.empty()) return;
  {
    // First use of a snapshot directory: make sure it exists so the append
    // handle below can be opened.
    std::error_code ec;
    const std::filesystem::path parent =
        std::filesystem::path(config_.path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  }
  std::vector<std::uint8_t> file;
  if (std::FILE* in = std::fopen(config_.path.c_str(), "rb")) {
    std::fseek(in, 0, SEEK_END);
    const long size = std::ftell(in);
    std::fseek(in, 0, SEEK_SET);
    if (size > 0) {
      file.resize(static_cast<std::size_t>(size));
      if (std::fread(file.data(), 1, file.size(), in) != file.size()) {
        file.clear();
      }
    }
    std::fclose(in);
  }
  replay_stats_.bytes_read = file.size();

  std::size_t good_end = sizeof(kMagic);
  if (file.size() < sizeof(kMagic) ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    // Missing or foreign file: start a fresh log (an unreadable header
    // counts as one torn drop so the caller can tell).
    if (!file.empty()) ++replay_stats_.torn_dropped;
    if (std::FILE* fresh = std::fopen(config_.path.c_str(), "wb")) {
      std::fwrite(kMagic, 1, sizeof(kMagic), fresh);
      std::fclose(fresh);
    }
  } else {
    ByteReader reader(file);
    (void)reader.seek(sizeof(kMagic));
    while (reader.remaining() > 0) {
      const auto len = reader.u32();
      const auto crc = reader.u32();
      if (!len || !crc || *len == 0 || *len > kMaxPayload) {
        ++replay_stats_.torn_dropped;
        break;
      }
      const auto payload = reader.bytes(*len);
      if (!payload) {
        ++replay_stats_.torn_dropped;
        break;
      }
      if (fnv1a32(*payload) != *crc) {
        // A checksum mismatch means the tail is untrustworthy from here on
        // (a torn write never leaves valid frames after it) — stop.
        ++replay_stats_.torn_dropped;
        break;
      }
      Key key;
      Entry entry;
      if (!decode_payload(*payload, key, entry)) {
        ++replay_stats_.skipped_bad;
        good_end = reader.position();
        continue;
      }
      entry.frame_bytes = static_cast<std::uint32_t>(8 + *len);
      if (entries_.find(key) != entries_.end()) ++replay_stats_.superseded;
      apply(std::move(key), std::move(entry));
      ++replay_stats_.frames_replayed;
      good_end = reader.position();
    }
    if (good_end < file.size()) {
      // Drop the torn tail so future appends land on a clean frame edge.
      std::error_code ec;
      std::filesystem::resize_file(config_.path, good_end, ec);
    }
  }
  log_bytes_ = good_end;
  log_ = std::fopen(config_.path.c_str(), "ab");
}

void SnapshotTier::apply(Key key, Entry entry) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    live_bytes_ -= it->second.frame_bytes;
    payload_bytes_ -= it->second.rrset.size();
    live_bytes_ += entry.frame_bytes;
    payload_bytes_ += entry.rrset.size();
    it->second = std::move(entry);
    return;
  }
  live_bytes_ += entry.frame_bytes;
  payload_bytes_ += entry.rrset.size();
  entries_.emplace(std::move(key), std::move(entry));
}

bool SnapshotTier::append_frame(std::span<const std::uint8_t> payload) {
  if (log_ == nullptr) return false;
  std::uint8_t header[8];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = fnv1a32(payload);
  header[0] = static_cast<std::uint8_t>(len >> 24);
  header[1] = static_cast<std::uint8_t>(len >> 16);
  header[2] = static_cast<std::uint8_t>(len >> 8);
  header[3] = static_cast<std::uint8_t>(len);
  header[4] = static_cast<std::uint8_t>(crc >> 24);
  header[5] = static_cast<std::uint8_t>(crc >> 16);
  header[6] = static_cast<std::uint8_t>(crc >> 8);
  header[7] = static_cast<std::uint8_t>(crc);
  if (std::fwrite(header, 1, sizeof(header), log_) != sizeof(header)) {
    return false;
  }
  if (std::fwrite(payload.data(), 1, payload.size(), log_) !=
      payload.size()) {
    return false;
  }
  log_bytes_ += sizeof(header) + payload.size();
  return true;
}

bool SnapshotTier::lookup(const DnsName& name, RRType type, SimTime now,
                          SnapshotHit& out) {
  ++lookups_;
  auto it = entries_.find(KeyView{name, type});
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  if (tier_fresh(entry.inserted_at, entry.ttl_s, now)) {
    out.rrset = &entry.rrset;
    out.ttl_s = entry.ttl_s;
    out.age_s = tier_age_s(entry.inserted_at, now);
    out.stale = false;
    ++hits_;
    return true;
  }
  if (tier_stale_within(entry.inserted_at, entry.ttl_s, now,
                        config_.max_stale)) {
    out.rrset = &entry.rrset;
    out.ttl_s = entry.ttl_s;
    out.age_s = tier_age_s(entry.inserted_at, now);
    out.stale = true;
    ++hits_;
    ++stale_hits_;
    return true;
  }
  // Past the stale window: dead weight in the index; the log's copy is
  // reclaimed by the next compaction.
  live_bytes_ -= entry.frame_bytes;
  payload_bytes_ -= entry.rrset.size();
  entries_.erase(it);
  ++evictions_;
  return false;
}

void SnapshotTier::insert(const DnsName& name, RRType type,
                          std::span<const ResourceRecord> records,
                          SimTime now) {
  if (records.empty()) return;
  std::uint32_t min_ttl = records.front().ttl;
  for (const ResourceRecord& rr : records) {
    min_ttl = std::min(min_ttl, rr.ttl);
  }
  if (min_ttl == 0) return;
  const util::Buffer wire = SharedPacketCache::encode_rrset(records);
  Entry entry;
  entry.rrset.assign(wire.data(), wire.data() + wire.size());
  entry.inserted_at = now;
  entry.ttl_s = min_ttl;
  const std::vector<std::uint8_t> payload =
      encode_payload(name, type, now, min_ttl, entry.rrset);
  if (!append_frame(payload)) return;
  entry.frame_bytes = static_cast<std::uint32_t>(8 + payload.size());
  apply(Key{name, type}, std::move(entry));
  ++inserts_;
  maybe_compact();
}

void SnapshotTier::flush() {
  if (log_ != nullptr) std::fflush(log_);
}

void SnapshotTier::maybe_compact() {
  if (log_bytes_ < config_.compact_min_bytes) return;
  if (log_bytes_ <= 2 * (live_bytes_ + sizeof(kMagic))) return;
  compact();
}

void SnapshotTier::compact() {
  if (config_.path.empty()) return;
  const std::string tmp = config_.path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) return;
  std::fwrite(kMagic, 1, sizeof(kMagic), out);
  bool ok = true;
  std::uint64_t written = sizeof(kMagic);
  for (const auto& [key, entry] : entries_) {
    const std::vector<std::uint8_t> payload = encode_payload(
        key.name, key.type, entry.inserted_at, entry.ttl_s, entry.rrset);
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = fnv1a32(payload);
    const std::uint8_t header[8] = {
        static_cast<std::uint8_t>(len >> 24),
        static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 8),
        static_cast<std::uint8_t>(len),
        static_cast<std::uint8_t>(crc >> 24),
        static_cast<std::uint8_t>(crc >> 16),
        static_cast<std::uint8_t>(crc >> 8),
        static_cast<std::uint8_t>(crc)};
    if (std::fwrite(header, 1, sizeof(header), out) != sizeof(header) ||
        std::fwrite(payload.data(), 1, payload.size(), out) !=
            payload.size()) {
      ok = false;
      break;
    }
    written += sizeof(header) + payload.size();
  }
  std::fflush(out);
  std::fclose(out);
  if (!ok) {
    std::remove(tmp.c_str());
    return;
  }
  // Write-new-then-rename: readers of the old log (there are none while we
  // run, but a crashed rename leaves one valid file either way) never see a
  // half-written state.
  if (log_ != nullptr) {
    std::fflush(log_);
    std::fclose(log_);
    log_ = nullptr;
  }
  if (std::rename(tmp.c_str(), config_.path.c_str()) != 0) {
    std::remove(tmp.c_str());
    log_ = std::fopen(config_.path.c_str(), "ab");
    return;
  }
  log_bytes_ = written;
  live_bytes_ = written - sizeof(kMagic);
  ++compactions_;
  log_ = std::fopen(config_.path.c_str(), "ab");
}

void SnapshotTier::for_each(const EntryVisitor& visit) const {
  for (const auto& [key, entry] : entries_) {
    visit(key.name, key.type, entry.inserted_at, entry.ttl_s, entry.rrset);
  }
}

TierStats SnapshotTier::tier_stats() const {
  TierStats t;
  t.lookups = lookups_;
  t.hits = hits_;
  t.stale_hits = stale_hits_;
  t.inserts = inserts_;
  t.evictions = evictions_;
  t.entries = entries_.size();
  t.bytes = payload_bytes_;
  return t;
}

}  // namespace doxlab::dns
