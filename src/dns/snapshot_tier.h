// Persistent snapshot tier: the disk level of the cache hierarchy.
//
// The per-shard L1 and shared L2 die with the process; this tier is what a
// restarted forwarder warm-starts from. The design is the append-log +
// compacting-snapshot shape of dnsdist's KVS lookup stores (and LMDB
// underneath them), reduced to what a DNS RRset store actually needs:
//
//   * One flat file per engine shard. Writes are appends — an insert
//     serializes the RRset wire image (SharedPacketCache::encode_rrset
//     format, so L2 promotion costs no re-encode) with its *absolute*
//     insertion stamp and minimum TTL, and appends one framed record:
//     `[u32 payload_len][u32 fnv1a32(payload)][payload]` after the 8-byte
//     `DOXSNAP1` magic. Later records for a key supersede earlier ones.
//   * Replay (construction) walks the frames and stops cleanly at the first
//     torn or corrupt one: a truncated tail — the crash case — costs at
//     most the records after the tear, never the file. A frame whose
//     checksum matches but whose payload fails to parse is skipped, not
//     fatal.
//   * Expiry is judged against the absolute stamps at *lookup* time with
//     the shared tier rules (dns/cache_tier.h): a fresh entry decays by its
//     age, an entry inside `max_stale` serves stale, anything older is
//     dropped from the index (and reclaimed by the next compaction).
//   * Compaction: when the log grows past `compact_min_bytes` AND to more
//     than twice the live payload, the live entries are rewritten to
//     `<path>.tmp` and renamed over the log — the same
//     write-new-then-rename discipline as an LMDB copy-compact.
//
// Single-threaded by design, like the WireCache: each engine owns its own
// snapshot file (`shard-<index>.snap`), so no locking anywhere.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/cache_tier.h"
#include "dns/message.h"
#include "util/types.h"

namespace doxlab::dns {

struct SnapshotConfig {
  /// Log file path. The file is created if absent, replayed if present.
  std::string path;
  /// RFC 8767 window honored by lookup(); 0 = expired entries are misses.
  SimTime max_stale = 0;
  /// Compaction trigger floor: never compact a log smaller than this.
  std::size_t compact_min_bytes = 1 << 20;
};

/// A snapshot hit. `rrset` points into the tier's index and stays valid
/// until the next insert()/lookup()/compact(); decode it with
/// SharedPacketCache::decode_rrset and decay TTLs by `age_s` (fresh) or
/// stamp the caller's stale TTL (`stale` set).
struct SnapshotHit {
  const std::vector<std::uint8_t>* rrset = nullptr;
  std::uint32_t ttl_s = 0;
  std::uint32_t age_s = 0;
  bool stale = false;
};

class SnapshotTier {
 public:
  /// Opens (replaying) or creates the log. A path that cannot be opened
  /// leaves the tier alive but inert: lookups miss, inserts drop.
  explicit SnapshotTier(SnapshotConfig config);
  ~SnapshotTier();

  SnapshotTier(const SnapshotTier&) = delete;
  SnapshotTier& operator=(const SnapshotTier&) = delete;

  /// Serves a fresh or stale entry per the shared tier rules. Entries past
  /// the stale window are evicted from the index here (the log reclaims
  /// the bytes at compaction).
  bool lookup(const DnsName& name, RRType type, SimTime now,
              SnapshotHit& out);

  /// Appends (superseding any previous record for the key). Empty record
  /// sets and zero minimum TTLs are not persisted, mirroring the L2.
  void insert(const DnsName& name, RRType type,
              std::span<const ResourceRecord> records, SimTime now);

  /// Flushes buffered appends to the OS. Called by the destructor; exposed
  /// so a campaign can checkpoint mid-run.
  void flush();

  /// Rewrites the log to exactly the live index (write-new-then-rename).
  /// Automatic when the compaction trigger fires inside insert().
  void compact();

  /// Visits every live index entry — the warm-start protocol: the engine
  /// promotes fresh entries into L1/L2 at construction.
  using EntryVisitor = std::function<void(
      const DnsName& name, RRType type, SimTime inserted_at,
      std::uint32_t ttl_s, const std::vector<std::uint8_t>& rrset)>;
  void for_each(const EntryVisitor& visit) const;

  /// What construction found on disk.
  struct ReplayStats {
    std::uint64_t frames_replayed = 0;  ///< well-formed frames applied
    std::uint64_t superseded = 0;       ///< frames overwritten by later ones
    std::uint64_t torn_dropped = 0;     ///< truncated/corrupt tail frames
    std::uint64_t skipped_bad = 0;      ///< checksum-ok but unparseable
    std::uint64_t bytes_read = 0;
  };
  const ReplayStats& replay_stats() const { return replay_stats_; }

  TierStats tier_stats() const;
  std::size_t size() const { return entries_.size(); }
  /// Current on-disk log size (header + appended frames).
  std::uint64_t log_bytes() const { return log_bytes_; }
  std::uint64_t compactions() const { return compactions_; }
  const std::string& path() const { return config_.path; }

 private:
  struct Key {
    DnsName name;
    RRType type = RRType::kA;
    bool operator==(const Key&) const = default;
  };
  struct KeyView {
    const DnsName& name;
    RRType type;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t mix(const DnsName& name, RRType type) noexcept {
      return std::hash<DnsName>()(name) ^
             (static_cast<std::size_t>(type) * 0x9E3779B97F4A7C15ull);
    }
    std::size_t operator()(const Key& k) const noexcept {
      return mix(k.name, k.type);
    }
    std::size_t operator()(const KeyView& k) const noexcept {
      return mix(k.name, k.type);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const KeyView& a, const Key& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
    bool operator()(const Key& a, const KeyView& b) const noexcept {
      return a.type == b.type && a.name == b.name;
    }
  };

  struct Entry {
    std::vector<std::uint8_t> rrset;  ///< encode_rrset wire image
    SimTime inserted_at = 0;
    std::uint32_t ttl_s = 0;
    std::uint32_t frame_bytes = 0;    ///< on-disk frame size incl. header
  };
  using Map = std::unordered_map<Key, Entry, KeyHash, KeyEq>;

  /// Serializes one record payload (no frame header).
  static std::vector<std::uint8_t> encode_payload(const DnsName& name,
                                                  RRType type,
                                                  SimTime inserted_at,
                                                  std::uint32_t ttl_s,
                                                  std::span<const std::uint8_t>
                                                      rrset);
  /// Parses a payload back; returns false on malformed bytes.
  static bool decode_payload(std::span<const std::uint8_t> payload, Key& key,
                             Entry& entry);

  void replay();
  bool append_frame(std::span<const std::uint8_t> payload);
  void apply(Key key, Entry entry);
  void maybe_compact();

  SnapshotConfig config_;
  Map entries_;
  std::FILE* log_ = nullptr;
  std::uint64_t log_bytes_ = 0;
  std::uint64_t live_bytes_ = 0;  ///< frame bytes of live index entries
  std::uint64_t payload_bytes_ = 0;  ///< rrset bytes of live index entries
  std::uint64_t compactions_ = 0;
  ReplayStats replay_stats_;
  mutable std::uint64_t lookups_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t stale_hits_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
};

static_assert(CacheTier<SnapshotTier>);

}  // namespace doxlab::dns
