#include "dns/packet_cache.h"

#include <algorithm>

#include "dns/name.h"
#include "util/bytes.h"

namespace doxlab::dns {

SharedPacketCache::SharedPacketCache(std::size_t capacity,
                                     std::uint32_t shards)
    : capacity_(capacity), lanes_(shards == 0 ? 1 : shards) {
  // One-time bucket reservation: the table never rehashes afterwards, so a
  // mid-epoch lookup can never land on a growth stall.
  entries_.reserve(capacity_);
}

bool SharedPacketCache::lookup(std::uint32_t shard, const DnsName& name,
                               RRType type, SimTime now, PacketCacheHit& out,
                               SimTime max_stale) {
  Lane& lane = lanes_[shard];
  // Shared lock: concurrent lookups from other shards never exclude this
  // one; only an exclusive holder (the barrier-time sweep) makes the
  // try_lock fail.
  std::shared_lock<std::shared_mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Contended read: never wait. Count it and report a miss — the caller
    // falls through to its normal resolve path.
    ++lane.lock_misses;
    ++lane.misses;
    return false;
  }
  const auto it = entries_.find(KeyView{name, type});
  if (it == entries_.end()) {
    ++lane.misses;
    return false;
  }
  const Entry& entry = it->second;
  const bool fresh = !expired(entry, now);
  if (!fresh && (max_stale <= 0 ||
                 !tier_stale_within(entry.inserted_at, entry.ttl_s, now,
                                    max_stale))) {
    ++lane.misses;
    return false;
  }
  // Copying the buffer handle bumps the slab's atomic refcount (the encode
  // path share()d it); the bytes stay valid on this shard's thread even
  // after a later sweep erases the entry.
  out.wire = entry.wire;
  out.ttl_s = entry.ttl_s;
  out.age_s = tier_age_s(entry.inserted_at, now);
  out.stale = !fresh;
  ++lane.hits;
  if (!fresh) ++lane.stale_hits;
  return true;
}

void SharedPacketCache::insert(std::uint32_t shard, const DnsName& name,
                               RRType type,
                               std::span<const ResourceRecord> records,
                               SimTime now) {
  if (records.empty()) return;
  Lane& lane = lanes_[shard];
  std::uint32_t min_ttl = records.front().ttl;
  for (const ResourceRecord& rr : records) min_ttl = std::min(min_ttl, rr.ttl);
  if (min_ttl == 0) return;  // would expire instantly; not worth a lane slot
  Pending pending;
  pending.key = Key{name, type};
  pending.entry.wire = encode_rrset(records);
  pending.entry.inserted_at = now;
  pending.entry.ttl_s = min_ttl;
  lane.pending.push_back(std::move(pending));
  ++lane.deferred_inserts;
}

void SharedPacketCache::sweep(SimTime now) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  // Merge lanes in shard-index order: the table's contents after a sweep
  // are a function of what each shard deferred, never of thread timing.
  for (Lane& lane : lanes_) {
    for (Pending& pending : lane.pending) {
      ++applied_inserts_;
      const auto it = entries_.find(pending.key);
      if (it != entries_.end()) {
        bytes_ -= it->second.wire.size();
        bytes_ += pending.entry.wire.size();
        it->second = std::move(pending.entry);
        ++replaced_;
        continue;
      }
      if (capacity_ != 0 && entries_.size() >= capacity_) {
        ++rejected_capacity_;
        continue;
      }
      bytes_ += pending.entry.wire.size();
      entries_.emplace(std::move(pending.key), std::move(pending.entry));
    }
    lane.pending.clear();
  }
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& entry = it->second;
    // With a stale-retention window, an expired entry stays sweepable for
    // `retain_stale_` past its expiry so lookup() can serve it stale.
    const bool reap =
        expired(entry, now) &&
        (retain_stale_ <= 0 ||
         !tier_stale_within(entry.inserted_at, entry.ttl_s, now,
                            retain_stale_));
    if (reap) {
      bytes_ -= entry.wire.size();
      it = entries_.erase(it);
      ++expired_evicted_;
    } else {
      ++it;
    }
  }
  ++sweeps_;
}

SharedPacketCache::Stats SharedPacketCache::stats() const {
  std::lock_guard<std::shared_mutex> lock(mu_);
  Stats s;
  for (const Lane& lane : lanes_) {
    s.hits += lane.hits;
    s.stale_hits += lane.stale_hits;
    s.misses += lane.misses;
    s.lock_misses += lane.lock_misses;
    s.deferred_inserts += lane.deferred_inserts;
  }
  s.applied_inserts = applied_inserts_;
  s.replaced = replaced_;
  s.rejected_capacity = rejected_capacity_;
  s.expired_evicted = expired_evicted_;
  s.sweeps = sweeps_;
  s.size = entries_.size();
  s.bytes = bytes_;
  return s;
}

TierStats SharedPacketCache::tier_stats() const {
  const Stats s = stats();
  TierStats t;
  t.lookups = s.hits + s.misses;
  t.hits = s.hits;
  t.stale_hits = s.stale_hits;
  t.inserts = s.applied_inserts;
  t.evictions = s.expired_evicted;
  t.entries = s.size;
  t.bytes = s.bytes;
  return t;
}

util::Buffer SharedPacketCache::encode_rrset(
    std::span<const ResourceRecord> records) {
  std::size_t bytes = 2;
  for (const ResourceRecord& rr : records) {
    bytes += rr.name.wire_length() + 2 + 2 + 4 + 2 + rr.rdata.size();
  }
  ByteWriter writer(util::Buffer::allocate(bytes));
  writer.u16(static_cast<std::uint16_t>(records.size()));
  for (const ResourceRecord& rr : records) {
    // Uncompressed wire name: flat labels + terminating zero. Record names
    // matter — a CNAME chain's records carry different owner names.
    writer.bytes(rr.name.wire_labels());
    writer.u8(0);
    writer.u16(static_cast<std::uint16_t>(rr.type));
    writer.u16(rr.klass_or_udpsize);
    writer.u32(rr.ttl);
    writer.u16(static_cast<std::uint16_t>(rr.rdata.size()));
    writer.bytes(std::span<const std::uint8_t>(rr.rdata));
  }
  util::Buffer wire = writer.take_buffer();
  // Opt into atomic refcounting *before* the buffer crosses the lane/table
  // synchronization edge — after that, any shard may copy the handle.
  wire.share();
  return wire;
}

bool SharedPacketCache::decode_rrset(std::span<const std::uint8_t> wire,
                                     std::vector<ResourceRecord>& out) {
  out.clear();
  ByteReader reader(wire);
  const auto count = reader.u16();
  if (!count) return false;
  out.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    ResourceRecord rr;
    if (!read_name_into(reader, rr.name)) return false;
    const auto type = reader.u16();
    const auto klass = reader.u16();
    const auto ttl = reader.u32();
    const auto rdlen = reader.u16();
    if (!type || !klass || !ttl || !rdlen) return false;
    const auto rdata = reader.bytes(*rdlen);
    if (!rdata) return false;
    rr.type = static_cast<RRType>(*type);
    rr.klass_or_udpsize = *klass;
    rr.ttl = *ttl;
    rr.rdata.assign(rdata->begin(), rdata->end());
    out.push_back(std::move(rr));
  }
  return reader.at_end();
}

}  // namespace doxlab::dns
