// DNS enumerations (RFC 1035 and friends).
#pragma once

#include <cstdint>
#include <string_view>

namespace doxlab::dns {

/// Resource record types (the subset the study exercises).
enum class RRType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kSVCB = 64,
  kHTTPS = 65,
  kOPT = 41,
};

enum class RRClass : std::uint16_t {
  kIN = 1,
  kANY = 255,
};

enum class Opcode : std::uint8_t {
  kQuery = 0,
  kStatus = 2,
};

enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNXDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

std::string_view rrtype_name(RRType t);
std::string_view rcode_name(RCode r);

}  // namespace doxlab::dns
