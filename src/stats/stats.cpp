#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace doxlab::stats {

namespace {
double interpolate_sorted(const std::vector<double>& sorted, double p) {
  // Linear interpolation between closest ranks (type-7 quantile).
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted[lo];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

std::optional<double> percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return std::nullopt;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(samples.begin(), samples.end());
  return interpolate_sorted(samples, p);
}

std::optional<double> median(std::vector<double> samples) {
  return percentile(std::move(samples), 50.0);
}

Summary Summary::of(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.p25 = interpolate_sorted(samples, 25);
  s.median = interpolate_sorted(samples, 50);
  s.p75 = interpolate_sorted(samples, 75);
  s.p90 = interpolate_sorted(samples, 90);
  s.p95 = interpolate_sorted(samples, 95);
  s.p99 = interpolate_sorted(samples, 99);
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  return s;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_below(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::optional<double> Cdf::quantile(double q) const {
  if (sorted_.empty()) return std::nullopt;
  return interpolate_sorted(sorted_, std::clamp(q, 0.0, 1.0) * 100.0);
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points < 2) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(q, *quantile(q));
  }
  return out;
}

std::optional<double> relative_difference(double baseline, double value) {
  if (baseline == 0.0) return std::nullopt;
  return (value - baseline) / baseline;
}

}  // namespace doxlab::stats
