#include "stats/table.h"

#include <algorithm>

#include "util/strings.h"

namespace doxlab::stats {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      out += (c == 0) ? pad_right(row[c], widths[c])
                      : pad_left(row[c], widths[c]);
    }
    out += '\n';
  };
  emit_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string cell(double v, int decimals) { return fmt_double(v, decimals); }

std::string percent_cell(double fraction, int decimals) {
  const double pct = fraction * 100.0;
  std::string s = fmt_double(pct, decimals);
  if (pct >= 0) s.insert(s.begin(), '+');
  return s + "%";
}

}  // namespace doxlab::stats
