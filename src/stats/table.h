// Plain-text table rendering for the experiment reports (benches print the
// same rows the paper's tables/figures contain).
#pragma once

#include <string>
#include <vector>

namespace doxlab::stats {

/// A simple aligned-column text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment; first column left-aligned, the rest
  /// right-aligned.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimals (helper for table cells).
std::string cell(double v, int decimals = 1);
/// Formats a percentage ("+12.3%" / "-4.0%").
std::string percent_cell(double fraction, int decimals = 1);

}  // namespace doxlab::stats
