// Summary statistics and empirical CDFs used by every experiment report:
// the paper presents medians (Table 1, Fig. 2) and CDFs of relative
// differences (Fig. 3, Fig. 4).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace doxlab::stats {

/// Interpolated percentile of a sample set. `p` in [0, 100]. Returns
/// nullopt for empty input. The input need not be sorted.
std::optional<double> percentile(std::vector<double> samples, double p);

/// Median shorthand.
std::optional<double> median(std::vector<double> samples);

/// Five-number-plus summary.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
  double mean = 0;

  static Summary of(std::vector<double> samples);
};

/// Empirical CDF over a fixed sample set.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// Fraction of samples <= x, in [0, 1].
  double fraction_below(double x) const;

  /// Value at quantile q in [0, 1] (interpolated).
  std::optional<double> quantile(double q) const;

  /// Evaluates the CDF at evenly spaced quantiles (for plotting/printing):
  /// returns `points` (quantile, value) pairs.
  std::vector<std::pair<double, double>> curve(std::size_t points = 21) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Relative difference (b - a) / a, the quantity plotted in Figs. 3 and 4
/// ("relative difference to DoUDP/DoQ baseline"). Returns nullopt when the
/// baseline is zero.
std::optional<double> relative_difference(double baseline, double value);

}  // namespace doxlab::stats
