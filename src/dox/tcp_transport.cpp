// DoTCP: DNS over plain TCP with RFC 1035 2-byte length framing.
//
// Default behaviour matches what the paper measured: since no resolver
// supports edns-tcp-keepalive or TFO, every query pays a fresh 3-way
// handshake and teardown (2 round trips per query in total). The
// RFC 9210-recommended persistent-connection mode and TFO are available as
// options for the ablation benches.
#include "dox/transport_base.h"

namespace doxlab::dox {

namespace {

class TcpTransport final : public TransportBase {
 public:
  TcpTransport(const TransportDeps& deps, const TransportOptions& options)
      : TransportBase(DnsProtocol::kDoTcp, deps, options) {}

  ~TcpTransport() override { reset_sessions(); }

  void resolve(const dns::Question& question, ResultHandler handler) override {
    auto pending = make_pending(question, std::move(handler));
    // Reuse the persistent connection when configured for RFC 9210 reuse OR
    // when the server advertised edns-tcp-keepalive on it.
    const bool reusable =
        persistent_ && (!options_.tcp_fresh_connection_per_query ||
                        persistent_->keepalive);
    if (reusable && persistent_->connected) {
      send_query(persistent_, pending);
      return;
    }
    if (!options_.tcp_fresh_connection_per_query && persistent_) {
      // Connection still handshaking: queue on it.
      persistent_->queued.push_back(pending);
      persistent_->in_flight.push_back(pending);
      return;
    }
    open_connection(pending);
  }

  void reset_sessions() override {
    persistent_.reset();
    // Fresh-mode connections normally close themselves after the response,
    // but an in-flight one must not survive a session reset. Closing
    // triggers on_closed, which erases the state from open_.
    auto open = open_;
    for (auto& state : open) state->conn->close();
    open_.clear();
  }

  WireStats wire_stats() const override {
    WireStats stats = stats_;
    if (auto state = last_.lock()) {
      // Connection still alive: report live totals.
      stats.total_c2r = state->conn->bytes_sent();
      stats.total_r2c = state->conn->bytes_received();
    }
    return stats;
  }

 private:
  struct ConnState {
    std::shared_ptr<tcp::TcpConnection> conn;
    StreamMessageReader reader;
    std::vector<PendingPtr> in_flight;
    std::vector<PendingPtr> queued;
    bool connected = false;
    bool keepalive = false;  // server sent edns-tcp-keepalive
  };
  using StatePtr = std::shared_ptr<ConnState>;

  void open_connection(const PendingPtr& first) {
    auto state = std::make_shared<ConnState>();
    tcp::TcpOptions tcp_options;
    tcp_options.enable_tfo = options_.tcp_use_tfo;
    tcp_options.congestion_algorithm = options_.tcp_congestion;
    state->conn = deps_.tcp->connect(options_.resolver, tcp_options);
    first->result.new_session = true;
    mark(first, QueryPhase::kConnect);
    state->in_flight.push_back(first);
    state->queued.push_back(first);
    stats_ = WireStats{};  // fresh connection, fresh accounting
    last_ = state;
    // open_ is the state's owner until on_closed fires (the connection's
    // callbacks deliberately hold it only weakly).
    open_.push_back(state);

    // The state owns the connection, so handlers the connection stores must
    // capture it weakly or the pair leaks as a reference cycle.
    std::weak_ptr<ConnState> weak_state = state;
    state->conn->on_connected([this, weak_state, guard = alive_guard()] {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      state->connected = true;
      stats_.handshake_c2r = state->conn->bytes_sent();
      stats_.handshake_r2c = state->conn->bytes_received();
      for (auto& p : state->in_flight) {
        if (p->result.new_session) mark(p, QueryPhase::kSecure);
      }
      flush_queued(state);
    });
    state->conn->on_data([this, weak_state, guard = alive_guard()](
                             std::span<const std::uint8_t> data) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      on_stream_data(state, data);
    });
    state->conn->on_closed([this, weak_state,
                            guard = alive_guard()](const util::Error& error) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      stats_.total_c2r = state->conn->bytes_sent();
      stats_.total_r2c = state->conn->bytes_received();
      last_.reset();
      if (!error.ok()) {
        for (auto& p : state->in_flight) {
          finish_error(p, error);
        }
      }
      state->in_flight.clear();
      if (persistent_ == state) persistent_.reset();
      std::erase(open_, state);
    });

    if (!options_.tcp_fresh_connection_per_query) persistent_ = state;
    // With TFO the query rides the SYN: the SYN is deferred one event-loop
    // turn, so sending now puts the data in the fast-open payload.
    if (options_.tcp_use_tfo) flush_queued(state);
  }

  void flush_queued(const StatePtr& state) {
    for (auto& pending : state->queued) {
      if (pending->done) continue;
      dns::Message query = build_query(pending, /*encrypted=*/false);
      state->conn->send(length_prefixed(query.encode()));
      mark(pending, QueryPhase::kRequestSent);
    }
    state->queued.clear();
  }

  void send_query(const StatePtr& state, const PendingPtr& pending) {
    state->in_flight.push_back(pending);
    dns::Message query = build_query(pending, /*encrypted=*/false);
    state->conn->send(length_prefixed(query.encode()));
    mark(pending, QueryPhase::kRequestSent);
  }

  void on_stream_data(const StatePtr& state,
                      std::span<const std::uint8_t> data) {
    auto payloads = state->reader.feed(data);
    if (state->reader.failed()) {
      fail_stream(state);
      return;
    }
    for (auto& payload : payloads) {
      auto message = dns::Message::decode(payload);
      if (!message) continue;
      if (server_advertises_keepalive(*message)) {
        // RFC 7828: the server invites connection reuse — follow RFC 9210
        // and keep this connection for subsequent queries.
        state->keepalive = true;
        persistent_ = state;
      }
      for (auto it = state->in_flight.begin(); it != state->in_flight.end();
           ++it) {
        if (matches(*message, **it)) {
          auto pending = *it;
          state->in_flight.erase(it);
          finish_success(pending, std::move(*message));
          break;
        }
      }
    }
    if (options_.tcp_fresh_connection_per_query && !state->keepalive &&
        state->in_flight.empty()) {
      // Single-shot mode: tear the connection down after the response.
      state->conn->close();
    }
  }

  /// Garbage length framing on the stream: the channel is unusable, so
  /// every in-flight query fails kProtocolError and the connection aborts.
  void fail_stream(const StatePtr& state) {
    auto in_flight = std::move(state->in_flight);
    state->in_flight.clear();
    for (auto& p : in_flight) {
      finish_error(p, util::Error::protocol("garbage DNS message framing"));
    }
    state->conn->abort();
  }

  static bool server_advertises_keepalive(const dns::Message& response) {
    const dns::ResourceRecord* opt = response.opt();
    if (opt == nullptr) return false;
    auto options = dns::rdata_as_options(*opt);
    if (!options) return false;
    for (const auto& option : *options) {
      if (option.code == dns::kEdnsTcpKeepaliveOption) return true;
    }
    return false;
  }

  StatePtr persistent_;
  /// Owns every not-yet-closed connection state (fresh-mode connections
  /// have no other owner).
  std::vector<StatePtr> open_;
  std::weak_ptr<ConnState> last_;
  WireStats stats_;
};

}  // namespace

std::unique_ptr<DnsTransport> make_tcp_transport(
    const TransportDeps& deps, const TransportOptions& options) {
  return std::make_unique<TcpTransport>(deps, options);
}

}  // namespace doxlab::dox
