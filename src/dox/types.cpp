#include "dox/types.h"

namespace doxlab::dox {

std::string_view protocol_name(DnsProtocol p) {
  switch (p) {
    case DnsProtocol::kDoUdp: return "DoUDP";
    case DnsProtocol::kDoTcp: return "DoTCP";
    case DnsProtocol::kDoT: return "DoT";
    case DnsProtocol::kDoH: return "DoH";
    case DnsProtocol::kDoQ: return "DoQ";
    case DnsProtocol::kDoH3: return "DoH3";
  }
  return "?";
}

std::uint16_t default_port(DnsProtocol p) {
  switch (p) {
    case DnsProtocol::kDoUdp: return 53;
    case DnsProtocol::kDoTcp: return 53;
    case DnsProtocol::kDoT: return 853;
    case DnsProtocol::kDoH: return 443;
    case DnsProtocol::kDoQ: return 853;
    case DnsProtocol::kDoH3: return 443;  // UDP
  }
  return 53;
}

std::string server_key(const net::Endpoint& resolver, DnsProtocol protocol) {
  return resolver.to_string() + "/" + std::string(protocol_name(protocol));
}

}  // namespace doxlab::dox
