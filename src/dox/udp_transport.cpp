// DoUDP: classic connectionless DNS with application-layer retries.
//
// There is no handshake; the only reliability is the client re-sending the
// query after a 5-second timeout (Chromium / resolv.conf default). Those
// 5-second stalls are what skew the paper's DoUDP web results in the tail
// (Fig. 3 discussion).
#include "dox/transport_base.h"
#include "dox/transport.h"

namespace doxlab::dox {

// Defined in tcp_transport.cpp; used for the RFC 1035 truncation fallback.
std::unique_ptr<DnsTransport> make_tcp_transport(const TransportDeps&,
                                                 const TransportOptions&);

namespace {

class UdpTransport final : public TransportBase {
 public:
  UdpTransport(const TransportDeps& deps, const TransportOptions& options)
      : TransportBase(DnsProtocol::kDoUdp, deps, options) {}

  void resolve(const dns::Question& question, ResultHandler handler) override {
    ensure_socket();
    auto pending = make_pending(question, std::move(handler));
    pending_[pending->dns_id] = pending;
    send_attempt(pending, /*attempt=*/1);
  }

  void reset_sessions() override {
    // Connectionless: nothing to reset beyond the socket itself (and any
    // TCP fallback connection from a truncated response).
    if (tcp_fallback_) tcp_fallback_->reset_sessions();
    socket_.reset();
  }

  WireStats wire_stats() const override {
    WireStats stats;
    stats.total_c2r = bytes_sent_;
    stats.total_r2c = bytes_received_;
    return stats;
  }

 private:
  void ensure_socket() {
    if (socket_) return;
    socket_ = deps_.udp->bind_ephemeral();
    socket_->on_datagram([this](const net::Endpoint& from,
                                util::Buffer payload) {
      on_datagram(from, std::move(payload));
    });
  }

  void send_attempt(const PendingPtr& pending, int attempt) {
    if (pending->done) return;
    // A retry can fire after reset_sessions() dropped the socket; rebind
    // like a real stub resolver would.
    ensure_socket();
    dns::Message query = build_query(pending, /*encrypted=*/false);
    auto wire = query.encode();
    bytes_sent_ += wire.size() + net::kUdpHeaderBytes;
    socket_->send_to(options_.resolver, std::move(wire));
    mark(pending, QueryPhase::kRequestSent);

    if (attempt < options_.udp_max_attempts) {
      std::weak_ptr<PendingQuery> weak = pending;
      retry_timers_.push_back(sim().schedule(
          options_.udp_retry_timeout * attempt,
          [this, weak, attempt, guard = alive_guard()] {
            if (guard.expired()) return;
            if (auto p = weak.lock()) {
              if (p->done) return;
              p->result.udp_retransmissions += 1;
              send_attempt(p, attempt + 1);
            }
          }));
    }
    // When retries are exhausted the query_timeout timer fails the query.
  }

  void on_datagram(const net::Endpoint& from,
                   util::Buffer payload) {
    if (from != options_.resolver) return;
    bytes_received_ += payload.size() + net::kUdpHeaderBytes;
    auto message = dns::Message::decode(payload);
    if (!message) return;
    auto it = pending_.find(message->id);
    if (it == pending_.end()) return;
    auto pending = it->second;
    if (!matches(*message, *pending)) return;
    pending_.erase(it);

    if (message->tc && options_.tcp_fallback_on_truncation &&
        deps_.tcp != nullptr) {
      // RFC 1035 §4.2.2: a truncated UDP response is retried over TCP.
      pending->result.tc_fallback = true;
      if (!tcp_fallback_) {
        tcp_fallback_ = make_tcp_transport(deps_, options_);
      }
      tcp_fallback_->resolve(
          pending->question,
          [this, pending, guard = alive_guard()](QueryResult result) {
            if (guard.expired()) return;
            if (result.ok()) {
              finish_success(pending, std::move(result.response));
            } else {
              // Propagate the fallback's class; the detail records that the
              // failure happened on the TCP retry leg.
              util::Error err = result.error();
              err.detail = "TCP fallback failed: " + err.to_string();
              finish_error(pending, std::move(err));
            }
          });
      return;
    }
    finish_success(pending, std::move(*message));
  }

  std::unique_ptr<net::UdpSocket> socket_;
  std::unique_ptr<DnsTransport> tcp_fallback_;
  std::unordered_map<std::uint16_t, PendingPtr> pending_;
  std::vector<sim::Timer> retry_timers_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace

std::unique_ptr<DnsTransport> make_udp_transport(
    const TransportDeps& deps, const TransportOptions& options) {
  return std::make_unique<UdpTransport>(deps, options);
}

}  // namespace doxlab::dox
