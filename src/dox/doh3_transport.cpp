// DoH3: DNS over HTTP/3 (RFC 8484 semantics over RFC 9114) — the paper's
// future-work protocol.
//
// Same QUIC substrate as DoQ (1-RTT handshake, session resumption, tokens,
// optional 0-RTT) with HTTP/3 request framing on top. Compared to DoQ it
// pays the HTTP layer's bytes (control-stream SETTINGS, HEADERS with QPACK)
// but, unlike DoH-over-H2, no TCP and no extra TLS round trip — which is
// why the paper expects DoH3 to close most of the DoH-DoQ gap.
#include "dox/transport_base.h"
#include "h3/connection.h"
#include "quic/connection.h"

namespace doxlab::dox {

namespace {

class Doh3Transport final : public TransportBase {
 public:
  Doh3Transport(const TransportDeps& deps, const TransportOptions& options)
      : TransportBase(DnsProtocol::kDoH3, deps, options) {}

  ~Doh3Transport() override { reset_sessions(); }

  void resolve(const dns::Question& question, ResultHandler handler) override {
    auto pending = make_pending(question, std::move(handler));
    if (!state_ || state_->conn->closed()) {
      open_connection(pending);
      return;
    }
    state_->in_flight.push_back(pending);
    if (state_->conn->handshake_complete()) {
      send_request(state_, pending);
    } else {
      state_->queued.push_back(pending);
    }
  }

  void reset_sessions() override {
    if (state_) {
      if (!state_->conn->closed()) state_->conn->close();
      stats_.total_c2r = state_->conn->bytes_sent();
      stats_.total_r2c = state_->conn->bytes_received();
    }
    state_.reset();
  }

  WireStats wire_stats() const override {
    WireStats stats = stats_;
    if (state_) {
      stats.total_c2r = state_->conn->bytes_sent();
      stats.total_r2c = state_->conn->bytes_received();
    }
    return stats;
  }

 private:
  struct ConnState {
    std::shared_ptr<quic::QuicConnection> conn;
    std::unique_ptr<h3::H3Connection> h3;
    std::unique_ptr<net::UdpSocket> socket;
    std::map<std::uint64_t, PendingPtr> by_stream;
    std::map<std::uint64_t, std::vector<std::uint8_t>> bodies;
    std::vector<PendingPtr> in_flight;
    std::vector<PendingPtr> queued;
  };
  using StatePtr = std::shared_ptr<ConnState>;

  std::string cache_key() const {
    return server_key(options_.resolver, DnsProtocol::kDoH3);
  }

  std::string authority() const {
    return "resolver-" + options_.resolver.address.to_string();
  }

  void open_connection(const PendingPtr& first) {
    auto state = std::make_shared<ConnState>();
    state_ = state;
    first->result.new_session = true;
    mark(first, QueryPhase::kConnect);
    stats_ = WireStats{};

    const DoqServerInfo* known =
        deps_.doq_cache ? deps_.doq_cache->find(cache_key()) : nullptr;

    quic::QuicConfig config;
    config.alpn = {"h3"};
    config.sni = authority();
    config.enable_0rtt = options_.attempt_0rtt;
    config.enable_cc = options_.quic_enable_cc;
    if (known && known->version) config.version = *known->version;

    state->socket = deps_.udp->bind_ephemeral();

    // Weak ConnState captures: the state owns both the QUIC connection and
    // the H3 session, so shared captures in their callbacks would form
    // reference cycles that leak the whole connection (sanitizer-visible).
    std::weak_ptr<ConnState> weak_state = state;
    quic::QuicConnection::Callbacks callbacks;
    callbacks.send_datagram = [this, weak_state, guard = alive_guard()](
                                  util::Buffer bytes) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      state->socket->send_to(options_.resolver, std::move(bytes));
    };
    callbacks.on_handshake_complete =
        [this, weak_state, guard = alive_guard()](
            const quic::QuicHandshakeInfo& info) {
          if (guard.expired()) return;
          auto state = weak_state.lock();
          if (!state) return;
          on_established(state, info);
        };
    callbacks.on_stream_data = [this, weak_state, guard = alive_guard()](
                                   std::uint64_t id,
                                   std::span<const std::uint8_t> d,
                                   bool fin) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      state->h3->on_stream_data(id, d, fin);
    };
    callbacks.on_new_ticket = [this, guard = alive_guard()](
                                  const tls::SessionTicket& ticket) {
      if (guard.expired()) return;
      if (deps_.tickets) deps_.tickets->put(cache_key(), ticket);
    };
    callbacks.on_new_token = [this, guard = alive_guard()](
                                 const quic::AddressToken& token) {
      if (guard.expired()) return;
      if (deps_.doq_cache) deps_.doq_cache->entry(cache_key()).token = token;
    };
    callbacks.on_closed = [this, weak_state, guard = alive_guard()](
                              const util::Error& error) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      if (!error.ok()) {
        auto in_flight = std::move(state->in_flight);
        state->in_flight.clear();
        state->queued.clear();
        for (auto& pending : in_flight) {
          finish_error(pending, error);
        }
      }
    };
    state->conn = quic::QuicConnection::make_client(sim(), config,
                                                    std::move(callbacks));
    state->socket->on_datagram(
        [conn = state->conn](const net::Endpoint&,
                             util::Buffer payload) {
          conn->on_datagram(payload);
        });

    h3::H3Connection::Callbacks h3_callbacks;
    h3_callbacks.on_headers = [this, weak_state, guard = alive_guard()](
                                  std::uint64_t stream_id,
                                  const std::vector<h2::Header>& headers,
                                  bool end_stream) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      on_response_headers(state, stream_id, headers, end_stream);
    };
    h3_callbacks.on_data = [this, weak_state, guard = alive_guard()](
                               std::uint64_t stream_id,
                               std::span<const std::uint8_t> data,
                               bool end_stream) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      on_response_data(state, stream_id, data, end_stream);
    };
    h3_callbacks.on_error = [this, weak_state, guard = alive_guard()](
                                const util::Error& error) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      auto in_flight = std::move(state->in_flight);
      state->in_flight.clear();
      for (auto& pending : in_flight) {
        finish_error(pending, error);
      }
    };
    state->h3 = std::make_unique<h3::H3Connection>(state->conn,
                                                   /*is_client=*/true,
                                                   std::move(h3_callbacks));

    state->in_flight.push_back(first);

    std::optional<tls::SessionTicket> ticket;
    if (options_.use_session_resumption && deps_.tickets) {
      ticket = deps_.tickets->get(cache_key(), sim().now());
    }
    std::optional<quic::AddressToken> token;
    if (options_.use_address_token && known && known->token) {
      token = known->token;
    }

    // The control stream + first request can ride 0-RTT when the ticket
    // allows it; otherwise the QUIC connection queues the streams until the
    // handshake completes.
    const bool can_0rtt =
        options_.attempt_0rtt && ticket && ticket->allow_early_data;
    state->h3->start();
    if (can_0rtt) {
      send_request(state, first);
      first->result.used_0rtt = true;
    } else {
      state->queued.push_back(first);
    }
    state->conn->connect(ticket, token);
  }

  void on_established(const StatePtr& state,
                      const quic::QuicHandshakeInfo& info) {
    stats_.handshake_c2r = state->conn->bytes_sent();
    stats_.handshake_r2c = state->conn->bytes_received();
    if (deps_.doq_cache) {
      auto& entry = deps_.doq_cache->entry(cache_key());
      entry.version = info.version;
      entry.alpn = info.alpn;
    }
    for (auto& p : state->in_flight) {
      if (p->result.new_session) {
        mark(p, QueryPhase::kSecure);
        p->result.quic_version = info.version;
        p->result.alpn = info.alpn;
        p->result.session_resumed = info.resumed;
        p->result.used_0rtt = info.early_data_accepted;
        p->result.tls_version = tls::TlsVersion::kTls13;
      }
    }
    auto queued = std::move(state->queued);
    state->queued.clear();
    for (auto& pending : queued) {
      if (!pending->done) send_request(state, pending);
    }
  }

  void send_request(const StatePtr& state, const PendingPtr& pending) {
    dns::Message query = build_query(pending, /*encrypted=*/true);
    auto body = query.encode();
    std::vector<h2::Header> headers = {
        {":method", "POST"},
        {":scheme", "https"},
        {":authority", authority()},
        {":path", "/dns-query"},
        {"accept", "application/dns-message"},
        {"content-type", "application/dns-message"},
        {"content-length", std::to_string(body.size())},
        {"user-agent", "doxlab-dnsperf/1.0"},
    };
    const std::uint64_t stream_id =
        state->h3->send_request(headers, std::move(body));
    state->by_stream[stream_id] = pending;
    mark(pending, QueryPhase::kRequestSent);
    if (!pending->result.quic_version && state->conn->info()) {
      const auto& info = *state->conn->info();
      pending->result.quic_version = info.version;
      pending->result.alpn = info.alpn;
      pending->result.session_resumed = info.resumed;
      pending->result.tls_version = tls::TlsVersion::kTls13;
    }
  }

  void on_response_headers(const StatePtr& state, std::uint64_t stream_id,
                           const std::vector<h2::Header>& headers,
                           bool end_stream) {
    auto it = state->by_stream.find(stream_id);
    if (it == state->by_stream.end()) return;
    for (const auto& h : headers) {
      if (h.name == ":status" && h.value != "200") {
        auto pending = it->second;
        state->by_stream.erase(it);
        std::erase(state->in_flight, pending);
        finish_error(pending, util::Error::protocol("HTTP status " + h.value));
        return;
      }
    }
    if (end_stream) {
      auto pending = it->second;
      state->by_stream.erase(it);
      std::erase(state->in_flight, pending);
      finish_error(pending, util::Error::truncated("empty DoH3 response"));
    }
  }

  void on_response_data(const StatePtr& state, std::uint64_t stream_id,
                        std::span<const std::uint8_t> data, bool end_stream) {
    auto it = state->by_stream.find(stream_id);
    if (it == state->by_stream.end()) return;
    auto& body = state->bodies[stream_id];
    body.insert(body.end(), data.begin(), data.end());
    if (!end_stream) return;

    auto pending = it->second;
    state->by_stream.erase(it);
    std::erase(state->in_flight, pending);
    auto message = dns::Message::decode(body);
    state->bodies.erase(stream_id);
    if (!message || !matches(*message, *pending)) {
      finish_error(pending,
                   util::Error::protocol("malformed DoH3 response body"));
      return;
    }
    finish_success(pending, std::move(*message));
  }

  StatePtr state_;
  WireStats stats_;
};

}  // namespace

std::unique_ptr<DnsTransport> make_doh3_transport(
    const TransportDeps& deps, const TransportOptions& options) {
  return std::make_unique<Doh3Transport>(deps, options);
}

}  // namespace doxlab::dox
