// DoQ: DNS over Dedicated QUIC Connections (RFC 9250).
//
// One QUIC connection per resolver; each query gets its own client-initiated
// bidirectional stream. Framing depends on the negotiated ALPN: "doq" (RFC)
// and draft versions doq-i03 and later carry a 2-byte length prefix (added
// in -i03 to permit multiple responses); doq-i00..i02 send the bare DNS
// message and rely on stream FIN. The client caches the resolver's QUIC
// version, ALPN and NEW_TOKEN address token between sessions and presents
// them on reconnect — the paper's methodology, which avoids Version
// Negotiation and address-validation round trips and, together with session
// resumption, sidesteps the traffic-amplification stall of the authors'
// preliminary study.
#include "dox/transport_base.h"
#include "quic/connection.h"

namespace doxlab::dox {

namespace {

/// All ALPN identifiers the tooling offers (newest first), mirroring the
/// paper's support for "doq" plus every draft version.
std::vector<std::string> offered_alpns() {
  std::vector<std::string> alpns = {"doq"};
  for (int i = 11; i >= 0; --i) {
    alpns.push_back("doq-i" + std::string(i < 10 ? "0" : "") +
                    std::to_string(i));
  }
  return alpns;
}

/// doq & doq-i03+ use the 2-byte length prefix.
bool alpn_uses_length_prefix(std::string_view alpn) {
  if (alpn == "doq") return true;
  if (alpn.starts_with("doq-i")) {
    const int draft = std::atoi(std::string(alpn.substr(5)).c_str());
    return draft >= 3;
  }
  return false;
}

class DoqTransport final : public TransportBase {
 public:
  DoqTransport(const TransportDeps& deps, const TransportOptions& options)
      : TransportBase(DnsProtocol::kDoQ, deps, options) {}

  ~DoqTransport() override { reset_sessions(); }

  void resolve(const dns::Question& question, ResultHandler handler) override {
    auto pending = make_pending(question, std::move(handler));
    if (!state_ || state_->conn->closed()) {
      open_connection(pending);
      return;
    }
    state_->in_flight.push_back(pending);
    if (state_->conn->handshake_complete()) {
      send_query(pending);
    } else {
      state_->queued.push_back(pending);
    }
  }

  void reset_sessions() override {
    if (state_) {
      if (!state_->conn->closed()) state_->conn->close();
      stats_.total_c2r = state_->conn->bytes_sent();
      stats_.total_r2c = state_->conn->bytes_received();
    }
    state_.reset();
  }

  WireStats wire_stats() const override {
    WireStats stats = stats_;
    if (state_) {
      stats.total_c2r = state_->conn->bytes_sent();
      stats.total_r2c = state_->conn->bytes_received();
    }
    return stats;
  }

 private:
  struct StreamBuf {
    std::vector<std::uint8_t> data;
    PendingPtr pending;
  };

  struct ConnState {
    std::shared_ptr<quic::QuicConnection> conn;
    std::unique_ptr<net::UdpSocket> socket;
    std::map<std::uint64_t, StreamBuf> streams;
    std::vector<PendingPtr> in_flight;
    std::vector<PendingPtr> queued;
    std::string alpn;  // negotiated (or assumed from cache pre-handshake)
    bool length_prefix = true;
  };

  std::string cache_key() const {
    return server_key(options_.resolver, DnsProtocol::kDoQ);
  }

  void open_connection(const PendingPtr& first) {
    auto state = std::make_shared<ConnState>();
    state_ = state;
    first->result.new_session = true;
    mark(first, QueryPhase::kConnect);
    stats_ = WireStats{};

    const DoqServerInfo* known =
        deps_.doq_cache ? deps_.doq_cache->find(cache_key()) : nullptr;

    quic::QuicConfig config;
    config.alpn = offered_alpns();
    config.sni = "resolver-" + options_.resolver.address.to_string();
    config.enable_0rtt = options_.attempt_0rtt;
    config.enable_cc = options_.quic_enable_cc;
    if (known && known->version) config.version = *known->version;

    state->socket = deps_.udp->bind_ephemeral();

    // The connection's callbacks capture the ConnState weakly: the state
    // owns the connection, so a shared capture here would be a
    // state -> conn -> callbacks -> state cycle that outlives the
    // transport (the sanitizer build flags it as a leak).
    std::weak_ptr<ConnState> weak_state = state;
    quic::QuicConnection::Callbacks callbacks;
    callbacks.send_datagram = [this, weak_state, guard = alive_guard()](
                                  util::Buffer bytes) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      state->socket->send_to(options_.resolver, std::move(bytes));
    };
    callbacks.on_handshake_complete =
        [this, weak_state, guard = alive_guard()](
            const quic::QuicHandshakeInfo& info) {
          if (guard.expired()) return;
          auto state = weak_state.lock();
          if (!state) return;
          on_established(state, info);
        };
    callbacks.on_stream_data = [this, weak_state, guard = alive_guard()](
                                   std::uint64_t id,
                                   std::span<const std::uint8_t> d,
                                   bool fin) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      on_stream_data(state, id, d, fin);
    };
    callbacks.on_new_ticket = [this, guard = alive_guard()](
                                  const tls::SessionTicket& ticket) {
      if (guard.expired()) return;
      if (deps_.tickets) deps_.tickets->put(cache_key(), ticket);
    };
    callbacks.on_new_token = [this, guard = alive_guard()](
                                 const quic::AddressToken& token) {
      if (guard.expired()) return;
      if (deps_.doq_cache) deps_.doq_cache->entry(cache_key()).token = token;
    };
    callbacks.on_closed = [this, weak_state, guard = alive_guard()](
                              const util::Error& error) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      if (!error.ok()) {
        auto in_flight = std::move(state->in_flight);
        state->in_flight.clear();
        state->queued.clear();
        for (auto& pending : in_flight) {
          finish_error(pending, error);
        }
      }
    };
    state->conn = quic::QuicConnection::make_client(sim(), config,
                                                    std::move(callbacks));
    state->socket->on_datagram(
        [conn = state->conn](const net::Endpoint&,
                             util::Buffer payload) {
          conn->on_datagram(payload);
        });

    state->in_flight.push_back(first);

    std::optional<tls::SessionTicket> ticket;
    if (options_.use_session_resumption && deps_.tickets) {
      ticket = deps_.tickets->get(cache_key(), sim().now());
    }
    std::optional<quic::AddressToken> token;
    if (options_.use_address_token && known && known->token &&
        known->token->valid_for(known->token->server_secret,
                                state->socket->local_endpoint()
                                    .address.value(),
                                sim().now())) {
      token = known->token;
    }

    // 0-RTT requires knowing the framing (negotiated ALPN) up front — the
    // paper's methodology stores it from the cache-warming query.
    const bool can_0rtt = options_.attempt_0rtt && ticket &&
                          ticket->allow_early_data && known && known->alpn;
    if (can_0rtt) {
      state->alpn = *known->alpn;
      state->length_prefix = alpn_uses_length_prefix(state->alpn);
      queue_stream_query(state, first);
      first->result.used_0rtt = true;
    } else {
      state->queued.push_back(first);
    }
    state->conn->connect(ticket, token);
  }

  void queue_stream_query(const std::shared_ptr<ConnState>& state,
                          const PendingPtr& pending) {
    // RFC 9250 §4.2.1: DoQ queries use DNS message id 0.
    pending->dns_id = 0;
    dns::Message query = build_query(pending, /*encrypted=*/true);
    auto wire = query.encode();
    if (state->length_prefix) wire = length_prefixed(wire);
    const std::uint64_t stream_id = state->conn->open_stream(wire, true);
    state->streams[stream_id].pending = pending;
    mark(pending, QueryPhase::kRequestSent);
  }

  void on_established(const std::shared_ptr<ConnState>& state,
                      const quic::QuicHandshakeInfo& info) {
    state->alpn = info.alpn;
    state->length_prefix = alpn_uses_length_prefix(info.alpn);
    stats_.handshake_c2r = state->conn->bytes_sent();
    stats_.handshake_r2c = state->conn->bytes_received();

    if (deps_.doq_cache) {
      auto& entry = deps_.doq_cache->entry(cache_key());
      entry.version = info.version;
      entry.alpn = info.alpn;
    }
    for (auto& p : state->in_flight) {
      if (p->result.new_session) {
        mark(p, QueryPhase::kSecure);
        p->result.quic_version = info.version;
        p->result.alpn = info.alpn;
        p->result.session_resumed = info.resumed;
        p->result.used_0rtt = info.early_data_accepted;
        p->result.tls_version = tls::TlsVersion::kTls13;
      }
    }
    auto queued = std::move(state->queued);
    state->queued.clear();
    for (auto& pending : queued) {
      if (!pending->done) queue_stream_query(state, pending);
    }
  }

  void send_query(const PendingPtr& pending) {
    queue_stream_query(state_, pending);
    if (!pending->result.quic_version && state_->conn->info()) {
      const auto& info = *state_->conn->info();
      pending->result.quic_version = info.version;
      pending->result.alpn = info.alpn;
      pending->result.session_resumed = info.resumed;
      pending->result.tls_version = tls::TlsVersion::kTls13;
    }
  }

  void on_stream_data(const std::shared_ptr<ConnState>& state,
                      std::uint64_t stream_id,
                      std::span<const std::uint8_t> data, bool fin) {
    auto it = state->streams.find(stream_id);
    if (it == state->streams.end()) return;
    StreamBuf& buf = it->second;
    buf.data.insert(buf.data.end(), data.begin(), data.end());
    if (!fin) return;

    auto pending = buf.pending;
    std::span<const std::uint8_t> payload(buf.data);
    if (state->length_prefix) {
      if (payload.size() < 2) {
        finish_error(pending, util::Error::truncated("short DoQ response"));
        return;
      }
      const std::size_t len = (std::size_t(payload[0]) << 8) | payload[1];
      payload = payload.subspan(2, std::min(len, payload.size() - 2));
    }
    auto message = dns::Message::decode(payload);
    std::erase(state->in_flight, pending);
    state->streams.erase(it);
    if (!message || !matches(*message, *pending)) {
      finish_error(pending, util::Error::protocol("malformed DoQ response"));
      return;
    }
    finish_success(pending, std::move(*message));
  }

  std::shared_ptr<ConnState> state_;
  WireStats stats_;
};

}  // namespace

std::unique_ptr<DnsTransport> make_doq_transport(
    const TransportDeps& deps, const TransportOptions& options) {
  return std::make_unique<DoqTransport>(deps, options);
}

}  // namespace doxlab::dox
