// Shared machinery for the five transport implementations (internal header).
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>

#include "dox/transport.h"
#include "util/buffer.h"
#include "util/logging.h"

namespace doxlab::dox {

/// Common bookkeeping: pending-query lifecycle, ids, timeouts.
class TransportBase : public DnsTransport {
 public:
  DnsProtocol protocol() const override { return protocol_; }

 protected:
  TransportBase(DnsProtocol protocol, TransportDeps deps,
                TransportOptions options)
      : protocol_(protocol), deps_(deps), options_(std::move(options)) {}

  struct PendingQuery {
    dns::Question question;
    ResultHandler handler;
    QueryResult result;
    std::uint16_t dns_id = 0;
    sim::Timer timeout;
    bool done = false;
  };
  using PendingPtr = std::shared_ptr<PendingQuery>;

  sim::Simulator& sim() { return *deps_.sim; }

  /// Records a phase transition on the pending query's timeline (first
  /// mark wins — a retransmission never moves kRequestSent).
  void mark(const PendingPtr& pending, QueryPhase phase) {
    pending->result.timeline.mark(phase, sim().now());
  }

  /// Creates a pending entry with a fresh DNS id and an armed timeout.
  PendingPtr make_pending(const dns::Question& question,
                          ResultHandler handler) {
    auto pending = std::make_shared<PendingQuery>();
    pending->question = question;
    pending->handler = std::move(handler);
    pending->dns_id = next_id_++;
    mark(pending, QueryPhase::kSubmit);
    std::weak_ptr<PendingQuery> weak = pending;
    pending->timeout = sim().schedule(
        options_.query_timeout, [this, weak, guard = alive_guard()] {
          if (guard.expired()) return;
          if (auto p = weak.lock()) {
            finish_error(p, util::Error::timeout(
                                std::string(util::kQueryDeadlineDetail)));
          }
        });
    return pending;
  }

  /// Completes a query successfully with `response`.
  void finish_success(const PendingPtr& pending, dns::Message response) {
    if (pending->done) return;
    pending->done = true;
    pending->timeout.cancel();
    pending->result.outcome = util::Outcome::success();
    pending->result.response = std::move(response);
    mark(pending, QueryPhase::kResponse);
    // Move the handler out: it often captures the caller's object graph,
    // and the pending entry may linger in per-connection lists.
    auto handler = std::move(pending->handler);
    pending->handler = nullptr;
    if (handler) handler(std::move(pending->result));
  }

  /// Completes a query with a typed error.
  void finish_error(const PendingPtr& pending, util::Error error) {
    if (pending->done) return;
    pending->done = true;
    pending->timeout.cancel();
    pending->result.outcome = util::Outcome::failure(std::move(error));
    mark(pending, QueryPhase::kError);
    auto handler = std::move(pending->handler);
    pending->handler = nullptr;
    if (handler) handler(std::move(pending->result));
  }

  /// Builds the wire query for a pending entry, applying the configured
  /// EDNS0 UDP size and (on encrypted transports) RFC 8467 padding.
  dns::Message build_query(const PendingPtr& pending,
                           bool encrypted_channel) const {
    dns::Message query =
        dns::make_query(pending->dns_id, pending->question.name,
                        pending->question.type, options_.udp_payload_size);
    if (encrypted_channel && options_.pad_encrypted) {
      dns::pad_to_block(query, 128);
    }
    return query;
  }

  /// True if `message` is a well-formed response to `pending`.
  static bool matches(const dns::Message& message,
                      const PendingQuery& pending) {
    return message.qr && message.id == pending.dns_id &&
           message.question() != nullptr &&
           *message.question() == pending.question;
  }

  /// Destruction guard: connection/session callbacks outlive the transport
  /// (they sit inside TCP/QUIC objects that tear down asynchronously), so
  /// every callback capturing `this` must also capture
  /// `guard = alive_guard()` and bail out when it has expired.
  std::weak_ptr<const bool> alive_guard() const { return alive_; }

  DnsProtocol protocol_;
  TransportDeps deps_;
  TransportOptions options_;
  std::uint16_t next_id_ = 0x1000;

 private:
  std::shared_ptr<const bool> alive_ = std::make_shared<bool>(true);
};

/// Adds a 2-byte length prefix (DNS over stream transports, RFC 1035 §4.2.2).
std::vector<std::uint8_t> length_prefixed(const std::vector<std::uint8_t>& m);

/// In-place variant: the prefix goes into `m`'s headroom (encode messages
/// with at least 2 bytes of headroom to stay copy-free).
util::Buffer length_prefixed(util::Buffer m);

/// Headroom for a DoT query buffer: 2-byte length prefix + 5-byte TLS
/// record header, both prepended in place on the way down the stack.
inline constexpr std::size_t kDotHeadroom = 2 + 5;

/// Headroom for a DoH body buffer: 9-byte H2 frame header + 5-byte TLS
/// record header.
inline constexpr std::size_t kDohHeadroom = 9 + 5;

/// Incremental parser for length-prefixed DNS messages on a byte stream.
/// Bounded: the reassembly buffer never exceeds one maximum message
/// (65535 + 2 prefix bytes), and a garbage prefix — a length too short to
/// hold a DNS header — poisons the reader instead of growing the buffer.
/// Callers check failed() after feed() and surface kProtocolError.
class StreamMessageReader {
 public:
  /// Largest DNS message a 2-byte prefix can announce.
  static constexpr std::size_t kMaxMessageBytes = 65535;
  /// Hard cap on buffered bytes (one full message + its prefix).
  static constexpr std::size_t kMaxBufferedBytes = kMaxMessageBytes + 2;
  /// A length prefix below the fixed DNS header size is garbage.
  static constexpr std::size_t kMinMessageBytes = 12;

  /// Appends stream bytes; returns every complete DNS message payload.
  /// After a malformed prefix the reader is poisoned: it returns nothing
  /// and failed() is true until reset().
  std::vector<std::vector<std::uint8_t>> feed(
      std::span<const std::uint8_t> data);

  bool failed() const { return failed_; }

  void reset() {
    buffer_.clear();
    failed_ = false;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  bool failed_ = false;
};

}  // namespace doxlab::dox
