// The DnsTransport interface and factory.
//
// One transport instance represents a client's relationship with one
// resolver over one protocol — connections, tickets and tokens included.
// resolve() issues a query, lazily establishing whatever session the
// protocol needs; reset_sessions() drops live connections but keeps learned
// session state (tickets, tokens, negotiated versions), which is exactly
// the paper's measurement procedure between the cache-warming and measured
// runs.
#pragma once

#include <functional>
#include <memory>

#include "cc/cc.h"
#include "dox/types.h"
#include "net/udp.h"
#include "sim/simulator.h"
#include "tcp/tcp.h"
#include "tls/ticket.h"

namespace doxlab::dox {

/// Everything a transport needs from its environment. The stacks and stores
/// are owned by the caller (a vantage point or the DNS proxy) and typically
/// shared across transports.
struct TransportDeps {
  sim::Simulator* sim = nullptr;
  net::UdpStack* udp = nullptr;
  tcp::TcpStack* tcp = nullptr;
  tls::TicketStore* tickets = nullptr;
  DoqSessionCache* doq_cache = nullptr;
};

struct TransportOptions {
  net::Endpoint resolver;
  /// Offer/use TLS session resumption (all resolvers in the study support
  /// it; the ablation bench turns it off to reproduce the paper's
  /// preliminary-work behaviour).
  bool use_session_resumption = true;
  /// Attempt TLS/QUIC 0-RTT when a ticket permits it.
  bool attempt_0rtt = true;
  /// Present a stored address-validation token in DoQ INITIALs.
  bool use_address_token = true;
  /// DoUDP application-layer retry: Chromium's resolv.conf-style 5 s
  /// initial timeout (the source of the paper's DoUDP tail outliers).
  SimTime udp_retry_timeout = 5 * kSecond;
  int udp_max_attempts = 3;
  /// DoTCP: open a fresh connection per query (what every resolver-facing
  /// client in the study effectively did, since none support
  /// edns-tcp-keepalive/TFO). false enables RFC 9210-style reuse.
  bool tcp_fresh_connection_per_query = true;
  /// DoTCP: attempt TCP Fast Open (ablation).
  bool tcp_use_tfo = false;
  /// DoT: reproduce the dnsproxy connection-handling bug — a new connection
  /// is opened whenever a query is already in flight (fixed upstream by the
  /// paper's authors; flag on reproduces Fig. 3's DoT tail).
  bool dot_buggy_reuse = false;
  /// EDNS0 padding (RFC 8467): pad queries on encrypted transports to
  /// 128-byte blocks (servers pad responses to 468). Off by default — the
  /// paper's measured sizes show no padding in the 2022 population.
  bool pad_encrypted = false;
  /// Advertised EDNS0 UDP payload size.
  std::uint16_t udp_payload_size = 1232;
  /// DoUDP: retry over TCP when the response comes back truncated (TC).
  bool tcp_fallback_on_truncation = true;
  /// Give up on any query after this long.
  SimTime query_timeout = 15 * kSecond;
  /// TCP congestion control for DoTCP/DoT/DoH connections. The default is
  /// the seed-faithful legacy mode; adverse-path studies select kNewReno.
  cc::CcAlgorithm tcp_congestion = cc::CcAlgorithm::kLegacySlowStart;
  /// Enable RFC 9002 congestion control on DoQ/DoH3 connections (off by
  /// default: the seed's PTO-only recovery is the pinned baseline).
  bool quic_enable_cc = false;
};

class DnsTransport {
 public:
  using ResultHandler = std::function<void(QueryResult)>;

  virtual ~DnsTransport() = default;

  /// Issues a query. The handler fires exactly once (response, error or
  /// timeout).
  virtual void resolve(const dns::Question& question,
                       ResultHandler handler) = 0;

  /// Closes live connections; keeps tickets/tokens/version knowledge.
  virtual void reset_sessions() = 0;

  /// Cumulative wire bytes of the most recent connection (all datagrams /
  /// segments including retransmissions, ACKs and teardown), split at the
  /// handshake boundary. For DoUDP the handshake parts are zero.
  virtual WireStats wire_stats() const = 0;

  virtual DnsProtocol protocol() const = 0;
};

/// Creates a transport for `protocol`. The deps pointers required by that
/// protocol must be non-null (udp for DoUDP/DoQ, tcp for the TCP family;
/// tickets/doq_cache whenever resumption state should persist).
std::unique_ptr<DnsTransport> make_transport(DnsProtocol protocol,
                                             const TransportDeps& deps,
                                             const TransportOptions& options);

}  // namespace doxlab::dox
