// DoT: DNS over TLS (RFC 7858) — TLS 1.2/1.3 over TCP 853 with the RFC 1035
// 2-byte length framing inside the TLS stream.
//
// Supports session resumption (used by all resolvers in the paper) and
// 0-RTT (used by none). The `dot_buggy_reuse` option reproduces the
// dnsproxy connection-handling bug the paper root-caused: when a query is
// already in flight, a *new* connection is opened instead of pipelining on
// the existing one, so almost 60% of DoT page loads repeated the full
// transport+TLS handshake (the paper's authors fixed this upstream; both
// behaviours are modelled).
#include "dox/transport_base.h"
#include "tls/session.h"

namespace doxlab::dox {

namespace {

class DotTransport final : public TransportBase {
 public:
  DotTransport(const TransportDeps& deps, const TransportOptions& options)
      : TransportBase(DnsProtocol::kDoT, deps, options) {}

  ~DotTransport() override { reset_sessions(); }

  void resolve(const dns::Question& question, ResultHandler handler) override {
    auto pending = make_pending(question, std::move(handler));

    // Pick a connection. Correct behaviour: reuse the (single) connection,
    // pipelining if necessary. Buggy dnsproxy behaviour: only reuse a
    // connection that is idle; otherwise open another one.
    for (auto& state : connections_) {
      if (state->closed) continue;
      if (options_.dot_buggy_reuse && !state->in_flight.empty()) continue;
      attach(state, pending);
      return;
    }
    open_connection(pending);
  }

  void reset_sessions() override {
    // Mark states closed but keep owning them: the FIN exchange completes
    // asynchronously and on_closed (which records final byte totals and
    // erases the state) still needs the state alive.
    for (auto& state : connections_) {
      if (state->closed) continue;
      state->tls->send_close_notify();
      state->conn->close();
      state->closed = true;
    }
  }

  WireStats wire_stats() const override {
    WireStats stats = stats_;
    if (auto state = last_.lock()) {
      stats.total_c2r = state->conn->bytes_sent();
      stats.total_r2c = state->conn->bytes_received();
    }
    return stats;
  }

 private:
  struct ConnState {
    std::shared_ptr<tcp::TcpConnection> conn;
    std::unique_ptr<tls::TlsSession> tls;
    StreamMessageReader reader;
    std::vector<PendingPtr> in_flight;
    std::vector<PendingPtr> queued;  // waiting for handshake
    bool established = false;
    bool closed = false;
    std::optional<tls::HandshakeInfo> info;
  };
  using StatePtr = std::shared_ptr<ConnState>;

  std::string ticket_key() const {
    return server_key(options_.resolver, DnsProtocol::kDoT);
  }

  void attach(const StatePtr& state, const PendingPtr& pending) {
    state->in_flight.push_back(pending);
    if (state->established) {
      send_query(state, pending);
    } else {
      state->queued.push_back(pending);
    }
  }

  void open_connection(const PendingPtr& first) {
    auto state = std::make_shared<ConnState>();
    first->result.new_session = true;
    mark(first, QueryPhase::kConnect);
    stats_ = WireStats{};
    last_ = state;

    tcp::TcpOptions tcp_options;
    tcp_options.congestion_algorithm = options_.tcp_congestion;
    state->conn = deps_.tcp->connect(options_.resolver, tcp_options);

    tls::TlsConfig tls_config;
    tls_config.alpn = {"dot"};
    tls_config.sni = "resolver-" + options_.resolver.address.to_string();
    tls_config.enable_0rtt = options_.attempt_0rtt;

    // The state owns the TLS session and the TCP connection; their
    // callbacks must capture it weakly or the trio leaks as a reference
    // cycle (sanitizer-visible).
    std::weak_ptr<ConnState> weak_state = state;
    tls::TlsSession::Callbacks callbacks;
    callbacks.now = [this] { return sim().now(); };
    callbacks.send_transport = [weak_state](util::Buffer bytes) {
      auto state = weak_state.lock();
      if (!state) return;
      if (!state->closed) state->conn->send(std::move(bytes));
    };
    callbacks.on_handshake_complete =
        [this, weak_state, guard = alive_guard()](
            const tls::HandshakeInfo& info) {
          if (guard.expired()) return;
          auto state = weak_state.lock();
          if (!state) return;
          on_established(state, info);
        };
    callbacks.on_application_data =
        [this, weak_state, guard = alive_guard()](
            std::span<const std::uint8_t> data) {
          if (guard.expired()) return;
          auto state = weak_state.lock();
          if (!state) return;
          on_dns_stream(state, data);
        };
    callbacks.on_new_ticket = [this, guard = alive_guard()](
                                  const tls::SessionTicket& ticket) {
      if (guard.expired()) return;
      if (deps_.tickets) deps_.tickets->put(ticket_key(), ticket);
    };
    callbacks.on_error = [this, weak_state, guard = alive_guard()](
                             const util::Error& error) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      fail_connection(state, error);
    };
    state->tls =
        std::make_unique<tls::TlsSession>(tls_config, std::move(callbacks));

    state->conn->on_data([weak_state](std::span<const std::uint8_t> data) {
      auto state = weak_state.lock();
      if (!state) return;
      state->tls->on_transport_data(data);
    });
    state->conn->on_closed([this, weak_state,
                            guard = alive_guard()](const util::Error& error) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      stats_.total_c2r = state->conn->bytes_sent();
      stats_.total_r2c = state->conn->bytes_received();
      last_.reset();
      state->closed = true;
      if (!error.ok()) fail_connection(state, error);
      std::erase(connections_, state);
    });

    state->in_flight.push_back(first);
    state->queued.push_back(first);
    connections_.push_back(state);

    // Resumption ticket + optional 0-RTT with the query as early data.
    std::optional<tls::SessionTicket> ticket;
    if (options_.use_session_resumption && deps_.tickets) {
      ticket = deps_.tickets->get(ticket_key(), sim().now());
    }
    std::vector<std::uint8_t> early_data;
    if (options_.attempt_0rtt && ticket && ticket->allow_early_data) {
      dns::Message query = build_query(first, /*encrypted=*/true);
      early_data = length_prefixed(query.encode());
      mark(first, QueryPhase::kRequestSent);
      state->queued.clear();  // riding 0-RTT instead
      first->result.used_0rtt = true;
    }
    state->tls->start(ticket, std::move(early_data));
  }

  void on_established(const StatePtr& state, const tls::HandshakeInfo& info) {
    state->established = true;
    state->info = info;
    stats_.handshake_c2r = state->conn->bytes_sent();
    stats_.handshake_r2c = state->conn->bytes_received();
    for (auto& p : state->in_flight) {
      if (p->result.new_session) {
        mark(p, QueryPhase::kSecure);
        p->result.tls_version = info.version;
        p->result.session_resumed = info.resumed;
        p->result.used_0rtt = info.early_data_accepted;
        p->result.alpn = info.alpn;
      }
    }
    auto queued = std::move(state->queued);
    state->queued.clear();
    for (auto& pending : queued) {
      if (!pending->done) send_query(state, pending);
    }
  }

  void send_query(const StatePtr& state, const PendingPtr& pending) {
    dns::Message query = build_query(pending, /*encrypted=*/true);
    // One slab end to end: the message encodes once, then the length
    // prefix and TLS record header are prepended into its headroom.
    state->tls->send_application_data(
        length_prefixed(query.encode_buffer(kDotHeadroom)));
    mark(pending, QueryPhase::kRequestSent);
    // Carry protocol facts even on reused sessions.
    if (!pending->result.tls_version && state->info) {
      pending->result.tls_version = state->info->version;
      pending->result.session_resumed = state->info->resumed;
      pending->result.alpn = state->info->alpn;
    }
  }

  void on_dns_stream(const StatePtr& state,
                     std::span<const std::uint8_t> data) {
    auto payloads = state->reader.feed(data);
    if (state->reader.failed()) {
      fail_connection(state,
                      util::Error::protocol("garbage DNS message framing"));
      state->conn->abort();
      return;
    }
    for (auto& payload : payloads) {
      auto message = dns::Message::decode(payload);
      if (!message) continue;
      for (auto it = state->in_flight.begin(); it != state->in_flight.end();
           ++it) {
        if (matches(*message, **it)) {
          auto pending = *it;
          state->in_flight.erase(it);
          if (!pending->result.tls_version && state->info) {
            pending->result.tls_version = state->info->version;
            pending->result.session_resumed = state->info->resumed;
            pending->result.alpn = state->info->alpn;
          }
          finish_success(pending, std::move(*message));
          break;
        }
      }
    }
  }

  void fail_connection(const StatePtr& state, const util::Error& error) {
    auto in_flight = std::move(state->in_flight);
    state->in_flight.clear();
    state->queued.clear();
    state->closed = true;
    for (auto& pending : in_flight) finish_error(pending, error);
  }

  std::vector<StatePtr> connections_;
  std::weak_ptr<ConnState> last_;
  WireStats stats_;
};

}  // namespace

std::unique_ptr<DnsTransport> make_dot_transport(
    const TransportDeps& deps, const TransportOptions& options) {
  return std::make_unique<DotTransport>(deps, options);
}

}  // namespace doxlab::dox
