// Shared types for the DNS-over-X transport clients — the measurement-facing
// surface of the library. A `DnsTransport` issues DNS queries over one of
// the five protocols the paper compares (DoUDP, DoTCP, DoT, DoH, DoQ) and
// reports per-query timing plus per-phase wire bytes, the two quantities the
// paper's Table 1 and Fig. 2 are built from.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "dns/message.h"
#include "dox/timeline.h"
#include "net/address.h"
#include "quic/types.h"
#include "tls/ticket.h"
#include "util/error.h"
#include "util/types.h"

namespace doxlab::dox {

/// The five transports of the study, plus DNS over HTTP/3 — the paper's
/// future-work protocol (standardised HTTP/3 over QUIC; Cloudflare and
/// Google were early adopters).
enum class DnsProtocol { kDoUdp, kDoTcp, kDoT, kDoH, kDoQ, kDoH3 };

/// The paper's five measured protocols (DoH3 is evaluated separately by the
/// future-work bench).
inline constexpr DnsProtocol kAllProtocols[] = {
    DnsProtocol::kDoUdp, DnsProtocol::kDoTcp, DnsProtocol::kDoT,
    DnsProtocol::kDoH, DnsProtocol::kDoQ};

/// All implemented transports including DoH3.
inline constexpr DnsProtocol kExtendedProtocols[] = {
    DnsProtocol::kDoUdp, DnsProtocol::kDoTcp, DnsProtocol::kDoT,
    DnsProtocol::kDoH, DnsProtocol::kDoQ, DnsProtocol::kDoH3};

std::string_view protocol_name(DnsProtocol p);

/// Well-known server ports.
std::uint16_t default_port(DnsProtocol p);

/// Cumulative wire bytes (IP payload: transport headers + payload) for the
/// current connection, split at the handshake boundary — the split Table 1
/// of the paper reports.
struct WireStats {
  std::uint64_t handshake_c2r = 0;
  std::uint64_t handshake_r2c = 0;
  std::uint64_t total_c2r = 0;
  std::uint64_t total_r2c = 0;

  std::uint64_t query_c2r() const { return total_c2r - handshake_c2r; }
  std::uint64_t response_r2c() const { return total_r2c - handshake_r2c; }
  std::uint64_t total() const { return total_c2r + total_r2c; }
};

/// Outcome of one resolve() call. Success/failure is a typed
/// `util::Outcome` (class + detail, never a matched string) and all timing
/// is derived from the phase timeline recorded by TransportBase.
struct QueryResult {
  util::Outcome outcome;
  QueryTimeline timeline;
  dns::Message response;

  bool ok() const { return outcome.ok(); }
  const util::Error& error() const { return outcome.error(); }
  util::ErrorClass error_class() const { return outcome.cls(); }

  /// First transport-handshake packet -> encrypted session established
  /// (kConnect -> kSecure). Zero when the query reused an existing session
  /// (and for DoUDP, which is connectionless).
  SimTime handshake_time() const { return timeline.handshake_time(); }
  /// First packet of the DNS query -> valid DNS response
  /// (kRequestSent -> kResponse).
  SimTime resolve_time() const { return timeline.resolve_time(); }
  /// resolve() call -> terminal mark (handshake + resolve + internal gaps).
  SimTime total_time() const { return timeline.total_time(); }

  /// True if this query triggered a fresh connection/session.
  bool new_session = false;

  // Protocol facts (as observed for this query's session).
  std::optional<tls::TlsVersion> tls_version;
  bool session_resumed = false;
  bool used_0rtt = false;
  std::optional<quic::QuicVersion> quic_version;
  std::string alpn;
  int udp_retransmissions = 0;
  /// DoUDP: the response was truncated and the query was retried over TCP
  /// (RFC 1035 §4.2.2 fallback).
  bool tc_fallback = false;
};

/// What the DoQ client remembers about a resolver between sessions, beyond
/// the TLS ticket: the negotiated version (avoids Version Negotiation), the
/// negotiated ALPN (needed to frame queries before the handshake finishes,
/// e.g. for 0-RTT) and the address-validation token from NEW_TOKEN. The
/// paper's methodology stores exactly these from the cache-warming query.
struct DoqServerInfo {
  std::optional<quic::QuicVersion> version;
  std::optional<std::string> alpn;
  std::optional<quic::AddressToken> token;
};

/// Per-resolver DoQ knowledge cache, keyed like the ticket store. The map
/// is transparent (heterogeneous string_view lookup), so probing with a
/// borrowed key never materialises a std::string.
class DoqSessionCache {
 public:
  DoqServerInfo& entry(std::string_view server_key) {
    auto it = entries_.find(server_key);
    if (it == entries_.end()) {
      it = entries_.emplace(std::string(server_key), DoqServerInfo{}).first;
    }
    return it->second;
  }
  const DoqServerInfo* find(std::string_view server_key) const {
    auto it = entries_.find(server_key);
    return it == entries_.end() ? nullptr : &it->second;
  }
  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

 private:
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view key) const noexcept {
      return std::hash<std::string_view>{}(key);
    }
  };
  std::unordered_map<std::string, DoqServerInfo, KeyHash, std::equal_to<>>
      entries_;
};

/// Canonical ticket/info store key for a resolver endpoint + protocol.
std::string server_key(const net::Endpoint& resolver, DnsProtocol protocol);

}  // namespace doxlab::dox
