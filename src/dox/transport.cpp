#include "dox/transport.h"

#include <stdexcept>

#include "dox/transport_base.h"

namespace doxlab::dox {

// Defined in the per-protocol translation units.
std::unique_ptr<DnsTransport> make_udp_transport(const TransportDeps&,
                                                 const TransportOptions&);
std::unique_ptr<DnsTransport> make_tcp_transport(const TransportDeps&,
                                                 const TransportOptions&);
std::unique_ptr<DnsTransport> make_dot_transport(const TransportDeps&,
                                                 const TransportOptions&);
std::unique_ptr<DnsTransport> make_doh_transport(const TransportDeps&,
                                                 const TransportOptions&);
std::unique_ptr<DnsTransport> make_doq_transport(const TransportDeps&,
                                                 const TransportOptions&);
std::unique_ptr<DnsTransport> make_doh3_transport(const TransportDeps&,
                                                  const TransportOptions&);

std::unique_ptr<DnsTransport> make_transport(DnsProtocol protocol,
                                             const TransportDeps& deps,
                                             const TransportOptions& options) {
  if (deps.sim == nullptr) {
    throw std::invalid_argument("TransportDeps.sim is required");
  }
  switch (protocol) {
    case DnsProtocol::kDoUdp:
      if (deps.udp == nullptr) {
        throw std::invalid_argument("DoUDP requires a UDP stack");
      }
      return make_udp_transport(deps, options);
    case DnsProtocol::kDoTcp:
      if (deps.tcp == nullptr) {
        throw std::invalid_argument("DoTCP requires a TCP stack");
      }
      return make_tcp_transport(deps, options);
    case DnsProtocol::kDoT:
      if (deps.tcp == nullptr) {
        throw std::invalid_argument("DoT requires a TCP stack");
      }
      return make_dot_transport(deps, options);
    case DnsProtocol::kDoH:
      if (deps.tcp == nullptr) {
        throw std::invalid_argument("DoH requires a TCP stack");
      }
      return make_doh_transport(deps, options);
    case DnsProtocol::kDoQ:
      if (deps.udp == nullptr) {
        throw std::invalid_argument("DoQ requires a UDP stack");
      }
      return make_doq_transport(deps, options);
    case DnsProtocol::kDoH3:
      if (deps.udp == nullptr) {
        throw std::invalid_argument("DoH3 requires a UDP stack");
      }
      return make_doh3_transport(deps, options);
  }
  throw std::invalid_argument("unknown protocol");
}

std::vector<std::uint8_t> length_prefixed(const std::vector<std::uint8_t>& m) {
  std::vector<std::uint8_t> out;
  out.reserve(m.size() + 2);
  out.push_back(static_cast<std::uint8_t>(m.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(m.size() & 0xFF));
  out.insert(out.end(), m.begin(), m.end());
  return out;
}

util::Buffer length_prefixed(util::Buffer m) {
  const std::size_t len = m.size();
  std::uint8_t* prefix = m.prepend(2);
  prefix[0] = static_cast<std::uint8_t>(len >> 8);
  prefix[1] = static_cast<std::uint8_t>(len & 0xFF);
  return m;
}

std::vector<std::vector<std::uint8_t>> StreamMessageReader::feed(
    std::span<const std::uint8_t> data) {
  std::vector<std::vector<std::uint8_t>> out;
  if (failed_) return out;
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  while (buffer_.size() >= 2) {
    const std::size_t len = (std::size_t(buffer_[0]) << 8) | buffer_[1];
    // A prefix announcing less than a DNS header is not a DNS stream:
    // poison the reader rather than resynchronising on garbage.
    if (len < kMinMessageBytes) {
      failed_ = true;
      buffer_.clear();
      return out;
    }
    if (buffer_.size() < 2 + len) break;
    out.emplace_back(buffer_.begin() + 2, buffer_.begin() + 2 + len);
    buffer_.erase(buffer_.begin(), buffer_.begin() + 2 + len);
  }
  // The extraction loop drains every complete message, so leftover bytes
  // are at most one partial message; anything larger is a framing bug.
  if (buffer_.size() > kMaxBufferedBytes) {
    failed_ = true;
    buffer_.clear();
  }
  return out;
}

}  // namespace doxlab::dox
