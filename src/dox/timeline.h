// Per-query phase timeline.
//
// Every transport used to hand-maintain `submitted_at`, `query_sent_at` and
// a computed `handshake_time` per pending query. The timeline replaces that
// bookkeeping with one set of phase-transition timestamps recorded once, in
// TransportBase, for all six transports:
//
//   kSubmit       resolve() accepted the query
//   kConnect      the transport started opening a connection for this query
//   kSecure       that connection became usable (TCP established, TLS or
//                 QUIC handshake complete)
//   kRequestSent  the DNS request was handed to the wire
//   kResponse     a valid DNS response was accepted
//   kError        a terminal failure was delivered
//
// The paper's metrics are derived views over these marks and reproduce the
// old fields exactly (Table 1 / Fig. 2 outputs are bit-identical):
//   handshake_time = kSecure - kConnect     (0 on a reused session, which
//                                            never marks kConnect/kSecure)
//   resolve_time   = kResponse - kRequestSent  (0 on failure)
//   total_time     = terminal mark - kSubmit
//
// mark() is first-write-wins, which encodes the measurement semantics: a
// DoUDP retransmission does not move kRequestSent, and only the pending
// query that opened a connection carries kConnect/kSecure.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/types.h"

namespace doxlab::dox {

enum class QueryPhase : std::uint8_t {
  kSubmit = 0,
  kConnect,
  kSecure,
  kRequestSent,
  kResponse,
  kError,
};

inline constexpr std::size_t kQueryPhaseCount = 6;

inline std::string_view query_phase_name(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kSubmit:
      return "submit";
    case QueryPhase::kConnect:
      return "connect";
    case QueryPhase::kSecure:
      return "secure";
    case QueryPhase::kRequestSent:
      return "request_sent";
    case QueryPhase::kResponse:
      return "response";
    case QueryPhase::kError:
      return "error";
  }
  return "unknown";
}

class QueryTimeline {
 public:
  /// Records `now` for `phase` unless the phase was already marked.
  void mark(QueryPhase phase, SimTime now) {
    SimTime& slot = at_[index(phase)];
    if (slot < 0) slot = now;
  }

  bool has(QueryPhase phase) const { return at_[index(phase)] >= 0; }

  /// Timestamp of `phase`, or -1 if never reached.
  SimTime at(QueryPhase phase) const { return at_[index(phase)]; }

  /// Connection setup cost (TCP + TLS/QUIC). 0 when the query rode an
  /// existing session.
  SimTime handshake_time() const {
    return has(QueryPhase::kConnect) && has(QueryPhase::kSecure)
               ? at(QueryPhase::kSecure) - at(QueryPhase::kConnect)
               : 0;
  }

  /// Wire round trip of the DNS exchange itself. 0 on failure.
  SimTime resolve_time() const {
    return has(QueryPhase::kRequestSent) && has(QueryPhase::kResponse)
               ? at(QueryPhase::kResponse) - at(QueryPhase::kRequestSent)
               : 0;
  }

  /// Submit to terminal mark (response or error).
  SimTime total_time() const {
    if (!has(QueryPhase::kSubmit)) return 0;
    const SimTime end = has(QueryPhase::kResponse)
                            ? at(QueryPhase::kResponse)
                            : at(QueryPhase::kError);
    return end >= 0 ? end - at(QueryPhase::kSubmit) : 0;
  }

 private:
  static std::size_t index(QueryPhase phase) {
    return static_cast<std::size_t>(phase);
  }
  std::array<SimTime, kQueryPhaseCount> at_{-1, -1, -1, -1, -1, -1};
};

}  // namespace doxlab::dox
