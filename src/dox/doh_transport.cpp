// DoH: DNS over HTTPS (RFC 8484) — HTTP/2 POST over TLS over TCP 443.
//
// One persistent connection multiplexes queries as H2 streams. The H2
// preface/SETTINGS/HEADERS overhead is what makes DoH queries and responses
// the largest of all five protocols in the paper's Table 1, and the
// TCP+TLS handshake (2 RTT) is why its handshake time is ~2x DoQ's.
#include "dox/transport_base.h"
#include "h2/connection.h"
#include "tls/session.h"

namespace doxlab::dox {

namespace {

class DohTransport final : public TransportBase {
 public:
  DohTransport(const TransportDeps& deps, const TransportOptions& options)
      : TransportBase(DnsProtocol::kDoH, deps, options) {}

  ~DohTransport() override { reset_sessions(); }

  void resolve(const dns::Question& question, ResultHandler handler) override {
    auto pending = make_pending(question, std::move(handler));
    if (!state_ || state_->closed) {
      open_connection(pending);
      return;
    }
    state_->in_flight.push_back(pending);
    if (state_->established) {
      send_request(pending);
    } else {
      state_->queued.push_back(pending);
    }
  }

  void reset_sessions() override {
    if (state_ && !state_->closed) {
      state_->h2->send_goaway();
      state_->tls->send_close_notify();
      state_->conn->close();
      state_->closed = true;
      // The FIN exchange completes asynchronously; on_closed (which
      // records final byte totals) still needs the state alive.
      closing_.push_back(state_);
    }
    state_.reset();
  }

  WireStats wire_stats() const override {
    WireStats stats = stats_;
    if (auto state = last_.lock(); state && !state->closed) {
      stats.total_c2r = state->conn->bytes_sent();
      stats.total_r2c = state->conn->bytes_received();
    }
    return stats;
  }

 private:
  struct ConnState {
    std::shared_ptr<tcp::TcpConnection> conn;
    std::unique_ptr<tls::TlsSession> tls;
    std::unique_ptr<h2::H2Connection> h2;
    std::map<std::uint32_t, PendingPtr> by_stream;
    std::map<std::uint32_t, std::vector<std::uint8_t>> bodies;
    std::vector<PendingPtr> in_flight;
    std::vector<PendingPtr> queued;
    bool established = false;
    bool closed = false;
    bool tls_started = false;
    std::vector<std::uint8_t> early_buffer;
    std::optional<tls::HandshakeInfo> info;
  };

  std::string ticket_key() const {
    return server_key(options_.resolver, DnsProtocol::kDoH);
  }

  std::string authority() const {
    return "resolver-" + options_.resolver.address.to_string();
  }

  void open_connection(const PendingPtr& first) {
    auto state = std::make_shared<ConnState>();
    state_ = state;
    last_ = state;
    first->result.new_session = true;
    mark(first, QueryPhase::kConnect);
    stats_ = WireStats{};

    tcp::TcpOptions tcp_options;
    tcp_options.congestion_algorithm = options_.tcp_congestion;
    state->conn = deps_.tcp->connect(options_.resolver, tcp_options);

    tls::TlsConfig tls_config;
    tls_config.alpn = {"h2"};
    tls_config.sni = authority();
    tls_config.enable_0rtt = options_.attempt_0rtt;

    // Weak ConnState captures throughout: the state owns the TLS session,
    // the H2 session, and the TCP connection, so shared captures in any of
    // their callbacks would leak the whole connection as a cycle.
    std::weak_ptr<ConnState> weak_state = state;
    tls::TlsSession::Callbacks tls_callbacks;
    tls_callbacks.now = [this] { return sim().now(); };
    tls_callbacks.send_transport = [weak_state](util::Buffer bytes) {
      auto state = weak_state.lock();
      if (!state) return;
      if (!state->closed) state->conn->send(std::move(bytes));
    };
    tls_callbacks.on_handshake_complete =
        [this, weak_state, guard = alive_guard()](
            const tls::HandshakeInfo& info) {
          if (guard.expired()) return;
          auto state = weak_state.lock();
          if (!state) return;
          on_established(state, info);
        };
    tls_callbacks.on_application_data =
        [weak_state](std::span<const std::uint8_t> data) {
          auto state = weak_state.lock();
          if (!state) return;
          state->h2->on_transport_data(data);
        };
    tls_callbacks.on_new_ticket = [this, guard = alive_guard()](
                                      const tls::SessionTicket& ticket) {
      if (guard.expired()) return;
      if (deps_.tickets) deps_.tickets->put(ticket_key(), ticket);
    };
    tls_callbacks.on_error = [this, weak_state, guard = alive_guard()](
                                 const util::Error& error) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      fail_connection(state, error);
    };
    state->tls = std::make_unique<tls::TlsSession>(tls_config,
                                                   std::move(tls_callbacks));

    h2::H2Connection::Callbacks h2_callbacks;
    // Until the TLS client has started, H2 output accumulates so it can be
    // offered as 0-RTT early data in the first flight.
    h2_callbacks.send_transport = [weak_state](util::Buffer bytes) {
      auto state = weak_state.lock();
      if (!state) return;
      if (!state->tls_started) {
        state->early_buffer.insert(state->early_buffer.end(), bytes.data(),
                                   bytes.data() + bytes.size());
        return;
      }
      state->tls->send_application_data(std::move(bytes));
    };
    h2_callbacks.on_headers = [this, weak_state, guard = alive_guard()](
                                  std::uint32_t stream_id,
                                  const std::vector<h2::Header>& hs,
                                  bool end_stream) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      on_response_headers(state, stream_id, hs, end_stream);
    };
    h2_callbacks.on_data = [this, weak_state, guard = alive_guard()](
                               std::uint32_t stream_id,
                               std::span<const std::uint8_t> data,
                               bool end_stream) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      on_response_data(state, stream_id, data, end_stream);
    };
    h2_callbacks.on_error = [this, weak_state, guard = alive_guard()](
                                const util::Error& error) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      fail_connection(state, error);
    };
    state->h2 = std::make_unique<h2::H2Connection>(/*is_client=*/true,
                                                   std::move(h2_callbacks));

    state->conn->on_data([weak_state](std::span<const std::uint8_t> data) {
      auto state = weak_state.lock();
      if (!state) return;
      state->tls->on_transport_data(data);
    });
    state->conn->on_closed([this, weak_state,
                            guard = alive_guard()](const util::Error& error) {
      if (guard.expired()) return;
      auto state = weak_state.lock();
      if (!state) return;
      stats_.total_c2r = state->conn->bytes_sent();
      stats_.total_r2c = state->conn->bytes_received();
      state->closed = true;
      if (!error.ok()) fail_connection(state, error);
      std::erase(closing_, state);
    });

    state->in_flight.push_back(first);
    state->queued.push_back(first);

    std::optional<tls::SessionTicket> ticket;
    if (options_.use_session_resumption && deps_.tickets) {
      ticket = deps_.tickets->get(ticket_key(), sim().now());
    }
    // Generate the H2 preface (and, when 0-RTT is possible, the first
    // request) before starting TLS so those bytes ride the first flight as
    // early data; otherwise TlsSession queues them until the handshake is
    // done.
    state->h2->start();
    if (options_.attempt_0rtt && ticket && ticket->allow_early_data) {
      auto pending = state->queued.front();
      state->queued.clear();
      send_request(pending);
      pending->result.used_0rtt = true;
    }
    state->tls_started = true;
    state->tls->start(ticket, std::move(state->early_buffer));
    state->early_buffer.clear();
  }

  void on_established(const std::shared_ptr<ConnState>& state,
                      const tls::HandshakeInfo& info) {
    state->established = true;
    state->info = info;
    stats_.handshake_c2r = state->conn->bytes_sent();
    stats_.handshake_r2c = state->conn->bytes_received();
    for (auto& p : state->in_flight) {
      if (p->result.new_session) {
        mark(p, QueryPhase::kSecure);
        p->result.tls_version = info.version;
        p->result.session_resumed = info.resumed;
        p->result.used_0rtt = info.early_data_accepted;
        p->result.alpn = info.alpn;
      }
    }
    auto queued = std::move(state->queued);
    state->queued.clear();
    for (auto& pending : queued) {
      if (!pending->done) send_request(pending);
    }
  }

  void send_request(const PendingPtr& pending) {
    dns::Message query = build_query(pending, /*encrypted=*/true);
    // One slab end to end: the H2 DATA frame header and TLS record header
    // are prepended into the body's headroom in place.
    util::Buffer body = query.encode_buffer(kDohHeadroom);
    std::vector<h2::Header> headers = {
        {":method", "POST"},
        {":scheme", "https"},
        {":authority", authority()},
        {":path", "/dns-query"},
        {"accept", "application/dns-message"},
        {"content-type", "application/dns-message"},
        {"content-length", std::to_string(body.size())},
        {"user-agent", "doxlab-dnsperf/1.0"},
    };
    const std::uint32_t stream_id =
        state_->h2->send_request(headers, std::move(body));
    state_->by_stream[stream_id] = pending;
    mark(pending, QueryPhase::kRequestSent);
    if (!pending->result.tls_version && state_->info) {
      pending->result.tls_version = state_->info->version;
      pending->result.session_resumed = state_->info->resumed;
      pending->result.alpn = state_->info->alpn;
    }
  }

  void on_response_headers(const std::shared_ptr<ConnState>& state,
                           std::uint32_t stream_id,
                           const std::vector<h2::Header>& headers,
                           bool end_stream) {
    auto it = state->by_stream.find(stream_id);
    if (it == state->by_stream.end()) return;
    for (const auto& h : headers) {
      if (h.name == ":status" && h.value != "200") {
        auto pending = it->second;
        state->by_stream.erase(it);
        remove_in_flight(state, pending);
        finish_error(pending, util::Error::protocol("HTTP status " + h.value));
        return;
      }
    }
    if (end_stream) {
      auto pending = it->second;
      state->by_stream.erase(it);
      remove_in_flight(state, pending);
      finish_error(pending, util::Error::truncated("empty DoH response"));
    }
  }

  void on_response_data(const std::shared_ptr<ConnState>& state,
                        std::uint32_t stream_id,
                        std::span<const std::uint8_t> data, bool end_stream) {
    auto it = state->by_stream.find(stream_id);
    if (it == state->by_stream.end()) return;
    auto& body = state->bodies[stream_id];
    body.insert(body.end(), data.begin(), data.end());
    if (!end_stream) return;

    auto pending = it->second;
    state->by_stream.erase(it);
    remove_in_flight(state, pending);
    auto message = dns::Message::decode(body);
    state->bodies.erase(stream_id);
    if (!message || !matches(*message, *pending)) {
      finish_error(pending,
                   util::Error::protocol("malformed DoH response body"));
      return;
    }
    finish_success(pending, std::move(*message));
  }

  void remove_in_flight(const std::shared_ptr<ConnState>& state,
                        const PendingPtr& pending) {
    std::erase(state->in_flight, pending);
  }

  void fail_connection(const std::shared_ptr<ConnState>& state,
                       const util::Error& error) {
    auto in_flight = std::move(state->in_flight);
    state->in_flight.clear();
    state->queued.clear();
    state->by_stream.clear();
    state->closed = true;
    for (auto& pending : in_flight) finish_error(pending, error);
  }

  std::shared_ptr<ConnState> state_;
  /// Owns reset connections until their close handshake finishes.
  std::vector<std::shared_ptr<ConnState>> closing_;
  std::weak_ptr<ConnState> last_;
  WireStats stats_;
};

}  // namespace

std::unique_ptr<DnsTransport> make_doh_transport(
    const TransportDeps& deps, const TransportOptions& options) {
  return std::make_unique<DohTransport>(deps, options);
}

}  // namespace doxlab::dox
