#include "engine/upstream_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace doxlab::engine {

/// One resolve() call in flight: the candidate plan, the attempts started
/// so far, and the single-shot delivery state.
struct UpstreamPool::Pending {
  dns::Question question;
  ResultHandler handler;
  std::vector<Candidate> candidates;
  std::size_t next = 0;  ///< next candidate to start
  int charged = 0;       ///< attempts counted against max_attempts
  bool done = false;
  util::Error last_error = util::Error::no_route("no upstream available");

  struct Attempt {
    std::size_t upstream = 0;
    bool settled = false;   ///< health outcome recorded
    bool advanced = false;  ///< next candidate already started
    sim::Timer timeout;
  };
  std::vector<Attempt> attempts;
};

UpstreamPool::UpstreamPool(sim::Simulator& sim,
                           const dox::TransportDeps& deps,
                           std::vector<UpstreamConfig> upstreams,
                           PoolConfig config)
    : sim_(sim), deps_(deps), config_(config) {
  upstreams_.reserve(upstreams.size());
  for (auto& upstream_config : upstreams) {
    Upstream upstream;
    upstream.config = std::move(upstream_config);
    upstream.transports.resize(upstream.config.protocols.size());
    upstreams_.push_back(std::move(upstream));
  }
}

bool UpstreamPool::available(const Upstream& upstream, SimTime now) const {
  return upstream.consecutive_failures < config_.unhealthy_after ||
         now >= upstream.quarantined_until;
}

std::vector<UpstreamPool::Candidate> UpstreamPool::plan(SimTime now) const {
  // Upstream order: available ones first (fastest-EWMA or configuration
  // order), quarantined ones appended last so a fully-dead pool still
  // retries everything before giving up.
  std::vector<std::size_t> order(upstreams_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const bool avail_a = available(upstreams_[a], now);
                     const bool avail_b = available(upstreams_[b], now);
                     if (avail_a != avail_b) return avail_a;
                     if (config_.select_fastest) {
                       return upstreams_[a].ewma_latency_ms <
                              upstreams_[b].ewma_latency_ms;
                     }
                     return false;  // keep configuration order
                   });
  std::vector<Candidate> candidates;
  for (std::size_t upstream : order) {
    if (!upstreams_[upstream].admin_enabled) continue;
    const auto& chain = upstreams_[upstream].config.protocols;
    for (std::size_t protocol = 0; protocol < chain.size(); ++protocol) {
      candidates.push_back(Candidate{upstream, protocol});
    }
  }
  return candidates;
}

dox::DnsTransport& UpstreamPool::transport(std::size_t upstream,
                                           std::size_t protocol) {
  Upstream& up = upstreams_[upstream];
  auto& slot = up.transports[protocol];
  if (!slot) {
    const dox::DnsProtocol proto = up.config.protocols[protocol];
    dox::TransportOptions options = up.config.transport_options;
    options.resolver = net::Endpoint{up.config.address,
                                     dox::default_port(proto)};
    slot = dox::make_transport(proto, deps_, options);
  }
  return *slot;
}

void UpstreamPool::resolve(const dns::Question& question,
                           ResultHandler handler) {
  auto pending = std::make_shared<Pending>();
  pending->question = question;
  pending->handler = std::move(handler);
  pending->candidates = plan(sim_.now());
  start_attempt(pending);
}

void UpstreamPool::start_attempt(const std::shared_ptr<Pending>& pending) {
  if (pending->done) return;
  if (pending->next >= pending->candidates.size() ||
      pending->charged >= config_.max_attempts) {
    pending->done = true;
    ++exhausted_;
    for (auto& attempt : pending->attempts) attempt.timeout.cancel();
    dox::QueryResult failure;
    failure.outcome = util::Outcome::failure(pending->last_error);
    pending->handler(failure);
    return;
  }

  const Candidate candidate = pending->candidates[pending->next++];
  const int attempt = static_cast<int>(pending->attempts.size());
  Pending::Attempt new_attempt;
  new_attempt.upstream = candidate.upstream;
  pending->attempts.push_back(std::move(new_attempt));
  ++pending->charged;
  ++attempts_issued_;
  if (attempt > 0) ++failovers_;
  ++upstreams_[candidate.upstream].attempts;

  // Happy-Eyeballs stagger: if this attempt has not concluded within the
  // budget, the next candidate starts — but this one keeps racing and a
  // late success still wins delivery.
  pending->attempts[attempt].timeout = sim_.schedule(
      config_.attempt_timeout, [this, pending, attempt] {
        dox::QueryResult timeout;
        timeout.outcome = util::Outcome::failure(util::Error::timeout(
            std::string(util::kQueryDeadlineDetail)));
        finish_attempt(pending, attempt,
                       pending->attempts[attempt].upstream, timeout);
      });

  transport(candidate.upstream, candidate.protocol)
      .resolve(pending->question,
               [this, pending, attempt,
                upstream = candidate.upstream](dox::QueryResult result) {
                 finish_attempt(pending, attempt, upstream,
                                std::move(result));
               });
}

void UpstreamPool::finish_attempt(const std::shared_ptr<Pending>& pending,
                                  int attempt, std::size_t upstream_index,
                                  dox::QueryResult result) {
  Pending::Attempt& state = pending->attempts[attempt];
  // A well-formed REFUSED answer is not a transport failure: the upstream
  // is alive and answered promptly, it just declined the question. Walk to
  // the next candidate without recording a health failure and without
  // charging the attempt against max_attempts.
  const bool refused =
      result.ok() && result.response.rcode == dns::RCode::kRefused;
  // Health is recorded once per attempt — at the timeout or at the first
  // transport signal, whichever comes first.
  if (!state.settled) {
    state.settled = true;
    state.timeout.cancel();
    if (result.ok()) {
      record_success(upstreams_[upstream_index], result.total_time());
    } else {
      record_failure(upstreams_[upstream_index]);
    }
  }

  if (pending->done) return;
  if (result.ok() && !refused) {
    pending->done = true;
    for (auto& a : pending->attempts) a.timeout.cancel();
    pending->handler(std::move(result));
    return;
  }

  if (refused) {
    --pending->charged;  // declined, not failed: refund the attempt budget
    pending->last_error = util::Error::rcode_error(
        static_cast<std::uint8_t>(result.response.rcode),
        upstreams_[upstream_index].config.name + " answered REFUSED");
  } else {
    pending->last_error = result.error();
  }
  error_counts_.record(pending->last_error.cls);

  // Retry policy keys on the failure class: everything that can plausibly
  // be cured by another candidate (timeouts, resets, refused connections,
  // TLS/QUIC/protocol trouble, REFUSED answers) walks the chain; a
  // cancelled attempt means the resolve was torn down deliberately, so it
  // terminates without consuming the remaining candidates.
  if (pending->last_error.cls == util::ErrorClass::kCancelled) {
    pending->done = true;
    ++exhausted_;
    for (auto& a : pending->attempts) a.timeout.cancel();
    dox::QueryResult failure;
    failure.outcome = util::Outcome::failure(pending->last_error);
    pending->handler(failure);
    return;
  }
  if (!state.advanced) {
    state.advanced = true;
    start_attempt(pending);
  }
}

void UpstreamPool::record_success(Upstream& upstream, SimTime latency) {
  const double sample_ms = to_ms(latency);
  upstream.ewma_latency_ms =
      upstream.has_latency
          ? config_.ewma_alpha * sample_ms +
                (1.0 - config_.ewma_alpha) * upstream.ewma_latency_ms
          : sample_ms;
  upstream.has_latency = true;
  upstream.consecutive_failures = 0;
  upstream.quarantined_until = 0;
}

void UpstreamPool::record_failure(Upstream& upstream) {
  ++upstream.failures;
  ++upstream.consecutive_failures;
  if (upstream.consecutive_failures >= config_.unhealthy_after) {
    upstream.quarantined_until = sim_.now() + config_.quarantine;
    DOXLAB_DEBUG("pool: upstream " << upstream.config.name
                                   << " quarantined until "
                                   << upstream.quarantined_until);
  }
}

void UpstreamPool::set_enabled(std::size_t index, bool enabled) {
  if (index >= upstreams_.size()) return;
  Upstream& upstream = upstreams_[index];
  if (upstream.admin_enabled == enabled) return;
  upstream.admin_enabled = enabled;
  if (enabled) {
    // A re-announced catchment is a fresh path: stale failure counts from
    // before the withdrawal say nothing about it.
    upstream.consecutive_failures = 0;
    upstream.quarantined_until = 0;
  }
}

void UpstreamPool::reset_sessions() {
  for (auto& upstream : upstreams_) {
    for (auto& transport : upstream.transports) {
      if (transport) transport->reset_sessions();
    }
    upstream.consecutive_failures = 0;
    upstream.quarantined_until = 0;
  }
}

std::vector<UpstreamHealth> UpstreamPool::health() const {
  std::vector<UpstreamHealth> out;
  out.reserve(upstreams_.size());
  for (const auto& upstream : upstreams_) {
    UpstreamHealth h;
    h.name = upstream.config.name;
    h.ewma_latency_ms = upstream.ewma_latency_ms;
    h.consecutive_failures = upstream.consecutive_failures;
    h.attempts = upstream.attempts;
    h.failures = upstream.failures;
    h.healthy = upstream.consecutive_failures < config_.unhealthy_after;
    h.admin_enabled = upstream.admin_enabled;
    out.push_back(std::move(h));
  }
  return out;
}

}  // namespace doxlab::engine
