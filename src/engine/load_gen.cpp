#include "engine/load_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "dns/message.h"

namespace doxlab::engine {

LoadGenerator::LoadGenerator(sim::Simulator& sim, net::UdpStack& udp,
                             LoadConfig config)
    : sim_(sim), config_(std::move(config)), rng_(config_.seed) {
  clients_.reserve(config_.clients);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    auto client = std::make_unique<Client>();
    client->socket = udp.bind_ephemeral();
    client->socket->on_datagram([this, i](const net::Endpoint&,
                                          util::Buffer payload) {
      auto response = dns::Message::decode(payload);
      if (!response || !response->qr) return;
      Client& c = *clients_[i];
      auto it = c.pending.find(response->id);
      if (it == c.pending.end()) return;  // late answer after timeout
      it->second.timeout.cancel();
      if (response->rcode == dns::RCode::kServFail) {
        ++report_.servfails;
      } else {
        ++report_.answered;
        report_.latency_ms.push_back(to_ms(sim_.now() - it->second.sent_at));
      }
      c.pending.erase(it);
    });
    clients_.push_back(std::move(client));
  }

  // Zipf weights 1/rank^s, stored cumulatively for O(log n) sampling.
  name_cdf_.reserve(config_.names);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= config_.names; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank),
                            config_.zipf_exponent);
    name_cdf_.push_back(total);
  }

  // Poisson arrivals: exponential inter-arrival gaps at the aggregate rate.
  const double mean_gap_us =
      static_cast<double>(kSecond) / std::max(config_.qps, 1e-9);
  SimTime at = sim_.now();
  while (true) {
    at += std::max<SimTime>(1, static_cast<SimTime>(
                                   rng_.exponential(mean_gap_us)));
    if (at >= sim_.now() + config_.duration) break;
    const std::size_t client = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(config_.clients) - 1));
    arrivals_.push_back(
        sim_.at(at, [this, client] { send_query(client); }));
  }
}

std::size_t LoadGenerator::sample_name() {
  const double u = rng_.uniform_real(0.0, name_cdf_.back());
  auto it = std::upper_bound(name_cdf_.begin(), name_cdf_.end(), u);
  return static_cast<std::size_t>(it - name_cdf_.begin());
}

void LoadGenerator::send_query(std::size_t client_index) {
  Client& client = *clients_[client_index];
  const std::size_t name_index = std::min(sample_name(), config_.names - 1);
  const dns::DnsName name = dns::DnsName::parse(
      "name" + std::to_string(name_index) + ".load.example");

  std::uint16_t id = client.next_id++;
  if (client.next_id == 0) client.next_id = 1;
  dns::Message query = dns::make_query(id, name, dns::RRType::kA);

  PendingQuery pending;
  pending.sent_at = sim_.now();
  pending.timeout =
      sim_.schedule(config_.client_timeout, [this, client_index, id] {
        Client& c = *clients_[client_index];
        if (c.pending.erase(id) > 0) ++report_.timeouts;
      });
  client.pending[id] = std::move(pending);

  ++report_.sent;
  client.socket->send_to(config_.target, query.encode());
}

}  // namespace doxlab::engine
